/// Experiment runners: structure and fast-phase sanity (full-length runs
/// are the bench binaries' job; the integration suite checks the paper's
/// orderings on medium runs).
#include <gtest/gtest.h>

#include "core/experiments.h"

namespace taqos {
namespace {

TEST(Experiments, Fig3CoversAllTopologies)
{
    const auto rows = runFig3Area();
    ASSERT_EQ(rows.size(), 5u);
    for (const auto &row : rows) {
        EXPECT_GT(row.area.totalMm2(), 0.0);
        EXPECT_GT(row.area.rowBuffersMm2, 0.0);
    }
}

TEST(Experiments, Fig4SeriesShape)
{
    const RunPhases fast = testPhases();
    const auto series =
        runFig4Latency(TrafficPattern::UniformRandom, {0.01, 0.05}, fast);
    ASSERT_EQ(series.size(), 5u);
    for (const auto &s : series) {
        ASSERT_EQ(s.points.size(), 2u);
        EXPECT_FALSE(s.points[0].saturated);
        EXPECT_GT(s.points[0].avgLatency, 0.0);
        EXPECT_LE(s.points[0].avgLatency, s.points[1].avgLatency * 1.2);
        EXPECT_NEAR(s.points[0].throughput, 0.01, 0.003);
        EXPECT_GE(s.points[0].p95Latency, 0.0);
    }
}

TEST(Experiments, Fig4FlagsSaturation)
{
    const RunPhases fast{1000, 6000, 2000};
    const auto series =
        runFig4Latency(TrafficPattern::Tornado, {0.08}, fast);
    for (const auto &s : series) {
        if (s.topology == TopologyKind::MeshX1) {
            EXPECT_TRUE(s.points[0].saturated);
        }
        if (s.topology == TopologyKind::Mecs) {
            EXPECT_FALSE(s.points[0].saturated);
        }
    }
}

TEST(Experiments, Table2ShortRunIsFair)
{
    const auto rows = runTable2Fairness(/*measure=*/30000, /*warmup=*/5000);
    ASSERT_EQ(rows.size(), 5u);
    for (const auto &row : rows) {
        EXPECT_GT(row.meanFlits, 0.0);
        EXPECT_GT(row.minPct(), 96.0) << topologyName(row.topology);
        EXPECT_LT(row.maxPct(), 104.0) << topologyName(row.topology);
        EXPECT_LT(row.stddevPct(), 2.0) << topologyName(row.topology);
    }
}

TEST(Experiments, AdversarialReturnsCompleteRuns)
{
    const auto rows = runAdversarial(1, /*genCycles=*/20000);
    ASSERT_EQ(rows.size(), 5u);
    for (const auto &row : rows) {
        EXPECT_GT(row.completionCycle, 20000u);
        EXPECT_GE(row.preemptedPacketsPct, 0.0);
        EXPECT_GE(row.replayedHopsPct, 0.0);
        // Deviations from max-min stay small under PVC.
        EXPECT_LT(std::abs(row.avgDeviationPct), 6.0)
            << topologyName(row.topology);
    }
}

TEST(Experiments, Workload2Runs)
{
    const auto rows = runAdversarial(2, /*genCycles=*/15000);
    ASSERT_EQ(rows.size(), 5u);
    for (const auto &row : rows)
        EXPECT_GT(row.completionCycle, 15000u);
}

TEST(Experiments, Fig7Composition)
{
    const auto rows = runFig7Energy();
    ASSERT_EQ(rows.size(), 5u);
    for (const auto &row : rows) {
        const double src = EnergyRow::total(row.srcPj);
        const double inter = EnergyRow::total(row.intPj);
        const double dst = EnergyRow::total(row.dstPj);
        EXPECT_NEAR(EnergyRow::total(row.threeHopPj),
                    src + 2.0 * inter + dst, 1e-9);
        switch (row.topology) {
          case TopologyKind::Mecs:
            EXPECT_DOUBLE_EQ(inter, 0.0); // express pass-through
            break;
          case TopologyKind::Dps:
            EXPECT_GT(inter, 0.0);
            EXPECT_LT(inter, src);          // no crossbar, no flow state
            EXPECT_DOUBLE_EQ(row.intPj[2], 0.0);
            break;
          default:
            EXPECT_NEAR(inter, src, 1e-9); // full traversal each hop
        }
    }
}

TEST(Experiments, SaturationPreemptionRates)
{
    const RunPhases fast{2000, 8000, 3000};
    const auto rows =
        runSaturationPreemption(TrafficPattern::UniformRandom, 0.15, fast);
    ASSERT_EQ(rows.size(), 5u);
    for (const auto &row : rows) {
        EXPECT_GE(row.packetRate, 0.0);
        EXPECT_LT(row.packetRate, 0.5);
        EXPECT_LE(row.hopRate, row.packetRate + 0.05);
    }
}

TEST(Experiments, PaperColumnDefaults)
{
    const ColumnConfig col = paperColumn(TopologyKind::Mecs);
    EXPECT_EQ(col.numNodes, 8);
    EXPECT_EQ(col.numFlows(), 64);
    EXPECT_EQ(col.mode, QosMode::Pvc);
    EXPECT_EQ(col.pvc.frameLen, 50000u);
}

} // namespace
} // namespace taqos
