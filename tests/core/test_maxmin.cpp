#include <gtest/gtest.h>

#include "core/maxmin.h"

namespace taqos {
namespace {

TEST(MaxMin, AllDemandsFit)
{
    const auto a = maxMinAllocation({0.1, 0.2, 0.3}, 1.0);
    EXPECT_DOUBLE_EQ(a[0], 0.1);
    EXPECT_DOUBLE_EQ(a[1], 0.2);
    EXPECT_DOUBLE_EQ(a[2], 0.3);
}

TEST(MaxMin, EqualSplitWhenAllExceed)
{
    const auto a = maxMinAllocation({0.9, 0.8, 0.7}, 0.9);
    EXPECT_NEAR(a[0], 0.3, 1e-12);
    EXPECT_NEAR(a[1], 0.3, 1e-12);
    EXPECT_NEAR(a[2], 0.3, 1e-12);
}

TEST(MaxMin, WaterFilling)
{
    // Dally & Towles style example: small demands granted, residue split.
    const auto a = maxMinAllocation({0.05, 0.10, 0.60, 0.70}, 1.0);
    EXPECT_DOUBLE_EQ(a[0], 0.05);
    EXPECT_DOUBLE_EQ(a[1], 0.10);
    EXPECT_NEAR(a[2], 0.425, 1e-12);
    EXPECT_NEAR(a[3], 0.425, 1e-12);
}

TEST(MaxMin, PaperWorkload1Expectation)
{
    // W1 demands: the fair level lambda solves sum min(d_i, lambda) = 1,
    // giving lambda = 0.15 — so 0.05, 0.09, 0.12 AND 0.14 are granted in
    // full and the four heaviest sources get 0.15 each.
    const auto a = maxMinAllocation(
        {0.20, 0.19, 0.18, 0.16, 0.14, 0.12, 0.09, 0.05}, 1.0);
    EXPECT_DOUBLE_EQ(a[7], 0.05);
    EXPECT_DOUBLE_EQ(a[6], 0.09);
    EXPECT_DOUBLE_EQ(a[5], 0.12);
    EXPECT_DOUBLE_EQ(a[4], 0.14);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(a[static_cast<std::size_t>(i)], 0.15, 1e-12);
    double total = 0.0;
    for (double v : a)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MaxMin, ZeroDemandGetsZero)
{
    const auto a = maxMinAllocation({0.0, 0.5, 0.9}, 1.0);
    EXPECT_DOUBLE_EQ(a[0], 0.0);
    EXPECT_DOUBLE_EQ(a[1], 0.5);
    EXPECT_NEAR(a[2], 0.5, 1e-12);
}

TEST(MaxMin, ZeroCapacity)
{
    const auto a = maxMinAllocation({0.5, 0.5}, 0.0);
    EXPECT_DOUBLE_EQ(a[0], 0.0);
    EXPECT_DOUBLE_EQ(a[1], 0.0);
}

TEST(MaxMin, EmptyDemands)
{
    EXPECT_TRUE(maxMinAllocation({}, 1.0).empty());
}

TEST(MaxMin, NeverExceedsDemandOrCapacity)
{
    const std::vector<double> demands{0.3, 0.01, 0.7, 0.2, 0.15};
    const auto a = maxMinAllocation(demands, 0.8);
    double total = 0.0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
        EXPECT_LE(a[i], demands[i] + 1e-12);
        total += a[i];
    }
    EXPECT_LE(total, 0.8 + 1e-9);
    EXPECT_NEAR(total, 0.8, 1e-9); // capacity saturated when demand exceeds
}

} // namespace
} // namespace taqos
