#include <gtest/gtest.h>

#include "common/table.h"

namespace taqos {
namespace {

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t("title");
    t.setHeader({"a", "bbbb"});
    t.addRow({"xx", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("a  | bbbb"), std::string::npos);
    EXPECT_NE(out.find("xx | y"), std::string::npos);
}

TEST(TextTable, RuleSeparatesGroups)
{
    TextTable t;
    t.setHeader({"c"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    const std::string out = t.render();
    // header rule + explicit rule
    std::size_t dashes = 0;
    for (std::size_t pos = out.find("-"); pos != std::string::npos;
         pos = out.find("-", pos + 1))
        ++dashes;
    EXPECT_GE(dashes, 2u);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, CsvEscapesCommas)
{
    TextTable t;
    t.setHeader({"k", "v"});
    t.addRow({"a,b", "2"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"a,b\",2"), std::string::npos);
}

TEST(TextTable, CsvSkipsRules)
{
    TextTable t;
    t.setHeader({"k"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    const std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "k\n1\n2\n");
}

TEST(TextTable, NoHeaderWorks)
{
    TextTable t;
    t.addRow({"just", "cells"});
    EXPECT_NE(t.render().find("just | cells"), std::string::npos);
}

} // namespace
} // namespace taqos
