#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace taqos {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(99);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.nextU64());
    a.reseed(99);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.nextU64(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(5);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.125);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.125, 0.01);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(21);
    Rng b = a.split();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 3);
}

TEST(Rng, PickUniform)
{
    Rng rng(17);
    const std::vector<int> v{1, 2, 3, 4};
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 40000; ++i)
        ++counts[static_cast<std::size_t>(rng.pick(v))];
    for (int x = 1; x <= 4; ++x)
        EXPECT_NEAR(counts[static_cast<std::size_t>(x)], 10000, 500);
}

} // namespace
} // namespace taqos
