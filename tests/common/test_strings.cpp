#include <gtest/gtest.h>

#include "common/strings.h"

namespace taqos {
namespace {

TEST(Strings, Format)
{
    EXPECT_EQ(strFormat("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strFormat("%.2f", 1.234), "1.23");
    EXPECT_EQ(strFormat("empty"), "empty");
}

TEST(Strings, FormatLongString)
{
    const std::string big(500, 'a');
    EXPECT_EQ(strFormat("%s!", big.c_str()).size(), 501u);
}

TEST(Strings, Split)
{
    const auto parts = strSplit("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitNoSeparator)
{
    const auto parts = strSplit("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(strTrim("  hi \t\n"), "hi");
    EXPECT_EQ(strTrim(""), "");
    EXPECT_EQ(strTrim("   "), "");
    EXPECT_EQ(strTrim("x"), "x");
}

TEST(Strings, Lower)
{
    EXPECT_EQ(strLower("MeCS"), "mecs");
}

TEST(OptionMap, ParsesKeyValuesAndFlags)
{
    const char *argv[] = {"prog", "rate=0.12", "fast", "name = dps ",
                          "n=42"};
    OptionMap opts(5, const_cast<char **>(argv));
    EXPECT_TRUE(opts.has("fast"));
    EXPECT_TRUE(opts.getBool("fast", false));
    EXPECT_DOUBLE_EQ(opts.getDouble("rate", 0.0), 0.12);
    EXPECT_EQ(opts.get("name", ""), "dps");
    EXPECT_EQ(opts.getInt("n", 0), 42);
}

TEST(OptionMap, Defaults)
{
    OptionMap opts;
    EXPECT_FALSE(opts.has("missing"));
    EXPECT_EQ(opts.getInt("missing", 5), 5);
    EXPECT_EQ(opts.get("missing", "d"), "d");
    EXPECT_TRUE(opts.getBool("missing", true));
}

TEST(OptionMap, BoolSpellings)
{
    const char *argv[] = {"prog", "a=true", "b=ON", "c=0", "d=no"};
    OptionMap opts(5, const_cast<char **>(argv));
    EXPECT_TRUE(opts.getBool("a", false));
    EXPECT_TRUE(opts.getBool("b", false));
    EXPECT_FALSE(opts.getBool("c", true));
    EXPECT_FALSE(opts.getBool("d", true));
}

} // namespace
} // namespace taqos
