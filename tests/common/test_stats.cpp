#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace taqos {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 0.0);
    EXPECT_DOUBLE_EQ(rs.max(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat rs;
    rs.push(42.0);
    EXPECT_EQ(rs.count(), 1u);
    EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
    EXPECT_DOUBLE_EQ(rs.min(), 42.0);
    EXPECT_DOUBLE_EQ(rs.max(), 42.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat rs;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.push(v);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 4.0); // population variance
    EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i) * 10.0 + i;
        all.push(v);
        (i % 2 == 0 ? a : b).push(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.push(1.0);
    a.push(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, ClearResets)
{
    RunningStat rs;
    rs.push(5.0);
    rs.clear();
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // [0,10) [10,20) [20,30) [30,40)
    h.add(0.0);
    h.add(9.9);
    h.add(10.0);
    h.add(35.0);
    h.add(100.0);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NegativeClampsToZeroBucket)
{
    Histogram h(1.0, 4);
    h.add(-5.0);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, PercentileMedian)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
    EXPECT_LE(h.percentile(0.0), 1.0);
}

TEST(Histogram, PercentileEmpty)
{
    Histogram h(1.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h(1.0, 4);
    h.add(2.0);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Histogram, RenderNonEmpty)
{
    Histogram h(1.0, 4);
    h.add(0.5);
    h.add(0.7);
    h.add(3.2);
    const std::string out = h.render();
    EXPECT_NE(out.find("#"), std::string::npos);
}

} // namespace
} // namespace taqos
