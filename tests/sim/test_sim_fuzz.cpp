/// Failure injection and randomized stress: kill random in-flight packets
/// mid-run (as hostile preemptions), randomize configurations, and verify
/// the flow-control invariants and end-to-end delivery guarantees survive.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

namespace taqos {
namespace {

/// Collect every packet currently holding a VC anywhere in the column.
std::vector<NetPacket *>
inFlightPackets(ColumnNetwork &net)
{
    std::vector<NetPacket *> pkts;
    const auto scan = [&pkts](InputPort &port) {
        for (const auto &vc : port.vcs) {
            NetPacket *pkt = vc.packet();
            if (pkt != nullptr && pkt->state == PacketState::InFlight &&
                (pkts.empty() || pkts.back() != pkt)) {
                pkts.push_back(pkt);
            }
        }
    };
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        for (const auto &in : net.router(n)->inputs())
            scan(*in);
        scan(*net.termPort(n));
    }
    return pkts;
}

class SimFuzz : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(SimFuzz, RandomKillsNeverCorruptState)
{
    ColumnConfig col;
    col.topology = GetParam();
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.08;
    t.genUntil = 12000;
    ColumnSim sim(col, t);

    Rng rng(0xdead + static_cast<std::uint64_t>(GetParam()));
    AckNetwork scratchAck; // unused: kills go through the sim's plumbing

    std::uint64_t kills = 0;
    for (int step = 0; step < 12000; ++step) {
        sim.step();
        if (step % 97 != 0)
            continue;
        auto pkts = inFlightPackets(sim.network());
        if (pkts.empty())
            continue;
        NetPacket *victim =
            pkts[static_cast<std::size_t>(rng.nextBelow(pkts.size()))];
        // Kill through a real router so the NACK rides the sim's ACK
        // network (node choice only affects the modelled NACK delay).
        // We must use the same TickContext services the sim uses, so
        // route the kill through the sim's own step machinery:
        TickContext ctx;
        ctx.now = sim.now();
        ctx.metrics = &sim.metrics();
        ctx.ack = nullptr; // filled below
        // The sim's internal ack network is private; emulate the NACK by
        // using killPacket with a local ack net and re-queueing manually,
        // exactly as ColumnSim::processAcks would.
        ctx.ack = &scratchAck;
        sim.network().router(victim->src)->killPacket(victim, ctx);
        AckEvent ev;
        while (scratchAck.popDue(ctx.now + 1000, ev)) {
            ev.pkt->state = PacketState::Queued;
            ev.pkt->queuedCycle = sim.now();
            sim.network().injector(ev.pkt->flow).enqueueFront(ev.pkt);
        }
        ++kills;
        if (kills % 16 == 0)
            sim.checkInvariants();
    }
    EXPECT_GT(kills, 20u);

    // Despite the injected failures, the run drains completely and every
    // packet is delivered exactly once.
    const Cycle done = sim.runUntilDrained(300000, 12000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    sim.checkInvariants();
}

TEST_P(SimFuzz, RandomConfigurationsRun)
{
    Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
    for (int trial = 0; trial < 6; ++trial) {
        ColumnConfig col;
        col.topology = GetParam();
        col.pvc.frameLen =
            static_cast<Cycle>(rng.nextRange(2000, 80000));
        col.pvc.windowLimit = static_cast<int>(rng.nextRange(2, 64));
        col.pvc.preemptGapFlits =
            static_cast<std::uint64_t>(rng.nextRange(0, 256));
        col.pvc.preemptWaitCycles = static_cast<int>(rng.nextRange(1, 12));
        col.pvc.reservedVcEnabled = rng.bernoulli(0.5);
        col.pvc.quotaEnabled = rng.bernoulli(0.8);

        TrafficConfig t;
        t.pattern = rng.bernoulli(0.5) ? TrafficPattern::UniformRandom
                                       : TrafficPattern::Hotspot;
        t.injectionRate = 0.01 + 0.1 * rng.nextDouble();
        t.seed = rng.nextU64();

        ColumnSim sim(col, t);
        sim.run(6000);
        sim.checkInvariants();
        EXPECT_GT(sim.metrics().deliveredPackets, 0u) << "trial " << trial;
    }
}

TEST_P(SimFuzz, ZeroAndExtremeSizes)
{
    // Degenerate columns and all-long / all-short packet mixes.
    for (double shortProb : {0.0, 1.0}) {
        ColumnConfig col;
        col.topology = GetParam();
        TrafficConfig t;
        t.shortPacketProb = shortProb;
        t.injectionRate = 0.05;
        t.genUntil = 4000;
        ColumnSim sim(col, t);
        const Cycle done = sim.runUntilDrained(60000, 4000);
        ASSERT_NE(done, kNoCycle);
        EXPECT_EQ(sim.metrics().deliveredPackets,
                  sim.metrics().generatedPackets);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, SimFuzz,
                         ::testing::ValuesIn(kAllTopologies),
                         [](const auto &info) {
                             return std::string(topologyName(info.param));
                         });

} // namespace
} // namespace taqos
