/// Failure injection and randomized stress: kill random in-flight packets
/// mid-run (as hostile preemptions), randomize configurations, and verify
/// the flow-control invariants and end-to-end delivery guarantees survive.
/// Every scenario runs under both engines (activity-driven and the
/// always-tick reference) with the independent trace checker
/// (verify/checker.h) as an end-to-end oracle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/column_sim.h"
#include "sim/trace_record.h"
#include "traffic/workloads.h"
#include "verify/checker.h"

namespace taqos {
namespace {

/// Collect every packet currently holding a VC anywhere in the column.
std::vector<NetPacket *>
inFlightPackets(ColumnNetwork &net)
{
    std::vector<NetPacket *> pkts;
    const auto scan = [&pkts](InputPort &port) {
        for (const auto &vc : port.vcs) {
            NetPacket *pkt = vc.packet();
            if (pkt != nullptr && pkt->state == PacketState::InFlight &&
                (pkts.empty() || pkts.back() != pkt)) {
                pkts.push_back(pkt);
            }
        }
    };
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        for (const auto &in : net.router(n)->inputs())
            scan(*in);
        scan(*net.termPort(n));
    }
    return pkts;
}

/// (topology, activity-driven?) — every fuzz scenario runs on both
/// engines so the oracle pins their behavior independently.
class SimFuzz
    : public ::testing::TestWithParam<std::tuple<TopologyKind, bool>> {
  protected:
    TopologyKind topology() const { return std::get<0>(GetParam()); }
    bool activityDriven() const { return std::get<1>(GetParam()); }
};

TEST_P(SimFuzz, RandomKillsNeverCorruptState)
{
    ColumnConfig col;
    col.topology = topology();
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.08;
    t.genUntil = 12000;
    ColumnSim sim(col, t);
    sim.configure({.activityDriven = activityDriven()});

    TraceRecorder rec(describeColumn(col));
    sim.attachTraceSink(&rec);

    Rng rng(0xdead + static_cast<std::uint64_t>(topology()));
    AckNetwork scratchAck; // unused: kills go through the sim's plumbing

    std::uint64_t kills = 0;
    for (int step = 0; step < 12000; ++step) {
        sim.step();
        if (step % 97 != 0)
            continue;
        auto pkts = inFlightPackets(sim.network());
        if (pkts.empty())
            continue;
        NetPacket *victim =
            pkts[static_cast<std::size_t>(rng.nextBelow(pkts.size()))];
        // Kill through a real router so the NACK rides the sim's ACK
        // network (node choice only affects the modelled NACK delay).
        // We must use the same TickContext services the sim uses, so
        // route the kill through the sim's own step machinery:
        TickContext ctx;
        ctx.now = sim.now();
        ctx.metrics = &sim.metrics();
        ctx.ack = nullptr; // filled below
        // The sim's internal ack network is private; emulate the NACK by
        // using killPacket with a local ack net and re-queueing manually,
        // exactly as ColumnSim::processAcks would.
        ctx.ack = &scratchAck;
        sim.network().router(victim->src)->killPacket(victim, ctx);
        AckEvent ev;
        while (scratchAck.popDue(ctx.now + 1000, ev)) {
            ev.pkt->state = PacketState::Queued;
            ev.pkt->queuedCycle = sim.now();
            sim.network().injector(ev.pkt->flow).enqueueFront(ev.pkt);
        }
        ++kills;
        if (kills % 16 == 0)
            sim.checkInvariants();
    }
    EXPECT_GT(kills, 20u);

    // Despite the injected failures, the run drains completely and every
    // packet is delivered exactly once.
    const Cycle done = sim.runUntilDrained(300000, 12000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    sim.checkInvariants();

    // Independent oracle: replay the trace through the checker. The
    // injected kills are deliberately hostile (they ignore the PVC
    // protected quota), so the QoS audit is off; every structural
    // invariant — routes, conservation, VC exclusivity — must hold.
    rec.finish(sim.now(), sim.drained());
    CheckOptions opts;
    opts.qosAudit = false;
    const CheckReport report = verifyTrace(rec.trace(), opts);
    EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
    EXPECT_GT(report.eventsChecked, 0u);
}

TEST_P(SimFuzz, RandomConfigurationsRun)
{
    Rng rng(42 + static_cast<std::uint64_t>(topology()));
    for (int trial = 0; trial < 6; ++trial) {
        ColumnConfig col;
        col.topology = topology();
        col.pvc.frameLen =
            static_cast<Cycle>(rng.nextRange(2000, 80000));
        col.pvc.windowLimit = static_cast<int>(rng.nextRange(2, 64));
        col.pvc.preemptGapFlits =
            static_cast<std::uint64_t>(rng.nextRange(0, 256));
        col.pvc.preemptWaitCycles = static_cast<int>(rng.nextRange(1, 12));
        col.pvc.reservedVcEnabled = rng.bernoulli(0.5);
        col.pvc.quotaEnabled = rng.bernoulli(0.8);

        TrafficConfig t;
        t.pattern = rng.bernoulli(0.5) ? TrafficPattern::UniformRandom
                                       : TrafficPattern::Hotspot;
        t.injectionRate = 0.01 + 0.1 * rng.nextDouble();
        t.seed = rng.nextU64();

        ColumnSim sim(col, t);
        sim.configure({.activityDriven = activityDriven()});
        TraceRecorder rec(describeColumn(sim.cfg()));
        sim.attachTraceSink(&rec);
        sim.run(6000);
        sim.checkInvariants();
        EXPECT_GT(sim.metrics().deliveredPackets, 0u) << "trial " << trial;

        rec.finish(sim.now(), sim.drained());
        const CheckReport report = verifyTrace(rec.trace());
        EXPECT_TRUE(report.ok())
            << "trial " << trial << ": " << report.firstDiagnostic();
    }
}

TEST_P(SimFuzz, ZeroAndExtremeSizes)
{
    // Degenerate columns and all-long / all-short packet mixes.
    for (double shortProb : {0.0, 1.0}) {
        ColumnConfig col;
        col.topology = topology();
        TrafficConfig t;
        t.shortPacketProb = shortProb;
        t.injectionRate = 0.05;
        t.genUntil = 4000;
        ColumnSim sim(col, t);
        sim.configure({.activityDriven = activityDriven()});
        TraceRecorder rec(describeColumn(sim.cfg()));
        sim.attachTraceSink(&rec);
        const Cycle done = sim.runUntilDrained(60000, 4000);
        ASSERT_NE(done, kNoCycle);
        EXPECT_EQ(sim.metrics().deliveredPackets,
                  sim.metrics().generatedPackets);

        rec.finish(sim.now(), sim.drained());
        const CheckReport report = verifyTrace(rec.trace());
        EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, SimFuzz,
    ::testing::Combine(::testing::ValuesIn(kAllTopologies),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::string(topologyName(std::get<0>(info.param))) +
               (std::get<1>(info.param) ? "_event" : "_tick");
    });

} // namespace
} // namespace taqos
