/// The QosPolicy layer, end to end: invariants every arbitration policy
/// must satisfy (flit conservation, eventual delivery below saturation),
/// bit-identity of the three legacy modes with the pre-refactor router
/// (golden digests recorded before the policy extraction), and the
/// qualitative guarantees of the three new policies — GSF's frame-bounded
/// interference, age-based starvation freedom, WRR's weight tracking.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/stats.h"
#include "core/experiments.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

namespace taqos {
namespace {

/// Order-sensitive digest of a run's observable outcome: delivery and
/// preemption counts, latency statistics, and the full per-flow
/// throughput vector. Any behavioral drift in arbitration perturbs it.
/// The recorded golden values predate the extended digest fields, so
/// this suite pins the base form.
std::uint64_t
runDigest(const ColumnSim &sim)
{
    return metricsDigest(sim.metrics(), /*extended=*/false);
}

// ------------------------------------------------ cross-policy invariants

class PolicyInvariants : public testing::TestWithParam<QosMode> {};

TEST_P(PolicyInvariants, ConservesFlitsAndDrainsBelowSaturation)
{
    const QosMode mode = GetParam();
    for (auto kind : {TopologyKind::MeshX1, TopologyKind::Dps}) {
        const ColumnConfig col = paperColumn(kind, mode);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.03;
        traffic.genUntil = 6000;
        ColumnSim sim(col, traffic);
        sim.setMeasureWindow(0, 6000);

        // Eventual delivery: well below saturation, every policy drains.
        const Cycle done = sim.runUntilDrained(120000, 6000);
        ASSERT_NE(done, kNoCycle)
            << topologyName(kind) << "/" << qosModeName(mode);

        // Conservation: nothing lost, nothing duplicated — preemptions
        // (PVC) replay but never drop; gates (GSF) delay but never drop.
        const SimMetrics &m = sim.metrics();
        EXPECT_EQ(m.deliveredPackets, m.generatedPackets)
            << topologyName(kind) << "/" << qosModeName(mode);
        EXPECT_EQ(m.deliveredFlits, m.generatedFlits)
            << topologyName(kind) << "/" << qosModeName(mode);
        sim.checkInvariants();
    }
}

TEST_P(PolicyInvariants, SurvivesTheHotspotStressor)
{
    // Saturating hotspot: no policy may lose packets or corrupt VC state
    // even when most offered traffic cannot be delivered.
    const QosMode mode = GetParam();
    ColumnConfig col = paperColumn(TopologyKind::MeshX1, mode);
    const TrafficConfig traffic = makeHotspotAll(col, 0.05);
    ColumnSim sim(col, traffic);
    for (int i = 0; i < 10; ++i) {
        sim.run(1500);
        sim.checkInvariants();
    }
    EXPECT_GT(sim.metrics().deliveredPackets, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         testing::ValuesIn(kAllQosModes),
                         [](const testing::TestParamInfo<QosMode> &info) {
                             std::string n = qosModeName(info.param);
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

// ----------------------------------------- legacy modes are bit-identical

/// Golden digests recorded at commit 57e7bee (immediately before the
/// QosPolicy extraction), pinning the refactored Pvc/PerFlowQueue/NoQos
/// policies to the pre-refactor Router::tick decision path bit for bit.
/// Scenario: uniform random at 0.08 flits/cycle/injector, default seed,
/// testPhases() with the measure window [2000, 8000).
struct GoldenRun {
    TopologyKind topology;
    QosMode mode;
    std::uint64_t digest;
};

TEST(PolicyBitIdentity, LegacyModesMatchPreRefactorTraces)
{
    const GoldenRun kGolden[] = {
        {TopologyKind::MeshX1, QosMode::Pvc, 0xdb5d626e2f8f86ecull},
        {TopologyKind::MeshX1, QosMode::PerFlowQueue, 0x41124f30225bb5b3ull},
        {TopologyKind::MeshX1, QosMode::NoQos, 0x536232518f088c92ull},
        {TopologyKind::Mecs, QosMode::Pvc, 0x00908d1036416d42ull},
        {TopologyKind::Mecs, QosMode::PerFlowQueue, 0x00908d1036416d42ull},
        {TopologyKind::Mecs, QosMode::NoQos, 0x10d83fe0575bc852ull},
        {TopologyKind::Dps, QosMode::Pvc, 0x37a02737709d1dbfull},
        {TopologyKind::Dps, QosMode::PerFlowQueue, 0x8559584087f31124ull},
        {TopologyKind::Dps, QosMode::NoQos, 0xe4e1ca26a278aedeull},
    };
    const RunPhases phases = testPhases();
    for (const GoldenRun &g : kGolden) {
        const ColumnConfig col = paperColumn(g.topology, g.mode);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.08;
        ColumnSim sim(col, traffic);
        sim.setMeasureWindow(phases.warmup, phases.measureEnd());
        sim.run(phases.total());
        EXPECT_EQ(runDigest(sim), g.digest)
            << topologyName(g.topology) << "/" << qosModeName(g.mode);
    }
}

TEST(PolicyBitIdentity, PvcPreemptionPathMatchesPreRefactorTraces)
{
    // Workload 1 run to completion — thousands of preemption events, so
    // the onAllocFail thresholds, victim selection and NACK/replay path
    // are all pinned (mesh_x4: 1872 events; DPS: 1611).
    const GoldenRun kGolden[] = {
        {TopologyKind::MeshX4, QosMode::Pvc, 0xdf027b606d1bee8full},
        {TopologyKind::Dps, QosMode::Pvc, 0xf4e9628629987740ull},
    };
    for (const GoldenRun &g : kGolden) {
        ColumnConfig col = paperColumn(g.topology, g.mode);
        TrafficConfig t = makeWorkload1(col);
        t.genUntil = 20000;
        ColumnSim sim(col, t);
        sim.setMeasureWindow(0, 20000);
        const Cycle done = sim.runUntilDrained(200000, 20000);
        ASSERT_NE(done, kNoCycle) << topologyName(g.topology);
        EXPECT_GT(sim.metrics().preemptionEvents, 1000u);
        EXPECT_EQ(runDigest(sim), g.digest) << topologyName(g.topology);
    }
}

// ------------------------------------------------- new-policy guarantees

TEST(GsfPolicy, FrameBudgetsBoundInterferenceFromAHog)
{
    // 63 well-behaved flows stream to the hotspot at a modest rate; one
    // source offers 0.8 flits/cycle (far past its share). GSF caps the
    // hog at its per-frame budget, so the victims keep (nearly) all of
    // their own throughput and the hog cannot claim the majority of the
    // ejection link.
    ColumnConfig col = paperColumn(TopologyKind::MeshX1, QosMode::Gsf);
    TrafficConfig traffic = makeHotspotAll(col, 0.01);
    traffic.flowRates.assign(static_cast<std::size_t>(col.numFlows()), -1.0);
    const FlowId hog = 63;
    traffic.flowRates[static_cast<std::size_t>(hog)] = 0.8;

    const Cycle warmup = 4000;
    const Cycle measure = 20000;
    ColumnSim sim(col, traffic);
    sim.setMeasureWindow(warmup, warmup + measure);
    sim.run(warmup + measure);
    sim.checkInvariants();

    const SimMetrics &m = sim.metrics();
    const double offered =
        0.01 * static_cast<double>(measure); // flits per victim flow
    double victimMin = -1.0;
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        if (f == hog)
            continue;
        const auto flits =
            static_cast<double>(m.flowFlits[static_cast<std::size_t>(f)]);
        if (victimMin < 0.0 || flits < victimMin)
            victimMin = flits;
    }
    // Every victim keeps >= 70% of its offered load despite the hog...
    EXPECT_GT(victimMin, 0.7 * offered);
    // ...because the hog's share is frame-capped, not demand-driven.
    const auto hogFlits =
        static_cast<double>(m.flowFlits[static_cast<std::size_t>(hog)]);
    EXPECT_LT(hogFlits, 0.5 * static_cast<double>(m.windowFlits()));
}

TEST(AgePolicy, StarvationFreeOnTheTable2Hotspot)
{
    // The Table 2 stressor that starves the locally-fair baseline: all 64
    // injectors stream to node 0. Oldest-first arbitration serves every
    // flow — the rotating arbiter's distance decay disappears.
    ColumnConfig col = paperColumn(TopologyKind::MeshX1, QosMode::AgeArb);
    const TrafficConfig traffic = makeHotspotAll(col, 0.05);
    ColumnSim sim(col, traffic);
    sim.setMeasureWindow(2000, 10000);
    sim.run(10000);

    RunningStat perFlow;
    for (auto flits : sim.metrics().flowFlits)
        perFlow.push(static_cast<double>(flits));
    EXPECT_GT(perFlow.min(), 0.0);
    EXPECT_GT(perFlow.min(), 0.5 * perFlow.mean());

    // The identical scenario under NoQos starves the distant flows (the
    // motivating result of ablation_noqos) — age-based must beat it.
    ColumnConfig noqos = paperColumn(TopologyKind::MeshX1, QosMode::NoQos);
    ColumnSim ref(noqos, traffic);
    ref.setMeasureWindow(2000, 10000);
    ref.run(10000);
    RunningStat refFlow;
    for (auto flits : ref.metrics().flowFlits)
        refFlow.push(static_cast<double>(flits));
    EXPECT_GT(perFlow.min(), refFlow.min());
}

TEST(WrrPolicy, TracksProvisionedWeightsAtSaturation)
{
    // Weighted flows on a saturated hotspot: delivered service must track
    // the provisioned weights within 10% per flow (the acceptance bound).
    ColumnConfig col = paperColumn(TopologyKind::MeshX1, QosMode::Wrr);
    col.pvc.weights.assign(static_cast<std::size_t>(col.numFlows()), 1);
    for (std::size_t f = 0; f < 8; ++f)
        col.pvc.weights[f] = 4; // node-0 flows get 4x provisioning
    const TrafficConfig traffic = makeHotspotAll(col, 0.05);

    const Cycle warmup = 5000;
    const Cycle measure = 40000;
    ColumnSim sim(col, traffic);
    sim.setMeasureWindow(warmup, warmup + measure);
    sim.run(warmup + measure);
    sim.checkInvariants();

    const SimMetrics &m = sim.metrics();
    const auto total = static_cast<double>(m.windowFlits());
    const auto sumW = static_cast<double>(col.pvc.sumWeights());
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        const double expected =
            total * static_cast<double>(col.pvc.weightOf(f)) / sumW;
        const auto got =
            static_cast<double>(m.flowFlits[static_cast<std::size_t>(f)]);
        EXPECT_NEAR(got, expected, 0.10 * expected) << "flow " << f;
    }
}

} // namespace
} // namespace taqos
