/// Throughput behaviour vs offered load: acceptance below saturation, the
/// ejection-bandwidth ceiling, and the paper's saturation ordering on
/// tornado traffic (bisection-limited meshes first).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/column_sim.h"

namespace taqos {
namespace {

double
acceptedThroughput(TopologyKind kind, TrafficPattern pattern, double rate)
{
    ColumnConfig col;
    col.topology = kind;
    TrafficConfig t;
    t.pattern = pattern;
    t.injectionRate = rate;
    ColumnSim sim(col, t);
    sim.setMeasureWindow(5000, 25000);
    sim.run(28000);
    return sim.metrics().throughputFlitsPerCycle(20000) / 64.0;
}

class SimLoads : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(SimLoads, AcceptsOfferedLoadBelowSaturation)
{
    const double rate = 0.02;
    const double accepted =
        acceptedThroughput(GetParam(), TrafficPattern::UniformRandom, rate);
    EXPECT_NEAR(accepted, rate, 0.1 * rate);
}

TEST_P(SimLoads, ThroughputMonotonicUpToSaturation)
{
    double prev = 0.0;
    for (double rate : {0.02, 0.04, 0.06}) {
        const double acc = acceptedThroughput(
            GetParam(), TrafficPattern::UniformRandom, rate);
        EXPECT_GE(acc, prev - 0.002);
        prev = acc;
    }
}

TEST_P(SimLoads, EjectionLinkCapsUniformThroughput)
{
    // One flit/cycle per terminal / 8 injectors = 12.5% per injector.
    const double acc = acceptedThroughput(
        GetParam(), TrafficPattern::UniformRandom, 0.25);
    EXPECT_LE(acc, 0.130);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, SimLoads,
                         ::testing::ValuesIn(kAllTopologies),
                         [](const auto &info) {
                             return std::string(topologyName(info.param));
                         });

TEST(SimLoadOrdering, TornadoSaturationFollowsBisection)
{
    // At 8%/injector tornado, mesh_x1 (sat ~3%) and mesh_x2 (~6%) are
    // saturated while mesh_x4 / MECS / DPS still accept the load.
    std::map<TopologyKind, double> acc;
    for (auto kind : kAllTopologies)
        acc[kind] =
            acceptedThroughput(kind, TrafficPattern::Tornado, 0.08);

    EXPECT_LT(acc[TopologyKind::MeshX1], 0.05);
    EXPECT_LT(acc[TopologyKind::MeshX2], 0.075);
    EXPECT_LT(acc[TopologyKind::MeshX1], acc[TopologyKind::MeshX2]);
    EXPECT_GT(acc[TopologyKind::MeshX4], 0.070);
    EXPECT_GT(acc[TopologyKind::Mecs], 0.075);
    EXPECT_GT(acc[TopologyKind::Dps], 0.075);
}

TEST(SimLoadOrdering, UniformRandomMeshX1SaturatesFirst)
{
    std::map<TopologyKind, double> acc;
    for (auto kind : kAllTopologies)
        acc[kind] =
            acceptedThroughput(kind, TrafficPattern::UniformRandom, 0.10);
    EXPECT_LT(acc[TopologyKind::MeshX1], acc[TopologyKind::MeshX2]);
    EXPECT_LT(acc[TopologyKind::MeshX2], acc[TopologyKind::Mecs]);
    EXPECT_GT(acc[TopologyKind::Dps], 0.09);
    EXPECT_GT(acc[TopologyKind::Mecs], 0.09);
}

TEST(SimLoadOrdering, LatencyAdvantageOfRichTopologies)
{
    // Sec. 5.2: MECS and DPS have lower average latency than meshes on
    // both patterns; tornado's longer distances favour MECS over DPS.
    const auto latency = [](TopologyKind kind, TrafficPattern p) {
        ColumnConfig col;
        col.topology = kind;
        TrafficConfig t;
        t.pattern = p;
        t.injectionRate = 0.02;
        ColumnSim sim(col, t);
        sim.setMeasureWindow(3000, 18000);
        sim.run(22000);
        return sim.metrics().latency.mean();
    };

    for (auto p : {TrafficPattern::UniformRandom, TrafficPattern::Tornado}) {
        const double mesh = latency(TopologyKind::MeshX1, p);
        EXPECT_LT(latency(TopologyKind::Mecs, p), mesh);
        EXPECT_LT(latency(TopologyKind::Dps, p), mesh);
    }
    EXPECT_LT(latency(TopologyKind::Mecs, TrafficPattern::Tornado),
              latency(TopologyKind::Dps, TrafficPattern::Tornado));
}

} // namespace
} // namespace taqos
