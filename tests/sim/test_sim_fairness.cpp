/// Fairness properties of PVC arbitration: equal shares on the full
/// hotspot, weighted differentiation, and the no-QOS starvation baseline.
#include <gtest/gtest.h>

#include <string>

#include "common/stats.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

namespace taqos {
namespace {

RunningStat
hotspotShares(ColumnConfig col, Cycle measure = 50000)
{
    const TrafficConfig t = makeHotspotAll(col, 0.05);
    ColumnSim sim(col, t);
    sim.setMeasureWindow(10000, 10000 + measure);
    sim.run(10000 + measure);
    RunningStat rs;
    for (auto flits : sim.metrics().flowFlits)
        rs.push(static_cast<double>(flits));
    return rs;
}

class SimFairness : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(SimFairness, PvcEqualizesHotspotShares)
{
    ColumnConfig col;
    col.topology = GetParam();
    const RunningStat rs = hotspotShares(col);
    ASSERT_GT(rs.mean(), 0.0);
    // Table 2: max deviation from the mean within ~2%, stddev ~1%.
    EXPECT_GT(rs.min() / rs.mean(), 0.97);
    EXPECT_LT(rs.max() / rs.mean(), 1.03);
    EXPECT_LT(rs.stddev() / rs.mean(), 0.015);
}

TEST_P(SimFairness, EjectionFullyUtilized)
{
    ColumnConfig col;
    col.topology = GetParam();
    const RunningStat rs = hotspotShares(col);
    // 64 flows share 1 flit/cycle for 50000 cycles.
    EXPECT_NEAR(rs.sum(), 50000.0, 2500.0);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, SimFairness,
                         ::testing::ValuesIn(kAllTopologies),
                         [](const auto &info) {
                             return std::string(topologyName(info.param));
                         });

TEST(SimFairnessWeights, WeightedFlowsGetProportionalService)
{
    // The OS programs per-flow weights (Sec. 2.2): node 1's flows get 3x
    // the provisioned rate; under full backlog their service should be
    // ~3x a weight-1 flow's.
    ColumnConfig col;
    col.topology = TopologyKind::Mecs;
    col.canonicalize();
    col.pvc.weights.assign(static_cast<std::size_t>(col.numFlows()), 1);
    for (int k = 0; k < col.injectorsPerNode; ++k)
        col.pvc.weights[static_cast<std::size_t>(col.flowOf(1, k))] = 3;

    const TrafficConfig t = makeHotspotAll(col, 0.08);
    ColumnSim sim(col, t);
    sim.setMeasureWindow(10000, 60000);
    sim.run(60000);

    double heavy = 0.0, light = 0.0;
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        const double flits = static_cast<double>(
            sim.metrics().flowFlits[static_cast<std::size_t>(f)]);
        if (col.nodeOfFlow(f) == 1)
            heavy += flits;
        else
            light += flits;
    }
    heavy /= 8.0;  // per heavy flow
    light /= 56.0; // per light flow
    EXPECT_NEAR(heavy / light, 3.0, 0.45);
}

TEST(SimFairnessNoQos, DistantNodesStarve)
{
    // The motivating result (Sec. 5.3): without QOS, locally-fair
    // arbitration hands sources near the hotspot a disproportionate share
    // and distant nodes are essentially starved.
    ColumnConfig col;
    col.topology = TopologyKind::MeshX1;
    col.mode = QosMode::NoQos;
    const TrafficConfig t = makeHotspotAll(col, 0.05);
    ColumnSim sim(col, t);
    sim.setMeasureWindow(10000, 60000);
    sim.run(60000);

    std::vector<double> nodeFlits(8, 0.0);
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        nodeFlits[static_cast<std::size_t>(col.nodeOfFlow(f))] +=
            static_cast<double>(
                sim.metrics().flowFlits[static_cast<std::size_t>(f)]);
    }
    // Node 0 (local) dwarfs node 7 (distant).
    EXPECT_GT(nodeFlits[0], 4.0 * nodeFlits[7]);
    // And the decay is monotonic-ish along the chain.
    EXPECT_GT(nodeFlits[1], nodeFlits[5]);
}

TEST(SimFairnessNoQos, PvcRestoresEquality)
{
    ColumnConfig col;
    col.topology = TopologyKind::MeshX1;
    col.mode = QosMode::Pvc;
    const RunningStat rs = hotspotShares(col);
    EXPECT_LT(rs.stddev() / rs.mean(), 0.015);
}

} // namespace
} // namespace taqos
