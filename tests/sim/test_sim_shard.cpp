/// The sharded engine: bit-identity with the serial engines across every
/// QOS policy, topology and engine selection (the speculative scan, the
/// deferred-admission GSF path and the delayed region sweep are all
/// exact); the preemption-heavy adversarial workload; the whole-chip
/// simulator; byte-identical flit traces that pass the independent
/// checker's audit; the layout ablation (arena vs object-graph hot
/// state); and the deterministic partition/budget planners.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "core/experiments.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "sim/shard_plan.h"
#include "sim/trace_record.h"
#include "traffic/workloads.h"
#include "verify/checker.h"

namespace taqos {
namespace {

std::uint64_t
runDigest(const NetSim &sim)
{
    return metricsDigest(sim.metrics());
}

void
expectQuiescent(const NetSim &sim)
{
    sim.checkInvariants();
    const Network &net = sim.net();
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        EXPECT_FALSE(net.router(n)->hasWork()) << "router " << n;
    }
}

// ------------------------------------------------------ partition plan

TEST(ShardPlan, RangesAreContiguousNonEmptyAndCovering)
{
    const std::vector<std::uint64_t> weights(10, 7);
    const auto ranges = planShardRanges(weights, 4);
    ASSERT_EQ(ranges.size(), 4u);
    NodeId expectBegin = 0;
    for (const auto &[begin, end] : ranges) {
        EXPECT_EQ(begin, expectBegin);
        EXPECT_LT(begin, end);
        expectBegin = end;
    }
    EXPECT_EQ(expectBegin, 10);
}

TEST(ShardPlan, UniformWeightsSplitEvenly)
{
    const std::vector<std::uint64_t> weights(8, 5);
    const auto ranges = planShardRanges(weights, 4);
    ASSERT_EQ(ranges.size(), 4u);
    for (const auto &[begin, end] : ranges)
        EXPECT_EQ(end - begin, 2);
}

TEST(ShardPlan, SkewedWeightsBalanceByWeightNotCount)
{
    // One heavy node up front: it should get a region of its own.
    std::vector<std::uint64_t> weights(9, 1);
    weights[0] = 100;
    const auto ranges = planShardRanges(weights, 2);
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0].second, 1);
    EXPECT_EQ(ranges[1].second, 9);
}

TEST(ShardPlan, MoreShardsThanNodesDegradesToOnePerNode)
{
    const std::vector<std::uint64_t> weights(3, 1);
    const auto ranges = planShardRanges(weights, 8);
    ASSERT_EQ(ranges.size(), 3u);
    for (int n = 0; n < 3; ++n) {
        EXPECT_EQ(ranges[static_cast<std::size_t>(n)].first, n);
        EXPECT_EQ(ranges[static_cast<std::size_t>(n)].second, n + 1);
    }
}

// ----------------------------------------------------- kilo-node plans

TEST(ShardPlan, KiloNodeWeightedPartitionBalancesEveryRegion)
{
    // 1200 nodes with a deterministic non-uniform weight texture.
    std::vector<std::uint64_t> weights;
    std::uint64_t total = 0;
    for (int n = 0; n < 1200; ++n) {
        weights.push_back(1 + static_cast<std::uint64_t>(n * 7919) % 13);
        total += weights.back();
    }
    const std::uint64_t maxW =
        *std::max_element(weights.begin(), weights.end());

    for (int shards : {2, 4, 8, 16}) {
        const auto ranges = planShardRanges(weights, shards);
        ASSERT_EQ(ranges.size(), static_cast<std::size_t>(shards));
        NodeId expectBegin = 0;
        const std::uint64_t ideal =
            total / static_cast<std::uint64_t>(shards);
        for (const auto &[begin, end] : ranges) {
            EXPECT_EQ(begin, expectBegin);
            ASSERT_LT(begin, end);
            expectBegin = end;
            std::uint64_t region = 0;
            for (NodeId n = begin; n < end; ++n)
                region += weights[static_cast<std::size_t>(n)];
            // A greedy prefix cut can miss the ideal share by at most
            // one node's weight on either side.
            EXPECT_LE(region, ideal + maxW) << "shards " << shards;
            EXPECT_GE(region + maxW, ideal) << "shards " << shards;
        }
        EXPECT_EQ(expectBegin, 1200);
    }
}

TEST(ShardPlan, KiloNodeUnevenRegionsNeverStackTwoSpikes)
{
    // A few very heavy nodes in a sea of light ones (the shape of block
    // nodes vs compute nodes). The greedy cut guarantees a region never
    // overshoots its ideal share by more than one node's weight — so no
    // region can absorb two spikes, and region sizes go very uneven.
    std::vector<std::uint64_t> weights(1100, 1);
    std::uint64_t total = 0;
    for (std::size_t n = 100; n < weights.size(); n += 250)
        weights[n] = 2000;
    for (std::uint64_t w : weights)
        total += w;
    const std::uint64_t ideal = total / 8;
    ASSERT_LT(ideal + 2000, 2 * 2000); // the bound excludes double spikes

    const auto ranges = planShardRanges(weights, 8);
    ASSERT_EQ(ranges.size(), 8u);
    EXPECT_EQ(ranges.back().second, 1100);
    NodeId minSize = 1100, maxSize = 0;
    for (const auto &[begin, end] : ranges) {
        ASSERT_LT(begin, end);
        std::uint64_t region = 0;
        std::size_t spikes = 0;
        for (NodeId n = begin; n < end; ++n) {
            region += weights[static_cast<std::size_t>(n)];
            spikes += weights[static_cast<std::size_t>(n)] == 2000;
        }
        EXPECT_LE(region, ideal + 2000);
        EXPECT_LE(spikes, 1u);
        minSize = std::min(minSize, end - begin);
        maxSize = std::max(maxSize, end - begin);
    }
    // Spike regions stay node-poor, all-light regions node-rich.
    EXPECT_LT(minSize * 2, maxSize);
}

TEST(ShardPlan, MultiChipFabricWeightsSpanTheWholeIdSpace)
{
    // The real kilo-node structure: 4 chips x 16x16 nodes x 2 shared
    // columns. Block nodes carry the per-flow injector queues and so
    // must weigh more than compute nodes; the planner must still cover
    // the full multi-chip node-id space with contiguous regions.
    FabricSpec spec;
    spec.chips = 4;
    spec.chip.tilesX = 32;
    spec.chip.tilesY = 32;
    spec.chip.sharedColumns = {4, 12};
    spec.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    const auto net = FabricNetwork::build(spec);

    const auto weights = shardWeights(*net);
    ASSERT_EQ(weights.size(), 1024u);
    std::uint64_t blockW = 0, blockN = 0, computeW = 0, computeN = 0;
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        if (net->isBlockNode(n)) {
            blockW += weights[static_cast<std::size_t>(n)];
            ++blockN;
        } else {
            computeW += weights[static_cast<std::size_t>(n)];
            ++computeN;
        }
    }
    EXPECT_GT(blockW / blockN, computeW / computeN);

    for (int shards : {4, 8}) {
        const auto ranges = planShardRanges(weights, shards);
        ASSERT_EQ(ranges.size(), static_cast<std::size_t>(shards));
        NodeId expectBegin = 0;
        for (const auto &[begin, end] : ranges) {
            EXPECT_EQ(begin, expectBegin);
            EXPECT_LT(begin, end);
            expectBegin = end;
        }
        EXPECT_EQ(expectBegin, net->numNodes());
    }

    // Weight-balanced regions put more routers in compute-heavy spans:
    // with 8 regions over 4 chips, region sizes must differ (a plain
    // node-count split would make them all 128).
    const auto ranges = planShardRanges(weights, 8);
    bool uneven = false;
    for (const auto &[begin, end] : ranges)
        uneven = uneven || (end - begin != 128);
    EXPECT_TRUE(uneven);
}

// ------------------------------------------------- sweep thread budget

TEST(ShardPlan, SweepBudgetDividesMachineByShards)
{
    // Auto (threads <= 0): the machine split across per-run shards.
    EXPECT_EQ(sweepWorkerBudget(0, 100, 4, 16), 4);
    EXPECT_EQ(sweepWorkerBudget(0, 100, 1, 16), 16);
    // An explicit request is honoured up to that same cap.
    EXPECT_EQ(sweepWorkerBudget(2, 100, 4, 16), 2);
    EXPECT_EQ(sweepWorkerBudget(8, 100, 4, 16), 4);
    // Never more workers than cells, never fewer than one.
    EXPECT_EQ(sweepWorkerBudget(0, 3, 1, 16), 3);
    EXPECT_EQ(sweepWorkerBudget(0, 100, 8, 4), 1);
    EXPECT_EQ(sweepWorkerBudget(0, 0, 1, 0), 1);
    // Kilo-cell sweeps of kilo-node fabrics: workers x shards still
    // never exceeds the machine.
    EXPECT_EQ(sweepWorkerBudget(0, 1024, 8, 64), 8);
    EXPECT_EQ(sweepWorkerBudget(16, 1024, 8, 64), 8);
    EXPECT_EQ(sweepWorkerBudget(0, 1024, 1, 64), 64);
}

// -------------------------------------------------- toggle equivalence

struct ShardCase {
    TopologyKind topology;
    QosMode mode;
    bool activity;
};

class ShardEquivalence : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardEquivalence, ShardedEngineIsBitIdenticalToSerial)
{
    const ShardCase &tc = GetParam();
    const RunPhases phases = testPhases();
    std::uint64_t digests[2] = {0, 0};
    for (int sharded = 0; sharded < 2; ++sharded) {
        const ColumnConfig col = paperColumn(tc.topology, tc.mode);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.08;
        ColumnSim sim(col, traffic);
        EngineConfig ec;
        ec.activityDriven = tc.activity;
        if (sharded == 1) {
            ec.shards = 4;
            ec.shardMinActive = 0; // exercise the pool every cycle
        }
        sim.configure(ec);
        sim.setMeasureWindow(phases.warmup, phases.measureEnd());
        sim.run(phases.total());
        sim.checkInvariants();
        digests[sharded] = runDigest(sim);
    }
    EXPECT_EQ(digests[0], digests[1])
        << topologyName(tc.topology) << "/" << qosModeName(tc.mode)
        << (tc.activity ? "/event" : "/tick");
}

std::vector<ShardCase>
shardCases()
{
    std::vector<ShardCase> cases;
    for (auto kind : {TopologyKind::MeshX1, TopologyKind::Mecs,
                      TopologyKind::Dps}) {
        for (QosMode mode : kAllQosModes) {
            cases.push_back(ShardCase{kind, mode, /*activity=*/true});
            cases.push_back(ShardCase{kind, mode, /*activity=*/false});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ShardEquivalence, ::testing::ValuesIn(shardCases()),
    [](const ::testing::TestParamInfo<ShardCase> &info) {
        std::string n = std::string(topologyName(info.param.topology)) +
                        "_" + qosModeName(info.param.mode) +
                        (info.param.activity ? "_event" : "_tick");
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(ShardEquivalence, UnevenAndSingleNodeRegionCountsMatch)
{
    // shards=3 leaves uneven regions; shards=8 puts every node of the
    // 8-node column in a region of its own (the boundary-heavy extreme).
    const RunPhases phases = testPhases();
    std::uint64_t serial = 0;
    for (int shards : {1, 3, 8}) {
        const ColumnConfig col =
            paperColumn(TopologyKind::MeshX1, QosMode::Pvc);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.10;
        ColumnSim sim(col, traffic);
        if (shards > 1)
            sim.configure({.shards = shards, .shardMinActive = 0});
        sim.setMeasureWindow(phases.warmup, phases.measureEnd());
        sim.run(phases.total());
        sim.checkInvariants();
        if (shards == 1)
            serial = runDigest(sim);
        else
            EXPECT_EQ(runDigest(sim), serial) << "shards=" << shards;
    }
}

TEST(ShardEquivalence, PreemptionHeavyWorkloadMatches)
{
    std::uint64_t digests[2] = {0, 0};
    Cycle done[2] = {0, 0};
    for (int sharded = 0; sharded < 2; ++sharded) {
        ColumnConfig col = paperColumn(TopologyKind::Dps, QosMode::Pvc);
        TrafficConfig t = makeWorkload1(col);
        t.genUntil = 20000;
        ColumnSim sim(col, t);
        if (sharded == 1)
            sim.configure({.shards = 4, .shardMinActive = 0});
        sim.setMeasureWindow(0, 20000);
        done[sharded] = sim.runUntilDrained(200000, 20000);
        ASSERT_NE(done[sharded], kNoCycle);
        EXPECT_GT(sim.metrics().preemptionEvents, 1000u);
        digests[sharded] = runDigest(sim);
        expectQuiescent(sim);
    }
    EXPECT_EQ(done[0], done[1]);
    EXPECT_EQ(digests[0], digests[1]);
}

TEST(ShardEquivalence, WholeChipSimulationMatches)
{
    std::uint64_t digests[2] = {0, 0};
    std::uint64_t handoffs[2] = {0, 0};
    for (int sharded = 0; sharded < 2; ++sharded) {
        ChipNetConfig cc;
        cc.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
        cc.column.pvc.frameLen = 2000;
        TrafficConfig t;
        t.pattern = TrafficPattern::UniformRandom;
        t.injectionRate = 0.05;
        t.genUntil = 5000;
        ChipSim sim(cc, t);
        if (sharded == 1)
            sim.configure({.shards = 4, .shardMinActive = 0});
        sim.setMeasureWindow(0, 5000);
        const Cycle done = sim.runUntilDrained(120000, 5000);
        ASSERT_NE(done, kNoCycle);
        digests[sharded] = runDigest(sim);
        handoffs[sharded] = sim.handoffs();
        expectQuiescent(sim);
    }
    EXPECT_GT(handoffs[1], 0u);
    EXPECT_EQ(handoffs[0], handoffs[1]);
    EXPECT_EQ(digests[0], digests[1]);
}

// ------------------------------------------- recorded traces and audit

TEST(ShardTrace, ShardedTraceIsByteIdenticalAndAuditsClean)
{
    // A preemption-heavy PVC cell recorded under both engines: the
    // sharded run's flit trace must serialize to the same bytes as the
    // serial run's, and replay clean through the independent checker.
    std::string serialized[2];
    for (int sharded = 0; sharded < 2; ++sharded) {
        ColumnConfig col = paperColumn(TopologyKind::Dps, QosMode::Pvc);
        TrafficConfig t = makeWorkload1(col);
        t.genUntil = 20000;
        ColumnSim sim(col, t);
        if (sharded == 1)
            sim.configure({.shards = 4, .shardMinActive = 0});
        sim.setMeasureWindow(0, 20000);
        TraceRecorder rec(describeColumn(sim.cfg()));
        rec.setMeasureWindow(0, 20000);
        sim.attachTraceSink(&rec);

        const Cycle done = sim.runUntilDrained(200000, 20000);
        ASSERT_NE(done, kNoCycle);
        rec.finish(sim.now(), sim.drained());
        EXPECT_GT(sim.metrics().preemptionEvents, 1000u);

        const CheckReport report = verifyTrace(rec.trace());
        EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
        EXPECT_GT(report.eventsChecked, 1000u);
        serialized[sharded] = serializeFlitTrace(rec.trace());
    }
    EXPECT_EQ(serialized[0], serialized[1]);
}

// ------------------------------------------------------ layout ablation

TEST(HotLayout, ArenaAndObjectGraphLayoutsAreBitIdentical)
{
    // The arena pass moves storage, never state: digests must match the
    // object-graph baseline exactly, under the sharded engine too.
    const RunPhases phases = testPhases();
    std::uint64_t digests[3] = {0, 0, 0};
    for (int variant = 0; variant < 3; ++variant) {
        setHotLayout(variant == 0 ? HotLayout::ObjectGraph
                                  : HotLayout::Arena);
        const ColumnConfig col =
            paperColumn(TopologyKind::Mecs, QosMode::Pvc);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.08;
        ColumnSim sim(col, traffic);
        if (variant == 2)
            sim.configure({.shards = 4, .shardMinActive = 0});
        sim.setMeasureWindow(phases.warmup, phases.measureEnd());
        sim.run(phases.total());
        sim.checkInvariants();
        digests[variant] = runDigest(sim);
        setHotLayout(HotLayout::Arena);
    }
    EXPECT_NE(digests[0], 0u);
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[0], digests[2]);
}

} // namespace
} // namespace taqos
