/// Whole-chip simulation: the column-equivalence anchor (a ChipSim
/// restricted to its shared column is metric-identical to ColumnSim on
/// the same seed), full-chip delivery guarantees, and structural
/// invariants after every scenario.
#include <gtest/gtest.h>

#include <string>

#include "core/experiments.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

namespace taqos {
namespace {

void
expectMetricsIdentical(const SimMetrics &a, const SimMetrics &b)
{
    EXPECT_EQ(a.generatedPackets, b.generatedPackets);
    EXPECT_EQ(a.generatedFlits, b.generatedFlits);
    EXPECT_EQ(a.measuredGenerated, b.measuredGenerated);
    EXPECT_EQ(a.injectedAttempts, b.injectedAttempts);
    EXPECT_EQ(a.deliveredPackets, b.deliveredPackets);
    EXPECT_EQ(a.deliveredFlits, b.deliveredFlits);
    EXPECT_EQ(a.preemptionEvents, b.preemptionEvents);
    EXPECT_DOUBLE_EQ(a.usefulHops, b.usefulHops);
    EXPECT_DOUBLE_EQ(a.wastedHops, b.wastedHops);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
    ASSERT_EQ(a.flowFlits.size(), b.flowFlits.size());
    for (std::size_t f = 0; f < a.flowFlits.size(); ++f)
        EXPECT_EQ(a.flowFlits[f], b.flowFlits[f]) << "flow " << f;
}

class ChipEquivalence : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(ChipEquivalence, SingleColumnMatchesColumnSimExactly)
{
    ColumnConfig col;
    col.topology = GetParam();
    col.mode = QosMode::Pvc;
    col.pvc.frameLen = 2000; // cross several frame boundaries

    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.06;
    t.genUntil = 6000;

    ColumnSim ref(col, t);
    ref.setMeasureWindow(1000, 5000);

    ChipNetConfig cc;
    cc.column = col;
    cc.injectAtSources = false; // column-equivalence mode: rows idle
    ChipSim chip(cc, t);
    chip.setMeasureWindow(1000, 5000);

    for (int i = 0; i < 9000; ++i) {
        ref.step();
        chip.step();
    }
    expectMetricsIdentical(ref.metrics(), chip.metrics());
    EXPECT_EQ(chip.handoffs(), 0u); // the rows really were idle
    EXPECT_EQ(ref.drained(), chip.drained());
    ref.checkInvariants();
    chip.checkInvariants();
}

TEST_P(ChipEquivalence, HotspotPreemptionsMatchExactly)
{
    // Saturating hotspot: exercises PVC preemption, NACK replay and the
    // reserved quota — the hardest state to keep cycle-identical.
    ColumnConfig col;
    col.topology = GetParam();
    col.mode = QosMode::Pvc;
    col.pvc.frameLen = 3000;
    TrafficConfig t = makeHotspotAll(col, 0.05);
    t.genUntil = 5000;

    ColumnSim ref(col, t);
    ChipNetConfig cc;
    cc.column = col;
    cc.injectAtSources = false;
    ChipSim chip(cc, t);

    for (int i = 0; i < 8000; ++i) {
        ref.step();
        chip.step();
    }
    expectMetricsIdentical(ref.metrics(), chip.metrics());
    ref.checkInvariants();
    chip.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, ChipEquivalence,
                         ::testing::ValuesIn(kAllTopologies),
                         [](const auto &info) {
                             return std::string(topologyName(info.param));
                         });

class ChipSimTest : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(ChipSimTest, FullChipLowLoadDeliversEverything)
{
    ChipNetConfig cc;
    cc.column.topology = GetParam();
    cc.column.mode = QosMode::Pvc;

    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.02;
    t.genUntil = 5000;

    ChipSim sim(cc, t);
    const Cycle done = sim.runUntilDrained(60000, 5000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    EXPECT_EQ(sim.metrics().deliveredFlits, sim.metrics().generatedFlits);
    // Row-injector traffic really crossed the row meshes.
    EXPECT_GT(sim.handoffs(), 0u);
    sim.checkInvariants();
}

TEST_P(ChipSimTest, FullChipHotspotKeepsInvariantsUnderPressure)
{
    ChipNetConfig cc;
    cc.column.topology = GetParam();
    cc.column.mode = QosMode::Pvc;
    cc.column.pvc.frameLen = 2500;

    TrafficConfig t = makeHotspotAll(cc.column, 0.05);
    t.genUntil = 6000;

    ChipSim sim(cc, t);
    for (int chunk = 0; chunk < 8; ++chunk) {
        sim.run(1000);
        sim.checkInvariants();
    }
    EXPECT_GT(sim.metrics().deliveredPackets, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, ChipSimTest,
                         ::testing::ValuesIn(kAllTopologies),
                         [](const auto &info) {
                             return std::string(topologyName(info.param));
                         });

TEST(ChipSimLatency, RowSegmentAddsEndToEndLatency)
{
    // The same traffic measured end to end from the compute nodes must be
    // slower than when injected at the column boundary: the row segment
    // is real simulated work, not an accounting fiction.
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    TrafficConfig t;
    t.injectionRate = 0.04;
    t.genUntil = 6000;

    ChipNetConfig atColumn;
    atColumn.column = col;
    atColumn.injectAtSources = false;
    ChipSim fast(atColumn, t);
    fast.setMeasureWindow(1000, 6000);
    fast.runUntilDrained(40000, 6000);

    ChipNetConfig atSources;
    atSources.column = col;
    atSources.injectAtSources = true;
    ChipSim slow(atSources, t);
    slow.setMeasureWindow(1000, 6000);
    const Cycle done = slow.runUntilDrained(60000, 6000);
    ASSERT_NE(done, kNoCycle);

    EXPECT_GT(slow.metrics().latency.mean(),
              fast.metrics().latency.mean() + 1.0);
    fast.checkInvariants();
    slow.checkInvariants();
}

TEST(ChipConsolidation, ConsolidatedServerRunsToDrainWithQosColumn)
{
    const ChipConsolidationResult res =
        runChipConsolidation(TopologyKind::Dps, 0.05, testPhases());
    ASSERT_NE(res.drainCycle, kNoCycle);
    EXPECT_GT(res.deliveredPackets, 0u);
    EXPECT_GT(res.handoffs, 0u);
    ASSERT_EQ(res.vms.size(), 3u);
    for (const auto &vm : res.vms) {
        EXPECT_GT(vm.flits, 0u) << "VM " << vm.vmId;
        EXPECT_GT(vm.domainNodes, 0u) << "VM " << vm.vmId;
    }
    // Weights are 4:2:1 — under uncongested uniform load every VM gets
    // its demand, so per-node service is within the same ballpark; the
    // ordering assertion belongs to saturated scenarios (bench).
}

} // namespace
} // namespace taqos
