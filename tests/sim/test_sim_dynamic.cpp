/// Dynamic workloads at simulation level: bursty/ramp columns are
/// bit-identical between the serial and sharded engines and across
/// checkpoint restore; trace replay with inflation is deterministic at
/// cell level; the tenant-churn driver's schedule is a pure function of
/// (seed, epoch), holds the co-scheduling invariant, and a churned chip
/// reproduces exactly at any shard count and across a mid-run restore;
/// and the sweep layer keys non-steady workloads into cell seeds and
/// cache keys while leaving steady cells untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chip/churn.h"
#include "exp/cell_cache.h"
#include "exp/json_writer.h"
#include "exp/sweep.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "traffic/trace.h"

namespace taqos {
namespace {

std::uint64_t
runDigest(const NetSim &sim)
{
    return metricsDigest(sim.metrics());
}

TrafficConfig
uniformTraffic(double rate, std::uint64_t seed = 1)
{
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = rate;
    traffic.seed = seed;
    return traffic;
}

WorkloadSpec
burstyDefaults()
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Bursty;
    return spec;
}

WorkloadSpec
rampSpec(Cycle period)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Ramp;
    spec.rampPeriod = period;
    return spec;
}

std::uint64_t
modulatedDigest(const WorkloadSpec &workload, QosMode mode, int shards)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    col.mode = mode;
    TrafficConfig traffic = uniformTraffic(0.05, 77);
    traffic.genUntil = 4000;
    ColumnSim sim(col, traffic, workload);
    sim.configure({.shards = shards});
    sim.setMeasureWindow(500, 4000);
    const Cycle done = sim.runUntilDrained(30000, 4000);
    EXPECT_NE(done, kNoCycle);
    sim.checkInvariants();
    return runDigest(sim);
}

TEST(SimDynamic, BurstyColumnIsShardInvariantAcrossPolicies)
{
    for (auto mode : {QosMode::Pvc, QosMode::Gsf, QosMode::NoQos}) {
        const auto serial = modulatedDigest(burstyDefaults(), mode, 1);
        const auto sharded = modulatedDigest(burstyDefaults(), mode, 4);
        EXPECT_EQ(serial, sharded) << qosModeName(mode);
    }
}

TEST(SimDynamic, RampColumnIsShardInvariant)
{
    const auto serial = modulatedDigest(rampSpec(1000), QosMode::Pvc, 1);
    const auto sharded = modulatedDigest(rampSpec(1000), QosMode::Pvc, 4);
    EXPECT_EQ(serial, sharded);
}

TEST(SimDynamic, BurstyWorkloadActuallyChangesTheRun)
{
    // The modulator must not be a no-op: the same cell under steady and
    // bursty generation produces different traffic.
    const auto steady =
        modulatedDigest(WorkloadSpec{}, QosMode::Pvc, 1);
    const auto bursty = modulatedDigest(burstyDefaults(), QosMode::Pvc, 1);
    EXPECT_NE(steady, bursty);
}

TEST(SimDynamic, BurstyCheckpointRestoresBitIdentically)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    col.mode = QosMode::Pvc;
    TrafficConfig traffic = uniformTraffic(0.05, 31);
    traffic.genUntil = 4000;

    ColumnSim live(col, traffic, burstyDefaults());
    live.setMeasureWindow(500, 4000);
    live.run(1700); // mid-run, mid-burst
    std::ostringstream os;
    live.saveCheckpoint(os);
    const std::string snapshot = os.str();
    live.runUntilDrained(30000, 4000);

    ColumnSim resumed(col, traffic, burstyDefaults());
    resumed.setMeasureWindow(500, 4000);
    std::istringstream is(snapshot);
    std::string err;
    ASSERT_TRUE(resumed.restoreCheckpoint(is, &err)) << err;
    EXPECT_EQ(resumed.now(), 1700u);
    resumed.runUntilDrained(30000, 4000);

    EXPECT_EQ(runDigest(live), runDigest(resumed));
}

TEST(SimDynamic, TraceInflationCellsAreDeterministicAndThinned)
{
    // Record a real workload, replay it through the sweep cell runner at
    // x1 and x0.5 inflation: each cell reproduces exactly (serial vs
    // sharded), and the thinned replay delivers strictly less.
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    const TrafficTrace recorded =
        TrafficTrace::record(col, uniformTraffic(0.05, 5), 3000);
    const std::string path = ::testing::TempDir() + "sim_dynamic_trace.csv";
    ASSERT_TRUE(writeTextFile(path, recorded.toCsv()));

    CellSpec cell;
    cell.scenario = Scenario::LatencyLoad;
    cell.topology = TopologyKind::Dps;
    cell.mode = QosMode::Pvc;
    cell.rate = 0.05;
    cell.phases = RunPhases{500, 2500, 1000};
    cell.seed = 17;
    cell.workloadSpec.kind = WorkloadKind::Trace;
    cell.workloadSpec.tracePath = path;

    const CellResult full = SweepRunner::runCell(cell);
    CellSpec sharded = cell;
    sharded.shards = 4;
    EXPECT_EQ(full.metrics, SweepRunner::runCell(sharded).metrics);

    CellSpec thinned = cell;
    thinned.workloadSpec.inflate = 0.5;
    const CellResult half = SweepRunner::runCell(thinned);
    EXPECT_EQ(half.metrics, SweepRunner::runCell(thinned).metrics);
    EXPECT_LT(half.get("delivered_packets"), full.get("delivered_packets"));
    EXPECT_GT(half.get("delivered_packets"),
              0.3 * full.get("delivered_packets"));
}

// ------------------------------------------------------- tenant churn

WorkloadSpec
churnSpec(int frames = 1, int maxVms = 5)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Churn;
    spec.churnFrames = frames;
    spec.churnMaxVms = maxVms;
    return spec;
}

ChipNetConfig
churnChip(Cycle frameLen)
{
    ChipNetConfig cfg;
    cfg.column.topology = TopologyKind::Dps;
    cfg.column.mode = QosMode::Pvc;
    cfg.column.numNodes = cfg.chip.nodesY();
    cfg.column.pvc.frameLen = frameLen; // short frames: epochs fire fast
    return cfg;
}

std::vector<ChurnTenant>
initialTenants()
{
    return {{0, 32, 2}, {1, 16, 1}};
}

TEST(ChurnDriver, ScheduleIsAPureFunctionOfSeedAndEpoch)
{
    const ChipNetConfig cfg = churnChip(2000);
    ChurnDriver a(cfg, initialTenants(), churnSpec(), 1234);
    ChurnDriver b(cfg, initialTenants(), churnSpec(), 1234);
    a.advanceTo(12);
    b.advanceTo(12);
    EXPECT_EQ(a.arrivals(), b.arrivals());
    EXPECT_EQ(a.departures(), b.departures());
    EXPECT_EQ(a.liveVms(), b.liveVms());
    EXPECT_EQ(a.flowRegisters().weights, b.flowRegisters().weights);
    EXPECT_EQ(a.activeComputeFlows(), b.activeComputeFlows());

    // Replaying in one jump equals replaying step by step.
    ChurnDriver c(cfg, initialTenants(), churnSpec(), 1234);
    for (int e = 1; e <= 12; ++e)
        c.advanceTo(e);
    EXPECT_EQ(a.flowRegisters().weights, c.flowRegisters().weights);

    // A different seed produces a different mix somewhere in 12 epochs.
    ChurnDriver d(cfg, initialTenants(), churnSpec(), 99);
    d.advanceTo(12);
    EXPECT_TRUE(a.arrivals() != d.arrivals() ||
                a.flowRegisters().weights != d.flowRegisters().weights);
}

TEST(ChurnDriver, ChurnsWithinBoundsAndKeepsCoSchedule)
{
    const ChipNetConfig cfg = churnChip(2000);
    ChurnDriver churn(cfg, initialTenants(), churnSpec(1, 4), 7);
    for (int e = 1; e <= 25; ++e) {
        churn.advanceTo(e);
        EXPECT_GE(churn.liveVms(), 1);
        EXPECT_LE(churn.liveVms(), 4);
        EXPECT_TRUE(churn.os().coScheduleInvariant());
    }
    // 25 epochs of one event each must have actually churned.
    EXPECT_EQ(churn.arrivals() + churn.departures(), 25);
    EXPECT_GT(churn.arrivals(), 0);
    EXPECT_GT(churn.departures(), 0);
}

/// The cell runner's segment loop in miniature, with a short QOS frame
/// so several churn epochs land inside a fast test run.
std::uint64_t
churnedChipDigest(int shards, std::uint64_t seed, Cycle restartAt = 0)
{
    const ChipNetConfig base = churnChip(1500);
    ChurnDriver churn(base, initialTenants(), churnSpec(), seed);
    ChipNetConfig cfg = base;
    cfg.column.pvc = churn.flowRegisters();

    TrafficConfig traffic = uniformTraffic(0.02, seed);
    traffic.genUntil = 8000;
    const auto active = churn.activeComputeFlows();
    traffic.activeFlows.assign(active.begin(), active.end());

    auto sim = std::make_unique<ChipSim>(cfg, traffic);
    sim->configure({.shards = shards});
    sim->setMeasureWindow(500, 8000);

    const Cycle epochLen = churn.epochLen();
    Cycle now = 0;
    for (int e = 1; static_cast<Cycle>(e) * epochLen < traffic.genUntil;
         ++e) {
        const Cycle boundary = static_cast<Cycle>(e) * epochLen;
        if (restartAt > now && restartAt <= boundary) {
            // Snapshot mid-epoch, then resume in a freshly built sim:
            // rebuild the driver, replay its schedule, re-apply the
            // epoch, restore (churn.h's documented recipe).
            sim->run(restartAt - now);
            std::ostringstream os;
            sim->saveCheckpoint(os);
            const std::string snapshot = os.str();

            sim = std::make_unique<ChipSim>(cfg, traffic);
            sim->configure({.shards = shards});
            sim->setMeasureWindow(500, 8000);
            churn.applyTo(*sim);
            std::istringstream is(snapshot);
            std::string err;
            const bool ok = sim->restoreCheckpoint(is, &err);
            EXPECT_TRUE(ok) << err;
            sim->run(boundary - restartAt);
        } else {
            sim->run(boundary - now);
        }
        now = boundary;
        churn.advanceTo(e);
        churn.applyTo(*sim);
    }
    sim->runUntilDrained(40000 - now, traffic.genUntil);
    sim->checkInvariants();
    EXPECT_GT(churn.currentEpoch(), 2);
    return runDigest(*sim);
}

TEST(SimDynamic, ChurnedChipIsShardInvariant)
{
    EXPECT_EQ(churnedChipDigest(1, 11), churnedChipDigest(4, 11));
}

TEST(SimDynamic, ChurnedChipSurvivesMidEpochRestore)
{
    const auto uninterrupted = churnedChipDigest(1, 23);
    EXPECT_EQ(uninterrupted, churnedChipDigest(1, 23, 2800));
    // And the restore may change the shard count, too.
    EXPECT_EQ(uninterrupted, churnedChipDigest(4, 23, 2800));
}

// ------------------------------------------- sweep keys and expansion

SweepSpec
keyedSpec()
{
    SweepSpec spec;
    spec.name = "dyn_keys";
    spec.scenario = Scenario::LatencyLoad;
    spec.topologies = {TopologyKind::Dps};
    spec.rates = {0.05};
    spec.replicates = 1;
    spec.phases = RunPhases{500, 1500, 1000};
    return spec;
}

TEST(SweepSpec, WorkloadAxisMultipliesTheGrid)
{
    SweepSpec spec = keyedSpec();
    WorkloadSpec bursty = burstyDefaults();
    spec.workloadSpecs = {WorkloadSpec{}, bursty, rampSpec(1000)};
    const auto cells = spec.expand();
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_TRUE(cells[0].workloadSpec.isSteady());
    EXPECT_EQ(cells[1].workloadSpec.name(), bursty.name());
    EXPECT_EQ(cells[2].workloadSpec.kind, WorkloadKind::Ramp);
}

TEST(SweepSpec, SteadyCellsKeepTheirSeedsAndKeysNonSteadyDiffer)
{
    // Compatibility contract: an explicit steady axis is byte-for-byte
    // the same cell as the implicit default — same seed, same cache key
    // — so PR-9 cache fragments and golden records stay valid. Any
    // non-steady workload must move both.
    const auto implicit = keyedSpec().expand();
    SweepSpec explicitSteady = keyedSpec();
    explicitSteady.workloadSpecs = {WorkloadSpec{}};
    const auto steady = explicitSteady.expand();
    ASSERT_EQ(implicit.size(), 1u);
    ASSERT_EQ(steady.size(), 1u);
    EXPECT_EQ(implicit[0].seed, steady[0].seed);
    EXPECT_EQ(CellCache::cellKey(implicit[0]),
              CellCache::cellKey(steady[0]));

    SweepSpec dynamicSpec = keyedSpec();
    dynamicSpec.workloadSpecs = {burstyDefaults(), rampSpec(1000)};
    const auto dyn = dynamicSpec.expand();
    ASSERT_EQ(dyn.size(), 2u);
    for (const auto &cell : dyn) {
        EXPECT_NE(cell.seed, steady[0].seed) << cell.workloadSpec.name();
        EXPECT_NE(CellCache::cellKey(cell), CellCache::cellKey(steady[0]))
            << cell.workloadSpec.name();
    }
    EXPECT_NE(dyn[0].seed, dyn[1].seed);
    EXPECT_NE(CellCache::cellKey(dyn[0]), CellCache::cellKey(dyn[1]));

    // Parameter changes rekey as well.
    SweepSpec gained = keyedSpec();
    WorkloadSpec hot = burstyDefaults();
    hot.burstGain = 8.0;
    gained.workloadSpecs = {hot};
    EXPECT_NE(gained.expand()[0].seed, dyn[0].seed);
}

TEST(SweepResult, JsonCarriesTheWorkloadAxis)
{
    SweepSpec spec = keyedSpec();
    spec.workloadSpecs = {burstyDefaults()};
    const SweepResult result = SweepRunner(1).run(spec);
    const std::string json = result.toJson();
    EXPECT_NE(json.find("\"workload_specs\""), std::string::npos);
    EXPECT_NE(json.find("\"workload_spec\": "
                        "\"bursty:on=0.002,off=0.01,gain=4\""),
              std::string::npos);
}

} // namespace
} // namespace taqos
