/// Checkpoint/restore: mid-run save -> restore bit-identity across every
/// QOS policy, topology, engine and shard count; engine- and
/// layout-neutral restore (save under one engine/layout, resume under
/// another); trace continuity across the checkpoint boundary (merged
/// prefix+suffix trace byte-identical to the uninterrupted run's and
/// clean under the independent checker); whole-chip and fabric
/// round-trips; and rejection of corrupt, truncated or mismatched
/// streams with diagnosable errors that leave the target untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/arena.h"
#include "core/experiments.h"
#include "qos/pvc.h"
#include "sim/checkpoint.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "sim/engine_salt.h"
#include "sim/fabric_sim.h"
#include "sim/trace_record.h"
#include "traffic/workloads.h"
#include "verify/checker.h"

namespace taqos {
namespace {

std::uint64_t
runDigest(const NetSim &sim)
{
    return metricsDigest(sim.metrics());
}

TrafficConfig
uniformTraffic(double rate)
{
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = rate;
    return traffic;
}

/// Save `sim` into a string at its current cycle.
std::string
saveToString(const NetSim &sim)
{
    std::ostringstream os;
    sim.saveCheckpoint(os);
    return os.str();
}

bool
restoreFromString(NetSim &sim, const std::string &bytes, std::string *err)
{
    std::istringstream is(bytes);
    return sim.restoreCheckpoint(is, err);
}

// --------------------------------------------- full-matrix equivalence

struct CkptCase {
    TopologyKind topology;
    QosMode mode;
    bool activity;
    int shards;
};

class CheckpointEquivalence : public ::testing::TestWithParam<CkptCase> {};

TEST_P(CheckpointEquivalence, MidRunRestoreIsBitIdentical)
{
    // One run saved mid-warmup and continued (saving is const, so this
    // is also the uninterrupted reference), one run restored from the
    // snapshot into a freshly built sim: digests must match exactly.
    const CkptCase &tc = GetParam();
    const RunPhases phases = testPhases();
    const ColumnConfig col = paperColumn(tc.topology, tc.mode);
    const TrafficConfig traffic = uniformTraffic(0.08);
    EngineConfig ec;
    ec.activityDriven = tc.activity;
    ec.shards = tc.shards;
    ec.shardMinActive = 0; // exercise the pool every cycle

    ColumnSim ref(col, traffic);
    ref.configure(ec);
    ref.setMeasureWindow(phases.warmup, phases.measureEnd());
    ref.run(phases.warmup);
    const std::string bytes = saveToString(ref);
    ref.run(phases.total() - phases.warmup);
    ref.checkInvariants();
    const std::uint64_t want = runDigest(ref);

    ColumnSim sim(col, traffic);
    sim.configure(ec);
    sim.setMeasureWindow(phases.warmup, phases.measureEnd());
    std::string err;
    ASSERT_TRUE(restoreFromString(sim, bytes, &err)) << err;
    EXPECT_EQ(sim.now(), phases.warmup);
    sim.run(phases.total() - phases.warmup);
    sim.checkInvariants();
    EXPECT_EQ(runDigest(sim), want)
        << topologyName(tc.topology) << "/" << qosModeName(tc.mode)
        << (tc.activity ? "/event" : "/tick") << "/shards=" << tc.shards;
}

std::vector<CkptCase>
ckptCases()
{
    std::vector<CkptCase> cases;
    for (auto kind : {TopologyKind::MeshX1, TopologyKind::Mecs,
                      TopologyKind::Dps}) {
        for (QosMode mode : kAllQosModes) {
            for (bool activity : {true, false}) {
                cases.push_back(CkptCase{kind, mode, activity, 1});
                cases.push_back(CkptCase{kind, mode, activity, 4});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CheckpointEquivalence, ::testing::ValuesIn(ckptCases()),
    [](const ::testing::TestParamInfo<CkptCase> &info) {
        std::string n = std::string(topologyName(info.param.topology)) +
                        "_" + qosModeName(info.param.mode) +
                        (info.param.activity ? "_event" : "_tick") +
                        "_s" + std::to_string(info.param.shards);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------- engine-neutral restore

TEST(CheckpointEngines, SavedUnderOneEngineRestoresUnderAnyOther)
{
    // A checkpoint carries structural state only; the restore target's
    // own engine configuration governs the continuation, and every
    // engine continues to the same digest.
    const RunPhases phases = testPhases();
    const ColumnConfig col = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    const TrafficConfig traffic = uniformTraffic(0.08);

    ColumnSim ref(col, traffic);
    ref.setMeasureWindow(phases.warmup, phases.measureEnd());
    ref.run(phases.warmup);
    const std::string bytes = saveToString(ref);
    ref.run(phases.total() - phases.warmup);
    const std::uint64_t want = runDigest(ref);

    struct EnginePick {
        bool activity;
        int shards;
    };
    for (const auto &[activity, shards] :
         {EnginePick{true, 4}, EnginePick{false, 1}, EnginePick{false, 4}}) {
        ColumnSim sim(col, traffic);
        EngineConfig ec;
        ec.activityDriven = activity;
        ec.shards = shards;
        ec.shardMinActive = 0;
        sim.configure(ec);
        sim.setMeasureWindow(phases.warmup, phases.measureEnd());
        std::string err;
        ASSERT_TRUE(restoreFromString(sim, bytes, &err)) << err;
        sim.run(phases.total() - phases.warmup);
        sim.checkInvariants();
        EXPECT_EQ(runDigest(sim), want)
            << (activity ? "event" : "tick") << "/shards=" << shards;
    }
}

TEST(CheckpointEngines, SavedUnderShardedRestoresUnderSerial)
{
    const RunPhases phases = testPhases();
    const ColumnConfig col = paperColumn(TopologyKind::Mecs, QosMode::Gsf);
    const TrafficConfig traffic = uniformTraffic(0.08);

    ColumnSim ref(col, traffic);
    EngineConfig sharded;
    sharded.shards = 4;
    sharded.shardMinActive = 0;
    ref.configure(sharded);
    ref.setMeasureWindow(phases.warmup, phases.measureEnd());
    ref.run(phases.warmup);
    const std::string bytes = saveToString(ref);
    ref.run(phases.total() - phases.warmup);
    const std::uint64_t want = runDigest(ref);

    ColumnSim sim(col, traffic);
    sim.setMeasureWindow(phases.warmup, phases.measureEnd());
    std::string err;
    ASSERT_TRUE(restoreFromString(sim, bytes, &err)) << err;
    sim.run(phases.total() - phases.warmup);
    sim.checkInvariants();
    EXPECT_EQ(runDigest(sim), want);
}

TEST(CheckpointLayouts, SavedUnderOneHotLayoutRestoresUnderTheOther)
{
    // The layout toggle moves storage, never state: a checkpoint saved
    // from an object-graph run restores into an arena build (and back)
    // with the same digest.
    const RunPhases phases = testPhases();
    const ColumnConfig col = paperColumn(TopologyKind::Mecs, QosMode::Pvc);
    const TrafficConfig traffic = uniformTraffic(0.08);

    std::uint64_t digests[2] = {0, 0};
    for (int direction = 0; direction < 2; ++direction) {
        const HotLayout saveLayout =
            direction == 0 ? HotLayout::ObjectGraph : HotLayout::Arena;
        const HotLayout restoreLayout =
            direction == 0 ? HotLayout::Arena : HotLayout::ObjectGraph;

        setHotLayout(saveLayout);
        ColumnSim ref(col, traffic);
        ref.setMeasureWindow(phases.warmup, phases.measureEnd());
        ref.run(phases.warmup);
        const std::string bytes = saveToString(ref);
        ref.run(phases.total() - phases.warmup);
        const std::uint64_t want = runDigest(ref);

        setHotLayout(restoreLayout);
        ColumnSim sim(col, traffic);
        sim.setMeasureWindow(phases.warmup, phases.measureEnd());
        std::string err;
        ASSERT_TRUE(restoreFromString(sim, bytes, &err)) << err;
        sim.run(phases.total() - phases.warmup);
        sim.checkInvariants();
        EXPECT_EQ(runDigest(sim), want)
            << (direction == 0 ? "graph->arena" : "arena->graph");
        digests[direction] = want;
    }
    setHotLayout(HotLayout::Arena);
    EXPECT_EQ(digests[0], digests[1]);
}

// --------------------------------------------- trace continuity + audit

TEST(CheckpointTrace, MergedTraceIsByteIdenticalAndAuditsClean)
{
    // Record the uninterrupted run; then record the same run as a
    // prefix (up to the save) and a suffix (restored continuation).
    // Concatenating prefix and suffix events must serialize to the very
    // bytes of the uninterrupted trace, and that merged trace must pass
    // the independent checker's audit.
    ColumnConfig col = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    TrafficConfig t = makeWorkload1(col);
    t.genUntil = 6000;
    const Cycle saveAt = 3000;

    ColumnSim ref(col, t);
    ref.setMeasureWindow(0, 6000);
    TraceRecorder refRec(describeColumn(ref.cfg()));
    refRec.setMeasureWindow(0, 6000);
    ref.attachTraceSink(&refRec);
    ref.run(saveAt);
    const std::string bytes = saveToString(ref);
    const Cycle refDone = ref.runUntilDrained(100000, 6000);
    ASSERT_NE(refDone, kNoCycle);
    refRec.finish(ref.now(), ref.drained());
    const std::string wantTrace = serializeFlitTrace(refRec.trace());

    // Prefix: a second instrumented run up to the save cycle.
    ColumnSim pre(col, t);
    pre.setMeasureWindow(0, 6000);
    TraceRecorder preRec(describeColumn(pre.cfg()));
    preRec.setMeasureWindow(0, 6000);
    pre.attachTraceSink(&preRec);
    pre.run(saveAt);

    // Suffix: restore and continue with a fresh recorder.
    ColumnSim sim(col, t);
    sim.setMeasureWindow(0, 6000);
    TraceRecorder sufRec(describeColumn(sim.cfg()));
    sufRec.setMeasureWindow(0, 6000);
    sim.attachTraceSink(&sufRec);
    std::string err;
    ASSERT_TRUE(restoreFromString(sim, bytes, &err)) << err;
    const Cycle done = sim.runUntilDrained(100000, 6000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(done, refDone);
    sufRec.finish(sim.now(), sim.drained());

    // Merge: the suffix's sealed meta (end cycle, drained flag), the
    // shared port table, prefix events then suffix events.
    FlitTrace merged;
    merged.meta = sufRec.trace().meta;
    merged.ports = preRec.trace().ports;
    merged.events = preRec.trace().events;
    merged.events.insert(merged.events.end(),
                         sufRec.trace().events.begin(),
                         sufRec.trace().events.end());

    EXPECT_EQ(serializeFlitTrace(merged), wantTrace);
    const CheckReport report = verifyTrace(merged);
    EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
    EXPECT_GT(report.eventsChecked, 100u);
}

// ------------------------------------------------ chip and fabric sims

TEST(CheckpointChip, WholeChipRoundTripMatches)
{
    ChipNetConfig cc;
    cc.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    cc.column.pvc.frameLen = 2000;
    TrafficConfig t = uniformTraffic(0.05);
    t.genUntil = 5000;

    ChipSim ref(cc, t);
    ref.setMeasureWindow(0, 5000);
    ref.run(3000);
    const std::string bytes = saveToString(ref);
    const Cycle refDone = ref.runUntilDrained(120000, 5000);
    ASSERT_NE(refDone, kNoCycle);
    EXPECT_GT(ref.handoffs(), 0u);

    ChipSim sim(cc, t);
    sim.setMeasureWindow(0, 5000);
    std::string err;
    ASSERT_TRUE(restoreFromString(sim, bytes, &err)) << err;
    EXPECT_EQ(sim.now(), 3000u);
    const Cycle done = sim.runUntilDrained(120000, 5000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(done, refDone);
    EXPECT_EQ(runDigest(sim), runDigest(ref));
    EXPECT_EQ(sim.handoffs(), ref.handoffs());
    sim.checkInvariants();
}

TEST(CheckpointFabric, TwoChipFabricRoundTripMatches)
{
    FabricSpec spec;
    spec.chips = 2;
    spec.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    spec.column.pvc.frameLen = 2000;
    TrafficConfig t = uniformTraffic(0.05);
    t.genUntil = 5000;

    FabricSim ref(spec, t);
    ref.setMeasureWindow(1000, 5000);
    ref.run(3000);
    const std::string bytes = saveToString(ref);
    const Cycle refDone = ref.runUntilDrained(200000, 5000);
    ASSERT_NE(refDone, kNoCycle);
    EXPECT_GT(ref.linkHops(), 0u);

    FabricSim sim(spec, t);
    sim.setMeasureWindow(1000, 5000);
    std::string err;
    ASSERT_TRUE(restoreFromString(sim, bytes, &err)) << err;
    const Cycle done = sim.runUntilDrained(200000, 5000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(done, refDone);
    EXPECT_EQ(runDigest(sim), runDigest(ref));
    EXPECT_EQ(sim.handoffs(), ref.handoffs());
    EXPECT_EQ(sim.linkHops(), ref.linkHops());
    sim.checkInvariants();
}

// ------------------------------------------------- header + validation

TEST(CheckpointHeader, InfoIsReadableWithoutASimulation)
{
    const ColumnConfig col = paperColumn(TopologyKind::MeshX1, QosMode::Wrr);
    ColumnSim sim(col, uniformTraffic(0.08));
    EngineConfig ec;
    ec.activityDriven = false;
    ec.shards = 4;
    ec.shardMinActive = 0;
    sim.configure(ec);
    sim.run(2000);
    const std::string bytes = saveToString(sim);

    std::istringstream is(bytes);
    const CheckpointInfo info = readCheckpointInfo(is);
    EXPECT_EQ(info.version, kCheckpointVersion);
    EXPECT_EQ(info.salt, kEngineSalt);
    EXPECT_EQ(info.fingerprint, topologyFingerprint(sim.net()));
    EXPECT_EQ(info.now, 2000u);
    EXPECT_FALSE(info.engine.activityDriven);
    EXPECT_EQ(info.engine.shards, 4);
}

class CheckpointRejects : public ::testing::Test {
  protected:
    void SetUp() override
    {
        const ColumnConfig col =
            paperColumn(TopologyKind::MeshX1, QosMode::Pvc);
        ColumnSim sim(col, uniformTraffic(0.08));
        sim.run(1500);
        bytes_ = saveToString(sim);
        ASSERT_GT(bytes_.size(), 64u);
    }

    /// Restore `bytes` into a fresh identically-shaped sim; expect
    /// failure whose diagnostic contains `needle`, and the target left
    /// at cycle zero.
    void expectReject(const std::string &bytes, const std::string &needle)
    {
        const ColumnConfig col =
            paperColumn(TopologyKind::MeshX1, QosMode::Pvc);
        ColumnSim sim(col, uniformTraffic(0.08));
        std::string err;
        EXPECT_FALSE(restoreFromString(sim, bytes, &err));
        EXPECT_NE(err.find(needle), std::string::npos)
            << "diagnostic \"" << err << "\" lacks \"" << needle << "\"";
        EXPECT_EQ(sim.now(), 0u);
    }

    std::string bytes_;
};

TEST_F(CheckpointRejects, BadMagic)
{
    std::string s = bytes_;
    s[0] = 'X';
    expectReject(s, "bad magic");
}

TEST_F(CheckpointRejects, TruncatedHeader)
{
    expectReject(bytes_.substr(0, 20), "truncated checkpoint header");
}

TEST_F(CheckpointRejects, UnknownFormatVersion)
{
    std::string s = bytes_;
    s[8] = 99; // first byte of the little-endian format-version word
    expectReject(s, "format version");
}

TEST_F(CheckpointRejects, EngineSaltMismatch)
{
    std::string s = bytes_;
    s[12] = static_cast<char>(s[12] ^ 0x5a); // inside the salt word
    expectReject(s, "engine salt mismatch");
}

TEST_F(CheckpointRejects, CorruptSectionTag)
{
    std::string s = bytes_;
    s[45] = 3; // the first section tag's length byte ("metrics" = 7)
    expectReject(s, "expected section");
}

TEST_F(CheckpointRejects, TruncatedBody)
{
    // The diagnostic names the section and byte offset it died in.
    std::string err;
    {
        const ColumnConfig col =
            paperColumn(TopologyKind::MeshX1, QosMode::Pvc);
        ColumnSim sim(col, uniformTraffic(0.08));
        EXPECT_FALSE(restoreFromString(
            sim, bytes_.substr(0, bytes_.size() / 2), &err));
    }
    EXPECT_NE(err.find("unexpected end of checkpoint"), std::string::npos)
        << err;
    EXPECT_NE(err.find("section"), std::string::npos) << err;
    EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST_F(CheckpointRejects, TopologyFingerprintMismatch)
{
    const ColumnConfig other = paperColumn(TopologyKind::Mecs, QosMode::Pvc);
    ColumnSim sim(other, uniformTraffic(0.08));
    std::string err;
    EXPECT_FALSE(restoreFromString(sim, bytes_, &err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}

TEST_F(CheckpointRejects, SteppedTargetRefused)
{
    const ColumnConfig col = paperColumn(TopologyKind::MeshX1, QosMode::Pvc);
    ColumnSim sim(col, uniformTraffic(0.08));
    sim.run(10);
    std::string err;
    EXPECT_FALSE(restoreFromString(sim, bytes_, &err));
    EXPECT_NE(err.find("freshly built"), std::string::npos) << err;
}

TEST_F(CheckpointRejects, HeaderRejectLeavesTargetUsable)
{
    // A header-level reject happens before any mutation: the target must
    // still run to the same digest as a never-touched sim.
    const ColumnConfig col = paperColumn(TopologyKind::MeshX1, QosMode::Pvc);
    const RunPhases phases = testPhases();

    std::string s = bytes_;
    s[12] = static_cast<char>(s[12] ^ 0x5a);

    ColumnSim rejected(col, uniformTraffic(0.08));
    std::string err;
    EXPECT_FALSE(restoreFromString(rejected, s, &err));
    rejected.setMeasureWindow(phases.warmup, phases.measureEnd());
    rejected.run(phases.total());
    rejected.checkInvariants();

    ColumnSim clean(col, uniformTraffic(0.08));
    clean.setMeasureWindow(phases.warmup, phases.measureEnd());
    clean.run(phases.total());
    EXPECT_EQ(runDigest(rejected), runDigest(clean));
}

} // namespace
} // namespace taqos
