/// The activity-driven engine: bit-identity with the always-tick
/// reference across every QOS policy (toggle equivalence), on the
/// preemption-heavy adversarial workload, and on the whole-chip
/// simulator; the GSF frame-boundary/worklist interaction (a gated flow
/// must be re-admitted across quiet periods — the engine may never skip
/// the gate's per-cycle rollover, however idle the routers are); and the
/// consistency of the incrementally-maintained activity state.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/experiments.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

namespace taqos {
namespace {

/// Extended-form digest (noc/metrics.h): generation, injection, hop
/// accounting, deliveries, preemptions, latency and per-flow throughput.
std::uint64_t
runDigest(const NetSim &sim)
{
    return metricsDigest(sim.metrics());
}

/// Every router idle at drain implies an (eventually) empty worklist —
/// and the incremental counters must agree with a full rescan, which
/// checkInvariants asserts.
void
expectQuiescent(const NetSim &sim)
{
    sim.checkInvariants();
    const Network &net = sim.net();
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        EXPECT_FALSE(net.router(n)->hasWork()) << "router " << n;
    }
}

// ------------------------------------------------- toggle equivalence

struct ToggleCase {
    TopologyKind topology;
    QosMode mode;
};

class ToggleEquivalence : public ::testing::TestWithParam<ToggleCase> {};

TEST_P(ToggleEquivalence, EnginesAreBitIdenticalOnARandomWorkload)
{
    const ToggleCase &tc = GetParam();
    const RunPhases phases = testPhases();
    std::uint64_t digests[2] = {0, 0};
    for (int activity = 0; activity < 2; ++activity) {
        const ColumnConfig col = paperColumn(tc.topology, tc.mode);
        TrafficConfig traffic;
        traffic.pattern = TrafficPattern::UniformRandom;
        traffic.injectionRate = 0.08;
        ColumnSim sim(col, traffic);
        sim.configure({.activityDriven = activity == 1});
        sim.setMeasureWindow(phases.warmup, phases.measureEnd());
        sim.run(phases.total());
        sim.checkInvariants();
        digests[activity] = runDigest(sim);
    }
    EXPECT_EQ(digests[0], digests[1])
        << topologyName(tc.topology) << "/" << qosModeName(tc.mode);
}

std::vector<ToggleCase>
toggleCases()
{
    std::vector<ToggleCase> cases;
    for (auto kind : {TopologyKind::MeshX1, TopologyKind::Mecs,
                      TopologyKind::Dps}) {
        for (QosMode mode : kAllQosModes)
            cases.push_back(ToggleCase{kind, mode});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ToggleEquivalence, ::testing::ValuesIn(toggleCases()),
    [](const ::testing::TestParamInfo<ToggleCase> &info) {
        std::string n = std::string(topologyName(info.param.topology)) +
                        "_" + qosModeName(info.param.mode);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(ToggleEquivalence, PreemptionHeavyWorkloadMatches)
{
    // Workload 1 to completion: thousands of preemptions exercise the
    // kill/NACK/replay path, whose teardown dirties VCs and tables on
    // several routers at once.
    std::uint64_t digests[2] = {0, 0};
    Cycle done[2] = {0, 0};
    for (int activity = 0; activity < 2; ++activity) {
        ColumnConfig col = paperColumn(TopologyKind::Dps, QosMode::Pvc);
        TrafficConfig t = makeWorkload1(col);
        t.genUntil = 20000;
        ColumnSim sim(col, t);
        sim.configure({.activityDriven = activity == 1});
        sim.setMeasureWindow(0, 20000);
        done[activity] = sim.runUntilDrained(200000, 20000);
        ASSERT_NE(done[activity], kNoCycle);
        EXPECT_GT(sim.metrics().preemptionEvents, 1000u);
        digests[activity] = runDigest(sim);
        expectQuiescent(sim);
    }
    EXPECT_EQ(done[0], done[1]);
    EXPECT_EQ(digests[0], digests[1]);
}

TEST(ToggleEquivalence, WholeChipSimulationMatches)
{
    std::uint64_t digests[2] = {0, 0};
    std::uint64_t handoffs[2] = {0, 0};
    for (int activity = 0; activity < 2; ++activity) {
        ChipNetConfig cc;
        cc.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
        cc.column.pvc.frameLen = 2000;
        TrafficConfig t;
        t.pattern = TrafficPattern::UniformRandom;
        t.injectionRate = 0.05;
        t.genUntil = 5000;
        ChipSim sim(cc, t);
        sim.configure({.activityDriven = activity == 1});
        sim.setMeasureWindow(0, 5000);
        const Cycle done = sim.runUntilDrained(120000, 5000);
        ASSERT_NE(done, kNoCycle);
        digests[activity] = runDigest(sim);
        handoffs[activity] = sim.handoffs();
        expectQuiescent(sim);
    }
    EXPECT_GT(handoffs[1], 0u);
    EXPECT_EQ(handoffs[0], handoffs[1]);
    EXPECT_EQ(digests[0], digests[1]);
}

// ------------------------------- GSF gate vs the idle-engine worklist

NetPacket *
enqueuePacket(ColumnSim &sim, FlowId flow, NodeId dst, int size)
{
    NetPacket *pkt = sim.pool().alloc();
    pkt->flow = flow;
    pkt->src = sim.cfg().nodeOfFlow(flow);
    pkt->dst = dst;
    pkt->sizeFlits = size;
    pkt->genCycle = sim.now();
    pkt->queuedCycle = sim.now();
    sim.metrics().generatedPackets++;
    sim.metrics().generatedFlits += static_cast<std::uint64_t>(size);
    sim.network().injector(flow).enqueue(pkt);
    return pkt;
}

TEST(GsfActivity, FrameRolloverReadmitsAGatedFlowAfterAQuietPeriod)
{
    // Six packets, each large enough to exhaust a whole per-frame budget,
    // are queued at once on one flow. Only `gsfFrames` of them can be
    // admitted up front; every later one sits gated at the source until
    // the gate's window advances — which happens inside the per-cycle
    // frame-boundary tick while the rest of the network is completely
    // idle. An engine that let the idle worklist skip that tick (or that
    // dropped a router whose only work is a gated source packet) would
    // stall here forever, on both sides of the toggle.
    Cycle done[2] = {0, 0};
    std::uint64_t digests[2] = {0, 0};
    for (int activity = 0; activity < 2; ++activity) {
        ColumnConfig col = paperColumn(TopologyKind::MeshX1, QosMode::Gsf);
        col.pvc.gsfFrameLen = 200;
        col.pvc.gsfFrames = 2;
        TrafficConfig quiet;
        quiet.injectionRate = 0.0; // no generated traffic at all
        ColumnSim sim(col, quiet);
        sim.configure({.activityDriven = activity == 1});
        sim.setMeasureWindow(0, 100000);

        // Budget per flow per frame: max(1, 200/64) = 3 flits, so each
        // 4-flit packet fills one frame window on its own.
        for (int i = 0; i < 6; ++i)
            enqueuePacket(sim, /*flow=*/0, /*dst=*/6, /*size=*/4);

        done[activity] = sim.runUntilDrained(100000, 1);
        ASSERT_NE(done[activity], kNoCycle) << "gated flow never re-admitted";
        EXPECT_EQ(sim.metrics().deliveredPackets, 6u);
        // The admissions really were serialized by the gate: six
        // one-per-frame packets admitted window-by-window (each waiting
        // for a predecessor's drain-driven reclamation) take several
        // traversal times, where an ungated burst would pipeline.
        EXPECT_GT(done[activity], static_cast<Cycle>(60));
        digests[activity] = runDigest(sim);
        expectQuiescent(sim);

        // Long fully-idle stretch (every router asleep), then one more
        // packet: the gate must have kept rolling its (now idle) frames
        // forward on the timer, so the new packet is admitted promptly.
        sim.run(10 * 200);
        NetPacket *late = enqueuePacket(sim, /*flow=*/1, /*dst=*/5,
                                        /*size=*/4);
        const Cycle t0 = sim.now();
        const Cycle doneLate = sim.runUntilDrained(5000, t0 + 1);
        ASSERT_NE(doneLate, kNoCycle);
        EXPECT_EQ(late->state, PacketState::Delivered);
        // Prompt: one network traversal, no extra frame-length stalls.
        EXPECT_LT(doneLate - t0, static_cast<Cycle>(200));
    }
    EXPECT_EQ(done[0], done[1]);
    EXPECT_EQ(digests[0], digests[1]);
}

} // namespace
} // namespace taqos
