/// Core simulator behaviour across all five topologies: delivery
/// completeness, conservation, determinism, and structural invariants.
#include <gtest/gtest.h>

#include <string>

#include "sim/column_sim.h"

namespace taqos {
namespace {

class SimBasic : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(SimBasic, LowLoadDeliversEverything)
{
    ColumnConfig col;
    col.topology = GetParam();
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.02;
    t.genUntil = 10000;
    ColumnSim sim(col, t);
    const Cycle done = sim.runUntilDrained(40000, 10000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    EXPECT_EQ(sim.metrics().deliveredFlits, sim.metrics().generatedFlits);
    sim.checkInvariants();
}

TEST_P(SimBasic, ConservationMidFlight)
{
    ColumnConfig col;
    col.topology = GetParam();
    TrafficConfig t;
    t.injectionRate = 0.08;
    ColumnSim sim(col, t);
    sim.run(5000);
    const auto &m = sim.metrics();
    EXPECT_LE(m.deliveredPackets, m.generatedPackets);
    // Undelivered packets are certainly live; delivered ones stay live
    // only until their ACK returns (a handful of cycles).
    EXPECT_GE(sim.pool().liveCount(),
              m.generatedPackets - m.deliveredPackets);
    EXPECT_LE(sim.pool().liveCount(), m.generatedPackets);
    sim.checkInvariants();
}

TEST_P(SimBasic, DeterministicMetrics)
{
    const auto runOnce = [&](std::uint64_t seed) {
        ColumnConfig col;
        col.topology = GetParam();
        TrafficConfig t;
        t.injectionRate = 0.06;
        t.seed = seed;
        ColumnSim sim(col, t);
        sim.setMeasureWindow(1000, 8000);
        sim.run(9000);
        return std::tuple(sim.metrics().generatedPackets,
                          sim.metrics().deliveredFlits,
                          sim.metrics().latency.mean(),
                          sim.metrics().preemptionEvents);
    };
    EXPECT_EQ(runOnce(42), runOnce(42));
    EXPECT_NE(std::get<1>(runOnce(42)), std::get<1>(runOnce(43)));
}

TEST_P(SimBasic, InvariantsHoldUnderLoad)
{
    ColumnConfig col;
    col.topology = GetParam();
    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.injectionRate = 0.05;
    ColumnSim sim(col, t);
    for (int chunk = 0; chunk < 10; ++chunk) {
        sim.run(1500);
        sim.checkInvariants();
    }
}

TEST_P(SimBasic, LatencyReasonableAtLowLoad)
{
    ColumnConfig col;
    col.topology = GetParam();
    TrafficConfig t;
    t.injectionRate = 0.01;
    ColumnSim sim(col, t);
    sim.setMeasureWindow(2000, 12000);
    sim.run(16000);
    const double lat = sim.metrics().latency.mean();
    EXPECT_GT(lat, 4.0);
    EXPECT_LT(lat, 40.0);
}

TEST_P(SimBasic, MeasureWindowGatesThroughputAccounting)
{
    ColumnConfig col;
    col.topology = GetParam();
    TrafficConfig t;
    t.injectionRate = 0.05;
    ColumnSim sim(col, t);
    sim.setMeasureWindow(5000, 6000);
    sim.run(10000);
    const auto windowFlits = sim.metrics().windowFlits();
    EXPECT_GT(windowFlits, 0u);
    EXPECT_LT(windowFlits, sim.metrics().deliveredFlits);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, SimBasic,
                         ::testing::ValuesIn(kAllTopologies),
                         [](const auto &info) {
                             return std::string(topologyName(info.param));
                         });

TEST(SimBasic2, FrameBoundaryKeepsRunningSmoothly)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    col.pvc.frameLen = 2000;
    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.injectionRate = 0.05;
    ColumnSim sim(col, t);
    sim.setMeasureWindow(2000, 14000);
    sim.run(14000); // six frame flushes
    sim.checkInvariants();
    // Throughput should still be pinned at the ejection link rate.
    EXPECT_NEAR(sim.metrics().throughputFlitsPerCycle(12000), 1.0, 0.05);
}

} // namespace
} // namespace taqos
