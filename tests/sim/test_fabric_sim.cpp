/// Fabric simulation: the ChipSim cycle-identity anchor (a one-chip,
/// one-column fabric is metric-identical to ChipSim on the same seed),
/// cross-chip delivery over both link topologies, serial-vs-sharded
/// bit-identity up to the kilo-node scale, and recorded fabric traces
/// passing the independent checker's audit byte-identically.
#include <gtest/gtest.h>

#include <string>

#include "core/experiments.h"
#include "sim/chip_sim.h"
#include "sim/fabric_sim.h"
#include "sim/trace_record.h"
#include "verify/checker.h"

namespace taqos {
namespace {

void
expectMetricsIdentical(const SimMetrics &a, const SimMetrics &b)
{
    EXPECT_EQ(a.generatedPackets, b.generatedPackets);
    EXPECT_EQ(a.generatedFlits, b.generatedFlits);
    EXPECT_EQ(a.measuredGenerated, b.measuredGenerated);
    EXPECT_EQ(a.injectedAttempts, b.injectedAttempts);
    EXPECT_EQ(a.deliveredPackets, b.deliveredPackets);
    EXPECT_EQ(a.deliveredFlits, b.deliveredFlits);
    EXPECT_EQ(a.preemptionEvents, b.preemptionEvents);
    EXPECT_DOUBLE_EQ(a.usefulHops, b.usefulHops);
    EXPECT_DOUBLE_EQ(a.wastedHops, b.wastedHops);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
    ASSERT_EQ(a.flowFlits.size(), b.flowFlits.size());
    for (std::size_t f = 0; f < a.flowFlits.size(); ++f)
        EXPECT_EQ(a.flowFlits[f], b.flowFlits[f]) << "flow " << f;
}

FabricSpec
twoChipSpec()
{
    FabricSpec spec;
    spec.chips = 2;
    spec.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    spec.column.pvc.frameLen = 2000;
    return spec;
}

TEST(FabricEquivalence, OneChipOneColumnMatchesChipSimExactly)
{
    // The generalization anchor: restricted to one chip with one shared
    // column, the fabric must be cycle-identical to ChipSim in full-chip
    // mode — same generator streams, same origin queues, same handoffs.
    ColumnConfig col = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    col.pvc.frameLen = 2000;

    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.05;
    t.genUntil = 5000;

    ChipNetConfig cc;
    cc.column = col;
    ChipSim chip(cc, t);
    chip.setMeasureWindow(1000, 5000);

    FabricSpec spec;
    spec.column = col;
    FabricSim fab(spec, t);
    fab.setMeasureWindow(1000, 5000);

    for (int i = 0; i < 20000; ++i) {
        chip.step();
        fab.step();
    }
    expectMetricsIdentical(chip.metrics(), fab.metrics());
    EXPECT_EQ(chip.handoffs(), fab.handoffs());
    EXPECT_GT(fab.handoffs(), 0u);
    EXPECT_EQ(fab.linkHops(), 0u);
    EXPECT_EQ(chip.drained(), fab.drained());
    chip.checkInvariants();
    fab.checkInvariants();
}

TEST(FabricSimTest, TwoChipsDeliverEverythingAcrossTheLinks)
{
    FabricSpec spec = twoChipSpec();
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.02;
    t.genUntil = 4000;

    FabricSim sim(spec, t);
    const Cycle done = sim.runUntilDrained(120000, 4000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    EXPECT_EQ(sim.metrics().deliveredFlits, sim.metrics().generatedFlits);
    EXPECT_GT(sim.handoffs(), 0u);
    EXPECT_GT(sim.linkHops(), 0u); // remote flows really crossed chips
    sim.checkInvariants();
}

TEST(FabricSimTest, RingTransitsForwardToTheRightChip)
{
    FabricSpec spec = twoChipSpec();
    spec.chips = 3;
    spec.links = LinkTopology::Ring;
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.015;
    t.genUntil = 3000;

    FabricSim sim(spec, t);
    const Cycle done = sim.runUntilDrained(150000, 3000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    EXPECT_GT(sim.linkHops(), 0u);
    sim.checkInvariants();
}

TEST(FabricSimTest, MixedBlockPoliciesRunToDrain)
{
    FabricSpec spec;
    spec.chip.tilesX = 32;
    spec.chip.sharedColumns = {4, 12};
    spec.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
    spec.columnModes = {QosMode::Pvc, QosMode::PerFlowQueue};
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.02;
    t.genUntil = 3000;

    FabricSim sim(spec, t);
    const Cycle done = sim.runUntilDrained(120000, 3000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    sim.checkInvariants();
}

TEST(FabricShard, TwoChipShardedEngineIsBitIdentical)
{
    std::uint64_t serial = 0;
    std::uint64_t serialHandoffs = 0, serialLinkHops = 0;
    for (int shards : {1, 2, 4}) {
        FabricSpec spec = twoChipSpec();
        TrafficConfig t;
        t.pattern = TrafficPattern::UniformRandom;
        t.injectionRate = 0.04;
        t.genUntil = 4000;
        FabricSim sim(spec, t);
        if (shards > 1)
            sim.configure({.shards = shards, .shardMinActive = 0});
        sim.setMeasureWindow(0, 4000);
        const Cycle done = sim.runUntilDrained(120000, 4000);
        ASSERT_NE(done, kNoCycle) << "shards=" << shards;
        sim.checkInvariants();
        if (shards == 1) {
            serial = metricsDigest(sim.metrics());
            serialHandoffs = sim.handoffs();
            serialLinkHops = sim.linkHops();
        } else {
            EXPECT_EQ(metricsDigest(sim.metrics()), serial)
                << "shards=" << shards;
            EXPECT_EQ(sim.handoffs(), serialHandoffs);
            EXPECT_EQ(sim.linkHops(), serialLinkHops);
        }
    }
    EXPECT_GT(serialLinkHops, 0u);
}

TEST(FabricShard, KiloNodeFabricIsBitIdenticalSerialVsSharded)
{
    // The acceptance scale: 4 chips x 256 nodes = 1024 routers, every
    // shared column active, short phases to keep the suite fast.
    std::uint64_t serial = 0;
    for (int shards : {1, 4}) {
        FabricSpec spec;
        spec.chips = 4;
        spec.chip.tilesX = 32;
        spec.chip.tilesY = 32;
        spec.chip.sharedColumns = {4, 12};
        spec.column = paperColumn(TopologyKind::Dps, QosMode::Pvc);
        TrafficConfig t;
        t.pattern = TrafficPattern::UniformRandom;
        t.injectionRate = 0.01;
        t.genUntil = 800;
        FabricSim sim(spec, t);
        ASSERT_GE(sim.net().numNodes(), 1024);
        if (shards > 1)
            sim.configure({.shards = shards, .shardMinActive = 0});
        sim.setMeasureWindow(0, 800);
        const Cycle done = sim.runUntilDrained(60000, 800);
        ASSERT_NE(done, kNoCycle) << "shards=" << shards;
        sim.checkInvariants();
        if (shards == 1)
            serial = metricsDigest(sim.metrics());
        else
            EXPECT_EQ(metricsDigest(sim.metrics()), serial);
    }
}

TEST(FabricTrace, ShardedTraceIsByteIdenticalAndAuditsClean)
{
    std::string serialized[2];
    for (int sharded = 0; sharded < 2; ++sharded) {
        FabricSpec spec = twoChipSpec();
        TrafficConfig t;
        t.pattern = TrafficPattern::UniformRandom;
        t.injectionRate = 0.05;
        t.genUntil = 4000;
        FabricSim sim(spec, t);
        if (sharded == 1)
            sim.configure({.shards = 4, .shardMinActive = 0});
        sim.setMeasureWindow(0, 4000);
        TraceRecorder rec(describeFabric(sim.network()));
        rec.setMeasureWindow(0, 4000);
        sim.attachTraceSink(&rec);

        const Cycle done = sim.runUntilDrained(120000, 4000);
        ASSERT_NE(done, kNoCycle);
        rec.finish(sim.now(), sim.drained());

        const CheckReport report = verifyTrace(rec.trace());
        EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
        EXPECT_GT(report.eventsChecked, 1000u);
        serialized[sharded] = serializeFlitTrace(rec.trace());
    }
    EXPECT_EQ(serialized[0], serialized[1]);
}

TEST(FabricConsolidation, ExperimentDrainsAndShardsBitIdentically)
{
    FabricConsolidationConfig cfg;
    cfg.chips = 2;
    cfg.ratePerNode = 0.03;
    cfg.phases = RunPhases{500, 2000, 1000};

    const FabricConsolidationResult serial = runFabricConsolidation(cfg);
    ASSERT_NE(serial.drainCycle, kNoCycle);
    EXPECT_EQ(serial.nodes, 2 * 64);
    EXPECT_GT(serial.deliveredPackets, 0u);
    EXPECT_GT(serial.handoffs, 0u);
    EXPECT_GT(serial.linkHops, 0u);

    // Every admitted VM on every chip got service, and both chips carry
    // the same three-VM mix.
    ASSERT_EQ(serial.vms.size(), 6u);
    for (const auto &vm : serial.vms) {
        EXPECT_GT(vm.flits, 0u) << "chip " << vm.chip << " vm " << vm.vmId;
        EXPECT_GT(vm.domainNodes, 0u);
        EXPECT_GT(vm.flitsPerNode, 0.0);
    }

    cfg.shards = 4;
    const FabricConsolidationResult sharded = runFabricConsolidation(cfg);
    EXPECT_EQ(sharded.digest, serial.digest);
    EXPECT_EQ(sharded.handoffs, serial.handoffs);
    EXPECT_EQ(sharded.linkHops, serial.linkHops);
}

} // namespace
} // namespace taqos
