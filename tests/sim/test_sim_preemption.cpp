/// PVC preemption semantics: who can be discarded, what is protected, and
/// the end-to-end guarantee that every preempted packet is eventually
/// retransmitted and delivered.
#include <gtest/gtest.h>

#include "sim/column_sim.h"
#include "traffic/workloads.h"

namespace taqos {
namespace {

TEST(Preemption, PerFlowQueueingNeverPreempts)
{
    for (auto kind : kAllTopologies) {
        ColumnConfig col;
        col.topology = kind;
        col.mode = QosMode::PerFlowQueue;
        TrafficConfig t = makeWorkload1(col);
        t.genUntil = 20000;
        ColumnSim sim(col, t);
        const Cycle done = sim.runUntilDrained(200000, 20000);
        ASSERT_NE(done, kNoCycle) << topologyName(kind);
        EXPECT_EQ(sim.metrics().preemptionEvents, 0u) << topologyName(kind);
    }
}

TEST(Preemption, NoQosNeverPreempts)
{
    ColumnConfig col;
    col.topology = TopologyKind::MeshX1;
    col.mode = QosMode::NoQos;
    TrafficConfig t = makeHotspotAll(col, 0.05);
    ColumnSim sim(col, t);
    sim.run(30000);
    EXPECT_EQ(sim.metrics().preemptionEvents, 0u);
}

TEST(Preemption, AdversarialWorkloadTriggersPreemptions)
{
    ColumnConfig col;
    col.topology = TopologyKind::MeshX4;
    TrafficConfig t = makeWorkload1(col);
    t.genUntil = 30000;
    ColumnSim sim(col, t);
    sim.setMeasureWindow(0, 30000);
    const Cycle done = sim.runUntilDrained(300000, 30000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_GT(sim.metrics().preemptionEvents, 50u);
    EXPECT_GT(sim.metrics().wastedHops, 0.0);
    // And yet: everything generated was eventually delivered.
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
}

TEST(Preemption, ReplicatedMeshesThrashMost)
{
    // Fig. 5(a): flows diverging over parallel channels converge at the
    // destination and thrash; mesh x4 replays more hops than mesh x1.
    const auto hopRate = [](TopologyKind kind) {
        ColumnConfig col;
        col.topology = kind;
        TrafficConfig t = makeWorkload1(col);
        t.genUntil = 40000;
        ColumnSim sim(col, t);
        sim.setMeasureWindow(0, 40000);
        sim.runUntilDrained(400000, 40000);
        return sim.metrics().preemptionHopRate();
    };
    const double x1 = hopRate(TopologyKind::MeshX1);
    const double x4 = hopRate(TopologyKind::MeshX4);
    EXPECT_GT(x4, x1);
    EXPECT_GT(x4, 0.05);
}

TEST(Preemption, QuotaThrottlesFullHotspot)
{
    // Table 2's regime: with all 64 sources at their provisioned share,
    // virtually everything is rate-compliant — preemptions are rare.
    for (auto kind : {TopologyKind::MeshX4, TopologyKind::Dps}) {
        ColumnConfig col;
        col.topology = kind;
        TrafficConfig t = makeHotspotAll(col, 0.05);
        ColumnSim sim(col, t);
        sim.setMeasureWindow(5000, 45000);
        sim.run(45000);
        const double rate = sim.metrics().preemptionPacketRate();
        EXPECT_LT(rate, 0.01) << topologyName(kind);
    }
}

TEST(Preemption, DisablingQuotaRemovesThrottle)
{
    // On Workload 1 the quota is what protects below-share flows from
    // being discarded; without it preemption incidence rises.
    const auto events = [](bool quota) {
        ColumnConfig col;
        col.topology = TopologyKind::MeshX1;
        col.pvc.quotaEnabled = quota;
        TrafficConfig t = makeWorkload1(col);
        t.genUntil = 25000;
        ColumnSim sim(col, t);
        sim.runUntilDrained(250000, 25000);
        return sim.metrics().preemptionEvents;
    };
    const auto with = events(true);
    const auto without = events(false);
    EXPECT_GT(without, with);
}

TEST(Preemption, PreemptedPacketsRetryAndLatencyIncludesReplays)
{
    ColumnConfig col;
    col.topology = TopologyKind::MeshX2;
    TrafficConfig t = makeWorkload1(col);
    t.genUntil = 20000;
    ColumnSim sim(col, t);
    sim.setMeasureWindow(0, 20000);
    const Cycle done = sim.runUntilDrained(200000, 20000);
    ASSERT_NE(done, kNoCycle);
    ASSERT_GT(sim.metrics().preemptionEvents, 0u);
    // Wasted + useful hops are both accounted.
    EXPECT_GT(sim.metrics().usefulHops, sim.metrics().wastedHops);
    sim.checkInvariants();
}

TEST(Preemption, WindowNeverOverflowsUnderReplayStorm)
{
    ColumnConfig col;
    col.topology = TopologyKind::MeshX4;
    col.pvc.windowLimit = 4;
    TrafficConfig t = makeWorkload1(col);
    t.genUntil = 15000;
    ColumnSim sim(col, t);
    for (int i = 0; i < 40; ++i) {
        sim.run(500);
        sim.checkInvariants(); // asserts outstanding <= windowLimit
    }
}

} // namespace
} // namespace taqos
