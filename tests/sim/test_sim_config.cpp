/// Configuration-space coverage: non-default column sizes, VC overrides,
/// ejection buffering, frame lengths and window limits all simulate
/// correctly end to end.
#include <gtest/gtest.h>

#include <string>

#include "sim/column_sim.h"

namespace taqos {
namespace {

class SimConfig : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(SimConfig, FourNodeColumn)
{
    ColumnConfig col;
    col.topology = GetParam();
    col.numNodes = 4;
    TrafficConfig t;
    t.injectionRate = 0.03;
    t.genUntil = 5000;
    ColumnSim sim(col, t);
    const Cycle done = sim.runUntilDrained(50000, 5000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    sim.checkInvariants();
}

TEST_P(SimConfig, FewerInjectorsPerNode)
{
    ColumnConfig col;
    col.topology = GetParam();
    col.injectorsPerNode = 4;
    col.eastRowInjectors = 2;
    TrafficConfig t;
    t.injectionRate = 0.05;
    t.genUntil = 5000;
    ColumnSim sim(col, t);
    const Cycle done = sim.runUntilDrained(50000, 5000);
    ASSERT_NE(done, kNoCycle);
    sim.checkInvariants();
}

TEST_P(SimConfig, VcOverrideStillCorrect)
{
    // Starved VC budgets (2 per port) must stay correct, just slower.
    ColumnConfig col;
    col.topology = GetParam();
    col.vcsPerPort = 2;
    TrafficConfig t;
    t.injectionRate = 0.04;
    t.genUntil = 5000;
    ColumnSim sim(col, t);
    const Cycle done = sim.runUntilDrained(80000, 5000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
}

TEST_P(SimConfig, MoreVcsNeverHurtThroughput)
{
    const auto thpt = [&](int vcs) {
        ColumnConfig col;
        col.topology = GetParam();
        col.vcsPerPort = vcs;
        TrafficConfig t;
        t.pattern = TrafficPattern::Hotspot;
        t.injectionRate = 0.05;
        ColumnSim sim(col, t);
        sim.setMeasureWindow(4000, 20000);
        sim.run(20000);
        return sim.metrics().throughputFlitsPerCycle(16000);
    };
    EXPECT_GE(thpt(16) + 0.03, thpt(2));
}

TEST_P(SimConfig, SingleEjectionVc)
{
    ColumnConfig col;
    col.topology = GetParam();
    col.ejectionVcs = 1;
    TrafficConfig t;
    t.injectionRate = 0.02;
    t.genUntil = 4000;
    ColumnSim sim(col, t);
    const Cycle done = sim.runUntilDrained(60000, 4000);
    ASSERT_NE(done, kNoCycle);
}

TEST_P(SimConfig, TinyWindowStillCompletes)
{
    ColumnConfig col;
    col.topology = GetParam();
    col.pvc.windowLimit = 1;
    TrafficConfig t;
    t.injectionRate = 0.02;
    t.genUntil = 3000;
    ColumnSim sim(col, t);
    const Cycle done = sim.runUntilDrained(100000, 3000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, SimConfig,
                         ::testing::ValuesIn(kAllTopologies),
                         [](const auto &info) {
                             return std::string(topologyName(info.param));
                         });

TEST(SimConfigFbfly, ExtensionTopologyEndToEnd)
{
    ColumnConfig col;
    col.topology = TopologyKind::FlatButterfly;
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.08;
    t.genUntil = 8000;
    ColumnSim sim(col, t);
    const Cycle done = sim.runUntilDrained(80000, 8000);
    ASSERT_NE(done, kNoCycle);
    EXPECT_EQ(sim.metrics().deliveredPackets,
              sim.metrics().generatedPackets);
    sim.checkInvariants();
}

} // namespace
} // namespace taqos
