#include <gtest/gtest.h>

#include "power/router_power.h"
#include "power/tech.h"

namespace taqos {
namespace {

RouterGeometry
sampleGeometry()
{
    RouterGeometry g;
    g.name = "sample";
    g.flitBits = 128;
    g.columnBuffers.push_back(BufferGroup{2, 6, 4});
    g.rowBuffers.push_back(BufferGroup{7, 4, 4});
    g.xbarInputs = 5;
    g.xbarOutputs = 5;
    g.flowTableFlows = 64;
    g.flowTableOutputs = 5;
    return g;
}

TEST(RouterPower, BreakdownSumsToTotal)
{
    const AreaBreakdown a = computeRouterArea(sampleGeometry(), tech32nm());
    EXPECT_NEAR(a.totalMm2(),
                a.columnBuffersMm2 + a.rowBuffersMm2 + a.xbarMm2 +
                    a.flowStateMm2,
                1e-12);
    EXPECT_GT(a.columnBuffersMm2, 0.0);
    EXPECT_GT(a.rowBuffersMm2, 0.0);
    EXPECT_GT(a.xbarMm2, 0.0);
    EXPECT_GT(a.flowStateMm2, 0.0);
}

TEST(RouterPower, FlowStateInsignificant)
{
    // The paper: "PVC's per-flow state is not a significant contributor".
    const AreaBreakdown a = computeRouterArea(sampleGeometry(), tech32nm());
    EXPECT_LT(a.flowStateMm2, 0.15 * a.totalMm2());
}

TEST(RouterPower, MoreVcsMoreBufferArea)
{
    RouterGeometry g = sampleGeometry();
    const AreaBreakdown base = computeRouterArea(g, tech32nm());
    g.columnBuffers[0].vcsPerPort = 14;
    const AreaBreakdown more = computeRouterArea(g, tech32nm());
    EXPECT_GT(more.columnBuffersMm2, 2.0 * base.columnBuffersMm2);
    EXPECT_DOUBLE_EQ(more.rowBuffersMm2, base.rowBuffersMm2);
}

TEST(RouterPower, NoFlowTableNoArea)
{
    RouterGeometry g = sampleGeometry();
    g.flowTableFlows = 0;
    g.flowTableOutputs = 0;
    const AreaBreakdown a = computeRouterArea(g, tech32nm());
    EXPECT_DOUBLE_EQ(a.flowStateMm2, 0.0);
}

TEST(RouterPower, EnergyEventsPositive)
{
    const RouterEnergyProfile e =
        computeRouterEnergy(sampleGeometry(), tech32nm());
    EXPECT_GT(e.bufferWritePj, 0.0);
    EXPECT_GT(e.bufferReadPj, 0.0);
    EXPECT_GT(e.xbarPj, 0.0);
    EXPECT_GT(e.flowQueryPj, 0.0);
    EXPECT_GT(e.flowUpdatePj, 0.0);
    EXPECT_GT(e.muxPj, 0.0);
    // The DPS intermediate mux is far cheaper than a crossbar traversal.
    EXPECT_LT(e.muxPj, 0.2 * e.xbarPj);
}

TEST(RouterPower, TotalColumnBufferFlits)
{
    EXPECT_EQ(totalColumnBufferFlits(sampleGeometry()), 2 * 6 * 4);
    RouterGeometry g = sampleGeometry();
    g.columnBuffers.push_back(BufferGroup{3, 5, 4});
    EXPECT_EQ(totalColumnBufferFlits(g), 2 * 6 * 4 + 3 * 5 * 4);
}

TEST(RouterPower, NoColumnBuffersZeroEnergy)
{
    RouterGeometry g = sampleGeometry();
    g.columnBuffers.clear();
    const RouterEnergyProfile e = computeRouterEnergy(g, tech32nm());
    EXPECT_DOUBLE_EQ(e.bufferReadPj, 0.0);
    EXPECT_DOUBLE_EQ(e.bufferWritePj, 0.0);
}

} // namespace
} // namespace taqos
