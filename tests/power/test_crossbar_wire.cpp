#include <gtest/gtest.h>

#include "power/crossbar_model.h"
#include "power/tech.h"
#include "power/wire_model.h"

namespace taqos {
namespace {

TEST(Crossbar, AreaProportionalToPortProduct)
{
    const TechParams tech = tech32nm();
    const CrossbarModel x5(5, 5, 128, tech);
    const CrossbarModel x11(11, 11, 128, tech);
    // The paper: 11x11 is "roughly four times larger" than 5x5.
    EXPECT_NEAR(x11.areaMm2() / x5.areaMm2(), (11.0 * 11.0) / (5.0 * 5.0),
                1e-9);
}

TEST(Crossbar, AreaAsymmetricPorts)
{
    const TechParams tech = tech32nm();
    const CrossbarModel square(5, 5, 128, tech);
    const CrossbarModel tall(5, 10, 128, tech);
    EXPECT_NEAR(tall.areaMm2() / square.areaMm2(), 2.0, 1e-9);
}

TEST(Crossbar, EnergyGrowsWithPorts)
{
    const TechParams tech = tech32nm();
    const CrossbarModel small(5, 5, 128, tech);
    const CrossbarModel large(11, 11, 128, tech);
    EXPECT_GT(large.traversalEnergyPj(), small.traversalEnergyPj());
}

TEST(Crossbar, InputFeedPenalty)
{
    const TechParams tech = tech32nm();
    const CrossbarModel compact(5, 5, 128, tech, 0.0);
    const CrossbarModel fed(5, 5, 128, tech, 400.0);
    // Same area (feed wires live outside the switch matrix)...
    EXPECT_DOUBLE_EQ(compact.areaMm2(), fed.areaMm2());
    // ...but every traversal pays for the long input lines (the MECS
    // energy penalty of Sec. 5.4).
    EXPECT_GT(fed.traversalEnergyPj(), compact.traversalEnergyPj());
}

TEST(Crossbar, SpansMatchGeometry)
{
    const TechParams tech = tech32nm();
    const CrossbarModel x(4, 8, 128, tech);
    EXPECT_DOUBLE_EQ(x.inputSpanUm(), 4 * 128 * tech.wirePitchUm);
    EXPECT_DOUBLE_EQ(x.outputSpanUm(), 8 * 128 * tech.wirePitchUm);
}

TEST(Wire, EnergyLinearInBitsAndLength)
{
    const TechParams tech = tech32nm();
    const WireModel wire(tech);
    EXPECT_NEAR(wire.energyPj(256, 2.0), 4.0 * wire.energyPj(128, 1.0),
                1e-9);
    EXPECT_DOUBLE_EQ(wire.energyPj(128, 0.0), 0.0);
}

TEST(Wire, DelayCeil)
{
    EXPECT_EQ(WireModel::delayCycles(2.5, 1.0), 3);
    EXPECT_EQ(WireModel::delayCycles(2.0, 1.0), 2);
    EXPECT_EQ(WireModel::delayCycles(0.1, 1.0), 1);
}

} // namespace
} // namespace taqos
