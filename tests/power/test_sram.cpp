#include <gtest/gtest.h>

#include "power/sram_model.h"
#include "power/tech.h"

namespace taqos {
namespace {

TEST(Sram, AreaScalesWithCapacity)
{
    const TechParams tech = tech32nm();
    const SramModel small(ArrayKind::RouterBuffer, 16, 128, tech);
    const SramModel big(ArrayKind::RouterBuffer, 64, 128, tech);
    EXPECT_GT(big.areaMm2(), small.areaMm2());
    EXPECT_NEAR(big.areaMm2() / small.areaMm2(), 4.0, 1e-9);
}

TEST(Sram, DenseSramIsDenserThanBuffers)
{
    const TechParams tech = tech32nm();
    const SramModel buf(ArrayKind::RouterBuffer, 64, 24, tech);
    const SramModel dense(ArrayKind::DenseSram, 64, 24, tech);
    EXPECT_LT(dense.areaMm2(), buf.areaMm2());
}

TEST(Sram, EnergyScalesWithWordWidth)
{
    const TechParams tech = tech32nm();
    const SramModel narrow(ArrayKind::RouterBuffer, 16, 64, tech);
    const SramModel wide(ArrayKind::RouterBuffer, 16, 128, tech);
    EXPECT_NEAR(wide.readEnergyPj() / narrow.readEnergyPj(), 2.0, 1e-9);
}

TEST(Sram, LargeArraysPayBitlinePenalty)
{
    const TechParams tech = tech32nm();
    // Below the reference capacity: flat per-access energy.
    const SramModel atRef(ArrayKind::RouterBuffer, 32, 128, tech); // 4096 b
    const SramModel small(ArrayKind::RouterBuffer, 8, 128, tech);
    EXPECT_DOUBLE_EQ(atRef.readEnergyPj(), small.readEnergyPj());
    // Above: sqrt growth.
    const SramModel big(ArrayKind::RouterBuffer, 128, 128, tech); // 4x ref
    EXPECT_NEAR(big.readEnergyPj() / atRef.readEnergyPj(), 2.0, 1e-9);
}

TEST(Sram, WriteCostsMoreThanRead)
{
    const TechParams tech = tech32nm();
    const SramModel m(ArrayKind::RouterBuffer, 24, 128, tech);
    EXPECT_GT(m.writeEnergyPj(), m.readEnergyPj());
}

TEST(Sram, ZeroEntriesIsZeroArea)
{
    const TechParams tech = tech32nm();
    const SramModel m(ArrayKind::DenseSram, 0, 24, tech);
    EXPECT_DOUBLE_EQ(m.areaMm2(), 0.0);
}

TEST(Tech, WireEnergyDerivation)
{
    TechParams tech = tech32nm();
    // 0.5 * C * V^2 * activity / 1000 (fJ -> pJ)
    const double expect =
        0.5 * tech.wireCapPerMmFf * tech.vdd * tech.vdd *
        tech.activityFactor / 1000.0;
    EXPECT_DOUBLE_EQ(tech.wireEnergyPerBitMmPj(), expect);
    EXPECT_GT(expect, 0.0);
}

} // namespace
} // namespace taqos
