#include <gtest/gtest.h>

#include "noc/packet.h"
#include "noc/ports.h"

namespace taqos {
namespace {

TEST(Packet, LocationTracking)
{
    NetPacket pkt;
    InputPort a, b;
    pkt.addLoc(&a, 2);
    pkt.addLoc(&b, 0);
    EXPECT_EQ(pkt.numLocs, 2);
    pkt.removeLoc(&a, 2);
    EXPECT_EQ(pkt.numLocs, 1);
    EXPECT_EQ(pkt.locs[0].port, &b);
    pkt.removeLoc(&b, 0);
    EXPECT_EQ(pkt.numLocs, 0);
}

TEST(Packet, TransferTracking)
{
    NetPacket pkt;
    OutputPort x, y;
    pkt.addXfer(&x);
    pkt.addXfer(&y);
    EXPECT_EQ(pkt.numXfers, 2);
    pkt.removeXfer(&x);
    EXPECT_EQ(pkt.numXfers, 1);
    EXPECT_EQ(pkt.xfers[0], &y);
}

TEST(Packet, BeginAttemptResetsPerAttemptState)
{
    NetPacket pkt;
    InputPort a;
    pkt.addLoc(&a, 0);
    pkt.hopsThisAttempt = 3.0;
    pkt.blockedSince = 55;
    pkt.beginAttempt(100);
    EXPECT_EQ(pkt.injectCycle, 100u);
    EXPECT_EQ(pkt.state, PacketState::InFlight);
    EXPECT_EQ(pkt.attempt, 1);
    EXPECT_EQ(pkt.numLocs, 0);
    EXPECT_DOUBLE_EQ(pkt.hopsThisAttempt, 0.0);
    EXPECT_EQ(pkt.blockedSince, kNoCycle);
}

TEST(PacketPool, AllocAssignsUniqueIds)
{
    PacketPool pool;
    NetPacket *a = pool.alloc();
    NetPacket *b = pool.alloc();
    EXPECT_NE(a->id, b->id);
    EXPECT_EQ(pool.liveCount(), 2u);
}

TEST(PacketPool, RecyclesReleasedPackets)
{
    PacketPool pool;
    NetPacket *a = pool.alloc();
    const PacketId firstId = a->id;
    a->state = PacketState::Delivered;
    pool.release(a);
    EXPECT_EQ(pool.liveCount(), 0u);

    NetPacket *b = pool.alloc();
    EXPECT_EQ(b, a); // same storage reused
    EXPECT_NE(b->id, firstId);
    EXPECT_EQ(b->state, PacketState::Queued);
    EXPECT_EQ(b->numLocs, 0);
    EXPECT_EQ(pool.allocatedCount(), 1u);
}

TEST(PacketPool, ManyAllocations)
{
    PacketPool pool;
    std::vector<NetPacket *> pkts;
    for (int i = 0; i < 1000; ++i)
        pkts.push_back(pool.alloc());
    EXPECT_EQ(pool.liveCount(), 1000u);
    for (auto *p : pkts) {
        p->state = PacketState::Delivered;
        pool.release(p);
    }
    EXPECT_EQ(pool.liveCount(), 0u);
    // Reallocation drains the free list before growing.
    for (int i = 0; i < 500; ++i)
        pool.alloc();
    EXPECT_EQ(pool.allocatedCount(), 1000u);
}

} // namespace
} // namespace taqos
