#include <gtest/gtest.h>

#include "noc/packet.h"
#include "noc/vc.h"

namespace taqos {
namespace {

TEST(VirtualChannel, LifecycleStates)
{
    VirtualChannel vc;
    NetPacket pkt;
    pkt.sizeFlits = 4;

    EXPECT_EQ(vc.state(), VirtualChannel::State::Free);
    EXPECT_TRUE(vc.allocatable(0));

    vc.reserve(&pkt, 10, 13);
    EXPECT_EQ(vc.state(), VirtualChannel::State::Reserved);
    EXPECT_FALSE(vc.allocatable(0));
    EXPECT_FALSE(vc.arrived(9));
    EXPECT_TRUE(vc.arrived(10));

    vc.startDrain();
    EXPECT_EQ(vc.state(), VirtualChannel::State::Draining);

    vc.free(20);
    EXPECT_EQ(vc.state(), VirtualChannel::State::Free);
    EXPECT_EQ(vc.packet(), nullptr);
}

TEST(VirtualChannel, CreditVisibilityDelay)
{
    VirtualChannel vc;
    NetPacket pkt;
    vc.reserve(&pkt, 5, 5);
    vc.free(12);
    EXPECT_FALSE(vc.allocatable(11));
    EXPECT_TRUE(vc.allocatable(12));
}

TEST(VirtualChannel, FlitsPresentDuringArrival)
{
    VirtualChannel vc;
    NetPacket pkt;
    pkt.sizeFlits = 4;
    vc.reserve(&pkt, 10, 13);
    EXPECT_EQ(vc.flitsPresent(9), 0);
    EXPECT_EQ(vc.flitsPresent(10), 1);
    EXPECT_EQ(vc.flitsPresent(12), 3);
    EXPECT_EQ(vc.flitsPresent(13), 4);
    EXPECT_EQ(vc.flitsPresent(99), 4); // saturates at packet size
}

TEST(VirtualChannel, FlitsPresentFree)
{
    VirtualChannel vc;
    EXPECT_EQ(vc.flitsPresent(100), 0);
}

} // namespace
} // namespace taqos
