#include <gtest/gtest.h>

#include "common/log.h"
#include "noc/metrics.h"

namespace taqos {
namespace {

TEST(Metrics, WindowPredicate)
{
    SimMetrics m(4);
    m.measureStart = 100;
    m.measureEnd = 200;
    EXPECT_FALSE(m.inWindow(99));
    EXPECT_TRUE(m.inWindow(100));
    EXPECT_TRUE(m.inWindow(199));
    EXPECT_FALSE(m.inWindow(200));
}

TEST(Metrics, RatesGuardAgainstZeroDenominators)
{
    SimMetrics m(4);
    EXPECT_DOUBLE_EQ(m.preemptionPacketRate(), 0.0);
    EXPECT_DOUBLE_EQ(m.preemptionHopRate(), 0.0);
    EXPECT_DOUBLE_EQ(m.throughputFlitsPerCycle(0), 0.0);
}

TEST(Metrics, HopRateComposition)
{
    SimMetrics m(4);
    m.usefulHops = 90.0;
    m.wastedHops = 10.0;
    EXPECT_DOUBLE_EQ(m.preemptionHopRate(), 0.1);
}

TEST(Metrics, WindowFlitsSumsFlows)
{
    SimMetrics m(3);
    m.flowFlits = {5, 0, 7};
    EXPECT_EQ(m.windowFlits(), 12u);
    EXPECT_DOUBLE_EQ(m.throughputFlitsPerCycle(6), 2.0);
}

TEST(Metrics, SummaryMentionsKeyNumbers)
{
    SimMetrics m(2);
    m.generatedPackets = 42;
    m.deliveredPackets = 40;
    m.preemptionEvents = 3;
    m.latency.push(10.0);
    const std::string s = m.summary();
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("40"), std::string::npos);
    EXPECT_NE(s.find("10.0"), std::string::npos);
}

TEST(Log, LevelGate)
{
    const LogLevel prev = logLevel();
    setLogLevel(LogLevel::None);
    EXPECT_EQ(logLevel(), LogLevel::None);
    // No crash on suppressed and emitted paths.
    TAQOS_LOG_ERROR("suppressed %d", 1);
    setLogLevel(LogLevel::Trace);
    TAQOS_LOG_DEBUG("emitted %s", "ok");
    setLogLevel(prev);
}

} // namespace
} // namespace taqos
