#include <gtest/gtest.h>

#include "noc/ports.h"

namespace taqos {
namespace {

InputPort
makePort(int vcs, int reserved)
{
    InputPort p;
    p.name = "in";
    p.vcs.resize(static_cast<std::size_t>(vcs));
    p.reservedVc = reserved;
    return p;
}

TEST(InputPort, ReservedVcPolicy)
{
    InputPort p = makePort(3, 0);
    // Non-compliant traffic may not take VC 0.
    NetPacket a, b, c;
    int v = p.findFreeVc(0, false);
    EXPECT_NE(v, 0);
    p.vcs[static_cast<std::size_t>(v)].reserve(&a, 1, 1);
    v = p.findFreeVc(0, false);
    EXPECT_NE(v, 0);
    p.vcs[static_cast<std::size_t>(v)].reserve(&b, 1, 1);
    // Regular VCs exhausted: non-compliant fails, compliant gets VC 0.
    EXPECT_EQ(p.findFreeVc(0, false), -1);
    EXPECT_EQ(p.findFreeVc(0, true), 0);
    p.vcs[0].reserve(&c, 1, 1);
    EXPECT_EQ(p.findFreeVc(0, true), -1);
}

TEST(InputPort, CompliantPrefersRegularVcs)
{
    InputPort p = makePort(3, 0);
    // With everything free, compliant traffic leaves the escape VC alone.
    EXPECT_NE(p.findFreeVc(0, true), 0);
}

TEST(InputPort, UnboundedVcsGrow)
{
    InputPort p = makePort(1, -1);
    p.unboundedVcs = true;
    NetPacket a;
    p.vcs[0].reserve(&a, 1, 1);
    const int v = p.findFreeVc(0, false);
    EXPECT_EQ(v, 1);
    EXPECT_EQ(p.vcs.size(), 2u);
}

TEST(InputPort, OccupiedCount)
{
    InputPort p = makePort(4, -1);
    NetPacket a;
    EXPECT_EQ(p.occupiedVcs(), 0);
    p.vcs[1].reserve(&a, 1, 1);
    EXPECT_EQ(p.occupiedVcs(), 1);
}

TEST(XbarGroup, Occupancy)
{
    XbarGroup g;
    EXPECT_TRUE(g.freeAt(0));
    g.occupy(10, 4);
    EXPECT_FALSE(g.freeAt(13));
    EXPECT_TRUE(g.freeAt(14));
}

class TransferTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        src_.name = "src";
        src_.creditDelay = 2;
        src_.vcs.resize(2);
        down_.name = "down";
        down_.vcs.resize(2);
        out_.name = "out";
        out_.drops.push_back(OutputPort::Drop{&down_, 1, 1.0});
        pkt_.sizeFlits = 4;
        pkt_.state = PacketState::InFlight;
    }

    InputPort src_, down_;
    OutputPort out_;
    NetPacket pkt_;
};

TEST_F(TransferTest, FullLifecycle)
{
    // Packet resident in src VC 0, granted at cycle 10 into down VC 1.
    src_.vcs[0].reserve(&pkt_, 5, 8);
    pkt_.addLoc(&src_, 0);
    down_.vcs[1].reserve(&pkt_, 12, 15); // now+1+wire .. +size-1
    pkt_.addLoc(&down_, 1);

    out_.startTransfer(&pkt_, 0, 1, VcRef{&src_, 0}, 10);
    EXPECT_EQ(pkt_.numXfers, 1);
    EXPECT_EQ(src_.vcs[0].state(), VirtualChannel::State::Draining);
    EXPECT_FALSE(out_.linkFree(13));
    EXPECT_TRUE(out_.linkFree(14)); // tail on wire at 14

    // Too early: nothing happens.
    out_.tickCompletion(13);
    EXPECT_TRUE(out_.transfer().active);

    out_.tickCompletion(14);
    EXPECT_FALSE(out_.transfer().active);
    EXPECT_EQ(pkt_.numXfers, 0);
    EXPECT_DOUBLE_EQ(pkt_.hopsThisAttempt, 1.0);
    // Source VC freed with the credit delay applied.
    EXPECT_EQ(src_.vcs[0].state(), VirtualChannel::State::Free);
    EXPECT_FALSE(src_.vcs[0].allocatable(15));
    EXPECT_TRUE(src_.vcs[0].allocatable(16));
    // Source loc removed; downstream loc still owned by the packet.
    EXPECT_EQ(pkt_.numLocs, 1);
    EXPECT_EQ(pkt_.locs[0].port, &down_);
}

TEST_F(TransferTest, CancelComputesPartialWaste)
{
    down_.vcs[0].reserve(&pkt_, 12, 15);
    pkt_.addLoc(&down_, 0);
    out_.startTransfer(&pkt_, 0, 0, VcRef{nullptr, -1}, 10);

    // At cycle 12, flits on wire were cycles 11 and 12: half the packet.
    const double wasted = out_.cancelTransfer(12);
    EXPECT_DOUBLE_EQ(wasted, 0.5);
    EXPECT_FALSE(out_.transfer().active);
    EXPECT_EQ(pkt_.numXfers, 0);
    // The channel frees for the preemptor next cycle.
    EXPECT_TRUE(out_.linkFree(13));
}

TEST_F(TransferTest, CancelBeforeFirstFlitWastesNothing)
{
    down_.vcs[0].reserve(&pkt_, 12, 15);
    pkt_.addLoc(&down_, 0);
    out_.startTransfer(&pkt_, 0, 0, VcRef{nullptr, -1}, 10);
    EXPECT_DOUBLE_EQ(out_.cancelTransfer(10), 0.0);
}

TEST_F(TransferTest, CancelIdleIsNoop)
{
    EXPECT_DOUBLE_EQ(out_.cancelTransfer(10), 0.0);
}

TEST_F(TransferTest, MeshHopsWeighting)
{
    // An express drop spanning 3 nodes counts as 3 mesh-equivalent hops.
    out_.drops[0].meshHops = 3.0;
    down_.vcs[0].reserve(&pkt_, 14, 17);
    pkt_.addLoc(&down_, 0);
    out_.startTransfer(&pkt_, 0, 0, VcRef{nullptr, -1}, 10);
    out_.tickCompletion(14);
    EXPECT_DOUBLE_EQ(pkt_.hopsThisAttempt, 3.0);
}

} // namespace
} // namespace taqos
