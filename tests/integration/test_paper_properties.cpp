/// End-to-end reproduction checks: the qualitative claims of the paper's
/// evaluation, on medium-length runs (the full-length numbers come from
/// the bench binaries and are recorded in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/experiments.h"
#include "power/tech.h"
#include "topo/geometry.h"

namespace taqos {
namespace {

template <typename Rows>
std::map<TopologyKind, typename Rows::value_type>
byTopology(const Rows &rows)
{
    std::map<TopologyKind, typename Rows::value_type> m;
    for (const auto &row : rows)
        m[row.topology] = row;
    return m;
}

TEST(PaperFig3, AreaOrdering)
{
    const auto rows = byTopology(runFig3Area());
    const auto total = [&](TopologyKind k) {
        return rows.at(k).area.totalMm2();
    };
    // mesh_x1 < mesh_x2 < {dps, mecs} < mesh_x4
    EXPECT_LT(total(TopologyKind::MeshX1), total(TopologyKind::MeshX2));
    EXPECT_LT(total(TopologyKind::MeshX2), total(TopologyKind::Mecs));
    EXPECT_LT(total(TopologyKind::Dps), total(TopologyKind::MeshX4));
    EXPECT_LT(total(TopologyKind::Mecs), total(TopologyKind::MeshX4));
}

TEST(PaperFig4, LatencyAdvantagesOnUniformRandom)
{
    const RunPhases phases{5000, 20000, 10000};
    const auto series =
        byTopology(runFig4Latency(TrafficPattern::UniformRandom,
                                  {0.04}, phases));
    const double mesh =
        series.at(TopologyKind::MeshX1).points[0].avgLatency;
    const double mecs = series.at(TopologyKind::Mecs).points[0].avgLatency;
    const double dps = series.at(TopologyKind::Dps).points[0].avgLatency;
    // Sec 5.2: MECS and DPS "nearly identical", ~13% faster than meshes.
    EXPECT_LT(mecs, mesh);
    EXPECT_LT(dps, mesh);
    EXPECT_NEAR(mecs / dps, 1.0, 0.10);
    EXPECT_GT(mesh / std::min(mecs, dps), 1.05);
}

TEST(PaperFig4, TornadoFavoursMecs)
{
    const RunPhases phases{5000, 20000, 10000};
    const auto series = byTopology(
        runFig4Latency(TrafficPattern::Tornado, {0.03}, phases));
    const double mecs = series.at(TopologyKind::Mecs).points[0].avgLatency;
    const double dps = series.at(TopologyKind::Dps).points[0].avgLatency;
    const double mesh =
        series.at(TopologyKind::MeshX4).points[0].avgLatency;
    EXPECT_LT(mecs, dps);  // ~7% in the paper
    EXPECT_LT(dps, mesh);  // both well ahead of meshes
}

TEST(PaperTable2, AllTopologiesFairMecsTightest)
{
    const auto rows = byTopology(runTable2Fairness(60000, 10000));
    for (const auto &[kind, row] : rows) {
        EXPECT_LT(row.stddevPct(), 1.5) << topologyName(kind);
        EXPECT_GT(row.minPct(), 97.0) << topologyName(kind);
        EXPECT_LT(row.maxPct(), 103.0) << topologyName(kind);
    }
    // MECS has the strongest fairness of the five.
    const double mecsSd = rows.at(TopologyKind::Mecs).stddevPct();
    EXPECT_LE(mecsSd, rows.at(TopologyKind::MeshX4).stddevPct() + 0.05);
    EXPECT_LE(mecsSd, rows.at(TopologyKind::Dps).stddevPct() + 0.05);
}

TEST(PaperFig5, Workload1PreemptionOrdering)
{
    const auto rows = byTopology(runAdversarial(1, 60000));
    const auto hops = [&](TopologyKind k) {
        return rows.at(k).replayedHopsPct;
    };
    // Replicated meshes thrash the most; mesh_x1 and DPS the least; MECS
    // in the same low group.
    EXPECT_GT(hops(TopologyKind::MeshX4), hops(TopologyKind::MeshX1));
    EXPECT_GT(hops(TopologyKind::MeshX4), hops(TopologyKind::Dps));
    EXPECT_GT(hops(TopologyKind::MeshX4), hops(TopologyKind::Mecs));
    EXPECT_GT(hops(TopologyKind::MeshX2), hops(TopologyKind::Dps));
    // Everyone preempts something on this workload.
    for (const auto &[kind, row] : rows)
        EXPECT_GT(row.preemptedPacketsPct, 0.0) << topologyName(kind);
}

TEST(PaperFig5, Workload2RelievesChainTopologies)
{
    const auto w1 = byTopology(runAdversarial(1, 40000));
    const auto w2 = byTopology(runAdversarial(2, 40000));
    // Sec. 5.3: mesh_x1 and DPS preemption rates drop significantly on
    // Workload 2; replicated meshes stay high.
    EXPECT_LT(w2.at(TopologyKind::MeshX1).preemptedPacketsPct,
              0.6 * w1.at(TopologyKind::MeshX1).preemptedPacketsPct + 1.0);
    EXPECT_LT(w2.at(TopologyKind::Dps).preemptedPacketsPct,
              0.6 * w1.at(TopologyKind::Dps).preemptedPacketsPct + 1.0);
    EXPECT_GT(w2.at(TopologyKind::MeshX4).replayedHopsPct, 5.0);
}

TEST(PaperFig6, SlowdownSmallDeviationTight)
{
    const auto rows = byTopology(runAdversarial(1, 60000));
    for (const auto &[kind, row] : rows) {
        EXPECT_LT(row.slowdownPct, 8.0) << topologyName(kind);
        EXPECT_GT(row.slowdownPct, -8.0) << topologyName(kind);
        // Short (1.2-frame) runs see a few % of warm-up bias; full-length
        // deviations (EXPERIMENTS.md) sit near the paper's <1%.
        EXPECT_LT(std::abs(row.avgDeviationPct), 6.0)
            << topologyName(kind);
    }
}

TEST(PaperFig7, EnergyRatios)
{
    const auto rows = byTopology(runFig7Energy());
    const auto threeHop = [&](TopologyKind k) {
        return EnergyRow::total(rows.at(k).threeHopPj);
    };
    // DPS saves vs both mesh variants (paper: 17% and 33%).
    EXPECT_LT(threeHop(TopologyKind::Dps),
              0.95 * threeHop(TopologyKind::MeshX1));
    EXPECT_LT(threeHop(TopologyKind::Dps),
              0.75 * threeHop(TopologyKind::MeshX4));
    // MECS and DPS nearly identical on the 3-hop route.
    EXPECT_NEAR(threeHop(TopologyKind::Mecs) / threeHop(TopologyKind::Dps),
                1.0, 0.2);
    // MECS routers are the most energy-hungry per traversal (long input
    // lines), undesirable for near traffic.
    EXPECT_GT(EnergyRow::total(rows.at(TopologyKind::Mecs).srcPj),
              EnergyRow::total(rows.at(TopologyKind::Dps).srcPj));
}

TEST(PaperSec52, MecsMatchesDpsThroughputWithFractionOfBuffers)
{
    // DPS matches MECS throughput with far fewer buffers (Sec. 5.2).
    ColumnConfig col;
    col.topology = TopologyKind::Mecs;
    const int mecsFlits = totalColumnBufferFlits(
        representativeGeometry(TopologyKind::Mecs, col));
    col.topology = TopologyKind::Dps;
    const int dpsFlits = totalColumnBufferFlits(
        representativeGeometry(TopologyKind::Dps, col));
    EXPECT_LT(dpsFlits, mecsFlits / 2);

    const RunPhases phases{4000, 12000, 6000};
    const auto series = byTopology(
        runFig4Latency(TrafficPattern::Tornado, {0.10}, phases));
    EXPECT_NEAR(series.at(TopologyKind::Dps).points[0].throughput,
                series.at(TopologyKind::Mecs).points[0].throughput,
                0.015);
}

} // namespace
} // namespace taqos
