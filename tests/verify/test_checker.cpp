/// Mutation coverage for the independent trace checker: for every
/// invariant class a deliberately corrupted trace is flagged with a
/// precise first-violation diagnostic, clean fixtures and clean live runs
/// pass, and malformed/truncated inputs fail parsing gracefully.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sim/column_sim.h"
#include "sim/trace_record.h"
#include "verify/checker.h"

namespace taqos {
namespace {

// ------------------------------------------------------------ fixtures

/// Port table of a synthetic 8-node column: for node n, port 2n is a
/// network input and port 2n+1 the terminal.
std::int32_t
netPort(NodeId n)
{
    return 2 * n;
}
std::int32_t
termPort(NodeId n)
{
    return 2 * n + 1;
}

/// Builds structurally legal synthetic traces: each packet gets a full
/// J/R/H/D/F/A lifecycle on its own VC, and the event stream is sorted
/// by cycle at the end (stable, so per-packet order is preserved).
struct FixtureBuilder {
    FlitTrace t;

    explicit FixtureBuilder(const std::string &mode = "no-qos")
    {
        t.meta.topology = "dps";
        t.meta.mode = mode;
        t.meta.nodes = 8;
        t.meta.injectorsPerNode = 8;
        t.meta.flows = 64;
        t.meta.endCycle = 100000;
        t.meta.drained = true;
        for (NodeId n = 0; n < 8; ++n) {
            TracePortInfo net;
            net.id = netPort(n);
            net.node = n;
            net.terminal = false;
            net.name = "net_" + std::to_string(n);
            t.ports.push_back(net);
            TracePortInfo term;
            term.id = termPort(n);
            term.node = n;
            term.terminal = true;
            term.name = "term_" + std::to_string(n);
            t.ports.push_back(term);
        }
    }

    TraceEvent base(TraceEventKind kind, Cycle cycle, PacketId pkt)
    {
        TraceEvent e;
        e.kind = kind;
        e.cycle = cycle;
        e.pkt = pkt;
        return e;
    }

    void inject(PacketId pkt, FlowId flow, NodeId src, NodeId dst,
                std::int32_t size, Cycle gen, Cycle cycle,
                std::int32_t attempt = 1,
                std::uint64_t frameTag = kTraceNoTag)
    {
        TraceEvent e = base(TraceEventKind::Inject, cycle, pkt);
        e.node = src;
        e.flow = flow;
        e.src = src;
        e.dst = dst;
        e.size = size;
        e.attempt = attempt;
        e.gen = gen;
        e.frameTag = frameTag;
        t.events.push_back(e);
    }

    /// Full delivered lifecycle: inject at `inj`, eject at dst's terminal
    /// at `del`. Each packet uses its id as VC index so concurrent
    /// packets never collide.
    void delivered(PacketId pkt, FlowId flow, NodeId src, NodeId dst,
                   std::int32_t size, Cycle gen, Cycle inj, Cycle del)
    {
        inject(pkt, flow, src, dst, size, gen, inj);
        const std::int32_t vc = static_cast<std::int32_t>(pkt);
        TraceEvent r = base(TraceEventKind::VcReserve, inj, pkt);
        r.port = termPort(dst);
        r.vc = vc;
        r.head = del;
        r.tail = del + static_cast<Cycle>(size) - 1;
        t.events.push_back(r);
        TraceEvent h = base(TraceEventKind::Hop, inj, pkt);
        h.node = src;
        h.port = termPort(dst);
        h.vc = vc;
        t.events.push_back(h);
        TraceEvent d = base(TraceEventKind::Deliver, del, pkt);
        d.port = termPort(dst);
        d.vc = vc;
        t.events.push_back(d);
        TraceEvent f = base(TraceEventKind::VcFree, del, pkt);
        f.port = termPort(dst);
        f.vc = vc;
        t.events.push_back(f);
        t.events.push_back(base(TraceEventKind::Retire, del, pkt));
    }

    /// Inject at `inj`, preempt-kill at `kill` (packet ends Dropped).
    void killed(PacketId pkt, FlowId flow, NodeId src, NodeId dst,
                std::int32_t size, Cycle inj, Cycle kill)
    {
        inject(pkt, flow, src, dst, size, inj, inj);
        TraceEvent k = base(TraceEventKind::Kill, kill, pkt);
        k.node = src;
        t.events.push_back(k);
        t.meta.drained = false; // a dropped packet never drains
    }

    FlitTrace build()
    {
        std::stable_sort(t.events.begin(), t.events.end(),
                         [](const TraceEvent &a, const TraceEvent &b) {
                             return a.cycle < b.cycle;
                         });
        return t;
    }
};

// ------------------------------------------------- structural classes

TEST(Checker, CleanSyntheticTracePasses)
{
    FixtureBuilder b;
    b.delivered(1, 0, 0, 3, 4, 5, 10, 20);
    b.delivered(2, 9, 1, 7, 1, 12, 25, 31);
    b.delivered(3, 17, 2, 0, 4, 30, 40, 55);
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
    EXPECT_EQ(report.eventsChecked, b.t.events.size());
}

TEST(Checker, BackwardsTimestampFlagged)
{
    FixtureBuilder b;
    b.delivered(1, 0, 0, 3, 4, 5, 10, 20);
    FlitTrace t = b.build();
    t.events.back().cycle = 3; // retire before everything else happened
    const CheckReport report = verifyTrace(t);
    EXPECT_TRUE(report.has("timestamp")) << report.firstDiagnostic();
}

TEST(Checker, IllegalHopFlagged)
{
    FixtureBuilder b;
    b.t.meta.drained = false;
    b.inject(1, 0, 0, 3, 4, 5, 10);
    TraceEvent r = b.base(TraceEventKind::VcReserve, 10, 1);
    r.port = netPort(2);
    r.vc = 0;
    r.head = 12;
    r.tail = 15;
    b.t.events.push_back(r);
    TraceEvent h = b.base(TraceEventKind::Hop, 10, 1);
    h.node = 0; // node 0 -> node 2 skips node 1: not a mesh/DPS link
    h.port = netPort(2);
    h.vc = 0;
    b.t.events.push_back(h);
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("route")) << report.firstDiagnostic();
}

TEST(Checker, HopAwayFromDestinationFlagged)
{
    FixtureBuilder b;
    b.t.meta.drained = false;
    b.inject(1, 0, 3, 5, 4, 5, 10); // dst 5: progress means 3 -> 4
    TraceEvent r = b.base(TraceEventKind::VcReserve, 10, 1);
    r.port = netPort(2);
    r.vc = 0;
    r.head = 12;
    r.tail = 15;
    b.t.events.push_back(r);
    TraceEvent h = b.base(TraceEventKind::Hop, 10, 1);
    h.node = 3;
    h.port = netPort(2); // neighbouring, but away from dst
    h.vc = 0;
    b.t.events.push_back(h);
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("route")) << report.firstDiagnostic();
}

TEST(Checker, WrongTerminalEjectionFlagged)
{
    FixtureBuilder b;
    // Delivered at node 2's terminal, but the packet is addressed to 3.
    b.delivered(1, 0, 0, 3, 4, 5, 10, 20);
    FlitTrace t = b.build();
    for (TraceEvent &e : t.events) {
        if (e.port == termPort(3))
            e.port = termPort(2);
    }
    const CheckReport report = verifyTrace(t);
    EXPECT_TRUE(report.has("route")) << report.firstDiagnostic();
}

TEST(Checker, DuplicateDeliveryFlagged)
{
    FixtureBuilder b;
    b.delivered(1, 0, 0, 3, 4, 5, 10, 20);
    FlitTrace t = b.build();
    TraceEvent dup = t.events[3]; // the Deliver event
    ASSERT_EQ(dup.kind, TraceEventKind::Deliver);
    dup.cycle = 60;
    t.events.push_back(dup);
    const CheckReport report = verifyTrace(t);
    EXPECT_TRUE(report.has("conservation")) << report.firstDiagnostic();
}

TEST(Checker, LostPacketFlagged)
{
    FixtureBuilder b;
    b.delivered(1, 0, 0, 3, 4, 5, 10, 20);
    b.inject(2, 1, 0, 5, 4, 6, 12); // injected, then vanishes
    const CheckReport report = verifyTrace(b.build());
    ASSERT_TRUE(report.has("conservation")) << report.firstDiagnostic();
    EXPECT_EQ(report.violations.front().pkt, 2u);
}

TEST(Checker, AttemptSkipFlagged)
{
    FixtureBuilder b;
    b.killed(1, 0, 0, 3, 4, 10, 50);
    b.inject(1, 0, 0, 3, 4, 10, 80, /*attempt=*/3); // 2 went missing
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("conservation")) << report.firstDiagnostic();
}

TEST(Checker, VcDoubleReserveFlagged)
{
    FixtureBuilder b;
    b.t.meta.drained = false;
    b.inject(1, 0, 0, 3, 4, 5, 10);
    b.inject(2, 1, 1, 3, 4, 6, 11);
    for (PacketId pkt : {PacketId(1), PacketId(2)}) {
        TraceEvent r = b.base(TraceEventKind::VcReserve, 10 + pkt, pkt);
        r.port = termPort(3);
        r.vc = 0; // both land in the same VC
        r.head = 20;
        r.tail = 23;
        b.t.events.push_back(r);
    }
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("vc-exclusivity")) << report.firstDiagnostic();
}

// ------------------------------------------------------- QoS audits

TEST(Checker, PvcQuotaViolationFlagged)
{
    FixtureBuilder b("pvc");
    b.t.meta.frameLen = 50000;
    b.t.meta.quotaEnabled = true;
    b.t.meta.quotaProtect = 1.5;
    // Flow 0 has 4 flits in flight this frame — far inside its protected
    // cap (1.5 x 50000/64 = 1171 flits) — so preempting it breaks the
    // PVC guarantee.
    b.killed(1, 0, 0, 3, 4, 100, 200);
    const CheckReport report = verifyTrace(b.build());
    ASSERT_TRUE(report.has("pvc-quota")) << report.firstDiagnostic();
    const std::string diag = report.firstDiagnostic();
    EXPECT_NE(diag.find("cycle 200"), std::string::npos) << diag;
    EXPECT_NE(diag.find("pkt 1"), std::string::npos) << diag;
}

TEST(Checker, PvcKillBeyondQuotaAccepted)
{
    FixtureBuilder b("pvc");
    b.t.meta.frameLen = 50000;
    b.t.meta.quotaEnabled = true;
    b.t.meta.quotaProtect = 1.5;
    // Flow 0 floods 1200 flits into the frame (cap 1171): killing its
    // latest packet is a legitimate preemption.
    for (PacketId p = 1; p <= 300; ++p) {
        b.inject(p, 0, 0, 3, 4, p, p);
    }
    b.t.meta.drained = false;
    TraceEvent k = b.base(TraceEventKind::Kill, 400, 300);
    k.node = 0;
    b.t.events.push_back(k);
    const CheckReport report = verifyTrace(b.build());
    EXPECT_FALSE(report.has("pvc-quota")) << report.firstDiagnostic();
}

TEST(Checker, GsfBudgetOverrunFlagged)
{
    FixtureBuilder b("gsf");
    b.t.meta.gsfFrameLen = 2000;
    b.t.meta.gsfFrames = 4;
    b.t.meta.drained = false;
    // Budget is max(1, 2000/64) = 31 flits per frame; flow 0 charges 31
    // and then injects again into the same frame.
    b.inject(1, 0, 0, 3, 31, 5, 10, 1, /*frameTag=*/0);
    b.inject(2, 0, 0, 3, 1, 6, 12, 1, /*frameTag=*/0);
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("gsf-frame")) << report.firstDiagnostic();
}

TEST(Checker, GsfWindowSpanFlagged)
{
    FixtureBuilder b("gsf");
    b.t.meta.gsfFrameLen = 2000;
    b.t.meta.gsfFrames = 4;
    b.t.meta.drained = false;
    // Frame 0 is still in flight (never delivered) when frame 5 is
    // admitted: span 5 >= the 4-frame window.
    b.inject(1, 0, 0, 3, 4, 5, 10, 1, /*frameTag=*/0);
    b.inject(2, 1, 0, 3, 4, 6, 12, 1, /*frameTag=*/5);
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("gsf-frame")) << report.firstDiagnostic();
}

TEST(Checker, AgeBoundOverrunFlagged)
{
    FixtureBuilder b("age");
    b.t.meta.maxAge = 100;
    b.delivered(1, 0, 0, 3, 4, /*gen=*/0, 10, /*del=*/500);
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("age-bound")) << report.firstDiagnostic();
}

TEST(Checker, StarvedPacketFlaggedByAgeAudit)
{
    FixtureBuilder b("age");
    b.t.meta.maxAge = 100;
    b.t.meta.drained = false;
    b.t.meta.endCycle = 5000;
    b.inject(1, 0, 0, 3, 4, /*gen=*/0, 10); // still queued at cycle 5000
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("age-bound")) << report.firstDiagnostic();
}

TEST(Checker, WrrShareViolationFlagged)
{
    FixtureBuilder b("wrr");
    b.t.meta.flows = 2;
    b.t.meta.wrrTol = 0.5;
    b.t.meta.measureStart = 0;
    b.t.meta.measureEnd = 1000;
    b.t.meta.drained = false;
    // Both flows are backlogged across the whole window (coverage packets
    // generated at 0, injected only at 1000), but flow 0 receives 80
    // delivered flits to flow 1's 8 — far outside the 50% tolerance of
    // the equal-weight 44-flit share.
    PacketId next = 1;
    for (int i = 0; i < 20; ++i) {
        const Cycle del = 20 + static_cast<Cycle>(i) * 40;
        b.delivered(next++, 0, 0, 3, 4, del - 15, del - 10, del);
    }
    for (int i = 0; i < 2; ++i) {
        const Cycle del = 100 + static_cast<Cycle>(i) * 400;
        b.delivered(next++, 1, 1, 3, 4, del - 15, del - 10, del);
    }
    b.inject(next++, 0, 0, 3, 4, /*gen=*/0, /*cycle=*/1000);
    b.inject(next++, 1, 1, 3, 4, /*gen=*/0, /*cycle=*/1000);
    const CheckReport report = verifyTrace(b.build());
    EXPECT_TRUE(report.has("wrr-weight")) << report.firstDiagnostic();
}

TEST(Checker, WrrBalancedSharesPass)
{
    FixtureBuilder b("wrr");
    b.t.meta.flows = 2;
    b.t.meta.wrrTol = 0.5;
    b.t.meta.measureStart = 0;
    b.t.meta.measureEnd = 1000;
    b.t.meta.drained = false;
    PacketId next = 1;
    for (FlowId f = 0; f < 2; ++f) {
        for (int i = 0; i < 10; ++i) {
            const Cycle del = 30 + static_cast<Cycle>(i) * 90 +
                              static_cast<Cycle>(f);
            b.delivered(next++, f, f, 3, 4, del - 15, del - 10, del);
        }
        b.inject(next++, f, f, 3, 4, /*gen=*/0, /*cycle=*/1000);
    }
    const CheckReport report = verifyTrace(b.build());
    EXPECT_FALSE(report.has("wrr-weight")) << report.firstDiagnostic();
}

// ----------------------------------------- QoS audits can be disabled

TEST(Checker, QosAuditOptOutSkipsPolicyChecks)
{
    FixtureBuilder b("pvc");
    b.t.meta.frameLen = 50000;
    b.t.meta.quotaEnabled = true;
    b.killed(1, 0, 0, 3, 4, 100, 200); // would be a pvc-quota violation
    CheckOptions opts;
    opts.qosAudit = false;
    const CheckReport report = verifyTrace(b.build(), opts);
    EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
}

// -------------------------------------------- corrupt / truncated input

TEST(Checker, TruncatedTraceFailsParsingGracefully)
{
    FixtureBuilder b;
    b.delivered(1, 0, 0, 3, 4, 5, 10, 20);
    b.delivered(2, 9, 1, 7, 1, 12, 25, 31);
    const std::string text = serializeFlitTrace(b.build());

    FlitTrace out;
    std::string error;
    // Cut at an event boundary: the stream ends early and the parser
    // reports the shortfall against the declared event count.
    const auto lastLine = text.rfind('\n', text.size() - 2);
    ASSERT_NE(lastLine, std::string::npos);
    ASSERT_FALSE(parseFlitTrace(text.substr(0, lastLine + 1), out, error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;

    // Cut mid-line (a torn write): still a clean diagnostic, no crash.
    ASSERT_FALSE(parseFlitTrace(text.substr(0, text.size() / 2), out,
                                error));
    EXPECT_FALSE(error.empty());
}

TEST(Checker, CorruptEventLineFailsParsingGracefully)
{
    FixtureBuilder b;
    b.delivered(1, 0, 0, 3, 4, 5, 10, 20);
    std::string text = serializeFlitTrace(b.build());
    const auto pos = text.find("\nJ ");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos + 1, 1, "Z"); // unknown event kind
    FlitTrace out;
    std::string error;
    ASSERT_FALSE(parseFlitTrace(text, out, error));
    EXPECT_NE(error.find("line"), std::string::npos) << error;
}

TEST(Checker, BadMagicAndEmptyInputRejected)
{
    FlitTrace out;
    std::string error;
    EXPECT_FALSE(parseFlitTrace(std::string("not-a-trace 1\n"), out, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseFlitTrace(std::string(), out, error));
    EXPECT_FALSE(error.empty());
}

TEST(Checker, MissingFileReportsParseError)
{
    const FileCheckResult res =
        verifyTraceFile("/nonexistent/taqos-trace.txt");
    EXPECT_FALSE(res.parseOk);
    EXPECT_FALSE(res.parseError.empty());
}

// ------------------------------------------------------ live-run audits

/// A clean fig4-style smoke cell audits violation-free under both
/// engines, and a corrupted copy of the same real trace is caught.
class CheckerLive : public ::testing::TestWithParam<bool> {};

TEST_P(CheckerLive, CleanSmokeRunAuditsCleanly)
{
    const ColumnConfig col = [] {
        ColumnConfig c;
        c.topology = TopologyKind::Dps;
        c.mode = QosMode::Pvc;
        c.canonicalize();
        return c;
    }();
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.05;
    t.genUntil = 6000;

    ColumnSim sim(col, t);
    sim.configure({.activityDriven = GetParam()});
    sim.setMeasureWindow(2000, 6000);
    TraceRecorder rec(describeColumn(sim.cfg()));
    rec.setMeasureWindow(2000, 6000);
    sim.attachTraceSink(&rec);

    const Cycle done = sim.runUntilDrained(100000, 6000);
    ASSERT_NE(done, kNoCycle);
    rec.finish(sim.now(), sim.drained());

    const CheckReport report = verifyTrace(rec.trace());
    EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
    EXPECT_GT(report.eventsChecked, 1000u);

    // Mutate the real trace: drop one delivery — the packet is now lost.
    FlitTrace corrupt = rec.trace();
    const auto it = std::find_if(
        corrupt.events.begin(), corrupt.events.end(),
        [](const TraceEvent &e) {
            return e.kind == TraceEventKind::Deliver;
        });
    ASSERT_NE(it, corrupt.events.end());
    corrupt.events.erase(it);
    EXPECT_FALSE(verifyTrace(corrupt).ok());
}

INSTANTIATE_TEST_SUITE_P(BothEngines, CheckerLive, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? std::string("event")
                                               : std::string("tick");
                         });

} // namespace
} // namespace taqos
