/// Trace format round-trip: record a live run, serialize it, parse it
/// back, and require the identical event stream — including the
/// preemption-heavy adversarial workload 1, whose kill/requeue/replay
/// chains exercise every event kind.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sim/column_sim.h"
#include "sim/trace_record.h"
#include "traffic/workloads.h"
#include "verify/checker.h"

namespace taqos {
namespace {

std::uint64_t
countKind(const FlitTrace &trace, TraceEventKind kind)
{
    return static_cast<std::uint64_t>(
        std::count_if(trace.events.begin(), trace.events.end(),
                      [kind](const TraceEvent &e) {
                          return e.kind == kind;
                      }));
}

TEST(TraceRoundTrip, UniformRunIsIdenticalAfterReparse)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    col.canonicalize();
    TrafficConfig t;
    t.injectionRate = 0.05;
    t.genUntil = 4000;

    ColumnSim sim(col, t);
    sim.setMeasureWindow(1000, 4000);
    TraceRecorder rec(describeColumn(sim.cfg()));
    rec.setMeasureWindow(1000, 4000);
    sim.attachTraceSink(&rec);
    ASSERT_NE(sim.runUntilDrained(60000, 4000), kNoCycle);
    rec.finish(sim.now(), sim.drained());

    const FlitTrace &orig = rec.trace();
    ASSERT_GT(orig.events.size(), 0u);

    const std::string text = serializeFlitTrace(orig);
    FlitTrace parsed;
    std::string error;
    ASSERT_TRUE(parseFlitTrace(text, parsed, error)) << error;
    EXPECT_EQ(parsed.meta, orig.meta);
    EXPECT_EQ(parsed.ports, orig.ports);
    ASSERT_EQ(parsed.events.size(), orig.events.size());
    EXPECT_TRUE(parsed == orig);

    // A second serialize pass is byte-identical (canonical form).
    EXPECT_EQ(serializeFlitTrace(parsed), text);
}

TEST(TraceRoundTrip, PreemptionHeavyWorkload1IsIdenticalAfterReparse)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    col.canonicalize();
    TrafficConfig t = makeWorkload1(col);
    t.genUntil = 20000;

    ColumnSim sim(col, t);
    TraceRecorder rec(describeColumn(sim.cfg()));
    sim.attachTraceSink(&rec);
    ASSERT_NE(sim.runUntilDrained(400000, 20000), kNoCycle);
    rec.finish(sim.now(), sim.drained());

    const FlitTrace &orig = rec.trace();
    // The adversarial workload must actually preempt: kills, NACK
    // requeues and replayed injections all appear in the stream.
    EXPECT_GT(countKind(orig, TraceEventKind::Kill), 0u);
    EXPECT_GT(countKind(orig, TraceEventKind::Requeue), 0u);

    const std::string text = serializeFlitTrace(orig);
    FlitTrace parsed;
    std::string error;
    ASSERT_TRUE(parseFlitTrace(text, parsed, error)) << error;
    EXPECT_TRUE(parsed == orig);

    // And the reparsed stream checks out under the full audit: every
    // preemption the engine performed respected the PVC quota.
    const CheckReport report = verifyTrace(parsed);
    EXPECT_TRUE(report.ok()) << report.firstDiagnostic();
}

} // namespace
} // namespace taqos
