/// The content-addressed sweep cache: key sensitivity (dynamics
/// coordinates in, execution knobs out), exact store/load round-trips,
/// corrupt fragments degrading to misses, cached re-runs emitting
/// byte-identical JSON with every cell a hit, and the shared-warmup
/// replicate fork staying bit-identical to per-cell cold runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "exp/cell_cache.h"
#include "exp/sweep.h"

namespace taqos {
namespace {

std::string
cacheDir(const char *name)
{
    // Wipe any fragments a previous run of the same binary left behind:
    // every test here starts from a provably cold cache.
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "cache_test";
    spec.scenario = Scenario::LatencyLoad;
    spec.topologies = {TopologyKind::Dps, TopologyKind::Mecs};
    spec.rates = {0.02, 0.05};
    spec.replicates = 2;
    spec.phases.warmup = 500;
    spec.phases.measure = 1000;
    spec.phases.drain = 500;
    return spec;
}

void
expectCellsEqual(const CellResult &a, const CellResult &b)
{
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (std::size_t i = 0; i < a.metrics.size(); ++i) {
        EXPECT_EQ(a.metrics[i].first, b.metrics[i].first);
        // Bitwise equality, not tolerance: cached cells must reproduce
        // the cold run's doubles exactly or the JSON bytes drift.
        EXPECT_EQ(a.metrics[i].second, b.metrics[i].second)
            << a.metrics[i].first;
    }
}

TEST(CellKey, SensitiveToDynamicsCoordinatesOnly)
{
    CellSpec cell;
    cell.scenario = Scenario::LatencyLoad;
    cell.topology = TopologyKind::Dps;
    cell.rate = 0.05;
    cell.seed = 42;
    const std::uint64_t base = CellCache::cellKey(cell);
    EXPECT_EQ(CellCache::cellKey(cell), base);

    CellSpec c1 = cell;
    c1.rate = 0.06;
    EXPECT_NE(CellCache::cellKey(c1), base);
    CellSpec c2 = cell;
    c2.mode = QosMode::Gsf;
    EXPECT_NE(CellCache::cellKey(c2), base);
    CellSpec c3 = cell;
    c3.seed = 43;
    EXPECT_NE(CellCache::cellKey(c3), base);
    CellSpec c4 = cell;
    c4.replicate = 1;
    EXPECT_NE(CellCache::cellKey(c4), base);
    CellSpec c5 = cell;
    c5.phases.warmup += 1;
    EXPECT_NE(CellCache::cellKey(c5), base);

    // Execution knobs are not part of the key: the sharding contract
    // makes the result bit-identical, so the cache may serve it.
    CellSpec c6 = cell;
    c6.shards = 4;
    EXPECT_EQ(CellCache::cellKey(c6), base);
}

TEST(CellCacheIO, StoreLoadRoundTripsExactly)
{
    const CellCache cache(cacheDir("cellcache_roundtrip"));

    CellSpec cell = tinySpec().expand()[0];
    const CellResult cold = SweepRunner::runCell(cell);

    CellResult loaded;
    EXPECT_FALSE(cache.load(cell, loaded)); // cold cache
    ASSERT_TRUE(cache.store(cell, cold));
    ASSERT_TRUE(cache.load(cell, loaded));
    expectCellsEqual(loaded, cold);
    EXPECT_EQ(loaded.spec.seed, cell.seed);
}

TEST(CellCacheIO, CorruptFragmentIsAMissNotAnError)
{
    const std::string dir = cacheDir("cellcache_corrupt");
    const CellCache cache(dir);

    CellSpec cell = tinySpec().expand()[0];
    ASSERT_TRUE(cache.store(cell, SweepRunner::runCell(cell)));

    const std::string frag =
        dir + "/" + CellCache::fragmentName(CellCache::cellKey(cell));
    {
        // Truncate mid-metrics: the "end" sentinel never arrives.
        std::ifstream is(frag);
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        ASSERT_GT(text.size(), 40u);
        std::ofstream os(frag, std::ios::trunc);
        os << text.substr(0, text.size() / 2);
    }
    CellResult loaded;
    EXPECT_FALSE(cache.load(cell, loaded));

    {
        // A different schema line is an equally quiet miss.
        std::ofstream os(frag, std::ios::trunc);
        os << "taqos-cell/v999\nnonsense\n";
    }
    EXPECT_FALSE(cache.load(cell, loaded));
}

TEST(CellCacheSweep, CachedRerunIsAllHitsAndByteIdentical)
{
    const CellCache cacheStore(cacheDir("cellcache_sweep"));
    CellCache cache = cacheStore;
    const SweepSpec spec = tinySpec();
    const SweepRunner runner(2);

    const SweepResult cold = runner.run(spec);
    ASSERT_FALSE(cold.cells.empty());

    SweepResult first = runner.run(spec, &cache);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.cacheMisses, cold.cells.size());
    EXPECT_EQ(first.toJson(), cold.toJson());

    SweepResult second = runner.run(spec, &cache);
    EXPECT_EQ(second.cacheHits, cold.cells.size());
    EXPECT_EQ(second.cacheMisses, 0u);
    EXPECT_EQ(second.toJson(), cold.toJson());
}

TEST(CellCacheSweep, PartialCacheMergesCachedAndFreshCells)
{
    const CellCache cache(cacheDir("cellcache_partial"));
    const SweepSpec spec = tinySpec();
    const SweepRunner runner(1);

    const SweepResult cold = runner.run(spec);

    // Pre-store every other cell, then sweep against the half-warm
    // cache: the merged record must still match the cold bytes.
    const std::vector<CellSpec> cells = spec.expand();
    std::size_t stored = 0;
    for (std::size_t i = 0; i < cells.size(); i += 2) {
        ASSERT_TRUE(cache.store(cells[i], cold.cells[i]));
        ++stored;
    }
    CellCache mutableCache = cache;
    const SweepResult merged = runner.run(spec, &mutableCache);
    EXPECT_EQ(merged.cacheHits, stored);
    EXPECT_EQ(merged.cacheMisses, cells.size() - stored);
    EXPECT_EQ(merged.toJson(), cold.toJson());
}

TEST(CellCacheSweep, SharedWarmupForkMatchesPerCellColdRuns)
{
    // mixSeeds = false makes every replicate share its seed, so the
    // runner warms each grid point once and forks the replicates from
    // the checkpoint; the result must be bit-identical to running every
    // cell cold from cycle zero.
    SweepSpec spec = tinySpec();
    spec.replicates = 3;
    spec.mixSeeds = false;

    const SweepRunner runner(2);
    const SweepResult forked = runner.run(spec);

    const std::vector<CellSpec> cells = spec.expand();
    ASSERT_EQ(forked.cells.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult cold = SweepRunner::runCell(cells[i]);
        expectCellsEqual(forked.cells[i], cold);
    }
}

} // namespace
} // namespace taqos
