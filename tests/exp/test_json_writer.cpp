#include <gtest/gtest.h>

#include "exp/json_writer.h"

namespace taqos {
namespace {

TEST(JsonWriter, EmptyObject)
{
    JsonWriter w;
    w.beginObject().endObject();
    EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, FlatObject)
{
    JsonWriter w;
    w.beginObject();
    w.field("a", 1);
    w.field("b", 2.5);
    w.field("c", "x");
    w.field("d", true);
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\n  \"a\": 1,\n  \"b\": 2.5,\n  \"c\": \"x\",\n"
              "  \"d\": true\n}");
}

TEST(JsonWriter, NestedContainers)
{
    JsonWriter w;
    w.beginObject();
    w.beginArray("xs");
    w.value(1);
    w.value(2);
    w.endArray();
    w.beginObject("o");
    w.field("k", "v");
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"xs\": [\n    1,\n    2\n  ],\n"
                       "  \"o\": {\n    \"k\": \"v\"\n  }\n}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(JsonWriter, NumberFormatting)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-3.0), "-3");
    EXPECT_EQ(jsonNumber(0.06), "0.06");
    EXPECT_EQ(jsonNumber(1.0 / 0.0), "null");
    EXPECT_EQ(jsonNumber(0.0 / 0.0), "null");
}

TEST(JsonWriter, TopLevelArray)
{
    JsonWriter w;
    w.beginArray();
    w.value("a");
    w.value(std::uint64_t{18446744073709551615ull});
    w.endArray();
    EXPECT_EQ(w.str(), "[\n  \"a\",\n  18446744073709551615\n]");
}

} // namespace
} // namespace taqos
