/// The sweep engine's contracts: grid expansion, deterministic seeding,
/// bit-identical parallel-vs-serial execution, seed aggregation, and
/// equivalence of the engine's cells with hand-built simulator runs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiments.h"
#include "exp/sweep.h"
#include "sim/column_sim.h"
#include "traffic/workloads.h"

namespace taqos {
namespace {

SweepSpec
tinySpec(int replicates = 1)
{
    SweepSpec spec;
    spec.scenario = Scenario::LatencyLoad;
    spec.topologies = {TopologyKind::Dps, TopologyKind::Mecs};
    spec.rates = {0.02, 0.05};
    spec.replicates = replicates;
    spec.phases = RunPhases{500, 1500, 1000};
    return spec;
}

TEST(SweepSpec, ExpansionCoversTheGrid)
{
    const auto cells = tinySpec(3).expand();
    ASSERT_EQ(cells.size(), 2u * 2u * 3u);
    // Documented order: topology-major, rate, then replicate innermost.
    EXPECT_EQ(cells[0].topology, TopologyKind::Dps);
    EXPECT_EQ(cells[0].rate, 0.02);
    EXPECT_EQ(cells[0].replicate, 0);
    EXPECT_EQ(cells[1].replicate, 1);
    EXPECT_EQ(cells[3].rate, 0.05);
    EXPECT_EQ(cells[6].topology, TopologyKind::Mecs);
}

TEST(SweepSpec, DefaultsCoverPaperTopologies)
{
    SweepSpec spec;
    spec.replicates = 1;
    const auto cells = spec.expand();
    EXPECT_EQ(cells.size(), 5u); // five topologies x one rate
}

TEST(SweepSpec, IrrelevantAxesNeverMultiplyTheGrid)
{
    SweepSpec spec;
    spec.scenario = Scenario::Adversarial;
    spec.topologies = {TopologyKind::Dps};
    spec.rates = {0.01, 0.02, 0.03};       // ignored: workload-defined
    spec.patterns = {TrafficPattern::UniformRandom,
                     TrafficPattern::Tornado}; // ignored
    spec.workloads = {1};
    EXPECT_EQ(spec.expand().size(), 1u);
}

TEST(SweepSpec, MixedSeedsAreDistinctAndStable)
{
    const auto cells = tinySpec(2).expand();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        for (std::size_t j = i + 1; j < cells.size(); ++j)
            EXPECT_NE(cells[i].seed, cells[j].seed);
    }
    // Same spec -> same seeds, run to run.
    const auto again = tinySpec(2).expand();
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].seed, again[i].seed);
}

TEST(SweepSpec, UnmixedSeedsUseTheBaseSeedVerbatim)
{
    SweepSpec spec = tinySpec();
    spec.mixSeeds = false;
    spec.baseSeed = 1234;
    for (const auto &cell : spec.expand())
        EXPECT_EQ(cell.seed, 1234u);
}

TEST(SweepRunner, ParallelIsBitIdenticalToSerial)
{
    const SweepSpec spec = tinySpec(2);
    const SweepResult serial = SweepRunner(1).run(spec);
    const SweepResult parallel = SweepRunner(4).run(spec);

    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        const auto &a = serial.cells[i].metrics;
        const auto &b = parallel.cells[i].metrics;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t m = 0; m < a.size(); ++m) {
            EXPECT_EQ(a[m].first, b[m].first);
            // Exact: the same cell computes the same bits regardless of
            // which thread ran it.
            EXPECT_EQ(a[m].second, b[m].second)
                << a[m].first << " in cell " << i;
        }
    }
    EXPECT_EQ(serial.toJson(), parallel.toJson());
}

TEST(SweepRunner, ShardedCellsAreBitIdenticalAndJsonInvariant)
{
    // shards is an execution knob like the thread count: a 4-shard run
    // must serialize to the same bytes as a serial one (the CI smoke
    // `cmp`s records produced this way), which also requires that
    // shards never leak into the JSON or the cell seeds.
    SweepSpec spec = tinySpec(2);
    const SweepResult serial = SweepRunner(1).run(spec);
    spec.shards = 4;
    const SweepResult sharded = SweepRunner(1).run(spec);
    EXPECT_EQ(serial.toJson(), sharded.toJson());
}

TEST(SweepRunner, OversubscribedPoolMatchesToo)
{
    // More threads than cells exercises the worker cap.
    SweepSpec spec = tinySpec();
    spec.topologies = {TopologyKind::Dps};
    spec.rates = {0.03};
    const SweepResult one = SweepRunner(1).run(spec);
    const SweepResult many = SweepRunner(16).run(spec);
    EXPECT_EQ(one.toJson(), many.toJson());
}

TEST(SweepRunner, CellMatchesHandBuiltSimulation)
{
    // The engine's LatencyLoad cell must reproduce a directly-constructed
    // ColumnSim run exactly (same seed, same phases).
    CellSpec cell;
    cell.scenario = Scenario::LatencyLoad;
    cell.topology = TopologyKind::Dps;
    cell.pattern = TrafficPattern::UniformRandom;
    cell.rate = 0.05;
    cell.seed = 0x7a05c0de;
    cell.phases = RunPhases{500, 1500, 1000};
    const CellResult res = SweepRunner::runCell(cell);

    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    TrafficConfig traffic;
    traffic.injectionRate = 0.05;
    ColumnSim sim(col, traffic);
    sim.setMeasureWindow(500, 2000);
    sim.run(3000);

    EXPECT_EQ(res.get("avg_latency"), sim.metrics().latency.mean());
    EXPECT_EQ(res.get("window_flits"),
              static_cast<double>(sim.metrics().windowFlits()));
}

TEST(SweepRunner, AggregationMatchesHandComputedMoments)
{
    SweepSpec spec;
    spec.replicates = 3;
    std::vector<CellResult> cells(3);
    const double xs[] = {10.0, 14.0, 18.0};
    for (int r = 0; r < 3; ++r) {
        cells[static_cast<std::size_t>(r)].spec.replicate = r;
        cells[static_cast<std::size_t>(r)].put("m", xs[r]);
    }
    const auto aggs = aggregateCells(spec, cells);
    ASSERT_EQ(aggs.size(), 1u);
    const RunningStat &rs = aggs[0].get("m");
    EXPECT_EQ(rs.count(), 3u);
    EXPECT_DOUBLE_EQ(rs.mean(), 14.0);
    // Population stddev of {10, 14, 18}: sqrt((16 + 0 + 16) / 3).
    EXPECT_DOUBLE_EQ(rs.stddev(), std::sqrt(32.0 / 3.0));
    EXPECT_DOUBLE_EQ(rs.min(), 10.0);
    EXPECT_DOUBLE_EQ(rs.max(), 18.0);
}

TEST(SweepRunner, ReplicatesProduceSpreadAndAggregates)
{
    SweepSpec spec = tinySpec(2);
    spec.topologies = {TopologyKind::Dps};
    spec.rates = {0.05};
    const SweepResult result = SweepRunner(2).run(spec);
    ASSERT_EQ(result.cells.size(), 2u);
    ASSERT_EQ(result.aggregates.size(), 1u);
    EXPECT_NE(result.cells[0].spec.seed, result.cells[1].spec.seed);
    const RunningStat &lat = result.aggregates[0].get("avg_latency");
    EXPECT_EQ(lat.count(), 2u);
    EXPECT_GT(lat.mean(), 0.0);
    // Different seeds -> (almost surely) different latencies.
    EXPECT_GT(lat.max(), lat.min());
}

TEST(SweepRunner, HotspotScenarioIsFairInParallel)
{
    SweepSpec spec;
    spec.scenario = Scenario::Hotspot;
    spec.topologies = {TopologyKind::Dps, TopologyKind::Mecs};
    spec.rates = {0.05};
    spec.phases = RunPhases{1000, 5000, 0};
    const SweepResult result = SweepRunner(2).run(spec);
    for (const auto &cell : result.cells) {
        const double mean = cell.get("mean_flits");
        EXPECT_GT(mean, 0.0);
        EXPECT_GT(cell.get("min_flits"), 0.9 * mean);
        EXPECT_LT(cell.get("max_flits"), 1.1 * mean);
    }
    EXPECT_EQ(SweepRunner(1).run(spec).toJson(), result.toJson());
}

TEST(SweepRunner, FigureSpecsReproduceLegacyRunners)
{
    // The ported runFig4Latency must equal running its spec by hand.
    const RunPhases fast{500, 1500, 1000};
    const std::vector<double> rates{0.02, 0.05};
    const auto direct = runFig4Latency(TrafficPattern::UniformRandom,
                                       rates, fast);
    const auto viaSpec = latencySeriesFromSweep(SweepRunner(3).run(
        fig4Spec(TrafficPattern::UniformRandom, rates, fast)));
    ASSERT_EQ(direct.size(), viaSpec.size());
    for (std::size_t s = 0; s < direct.size(); ++s) {
        ASSERT_EQ(direct[s].points.size(), viaSpec[s].points.size());
        for (std::size_t p = 0; p < direct[s].points.size(); ++p) {
            EXPECT_EQ(direct[s].points[p].avgLatency,
                      viaSpec[s].points[p].avgLatency);
            EXPECT_EQ(direct[s].points[p].throughput,
                      viaSpec[s].points[p].throughput);
        }
    }
}

TEST(SweepResult, JsonSerializesSchemaAndCells)
{
    SweepSpec spec = tinySpec();
    spec.topologies = {TopologyKind::Dps};
    spec.rates = {0.02};
    const SweepResult result = SweepRunner(1).run(spec);
    const std::string json = result.toJson();
    EXPECT_NE(json.find("\"schema\": \"taqos-sweep/v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"scenario\": \"latency_load\""),
              std::string::npos);
    EXPECT_NE(json.find("\"topology\": \"dps\""), std::string::npos);
    EXPECT_NE(json.find("\"avg_latency\""), std::string::npos);
    EXPECT_NE(json.find("\"aggregates\""), std::string::npos);
}

} // namespace
} // namespace taqos
