/// Properties of the Figure-3 geometries: orderings the paper reports.
#include <gtest/gtest.h>

#include <map>

#include "power/tech.h"
#include "topo/geometry.h"

namespace taqos {
namespace {

class GeometryFixture : public ::testing::Test {
  protected:
    void SetUp() override
    {
        for (auto kind : kAllTopologies) {
            ColumnConfig col;
            col.topology = kind;
            geom_[kind] = representativeGeometry(kind, col);
            area_[kind] = computeRouterArea(geom_[kind], tech32nm());
        }
    }

    std::map<TopologyKind, RouterGeometry> geom_;
    std::map<TopologyKind, AreaBreakdown> area_;
};

TEST_F(GeometryFixture, RowBuffersIdenticalAcrossTopologies)
{
    // Figure 3's dotted line: row-input capacity is topology-independent.
    const double ref = area_[TopologyKind::MeshX1].rowBuffersMm2;
    for (auto kind : kAllTopologies)
        EXPECT_DOUBLE_EQ(area_[kind].rowBuffersMm2, ref);
}

TEST_F(GeometryFixture, MeshX1MostCompact)
{
    for (auto kind : kAllTopologies) {
        if (kind == TopologyKind::MeshX1)
            continue;
        EXPECT_LT(area_[TopologyKind::MeshX1].totalMm2(),
                  area_[kind].totalMm2())
            << topologyName(kind);
    }
}

TEST_F(GeometryFixture, MeshX4LargestViaCrossbar)
{
    for (auto kind : kAllTopologies) {
        if (kind == TopologyKind::MeshX4)
            continue;
        EXPECT_GT(area_[TopologyKind::MeshX4].totalMm2(),
                  area_[kind].totalMm2());
        EXPECT_GT(area_[TopologyKind::MeshX4].xbarMm2,
                  area_[kind].xbarMm2);
    }
}

TEST_F(GeometryFixture, MecsHasLargestBuffersButCompactSwitch)
{
    for (auto kind : kAllTopologies) {
        if (kind == TopologyKind::Mecs)
            continue;
        EXPECT_GT(area_[TopologyKind::Mecs].columnBuffersMm2,
                  area_[kind].columnBuffersMm2);
    }
    EXPECT_LE(area_[TopologyKind::Mecs].xbarMm2,
              area_[TopologyKind::MeshX2].xbarMm2);
}

TEST_F(GeometryFixture, DpsComparableToMecsSmallerBuffersBiggerXbar)
{
    const auto &dps = area_[TopologyKind::Dps];
    const auto &mecs = area_[TopologyKind::Mecs];
    EXPECT_LT(dps.columnBuffersMm2, mecs.columnBuffersMm2);
    EXPECT_GT(dps.xbarMm2, mecs.xbarMm2);
    EXPECT_NEAR(dps.totalMm2() / mecs.totalMm2(), 1.0, 0.25);
}

TEST_F(GeometryFixture, MeshX2SimilarFootprintToMecsDps)
{
    const double x2 = area_[TopologyKind::MeshX2].totalMm2();
    EXPECT_NEAR(x2 / area_[TopologyKind::Mecs].totalMm2(), 1.0, 0.35);
    EXPECT_NEAR(x2 / area_[TopologyKind::Dps].totalMm2(), 1.0, 0.35);
}

TEST_F(GeometryFixture, OnlyMecsPaysInputFeed)
{
    EXPECT_GT(geom_[TopologyKind::Mecs].xbarInputFeedUm, 0.0);
    EXPECT_DOUBLE_EQ(geom_[TopologyKind::MeshX1].xbarInputFeedUm, 0.0);
    EXPECT_DOUBLE_EQ(geom_[TopologyKind::Dps].xbarInputFeedUm, 0.0);
}

TEST_F(GeometryFixture, CrossbarPortCounts)
{
    // Sec. 5.1: 5x5 for mesh x1, 11x11 for mesh x4; MECS asymmetric 5x5;
    // DPS has one column output per subnet.
    EXPECT_EQ(geom_[TopologyKind::MeshX1].xbarInputs, 5);
    EXPECT_EQ(geom_[TopologyKind::MeshX1].xbarOutputs, 5);
    EXPECT_EQ(geom_[TopologyKind::MeshX4].xbarInputs, 11);
    EXPECT_EQ(geom_[TopologyKind::MeshX4].xbarOutputs, 11);
    EXPECT_EQ(geom_[TopologyKind::Mecs].xbarInputs, 5);
    EXPECT_EQ(geom_[TopologyKind::Dps].xbarOutputs, 10);
}

TEST(GeometryOptions, QosOffRemovesFlowStateAndReservedVc)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    GeometryOptions on, off;
    off.qosEnabled = false;
    const RouterGeometry gOn = representativeGeometry(col.topology, col, on);
    const RouterGeometry gOff =
        representativeGeometry(col.topology, col, off);
    EXPECT_EQ(gOff.flowTableOutputs, 0);
    EXPECT_GT(gOn.flowTableOutputs, 0);
    EXPECT_EQ(gOff.columnBuffers[0].vcsPerPort,
              gOn.columnBuffers[0].vcsPerPort - 1);
}

TEST(Geometry, DpsEndNodesSmaller)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    const RouterGeometry end = columnRouterGeometry(TopologyKind::Dps, col, 0);
    const RouterGeometry mid = columnRouterGeometry(TopologyKind::Dps, col, 4);
    EXPECT_LT(totalColumnBufferFlits(end), totalColumnBufferFlits(mid));
}

} // namespace
} // namespace taqos
