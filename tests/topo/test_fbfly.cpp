/// The flattened-butterfly extension: structural and behavioural checks.

#include <cstdlib>
#include <set>
#include <gtest/gtest.h>

#include "sim/column_sim.h"
#include "topo/geometry.h"

namespace taqos {
namespace {

ColumnConfig
fbColumn()
{
    ColumnConfig col;
    col.topology = TopologyKind::FlatButterfly;
    return col;
}

TEST(FlatButterfly, ParseAndName)
{
    EXPECT_EQ(parseTopology("fbfly"), TopologyKind::FlatButterfly);
    EXPECT_STREQ(topologyName(TopologyKind::FlatButterfly), "fbfly");
}

TEST(FlatButterfly, DedicatedChannelPerPair)
{
    auto net = ColumnNetwork::build(fbColumn());
    NetPacket pkt;
    for (NodeId n = 0; n < 8; ++n) {
        // 7 network outputs + terminal.
        EXPECT_EQ(net->router(n)->outputs().size(), 8u);
        for (NodeId d = 0; d < 8; ++d) {
            if (n == d)
                continue;
            pkt.dst = d;
            const RouteEntry e = net->router(n)->routeFor(pkt);
            const OutputPort &out =
                *net->router(n)->outputs()[static_cast<std::size_t>(
                    e.outPort)];
            ASSERT_EQ(out.drops.size(), 1u);
            EXPECT_EQ(out.drops[0].down->node, d);
            EXPECT_EQ(out.drops[0].wireDelay, std::abs(n - d));
        }
    }
}

TEST(FlatButterfly, EveryInputHasOwnXbarPort)
{
    auto net = ColumnNetwork::build(fbColumn());
    std::set<XbarGroup *> groups;
    int netPorts = 0;
    for (const auto &in : net->router(4)->inputs()) {
        if (in->kind != InputPort::Kind::Network)
            continue;
        ++netPorts;
        EXPECT_NE(in->group, nullptr);
        EXPECT_TRUE(groups.insert(in->group).second)
            << "inputs must not share switch ports";
    }
    EXPECT_EQ(netPorts, 7);
}

TEST(FlatButterfly, SingleHopDelivery)
{
    TrafficConfig t;
    t.injectionRate = 0.0;
    ColumnSim sim(fbColumn(), t);
    NetPacket *pkt = sim.pool().alloc();
    pkt->flow = 0;
    pkt->src = 0;
    pkt->dst = 7;
    pkt->sizeFlits = 1;
    pkt->genCycle = pkt->queuedCycle = 0;
    sim.network().injector(0).enqueue(pkt);
    sim.run(60);
    EXPECT_EQ(pkt->state, PacketState::Delivered);
    // One network hop of span 7 + ejection.
    EXPECT_LT(pkt->deliverCycle, 25u);
    sim.checkInvariants();
}

TEST(FlatButterfly, ResistsTornado)
{
    ColumnConfig col = fbColumn();
    TrafficConfig t;
    t.pattern = TrafficPattern::Tornado;
    t.injectionRate = 0.10;
    ColumnSim sim(col, t);
    sim.setMeasureWindow(4000, 20000);
    sim.run(22000);
    EXPECT_NEAR(sim.metrics().throughputFlitsPerCycle(16000) / 64.0, 0.10,
                0.01);
}

TEST(FlatButterfly, HotspotFairness)
{
    ColumnConfig col = fbColumn();
    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.injectionRate = 0.05;
    ColumnSim sim(col, t);
    sim.setMeasureWindow(10000, 60000);
    sim.run(60000);
    RunningStat rs;
    for (auto f : sim.metrics().flowFlits)
        rs.push(static_cast<double>(f));
    EXPECT_LT(rs.stddev() / rs.mean(), 0.015);
}

TEST(FlatButterfly, LargestCrossbarOfTheRichTopologies)
{
    ColumnConfig col = fbColumn();
    const AreaBreakdown fb = computeRouterArea(
        representativeGeometry(TopologyKind::FlatButterfly, col),
        tech32nm());
    col.topology = TopologyKind::Mecs;
    const AreaBreakdown mecs = computeRouterArea(
        representativeGeometry(TopologyKind::Mecs, col), tech32nm());
    col.topology = TopologyKind::Dps;
    const AreaBreakdown dps = computeRouterArea(
        representativeGeometry(TopologyKind::Dps, col), tech32nm());
    EXPECT_GT(fb.xbarMm2, mecs.xbarMm2);
    EXPECT_GT(fb.xbarMm2, dps.xbarMm2);
}

} // namespace
} // namespace taqos
