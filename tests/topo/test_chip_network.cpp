/// Structure of the whole-chip fabric: node-id mapping, the
/// compute-node/row-injector correspondence the OS flow registers rely
/// on, row wiring into the handoff buffers, and column intactness.
#include <gtest/gtest.h>

#include <set>

#include "topo/chip_network.h"

namespace taqos {
namespace {

ChipNetConfig
defaultChip(TopologyKind kind = TopologyKind::Dps)
{
    ChipNetConfig cc;
    cc.column.topology = kind;
    cc.column.mode = QosMode::Pvc;
    return cc;
}

TEST(ChipNetwork, GridCoversAllNodesExactlyOnce)
{
    auto net = ChipNetwork::build(defaultChip());
    const ChipConfig &chip = net->chipCfg().chip;
    EXPECT_EQ(net->numNodes(), chip.numNodes());

    std::set<NodeId> seen;
    for (int y = 0; y < chip.nodesY(); ++y) {
        for (int x = 0; x < chip.nodesX(); ++x) {
            const NodeId id = net->nodeIdAt(x, y);
            EXPECT_TRUE(seen.insert(id).second) << x << "," << y;
            EXPECT_GE(id, 0);
            EXPECT_LT(id, net->numNodes());
            EXPECT_NE(net->router(id), nullptr);
        }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), chip.numNodes());
}

TEST(ChipNetwork, ColumnNodesKeepColumnIds)
{
    auto net = ChipNetwork::build(defaultChip());
    const int c = net->chipCfg().columnX();
    for (int y = 0; y < net->chipCfg().chip.nodesY(); ++y)
        EXPECT_EQ(net->nodeIdAt(c, y), y);
}

TEST(ChipNetwork, InjectorIndexMatchesOsFlowRegisterMapping)
{
    auto net = ChipNetwork::build(defaultChip());
    const ChipConfig &chip = net->chipCfg().chip;
    const int c = net->chipCfg().columnX();

    // os.cpp walks x in order, skipping the column, assigning 1,2,3,...
    int expected = 1;
    for (int x = 0; x < chip.nodesX(); ++x) {
        if (x == c)
            continue;
        EXPECT_EQ(net->injectorIndexOf(x), expected);
        EXPECT_EQ(net->computeXOf(expected), x);
        ++expected;
    }
}

TEST(ChipNetwork, EveryRowHandsOffIntoTheColumn)
{
    auto net = ChipNetwork::build(defaultChip());
    const ChipConfig &chip = net->chipCfg().chip;
    const int c = net->chipCfg().columnX();
    const int sides = (c > 0 ? 1 : 0) + (c < chip.nodesX() - 1 ? 1 : 0);
    EXPECT_EQ(static_cast<int>(net->auxPorts().size()),
              sides * chip.nodesY());
    for (const InputPort *p : net->auxPorts()) {
        EXPECT_FALSE(p->vcs.empty());
        EXPECT_LT(p->node, chip.nodesY()); // anchored at a column node
    }
}

TEST(ChipNetwork, ComputeRoutersRouteTowardTheirColumnNode)
{
    auto net = ChipNetwork::build(defaultChip());
    const ChipConfig &chip = net->chipCfg().chip;
    const int c = net->chipCfg().columnX();
    for (int y = 0; y < chip.nodesY(); ++y) {
        for (int x = 0; x < chip.nodesX(); ++x) {
            if (x == c)
                continue;
            NetPacket pkt;
            pkt.dst = net->columnNodeId(y);
            const RouteEntry e =
                net->router(net->nodeIdAt(x, y))->routeFor(pkt);
            EXPECT_GE(e.outPort, 0);
        }
    }
}

TEST(ChipNetwork, SourceQueuesCoverEveryRowInjectorFlow)
{
    auto net = ChipNetwork::build(defaultChip());
    const ColumnConfig &col = net->cfg();
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        InjectorQueue &q = net->sourceQueue(f);
        if (f % col.injectorsPerNode == 0) {
            // Terminal flows originate at the column entrance itself.
            EXPECT_EQ(&q, &net->injector(f));
        } else {
            EXPECT_NE(&q, &net->injector(f));
            EXPECT_EQ(q.flow, f);
            EXPECT_GE(q.node, net->chipCfg().chip.nodesY());
        }
    }
}

} // namespace
} // namespace taqos
