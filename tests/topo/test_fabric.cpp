/// FabricSpec finalization: catchment partitioning, the chip-major
/// node/flow id spaces, remote-slot mapping, per-block policy cycling
/// and the structural counts of the built multi-chip network.
#include <gtest/gtest.h>

#include "topo/fabric.h"

namespace taqos {
namespace {

FabricSpec
wideSpec(int chips)
{
    // 16x16-node chips with two shared columns: the asymmetric-catchment
    // geometry (8 vs 6 compute columns).
    FabricSpec spec;
    spec.chips = chips;
    spec.chip.tilesX = 32;
    spec.chip.tilesY = 32;
    spec.chip.sharedColumns = {4, 12};
    return spec;
}

TEST(FabricGeometry, DefaultChipHasOneFullCatchment)
{
    auto net = FabricNetwork::build(FabricSpec{});
    EXPECT_EQ(net->chips(), 1);
    EXPECT_EQ(net->blocks(), 1);
    EXPECT_EQ(net->gridHeight(), 8);
    EXPECT_EQ(net->computePerRow(), 7);
    const std::vector<int> want = {0, 1, 2, 3, 5, 6, 7};
    EXPECT_EQ(net->catchment(0), want);
    EXPECT_EQ(net->slotsPerNode(), 8); // terminal + 7, no remote slots
    EXPECT_EQ(net->remoteSlots(), 0);
    EXPECT_EQ(net->totalFlows(), 64);
    EXPECT_EQ(net->numNodes(), 64);
}

TEST(FabricGeometry, TwoColumnsSplitTheGridByNearestColumn)
{
    auto net = FabricNetwork::build(wideSpec(1));
    ASSERT_EQ(net->blocksPerChip(), 2);
    const std::vector<int> cat0 = {0, 1, 2, 3, 5, 6, 7, 8};
    const std::vector<int> cat1 = {9, 10, 11, 13, 14, 15};
    EXPECT_EQ(net->catchment(0), cat0);
    EXPECT_EQ(net->catchment(1), cat1);
    // Slots size to the LARGEST catchment; block 1's trailing slots pad.
    EXPECT_EQ(net->slotsPerNode(), 9);
    EXPECT_TRUE(net->slotUsable(1, 6));
    EXPECT_FALSE(net->slotUsable(1, 7));
    EXPECT_FALSE(net->slotUsable(1, 8));
    EXPECT_TRUE(net->slotUsable(0, 8));
    for (int x : cat0)
        EXPECT_EQ(net->blockOfX(x), 0) << "x=" << x;
    for (int x : cat1)
        EXPECT_EQ(net->blockOfX(x), 1) << "x=" << x;
}

TEST(FabricGeometry, MultiChipIdSpacesAreChipMajor)
{
    auto net = FabricNetwork::build(wideSpec(4));
    EXPECT_EQ(net->numNodes(), 4 * 256);
    EXPECT_GE(net->numNodes(), 1024); // the kilo-node acceptance floor
    EXPECT_EQ(net->blocks(), 8);
    // 1 terminal + max catchment 8 + 3 remote chips.
    EXPECT_EQ(net->slotsPerNode(), 12);
    EXPECT_EQ(net->totalFlows(), 8 * 16 * 12);

    // Block nodes come first within a chip, then compute nodes row-major.
    for (int c = 0; c < 4; ++c) {
        for (int j = 0; j < 2; ++j) {
            const int g = c * 2 + j;
            EXPECT_EQ(net->blockBase(g), c * 256 + j * 16);
            for (int y = 0; y < 16; ++y) {
                const NodeId n = net->blockNodeId(c, j, y);
                EXPECT_TRUE(net->isBlockNode(n));
                EXPECT_EQ(net->chipOfNode(n), c);
                EXPECT_EQ(net->blockOfNode(n), g);
            }
        }
        EXPECT_FALSE(net->isBlockNode(net->computeNodeId(c, 0, 0)));
        EXPECT_EQ(net->chipOfNode(net->computeNodeId(c, 15, 15)), c);
    }
    // Compute ids are dense after the block nodes, ascending by rank.
    EXPECT_EQ(net->computeNodeId(0, 0, 0), 32);
    EXPECT_EQ(net->computeNodeId(0, 5, 0), 36); // rank skips shared col 4
    EXPECT_EQ(net->computeNodeId(1, 0, 0), 256 + 32);
}

TEST(FabricGeometry, FlowSlotsRoundTrip)
{
    auto net = FabricNetwork::build(wideSpec(4));
    const int fpb = net->flowsPerBlock();
    const int slots = net->slotsPerNode();
    for (FlowId f : {0, 17, fpb - 1, fpb, 3 * fpb + 5 * slots + 2,
                     net->totalFlows() - 1}) {
        const int g = net->blockOfFlow(f);
        const int y = net->rowOfFlow(f);
        const int k = net->slotOfFlow(f);
        EXPECT_EQ(f, g * fpb + y * slots + k) << "f=" << f;
    }
}

TEST(FabricGeometry, RemoteSlotMapsEveryOrderedChipPairOnce)
{
    auto net = FabricNetwork::build(wideSpec(4));
    const int first = 1 + 8; // terminal + max catchment
    for (int dest = 0; dest < 4; ++dest) {
        std::vector<bool> seen(4, false);
        for (int k = first; k < net->slotsPerNode(); ++k) {
            const int src = net->remoteSourceChip(dest, k);
            EXPECT_NE(src, dest);
            EXPECT_FALSE(seen[static_cast<std::size_t>(src)]);
            seen[static_cast<std::size_t>(src)] = true;
        }
    }
    // The wiring inverse: source chip c originating toward dest chip cd
    // computes slot k; remoteSourceChip(cd, k) must give c back.
    for (int c = 0; c < 4; ++c) {
        for (int cd = 0; cd < 4; ++cd) {
            if (cd == c)
                continue;
            const int k = first + (c - cd - 1 + 4) % 4;
            EXPECT_EQ(net->remoteSourceChip(cd, k), c)
                << "c=" << c << " cd=" << cd;
        }
    }
}

TEST(FabricBuild, StructuralCountsMatchTheSpec)
{
    auto net = FabricNetwork::build(wideSpec(2));
    EXPECT_EQ(net->numNodes(), 512);
    EXPECT_EQ(static_cast<int>(net->injectors().size()),
              net->totalFlows());
    // Two handoffs per (chip, block, row): each catchment has compute
    // nodes on both sides of its column.
    EXPECT_EQ(net->auxPorts().size(),
              static_cast<std::size_t>(2 * 2 * 16 * 2));
    // Every injector the column wiring touched got its flow id.
    for (FlowId f = 0; f < net->totalFlows(); ++f)
        EXPECT_EQ(net->injector(f).flow, f);
    // Row queues exist exactly for the usable non-terminal slots.
    for (FlowId f = 0; f < net->totalFlows(); ++f) {
        const int j = net->blockOfFlow(f) % net->blocksPerChip();
        const int k = net->slotOfFlow(f);
        const bool expectQueue = k != 0 && net->slotUsable(j, k);
        EXPECT_EQ(net->rowQueues()[static_cast<std::size_t>(f)].flow,
                  expectQueue ? f : kInvalidFlow)
            << "flow " << f;
    }
}

TEST(FabricBuild, PerBlockModesCycleAndKeepRouterLocalPolicies)
{
    FabricSpec spec = wideSpec(2);
    spec.column.mode = QosMode::Pvc;
    spec.columnModes = {QosMode::Pvc, QosMode::PerFlowQueue};
    auto net = FabricNetwork::build(spec);
    for (int g = 0; g < net->blocks(); ++g) {
        EXPECT_EQ(net->blockMode(g),
                  g % 2 == 0 ? QosMode::Pvc : QosMode::PerFlowQueue);
        EXPECT_EQ(net->blockCfg(g).mode, net->blockMode(g));
    }
}

TEST(FabricBuild, FrameLenScalesWithTheBlockCount)
{
    FabricSpec spec = wideSpec(2); // 4 blocks
    spec.column.pvc.frameLen = 1000;
    auto scaled = FabricNetwork::build(spec);
    EXPECT_EQ(scaled->pvcParams().frameLen, 4000u);
    spec.scaleFrameLen = false;
    auto flat = FabricNetwork::build(spec);
    EXPECT_EQ(flat->pvcParams().frameLen, 1000u);
}

TEST(FabricLinks, TopologyNamesRoundTrip)
{
    for (LinkTopology k : {LinkTopology::PointToPoint, LinkTopology::Ring})
        EXPECT_EQ(parseLinkTopology(linkTopologyName(k)), k);
    EXPECT_EQ(parseLinkTopology("point-to-point"),
              LinkTopology::PointToPoint);
    EXPECT_FALSE(parseLinkTopology("torus").has_value());
}

} // namespace
} // namespace taqos
