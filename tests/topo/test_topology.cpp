#include <gtest/gtest.h>

#include "topo/topology.h"

namespace taqos {
namespace {

TEST(Topology, NamesRoundTrip)
{
    for (auto kind : kAllTopologies) {
        const auto parsed = parseTopology(topologyName(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
}

TEST(Topology, ParseAliasesAndCase)
{
    EXPECT_EQ(parseTopology("MECS"), TopologyKind::Mecs);
    EXPECT_EQ(parseTopology(" dps "), TopologyKind::Dps);
    EXPECT_EQ(parseTopology("mesh"), TopologyKind::MeshX1);
    EXPECT_FALSE(parseTopology("torus").has_value());
}

TEST(Topology, Table1VcProvisioning)
{
    EXPECT_EQ(defaultVcsPerPort(TopologyKind::MeshX1), 6);
    EXPECT_EQ(defaultVcsPerPort(TopologyKind::MeshX2), 6);
    EXPECT_EQ(defaultVcsPerPort(TopologyKind::MeshX4), 6);
    EXPECT_EQ(defaultVcsPerPort(TopologyKind::Mecs), 14);
    EXPECT_EQ(defaultVcsPerPort(TopologyKind::Dps), 5);
}

TEST(Topology, Table1Pipelines)
{
    EXPECT_EQ(pipelineDepth(TopologyKind::MeshX1), 2);
    EXPECT_EQ(pipelineDepth(TopologyKind::Dps), 2);
    EXPECT_EQ(pipelineDepth(TopologyKind::Mecs), 3);
}

TEST(Topology, Replication)
{
    EXPECT_EQ(replicationOf(TopologyKind::MeshX1), 1);
    EXPECT_EQ(replicationOf(TopologyKind::MeshX2), 2);
    EXPECT_EQ(replicationOf(TopologyKind::MeshX4), 4);
    EXPECT_EQ(replicationOf(TopologyKind::Mecs), 1);
    EXPECT_EQ(replicationOf(TopologyKind::Dps), 1);
}

TEST(ColumnConfig, FlowIndexing)
{
    ColumnConfig col;
    EXPECT_EQ(col.numFlows(), 64);
    EXPECT_EQ(col.flowOf(0, 0), 0);
    EXPECT_EQ(col.flowOf(3, 5), 29);
    EXPECT_EQ(col.nodeOfFlow(29), 3);
    EXPECT_EQ(col.nodeOfFlow(63), 7);
}

TEST(ColumnConfig, CanonicalizeSyncsFlowCount)
{
    ColumnConfig col;
    col.numNodes = 4;
    col.injectorsPerNode = 2;
    col.canonicalize();
    EXPECT_EQ(col.pvc.numFlows, 8);
}

TEST(ColumnConfig, EffectiveVcsOverride)
{
    ColumnConfig col;
    col.topology = TopologyKind::Mecs;
    EXPECT_EQ(col.effectiveVcs(), 14);
    col.vcsPerPort = 9;
    EXPECT_EQ(col.effectiveVcs(), 9);
}

} // namespace
} // namespace taqos
