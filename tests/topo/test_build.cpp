/// Structural checks of the wired column for every topology: port counts,
/// VC provisioning, route validity, crossbar-port sharing, pipeline depths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "topo/column_network.h"

namespace taqos {
namespace {

class BuildTest : public ::testing::TestWithParam<TopologyKind> {
  protected:
    std::unique_ptr<ColumnNetwork> build(QosMode mode = QosMode::Pvc)
    {
        ColumnConfig col;
        col.topology = GetParam();
        col.mode = mode;
        return ColumnNetwork::build(col);
    }
};

TEST_P(BuildTest, EveryDestinationRoutable)
{
    auto net = build();
    NetPacket pkt;
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        for (NodeId d = 0; d < net->numNodes(); ++d) {
            pkt.dst = d;
            pkt.id = 3; // exercise parallel-channel spreading
            const RouteEntry e = net->router(n)->routeFor(pkt);
            ASSERT_GE(e.outPort, 0);
            ASSERT_LT(e.outPort,
                      static_cast<int>(net->router(n)->outputs().size()));
            const OutputPort &out =
                *net->router(n)->outputs()[static_cast<std::size_t>(
                    e.outPort)];
            ASSERT_LT(e.dropIdx, static_cast<int>(out.drops.size()));
        }
    }
}

TEST_P(BuildTest, SelfRouteIsTerminal)
{
    auto net = build();
    NetPacket pkt;
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        pkt.dst = n;
        const RouteEntry e = net->router(n)->routeFor(pkt);
        EXPECT_EQ(e.outPort, net->termOutIdx(n));
        const OutputPort &out =
            *net->router(n)->outputs()[static_cast<std::size_t>(e.outPort)];
        EXPECT_EQ(out.drops[0].down, net->termPort(n));
    }
}

TEST_P(BuildTest, InjectionPortsCoverAllFlows)
{
    auto net = build();
    std::vector<int> seen(static_cast<std::size_t>(net->numFlows()), 0);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        for (const auto &in : net->router(n)->inputs()) {
            if (in->kind != InputPort::Kind::Injection)
                continue;
            EXPECT_NE(in->group, nullptr);
            for (const auto *inj : in->injectors) {
                EXPECT_EQ(inj->node, n);
                ++seen[static_cast<std::size_t>(inj->flow)];
            }
        }
    }
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

TEST_P(BuildTest, VcCountsMatchTable1)
{
    auto net = build();
    const int expect = defaultVcsPerPort(GetParam());
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        for (const auto &in : net->router(n)->inputs()) {
            if (in->kind != InputPort::Kind::Network)
                continue;
            EXPECT_EQ(static_cast<int>(in->vcs.size()), expect)
                << in->name;
        }
        EXPECT_EQ(static_cast<int>(net->termPort(n)->vcs.size()), 2);
    }
}

TEST_P(BuildTest, ReservedVcOnlyUnderPvc)
{
    for (auto mode : {QosMode::Pvc, QosMode::PerFlowQueue, QosMode::NoQos}) {
        auto net = build(mode);
        for (const auto &in : net->router(3)->inputs()) {
            if (in->kind != InputPort::Kind::Network)
                continue;
            if (mode == QosMode::Pvc)
                EXPECT_EQ(in->reservedVc, 0) << in->name;
            else
                EXPECT_EQ(in->reservedVc, -1) << in->name;
            EXPECT_EQ(in->unboundedVcs, mode == QosMode::PerFlowQueue);
        }
    }
}

TEST_P(BuildTest, PipelineDepthsMatchTable1)
{
    auto net = build();
    const int depth = pipelineDepth(GetParam());
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        for (const auto &in : net->router(n)->inputs()) {
            if (in->kind == InputPort::Kind::Injection) {
                EXPECT_EQ(in->pipelineDelay, depth) << in->name;
            } else if (in->usesCarriedPrio) {
                // DPS intermediate hop: single-cycle traversal.
                EXPECT_EQ(in->pipelineDelay, 1) << in->name;
            }
        }
    }
}

TEST_P(BuildTest, DropsPointBackToThisColumn)
{
    auto net = build();
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        for (const auto &out : net->router(n)->outputs()) {
            ASSERT_FALSE(out->drops.empty()) << out->name;
            EXPECT_GE(out->tableIdx, 0) << out->name;
            for (const auto &drop : out->drops) {
                ASSERT_NE(drop.down, nullptr);
                EXPECT_GE(drop.wireDelay, 0);
                EXPECT_GT(drop.meshHops, 0.0);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, BuildTest,
                         ::testing::ValuesIn(kAllTopologies),
                         [](const auto &info) {
                             return std::string(topologyName(info.param));
                         });

TEST(BuildMesh, ParallelChannelsShareDirectionTable)
{
    ColumnConfig col;
    col.topology = TopologyKind::MeshX4;
    auto net = ColumnNetwork::build(col);
    Router *r = net->router(3); // interior node: north + south + term
    std::vector<int> tables;
    for (const auto &out : r->outputs())
        tables.push_back(out->tableIdx);
    // 4 north + 4 south + terminal = 9 outputs but only 3 logical tables.
    ASSERT_EQ(tables.size(), 9u);
    EXPECT_EQ(tables[0], tables[1]);
    EXPECT_EQ(tables[0], tables[3]);
    EXPECT_EQ(tables[4], tables[7]);
    EXPECT_NE(tables[0], tables[4]);
    EXPECT_NE(tables[8], tables[0]);
}

TEST(BuildMesh, ParallelSpreadUsesAllChannels)
{
    ColumnConfig col;
    col.topology = TopologyKind::MeshX4;
    auto net = ColumnNetwork::build(col);
    NetPacket pkt;
    pkt.dst = 0;
    std::set<int> ports;
    for (PacketId id = 0; id < 16; ++id) {
        pkt.id = id;
        ports.insert(net->router(5)->routeFor(pkt).outPort);
    }
    EXPECT_EQ(ports.size(), 4u);
}

TEST(BuildMecs, SingleNetworkHopToEveryDestination)
{
    ColumnConfig col;
    col.topology = TopologyKind::Mecs;
    auto net = ColumnNetwork::build(col);
    NetPacket pkt;
    for (NodeId n = 0; n < 8; ++n) {
        for (NodeId d = 0; d < 8; ++d) {
            if (n == d)
                continue;
            pkt.dst = d;
            const RouteEntry e = net->router(n)->routeFor(pkt);
            const OutputPort &out =
                *net->router(n)->outputs()[static_cast<std::size_t>(
                    e.outPort)];
            const auto &drop =
                out.drops[static_cast<std::size_t>(e.dropIdx)];
            // The drop lands at the destination router directly, with
            // distance-proportional wire delay and mesh-hop weight.
            EXPECT_EQ(drop.down->node, d);
            EXPECT_EQ(drop.wireDelay, std::abs(n - d));
            EXPECT_DOUBLE_EQ(drop.meshHops, std::abs(n - d));
        }
    }
}

TEST(BuildMecs, SameDirectionInputsShareXbarPort)
{
    ColumnConfig col;
    col.topology = TopologyKind::Mecs;
    auto net = ColumnNetwork::build(col);
    Router *r = net->router(4);
    std::map<XbarGroup *, int> groupSizes;
    for (const auto &in : r->inputs()) {
        if (in->kind == InputPort::Kind::Network)
            ++groupSizes[in->group];
    }
    // 4 inputs from the north side share one group, 3 from the south the
    // other.
    ASSERT_EQ(groupSizes.size(), 2u);
    std::vector<int> sizes;
    for (auto &[g, n] : groupSizes)
        sizes.push_back(n);
    std::sort(sizes.begin(), sizes.end());
    EXPECT_EQ(sizes[0], 3);
    EXPECT_EQ(sizes[1], 4);
}

TEST(BuildDps, IntermediateHopsArePassThrough)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    auto net = ColumnNetwork::build(col);
    // Node 3 lies on the chains of subnets 0,1,2 (from the south side)
    // and 4,5,6,7 (from the north side): 7 pass-through ports.
    int passPorts = 0;
    for (const auto &in : net->router(3)->inputs()) {
        if (!in->usesCarriedPrio)
            continue;
        ++passPorts;
        EXPECT_EQ(in->group, nullptr) << "pass hop must bypass the crossbar";
        EXPECT_EQ(in->pipelineDelay, 1);
    }
    EXPECT_EQ(passPorts, 7);
    // End nodes have fewer: node 0 passes nothing northward.
    int passAt0 = 0;
    for (const auto &in : net->router(0)->inputs())
        passAt0 += in->usesCarriedPrio;
    EXPECT_EQ(passAt0, 0);
}

TEST(BuildDps, SubnetChainReachesDestination)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    auto net = ColumnNetwork::build(col);
    // Follow subnet 0 from node 7: each hop must step one node closer.
    NetPacket pkt;
    pkt.dst = 0;
    NodeId cur = 7;
    int steps = 0;
    while (cur != 0 && steps < 16) {
        const RouteEntry e = net->router(cur)->routeFor(pkt);
        const OutputPort &out =
            *net->router(cur)->outputs()[static_cast<std::size_t>(
                e.outPort)];
        const NodeId next = out.drops[0].down->node;
        EXPECT_EQ(next, cur - 1);
        cur = next;
        ++steps;
    }
    EXPECT_EQ(cur, 0);
    EXPECT_EQ(steps, 7);
}

TEST(BuildDps, PerSubnetFlowTables)
{
    ColumnConfig col;
    col.topology = TopologyKind::Dps;
    auto net = ColumnNetwork::build(col);
    std::set<int> tables;
    for (const auto &out : net->router(3)->outputs())
        tables.insert(out->tableIdx);
    // 7 subnet outputs + terminal, each with its own table (Sec. 3.2's
    // flow-state scale-up).
    EXPECT_EQ(tables.size(), net->router(3)->outputs().size());
}

TEST(Build, SmallColumns)
{
    for (auto kind : kAllTopologies) {
        ColumnConfig col;
        col.topology = kind;
        col.numNodes = 2;
        auto net = ColumnNetwork::build(col);
        NetPacket pkt;
        pkt.dst = 1;
        EXPECT_GE(net->router(0)->routeFor(pkt).outPort, 0);
    }
}

} // namespace
} // namespace taqos
