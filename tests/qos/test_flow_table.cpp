#include <gtest/gtest.h>

#include "qos/flow_table.h"

namespace taqos {
namespace {

TEST(FlowTable, DisabledByDefault)
{
    FlowTable t;
    EXPECT_FALSE(t.enabled());
}

TEST(FlowTable, ChargesPerOutputIndependently)
{
    PvcParams p;
    p.numFlows = 4;
    FlowTable t(p, 3);
    t.charge(0, 1, 4);
    t.charge(2, 1, 2);
    EXPECT_EQ(t.countOf(0, 1), 4u);
    EXPECT_EQ(t.countOf(1, 1), 0u);
    EXPECT_EQ(t.countOf(2, 1), 2u);
}

TEST(FlowTable, PriorityScalesInverselyWithWeight)
{
    PvcParams p;
    p.numFlows = 2;
    p.weights = {1, 4}; // flow 1 provisioned 4x the service
    FlowTable t(p, 1);
    t.charge(0, 0, 8);
    t.charge(0, 1, 8);
    // Equal consumption: the heavier flow has the lower (better) virtual
    // clock value.
    EXPECT_GT(t.priorityOf(0, 0), t.priorityOf(0, 1));
    EXPECT_EQ(t.priorityOf(0, 0), 8u * 5u / 1u);
    EXPECT_EQ(t.priorityOf(0, 1), 8u * 5u / 4u);
}

TEST(FlowTable, LowerConsumptionWinsAtEqualWeight)
{
    PvcParams p;
    p.numFlows = 2;
    FlowTable t(p, 1);
    t.charge(0, 0, 10);
    t.charge(0, 1, 3);
    EXPECT_LT(t.priorityOf(0, 1), t.priorityOf(0, 0));
}

TEST(FlowTable, FlushClearsEverything)
{
    PvcParams p;
    p.numFlows = 3;
    FlowTable t(p, 2);
    t.charge(0, 0, 5);
    t.charge(1, 2, 7);
    t.flush();
    for (int out = 0; out < 2; ++out)
        for (FlowId f = 0; f < 3; ++f)
            EXPECT_EQ(t.countOf(out, f), 0u);
}

TEST(FlowTable, FreshTableAllZero)
{
    PvcParams p;
    p.numFlows = 8;
    FlowTable t(p, 4);
    EXPECT_TRUE(t.enabled());
    for (FlowId f = 0; f < 8; ++f)
        EXPECT_EQ(t.priorityOf(3, f), 0u);
}

} // namespace
} // namespace taqos
