#include <gtest/gtest.h>

#include "qos/pvc.h"

namespace taqos {
namespace {

TEST(PvcParams, EqualWeightsByDefault)
{
    PvcParams p;
    p.numFlows = 64;
    EXPECT_EQ(p.weightOf(0), 1u);
    EXPECT_EQ(p.weightOf(63), 1u);
    EXPECT_EQ(p.sumWeights(), 64u);
}

TEST(PvcParams, QuotaIsFairShareOfFrame)
{
    PvcParams p;
    p.numFlows = 64;
    p.frameLen = 50000;
    // 50000 / 64 = 781 flits: the reserved non-preemptable share.
    EXPECT_EQ(p.quotaFlits(0), 781u);
}

TEST(PvcParams, WeightedQuota)
{
    PvcParams p;
    p.numFlows = 4;
    p.frameLen = 1000;
    p.weights = {1, 1, 2, 4};
    EXPECT_EQ(p.sumWeights(), 8u);
    EXPECT_EQ(p.quotaFlits(0), 125u);
    EXPECT_EQ(p.quotaFlits(3), 500u);
}

TEST(PvcParams, QuotaDisabled)
{
    PvcParams p;
    p.quotaEnabled = false;
    EXPECT_EQ(p.quotaFlits(0), 0u);
}

TEST(PvcParams, GapScaling)
{
    PvcParams p;
    p.numFlows = 64;
    p.preemptGapFlits = 48;
    EXPECT_EQ(p.preemptGapScaled(), 48u * 64u);
}

TEST(QuotaTracker, ComplianceBoundary)
{
    PvcParams p;
    p.numFlows = 2;
    p.frameLen = 100; // quota = 50 flits per flow
    QuotaTracker q(p);

    EXPECT_TRUE(q.compliant(0, 50));
    EXPECT_FALSE(q.compliant(0, 51));
    q.charge(0, 48);
    EXPECT_TRUE(q.compliant(0, 2));
    EXPECT_FALSE(q.compliant(0, 3));
    // Flow 1 unaffected.
    EXPECT_TRUE(q.compliant(1, 50));
}

TEST(QuotaTracker, FlushResets)
{
    PvcParams p;
    p.numFlows = 1;
    p.frameLen = 100;
    QuotaTracker q(p);
    q.charge(0, 100);
    EXPECT_FALSE(q.compliant(0, 1));
    q.flush();
    EXPECT_TRUE(q.compliant(0, 1));
    EXPECT_EQ(q.injectedThisFrame(0), 0u);
}

TEST(QuotaTracker, DisabledQuotaNeverCompliant)
{
    PvcParams p;
    p.numFlows = 1;
    p.quotaEnabled = false;
    QuotaTracker q(p);
    EXPECT_FALSE(q.compliant(0, 1));
}

TEST(QosMode, Names)
{
    EXPECT_STREQ(qosModeName(QosMode::Pvc), "pvc");
    EXPECT_STREQ(qosModeName(QosMode::PerFlowQueue), "per-flow");
    EXPECT_STREQ(qosModeName(QosMode::NoQos), "no-qos");
}

} // namespace
} // namespace taqos
