/// The QosPolicy layer: name/parse round-trips, the structural properties
/// each mode advertises, the default comparator, and the GSF source gate's
/// frame-window accounting.
#include <gtest/gtest.h>

#include "noc/packet.h"
#include "qos/policy.h"
#include "qos/pvc.h"

namespace taqos {
namespace {

TEST(QosPolicy, NameParseRoundTrip)
{
    for (QosMode mode : kAllQosModes) {
        const auto parsed = parseQosMode(qosModeName(mode));
        ASSERT_TRUE(parsed.has_value()) << qosModeName(mode);
        EXPECT_EQ(*parsed, mode);
    }
    // Aliases and normalization.
    EXPECT_EQ(parseQosMode("PFQ"), QosMode::PerFlowQueue);
    EXPECT_EQ(parseQosMode(" noqos "), QosMode::NoQos);
    EXPECT_EQ(parseQosMode("none"), QosMode::NoQos);
    EXPECT_EQ(parseQosMode("oldest-first"), QosMode::AgeArb);
    EXPECT_EQ(parseQosMode("weighted-rr"), QosMode::Wrr);
    EXPECT_FALSE(parseQosMode("vc").has_value());
    EXPECT_FALSE(parseQosMode("").has_value());
}

TEST(QosPolicy, FactoryRoundTripsMode)
{
    PvcParams params;
    for (QosMode mode : kAllQosModes) {
        const auto policy = makeQosPolicy(mode, params);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->mode(), mode);
    }
}

TEST(QosPolicy, StructuralProperties)
{
    PvcParams params;
    const auto has = [&params](QosMode mode, auto member) {
        return (makeQosPolicy(mode, params).get()->*member)();
    };

    // Flow-state tables: the virtual-clock schemes and WRR's round meter.
    EXPECT_TRUE(has(QosMode::Pvc, &QosPolicy::usesFlowTable));
    EXPECT_TRUE(has(QosMode::PerFlowQueue, &QosPolicy::usesFlowTable));
    EXPECT_TRUE(has(QosMode::Wrr, &QosPolicy::usesFlowTable));
    EXPECT_FALSE(has(QosMode::NoQos, &QosPolicy::usesFlowTable));
    EXPECT_FALSE(has(QosMode::Gsf, &QosPolicy::usesFlowTable));
    EXPECT_FALSE(has(QosMode::AgeArb, &QosPolicy::usesFlowTable));

    // Reserved escape VC and the source quota are PVC-only.
    for (QosMode mode : kAllQosModes) {
        EXPECT_EQ(has(mode, &QosPolicy::usesReservedVc),
                  mode == QosMode::Pvc);
        EXPECT_EQ(has(mode, &QosPolicy::usesSourceQuota),
                  mode == QosMode::Pvc);
        EXPECT_EQ(has(mode, &QosPolicy::unboundedVcs),
                  mode == QosMode::PerFlowQueue);
    }
    // ... and PVC's reserved VC honours the config switch.
    params.reservedVcEnabled = false;
    EXPECT_FALSE(has(QosMode::Pvc, &QosPolicy::usesReservedVc));

    // Router-state frames: only PVC flushes counters on the frame clock
    // (GSF's frames live in the source gate, not the routers).
    params.reservedVcEnabled = true;
    for (QosMode mode : kAllQosModes) {
        const auto policy = makeQosPolicy(mode, params);
        EXPECT_EQ(policy->frameLen(),
                  mode == QosMode::Pvc ? params.frameLen : Cycle{0})
            << qosModeName(mode);
    }
}

TEST(QosPolicy, DefaultComparatorOrder)
{
    PvcParams params;
    const auto policy = makeQosPolicy(QosMode::Pvc, params);
    const ArbKey base{10, 100, 3, 7};

    EXPECT_TRUE(policy->betterThan(ArbKey{9, 200, 5, 9}, base, 0));
    EXPECT_FALSE(policy->betterThan(ArbKey{11, 0, 0, 0}, base, 0));
    // Equal priority: older wins; then lower flow; then position.
    EXPECT_TRUE(policy->betterThan(ArbKey{10, 99, 5, 9}, base, 0));
    EXPECT_TRUE(policy->betterThan(ArbKey{10, 100, 2, 9}, base, 0));
    EXPECT_TRUE(policy->betterThan(ArbKey{10, 100, 3, 6}, base, 0));
    EXPECT_FALSE(policy->betterThan(base, base, 0));
}

TEST(QosPolicy, OnlyPvcPreempts)
{
    PvcParams params;
    for (QosMode mode : kAllQosModes) {
        const auto policy = makeQosPolicy(mode, params);
        const bool expect = mode == QosMode::Pvc;
        EXPECT_EQ(policy->onAllocFail(1000, false), expect)
            << qosModeName(mode);
        EXPECT_EQ(policy->onAllocFail(1000, true), expect)
            << qosModeName(mode);
    }
    // PVC respects its wait thresholds (transients are not inversions).
    const auto pvc = makeQosPolicy(QosMode::Pvc, params);
    EXPECT_FALSE(pvc->onAllocFail(
        static_cast<Cycle>(params.preemptWaitCycles - 1), false));
    EXPECT_TRUE(pvc->onAllocFail(
        static_cast<Cycle>(params.preemptWaitCycles), false));
    EXPECT_FALSE(pvc->onAllocFail(
        static_cast<Cycle>(params.preemptXferWaitCycles - 1), true));
    EXPECT_TRUE(pvc->onAllocFail(
        static_cast<Cycle>(params.preemptXferWaitCycles), true));
}

TEST(SourceGate, OnlyGsfGates)
{
    PvcParams params;
    for (QosMode mode : kAllQosModes) {
        const auto gate = makeSourceGate(mode, params);
        EXPECT_EQ(gate != nullptr, mode == QosMode::Gsf)
            << qosModeName(mode);
    }
}

TEST(SourceGate, GsfBudgetExhaustsTheWindow)
{
    PvcParams params;
    params.numFlows = 2;
    params.gsfFrameLen = 8; // budget: 8 * 1/2 = 4 flits per flow per frame
    params.gsfFrames = 3;
    const auto gate = makeSourceGate(QosMode::Gsf, params);

    // One flow may stamp its budget into each of the 3 window frames,
    // then stalls; frame tags are monotonically non-decreasing.
    std::vector<NetPacket> pkts(4 * 3 + 1);
    std::uint64_t lastTag = 0;
    for (std::size_t i = 0; i < pkts.size(); ++i) {
        pkts[i].flow = 0;
        pkts[i].sizeFlits = 1;
        const bool admitted = gate->admit(pkts[i], /*now=*/0);
        EXPECT_EQ(admitted, i < 12) << "packet " << i;
        if (admitted) {
            EXPECT_GE(pkts[i].frameTag, lastTag);
            EXPECT_LT(pkts[i].frameTag, 3u);
            lastTag = pkts[i].frameTag;
        }
    }
    // The other flow's budget is untouched.
    NetPacket other;
    other.flow = 1;
    other.sizeFlits = 1;
    EXPECT_TRUE(gate->admit(other, 0));
    // Re-admitting an already-stamped packet never blocks.
    EXPECT_TRUE(gate->admit(pkts[0], 0));
}

TEST(SourceGate, GsfReclaimsDrainedFrames)
{
    PvcParams params;
    params.numFlows = 1;
    params.gsfFrameLen = 4; // budget: 4 flits per frame
    params.gsfFrames = 2;
    const auto gate = makeSourceGate(QosMode::Gsf, params);

    std::vector<NetPacket> pkts(8);
    for (auto &p : pkts) {
        p.flow = 0;
        p.sizeFlits = 1;
    }
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(gate->admit(pkts[static_cast<std::size_t>(i)], 0));
    NetPacket blocked;
    blocked.flow = 0;
    blocked.sizeFlits = 1;
    EXPECT_FALSE(gate->admit(blocked, 0));

    // Delivering frame 0 reclaims it early (no timeout needed): the
    // window slides and the blocked packet is admitted into frame 2.
    for (int i = 0; i < 4; ++i)
        gate->onDeliver(pkts[static_cast<std::size_t>(i)], 1);
    gate->rollover(/*now=*/1);
    EXPECT_TRUE(gate->admit(blocked, 1));
    EXPECT_EQ(blocked.frameTag, 2u);
}

TEST(SourceGate, GsfIdleFramesAdvanceOnTheTimer)
{
    PvcParams params;
    params.numFlows = 1;
    params.gsfFrameLen = 10;
    params.gsfFrames = 2;
    const auto gate = makeSourceGate(QosMode::Gsf, params);

    // Nothing was ever injected: an idle head frame is reclaimed on the
    // timer alone, so a long-quiet network does not pin the window.
    gate->rollover(9); // timer not elapsed yet: head stays at frame 0
    gate->rollover(25); // elapsed: frame 0 reclaimed (head restarts at 25)
    NetPacket a;
    a.flow = 0;
    a.sizeFlits = 1;
    ASSERT_TRUE(gate->admit(a, 25));
    EXPECT_EQ(a.frameTag, 1u);
}

} // namespace
} // namespace taqos
