#include <gtest/gtest.h>

#include "qos/ack_network.h"

namespace taqos {
namespace {

TEST(AckNetwork, DeliversAfterDistanceDelay)
{
    AckNetwork net;
    NetPacket pkt;
    net.send(100, 5, &pkt, false);

    AckEvent ev;
    EXPECT_FALSE(net.popDue(100 + 5 + AckNetwork::kBaseDelay - 1, ev));
    ASSERT_TRUE(net.popDue(100 + 5 + AckNetwork::kBaseDelay, ev));
    EXPECT_EQ(ev.pkt, &pkt);
    EXPECT_FALSE(ev.isNack);
    EXPECT_EQ(net.pending(), 0u);
}

TEST(AckNetwork, OrdersByDeliveryTime)
{
    AckNetwork net;
    NetPacket a, b;
    net.send(0, 7, &a, false); // due 9
    net.send(1, 2, &b, true);  // due 5

    AckEvent ev;
    ASSERT_TRUE(net.popDue(100, ev));
    EXPECT_EQ(ev.pkt, &b);
    EXPECT_TRUE(ev.isNack);
    ASSERT_TRUE(net.popDue(100, ev));
    EXPECT_EQ(ev.pkt, &a);
    EXPECT_FALSE(net.popDue(100, ev));
}

TEST(AckNetwork, ZeroDistance)
{
    AckNetwork net;
    NetPacket pkt;
    net.send(10, 0, &pkt, true); // node acks itself (hotspot node 0)
    AckEvent ev;
    ASSERT_TRUE(net.popDue(10 + AckNetwork::kBaseDelay, ev));
    EXPECT_TRUE(ev.isNack);
}

TEST(AckNetwork, ManyInFlight)
{
    AckNetwork net;
    NetPacket pkts[50];
    for (int i = 0; i < 50; ++i)
        net.send(static_cast<Cycle>(i), i % 8, &pkts[i], i % 2 == 0);
    EXPECT_EQ(net.pending(), 50u);
    int drained = 0;
    AckEvent ev;
    Cycle last = 0;
    while (net.popDue(1000, ev)) {
        EXPECT_GE(ev.deliverAt, last);
        last = ev.deliverAt;
        ++drained;
    }
    EXPECT_EQ(drained, 50);
}

} // namespace
} // namespace taqos
