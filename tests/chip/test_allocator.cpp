#include <gtest/gtest.h>

#include "chip/allocator.h"

namespace taqos {
namespace {

TEST(Allocator, StartsWithComputeNodesFree)
{
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    EXPECT_EQ(alloc.freeNodes(), chip.computeNodes());
    EXPECT_FALSE(alloc.isFree(NodeCoord{4, 0})); // shared column
    EXPECT_TRUE(alloc.isFree(NodeCoord{3, 0}));
}

TEST(Allocator, AllocatedDomainsAreConvexAndDisjoint)
{
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    const int sizes[] = {6, 4, 9, 2, 12};
    int id = 0;
    for (int s : sizes) {
        const auto d = alloc.allocate(id++, s);
        ASSERT_TRUE(d.has_value());
        EXPECT_GE(static_cast<int>(d->size()), s);
        EXPECT_TRUE(d->isConvex());
    }
    // Disjointness.
    for (const auto &a : alloc.domains()) {
        for (const auto &b : alloc.domains()) {
            if (a.id() == b.id())
                continue;
            for (const auto &node : a.nodes())
                EXPECT_FALSE(b.contains(node));
        }
    }
}

TEST(Allocator, NeverAllocatesSharedColumn)
{
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    for (int id = 0; id < 10; ++id) {
        const auto d = alloc.allocate(id, 4);
        if (!d.has_value())
            break;
        for (const auto &node : d->nodes())
            EXPECT_FALSE(chip.isSharedNode(node));
    }
}

TEST(Allocator, ExactShapeWhenPossible)
{
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    const auto d = alloc.allocate(1, 4);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->size(), 4u); // 2x2 fits with zero waste
}

TEST(Allocator, ExhaustionReturnsNullopt)
{
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    int allocated = 0;
    for (int id = 0; id < 100; ++id) {
        const auto d = alloc.allocate(id, 4);
        if (!d.has_value())
            break;
        allocated += static_cast<int>(d->size());
    }
    EXPECT_EQ(allocated, chip.computeNodes()); // 4-node rects tile 56
    EXPECT_FALSE(alloc.allocate(999, 4).has_value());
    EXPECT_EQ(alloc.freeNodes(), 0);
}

TEST(Allocator, ReleaseAllowsReuse)
{
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    const auto a = alloc.allocate(1, 8);
    ASSERT_TRUE(a.has_value());
    const int freeAfterAlloc = alloc.freeNodes();
    EXPECT_TRUE(alloc.release(1));
    EXPECT_EQ(alloc.freeNodes(),
              freeAfterAlloc + static_cast<int>(a->size()));
    EXPECT_FALSE(alloc.release(1)); // already gone
    const auto b = alloc.allocate(2, 8);
    ASSERT_TRUE(b.has_value());
}

TEST(Allocator, TooLargeRequestFails)
{
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    EXPECT_FALSE(alloc.allocate(1, 57).has_value());
}

TEST(Allocator, WholeSideAllocatable)
{
    // The west side of the shared column is a 4x8 = 32-node region.
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    const auto d = alloc.allocate(1, 32);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->size(), 32u);
    EXPECT_TRUE(d->isConvex());
}

TEST(Allocator, FindLocatesDomains)
{
    const ChipConfig chip;
    DomainAllocator alloc(chip);
    alloc.allocate(5, 4);
    EXPECT_NE(alloc.find(5), nullptr);
    EXPECT_EQ(alloc.find(6), nullptr);
}

} // namespace
} // namespace taqos
