#include <gtest/gtest.h>

#include "chip/domain.h"
#include "common/rng.h"

namespace taqos {
namespace {

TEST(Domain, RectanglesAreConvex)
{
    for (int w = 1; w <= 4; ++w) {
        for (int h = 1; h <= 4; ++h) {
            const Domain d = makeRectDomain(1, NodeCoord{1, 2}, w, h);
            EXPECT_TRUE(d.isConvex()) << w << "x" << h;
            EXPECT_EQ(d.size(), static_cast<std::size_t>(w * h));
        }
    }
}

TEST(Domain, LShapeIsNotConvex)
{
    Domain d(1, {{0, 0}, {1, 0}, {0, 1}});
    EXPECT_FALSE(d.isConvex());
}

TEST(Domain, RowGapIsNotConvex)
{
    Domain d(1, {{0, 0}, {2, 0}});
    EXPECT_FALSE(d.isConvex());
}

TEST(Domain, DisconnectedIsNotConvex)
{
    Domain d(1, {{0, 0}, {3, 3}});
    EXPECT_FALSE(d.isConvex());
}

TEST(Domain, EmptyAndSingletonAreConvex)
{
    EXPECT_TRUE(Domain(1, {}).isConvex());
    EXPECT_TRUE(Domain(1, {{5, 5}}).isConvex());
}

TEST(Domain, ContainsAndAdd)
{
    Domain d(7, {{1, 1}});
    EXPECT_TRUE(d.contains(NodeCoord{1, 1}));
    EXPECT_FALSE(d.contains(NodeCoord{1, 2}));
    d.addNode(NodeCoord{1, 2});
    d.addNode(NodeCoord{1, 2}); // idempotent
    EXPECT_EQ(d.size(), 2u);
}

/// Property (the paper's placement argument): in a convex domain every
/// intra-domain XY route stays inside the domain.
TEST(Domain, ConvexImpliesXYRoutesInside)
{
    Rng rng(2024);
    for (int trial = 0; trial < 50; ++trial) {
        const int w = static_cast<int>(rng.nextRange(1, 4));
        const int h = static_cast<int>(rng.nextRange(1, 4));
        const NodeCoord origin{static_cast<int>(rng.nextRange(0, 3)),
                               static_cast<int>(rng.nextRange(0, 3))};
        const Domain d = makeRectDomain(trial, origin, w, h);
        ASSERT_TRUE(d.isConvex());
        for (const auto &a : d.nodes())
            for (const auto &b : d.nodes())
                EXPECT_TRUE(d.xyRouteInside(a, b));
    }
}

/// Counter-property: non-convex domains have escaping XY routes.
TEST(Domain, NonConvexHasEscapingRoute)
{
    // L-shape: route from the row arm to the column arm turns at a
    // non-member.
    Domain d(1, {{0, 0}, {1, 0}, {2, 0}, {0, 1}, {0, 2}, {2, 2}});
    ASSERT_FALSE(d.isConvex());
    EXPECT_FALSE(d.xyRouteInside(NodeCoord{0, 2}, NodeCoord{2, 0}) &&
                 d.xyRouteInside(NodeCoord{2, 0}, NodeCoord{0, 2}) &&
                 d.xyRouteInside(NodeCoord{2, 2}, NodeCoord{0, 0}) &&
                 d.xyRouteInside(NodeCoord{0, 0}, NodeCoord{2, 2}));
}

/// Random convex-closure property: take a random subset, test that
/// isConvex() == all XY routes stay inside (on connected subsets).
TEST(Domain, ConvexityMatchesRouteContainment)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<NodeCoord> nodes;
        for (int y = 0; y < 3; ++y)
            for (int x = 0; x < 3; ++x)
                if (rng.bernoulli(0.6))
                    nodes.push_back(NodeCoord{x, y});
        if (nodes.empty())
            continue;
        const Domain d(trial, nodes);
        bool allInside = true;
        for (const auto &a : d.nodes())
            for (const auto &b : d.nodes())
                allInside &= d.xyRouteInside(a, b);
        if (d.isConvex()) {
            EXPECT_TRUE(allInside);
        } else {
            // Non-convexity means either an escaping route or a
            // contiguity hole (which is itself an escaping straight
            // route), so containment must fail somewhere.
            EXPECT_FALSE(allInside);
        }
    }
}

} // namespace
} // namespace taqos
