#include <gtest/gtest.h>

#include "chip/routing.h"

namespace taqos {
namespace {

TEST(Routing, XYRouteShape)
{
    const MecsRouter router{ChipConfig{}};
    const Route r = router.routeXY(NodeCoord{1, 2}, NodeCoord{6, 5});
    ASSERT_EQ(r.hops.size(), 2u);
    EXPECT_TRUE(r.hops[0].horizontal());
    EXPECT_FALSE(r.hops[1].horizontal());
    EXPECT_EQ(r.totalSpan(), 5 + 3);
    EXPECT_EQ(r.routerTraversals(), 3); // src, turn, dst
}

TEST(Routing, SameNodeIsEmptyRoute)
{
    const MecsRouter router{ChipConfig{}};
    const Route r = router.routeXY(NodeCoord{3, 3}, NodeCoord{3, 3});
    EXPECT_TRUE(r.hops.empty());
    EXPECT_EQ(r.totalSpan(), 0);
}

TEST(Routing, SingleDimensionRoutes)
{
    const MecsRouter router{ChipConfig{}};
    EXPECT_EQ(router.routeXY(NodeCoord{0, 0}, NodeCoord{7, 0}).hops.size(),
              1u);
    EXPECT_EQ(router.routeXY(NodeCoord{2, 7}, NodeCoord{2, 1}).hops.size(),
              1u);
}

TEST(Routing, MemoryAccessEntersNearestSharedColumn)
{
    ChipConfig chip;
    chip.sharedColumns = {2, 6};
    const MecsRouter router{chip};
    const Route r = router.routeToSharedColumn(NodeCoord{7, 3}, 0);
    ASSERT_FALSE(r.hops.empty());
    // Enters column 6 (nearest to x=7), not column 2.
    EXPECT_EQ(r.hops[0].to.x, 6);
    EXPECT_TRUE(r.passesThrough(NodeCoord{6, 3}));
}

TEST(Routing, InterDomainTransitsSharedColumn)
{
    const ChipConfig chip; // shared column at x=4
    const MecsRouter router{chip};
    const Route r =
        router.routeInterDomain(NodeCoord{0, 0}, NodeCoord{2, 6});
    // Must pass through the shared column even though the direct XY route
    // would not.
    bool inColumn = false;
    for (const auto &hop : r.hops)
        inColumn |= hop.from.x == 4 || hop.to.x == 4;
    EXPECT_TRUE(inColumn);
    // Non-minimal: direct span is 2 + 6 = 8; via the column it is
    // 4 + 6 + 2 = 12.
    EXPECT_EQ(r.totalSpan(), 12);
    EXPECT_GT(r.totalSpan(),
              router.routeXY(NodeCoord{0, 0}, NodeCoord{2, 6}).totalSpan());
}

TEST(Routing, InterDomainSameRowStillProtected)
{
    const ChipConfig chip;
    const MecsRouter router{chip};
    const Route r =
        router.routeInterDomain(NodeCoord{1, 3}, NodeCoord{7, 3});
    bool throughColumn = false;
    for (const auto &hop : r.hops)
        throughColumn |= hop.to.x == 4 || hop.from.x == 4;
    EXPECT_TRUE(throughColumn);
}

TEST(Routing, PassesThroughDetectsIntermediates)
{
    const MecsRouter router{ChipConfig{}};
    const Route r = router.routeXY(NodeCoord{0, 0}, NodeCoord{5, 0});
    EXPECT_TRUE(r.passesThrough(NodeCoord{3, 0}));
    EXPECT_FALSE(r.passesThrough(NodeCoord{3, 1}));
}

TEST(Routing, LatencyMonotonicInDistance)
{
    const MecsRouter router{ChipConfig{}};
    double prev = 0.0;
    for (int x = 1; x < 8; ++x) {
        const Route r = router.routeXY(NodeCoord{0, 0}, NodeCoord{x, 0});
        const double lat = router.latencyCycles(r, 4);
        EXPECT_GT(lat, prev);
        prev = lat;
    }
}

TEST(Routing, LatencyIncludesSerialization)
{
    const MecsRouter router{ChipConfig{}};
    const Route r = router.routeXY(NodeCoord{0, 0}, NodeCoord{3, 0});
    EXPECT_DOUBLE_EQ(router.latencyCycles(r, 4) - router.latencyCycles(r, 1),
                     3.0);
}

TEST(Routing, WireEnergyScalesWithSpanAndPayload)
{
    const MecsRouter router{ChipConfig{}};
    const Route near = router.routeXY(NodeCoord{0, 0}, NodeCoord{1, 0});
    const Route far = router.routeXY(NodeCoord{0, 0}, NodeCoord{4, 0});
    EXPECT_NEAR(router.wireEnergyPj(far, 1) / router.wireEnergyPj(near, 1),
                4.0, 1e-9);
    EXPECT_NEAR(router.wireEnergyPj(near, 4),
                4.0 * router.wireEnergyPj(near, 1), 1e-9);
    const Route none = router.routeXY(NodeCoord{2, 2}, NodeCoord{2, 2});
    EXPECT_DOUBLE_EQ(router.wireEnergyPj(none, 4), 0.0);
}

} // namespace
} // namespace taqos
