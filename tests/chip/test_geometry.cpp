#include <gtest/gtest.h>

#include "chip/geometry.h"

namespace taqos {
namespace {

TEST(ChipGeometry, PaperConfiguration)
{
    const ChipConfig chip;
    EXPECT_EQ(chip.numTiles(), 256);
    EXPECT_EQ(chip.nodesX(), 8);
    EXPECT_EQ(chip.nodesY(), 8);
    EXPECT_EQ(chip.numNodes(), 64);
    EXPECT_EQ(chip.terminalsPerNode(), 4);
    EXPECT_EQ(chip.computeNodes(), 56);
}

TEST(ChipGeometry, SharedColumnMembership)
{
    const ChipConfig chip;
    EXPECT_TRUE(chip.isSharedColumn(4));
    EXPECT_FALSE(chip.isSharedColumn(3));
    EXPECT_TRUE(chip.isSharedNode(NodeCoord{4, 7}));
    EXPECT_FALSE(chip.isSharedNode(NodeCoord{5, 7}));
}

TEST(ChipGeometry, IndexRoundTrip)
{
    const ChipConfig chip;
    for (int i = 0; i < chip.numNodes(); ++i) {
        const NodeCoord c = chip.coordOf(i);
        EXPECT_TRUE(chip.inGrid(c));
        EXPECT_EQ(chip.nodeIndex(c), i);
    }
    EXPECT_FALSE(chip.inGrid(NodeCoord{8, 0}));
    EXPECT_FALSE(chip.inGrid(NodeCoord{0, -1}));
}

TEST(ChipGeometry, NearestSharedColumn)
{
    ChipConfig chip;
    chip.sharedColumns = {2, 6};
    EXPECT_EQ(chip.nearestSharedColumn(0), 2);
    EXPECT_EQ(chip.nearestSharedColumn(3), 2);
    EXPECT_EQ(chip.nearestSharedColumn(5), 6);
    EXPECT_EQ(chip.nearestSharedColumn(4), 2); // tie toward lower x
    EXPECT_EQ(chip.computeNodes(), 48);
}

TEST(ChipGeometry, SixteenWayConcentration)
{
    ChipConfig chip;
    chip.concentration = 16;
    EXPECT_EQ(chip.nodesX(), 4);
    EXPECT_EQ(chip.numNodes(), 16);
}

} // namespace
} // namespace taqos
