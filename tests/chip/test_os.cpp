#include <gtest/gtest.h>

#include "chip/os.h"

namespace taqos {
namespace {

TEST(Os, CreateVmPlacesAllThreads)
{
    OsScheduler os{ChipConfig{}};
    const auto vm = os.createVm(1, 10, 2);
    ASSERT_TRUE(vm.has_value());
    EXPECT_EQ(vm->threads.size(), 10u);
    // ceil(10/4) = 3 nodes.
    EXPECT_EQ(vm->domain.size(), 3u);
    EXPECT_TRUE(vm->domain.isConvex());
    for (const auto &t : vm->threads) {
        EXPECT_TRUE(vm->domain.contains(t.node));
        EXPECT_LT(t.terminal, 4);
    }
}

TEST(Os, CoSchedulingInvariant)
{
    OsScheduler os{ChipConfig{}};
    // Thread counts that do not fill nodes exactly still may not mix VMs
    // on a node.
    ASSERT_TRUE(os.createVm(1, 5).has_value());
    ASSERT_TRUE(os.createVm(2, 3).has_value());
    ASSERT_TRUE(os.createVm(3, 9).has_value());
    EXPECT_TRUE(os.coScheduleInvariant());
}

TEST(Os, OwnerLookup)
{
    OsScheduler os{ChipConfig{}};
    const auto vm = os.createVm(7, 8);
    ASSERT_TRUE(vm.has_value());
    for (const auto &node : vm->domain.nodes())
        EXPECT_EQ(os.ownerOf(node), 7);
    EXPECT_EQ(os.ownerOf(NodeCoord{4, 0}), -1); // shared column
}

TEST(Os, DestroyVmFreesNodes)
{
    OsScheduler os{ChipConfig{}};
    const int before = os.allocator().freeNodes();
    ASSERT_TRUE(os.createVm(1, 16).has_value());
    EXPECT_TRUE(os.destroyVm(1));
    EXPECT_FALSE(os.destroyVm(1));
    EXPECT_EQ(os.allocator().freeNodes(), before);
    EXPECT_EQ(os.vm(1), nullptr);
}

TEST(Os, AdmissionFailsWhenFull)
{
    OsScheduler os{ChipConfig{}};
    ASSERT_TRUE(os.createVm(1, 32 * 4).has_value()); // one whole side
    ASSERT_TRUE(os.createVm(2, 16 * 4).has_value()); // 2x8 of the other
    EXPECT_FALSE(os.createVm(3, 40).has_value());    // 10 nodes > 8 free
    EXPECT_TRUE(os.createVm(4, 32).has_value());     // 8 nodes: exact fit
    EXPECT_EQ(os.allocator().freeNodes(), 0);
}

TEST(Os, FlowRegistersCarryVmWeights)
{
    const ChipConfig chip;
    OsScheduler os{chip};
    // Force a known placement: VM 1 takes the whole west side with
    // weight 4.
    const auto vm = os.createVm(1, 32 * 4, 4);
    ASSERT_TRUE(vm.has_value());

    ColumnConfig col;
    col.numNodes = chip.nodesY();
    const PvcParams params = os.columnFlowRegisters(4, col);
    ASSERT_EQ(static_cast<int>(params.weights.size()), col.numFlows());

    int heavy = 0, unity = 0;
    for (auto w : params.weights) {
        if (w == 4)
            ++heavy;
        else if (w == 1)
            ++unity;
    }
    // Each of the 8 rows has 4 west compute nodes owned by VM 1; the
    // east-side nodes and the terminal flows stay at weight 1.
    EXPECT_EQ(heavy, 8 * 4);
    EXPECT_EQ(heavy + unity, col.numFlows());

    // The terminal injector of every column node keeps weight 1.
    for (int row = 0; row < chip.nodesY(); ++row)
        EXPECT_EQ(params.weights[static_cast<std::size_t>(
                      col.flowOf(row, 0))],
                  1u);
}

TEST(Os, WeightsFeedQuota)
{
    const ChipConfig chip;
    OsScheduler os{chip};
    ASSERT_TRUE(os.createVm(1, 128, 3).has_value());
    ColumnConfig col;
    col.numNodes = chip.nodesY();
    PvcParams params = os.columnFlowRegisters(4, col);
    params.frameLen = 50000;
    // A weight-3 flow's reserved quota is 3x a weight-1 flow's.
    FlowId heavyFlow = -1, lightFlow = -1;
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        if (params.weights[static_cast<std::size_t>(f)] == 3 &&
            heavyFlow < 0)
            heavyFlow = f;
        if (params.weights[static_cast<std::size_t>(f)] == 1 &&
            lightFlow < 0)
            lightFlow = f;
    }
    ASSERT_GE(heavyFlow, 0);
    ASSERT_GE(lightFlow, 0);
    // Integer frame division makes the ratio approximate.
    EXPECT_NEAR(static_cast<double>(params.quotaFlits(heavyFlow)),
                3.0 * static_cast<double>(params.quotaFlits(lightFlow)),
                0.01 * static_cast<double>(params.quotaFlits(heavyFlow)));
}

} // namespace
} // namespace taqos
