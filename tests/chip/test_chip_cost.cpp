#include <gtest/gtest.h>

#include "chip/chip_cost.h"
#include "power/tech.h"

namespace taqos {
namespace {

TEST(ChipCost, QosHardwareCostsArea)
{
    const ChipConfig chip;
    const RouterGeometry with = mainNetworkRouterGeometry(chip, true);
    const RouterGeometry without = mainNetworkRouterGeometry(chip, false);
    const AreaBreakdown aWith = computeRouterArea(with, tech32nm());
    const AreaBreakdown aWithout = computeRouterArea(without, tech32nm());
    EXPECT_GT(aWith.flowStateMm2, 0.0);
    EXPECT_DOUBLE_EQ(aWithout.flowStateMm2, 0.0);
    EXPECT_GT(aWith.buffersMm2(), aWithout.buffersMm2());
    EXPECT_GT(aWith.totalMm2(), aWithout.totalMm2());
}

TEST(ChipCost, TopologyAwareSavesForEverySharedTopology)
{
    const ChipConfig chip;
    for (auto kind : kAllTopologies) {
        const ChipCostReport r = chipCostComparison(chip, kind);
        EXPECT_GT(r.qosEverywhereMm2, r.topologyAwareMm2)
            << topologyName(kind);
        EXPECT_GT(r.savingsPct(), 2.0) << topologyName(kind);
        EXPECT_LT(r.savingsPct(), 60.0) << topologyName(kind);
        EXPECT_GT(r.flowStateSavedMm2, 0.0);
        EXPECT_GT(r.buffersSavedMm2, 0.0);
    }
}

TEST(ChipCost, MoreSharedColumnsLessSavings)
{
    ChipConfig one;
    ChipConfig two;
    two.sharedColumns = {2, 6};
    const double s1 =
        chipCostComparison(one, TopologyKind::Dps).savingsPct();
    const double s2 =
        chipCostComparison(two, TopologyKind::Dps).savingsPct();
    // With more of the chip QOS-protected anyway, relative savings shrink.
    EXPECT_GT(s1, s2);
}

TEST(ChipCost, FlowStateScalesWithChipSize)
{
    const ChipConfig chip;
    const RouterGeometry g = mainNetworkRouterGeometry(chip, true);
    // PVC per-flow state is proportional to the number of nodes (Sec. 3.1).
    EXPECT_EQ(g.flowTableFlows, chip.numNodes());
}

} // namespace
} // namespace taqos
