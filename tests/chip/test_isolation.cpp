/// The paper's central isolation property, as an executable theorem:
/// with convex per-VM domains, same-VM co-scheduling, memory traffic
/// entering the shared column in its own row, and inter-VM traffic forced
/// through the shared column, no channel outside the QOS region carries
/// two domains' traffic. Violations appear exactly when the rules are
/// broken.
#include <gtest/gtest.h>

#include "chip/isolation.h"
#include "chip/os.h"
#include "common/rng.h"

namespace taqos {
namespace {

struct ChipSetup {
    ChipConfig chip;
    OsScheduler os{chip};
    MecsRouter router{chip};
    IsolationAuditor audit{chip};
};

/// Register the full "legal" traffic of one VM: all-pairs intra-domain
/// cache traffic plus every node's memory access into the shared column.
void
addLegalTraffic(ChipSetup &s, const VmInfo &vm)
{
    for (const auto &a : vm.domain.nodes())
        for (const auto &b : vm.domain.nodes())
            if (!(a == b))
                s.audit.addRoute(vm.id, s.router.routeXY(a, b));
    for (const auto &node : vm.domain.nodes()) {
        for (int mcRow = 0; mcRow < s.chip.nodesY(); ++mcRow)
            s.audit.addRoute(vm.id, s.router.routeToSharedColumn(node, mcRow));
    }
}

TEST(Isolation, LegalTrafficOfManyVmsIsIsolated)
{
    ChipSetup s;
    for (int id = 1; id <= 8; ++id) {
        const auto vm = s.os.createVm(id, 4 + 3 * id);
        ASSERT_TRUE(vm.has_value());
        addLegalTraffic(s, *vm);
    }
    EXPECT_TRUE(s.os.coScheduleInvariant());
    const auto violations = s.audit.audit();
    EXPECT_TRUE(violations.empty())
        << violations.size() << " channels shared outside the QOS region";
}

TEST(Isolation, InterVmViaSharedColumnIsIsolated)
{
    ChipSetup s;
    const auto vm1 = s.os.createVm(1, 16);
    const auto vm2 = s.os.createVm(2, 16);
    ASSERT_TRUE(vm1 && vm2);
    addLegalTraffic(s, *vm1);
    addLegalTraffic(s, *vm2);
    // Inter-VM transfers through the QOS-protected column (Sec. 2.2).
    for (const auto &a : vm1->domain.nodes())
        for (const auto &b : vm2->domain.nodes())
            s.audit.addRoute(1, s.router.routeInterDomain(a, b));
    EXPECT_TRUE(s.audit.isolated());
}

TEST(Isolation, DirectInterVmXYRouteViolates)
{
    // The paper's VM#1 -> VM#3 example (Sec. 2.2): VM1 top-left, VM2
    // top-right, VM3 bottom-right. A direct dimension-order transfer from
    // VM1 to VM3 turns at VM2's top node, so VM1's traffic rides the
    // column channel that node drives — the same channel VM2's local
    // traffic uses. Interference outside any QOS region.
    ChipSetup s;
    const Domain d2 = makeRectDomain(2, NodeCoord{2, 0}, 2, 2);
    // VM2's own traffic uses its column channels.
    for (const auto &a : d2.nodes())
        for (const auto &b : d2.nodes())
            if (!(a == b))
                s.audit.addRoute(2, s.router.routeXY(a, b));
    // VM1 at (0,0)..(1,1) sends directly to VM3 at (2,6)..(3,7): the XY
    // turn lands at (3,0), inside VM2.
    s.audit.addRoute(1, s.router.routeXY(NodeCoord{0, 0}, NodeCoord{3, 7}));
    EXPECT_FALSE(s.audit.isolated());

    // Routed through the shared column instead, the same transfer is
    // interference-free.
    s.audit.clear();
    for (const auto &a : d2.nodes())
        for (const auto &b : d2.nodes())
            if (!(a == b))
                s.audit.addRoute(2, s.router.routeXY(a, b));
    s.audit.addRoute(
        1, s.router.routeInterDomain(NodeCoord{0, 0}, NodeCoord{3, 7}));
    EXPECT_TRUE(s.audit.isolated());
}

TEST(Isolation, ViolationReportsOwnerAndDomains)
{
    ChipSetup s;
    // Two domains both route through channels driven by (0,0).
    Route r1, r2;
    r1.hops.push_back(ChannelHop{NodeCoord{0, 0}, NodeCoord{3, 0}});
    r2.hops.push_back(ChannelHop{NodeCoord{0, 0}, NodeCoord{5, 0}});
    s.audit.addRoute(1, r1);
    s.audit.addRoute(2, r2);
    const auto violations = s.audit.audit();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].channelOwner, (NodeCoord{0, 0}));
    EXPECT_TRUE(violations[0].horizontal);
    EXPECT_EQ(violations[0].domains.size(), 2u);
}

TEST(Isolation, SharedColumnChannelsAreExempt)
{
    ChipSetup s;
    // Both domains ride the shared column (x=4) southward: the QOS
    // hardware there arbitrates fairly, so this is not a violation.
    Route r;
    r.hops.push_back(ChannelHop{NodeCoord{4, 0}, NodeCoord{4, 7}});
    s.audit.addRoute(1, r);
    s.audit.addRoute(2, r);
    EXPECT_TRUE(s.audit.isolated());
}

TEST(Isolation, SameDomainSharingIsFine)
{
    ChipSetup s;
    Route r;
    r.hops.push_back(ChannelHop{NodeCoord{1, 1}, NodeCoord{5, 1}});
    s.audit.addRoute(1, r);
    s.audit.addRoute(1, r);
    EXPECT_TRUE(s.audit.isolated());
    s.audit.clear();
    s.audit.addRoute(2, r);
    EXPECT_TRUE(s.audit.isolated());
}

/// Randomized end-to-end property: any set of convex VM allocations with
/// legal routing stays isolated.
TEST(Isolation, RandomAllocationsStayIsolated)
{
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        ChipSetup s;
        int id = 1;
        while (true) {
            const int threads = static_cast<int>(rng.nextRange(1, 40));
            const auto vm = s.os.createVm(id, threads);
            if (!vm.has_value())
                break;
            addLegalTraffic(s, *vm);
            // Inter-VM chatter with a random earlier VM, legally routed.
            if (id > 1) {
                const int peer = static_cast<int>(rng.nextRange(1, id - 1));
                const VmInfo *p = s.os.vm(peer);
                s.audit.addRoute(id,
                                 s.router.routeInterDomain(
                                     vm->domain.nodes().front(),
                                     p->domain.nodes().back()));
            }
            ++id;
        }
        EXPECT_TRUE(s.audit.isolated()) << "trial " << trial;
    }
}

} // namespace
} // namespace taqos
