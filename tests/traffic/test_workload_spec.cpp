/// WorkloadSpec: the declarative workload grammar. parse(name())
/// round-trips for every reachable value, malformed input is diagnosed
/// with the canonical one-line errors (never an exit), and
/// appendKeyWords() separates every distinct spec so the sweep seed mix
/// and the cell cache never collide two workloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/workload_spec.h"

namespace taqos {
namespace {

std::vector<std::uint64_t>
keyWords(const WorkloadSpec &spec)
{
    std::vector<std::uint64_t> words;
    spec.appendKeyWords(words);
    return words;
}

TEST(WorkloadSpec, KindNamesRoundTripWithAliases)
{
    for (auto kind :
         {WorkloadKind::Steady, WorkloadKind::Bursty, WorkloadKind::Ramp,
          WorkloadKind::Trace, WorkloadKind::Churn}) {
        const auto back = parseWorkloadKind(workloadKindName(kind));
        ASSERT_TRUE(back.has_value()) << workloadKindName(kind);
        EXPECT_EQ(*back, kind);
    }
    EXPECT_EQ(parseWorkloadKind("onoff"), WorkloadKind::Bursty);
    EXPECT_EQ(parseWorkloadKind("diurnal"), WorkloadKind::Ramp);
    EXPECT_EQ(parseWorkloadKind("replay"), WorkloadKind::Trace);
    EXPECT_FALSE(parseWorkloadKind("bursty2").has_value());
}

TEST(WorkloadSpec, DefaultIsSteady)
{
    const WorkloadSpec spec;
    EXPECT_TRUE(spec.isSteady());
    EXPECT_FALSE(spec.modulated());
    EXPECT_EQ(spec.name(), "steady");
}

TEST(WorkloadSpec, NameParseRoundTripsEveryKind)
{
    WorkloadSpec bursty;
    bursty.kind = WorkloadKind::Bursty;
    bursty.burstOn = 0.0035;
    bursty.burstOff = 0.02;
    bursty.burstGain = 7.5;

    WorkloadSpec ramp;
    ramp.kind = WorkloadKind::Ramp;
    ramp.rampLow = 0.1;
    ramp.rampHigh = 2.25;
    ramp.rampPeriod = 12345;

    WorkloadSpec trace;
    trace.kind = WorkloadKind::Trace;
    trace.tracePath = "runs/web.csv";
    trace.inflate = 0.5;
    trace.windowBegin = 1000;
    trace.windowEnd = 51000;
    trace.traceLoop = true;

    WorkloadSpec churn;
    churn.kind = WorkloadKind::Churn;
    churn.churnFrames = 3;
    churn.churnMaxVms = 8;
    churn.churnAttack = true;

    for (const auto &spec :
         {WorkloadSpec{}, bursty, ramp, trace, churn}) {
        const auto back = WorkloadSpec::parse(spec.name());
        ASSERT_TRUE(back.has_value()) << spec.name();
        EXPECT_EQ(back->name(), spec.name());
        EXPECT_EQ(*back, spec);
    }
}

TEST(WorkloadSpec, CanonicalNamesArePinned)
{
    EXPECT_EQ(WorkloadSpec{}.name(), "steady");
    WorkloadSpec b;
    b.kind = WorkloadKind::Bursty;
    EXPECT_EQ(b.name(), "bursty:on=0.002,off=0.01,gain=4");
    WorkloadSpec r;
    r.kind = WorkloadKind::Ramp;
    EXPECT_EQ(r.name(), "ramp:low=0.25,high=1.75,period=20000");
    WorkloadSpec c;
    c.kind = WorkloadKind::Churn;
    EXPECT_EQ(c.name(), "churn:frames=1,maxvms=5,attack=0");
}

TEST(WorkloadSpec, BareKindTakesDefaults)
{
    const auto spec = WorkloadSpec::parse("bursty");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->kind, WorkloadKind::Bursty);
    EXPECT_DOUBLE_EQ(spec->burstOn, 0.002);
    EXPECT_DOUBLE_EQ(spec->burstOff, 0.01);
    EXPECT_DOUBLE_EQ(spec->burstGain, 4.0);

    const auto partial = WorkloadSpec::parse("bursty:gain=8");
    ASSERT_TRUE(partial.has_value());
    EXPECT_DOUBLE_EQ(partial->burstGain, 8.0);
    EXPECT_DOUBLE_EQ(partial->burstOn, 0.002);
}

TEST(WorkloadSpec, MalformedInputIsDiagnosedNotFatal)
{
    std::string err;
    EXPECT_FALSE(WorkloadSpec::parse("", &err).has_value());
    EXPECT_EQ(err, "bad workload '': want kind or kind:k=v[,k=v...]");

    EXPECT_FALSE(WorkloadSpec::parse("spiky:x=1", &err).has_value());
    EXPECT_EQ(err,
              "unknown workload kind 'spiky'; valid: steady bursty ramp "
              "trace churn");

    EXPECT_FALSE(WorkloadSpec::parse("bursty:period=5", &err).has_value());
    EXPECT_EQ(err, "unknown workload parameter 'period' for kind 'bursty'");

    EXPECT_FALSE(WorkloadSpec::parse("bursty:on=zap", &err).has_value());
    EXPECT_EQ(err, "bad workload parameter 'on=zap'");

    EXPECT_FALSE(WorkloadSpec::parse("steady:x=1", &err).has_value());
    EXPECT_EQ(err, "unknown workload parameter 'x' for kind 'steady'");
}

TEST(WorkloadSpec, SemanticBoundsAreEnforced)
{
    std::string err;
    EXPECT_FALSE(WorkloadSpec::parse("bursty:on=0", &err).has_value());
    EXPECT_EQ(err, "bad workload 'bursty:on=0': on must be in (0, 1]");

    EXPECT_FALSE(WorkloadSpec::parse("bursty:gain=-1", &err).has_value());
    EXPECT_EQ(err, "bad workload 'bursty:gain=-1': gain must be > 0");

    EXPECT_FALSE(
        WorkloadSpec::parse("ramp:low=2,high=1", &err).has_value());
    EXPECT_EQ(err, "bad workload 'ramp:low=2,high=1': high must be >= low");

    EXPECT_FALSE(WorkloadSpec::parse("ramp:period=1", &err).has_value());
    EXPECT_EQ(err, "bad workload 'ramp:period=1': period must be >= 2");

    EXPECT_FALSE(WorkloadSpec::parse("trace:inflate=0.5", &err).has_value());
    EXPECT_EQ(err, "bad workload 'trace:inflate=0.5': path is required");

    EXPECT_FALSE(
        WorkloadSpec::parse("trace:path=a,inflate=1.5", &err).has_value());
    EXPECT_EQ(err, "bad workload 'trace:path=a,inflate=1.5': inflate must "
                   "be in (0, 1]");

    EXPECT_FALSE(WorkloadSpec::parse("trace:path=a,begin=9,end=4", &err)
                     .has_value());
    EXPECT_EQ(err, "bad workload 'trace:path=a,begin=9,end=4': end must "
                   "be > begin");

    EXPECT_FALSE(
        WorkloadSpec::parse("trace:path=a,loop=1", &err).has_value());
    EXPECT_EQ(err,
              "bad workload 'trace:path=a,loop=1': loop=1 needs a finite "
              "end=");

    EXPECT_FALSE(WorkloadSpec::parse("churn:frames=0", &err).has_value());
    EXPECT_EQ(err, "bad workload parameter 'frames=0'");
}

TEST(WorkloadSpec, ModulatedPredicateMatchesKinds)
{
    WorkloadSpec spec;
    for (auto kind :
         {WorkloadKind::Bursty, WorkloadKind::Ramp}) {
        spec.kind = kind;
        EXPECT_TRUE(spec.modulated()) << workloadKindName(kind);
    }
    for (auto kind : {WorkloadKind::Steady, WorkloadKind::Trace,
                      WorkloadKind::Churn}) {
        spec.kind = kind;
        EXPECT_FALSE(spec.modulated()) << workloadKindName(kind);
    }
}

TEST(WorkloadSpec, KeyWordsSeparateKindsAndParameters)
{
    // Steady contributes exactly one tag word (the seed-mix contract:
    // steady cells skip the mix entirely, see SweepSpec::cellSeed).
    EXPECT_EQ(keyWords(WorkloadSpec{}).size(), 1u);

    WorkloadSpec a;
    a.kind = WorkloadKind::Bursty;
    WorkloadSpec b = a;
    b.burstGain = 5.0;
    EXPECT_NE(keyWords(a), keyWords(b));

    WorkloadSpec t1;
    t1.kind = WorkloadKind::Trace;
    t1.tracePath = "a.csv";
    WorkloadSpec t2 = t1;
    t2.tracePath = "b.csv";
    EXPECT_NE(keyWords(t1), keyWords(t2));
    WorkloadSpec t3 = t1;
    t3.inflate = 0.5;
    EXPECT_NE(keyWords(t1), keyWords(t3));

    // Same spec -> same words, and distinct kinds never share a prefix
    // tag.
    EXPECT_EQ(keyWords(a), keyWords(WorkloadSpec{a}));
    WorkloadSpec ramp;
    ramp.kind = WorkloadKind::Ramp;
    EXPECT_NE(keyWords(a).front(), keyWords(ramp).front());
}

} // namespace
} // namespace taqos
