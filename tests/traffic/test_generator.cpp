#include <gtest/gtest.h>

#include "noc/metrics.h"
#include "traffic/generator.h"

namespace taqos {
namespace {

struct GenHarness {
    GenHarness(TrafficConfig t, int nodes = 8, int perNode = 8)
        : metrics(nodes * perNode)
    {
        col.numNodes = nodes;
        col.injectorsPerNode = perNode;
        col.canonicalize();
        injectors.resize(static_cast<std::size_t>(col.numFlows()));
        for (FlowId f = 0; f < col.numFlows(); ++f)
            injectors[static_cast<std::size_t>(f)].flow = f;
        gen = std::make_unique<TrafficGenerator>(col, t);
    }

    void run(Cycle cycles)
    {
        for (Cycle c = 0; c < cycles; ++c)
            gen->tick(c, pool, injectors, metrics);
    }

    ColumnConfig col;
    PacketPool pool;
    std::vector<InjectorQueue> injectors;
    SimMetrics metrics;
    std::unique_ptr<TrafficGenerator> gen;
};

TEST(Generator, RateAccuracy)
{
    TrafficConfig t;
    t.injectionRate = 0.10;
    t.maxQueueDepth = 1u << 20;
    GenHarness h(t);
    h.run(50000);
    const double flitsPerCyclePerInj =
        static_cast<double>(h.metrics.generatedFlits) / 50000.0 / 64.0;
    EXPECT_NEAR(flitsPerCyclePerInj, 0.10, 0.01);
}

TEST(Generator, PacketSizeMix)
{
    TrafficConfig t;
    t.injectionRate = 0.10;
    t.maxQueueDepth = 1u << 20;
    GenHarness h(t);
    h.run(20000);
    // 50/50 short/long: mean packet size 2.5 flits.
    const double mean = static_cast<double>(h.metrics.generatedFlits) /
                        static_cast<double>(h.metrics.generatedPackets);
    EXPECT_NEAR(mean, 2.5, 0.1);
}

TEST(Generator, HotspotDestinations)
{
    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.hotspotNode = 3;
    GenHarness h(t);
    h.run(2000);
    for (const auto &inj : h.injectors)
        for (const auto *pkt : inj.queue())
            EXPECT_EQ(pkt->dst, 3);
}

TEST(Generator, TornadoDestinations)
{
    TrafficConfig t;
    t.pattern = TrafficPattern::Tornado;
    GenHarness h(t);
    h.run(2000);
    for (const auto &inj : h.injectors) {
        const NodeId src = h.col.nodeOfFlow(inj.flow);
        for (const auto *pkt : inj.queue())
            EXPECT_EQ(pkt->dst, (src + 4) % 8);
    }
}

TEST(Generator, UniformExcludesSelfAndCoversAll)
{
    TrafficConfig t;
    t.pattern = TrafficPattern::UniformRandom;
    t.injectionRate = 0.2;
    t.maxQueueDepth = 1u << 20;
    GenHarness h(t);
    h.run(20000);
    std::vector<std::set<NodeId>> dests(8);
    for (const auto &inj : h.injectors) {
        const NodeId src = h.col.nodeOfFlow(inj.flow);
        for (const auto *pkt : inj.queue()) {
            EXPECT_NE(pkt->dst, src);
            dests[static_cast<std::size_t>(src)].insert(pkt->dst);
        }
    }
    for (NodeId n = 0; n < 8; ++n)
        EXPECT_EQ(dests[static_cast<std::size_t>(n)].size(), 7u);
}

TEST(Generator, ActiveFlowMaskAndPerFlowRates)
{
    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.activeFlows.assign(64, false);
    t.activeFlows[5] = true;
    t.flowRates.assign(64, -1.0);
    t.flowRates[5] = 0.2;
    t.maxQueueDepth = 1u << 20;
    GenHarness h(t);
    h.run(20000);
    for (const auto &inj : h.injectors) {
        if (inj.flow == 5)
            EXPECT_GT(inj.queue().size(), 0u);
        else
            EXPECT_EQ(inj.queue().size(), 0u);
    }
    const double rate =
        static_cast<double>(h.metrics.generatedFlits) / 20000.0;
    EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(Generator, GenUntilStopsGeneration)
{
    TrafficConfig t;
    t.injectionRate = 0.1;
    t.genUntil = 1000;
    t.maxQueueDepth = 1u << 20;
    GenHarness h(t);
    h.run(5000);
    const auto after1k = h.metrics.generatedPackets;
    EXPECT_GT(after1k, 0u);
    h.run(5000); // cycles restart at 0 in this harness; use a fresh one
    GenHarness h2(t);
    for (Cycle c = 0; c < 5000; ++c)
        h2.gen->tick(c, h2.pool, h2.injectors, h2.metrics);
    GenHarness h3(t);
    for (Cycle c = 0; c < 1000; ++c)
        h3.gen->tick(c, h3.pool, h3.injectors, h3.metrics);
    EXPECT_EQ(h2.metrics.generatedPackets, h3.metrics.generatedPackets);
}

TEST(Generator, QueueDepthSuppression)
{
    TrafficConfig t;
    t.injectionRate = 0.5;
    t.maxQueueDepth = 10;
    GenHarness h(t);
    h.run(10000);
    for (const auto &inj : h.injectors)
        EXPECT_LE(inj.queue().size(), 10u);
    EXPECT_GT(h.gen->suppressed(), 0u);
}

TEST(Generator, DeterministicAcrossRuns)
{
    TrafficConfig t;
    t.injectionRate = 0.08;
    t.seed = 777;
    GenHarness a(t), b(t);
    a.run(5000);
    b.run(5000);
    ASSERT_EQ(a.metrics.generatedPackets, b.metrics.generatedPackets);
    for (FlowId f = 0; f < 64; ++f) {
        const auto &qa = a.injectors[static_cast<std::size_t>(f)].queue();
        const auto &qb = b.injectors[static_cast<std::size_t>(f)].queue();
        ASSERT_EQ(qa.size(), qb.size());
        for (std::size_t i = 0; i < qa.size(); ++i) {
            EXPECT_EQ(qa[i]->dst, qb[i]->dst);
            EXPECT_EQ(qa[i]->sizeFlits, qb[i]->sizeFlits);
            EXPECT_EQ(qa[i]->genCycle, qb[i]->genCycle);
        }
    }
}

TEST(Generator, SeedChangesTraffic)
{
    TrafficConfig t;
    t.injectionRate = 0.08;
    t.seed = 1;
    GenHarness a(t);
    t.seed = 2;
    GenHarness b(t);
    a.run(5000);
    b.run(5000);
    // Statistically similar volume but different sequences.
    EXPECT_NEAR(static_cast<double>(a.metrics.generatedPackets),
                static_cast<double>(b.metrics.generatedPackets),
                0.2 * static_cast<double>(a.metrics.generatedPackets));
}

TEST(Generator, MeasuredFlagFollowsWindow)
{
    TrafficConfig t;
    t.injectionRate = 0.2;
    t.maxQueueDepth = 1u << 20;
    GenHarness h(t);
    h.metrics.measureStart = 1000;
    h.metrics.measureEnd = 2000;
    h.run(3000);
    for (const auto &inj : h.injectors) {
        for (const auto *pkt : inj.queue()) {
            EXPECT_EQ(pkt->measured,
                      pkt->genCycle >= 1000 && pkt->genCycle < 2000);
        }
    }
    EXPECT_GT(h.metrics.measuredGenerated, 0u);
}

} // namespace
} // namespace taqos
