/// The dynamic-load machinery behind WorkloadSpec: the ON/OFF Markov
/// modulator (duty cycle, determinism, checkpoint words), the diurnal
/// triangle ramp, the deterministic trace-inflation + window transform
/// (thinning at x0.5 is a strict subset of x1), and the
/// makeTrafficSource factory that every embedding routes through.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "exp/json_writer.h"
#include "traffic/dynamic.h"
#include "traffic/generator.h"
#include "traffic/trace.h"

namespace taqos {
namespace {

WorkloadSpec
burstySpec(double on = 0.01, double off = 0.01, double gain = 4.0)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Bursty;
    spec.burstOn = on;
    spec.burstOff = off;
    spec.burstGain = gain;
    return spec;
}

/// Each kept entry as a comparable tuple (the transform may rebase
/// cycles, so identity is the full entry, not the index).
std::set<std::tuple<Cycle, FlowId, NodeId, int>>
entrySet(const TrafficTrace &trace)
{
    std::set<std::tuple<Cycle, FlowId, NodeId, int>> out;
    for (const auto &e : trace.entries())
        out.insert({e.cycle, e.flow, e.dst, e.sizeFlits});
    return out;
}

TEST(OnOffModulator, DutyCycleMatchesStationaryDistribution)
{
    // on == off -> the chain spends half its time ON in steady state.
    const int flows = 64;
    OnOffModulator mod(burstySpec(0.01, 0.01), flows, 42);
    std::uint64_t onCycles = 0;
    const int cycles = 50000;
    for (int c = 0; c < cycles; ++c) {
        mod.advance(static_cast<Cycle>(c));
        for (FlowId f = 0; f < flows; ++f)
            onCycles += mod.onState(f) ? 1 : 0;
    }
    const double duty =
        static_cast<double>(onCycles) / (static_cast<double>(cycles) * flows);
    EXPECT_NEAR(duty, 0.5, 0.05);
}

TEST(OnOffModulator, ScaleIsGainOnAndZeroOff)
{
    const WorkloadSpec spec = burstySpec(0.05, 0.05, 6.0);
    OnOffModulator mod(spec, 16, 7);
    for (int c = 0; c < 2000; ++c) {
        mod.advance(static_cast<Cycle>(c));
        for (FlowId f = 0; f < 16; ++f) {
            const double s = mod.scaleOf(f);
            EXPECT_DOUBLE_EQ(s, mod.onState(f) ? 6.0 : 0.0);
        }
    }
}

TEST(OnOffModulator, IndependentStreamsPerFlowAndSeed)
{
    // Same seed -> same trajectory; different seed -> different one.
    OnOffModulator a(burstySpec(), 32, 1);
    OnOffModulator b(burstySpec(), 32, 1);
    OnOffModulator c(burstySpec(), 32, 2);
    bool differs = false;
    for (int cyc = 0; cyc < 5000; ++cyc) {
        a.advance(static_cast<Cycle>(cyc));
        b.advance(static_cast<Cycle>(cyc));
        c.advance(static_cast<Cycle>(cyc));
        for (FlowId f = 0; f < 32; ++f) {
            ASSERT_EQ(a.onState(f), b.onState(f));
            differs = differs || a.onState(f) != c.onState(f);
        }
    }
    EXPECT_TRUE(differs);
}

TEST(OnOffModulator, PackUnpackResumesBitIdentically)
{
    OnOffModulator live(burstySpec(0.004, 0.02, 3.0), 48, 99);
    for (int c = 0; c < 1234; ++c)
        live.advance(static_cast<Cycle>(c));
    const auto words = live.packState();
    EXPECT_FALSE(words.empty());

    OnOffModulator resumed(burstySpec(0.004, 0.02, 3.0), 48, 99);
    resumed.unpackState(words);
    for (int c = 1234; c < 4000; ++c) {
        live.advance(static_cast<Cycle>(c));
        resumed.advance(static_cast<Cycle>(c));
        for (FlowId f = 0; f < 48; ++f)
            ASSERT_EQ(live.onState(f), resumed.onState(f))
                << "cycle " << c << " flow " << f;
    }
}

TEST(RampModulator, TriangleWaveIsBoundedAndSymmetric)
{
    WorkloadSpec spec;
    spec.kind = WorkloadKind::Ramp;
    spec.rampLow = 0.2;
    spec.rampHigh = 1.8;
    spec.rampPeriod = 1000;

    EXPECT_DOUBLE_EQ(RampModulator::scaleAt(spec, 0), 0.2);
    EXPECT_DOUBLE_EQ(RampModulator::scaleAt(spec, 500), 1.8);
    EXPECT_DOUBLE_EQ(RampModulator::scaleAt(spec, 1000), 0.2);
    for (Cycle c = 0; c <= 3000; ++c) {
        const double s = RampModulator::scaleAt(spec, c);
        ASSERT_GE(s, 0.2);
        ASSERT_LE(s, 1.8);
        // Periodic, and the falling half mirrors the rising half.
        ASSERT_DOUBLE_EQ(s, RampModulator::scaleAt(spec, c + 1000));
    }
    EXPECT_DOUBLE_EQ(RampModulator::scaleAt(spec, 250),
                     RampModulator::scaleAt(spec, 750));

    RampModulator mod(spec);
    for (Cycle c = 0; c < 2500; c += 7) {
        mod.advance(c);
        EXPECT_DOUBLE_EQ(mod.scaleOf(0), RampModulator::scaleAt(spec, c));
        EXPECT_DOUBLE_EQ(mod.scaleOf(63), mod.scaleOf(0));
    }
    // Stateless: nothing to checkpoint.
    EXPECT_TRUE(mod.packState().empty());
}

TEST(MakeRateModulator, OnlyModulatedKindsGetOne)
{
    WorkloadSpec spec;
    EXPECT_EQ(makeRateModulator(spec, 8, 1), nullptr);
    spec.kind = WorkloadKind::Bursty;
    EXPECT_NE(makeRateModulator(spec, 8, 1), nullptr);
    spec.kind = WorkloadKind::Ramp;
    EXPECT_NE(makeRateModulator(spec, 8, 1), nullptr);
    spec.kind = WorkloadKind::Churn;
    EXPECT_EQ(makeRateModulator(spec, 8, 1), nullptr);
}

TEST(ReplayWindow, ClipsAndRebasesToCycleZero)
{
    TrafficTrace trace;
    for (Cycle c = 0; c < 100; ++c)
        trace.append(TraceEntry{c, static_cast<FlowId>(c % 64),
                                static_cast<NodeId>(c % 8), 1});

    WorkloadSpec spec;
    spec.kind = WorkloadKind::Trace;
    spec.tracePath = "mem";
    spec.windowBegin = 10;
    spec.windowEnd = 20;

    const TrafficTrace windowed = applyReplayWindow(trace, spec);
    ASSERT_EQ(windowed.size(), 10u);
    for (std::size_t i = 0; i < windowed.size(); ++i) {
        EXPECT_EQ(windowed.entries()[i].cycle, static_cast<Cycle>(i));
        EXPECT_EQ(windowed.entries()[i].flow,
                  static_cast<FlowId>((i + 10) % 64));
    }
}

TEST(ReplayWindow, InflationIsDeterministicMonotoneThinning)
{
    TrafficTrace trace;
    for (Cycle c = 0; c < 4000; ++c)
        trace.append(TraceEntry{c, static_cast<FlowId>(c % 64),
                                static_cast<NodeId>(c % 8),
                                1 + static_cast<int>(c % 4)});

    WorkloadSpec spec;
    spec.kind = WorkloadKind::Trace;
    spec.tracePath = "mem";

    spec.inflate = 1.0;
    const auto full = entrySet(applyReplayWindow(trace, spec));
    EXPECT_EQ(full.size(), 4000u); // x1 keeps everything

    spec.inflate = 0.5;
    const auto half = entrySet(applyReplayWindow(trace, spec));
    spec.inflate = 0.25;
    const auto quarter = entrySet(applyReplayWindow(trace, spec));

    // Deterministic: the same spec thins to the same set every time.
    spec.inflate = 0.5;
    EXPECT_EQ(half, entrySet(applyReplayWindow(trace, spec)));

    // Thinning rate tracks the inflation factor.
    EXPECT_NEAR(static_cast<double>(half.size()), 2000.0, 200.0);
    EXPECT_NEAR(static_cast<double>(quarter.size()), 1000.0, 150.0);

    // Monotone: a lower factor keeps a strict subset of a higher one.
    EXPECT_TRUE(std::includes(full.begin(), full.end(), half.begin(),
                              half.end()));
    EXPECT_TRUE(std::includes(half.begin(), half.end(), quarter.begin(),
                              quarter.end()));
    EXPECT_LT(quarter.size(), half.size());
    EXPECT_LT(half.size(), full.size());
}

TEST(MakeTrafficSource, RoutesEveryKindToItsSource)
{
    ColumnConfig col;
    col.canonicalize();
    TrafficConfig traffic;
    traffic.injectionRate = 0.05;

    WorkloadSpec steady;
    auto src = makeTrafficSource(steady, col, traffic);
    ASSERT_NE(src, nullptr);
    auto *gen = dynamic_cast<TrafficGenerator *>(src.get());
    ASSERT_NE(gen, nullptr);
    EXPECT_EQ(gen->modulator(), nullptr);

    auto burstySrc = makeTrafficSource(burstySpec(), col, traffic);
    auto *burstyGen = dynamic_cast<TrafficGenerator *>(burstySrc.get());
    ASSERT_NE(burstyGen, nullptr);
    EXPECT_NE(burstyGen->modulator(), nullptr);

    // Churn cells keep a plain generator (the driver reshapes it from
    // outside at frame boundaries).
    WorkloadSpec churn;
    churn.kind = WorkloadKind::Churn;
    auto churnSrc = makeTrafficSource(churn, col, traffic);
    auto *churnGen = dynamic_cast<TrafficGenerator *>(churnSrc.get());
    ASSERT_NE(churnGen, nullptr);
    EXPECT_EQ(churnGen->modulator(), nullptr);

    const std::string path = ::testing::TempDir() + "dyn_factory.csv";
    const TrafficTrace recorded = TrafficTrace::record(col, traffic, 2000);
    ASSERT_TRUE(writeTextFile(path, recorded.toCsv()));
    WorkloadSpec trace;
    trace.kind = WorkloadKind::Trace;
    trace.tracePath = path;
    std::string err;
    auto traceSrc = makeTrafficSource(trace, col, traffic, &err);
    ASSERT_NE(traceSrc, nullptr) << err;
    EXPECT_NE(dynamic_cast<TraceReplayer *>(traceSrc.get()), nullptr);
}

TEST(MakeTrafficSource, TraceErrorsAreDiagnosed)
{
    ColumnConfig col;
    col.canonicalize();
    TrafficConfig traffic;

    WorkloadSpec spec;
    spec.kind = WorkloadKind::Trace;
    spec.tracePath = ::testing::TempDir() + "no_such_trace.csv";
    std::string err;
    EXPECT_EQ(makeTrafficSource(spec, col, traffic, &err), nullptr);
    EXPECT_EQ(err, spec.tracePath + ": cannot open trace file");

    const std::string bad = ::testing::TempDir() + "dyn_bad_trace.csv";
    ASSERT_TRUE(writeTextFile(bad, "cycle,flow,dst,size\n5,x,0,1\n"));
    spec.tracePath = bad;
    EXPECT_EQ(makeTrafficSource(spec, col, traffic, &err), nullptr);
    EXPECT_EQ(err, bad + ": trace csv line 2: bad flow 'x'");
}

} // namespace
} // namespace taqos
