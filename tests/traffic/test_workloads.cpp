#include <gtest/gtest.h>

#include <set>

#include "traffic/workloads.h"

namespace taqos {
namespace {

ColumnConfig
defaultCol()
{
    ColumnConfig col;
    col.canonicalize();
    return col;
}

TEST(Workloads, HotspotAllActivatesEveryFlow)
{
    const ColumnConfig col = defaultCol();
    const TrafficConfig t = makeHotspotAll(col, 0.05, 0);
    EXPECT_EQ(t.pattern, TrafficPattern::Hotspot);
    EXPECT_EQ(t.hotspotNode, 0);
    EXPECT_TRUE(t.activeFlows.empty()); // empty mask = all active
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        EXPECT_TRUE(t.flowActive(f));
        EXPECT_DOUBLE_EQ(t.rateOf(f), 0.05);
    }
}

TEST(Workloads, W1OnlyTerminalInjectors)
{
    const ColumnConfig col = defaultCol();
    const TrafficConfig t = makeWorkload1(col);
    int active = 0;
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        if (!t.flowActive(f))
            continue;
        ++active;
        EXPECT_EQ(f % col.injectorsPerNode, 0)
            << "only terminal injectors may be active";
    }
    EXPECT_EQ(active, 8);
}

TEST(Workloads, W1RatesMatchPaperEnvelope)
{
    const auto &rates = workload1Rates();
    ASSERT_EQ(rates.size(), 8u);
    double sum = 0.0;
    for (double r : rates) {
        EXPECT_GE(r, 0.05);
        EXPECT_LE(r, 0.20);
        sum += r;
    }
    // "the average is around 14%" and offered load exceeds the 12.5%
    // saturation share.
    EXPECT_NEAR(sum / 8.0, 0.14, 0.012);
    EXPECT_GT(sum, 1.0);
}

TEST(Workloads, W1LowRateFarFromHotspot)
{
    // The preemption cascade needs rare high-priority packets crossing
    // the backlogged chain: the farthest node gets the lowest rate.
    const auto &rates = workload1Rates();
    EXPECT_DOUBLE_EQ(rates.back(), 0.05);
    EXPECT_DOUBLE_EQ(rates.front(), 0.20);
}

TEST(Workloads, W2NineSources)
{
    const ColumnConfig col = defaultCol();
    const TrafficConfig t = makeWorkload2(col);
    std::set<FlowId> active;
    for (FlowId f = 0; f < col.numFlows(); ++f)
        if (t.flowActive(f))
            active.insert(f);
    ASSERT_EQ(active.size(), 9u);
    // All eight injectors of node 7.
    for (int k = 0; k < 8; ++k)
        EXPECT_TRUE(active.count(col.flowOf(7, k)));
    // Plus one injector at node 6.
    EXPECT_TRUE(active.count(col.flowOf(6, 0)));
}

TEST(Workloads, W2RatesWithinRange)
{
    const auto &rates = workload2Rates();
    ASSERT_EQ(rates.size(), 9u);
    for (double r : rates) {
        EXPECT_GE(r, 0.05);
        EXPECT_LE(r, 0.20);
    }
}

TEST(Workloads, InactiveFlowsHaveNoRate)
{
    const ColumnConfig col = defaultCol();
    const TrafficConfig t = makeWorkload1(col);
    EXPECT_FALSE(t.flowActive(col.flowOf(3, 2)));
}

TEST(Patterns, NamesRoundTrip)
{
    for (auto p : {TrafficPattern::UniformRandom, TrafficPattern::Tornado,
                   TrafficPattern::Hotspot}) {
        const auto parsed = parsePattern(patternName(p));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_EQ(parsePattern("UR"), TrafficPattern::UniformRandom);
    EXPECT_FALSE(parsePattern("bitrev").has_value());
}

TEST(Patterns, MeanPacketFlits)
{
    TrafficConfig t;
    EXPECT_DOUBLE_EQ(t.meanPacketFlits(), 2.5);
    t.shortPacketProb = 1.0;
    EXPECT_DOUBLE_EQ(t.meanPacketFlits(), 1.0);
    t.shortPacketProb = 0.0;
    EXPECT_DOUBLE_EQ(t.meanPacketFlits(), 4.0);
}

} // namespace
} // namespace taqos
