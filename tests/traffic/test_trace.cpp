#include <gtest/gtest.h>

#include "sim/column_sim.h"
#include "traffic/trace.h"

namespace taqos {
namespace {

ColumnConfig
defaultCol()
{
    ColumnConfig col;
    col.canonicalize();
    return col;
}

TEST(Trace, RecordMatchesGeneratorVolume)
{
    const ColumnConfig col = defaultCol();
    TrafficConfig t;
    t.injectionRate = 0.05;
    t.seed = 99;
    const TrafficTrace trace = TrafficTrace::record(col, t, 10000);
    EXPECT_GT(trace.size(), 0u);
    // ~64 injectors * 0.05/2.5 packets/cycle * 10000 cycles.
    EXPECT_NEAR(static_cast<double>(trace.size()), 64 * 0.02 * 10000,
                0.1 * 64 * 0.02 * 10000);
    EXPECT_LE(trace.lastCycle(), 9999u);
}

TEST(Trace, EntriesOrderedAndValid)
{
    const ColumnConfig col = defaultCol();
    TrafficConfig t;
    t.pattern = TrafficPattern::Tornado;
    t.injectionRate = 0.04;
    const TrafficTrace trace = TrafficTrace::record(col, t, 5000);
    Cycle prev = 0;
    for (const auto &e : trace.entries()) {
        EXPECT_GE(e.cycle, prev);
        prev = e.cycle;
        EXPECT_GE(e.flow, 0);
        EXPECT_LT(e.flow, 64);
        EXPECT_EQ(e.dst, (col.nodeOfFlow(e.flow) + 4) % 8);
        EXPECT_TRUE(e.sizeFlits == 1 || e.sizeFlits == 4);
    }
}

TEST(Trace, CsvRoundTrip)
{
    TrafficTrace trace;
    trace.append(TraceEntry{0, 3, 5, 4});
    trace.append(TraceEntry{7, 60, 0, 1});
    trace.append(TraceEntry{7, 12, 2, 4});
    const auto parsed = TrafficTrace::fromCsv(trace.toCsv());
    ASSERT_TRUE(parsed.has_value());
    const TrafficTrace &back = *parsed;
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back.entries()[0].cycle, 0u);
    EXPECT_EQ(back.entries()[1].flow, 60);
    EXPECT_EQ(back.entries()[2].dst, 2);
    EXPECT_EQ(back.entries()[2].sizeFlits, 4);
    EXPECT_EQ(back.totalFlits(), 9u);
}

TEST(Trace, ReplayReproducesGeneratorRunExactly)
{
    const ColumnConfig col = defaultCol();
    TrafficConfig t;
    t.injectionRate = 0.05;
    t.seed = 1234;
    t.genUntil = 8000;

    // Live generator run.
    ColumnSim live(col, t);
    live.setMeasureWindow(0, 8000);
    const Cycle doneLive = live.runUntilDrained(50000, 8000);

    // Record the same traffic, replay it through a fresh sim.
    const TrafficTrace trace = TrafficTrace::record(col, t, 8000);
    ColumnSim replay(col, trace);
    replay.setMeasureWindow(0, 8000);
    const Cycle doneReplay = replay.runUntilDrained(50000, 8000);

    EXPECT_EQ(doneLive, doneReplay);
    EXPECT_EQ(live.metrics().generatedPackets,
              replay.metrics().generatedPackets);
    EXPECT_EQ(live.metrics().deliveredFlits,
              replay.metrics().deliveredFlits);
    EXPECT_DOUBLE_EQ(live.metrics().latency.mean(),
                     replay.metrics().latency.mean());
    for (FlowId f = 0; f < col.numFlows(); ++f)
        EXPECT_EQ(live.metrics().flowFlits[static_cast<std::size_t>(f)],
                  replay.metrics().flowFlits[static_cast<std::size_t>(f)]);
}

TEST(Trace, ReplayAcrossTopologies)
{
    // One recorded workload, three fabrics: deliveries must be complete
    // everywhere (the workload is fabric-independent).
    ColumnConfig col = defaultCol();
    TrafficConfig t;
    t.injectionRate = 0.03;
    const TrafficTrace trace = TrafficTrace::record(col, t, 5000);
    for (auto kind :
         {TopologyKind::MeshX1, TopologyKind::Mecs, TopologyKind::Dps}) {
        col.topology = kind;
        ColumnSim sim(col, trace);
        const Cycle done = sim.runUntilDrained(60000, 5000);
        ASSERT_NE(done, kNoCycle) << topologyName(kind);
        EXPECT_EQ(sim.metrics().deliveredPackets, trace.size());
    }
}

TEST(Trace, ReplayerExhaustion)
{
    const ColumnConfig col = defaultCol();
    TrafficTrace trace;
    trace.append(TraceEntry{2, 8, 0, 1});
    ColumnSim sim(col, trace);
    sim.run(100);
    EXPECT_EQ(sim.metrics().generatedPackets, 1u);
    EXPECT_EQ(sim.metrics().deliveredPackets, 1u);
}

TEST(Trace, EmptyCsv)
{
    const auto trace = TrafficTrace::fromCsv("cycle,flow,dst,size\n");
    ASSERT_TRUE(trace.has_value());
    EXPECT_EQ(trace->size(), 0u);
    EXPECT_EQ(trace->lastCycle(), 0u);
}

TEST(Trace, MalformedCsvIsDiagnosed)
{
    std::string err;
    // Wrong field count.
    EXPECT_FALSE(TrafficTrace::fromCsv("1,2,3\n", &err).has_value());
    EXPECT_EQ(err, "trace csv line 1: want 'cycle,flow,dst,size', got "
                   "'1,2,3'");
    // Non-numeric field (the old parser silently atoi'd this to 0).
    EXPECT_FALSE(
        TrafficTrace::fromCsv("cycle,flow,dst,size\n5,x,0,1\n", &err)
            .has_value());
    EXPECT_EQ(err, "trace csv line 2: bad flow 'x'");
    // Trailing garbage on a numeric field.
    EXPECT_FALSE(TrafficTrace::fromCsv("5,1,0,1junk\n", &err).has_value());
    EXPECT_EQ(err, "trace csv line 1: bad size '1junk'");
    // Out-of-order cycles (the ctor would have asserted; fromCsv
    // diagnoses instead).
    EXPECT_FALSE(
        TrafficTrace::fromCsv("9,1,0,1\n3,1,0,1\n", &err).has_value());
    EXPECT_EQ(err, "trace csv line 2: cycle 3 out of order (after 9)");
    // Zero-size packets are invalid.
    EXPECT_FALSE(TrafficTrace::fromCsv("5,1,0,0\n", &err).has_value());
    EXPECT_EQ(err, "trace csv line 1: bad size '0'");
}

} // namespace
} // namespace taqos
