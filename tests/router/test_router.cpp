/// Router arbitration, priority, and preemption mechanics, exercised on a
/// real column with hand-injected packets (the traffic generator is
/// silenced with a zero rate).
#include <gtest/gtest.h>

#include <map>

#include "sim/column_sim.h"

namespace taqos {
namespace {

TrafficConfig
silentTraffic()
{
    TrafficConfig t;
    t.injectionRate = 0.0;
    return t;
}

ColumnConfig
smallColumn(TopologyKind kind, QosMode mode = QosMode::Pvc)
{
    ColumnConfig col;
    col.topology = kind;
    col.mode = mode;
    return col;
}

/// Queue a fresh packet on `flow` towards `dst`.
NetPacket *
inject(ColumnSim &sim, FlowId flow, NodeId dst, int size = 1)
{
    NetPacket *pkt = sim.pool().alloc();
    pkt->flow = flow;
    pkt->src = sim.cfg().nodeOfFlow(flow);
    pkt->dst = dst;
    pkt->sizeFlits = size;
    pkt->genCycle = sim.now();
    pkt->queuedCycle = sim.now();
    sim.network().injector(flow).enqueue(pkt);
    return pkt;
}

Cycle
runUntilDelivered(ColumnSim &sim, const NetPacket *pkt, Cycle budget)
{
    const Cycle limit = sim.now() + budget;
    while (sim.now() < limit) {
        if (pkt->state == PacketState::Delivered)
            return pkt->deliverCycle;
        sim.step();
    }
    return kNoCycle;
}

TEST(Router, DeliversSinglePacket)
{
    for (auto kind : kAllTopologies) {
        ColumnSim sim(smallColumn(kind), silentTraffic());
        NetPacket *pkt = inject(sim, /*flow=*/8 * 6, /*dst=*/1, 4);
        EXPECT_NE(runUntilDelivered(sim, pkt, 200), kNoCycle)
            << topologyName(kind);
        sim.checkInvariants();
    }
}

TEST(Router, ZeroLoadLatencyOrdering)
{
    // A 4-flit packet over distance 5: MECS and DPS beat the mesh
    // (Sec. 5.2's router-delay argument).
    std::map<TopologyKind, Cycle> lat;
    for (auto kind : kAllTopologies) {
        ColumnSim sim(smallColumn(kind), silentTraffic());
        NetPacket *pkt = inject(sim, 8 * 7, /*dst=*/2, 4);
        const Cycle done = runUntilDelivered(sim, pkt, 300);
        ASSERT_NE(done, kNoCycle);
        lat[kind] = done;
    }
    EXPECT_LT(lat[TopologyKind::Mecs], lat[TopologyKind::MeshX1]);
    EXPECT_LT(lat[TopologyKind::Dps], lat[TopologyKind::MeshX1]);
    // Long transfers favour MECS over DPS (one express hop vs repeaters).
    EXPECT_LE(lat[TopologyKind::Mecs], lat[TopologyKind::Dps]);
}

TEST(Router, ShortTransfersFavourDps)
{
    // Adjacent-node transfer: DPS's shallow pipeline beats MECS's 3-stage
    // router.
    ColumnSim mecs(smallColumn(TopologyKind::Mecs), silentTraffic());
    NetPacket *a = inject(mecs, 8 * 3, 4, 1);
    const Cycle tMecs = runUntilDelivered(mecs, a, 100);

    ColumnSim dps(smallColumn(TopologyKind::Dps), silentTraffic());
    NetPacket *b = inject(dps, 8 * 3, 4, 1);
    const Cycle tDps = runUntilDelivered(dps, b, 100);

    ASSERT_NE(tMecs, kNoCycle);
    ASSERT_NE(tDps, kNoCycle);
    EXPECT_LT(tDps, tMecs);
}

TEST(Router, MecsLatencyGrowsSlowlyWithDistance)
{
    // Express channels: extra distance costs wire cycles only.
    Cycle prev = 0;
    for (NodeId dst = 1; dst <= 7; ++dst) {
        ColumnSim sim(smallColumn(TopologyKind::Mecs), silentTraffic());
        NetPacket *pkt = inject(sim, 0, dst, 1);
        const Cycle done = runUntilDelivered(sim, pkt, 100);
        ASSERT_NE(done, kNoCycle);
        if (dst > 1) {
            EXPECT_EQ(done - prev, 1u) << "dst " << dst;
        }
        prev = done;
    }
}

TEST(Router, PriorityArbitrationPicksLowCounterFlow)
{
    ColumnSim sim(smallColumn(TopologyKind::MeshX1), silentTraffic());
    const FlowId hog = 8 * 2 + 0;   // terminal injector of node 2
    const FlowId light = 8 * 2 + 1; // row injector of node 2 (east port)

    // Let the hog consume bandwidth first so its counters grow.
    for (int i = 0; i < 20; ++i)
        inject(sim, hog, 0, 4);
    sim.run(300);

    // Now race one packet from each; they share neither injection port
    // nor VC, so arbitration at the column output decides by priority.
    NetPacket *hogPkt = inject(sim, hog, 0, 4);
    NetPacket *lightPkt = inject(sim, light, 0, 4);
    Cycle hogDone = kNoCycle, lightDone = kNoCycle;
    for (int i = 0; i < 500; ++i) {
        sim.step();
        if (hogPkt->state == PacketState::Delivered && hogDone == kNoCycle)
            hogDone = hogPkt->deliverCycle;
        if (lightPkt->state == PacketState::Delivered &&
            lightDone == kNoCycle)
            lightDone = lightPkt->deliverCycle;
    }
    ASSERT_NE(hogDone, kNoCycle);
    ASSERT_NE(lightDone, kNoCycle);
    EXPECT_LT(lightDone, hogDone);
}

TEST(Router, KillPacketTearsDownChain)
{
    ColumnSim sim(smallColumn(TopologyKind::MeshX1), silentTraffic());
    NetPacket *pkt = inject(sim, 8 * 7, 0, 4);
    // Step until the packet is in flight and owns at least one VC.
    while (pkt->state != PacketState::InFlight || pkt->numLocs == 0)
        sim.step();
    TickContext ctx;
    ctx.now = sim.now();
    AckNetwork ack;
    SimMetrics metrics(64);
    ctx.ack = &ack;
    ctx.metrics = &metrics;

    sim.network().router(7)->killPacket(pkt, ctx);
    EXPECT_EQ(pkt->state, PacketState::Dropped);
    EXPECT_EQ(pkt->numLocs, 0);
    EXPECT_EQ(pkt->numXfers, 0);
    EXPECT_EQ(pkt->preemptions, 1);
    EXPECT_EQ(metrics.preemptionEvents, 1u);
    EXPECT_EQ(ack.pending(), 1u);
    sim.checkInvariants();
}

TEST(Router, NackedPacketRetransmitsAndDelivers)
{
    ColumnSim sim(smallColumn(TopologyKind::MeshX1), silentTraffic());
    NetPacket *pkt = inject(sim, 8 * 5, 0, 4);
    while (pkt->state != PacketState::InFlight || pkt->numLocs == 0)
        sim.step();
    // Kill through the real context so the NACK flows through the sim's
    // ACK network and the source retransmits.
    TickContext ctx;
    ctx.now = sim.now();
    SimMetrics metrics(64);
    ctx.metrics = &metrics;
    // Reuse the sim's internal ack network by dropping through a router
    // tick: simplest is to call killPacket with a scratch ack net and
    // then re-queue manually — instead exercise the public path:
    // preemption happens organically in the preemption tests; here we
    // verify the retransmission plumbing directly.
    pkt->state = PacketState::Dropped;
    for (int i = 0; i < pkt->numLocs; ++i) {
        const VcRef &loc = pkt->locs[static_cast<std::size_t>(i)];
        loc.port->vcs[static_cast<std::size_t>(loc.vc)].free(sim.now() + 1);
    }
    pkt->clearLocs();
    while (pkt->numXfers > 0)
        pkt->xfers[0]->cancelTransfer(sim.now());
    pkt->state = PacketState::Queued;
    pkt->queuedCycle = sim.now();
    sim.network().injector(pkt->flow).enqueueFront(pkt);
    EXPECT_NE(runUntilDelivered(sim, pkt, 300), kNoCycle);
    EXPECT_GE(pkt->attempt, 2);
}

TEST(Router, NoQosUsesRoundRobin)
{
    // Two injectors on the same port alternate under round-robin even if
    // one had consumed far more bandwidth before.
    ColumnSim sim(smallColumn(TopologyKind::MeshX1, QosMode::NoQos),
                  silentTraffic());
    const FlowId a = 8 * 4 + 1, b = 8 * 4 + 2; // same east row port
    for (int i = 0; i < 10; ++i) {
        inject(sim, a, 0, 1);
        inject(sim, b, 0, 1);
    }
    sim.run(600);
    // Both drained without starvation.
    EXPECT_TRUE(sim.network().injector(a).queue().empty());
    EXPECT_TRUE(sim.network().injector(b).queue().empty());
    sim.checkInvariants();
}

TEST(Router, WindowLimitsOutstanding)
{
    ColumnConfig col = smallColumn(TopologyKind::Mecs);
    col.pvc.windowLimit = 2;
    ColumnSim sim(col, silentTraffic());
    const FlowId f = 8 * 6;
    for (int i = 0; i < 10; ++i)
        inject(sim, f, 0, 4);
    for (int i = 0; i < 30; ++i) {
        sim.step();
        EXPECT_LE(sim.network().injector(f).outstanding, 2);
    }
    sim.run(1000);
    EXPECT_TRUE(sim.network().injector(f).queue().empty());
}

TEST(Router, FrameFlushClearsTables)
{
    ColumnConfig col = smallColumn(TopologyKind::MeshX1);
    col.pvc.frameLen = 500;
    ColumnSim sim(col, silentTraffic());
    const FlowId f = 8 * 3;
    for (int i = 0; i < 5; ++i)
        inject(sim, f, 0, 4);
    sim.run(400);
    Router *r = sim.network().router(3);
    bool charged = false;
    for (const auto &out : r->outputs())
        charged |= r->flowTable().countOf(out->tableIdx, f) > 0;
    EXPECT_TRUE(charged);
    sim.run(200); // crosses the 500-cycle frame boundary
    for (const auto &out : r->outputs())
        EXPECT_EQ(r->flowTable().countOf(out->tableIdx, f), 0u);
}

} // namespace
} // namespace taqos
