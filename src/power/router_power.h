/// \file router_power.h
/// Aggregates the SRAM / crossbar / wire models into per-router area and
/// per-event energy figures, given a structural description of the router.
/// This is the layer Figures 3 and 7 of the paper are computed from.
#pragma once

#include <string>
#include <vector>

#include "power/tech.h"

namespace taqos {

/// A group of identical input ports and their VC storage.
struct BufferGroup {
    int numPorts = 0;
    int vcsPerPort = 0;
    int flitsPerVc = 4;
};

/// Structural description of one shared-region router, sufficient for the
/// analytic area/energy models. Produced per topology by `src/topo`.
struct RouterGeometry {
    std::string name;

    /// Datapath width. The paper uses 16-byte links.
    int flitBits = 128;

    /// Column (network) input buffering — the topology-dependent part.
    std::vector<BufferGroup> columnBuffers;

    /// Row-input + terminal buffering, identical across all topologies
    /// (the dotted line in the paper's Figure 3).
    std::vector<BufferGroup> rowBuffers;

    /// Crossbar ports after input-arbiter sharing.
    int xbarInputs = 0;
    int xbarOutputs = 0;

    /// Extra input feed wire per traversal (um); models the long lines from
    /// the many MECS VC arrays to their shared switch port.
    double xbarInputFeedUm = 0.0;

    /// PVC flow state: one counter table per tracked output port.
    int flowTableFlows = 0;
    int flowTableOutputs = 0;
    int flowCounterBits = 24;
};

/// Router area split by component (mm^2).
struct AreaBreakdown {
    double columnBuffersMm2 = 0.0;
    double rowBuffersMm2 = 0.0;
    double xbarMm2 = 0.0;
    double flowStateMm2 = 0.0;

    double buffersMm2() const { return columnBuffersMm2 + rowBuffersMm2; }
    double totalMm2() const
    {
        return buffersMm2() + xbarMm2 + flowStateMm2;
    }
};

/// Per-event dynamic energies (pJ) for one router instance.
struct RouterEnergyProfile {
    double bufferWritePj = 0.0; ///< write one flit into a column VC
    double bufferReadPj = 0.0;  ///< read one flit out of a column VC
    double xbarPj = 0.0;        ///< one flit crossbar traversal
    double flowQueryPj = 0.0;   ///< read a flow-state entry
    double flowUpdatePj = 0.0;  ///< write back a flow-state entry
    double muxPj = 0.0;         ///< DPS intermediate 2:1 mux, per flit
};

/// Compute the silicon area of a router.
AreaBreakdown computeRouterArea(const RouterGeometry &geom,
                                const TechParams &tech);

/// Compute per-event energies for a router.
RouterEnergyProfile computeRouterEnergy(const RouterGeometry &geom,
                                        const TechParams &tech);

/// Total flits of column buffering described by a geometry.
int totalColumnBufferFlits(const RouterGeometry &geom);

} // namespace taqos
