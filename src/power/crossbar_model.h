/// \file crossbar_model.h
/// Orion-flavoured matrix-crossbar model. Area is proportional to the
/// product of input and output port counts (each port spans width * pitch
/// tracks); traversal energy follows the wire length a flit drives across
/// the switch, plus any input feed lines (the MECS penalty).
#pragma once

#include "power/tech.h"

namespace taqos {

class CrossbarModel {
  public:
    /// \param inputs  crossbar input ports (after input-arbiter sharing)
    /// \param outputs crossbar output ports
    /// \param widthBits datapath width (flit bits)
    /// \param inputFeedUm extra wire each flit drives to reach the switch
    ///        (long VC-array feed lines in a MECS router); 0 for compact
    ///        routers.
    CrossbarModel(int inputs, int outputs, int widthBits,
                  const TechParams &tech, double inputFeedUm = 0.0);

    /// Switch fabric area (mm^2).
    double areaMm2() const;

    /// Energy of one flit traversal (pJ), input feed included.
    double traversalEnergyPj() const;

    /// Side lengths of the switch (um) — also used to derive feed lengths.
    double inputSpanUm() const;
    double outputSpanUm() const;

    int inputs() const { return inputs_; }
    int outputs() const { return outputs_; }

  private:
    int inputs_;
    int outputs_;
    int widthBits_;
    TechParams tech_;
    double inputFeedUm_;
};

} // namespace taqos
