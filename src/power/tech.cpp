#include "power/tech.h"

namespace taqos {

double
TechParams::wireEnergyPerBitMmPj() const
{
    // 0.5 * C * V^2, scaled by activity; fF * V^2 -> fJ, /1000 -> pJ.
    return 0.5 * wireCapPerMmFf * vdd * vdd * activityFactor / 1000.0;
}

TechParams
tech32nm()
{
    return TechParams{};
}

} // namespace taqos
