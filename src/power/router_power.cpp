#include "power/router_power.h"

#include "common/assert.h"
#include "power/crossbar_model.h"
#include "power/sram_model.h"

namespace taqos {
namespace {

double
groupAreaMm2(const std::vector<BufferGroup> &groups, int flitBits,
             const TechParams &tech)
{
    double area = 0.0;
    for (const auto &g : groups) {
        const SramModel array(ArrayKind::RouterBuffer,
                              g.vcsPerPort * g.flitsPerVc, flitBits, tech);
        area += static_cast<double>(g.numPorts) * array.areaMm2();
    }
    return area;
}

/// Port-count-weighted average flit access energy over the column groups.
void
averageBufferEnergy(const RouterGeometry &geom, const TechParams &tech,
                    double &readPj, double &writePj)
{
    double read = 0.0;
    double write = 0.0;
    int ports = 0;
    for (const auto &g : geom.columnBuffers) {
        const SramModel array(ArrayKind::RouterBuffer,
                              g.vcsPerPort * g.flitsPerVc, geom.flitBits,
                              tech);
        read += g.numPorts * array.readEnergyPj();
        write += g.numPorts * array.writeEnergyPj();
        ports += g.numPorts;
    }
    if (ports == 0) {
        readPj = writePj = 0.0;
        return;
    }
    readPj = read / ports;
    writePj = write / ports;
}

} // namespace

int
totalColumnBufferFlits(const RouterGeometry &geom)
{
    int flits = 0;
    for (const auto &g : geom.columnBuffers)
        flits += g.numPorts * g.vcsPerPort * g.flitsPerVc;
    return flits;
}

AreaBreakdown
computeRouterArea(const RouterGeometry &geom, const TechParams &tech)
{
    TAQOS_ASSERT(geom.flitBits > 0, "geometry %s missing flit width",
                 geom.name.c_str());

    AreaBreakdown area;
    area.columnBuffersMm2 = groupAreaMm2(geom.columnBuffers, geom.flitBits,
                                         tech);
    area.rowBuffersMm2 = groupAreaMm2(geom.rowBuffers, geom.flitBits, tech);

    if (geom.xbarInputs > 0 && geom.xbarOutputs > 0) {
        const CrossbarModel xbar(geom.xbarInputs, geom.xbarOutputs,
                                 geom.flitBits, tech, geom.xbarInputFeedUm);
        area.xbarMm2 = xbar.areaMm2();
    }

    if (geom.flowTableFlows > 0 && geom.flowTableOutputs > 0) {
        const SramModel table(ArrayKind::DenseSram, geom.flowTableFlows,
                              geom.flowCounterBits, tech);
        area.flowStateMm2 = geom.flowTableOutputs * table.areaMm2();
    }
    return area;
}

RouterEnergyProfile
computeRouterEnergy(const RouterGeometry &geom, const TechParams &tech)
{
    RouterEnergyProfile e;
    averageBufferEnergy(geom, tech, e.bufferReadPj, e.bufferWritePj);

    if (geom.xbarInputs > 0 && geom.xbarOutputs > 0) {
        const CrossbarModel xbar(geom.xbarInputs, geom.xbarOutputs,
                                 geom.flitBits, tech, geom.xbarInputFeedUm);
        e.xbarPj = xbar.traversalEnergyPj();
    }

    if (geom.flowTableFlows > 0) {
        const SramModel table(ArrayKind::DenseSram, geom.flowTableFlows,
                              geom.flowCounterBits, tech);
        e.flowQueryPj = table.readEnergyPj();
        e.flowUpdatePj = table.writeEnergyPj();
    }

    e.muxPj = geom.flitBits * tech.muxEnergyPerBitPj;
    return e;
}

} // namespace taqos
