#include "power/sram_model.h"

#include <cmath>

#include "common/assert.h"

namespace taqos {

SramModel::SramModel(ArrayKind kind, int entries, int bitsPerEntry,
                     const TechParams &tech)
    : kind_(kind), entries_(entries), bitsPerEntry_(bitsPerEntry), tech_(tech)
{
    TAQOS_ASSERT(entries >= 0 && bitsPerEntry > 0,
                 "bad SRAM geometry: %d x %d", entries, bitsPerEntry);
}

double
SramModel::totalBits() const
{
    return static_cast<double>(entries_) * static_cast<double>(bitsPerEntry_);
}

double
SramModel::areaMm2() const
{
    const double bitArea = kind_ == ArrayKind::RouterBuffer
        ? tech_.bufferBitAreaUm2
        : tech_.sramBitAreaUm2 * tech_.sramPeripheryFactor;
    return totalBits() * bitArea * 1e-6;
}

double
SramModel::sizeScale() const
{
    // Bitline/wordline energy grows roughly with the square root of the
    // array capacity (CACTI's banked small-array regime).
    const double ratio = totalBits() / tech_.referenceArrayBits;
    return ratio <= 1.0 ? 1.0 : std::sqrt(ratio);
}

double
SramModel::readEnergyPj() const
{
    const double perBit = kind_ == ArrayKind::RouterBuffer
        ? tech_.bufferReadEnergyPerBitPj
        : tech_.sramReadEnergyPerBitPj;
    return static_cast<double>(bitsPerEntry_) * perBit * sizeScale();
}

double
SramModel::writeEnergyPj() const
{
    const double perBit = kind_ == ArrayKind::RouterBuffer
        ? tech_.bufferWriteEnergyPerBitPj
        : tech_.sramWriteEnergyPerBitPj;
    return static_cast<double>(bitsPerEntry_) * perBit * sizeScale();
}

} // namespace taqos
