/// \file tech.h
/// Process-technology parameters for the analytic area/energy models.
///
/// The paper evaluates at 32 nm with Vdd = 0.9 V using Orion 2.0 (crossbars,
/// wires) and a modified CACTI 6.0 (small SRAM arrays with NOC-router data
/// flow). Neither tool is redistributable here, so we provide analytic
/// models with ITRS-class 32 nm constants. The models take the same
/// structural inputs (port counts, VC counts, flit width, wire spans), which
/// is what determines the paper's *relative* orderings.
#pragma once

namespace taqos {

struct TechParams {
    /// Supply voltage (V).
    double vdd = 0.9;

    /// Raw 6T SRAM cell area (um^2 / bit) for dense arrays (flow tables).
    double sramBitAreaUm2 = 0.17;

    /// Multiplier covering decoders, sense amps, drivers for small arrays.
    double sramPeripheryFactor = 2.2;

    /// Effective area of NOC input-buffer storage (um^2 / bit). Router
    /// buffers are built from 2-ported register-file style cells with wide
    /// access and per-VC muxing, ~3x less dense than commodity SRAM.
    double bufferBitAreaUm2 = 1.2;

    /// SRAM dynamic energy (pJ / bit) for read / write of small arrays.
    double sramReadEnergyPerBitPj = 0.011;
    double sramWriteEnergyPerBitPj = 0.013;

    /// Buffer (register-file) dynamic energy (pJ / bit).
    double bufferReadEnergyPerBitPj = 0.016;
    double bufferWriteEnergyPerBitPj = 0.019;

    /// Array-size scaling: per-access energy grows with sqrt(capacity)
    /// relative to a reference array of this many bits (bitline length).
    double referenceArrayBits = 4096.0;

    /// Switched wire capacitance (fF / mm), repeated global wire.
    double wireCapPerMmFf = 250.0;

    /// Signal activity factor (fraction of bits toggling per flit).
    double activityFactor = 0.5;

    /// Crossbar track pitch (um) on intermediate metal.
    double wirePitchUm = 0.20;

    /// Energy of a 2:1 mux control + datapath per bit (pJ) — DPS
    /// intermediate hops.
    double muxEnergyPerBitPj = 0.0008;

    /// Energy per bit per mm of repeated wire (pJ), derived:
    /// 0.5 * C * V^2 * activity.
    double wireEnergyPerBitMmPj() const;
};

/// The paper's target process: 32 nm, 0.9 V.
TechParams tech32nm();

} // namespace taqos
