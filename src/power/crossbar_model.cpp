#include "power/crossbar_model.h"

#include "common/assert.h"
#include "power/wire_model.h"

namespace taqos {

CrossbarModel::CrossbarModel(int inputs, int outputs, int widthBits,
                             const TechParams &tech, double inputFeedUm)
    : inputs_(inputs), outputs_(outputs), widthBits_(widthBits), tech_(tech),
      inputFeedUm_(inputFeedUm)
{
    TAQOS_ASSERT(inputs > 0 && outputs > 0 && widthBits > 0,
                 "bad crossbar geometry %dx%d w=%d", inputs, outputs,
                 widthBits);
}

double
CrossbarModel::inputSpanUm() const
{
    return static_cast<double>(inputs_) * widthBits_ * tech_.wirePitchUm;
}

double
CrossbarModel::outputSpanUm() const
{
    return static_cast<double>(outputs_) * widthBits_ * tech_.wirePitchUm;
}

double
CrossbarModel::areaMm2() const
{
    // A matrix crossbar occupies inputSpan x outputSpan of dense tracks.
    return inputSpanUm() * outputSpanUm() * 1e-6;
}

double
CrossbarModel::traversalEnergyPj() const
{
    // A flit drives one full input row and one full output column of the
    // matrix, plus the feed wire from its VC array to the switch edge.
    const WireModel wire(tech_);
    const double mm = (inputSpanUm() + outputSpanUm() + inputFeedUm_) * 1e-3;
    // Crossbar tracks are denser (less repeated) than global wire; apply a
    // mild 1.2x cap factor for crosstalk/jumpers, folded into the constant.
    return wire.energyPj(widthBits_, mm) * 1.2;
}

} // namespace taqos
