/// \file wire_model.h
/// Repeated global-wire model: energy per flit per mm and delay per mm.
/// Used for link energy in chip-level analyses and for the long crossbar
/// input feed lines of MECS routers.
#pragma once

#include "power/tech.h"

namespace taqos {

class WireModel {
  public:
    explicit WireModel(const TechParams &tech) : tech_(tech) {}

    /// Dynamic energy of moving `bits` over `mm` of repeated wire (pJ).
    double energyPj(int bits, double mm) const;

    /// Repeated-wire delay (cycles) for a span, given cycles-per-mm. The
    /// paper's column has 1-cycle hops between adjacent routers.
    static int delayCycles(double mm, double cyclesPerMm);

  private:
    TechParams tech_;
};

} // namespace taqos
