/// \file sram_model.h
/// CACTI-flavoured analytic model for the small SRAM / register-file arrays
/// inside a NOC router: input-buffer VC storage and PVC flow-state tables.
#pragma once

#include "power/tech.h"

namespace taqos {

/// Storage array kinds differ in cell density and access energy.
enum class ArrayKind {
    RouterBuffer, ///< wide 2-port register-file style flit storage
    DenseSram,    ///< 6T SRAM (flow-state counters)
};

/// One physical array: `entries` words of `bitsPerEntry` bits.
class SramModel {
  public:
    SramModel(ArrayKind kind, int entries, int bitsPerEntry,
              const TechParams &tech);

    /// Total silicon area (mm^2), periphery included.
    double areaMm2() const;

    /// Dynamic energy of one full-entry read / write (pJ), including the
    /// sqrt-capacity bitline penalty for large arrays.
    double readEnergyPj() const;
    double writeEnergyPj() const;

    int entries() const { return entries_; }
    int bitsPerEntry() const { return bitsPerEntry_; }
    double totalBits() const;

  private:
    double sizeScale() const;

    ArrayKind kind_;
    int entries_;
    int bitsPerEntry_;
    TechParams tech_;
};

} // namespace taqos
