#include "power/wire_model.h"

#include <cmath>

namespace taqos {

double
WireModel::energyPj(int bits, double mm) const
{
    return static_cast<double>(bits) * mm * tech_.wireEnergyPerBitMmPj();
}

int
WireModel::delayCycles(double mm, double cyclesPerMm)
{
    return static_cast<int>(std::ceil(mm * cyclesPerMm));
}

} // namespace taqos
