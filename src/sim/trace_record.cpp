#include "sim/trace_record.h"

#include "common/assert.h"
#include "noc/packet.h"
#include "noc/ports.h"
#include "qos/audit.h"
#include "topo/fabric.h"

namespace taqos {

TraceMeta
describeColumn(const ColumnConfig &col)
{
    TraceMeta m;
    m.topology = topologyName(col.topology);
    m.mode = qosModeName(col.mode);
    m.nodes = col.numNodes;
    m.injectorsPerNode = col.injectorsPerNode;
    m.flows = col.numFlows();
    m.frameLen = col.pvc.frameLen;
    m.quotaEnabled = col.pvc.quotaEnabled;
    m.quotaProtect = col.pvc.quotaProtectFactor;
    m.windowLimit = col.pvc.windowLimit;
    m.gsfFrameLen = col.pvc.gsfFrameLen;
    m.gsfFrames = col.pvc.gsfFrames;
    m.weights = col.pvc.weights;
    const QosAuditBounds bounds = defaultAuditBounds(col.mode);
    m.maxAge = bounds.maxPacketAge;
    m.wrrTol = bounds.wrrTolerance;
    return m;
}

TraceMeta
describeFabric(const FabricNetwork &net)
{
    TraceMeta m;
    m.topology = std::string("fabric-") +
                 topologyName(net.spec().column.topology);
    bool mixed = false;
    for (int g = 0; g < net.blocks(); ++g)
        mixed = mixed || net.blockMode(g) != net.mode();
    m.mode = mixed ? "mixed" : qosModeName(net.mode());
    m.nodes = net.numNodes();
    m.injectorsPerNode = net.slotsPerNode();
    m.flows = net.totalFlows();
    const PvcParams &pvc = net.pvcParams();
    m.frameLen = pvc.frameLen;
    m.quotaEnabled = pvc.quotaEnabled;
    m.quotaProtect = pvc.quotaProtectFactor;
    m.windowLimit = pvc.windowLimit;
    m.gsfFrameLen = pvc.gsfFrameLen;
    m.gsfFrames = pvc.gsfFrames;
    m.weights = pvc.weights;
    m.maxAge = 0; // row + link transit is policy-independent latency
    m.wrrTol = defaultAuditBounds(net.mode()).wrrTolerance;
    return m;
}

TraceRecorder::TraceRecorder(TraceMeta meta)
{
    trace_.meta = std::move(meta);
}

void
TraceRecorder::setMeasureWindow(Cycle start, Cycle end)
{
    trace_.meta.measureStart = start;
    trace_.meta.measureEnd = end;
}

void
TraceRecorder::finish(Cycle endCycle, bool drained)
{
    trace_.meta.endCycle = endCycle;
    trace_.meta.drained = drained;
}

void
TraceRecorder::registerPort(const InputPort &port, bool terminal)
{
    if (portIds_.count(&port) != 0)
        return; // idempotent (re-attach)
    TracePortInfo info;
    info.id = static_cast<std::int32_t>(trace_.ports.size());
    info.node = port.node;
    info.terminal = terminal;
    info.name = port.name.empty() ? "port" : port.name;
    portIds_.emplace(&port, info.id);
    trace_.ports.push_back(std::move(info));
}

std::int32_t
TraceRecorder::portId(const InputPort &port) const
{
    auto it = portIds_.find(&port);
    TAQOS_ASSERT(it != portIds_.end(),
                 "trace event on unregistered port %s", port.name.c_str());
    return it->second;
}

Cycle
TraceRecorder::bump(Cycle now)
{
    if (now > now_)
        now_ = now;
    return now_;
}

void
TraceRecorder::noteCycle(Cycle now)
{
    bump(now);
}

void
TraceRecorder::inject(Cycle now, NodeId node, const NetPacket &pkt)
{
    TraceEvent e;
    e.kind = TraceEventKind::Inject;
    e.cycle = bump(now);
    e.node = node;
    e.pkt = pkt.id;
    e.flow = pkt.flow;
    e.src = pkt.src;
    e.dst = pkt.dst;
    e.size = pkt.sizeFlits;
    e.attempt = pkt.attempt;
    e.gen = pkt.genCycle;
    e.frameTag = pkt.frameTag;
    e.compliant = pkt.rateCompliant;
    trace_.events.push_back(e);
}

void
TraceRecorder::vcReserved(const InputPort &port, int vc,
                          const NetPacket &pkt, Cycle headArrival,
                          Cycle tailArrival)
{
    TraceEvent e;
    e.kind = TraceEventKind::VcReserve;
    e.cycle = now_;
    e.port = portId(port);
    e.vc = vc;
    e.pkt = pkt.id;
    e.head = headArrival;
    e.tail = tailArrival;
    trace_.events.push_back(e);
}

void
TraceRecorder::vcDrained(const InputPort &port, int vc, const NetPacket &pkt)
{
    TraceEvent e;
    e.kind = TraceEventKind::VcDrain;
    e.cycle = now_;
    e.port = portId(port);
    e.vc = vc;
    e.pkt = pkt.id;
    trace_.events.push_back(e);
}

void
TraceRecorder::vcFreed(const InputPort &port, int vc, const NetPacket &pkt)
{
    TraceEvent e;
    e.kind = TraceEventKind::VcFree;
    e.cycle = now_;
    e.port = portId(port);
    e.vc = vc;
    e.pkt = pkt.id;
    trace_.events.push_back(e);
}

void
TraceRecorder::hop(Cycle now, NodeId from, const InputPort &down, int vc,
                   const NetPacket &pkt)
{
    TraceEvent e;
    e.kind = TraceEventKind::Hop;
    e.cycle = bump(now);
    e.node = from;
    e.port = portId(down);
    e.vc = vc;
    e.pkt = pkt.id;
    trace_.events.push_back(e);
}

void
TraceRecorder::kill(Cycle now, NodeId node, const NetPacket &pkt)
{
    TraceEvent e;
    e.kind = TraceEventKind::Kill;
    e.cycle = bump(now);
    e.node = node;
    e.pkt = pkt.id;
    trace_.events.push_back(e);
}

void
TraceRecorder::requeue(Cycle now, const NetPacket &pkt)
{
    TraceEvent e;
    e.kind = TraceEventKind::Requeue;
    e.cycle = bump(now);
    e.pkt = pkt.id;
    trace_.events.push_back(e);
}

void
TraceRecorder::deliver(Cycle now, const InputPort &port, int vc,
                       const NetPacket &pkt)
{
    TraceEvent e;
    e.kind = TraceEventKind::Deliver;
    e.cycle = bump(now);
    e.port = portId(port);
    e.vc = vc;
    e.pkt = pkt.id;
    trace_.events.push_back(e);
}

void
TraceRecorder::retire(Cycle now, const NetPacket &pkt)
{
    TraceEvent e;
    e.kind = TraceEventKind::Retire;
    e.cycle = bump(now);
    e.pkt = pkt.id;
    trace_.events.push_back(e);
}

void
TraceRecorder::segment(Cycle now, const InputPort &port, int vc,
                       const NetPacket &pkt, NodeId newDst)
{
    TraceEvent e;
    e.kind = TraceEventKind::Segment;
    e.cycle = bump(now);
    e.port = portId(port);
    e.vc = vc;
    e.pkt = pkt.id;
    e.dst = newDst;
    trace_.events.push_back(e);
}

} // namespace taqos
