/// \file trace_record.h
/// The concrete trace-recording layer: a TraceSink that builds a
/// FlitTrace (verify/flit_trace.h) from the engine's activity hooks.
///
/// Usage:
///   ColumnSim sim(col, traffic);
///   TraceRecorder rec(describeColumn(col));
///   sim.attachTraceSink(&rec);         // wires every router and port
///   sim.run(...);
///   rec.finish(sim.now(), sim.drained());
///   saveFlitTrace(path, rec.trace(), err);   // or verifyTrace(...)
///
/// The recorder is engine-side plumbing; the checker consuming the trace
/// lives in src/verify and shares only the flit_trace.h data format.
#pragma once

#include <unordered_map>

#include "noc/trace_sink.h"
#include "topo/topology.h"
#include "verify/flit_trace.h"

namespace taqos {

class FabricNetwork;

/// TraceMeta for a run over one QOS-protected column: topology, policy
/// and QoS parameters plus the per-policy audit bounds (qos/audit.h).
TraceMeta describeColumn(const ColumnConfig &col);

/// TraceMeta for a multi-chip fabric run (topo/fabric.h). The topology
/// string is "fabric-<column topology>" (no route-adjacency family) and
/// the mode is "mixed" when the per-block policies differ, which turns
/// the per-policy audits off; the age audit is skipped because row and
/// inter-chip transit add policy-independent latency.
TraceMeta describeFabric(const FabricNetwork &net);

class TraceRecorder final : public TraceSink {
  public:
    explicit TraceRecorder(TraceMeta meta);

    /// Record the measurement window the WRR audit evaluates over.
    void setMeasureWindow(Cycle start, Cycle end);

    /// Seal the trace after the run (final cycle, whether it drained).
    void finish(Cycle endCycle, bool drained);

    const FlitTrace &trace() const { return trace_; }
    FlitTrace &trace() { return trace_; }

    // --- TraceSink ---
    void registerPort(const InputPort &port, bool terminal) override;
    void noteCycle(Cycle now) override;
    void inject(Cycle now, NodeId node, const NetPacket &pkt) override;
    void vcReserved(const InputPort &port, int vc, const NetPacket &pkt,
                    Cycle headArrival, Cycle tailArrival) override;
    void vcDrained(const InputPort &port, int vc,
                   const NetPacket &pkt) override;
    void vcFreed(const InputPort &port, int vc,
                 const NetPacket &pkt) override;
    void hop(Cycle now, NodeId from, const InputPort &down, int vc,
             const NetPacket &pkt) override;
    void kill(Cycle now, NodeId node, const NetPacket &pkt) override;
    void requeue(Cycle now, const NetPacket &pkt) override;
    void deliver(Cycle now, const InputPort &port, int vc,
                 const NetPacket &pkt) override;
    void retire(Cycle now, const NetPacket &pkt) override;
    void segment(Cycle now, const InputPort &port, int vc,
                 const NetPacket &pkt, NodeId newDst) override;

  private:
    std::int32_t portId(const InputPort &port) const;
    /// Keep `now_` monotone: explicit-cycle events (a test-driven kill
    /// between engine steps) may outrun the per-step clock.
    Cycle bump(Cycle now);

    FlitTrace trace_;
    std::unordered_map<const InputPort *, std::int32_t> portIds_;
    Cycle now_ = 0;
};

} // namespace taqos
