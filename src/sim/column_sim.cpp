#include "sim/column_sim.h"

#include "common/assert.h"
#include "traffic/dynamic.h"

namespace taqos {

ColumnSim::ColumnSim(std::unique_ptr<ColumnNetwork> net)
    : NetSim(std::move(net))
{
}

ColumnSim::ColumnSim(const ColumnConfig &col, const TrafficConfig &traffic)
    : ColumnSim(col, traffic, WorkloadSpec{})
{
}

ColumnSim::ColumnSim(const ColumnConfig &col, const TrafficConfig &traffic,
                     const WorkloadSpec &workload)
    : ColumnSim(ColumnNetwork::build(col))
{
    std::string err;
    auto src = makeTrafficSource(workload, network().cfg(), traffic, &err);
    TAQOS_ASSERT(src != nullptr, "workload '%s' failed: %s",
                 workload.name().c_str(), err.c_str());
    gen_ = dynamic_cast<TrafficGenerator *>(src.get());
    setTrafficSource(std::move(src));
}

ColumnSim::ColumnSim(const ColumnConfig &col, TrafficTrace trace)
    : ColumnSim(ColumnNetwork::build(col))
{
    setTrafficSource(
        std::make_unique<TraceReplayer>(network().cfg(), std::move(trace)));
}

ColumnSim::~ColumnSim() = default;

} // namespace taqos
