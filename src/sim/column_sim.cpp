#include "sim/column_sim.h"

namespace taqos {

ColumnSim::ColumnSim(std::unique_ptr<ColumnNetwork> net)
    : NetSim(std::move(net))
{
}

ColumnSim::ColumnSim(const ColumnConfig &col, const TrafficConfig &traffic)
    : ColumnSim(ColumnNetwork::build(col))
{
    auto gen = std::make_unique<TrafficGenerator>(network().cfg(), traffic);
    gen_ = gen.get();
    setTrafficSource(std::move(gen));
}

ColumnSim::ColumnSim(const ColumnConfig &col, TrafficTrace trace)
    : ColumnSim(ColumnNetwork::build(col))
{
    setTrafficSource(
        std::make_unique<TraceReplayer>(network().cfg(), std::move(trace)));
}

ColumnSim::~ColumnSim() = default;

} // namespace taqos
