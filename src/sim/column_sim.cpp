#include "sim/column_sim.h"

#include <cstdlib>

#include "common/assert.h"
#include "router/router.h"

namespace taqos {

ColumnSim::ColumnSim(const ColumnConfig &col, const TrafficConfig &traffic)
    : net_(ColumnNetwork::build(col)), metrics_(net_->numFlows())
{
    gen_ = std::make_unique<TrafficGenerator>(net_->cfg(), traffic);
    if (net_->cfg().mode == QosMode::Pvc)
        quota_ = std::make_unique<QuotaTracker>(net_->cfg().pvc);
}

ColumnSim::ColumnSim(const ColumnConfig &col, TrafficTrace trace)
    : net_(ColumnNetwork::build(col)), metrics_(net_->numFlows())
{
    replay_ = std::make_unique<TraceReplayer>(net_->cfg(), std::move(trace));
    if (net_->cfg().mode == QosMode::Pvc)
        quota_ = std::make_unique<QuotaTracker>(net_->cfg().pvc);
}

ColumnSim::~ColumnSim() = default;

void
ColumnSim::setMeasureWindow(Cycle start, Cycle end)
{
    metrics_.measureStart = start;
    metrics_.measureEnd = end;
}

void
ColumnSim::processFrameBoundary()
{
    const Cycle frame = cfg().pvc.frameLen;
    if (cfg().mode != QosMode::Pvc || frame == 0 || now_ == 0 ||
        now_ % frame != 0) {
        return;
    }
    for (NodeId n = 0; n < net_->numNodes(); ++n)
        net_->router(n)->frameFlush();
    quota_->flush();

    // The flush clears bandwidth history everywhere — including the
    // priority copies carried by in-flight packets (priority reuse).
    // Stale pre-flush priorities would otherwise starve DPS pass-through
    // traffic against freshly-zeroed local counters for much of a frame.
    const auto clearPort = [](InputPort *port) {
        for (auto &vc : port->vcs) {
            if (NetPacket *pkt = vc.packet())
                pkt->carriedPrio = 0;
        }
    };
    for (NodeId n = 0; n < net_->numNodes(); ++n) {
        for (const auto &in : net_->router(n)->inputs())
            clearPort(in.get());
        clearPort(net_->termPort(n));
    }
}

void
ColumnSim::processAcks()
{
    AckEvent ev;
    while (ack_.popDue(now_, ev)) {
        NetPacket *pkt = ev.pkt;
        InjectorQueue &inj = net_->injector(pkt->flow);
        if (ev.isNack) {
            // Retransmit: back to the head of the source queue; the packet
            // keeps its window slot and its original generation time.
            TAQOS_ASSERT(pkt->state == PacketState::Dropped,
                         "NACK for packet not dropped");
            pkt->state = PacketState::Queued;
            pkt->queuedCycle = now_;
            inj.queue.push_front(pkt);
        } else {
            TAQOS_ASSERT(pkt->state == PacketState::Delivered,
                         "ACK for undelivered packet");
            TAQOS_ASSERT(pkt->inWindow, "ACK for packet outside window");
            pkt->inWindow = false;
            --inj.outstanding;
            TAQOS_ASSERT(inj.outstanding >= 0, "window underflow");
            pool_.release(pkt);
        }
    }
}

void
ColumnSim::deliver(NetPacket *pkt, InputPort *port, int vcIdx)
{
    pkt->state = PacketState::Delivered;
    pkt->deliverCycle = now_;
    pkt->removeLoc(port, vcIdx);
    port->vcs[static_cast<std::size_t>(vcIdx)].free(
        now_ + static_cast<Cycle>(port->creditDelay));

    ++metrics_.deliveredPackets;
    metrics_.deliveredFlits += static_cast<std::uint64_t>(pkt->sizeFlits);
    metrics_.usefulHops += pkt->hopsThisAttempt;
    if (pkt->measured) {
        const double lat = static_cast<double>(now_ - pkt->genCycle);
        metrics_.latency.push(lat);
        metrics_.latencyHist.add(lat);
    }
    if (metrics_.inWindow(now_)) {
        metrics_.flowFlits[static_cast<std::size_t>(pkt->flow)] +=
            static_cast<std::uint64_t>(pkt->sizeFlits);
    }

    ack_.send(now_, std::abs(pkt->dst - pkt->src), pkt, /*isNack=*/false);
}

void
ColumnSim::tickTerminals()
{
    for (NodeId n = 0; n < net_->numNodes(); ++n) {
        InputPort *port = net_->termPort(n);
        for (int v = 0; v < static_cast<int>(port->vcs.size()); ++v) {
            VirtualChannel &vc = port->vcs[static_cast<std::size_t>(v)];
            if (vc.state() != VirtualChannel::State::Reserved)
                continue;
            if (now_ >= vc.tailArrival())
                deliver(vc.packet(), port, v);
        }
    }
}

void
ColumnSim::step()
{
    processFrameBoundary();
    processAcks();
    if (gen_ != nullptr)
        gen_->tick(now_, pool_, net_->injectors(), metrics_);
    else
        replay_->tick(now_, pool_, net_->injectors(), metrics_);

    TickContext ctx;
    ctx.now = now_;
    ctx.quota = quota_.get();
    ctx.ack = &ack_;
    ctx.metrics = &metrics_;
    for (NodeId n = 0; n < net_->numNodes(); ++n)
        net_->router(n)->tickCompletions(now_);
    for (NodeId n = 0; n < net_->numNodes(); ++n)
        net_->router(n)->tickArbitrate(ctx);

    tickTerminals();
    ++now_;
}

void
ColumnSim::run(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c)
        step();
}

Cycle
ColumnSim::runUntilDrained(Cycle maxCycles, Cycle earliestDone)
{
    const Cycle limit = now_ + maxCycles;
    while (now_ < limit) {
        if (now_ >= earliestDone && drained() && ack_.pending() == 0)
            return now_;
        step();
    }
    return drained() && ack_.pending() == 0 ? now_ : kNoCycle;
}

namespace {

void
checkPortInvariants(const InputPort &port)
{
    for (int v = 0; v < static_cast<int>(port.vcs.size()); ++v) {
        const VirtualChannel &vc = port.vcs[static_cast<std::size_t>(v)];
        if (vc.state() == VirtualChannel::State::Free)
            continue;
        const NetPacket *pkt = vc.packet();
        TAQOS_ASSERT(pkt != nullptr, "occupied VC without packet");
        TAQOS_ASSERT(pkt->state == PacketState::InFlight,
                     "VC %s/%d holds packet in state %d", port.name.c_str(),
                     v, static_cast<int>(pkt->state));
        bool found = false;
        for (int i = 0; i < pkt->numLocs; ++i) {
            const VcRef &loc = pkt->locs[static_cast<std::size_t>(i)];
            if (loc.port == &port && loc.vc == v)
                found = true;
        }
        TAQOS_ASSERT(found, "VC %s/%d not in its packet's locations",
                     port.name.c_str(), v);
    }
}

} // namespace

void
ColumnSim::checkInvariants() const
{
    auto *net = const_cast<ColumnNetwork *>(net_.get());
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        for (const auto &in : net->router(n)->inputs())
            checkPortInvariants(*in);
        checkPortInvariants(*net->termPort(n));
    }
    for (const auto &inj : net->injectors()) {
        TAQOS_ASSERT(inj.outstanding >= 0 &&
                         inj.outstanding <= inj.windowLimit,
                     "window counter out of bounds for flow %d", inj.flow);
    }
}

} // namespace taqos
