/// \file shard_pool.h
/// The sharded engine's fork-join worker pool. Purpose-built for one
/// pattern: once per cycle, run a handful of independent region tasks
/// and wait for all of them.
///
/// Design constraints, in order:
///   - Determinism needs nothing from the pool: tasks are mutually
///     independent (each touches only its region's routers), so *which*
///     thread runs a task never matters. Tasks are claimed from an
///     atomic ticket; any interleaving yields the same simulation state.
///   - Dispatch latency dominates (tasks are microseconds): workers spin
///     briefly on the epoch word before parking in std::atomic::wait, so
///     back-to-back cycles stay in user space while an idle or
///     oversubscribed machine (CI runners, nproc < shards) pays a futex
///     sleep instead of burning a core.
///   - The calling thread participates: N-way sharding builds N-1
///     workers, and shards=1 (or one task) degenerates to a plain loop
///     with no atomics at all.
///
/// The claim ticket packs [epoch:32 | limit:16 | index:16] in one atomic
/// so a straggler that wakes from a finished dispatch can never execute
/// a stale or duplicated task: a claim carries the epoch it belongs to,
/// and an index at or past its limit is simply no work.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace taqos {

class ShardPool {
  public:
    /// `extraWorkers` background threads (the coordinator is the Nth).
    explicit ShardPool(int extraWorkers);
    ~ShardPool();
    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    /// Run fn(0) .. fn(numTasks-1), each exactly once, across the
    /// workers and the calling thread; returns once every call finished.
    void dispatch(int numTasks, const std::function<void(int)> &fn);

    int extraWorkers() const { return static_cast<int>(threads_.size()); }

  private:
    /// Spins on the epoch word before parking; tuned low — a miss costs
    /// one futex round-trip, a hit saves it.
    static constexpr int kSpinBudget = 256;
    static constexpr int kMaxTasks = 0xffff;

    void workerLoop();
    /// Claim and run tasks until the ticket runs dry.
    void drainTasks();

    /// [epoch:32 | limit:16 | index:16]; fetch_add(1) claims an index.
    std::atomic<std::uint64_t> ticket_{0};
    /// Bumped per dispatch; workers wait on it.
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<int> completed_{0};
    std::atomic<bool> quit_{false};
    const std::function<void(int)> *fn_ = nullptr;
    std::vector<std::thread> threads_;
};

} // namespace taqos
