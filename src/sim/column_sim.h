/// \file column_sim.h
/// The cycle-level simulator of one QOS-protected shared column — the
/// in-house-simulator equivalent the paper's evaluation runs on. A thin
/// specialization of the NetSim engine (sim/net_sim.h): ColumnNetwork
/// provides the fabric, TrafficGenerator / TraceReplayer provide the
/// traffic, and the engine supplies the per-cycle phase loop.
#pragma once

#include <memory>

#include "sim/net_sim.h"
#include "topo/column_network.h"
#include "traffic/generator.h"
#include "traffic/trace.h"

namespace taqos {

class ColumnSim : public NetSim {
  public:
    ColumnSim(const ColumnConfig &col, const TrafficConfig &traffic);
    /// Drive the column from a pre-recorded trace instead of a stochastic
    /// generator (bit-identical replays, external workloads).
    ColumnSim(const ColumnConfig &col, TrafficTrace trace);
    ~ColumnSim() override;

    ColumnNetwork &network()
    {
        return static_cast<ColumnNetwork &>(*net_);
    }
    const ColumnNetwork &network() const
    {
        return static_cast<const ColumnNetwork &>(*net_);
    }
    const ColumnConfig &cfg() const { return network().cfg(); }
    /// Null when the sim was constructed from a trace.
    TrafficGenerator *traffic() { return gen_; }

  private:
    explicit ColumnSim(std::unique_ptr<ColumnNetwork> net);

    TrafficGenerator *gen_ = nullptr; ///< owned by NetSim::source_
};

} // namespace taqos
