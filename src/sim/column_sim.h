/// \file column_sim.h
/// The cycle-level simulator of one QOS-protected shared column — the
/// in-house-simulator equivalent the paper's evaluation runs on. A thin
/// specialization of the NetSim engine (sim/net_sim.h): ColumnNetwork
/// provides the fabric, TrafficGenerator / TraceReplayer provide the
/// traffic, and the engine supplies the per-cycle phase loop.
#pragma once

#include <memory>

#include "sim/net_sim.h"
#include "topo/column_network.h"
#include "traffic/generator.h"
#include "traffic/trace.h"

namespace taqos {

class ColumnSim : public NetSim {
  public:
    /// Steady-workload shim: equivalent to the WorkloadSpec constructor
    /// with a default (steady) spec. Prefer the three-argument form in
    /// new code — it is the one entry point every workload kind shares.
    ColumnSim(const ColumnConfig &col, const TrafficConfig &traffic);
    /// Drive the column under a declarative workload: steady, bursty or
    /// ramp generation, or trace replay (the spec's tracePath is loaded
    /// here; a load failure asserts — CLIs validate paths up front via
    /// makeTrafficSource).
    ColumnSim(const ColumnConfig &col, const TrafficConfig &traffic,
              const WorkloadSpec &workload);
    /// Drive the column from a pre-recorded trace instead of a stochastic
    /// generator (bit-identical replays, external workloads).
    ColumnSim(const ColumnConfig &col, TrafficTrace trace);
    ~ColumnSim() override;

    ColumnNetwork &network()
    {
        return static_cast<ColumnNetwork &>(*net_);
    }
    const ColumnNetwork &network() const
    {
        return static_cast<const ColumnNetwork &>(*net_);
    }
    const ColumnConfig &cfg() const { return network().cfg(); }
    /// Null when the sim was constructed from a trace.
    TrafficGenerator *traffic() { return gen_; }

  private:
    explicit ColumnSim(std::unique_ptr<ColumnNetwork> net);

    TrafficGenerator *gen_ = nullptr; ///< owned by NetSim::source_
};

} // namespace taqos
