#include "sim/checkpoint.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/assert.h"
#include "router/router.h"
#include "sim/engine_salt.h"
#include "sim/net_sim.h"
#include "topo/network.h"

namespace taqos {

namespace {

/// Bytes of the fixed header (magic + version + salt + fingerprint +
/// cycle + engine config) — the reader's starting byte offset.
constexpr std::uint64_t kHeaderBytes = 8 + 4 + 8 + 8 + 8 + 1 + 4 + 4;

/// Upper bounds a corrupted length prefix is rejected against (far above
/// anything a real run produces, far below an allocation that could
/// wedge the process).
constexpr std::uint64_t kMaxPackets = 1ull << 32;
constexpr std::uint32_t kMaxWords = 1u << 24;
constexpr std::uint32_t kMaxQueueLen = 1u << 24;

std::uint64_t
splitmix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    return splitmix(h ^ (v + 0x9e3779b97f4a7c15ull));
}

/// The canonical save-order enumeration of every VC-holding buffer in
/// the fabric: each node's router inputs in port order, then its
/// terminal; then the aux (handoff) ports. Shared by the writer's map
/// and the reader's table so references resolve symmetrically.
void
enumeratePorts(Network &net, std::vector<InputPort *> &out)
{
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        for (const auto &in : net.router(n)->inputs())
            out.push_back(in.get());
        out.push_back(net.termPort(n));
    }
    for (InputPort *p : net.auxPorts())
        out.push_back(p);
}

void
writeVcArray(CheckpointWriter &w, const InputPort &port)
{
    w.u32(static_cast<std::uint32_t>(port.vcs.size()));
    for (const auto &vc : port.vcs) {
        w.u8(static_cast<std::uint8_t>(vc.state()));
        w.pkt(vc.packet());
        w.u64(vc.headArrival());
        w.u64(vc.tailArrival());
        w.u64(vc.freeVisibleAt());
    }
}

void
readVcArray(CheckpointReader &r, InputPort &port)
{
    const std::uint32_t count = r.u32();
    if (count != port.vcs.size()) {
        // Unbounded-VC ports grow with the traffic; everything else is
        // structure and must match the fingerprinted shape exactly.
        if (!port.unboundedVcs || count < port.vcs.size())
            r.fail("VC count mismatch on port " + port.name);
        port.vcs.resize(count);
        port.attachVcs();
    }
    for (std::size_t v = 0; v < count; ++v) {
        const std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(VirtualChannel::State::Draining))
            r.fail("bad VC state on port " + port.name);
        NetPacket *pkt = r.pkt();
        const Cycle head = r.u64();
        const Cycle tail = r.u64();
        const Cycle freeVis = r.u64();
        port.vcs[v].restoreRaw(static_cast<VirtualChannel::State>(state), pkt,
                               head, tail, freeVis);
    }
}

} // namespace

std::uint64_t
topologyFingerprint(const Network &net)
{
    auto &n = const_cast<Network &>(net);
    std::uint64_t h = 0x7461716f73ull; // "taqos"
    h = mix(h, static_cast<std::uint64_t>(n.numNodes()));
    h = mix(h, static_cast<std::uint64_t>(n.numFlows()));
    h = mix(h, static_cast<std::uint64_t>(n.mode()));

    const auto portShape = [&](const InputPort &p) {
        h = mix(h, static_cast<std::uint64_t>(p.kind));
        h = mix(h, p.injectors.size());
        h = mix(h, p.unboundedVcs ? 0 : p.vcs.size());
    };
    for (NodeId node = 0; node < n.numNodes(); ++node) {
        const Router *r = n.router(node);
        h = mix(h, r->inputs().size());
        for (const auto &in : r->inputs())
            portShape(*in);
        h = mix(h, r->outputs().size());
        for (const auto &out : r->outputs()) {
            h = mix(h, out->drops.size());
            h = mix(h, static_cast<std::uint64_t>(
                           static_cast<std::int64_t>(out->tableIdx)));
        }
        h = mix(h, r->groups().size());
        portShape(*n.termPort(node));
    }
    h = mix(h, n.auxPorts().size());
    for (const InputPort *p : n.auxPorts())
        portShape(*p);
    return h;
}

CheckpointInfo
readCheckpointInfo(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0)
        throw CheckpointError("not a taqos checkpoint (bad magic at offset 0)");

    const auto read = [&is](void *dst, std::size_t n, const char *what) {
        is.read(static_cast<char *>(dst), static_cast<std::streamsize>(n));
        if (!is) {
            throw CheckpointError(std::string("truncated checkpoint header (") +
                                  what + ")");
        }
    };

    CheckpointInfo info;
    read(&info.version, sizeof(info.version), "format version");
    if (info.version != kCheckpointVersion) {
        throw CheckpointError(
            "checkpoint format version " + std::to_string(info.version) +
            "; this build reads version " + std::to_string(kCheckpointVersion));
    }
    read(&info.salt, sizeof(info.salt), "engine salt");
    read(&info.fingerprint, sizeof(info.fingerprint), "topology fingerprint");
    read(&info.now, sizeof(info.now), "cycle");
    std::uint8_t act = 0;
    read(&act, sizeof(act), "engine config");
    std::uint32_t shards = 0;
    std::uint32_t minActive = 0;
    read(&shards, sizeof(shards), "engine config");
    read(&minActive, sizeof(minActive), "engine config");
    info.engine.activityDriven = act != 0;
    info.engine.shards = static_cast<int>(shards);
    info.engine.shardMinActive = static_cast<int>(minActive);
    return info;
}

// --- CheckpointWriter ----------------------------------------------------

CheckpointWriter::CheckpointWriter(std::ostream &os, Network &net,
                                   const PacketPool &pool)
    : os_(os)
{
    for (std::size_t i = 0; i < pool.allocatedCount(); ++i)
        pktIdx_.emplace(pool.at(i), static_cast<std::uint64_t>(i));
    std::vector<InputPort *> ports;
    enumeratePorts(net, ports);
    for (std::size_t i = 0; i < ports.size(); ++i)
        portIdx_.emplace(ports[i], static_cast<std::uint32_t>(i));
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        Router *r = net.router(n);
        for (std::size_t o = 0; o < r->outputs().size(); ++o)
            outIdx_.emplace(r->outputs()[o].get(),
                            std::make_pair(n, static_cast<int>(o)));
        tableNode_.emplace(&r->flowTable(), n);
    }
}

void
CheckpointWriter::raw(const void *data, std::size_t n)
{
    os_.write(static_cast<const char *>(data),
              static_cast<std::streamsize>(n));
}

void
CheckpointWriter::u8(std::uint8_t v)
{
    raw(&v, sizeof(v));
}

void
CheckpointWriter::u32(std::uint32_t v)
{
    raw(&v, sizeof(v));
}

void
CheckpointWriter::i32(std::int32_t v)
{
    raw(&v, sizeof(v));
}

void
CheckpointWriter::u64(std::uint64_t v)
{
    raw(&v, sizeof(v));
}

void
CheckpointWriter::f64(double v)
{
    raw(&v, sizeof(v));
}

void
CheckpointWriter::words(const std::vector<std::uint64_t> &w)
{
    u32(static_cast<std::uint32_t>(w.size()));
    for (std::uint64_t v : w)
        u64(v);
}

void
CheckpointWriter::section(const char *tag)
{
    const std::size_t len = std::strlen(tag);
    u8(static_cast<std::uint8_t>(len));
    raw(tag, len);
}

std::uint64_t
CheckpointWriter::pktIndex(const NetPacket *p) const
{
    const auto it = pktIdx_.find(p);
    TAQOS_ASSERT(it != pktIdx_.end(), "packet not in the pool");
    return it->second;
}

void
CheckpointWriter::pkt(const NetPacket *p)
{
    u64(p == nullptr ? 0 : pktIndex(p) + 1);
}

void
CheckpointWriter::port(const InputPort *p)
{
    if (p == nullptr) {
        u32(0);
        return;
    }
    const auto it = portIdx_.find(p);
    TAQOS_ASSERT(it != portIdx_.end(), "port not in the fabric enumeration");
    u32(it->second + 1);
}

void
CheckpointWriter::output(const OutputPort *o)
{
    const auto it = outIdx_.find(o);
    TAQOS_ASSERT(it != outIdx_.end(), "output not in the fabric enumeration");
    i32(it->second.first);
    i32(it->second.second);
}

void
CheckpointWriter::table(const void *t)
{
    const auto it = tableNode_.find(t);
    TAQOS_ASSERT(it != tableNode_.end(), "flow table not owned by a router");
    i32(it->second);
}

// --- CheckpointReader ----------------------------------------------------

CheckpointReader::CheckpointReader(std::istream &is, Network &net,
                                   PacketPool &pool,
                                   std::uint64_t startOffset)
    : is_(is), net_(net), pool_(pool), offset_(startOffset)
{
    enumeratePorts(net, ports_);
}

void
CheckpointReader::fail(const std::string &what) const
{
    throw CheckpointError(what + " (section \"" + section_ + "\", offset " +
                          std::to_string(offset_) + ")");
}

void
CheckpointReader::bytes(void *data, std::size_t n)
{
    is_.read(static_cast<char *>(data), static_cast<std::streamsize>(n));
    if (!is_)
        fail("unexpected end of checkpoint");
    offset_ += n;
}

std::uint8_t
CheckpointReader::u8()
{
    std::uint8_t v;
    bytes(&v, sizeof(v));
    return v;
}

std::uint32_t
CheckpointReader::u32()
{
    std::uint32_t v;
    bytes(&v, sizeof(v));
    return v;
}

std::int32_t
CheckpointReader::i32()
{
    std::int32_t v;
    bytes(&v, sizeof(v));
    return v;
}

std::uint64_t
CheckpointReader::u64()
{
    std::uint64_t v;
    bytes(&v, sizeof(v));
    return v;
}

double
CheckpointReader::f64()
{
    double v;
    bytes(&v, sizeof(v));
    return v;
}

std::vector<std::uint64_t>
CheckpointReader::words()
{
    const std::uint32_t n = u32();
    if (n > kMaxWords)
        fail("implausible word-vector length " + std::to_string(n));
    std::vector<std::uint64_t> w(n);
    for (std::uint32_t i = 0; i < n; ++i)
        w[i] = u64();
    return w;
}

void
CheckpointReader::expectSection(const char *tag)
{
    const std::uint8_t len = u8();
    char buf[256];
    bytes(buf, len);
    buf[len] = '\0';
    if (std::strlen(tag) != len || std::memcmp(buf, tag, len) != 0) {
        fail(std::string("expected section \"") + tag + "\", found \"" + buf +
             "\"");
    }
    section_ = tag;
}

NetPacket *
CheckpointReader::pkt()
{
    const std::uint64_t i = u64();
    if (i == 0)
        return nullptr;
    if (i > pool_.allocatedCount())
        fail("packet reference " + std::to_string(i - 1) + " out of range");
    return pool_.at(i - 1);
}

InputPort *
CheckpointReader::port()
{
    const std::uint32_t i = u32();
    if (i == 0)
        return nullptr;
    if (i > ports_.size())
        fail("port reference " + std::to_string(i - 1) + " out of range");
    return ports_[i - 1];
}

OutputPort *
CheckpointReader::output()
{
    const std::int32_t node = i32();
    const std::int32_t out = i32();
    if (node < 0 || node >= net_.numNodes())
        fail("output node " + std::to_string(node) + " out of range");
    Router *r = net_.router(node);
    if (out < 0 || out >= static_cast<std::int32_t>(r->outputs().size()))
        fail("output index " + std::to_string(out) + " out of range");
    return r->output(out);
}

void *
CheckpointReader::table()
{
    const std::int32_t node = i32();
    if (node < 0 || node >= net_.numNodes())
        fail("flow-table node " + std::to_string(node) + " out of range");
    return &net_.router(node)->flowTable();
}

void
saveInjectorQueues(CheckpointWriter &w,
                   const std::vector<InjectorQueue> &queues)
{
    w.u32(static_cast<std::uint32_t>(queues.size()));
    for (const InjectorQueue &q : queues) {
        w.u32(static_cast<std::uint32_t>(q.queue().size()));
        for (const NetPacket *p : q.queue())
            w.pkt(p);
        w.i32(q.outstanding);
    }
}

void
restoreInjectorQueues(CheckpointReader &r,
                      std::vector<InjectorQueue> &queues)
{
    if (r.u32() != queues.size())
        r.fail("external injector-queue count mismatch");
    for (InjectorQueue &q : queues) {
        const std::uint32_t len = r.u32();
        if (len > kMaxQueueLen)
            r.fail("implausible external queue length");
        std::deque<NetPacket *> dq;
        for (std::uint32_t i = 0; i < len; ++i) {
            NetPacket *p = r.pkt();
            if (p == nullptr)
                r.fail("null packet in an external injector queue");
            dq.push_back(p);
        }
        const int outstanding = r.i32();
        if (outstanding < 0 || outstanding > q.windowLimit)
            r.fail("external window counter out of bounds");
        q.restoreRaw(std::move(dq), outstanding);
    }
}

// --- NetSim save ---------------------------------------------------------

void
NetSim::saveExtra(CheckpointWriter &w) const
{
    (void)w;
}

void
NetSim::restoreExtra(CheckpointReader &r)
{
    (void)r;
}

void
NetSim::saveCheckpoint(std::ostream &os) const
{
    auto &net = const_cast<Network &>(*net_);
    CheckpointWriter w(os, net, pool_);

    w.raw(kCheckpointMagic, sizeof(kCheckpointMagic));
    w.u32(kCheckpointVersion);
    w.u64(kEngineSalt);
    w.u64(topologyFingerprint(net));
    w.u64(now_);
    w.u8(engineCfg_.activityDriven ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(engineCfg_.shards));
    w.u32(static_cast<std::uint32_t>(engineCfg_.shardMinActive));

    w.section("metrics");
    w.u64(metrics_.measureStart);
    w.u64(metrics_.measureEnd);
    w.u64(metrics_.generatedPackets);
    w.u64(metrics_.generatedFlits);
    w.u64(metrics_.measuredGenerated);
    w.u64(metrics_.injectedAttempts);
    w.u64(metrics_.deliveredPackets);
    w.u64(metrics_.deliveredFlits);
    const RunningStat::Raw lat = metrics_.latency.raw();
    w.u64(lat.n);
    w.f64(lat.mean);
    w.f64(lat.m2);
    w.f64(lat.min);
    w.f64(lat.max);
    w.f64(lat.sum);
    w.u32(static_cast<std::uint32_t>(metrics_.latencyHist.numBuckets()));
    for (std::size_t i = 0; i < metrics_.latencyHist.numBuckets(); ++i)
        w.u64(metrics_.latencyHist.bucket(i));
    w.u64(metrics_.latencyHist.overflow());
    w.u64(metrics_.latencyHist.count());
    w.u32(static_cast<std::uint32_t>(metrics_.flowFlits.size()));
    for (std::uint64_t f : metrics_.flowFlits)
        w.u64(f);
    w.u64(metrics_.preemptionEvents);
    w.f64(metrics_.usefulHops);
    w.f64(metrics_.wastedHops);

    w.section("packets");
    w.u64(pool_.allocatedCount());
    for (std::size_t i = 0; i < pool_.allocatedCount(); ++i) {
        const NetPacket *p = pool_.at(i);
        w.u64(p->id);
        w.i32(p->flow);
        w.i32(p->src);
        w.i32(p->dst);
        w.i32(p->finalDst);
        w.i32(p->sizeFlits);
        w.u64(p->genCycle);
        w.u64(p->queuedCycle);
        w.u64(p->injectCycle);
        w.u64(p->deliverCycle);
        w.u8(static_cast<std::uint8_t>(p->state));
        w.u8(p->measured ? 1 : 0);
        w.u8(p->rateCompliant ? 1 : 0);
        w.i32(p->attempt);
        w.u64(p->carriedPrio);
        w.u64(p->frameTag);
        w.u64(p->blockedSince);
        w.f64(p->hopsThisAttempt);
        w.i32(p->preemptions);
        w.i32(p->numLocs);
        for (int l = 0; l < p->numLocs; ++l) {
            w.port(p->locs[static_cast<std::size_t>(l)].port);
            w.i32(p->locs[static_cast<std::size_t>(l)].vc);
        }
        w.i32(p->numXfers);
        for (int x = 0; x < p->numXfers; ++x)
            w.output(p->xfers[static_cast<std::size_t>(x)]);
        w.u8(p->inWindow ? 1 : 0);
        w.i32(p->numCharges);
        for (int c = 0; c < p->numCharges; ++c) {
            w.table(p->charges[static_cast<std::size_t>(c)].table);
            w.i32(p->charges[static_cast<std::size_t>(c)].tableIdx);
        }
    }
    w.u64(pool_.freeList().size());
    for (const NetPacket *p : pool_.freeList())
        w.u64(w.pktIndex(p));
    w.u64(pool_.nextId());

    w.section("ports");
    for (NodeId n = 0; n < net.numNodes(); ++n)
        writeVcArray(w, *net.termPort(n));
    for (const InputPort *p : net.auxPorts())
        writeVcArray(w, *p);

    w.section("routers");
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        Router *r = net.router(n);
        w.u32(static_cast<std::uint32_t>(r->inputs().size()));
        for (const auto &in : r->inputs())
            writeVcArray(w, *in);
        w.u32(static_cast<std::uint32_t>(r->outputs().size()));
        for (const auto &out : r->outputs()) {
            w.u64(out->nextStart());
            const OutputPort::Transfer &x = out->transfer();
            w.u8(x.active ? 1 : 0);
            w.pkt(x.pkt);
            w.i32(x.dropIdx);
            w.i32(x.dstVc);
            w.u64(x.firstFlit);
            w.u64(x.tailDepart);
            w.port(x.srcVc.port);
            w.i32(x.srcVc.vc);
        }
        w.u32(static_cast<std::uint32_t>(r->groups().size()));
        for (const auto &g : r->groups())
            w.u64(g->busyUntil());
        w.u8(r->flowTable().enabled() ? 1 : 0);
        if (r->flowTable().enabled())
            w.words(r->flowTable().counts());
        w.words(r->policy().packState());
    }

    w.section("injectors");
    w.u32(static_cast<std::uint32_t>(net.numFlows()));
    for (FlowId f = 0; f < net.numFlows(); ++f) {
        const InjectorQueue &inj = net.injector(f);
        w.u32(static_cast<std::uint32_t>(inj.queue().size()));
        for (const NetPacket *p : inj.queue())
            w.pkt(p);
        w.i32(inj.outstanding);
    }

    w.section("acks");
    w.u32(static_cast<std::uint32_t>(ack_.rawEvents().size()));
    for (const AckEvent &ev : ack_.rawEvents()) {
        w.u64(ev.deliverAt);
        w.pkt(ev.pkt);
        w.u8(ev.isNack ? 1 : 0);
    }

    w.section("engine");
    w.u8(quota_ != nullptr ? 1 : 0);
    if (quota_ != nullptr)
        w.words(quota_->injected());
    w.u8(gate_ != nullptr ? 1 : 0);
    if (gate_ != nullptr)
        w.words(gate_->packState());
    w.u8(source_ != nullptr ? 1 : 0);
    if (source_ != nullptr)
        w.words(source_->packState());

    w.section("extra");
    saveExtra(w);
    w.section("end");
}

// --- NetSim restore ------------------------------------------------------

bool
NetSim::restoreCheckpoint(std::istream &is, std::string *err)
{
    try {
        if (now_ != 0 || pool_.allocatedCount() != 0) {
            throw CheckpointError(
                "restore target must be a freshly built simulation");
        }

        const CheckpointInfo info = readCheckpointInfo(is);
        if (info.salt != kEngineSalt) {
            throw CheckpointError(
                "engine salt mismatch (checkpoint " +
                std::to_string(info.salt) + ", this build " +
                std::to_string(kEngineSalt) +
                "): simulation dynamics changed since the save");
        }
        if (info.fingerprint != topologyFingerprint(*net_)) {
            throw CheckpointError(
                "topology fingerprint mismatch: checkpoint was saved from a "
                "differently-shaped fabric or spec");
        }

        CheckpointReader r(is, *net_, pool_, kHeaderBytes);

        r.expectSection("metrics");
        metrics_.measureStart = r.u64();
        metrics_.measureEnd = r.u64();
        metrics_.generatedPackets = r.u64();
        metrics_.generatedFlits = r.u64();
        metrics_.measuredGenerated = r.u64();
        metrics_.injectedAttempts = r.u64();
        metrics_.deliveredPackets = r.u64();
        metrics_.deliveredFlits = r.u64();
        RunningStat::Raw lat;
        lat.n = r.u64();
        lat.mean = r.f64();
        lat.m2 = r.f64();
        lat.min = r.f64();
        lat.max = r.f64();
        lat.sum = r.f64();
        metrics_.latency.setRaw(lat);
        const std::uint32_t nBuckets = r.u32();
        if (nBuckets != metrics_.latencyHist.numBuckets())
            r.fail("latency histogram geometry mismatch");
        std::vector<std::uint64_t> buckets(nBuckets);
        for (std::uint32_t i = 0; i < nBuckets; ++i)
            buckets[i] = r.u64();
        const std::uint64_t overflow = r.u64();
        const std::uint64_t histCount = r.u64();
        metrics_.latencyHist.setCounts(buckets, overflow, histCount);
        const std::uint32_t nFlows = r.u32();
        if (nFlows != metrics_.flowFlits.size())
            r.fail("per-flow throughput vector size mismatch");
        for (std::uint32_t i = 0; i < nFlows; ++i)
            metrics_.flowFlits[i] = r.u64();
        metrics_.preemptionEvents = r.u64();
        metrics_.usefulHops = r.f64();
        metrics_.wastedHops = r.f64();

        r.expectSection("packets");
        const std::uint64_t pktCount = r.u64();
        if (pktCount > kMaxPackets)
            r.fail("implausible packet count " + std::to_string(pktCount));
        pool_.restoreShape(static_cast<std::size_t>(pktCount));
        for (std::size_t i = 0; i < pktCount; ++i) {
            NetPacket *p = pool_.at(i);
            p->id = r.u64();
            p->flow = r.i32();
            p->src = r.i32();
            p->dst = r.i32();
            p->finalDst = r.i32();
            p->sizeFlits = r.i32();
            p->genCycle = r.u64();
            p->queuedCycle = r.u64();
            p->injectCycle = r.u64();
            p->deliverCycle = r.u64();
            const std::uint8_t state = r.u8();
            if (state > static_cast<std::uint8_t>(PacketState::Dropped))
                r.fail("bad packet state");
            p->state = static_cast<PacketState>(state);
            p->measured = r.u8() != 0;
            p->rateCompliant = r.u8() != 0;
            p->attempt = r.i32();
            p->carriedPrio = r.u64();
            p->frameTag = r.u64();
            p->blockedSince = r.u64();
            p->hopsThisAttempt = r.f64();
            p->preemptions = r.i32();
            p->numLocs = r.i32();
            if (p->numLocs < 0 ||
                p->numLocs > static_cast<int>(p->locs.size()))
                r.fail("bad packet location count");
            for (int l = 0; l < p->numLocs; ++l) {
                p->locs[static_cast<std::size_t>(l)].port = r.port();
                p->locs[static_cast<std::size_t>(l)].vc = r.i32();
            }
            p->numXfers = r.i32();
            if (p->numXfers < 0 ||
                p->numXfers > static_cast<int>(p->xfers.size()))
                r.fail("bad packet transfer count");
            for (int x = 0; x < p->numXfers; ++x)
                p->xfers[static_cast<std::size_t>(x)] = r.output();
            p->inWindow = r.u8() != 0;
            p->numCharges = r.i32();
            if (p->numCharges < 0 ||
                p->numCharges > static_cast<int>(p->charges.size()))
                r.fail("bad packet charge count");
            for (int c = 0; c < p->numCharges; ++c) {
                p->charges[static_cast<std::size_t>(c)].table = r.table();
                p->charges[static_cast<std::size_t>(c)].tableIdx = r.i32();
            }
        }
        const std::uint64_t freeCount = r.u64();
        if (freeCount > pktCount)
            r.fail("free list longer than the pool");
        std::vector<std::size_t> freeIdx(
            static_cast<std::size_t>(freeCount));
        for (std::size_t i = 0; i < freeCount; ++i) {
            const std::uint64_t idx = r.u64();
            if (idx >= pktCount)
                r.fail("free-list index out of range");
            freeIdx[i] = static_cast<std::size_t>(idx);
        }
        const PacketId nextId = r.u64();
        pool_.restoreFreeList(freeIdx, nextId);

        r.expectSection("ports");
        for (NodeId n = 0; n < net_->numNodes(); ++n)
            readVcArray(r, *net_->termPort(n));
        for (InputPort *p : net_->auxPorts())
            readVcArray(r, *p);

        r.expectSection("routers");
        for (NodeId n = 0; n < net_->numNodes(); ++n) {
            Router *rt = net_->router(n);
            if (r.u32() != rt->inputs().size())
                r.fail("input-port count mismatch at node " +
                       std::to_string(n));
            for (const auto &in : rt->inputs())
                readVcArray(r, *in);
            if (r.u32() != rt->outputs().size())
                r.fail("output-port count mismatch at node " +
                       std::to_string(n));
            for (const auto &out : rt->outputs()) {
                const Cycle nextStart = r.u64();
                OutputPort::Transfer x;
                x.active = r.u8() != 0;
                x.pkt = r.pkt();
                x.dropIdx = r.i32();
                x.dstVc = r.i32();
                x.firstFlit = r.u64();
                x.tailDepart = r.u64();
                x.srcVc.port = r.port();
                x.srcVc.vc = r.i32();
                if (x.active &&
                    (x.pkt == nullptr || x.dropIdx < 0 ||
                     x.dropIdx >= static_cast<int>(out->drops.size())))
                    r.fail("bad transfer record at node " + std::to_string(n));
                out->restoreRaw(nextStart, x);
            }
            if (r.u32() != rt->groups().size())
                r.fail("crossbar-group count mismatch at node " +
                       std::to_string(n));
            for (const auto &g : rt->groups())
                g->restoreBusyUntil(r.u64());
            const bool tableEnabled = r.u8() != 0;
            if (tableEnabled != rt->flowTable().enabled())
                r.fail("flow-table presence mismatch at node " +
                       std::to_string(n));
            if (tableEnabled) {
                const std::vector<std::uint64_t> counts = r.words();
                if (counts.size() != rt->flowTable().counts().size())
                    r.fail("flow-table size mismatch at node " +
                           std::to_string(n));
                rt->flowTable().restoreCounts(counts);
            }
            rt->policyState().unpackState(r.words());
        }

        r.expectSection("injectors");
        if (r.u32() != static_cast<std::uint32_t>(net_->numFlows()))
            r.fail("flow count mismatch");
        for (FlowId f = 0; f < net_->numFlows(); ++f) {
            InjectorQueue &inj = net_->injector(f);
            const std::uint32_t qLen = r.u32();
            if (qLen > kMaxQueueLen)
                r.fail("implausible injector queue length");
            std::deque<NetPacket *> q;
            for (std::uint32_t i = 0; i < qLen; ++i) {
                NetPacket *p = r.pkt();
                if (p == nullptr)
                    r.fail("null packet in injector queue");
                q.push_back(p);
            }
            const int outstanding = r.i32();
            if (outstanding < 0 || outstanding > inj.windowLimit)
                r.fail("window counter out of bounds for flow " +
                       std::to_string(f));
            inj.restoreRaw(std::move(q), outstanding);
        }

        r.expectSection("acks");
        const std::uint32_t ackCount = r.u32();
        if (ackCount > kMaxQueueLen)
            r.fail("implausible ACK event count");
        std::vector<AckEvent> acks(ackCount);
        for (std::uint32_t i = 0; i < ackCount; ++i) {
            acks[i].deliverAt = r.u64();
            acks[i].pkt = r.pkt();
            acks[i].isNack = r.u8() != 0;
            if (acks[i].pkt == nullptr)
                r.fail("null packet in ACK event");
        }
        ack_.restoreRaw(std::move(acks));

        r.expectSection("engine");
        const bool hasQuota = r.u8() != 0;
        if (hasQuota != (quota_ != nullptr))
            r.fail("quota-tracker presence mismatch");
        if (hasQuota) {
            const std::vector<std::uint64_t> injected = r.words();
            if (injected.size() != quota_->injected().size())
                r.fail("quota-tracker size mismatch");
            quota_->restoreInjected(injected);
        }
        const bool hasGate = r.u8() != 0;
        if (hasGate != (gate_ != nullptr))
            r.fail("source-gate presence mismatch");
        if (hasGate)
            gate_->unpackState(r.words());
        const bool hasSource = r.u8() != 0;
        if (hasSource != (source_ != nullptr))
            r.fail("traffic-source presence mismatch");
        if (hasSource)
            source_->unpackState(r.words());

        r.expectSection("extra");
        restoreExtra(r);
        r.expectSection("end");

        // The raw overwrites above bypassed every incremental hook:
        // rebuild all derived activity state from the restored structural
        // state. This mirrors a frame-boundary invalidation (full rescan
        // on the next tick), which the engines are proven bit-identical
        // under.
        for (NodeId n = 0; n < net_->numNodes(); ++n)
            net_->router(n)->rebuildFromRestore();
        for (NodeId n = 0; n < net_->numNodes(); ++n)
            net_->termPort(n)->recountHot();
        for (InputPort *p : net_->auxPorts())
            p->recountHot();

        now_ = info.now;

        // Re-arm the worklists with exactly the routers that have work.
        // The uninterrupted run's worklist may hold extra (just-drained)
        // routers, but ticking a work-less router is a provable no-op,
        // so the restored run stays bit-identical.
        if (regions_.empty()) {
            net_->worklist().pending.clear();
            active_.clear();
            for (NodeId n = 0; n < net_->numNodes(); ++n) {
                Router *rt = net_->router(n);
                if (rt->hasWork())
                    rt->setWorklist(&net_->worklist());
                else
                    rt->rebindWorklist(&net_->worklist());
            }
        } else {
            for (Region &reg : regions_) {
                reg.wl.pending.clear();
                reg.active.clear();
                for (NodeId n = reg.begin; n < reg.end; ++n) {
                    Router *rt = net_->router(n);
                    if (rt->hasWork())
                        rt->setWorklist(&reg.wl);
                    else
                        rt->rebindWorklist(&reg.wl);
                }
            }
        }
        return true;
    } catch (const CheckpointError &e) {
        if (err != nullptr)
            *err = e.what();
        return false;
    }
}

} // namespace taqos
