/// \file shard_plan.h
/// Deterministic partitioning helpers for the sharded engine: split a
/// fabric's node range into contiguous weight-balanced regions, and
/// budget sweep-level worker threads against intra-run shard threads so
/// the two levels of parallelism compose without oversubscribing the
/// machine. Pure functions — unit-tested directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace taqos {

class Network;

/// Static per-node work estimate the region planner balances on: one unit
/// of base cost plus one per VC and per injector queue at the node's
/// input ports. Cheap, structural, and identical on every run.
std::vector<std::uint64_t> shardWeights(const Network &net);

/// Split nodes [0, weights.size()) into at most `shards` contiguous
/// regions [begin, end) of near-equal total weight. Regions are ascending
/// and non-empty (fewer than `shards` regions when there are fewer
/// nodes); concatenating them in order yields the full node range, which
/// is what keeps the sharded engine's per-region event order equal to
/// the serial engine's global node order.
std::vector<std::pair<NodeId, NodeId>>
planShardRanges(const std::vector<std::uint64_t> &weights, int shards);

/// Worker-thread budget for a sweep whose cells each run `shards`
/// intra-run threads. Precedence: an explicit sweep-level request
/// (`threads` > 0) is honoured, then capped so workers x shards never
/// exceeds the machine (`hw`, as from std::thread::hardware_concurrency;
/// 0 = unknown, treated as 1); `threads` <= 0 asks for the machine cap
/// itself. Never more workers than cells, never fewer than one.
int sweepWorkerBudget(int threads, std::size_t cells, int shards,
                      unsigned hw);

} // namespace taqos
