/// \file chip_sim.h
/// Whole-chip cycle-level simulation: the NetSim engine driving a
/// ChipNetwork, so the paper's headline scenario — VMs on compute nodes
/// sharing one QOS-protected column — runs cycle-accurately end to end.
///
/// A packet's journey in full-chip mode:
///   1. generated into its compute node's aggregate source queue,
///   2. row segment: NoQos row mesh to the row's column-entry node
///      (`dst` = entry node, `finalDst` = the real destination row),
///   3. handoff: the boundary buffer releases the row window slot and
///      re-queues the packet into its column-entrance injector queue,
///   4. column segment: normal PVC arbitration, preemption, ACK/NACK —
///      identical to the standalone column simulator.
/// In column-equivalence mode (ChipNetConfig::injectAtSources = false)
/// step 1 targets the entrance queues directly and the run is
/// cycle-identical to ColumnSim — the refactor's regression anchor.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/net_sim.h"
#include "topo/chip_network.h"
#include "traffic/generator.h"

namespace taqos {

/// Generates column-flow traffic and injects it at the owning compute
/// nodes (full-chip mode) or directly into the column entrance queues
/// (column-equivalence mode; byte-identical to ColumnSim's generator
/// stream).
class ChipTrafficSource : public TrafficSource {
  public:
    ChipTrafficSource(ChipNetwork &net, const TrafficConfig &traffic);
    /// Generate under a dynamic workload: bursty/ramp specs modulate the
    /// inner generator (steady and churn specs leave it plain — churn is
    /// driven from outside by ChurnDriver). Trace replay is a column
    /// workload; it has no chip embedding.
    ChipTrafficSource(ChipNetwork &net, const TrafficConfig &traffic,
                      const WorkloadSpec &workload);

    void tick(Cycle now, PacketPool &pool,
              std::vector<InjectorQueue> &injectors,
              SimMetrics &metrics) override;

    TrafficGenerator &generator() { return gen_; }

    /// Packets whose generation was skipped due to a full source queue
    /// (either by the inner generator or at a compute-node queue).
    std::uint64_t suppressed() const
    {
        return suppressed_ + gen_.suppressed();
    }

    /// Checkpointing: the inner generator's state (length-prefixed) plus
    /// the dispatch-side suppression counter. The scratch queues drain
    /// within each tick, so they carry no cross-cycle state.
    std::vector<std::uint64_t> packState() const override;
    void unpackState(const std::vector<std::uint64_t> &words) override;

  private:
    ChipNetwork &net_;
    TrafficConfig traffic_;
    TrafficGenerator gen_;
    /// Staging queues the generator fills before packets are dispatched
    /// to their origin (compute-node or column-entrance) queues.
    std::vector<InjectorQueue> scratch_;
    std::uint64_t suppressed_ = 0;
};

class ChipSim : public NetSim {
  public:
    ChipSim(const ChipNetConfig &cfg, const TrafficConfig &traffic);
    ChipSim(const ChipNetConfig &cfg, const TrafficConfig &traffic,
            const WorkloadSpec &workload);
    ~ChipSim() override;

    ChipNetwork &network() { return static_cast<ChipNetwork &>(*net_); }
    const ChipNetwork &network() const
    {
        return static_cast<const ChipNetwork &>(*net_);
    }
    const ChipNetConfig &chipCfg() const { return network().chipCfg(); }
    const ColumnConfig &cfg() const { return network().cfg(); }
    ChipTrafficSource &traffic() { return *src_; }

    /// Packets that crossed a row-to-column handoff so far.
    std::uint64_t handoffs() const { return handoffs_; }

    void checkInvariants() const override;

  protected:
    void tickTerminals() override;
    /// Checkpoint "extra" section: the handoff counter and the
    /// compute-node source queues (the handoff buffers themselves are
    /// aux ports, covered by the base format).
    void saveExtra(CheckpointWriter &w) const override;
    void restoreExtra(CheckpointReader &r) override;

  private:
    void handoff(NetPacket *pkt, InputPort *port, int vcIdx);

    ChipTrafficSource *src_ = nullptr; ///< owned by NetSim::source_
    std::uint64_t handoffs_ = 0;
};

} // namespace taqos
