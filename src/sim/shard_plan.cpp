#include "sim/shard_plan.h"

#include <algorithm>

#include "common/assert.h"
#include "topo/network.h"

namespace taqos {

std::vector<std::uint64_t>
shardWeights(const Network &net)
{
    std::vector<std::uint64_t> weights;
    weights.reserve(static_cast<std::size_t>(net.numNodes()));
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        std::uint64_t w = 1;
        for (const auto &in : net.router(n)->inputs())
            w += in->vcs.size() + in->injectors.size();
        weights.push_back(w);
    }
    return weights;
}

std::vector<std::pair<NodeId, NodeId>>
planShardRanges(const std::vector<std::uint64_t> &weights, int shards)
{
    TAQOS_ASSERT(shards >= 1, "need at least one shard");
    const int n = static_cast<int>(weights.size());
    const int regions = std::min(shards, n);
    std::vector<std::pair<NodeId, NodeId>> out;
    if (regions <= 0)
        return out;

    std::uint64_t total = 0;
    for (std::uint64_t w : weights)
        total += w;

    // Cut at the first node where the running prefix reaches the region's
    // ideal share, reserving one node for every region still to come.
    NodeId begin = 0;
    std::uint64_t prefix = 0;
    for (int k = 0; k < regions; ++k) {
        const int maxEnd = n - (regions - 1 - k);
        const std::uint64_t target =
            total * static_cast<std::uint64_t>(k + 1) /
            static_cast<std::uint64_t>(regions);
        NodeId end = begin + 1;
        prefix += weights[static_cast<std::size_t>(begin)];
        while (end < maxEnd && prefix < target) {
            prefix += weights[static_cast<std::size_t>(end)];
            ++end;
        }
        out.emplace_back(begin, end);
        begin = end;
    }
    TAQOS_ASSERT(out.back().second == n, "regions must cover every node");
    return out;
}

int
sweepWorkerBudget(int threads, std::size_t cells, int shards, unsigned hw)
{
    const int machine = std::max(1, static_cast<int>(hw));
    const int cap = std::max(1, machine / std::max(1, shards));
    int workers = threads > 0 ? std::min(threads, cap) : cap;
    if (cells < static_cast<std::size_t>(workers))
        workers = static_cast<int>(std::max<std::size_t>(1, cells));
    return workers;
}

} // namespace taqos
