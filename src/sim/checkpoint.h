/// \file checkpoint.h
/// Versioned binary snapshots of a live simulation.
///
/// A checkpoint captures the complete *structural* state of a NetSim run
/// at a cycle boundary — every packet record, VC, injector queue,
/// in-flight transfer, policy register, RNG stream and metric counter —
/// and none of the *derived* state (hot counters, cached winner sets,
/// activity worklists). Restore rebuilds the derived state from the
/// structural state (Router::rebuildFromRestore), which is equivalent to
/// the frame-boundary invalidation the engines are already proven
/// bit-identical under. A checkpoint is therefore engine-neutral: a run
/// saved under any engine (activity-driven or always-tick, any shard
/// count, either hot-state layout) restores bit-identically under any
/// other.
///
/// Wire format: a fixed header (magic, format version, engine salt,
/// topology fingerprint, cycle, saving engine config) followed by tagged
/// sections in a fixed order. Integers are host-endian (checkpoints are
/// a same-machine warm-start mechanism, not an interchange format).
/// Cross-references use canonical indices: packets by packet-pool slot,
/// input ports by a global save-order enumeration (each node's router
/// inputs, then its terminal; then aux ports), outputs by (node, output
/// index), flow tables by owning router node. Readers validate every
/// count and tag and throw CheckpointError with the failing section and
/// byte offset, so a truncated or corrupted stream is rejected with a
/// diagnosable error instead of undefined behaviour.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/sim_config.h"

namespace taqos {

class Network;
class PacketPool;
class InputPort;
class OutputPort;
struct NetPacket;
struct InjectorQueue;

inline constexpr char kCheckpointMagic[8] = {'T', 'A', 'Q', 'O',
                                             'S', 'C', 'K', 'P'};

/// Bump on any change to the section layout or record encodings below.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// A checkpoint could not be read: wrong magic/version/salt, topology
/// mismatch, truncation, or a corrupted record. The message names the
/// section and byte offset where the stream became unreadable.
class CheckpointError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// The checkpoint header, readable without a simulation (cache tooling,
/// CLI validation). `engine` is the configuration the run was saved
/// under — informational only; restore is engine-neutral.
struct CheckpointInfo {
    std::uint32_t version = 0;
    std::uint64_t salt = 0;        ///< kEngineSalt of the saving build
    std::uint64_t fingerprint = 0; ///< topologyFingerprint of the fabric
    Cycle now = 0;                 ///< cycle the run was saved at
    EngineConfig engine;
};

/// Read and validate the fixed header (magic and format version; salt
/// and fingerprint are returned for the caller to check against its own
/// build/fabric). Leaves the stream positioned at the first section.
/// Throws CheckpointError.
CheckpointInfo readCheckpointInfo(std::istream &is);

/// Structural hash of a fabric: node/flow counts, QOS mode, and the full
/// port/VC/group/table shape in node order. A checkpoint only restores
/// onto a fabric with the identical fingerprint. Ports with unbounded
/// VCs contribute a zero VC count (their arrays grow with the traffic,
/// which is state, not structure).
std::uint64_t topologyFingerprint(const Network &net);

/// Serializes primitive fields and canonical cross-references onto an
/// output stream. Constructed once per save; builds the pointer-to-index
/// maps for the fabric's packets, ports, outputs and flow tables.
class CheckpointWriter {
  public:
    CheckpointWriter(std::ostream &os, Network &net, const PacketPool &pool);

    void raw(const void *data, std::size_t n);
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void i32(std::int32_t v);
    void u64(std::uint64_t v);
    void f64(double v); ///< bit-exact (raw IEEE-754 image)
    /// Length-prefixed word vector (opaque policy/gate/source state).
    void words(const std::vector<std::uint64_t> &w);
    /// Section delimiter: u8 length + tag bytes.
    void section(const char *tag);

    /// Packet reference: pool index + 1, 0 = null.
    void pkt(const NetPacket *p);
    std::uint64_t pktIndex(const NetPacket *p) const;
    /// Input-port reference: global enumeration + 1, 0 = null.
    void port(const InputPort *p);
    /// Output-port reference: (node, output index).
    void output(const OutputPort *o);
    /// Flow-table reference (an opaque FlowTable*): owning router node.
    void table(const void *t);

  private:
    std::ostream &os_;
    std::unordered_map<const NetPacket *, std::uint64_t> pktIdx_;
    std::unordered_map<const InputPort *, std::uint32_t> portIdx_;
    std::unordered_map<const OutputPort *, std::pair<NodeId, int>> outIdx_;
    std::unordered_map<const void *, NodeId> tableNode_;
};

/// Mirror of CheckpointWriter: decodes the same encodings, tracks the
/// byte offset, and throws CheckpointError (via fail()) on truncation,
/// tag mismatch or an out-of-range reference.
class CheckpointReader {
  public:
    /// `startOffset` accounts for bytes already consumed (the header).
    CheckpointReader(std::istream &is, Network &net, PacketPool &pool,
                     std::uint64_t startOffset);

    std::uint8_t u8();
    std::uint32_t u32();
    std::int32_t i32();
    std::uint64_t u64();
    double f64();
    std::vector<std::uint64_t> words();
    void expectSection(const char *tag);

    NetPacket *pkt();
    InputPort *port();
    OutputPort *output();
    void *table();

    /// Throw CheckpointError annotated with the current section and
    /// byte offset.
    [[noreturn]] void fail(const std::string &what) const;

  private:
    void bytes(void *data, std::size_t n);

    std::istream &is_;
    Network &net_;
    PacketPool &pool_;
    std::vector<InputPort *> ports_; ///< global save-order enumeration
    std::uint64_t offset_;
    std::string section_ = "header";
};

/// Serialize / restore a vector of engine-external injector queues
/// (compute-node source queues in the chip and fabric sims), as
/// length-prefixed packet-reference lists plus the window counters.
/// Restore validates counts and packet references via the reader.
void saveInjectorQueues(CheckpointWriter &w,
                        const std::vector<InjectorQueue> &queues);
void restoreInjectorQueues(CheckpointReader &r,
                           std::vector<InjectorQueue> &queues);

} // namespace taqos
