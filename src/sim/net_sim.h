/// \file net_sim.h
/// The topology-agnostic cycle-level simulation engine. Drives any
/// Network (topo/network.h) from any TrafficSource (traffic/source.h);
/// ColumnSim and ChipSim are thin specializations.
///
/// Per-cycle phase order (dependences are cut by explicit delays, so the
/// order within a cycle only has to be internally consistent):
///   1. Policy frame boundary: advance the source gate's frame window
///      (GSF) and flush flow tables / quota counters (PVC).
///   2. ACK network delivery: completed packets retire and free their
///      window slot; NACKed packets re-enter their source queue.
///   3. Traffic generation into the source queues.
///   4. Router ticks: transfer completions, then VC allocation /
///      preemption per output.
///   5. Terminal ejection: packets whose tail has arrived are delivered.
///
/// By default the engine is *activity-driven*: phase 4 visits only the
/// routers on the shared worklist (those holding an occupied VC, a queued
/// source packet, or an in-flight transfer — see Router::hasWork), and
/// within a ticked router the candidate scan reruns only when an event
/// invalidated the cached winner set. Both optimizations are exact —
/// skipped work is provably a no-op — so the engine is bit-identical to
/// the always-tick reference (setActivityDriven(false)), which the
/// golden-digest and toggle-equivalence tests pin. Engine phases 1-3 and
/// 5 always run: time-driven policy state (the GSF frame window) must
/// advance even when every router is idle.
#pragma once

#include <memory>
#include <vector>

#include "noc/metrics.h"
#include "noc/packet.h"
#include "qos/ack_network.h"
#include "qos/policy.h"
#include "qos/pvc.h"
#include "sim/sim_config.h"
#include "topo/network.h"
#include "traffic/source.h"

namespace taqos {

class NetSim {
  public:
    explicit NetSim(std::unique_ptr<Network> net);
    virtual ~NetSim();
    NetSim(const NetSim &) = delete;
    NetSim &operator=(const NetSim &) = delete;

    /// Advance one cycle.
    void step();

    /// Advance `cycles` cycles.
    void run(Cycle cycles);

    /// Run until every generated packet has been delivered and retired, or
    /// `maxCycles` elapse. Returns the cycle at which the network drained
    /// (kNoCycle on budget exhaustion). Meaningful once generation has a
    /// horizon (TrafficConfig::genUntil); drain checks begin at
    /// `earliestDone` (pass the generation horizon, so a quiet early cycle
    /// is not mistaken for completion).
    Cycle runUntilDrained(Cycle maxCycles, Cycle earliestDone = 0);

    /// True when no packet is live (queued, in flight, or awaiting ACK).
    bool drained() const { return pool_.liveCount() == 0; }

    /// Select the engine: activity-driven (default) or the legacy
    /// always-tick reference that visits every router every cycle. The
    /// two are bit-identical; the reference exists for equivalence tests
    /// and the hot-path ablation. Call before the first step.
    void setActivityDriven(bool on);
    bool activityDriven() const { return activityDriven_; }

    /// Open the measurement window [start, end): latency is recorded for
    /// packets generated inside it, per-flow throughput for deliveries
    /// inside it. Call before the window opens.
    void setMeasureWindow(Cycle start, Cycle end);

    /// Attach (or detach, with nullptr) a flit-trace recorder: wires the
    /// fabric's port/router hooks (Network::setTraceSink) and the
    /// engine-side events (delivery, NACK requeue, ACK retirement). The
    /// recorded stream feeds the independent checker in src/verify.
    void attachTraceSink(TraceSink *sink);

    Cycle now() const { return now_; }
    SimMetrics &metrics() { return metrics_; }
    const SimMetrics &metrics() const { return metrics_; }
    Network &net() { return *net_; }
    const Network &net() const { return *net_; }
    PacketPool &pool() { return pool_; }

    /// Structural self-check: every occupied VC's packet holds a matching
    /// location record, occupancy chains are acyclic, and window counters
    /// are within bounds. Used by tests after every scenario.
    virtual void checkInvariants() const;

  protected:
    /// Install the per-cycle traffic source (call before the first step).
    void setTrafficSource(std::unique_ptr<TrafficSource> source);

    void processFrameBoundary();
    void processAcks();
    /// Phase 5: scan the per-node terminal buffers and deliver
    /// tail-arrived packets. Subclasses extend it for extra ejection-side
    /// buffers (the chip's row-to-column handoffs).
    virtual void tickTerminals();
    void deliver(NetPacket *pkt, InputPort *port, int vcIdx);

    std::unique_ptr<Network> net_;
    std::unique_ptr<TrafficSource> source_;
    std::unique_ptr<QuotaTracker> quota_; ///< null unless PVC
    std::unique_ptr<SourceGate> gate_;    ///< null unless the policy gates
    AckNetwork ack_;
    PacketPool pool_;
    SimMetrics metrics_;
    Cycle now_ = 0;
    bool activityDriven_ = true;
    TraceSink *trace_ = nullptr; ///< flit-trace recorder (null = off)

  private:
    /// Fold newly-armed routers into the sorted active list (node order —
    /// the same relative order the always-tick engine visits).
    void mergeWorklist();
    /// Drop routers whose work drained this cycle.
    void sweepWorklist();

    std::vector<NodeId> active_; ///< sorted ids of routers with work
};

} // namespace taqos
