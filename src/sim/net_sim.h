/// \file net_sim.h
/// The topology-agnostic cycle-level simulation engine. Drives any
/// Network (topo/network.h) from any TrafficSource (traffic/source.h);
/// ColumnSim and ChipSim are thin specializations.
///
/// Per-cycle phase order (dependences are cut by explicit delays, so the
/// order within a cycle only has to be internally consistent):
///   1. Policy frame boundary: advance the source gate's frame window
///      (GSF) and flush flow tables / quota counters (PVC).
///   2. ACK network delivery: completed packets retire and free their
///      window slot; NACKed packets re-enter their source queue.
///   3. Traffic generation into the source queues.
///   4. Router ticks: transfer completions, then VC allocation /
///      preemption per output.
///   5. Terminal ejection: packets whose tail has arrived are delivered.
///
/// By default the engine is *activity-driven*: phase 4 visits only the
/// routers on the shared worklist (those holding an occupied VC, a queued
/// source packet, or an in-flight transfer — see Router::hasWork), and
/// within a ticked router the candidate scan reruns only when an event
/// invalidated the cached winner set. Both optimizations are exact —
/// skipped work is provably a no-op — so the engine is bit-identical to
/// the always-tick reference (setActivityDriven(false)), which the
/// golden-digest and toggle-equivalence tests pin. Engine phases 1-3 and
/// 5 always run: time-driven policy state (the GSF frame window) must
/// advance even when every router is idle.
///
/// setShards(N) splits phase 4 across N threads while staying
/// bit-identical to the serial engines. The fabric is partitioned into N
/// contiguous node-range regions (sim/shard_plan.h), each with a private
/// worklist, and the cycle is restructured into:
///   - a serial prelude (phases 1-3, unchanged);
///   - one parallel dispatch per region: sweep and merge the region's
///     worklist, run transfer completions over its active routers
///     (mutations are router-local by construction), then run the
///     *speculative* candidate scan (Router::tickScan) — a read-only
///     rebuild of each router's cached winner set that defers any
///     impure decision (an unstamped GSF admission) to the next phase;
///   - a serial grant phase: tickArbitrate over every region's active
///     list in region order, which — regions being contiguous and
///     ascending — is exactly the serial engine's node order. Grants,
///     preemptions and gate charges happen only here, so every
///     cross-router effect is ordered as in the serial engine;
///   - serial terminal ejection (phase 5, unchanged).
/// When the live-router count is too small for the dispatch to pay for
/// itself the same schedule runs inline (a state-derived, deterministic
/// choice). With a trace sink attached, completions run serially so the
/// recorded flit stream is byte-identical to the serial engines'.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "noc/metrics.h"
#include "noc/packet.h"
#include "qos/ack_network.h"
#include "qos/policy.h"
#include "qos/pvc.h"
#include "sim/sim_config.h"
#include "topo/network.h"
#include "traffic/source.h"

namespace taqos {

class ShardPool;
class CheckpointWriter;
class CheckpointReader;

class NetSim {
  public:
    explicit NetSim(std::unique_ptr<Network> net);
    virtual ~NetSim();
    NetSim(const NetSim &) = delete;
    NetSim &operator=(const NetSim &) = delete;

    /// Advance one cycle.
    void step();

    /// Advance `cycles` cycles.
    void run(Cycle cycles);

    /// Run until every generated packet has been delivered and retired, or
    /// `maxCycles` elapse. Returns the cycle at which the network drained
    /// (kNoCycle on budget exhaustion). Meaningful once generation has a
    /// horizon (TrafficConfig::genUntil); drain checks begin at
    /// `earliestDone` (pass the generation horizon, so a quiet early cycle
    /// is not mistaken for completion).
    Cycle runUntilDrained(Cycle maxCycles, Cycle earliestDone = 0);

    /// True when no packet is live (queued, in flight, or awaiting ACK).
    bool drained() const { return pool_.liveCount() == 0; }

    /// Apply the engine selection (activity-driven vs. always-tick,
    /// shard count, dispatch threshold) in one call. Must precede the
    /// first step, except that `shardMinActive` alone may be re-tuned
    /// mid-run (it only gates the dispatch heuristic, never results).
    void configure(const EngineConfig &cfg);
    const EngineConfig &engineConfig() const { return engineCfg_; }

    bool activityDriven() const { return engineCfg_.activityDriven; }
    int shards() const { return engineCfg_.shards; }

    /// Deprecated shims over configure() — prefer one EngineConfig.
    [[deprecated("use configure(EngineConfig)")]]
    void setActivityDriven(bool on)
    {
        EngineConfig cfg = engineCfg_;
        cfg.activityDriven = on;
        configure(cfg);
    }
    [[deprecated("use configure(EngineConfig)")]]
    void setShards(int shards)
    {
        EngineConfig cfg = engineCfg_;
        cfg.shards = shards;
        configure(cfg);
    }
    [[deprecated("use configure(EngineConfig)")]]
    void setShardMinActive(int n)
    {
        // Preserves the historical mid-run-callable contract: tune the
        // dispatch threshold without touching engine or shard state.
        engineCfg_.shardMinActive = n;
    }

    /// Open the measurement window [start, end): latency is recorded for
    /// packets generated inside it, per-flow throughput for deliveries
    /// inside it. Call before the window opens.
    void setMeasureWindow(Cycle start, Cycle end);

    /// Attach (or detach, with nullptr) a flit-trace recorder: wires the
    /// fabric's port/router hooks (Network::setTraceSink) and the
    /// engine-side events (delivery, NACK requeue, ACK retirement). The
    /// recorded stream feeds the independent checker in src/verify.
    void attachTraceSink(TraceSink *sink);

    Cycle now() const { return now_; }
    SimMetrics &metrics() { return metrics_; }
    const SimMetrics &metrics() const { return metrics_; }
    Network &net() { return *net_; }
    const Network &net() const { return *net_; }
    PacketPool &pool() { return pool_; }

    /// Serialize the complete live state at the current cycle boundary
    /// (see sim/checkpoint.h for the format and the engine-neutrality
    /// contract). Call between steps, never mid-cycle.
    void saveCheckpoint(std::ostream &os) const;

    /// Restore a snapshot onto this simulation, which must be freshly
    /// built from the identical spec (same topology, policy, traffic
    /// configuration and trace attachment) and never stepped. Returns
    /// false — with a section- and offset-diagnosed message in `err` —
    /// on a version/salt/fingerprint mismatch or a truncated/corrupted
    /// stream; header mismatches leave the sim untouched, but a failure
    /// past the header leaves it partially overwritten and unusable.
    /// After success the run continues bit-identically to the original.
    bool restoreCheckpoint(std::istream &is, std::string *err = nullptr);

    /// Structural self-check: every occupied VC's packet holds a matching
    /// location record, occupancy chains are acyclic, and window counters
    /// are within bounds. Used by tests after every scenario.
    virtual void checkInvariants() const;

  protected:
    /// Install the per-cycle traffic source (call before the first step).
    void setTrafficSource(std::unique_ptr<TrafficSource> source);

    /// Subclass state riding in the checkpoint's "extra" section (chip
    /// handoff buffers, fabric link queues). Overrides must write and
    /// read exactly matching records; restoreExtra reports corruption by
    /// calling CheckpointReader::fail.
    virtual void saveExtra(CheckpointWriter &w) const;
    virtual void restoreExtra(CheckpointReader &r);

    void processFrameBoundary();
    void processAcks();
    /// Phase 5: scan the per-node terminal buffers and deliver
    /// tail-arrived packets. Subclasses extend it for extra ejection-side
    /// buffers (the chip's row-to-column handoffs).
    virtual void tickTerminals();
    void deliver(NetPacket *pkt, InputPort *port, int vcIdx);

    std::unique_ptr<Network> net_;
    std::unique_ptr<TrafficSource> source_;
    std::unique_ptr<QuotaTracker> quota_; ///< null unless PVC
    std::unique_ptr<SourceGate> gate_;    ///< null unless the policy gates
    AckNetwork ack_;
    PacketPool pool_;
    SimMetrics metrics_;
    Cycle now_ = 0;
    EngineConfig engineCfg_;
    TraceSink *trace_ = nullptr; ///< flit-trace recorder (null = off)

  private:
    /// One contiguous node range [begin, end) with its private activity
    /// tracking; the engine owns one per shard.
    struct Region {
        NodeId begin = 0;
        NodeId end = 0;
        ActivityWorklist wl;         ///< arms raised by this region's nodes
        std::vector<NodeId> active;  ///< sorted ids with work, in-range
    };

    /// Fold newly-armed routers into the sorted active list (node order —
    /// the same relative order the always-tick engine visits).
    void mergeWorklist();
    /// Drop routers whose work drained this cycle.
    void sweepWorklist();

    /// The sharded cycle (see file comment); step() delegates here when
    /// setShards(N > 1) partitioned the fabric.
    void stepSharded();
    /// A region's parallel slice of the cycle: sweep + merge its
    /// worklist, completions, then the speculative scan.
    void regionPhase(Region &reg, TickContext &scanCtx);
    void sweepRegion(Region &reg);
    static void mergeRegion(Region &reg);

    std::vector<NodeId> active_; ///< sorted ids of routers with work
    std::vector<Region> regions_;
    std::unique_ptr<ShardPool> shardPool_;
};

} // namespace taqos
