/// \file sim_config.h
/// Run-phase parameters shared by the experiment runners: open-loop
/// measurements warm the network up, measure, then drain.
#pragma once

#include "common/types.h"

namespace taqos {

struct RunPhases {
    Cycle warmup = 20000;
    Cycle measure = 50000;
    Cycle drain = 30000;

    Cycle total() const { return warmup + measure + drain; }
    Cycle measureEnd() const { return warmup + measure; }
};

/// Shorter phases for unit/integration tests.
inline RunPhases
testPhases()
{
    return RunPhases{2000, 6000, 4000};
}

} // namespace taqos
