/// \file sim_config.h
/// Run-phase parameters shared by the experiment runners: open-loop
/// measurements warm the network up, measure, then drain.
#pragma once

#include "common/types.h"

namespace taqos {

struct RunPhases {
    Cycle warmup = 20000;
    Cycle measure = 50000;
    Cycle drain = 30000;

    Cycle total() const { return warmup + measure + drain; }
    Cycle measureEnd() const { return warmup + measure; }
};

/// Shorter phases for unit/integration tests.
inline RunPhases
testPhases()
{
    return RunPhases{2000, 6000, 4000};
}

/// Engine selection for a NetSim, applied in one NetSim::configure call
/// before the first step. Replaces the deprecated setActivityDriven /
/// setShards / setShardMinActive mutator trio.
struct EngineConfig {
    /// Activity-driven router phase (default) vs. the always-tick
    /// reference that visits every router every cycle. Bit-identical;
    /// the reference exists for equivalence tests and ablations.
    bool activityDriven = true;

    /// Threads sharding the router phase (1 = serial). Bit-identical to
    /// the serial engine under either activityDriven setting.
    int shards = 1;

    /// Minimum live routers per shard before a cycle is dispatched to
    /// the thread pool rather than run inline (0 forces the parallel
    /// path every cycle — equivalence tests use it to exercise the pool
    /// on workloads of any size).
    int shardMinActive = 2;
};

} // namespace taqos
