/// \file fabric_sim.h
/// Kilo-node fabric simulation: the NetSim engine driving a
/// FabricNetwork (topo/fabric.h) — every shared column of every chip
/// active, with inter-chip links joining the chips — so the
/// consolidated-server scenario runs cycle-accurately at 1000+ routers.
///
/// A packet's journey generalizes the ChipSim one:
///   1. generated into its origin compute node's aggregate source queue
///      (terminal flows start at their block's entrance queue directly);
///   2. row segment: NoQos row mesh to the origin chip's block-entry
///      node (`dst` = that entry node, `finalDst` = the real
///      destination);
///   3. handoff: the boundary buffer releases the row window slot, then
///      either re-queues the packet into its column-entrance injector
///      queue (local flow) or pushes it onto the inter-chip link toward
///      the destination chip (remote flow), where the arrival performs
///      the same entrance enqueue;
///   4. column segment at the destination block: normal QOS
///      arbitration, preemption, ACK/NACK — identical to the
///      standalone column simulator.
/// Inter-chip links are FIFO delay lines with serialization (width
/// flits/cycle); on a ring, packets hop chip to chip, paying the link
/// delay per hop. Link state is only touched in the serial phases of
/// the cycle, so the sharded engine stays bit-identical; a one-chip
/// one-column fabric is cycle-identical to ChipSim (pinned by tests).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/net_sim.h"
#include "topo/fabric.h"
#include "traffic/generator.h"

namespace taqos {

/// Generates every block's column-flow traffic and injects it at the
/// owning origin: the block entrance for terminal flows, the catchment
/// compute node for local row flows, the remote chip's designated
/// compute node for cross-chip flows. One deterministic generator per
/// block (block 0 keeps the seed unchanged, so a one-block fabric's
/// stream is byte-identical to ChipTrafficSource's).
class FabricTrafficSource : public TrafficSource {
  public:
    FabricTrafficSource(FabricNetwork &net, const TrafficConfig &traffic);
    /// Generate under a dynamic workload: bursty/ramp specs modulate
    /// every block generator (each block's modulator streams derive from
    /// its own decorrelated seed). Trace/churn have no fabric embedding.
    FabricTrafficSource(FabricNetwork &net, const TrafficConfig &traffic,
                        const WorkloadSpec &workload);

    void tick(Cycle now, PacketPool &pool,
              std::vector<InjectorQueue> &injectors,
              SimMetrics &metrics) override;

    /// Packets whose generation was skipped due to a full origin queue.
    std::uint64_t suppressed() const;

    /// Checkpointing: each block generator's state (length-prefixed per
    /// block) plus the dispatch-side suppression counter. The scratch
    /// queues drain within each tick, so they carry no cross-cycle state.
    std::vector<std::uint64_t> packState() const override;
    void unpackState(const std::vector<std::uint64_t> &words) override;

  private:
    FabricNetwork &net_;
    TrafficConfig traffic_;
    std::vector<std::unique_ptr<TrafficGenerator>> gens_; ///< per block
    /// Staging queues (one block's local flows) the generators fill
    /// before packets are dispatched to their origin queues.
    std::vector<InjectorQueue> scratch_;
    std::uint64_t suppressed_ = 0;
};

class FabricSim : public NetSim {
  public:
    FabricSim(const FabricSpec &spec, const TrafficConfig &traffic);
    FabricSim(const FabricSpec &spec, const TrafficConfig &traffic,
              const WorkloadSpec &workload);
    ~FabricSim() override;

    FabricNetwork &network() { return static_cast<FabricNetwork &>(*net_); }
    const FabricNetwork &network() const
    {
        return static_cast<const FabricNetwork &>(*net_);
    }
    const FabricSpec &spec() const { return network().spec(); }
    FabricTrafficSource &traffic() { return *src_; }

    /// Packets that crossed a row-to-column boundary handoff so far.
    std::uint64_t handoffs() const { return handoffs_; }
    /// Inter-chip link traversals so far (a ring transit counts each hop).
    std::uint64_t linkHops() const { return linkHops_; }

    void checkInvariants() const override;

  protected:
    void tickTerminals() override;
    /// Checkpoint "extra" section: the handoff/link counters, the
    /// compute-node source queues, and every inter-chip link's occupancy
    /// horizon and in-flight FIFO.
    void saveExtra(CheckpointWriter &w) const override;
    void restoreExtra(CheckpointReader &r) override;

  private:
    /// One inter-chip channel: a FIFO delay line with serialization
    /// (`nextFree` models the width-limited occupancy).
    struct ChipLink {
        int dstChip = 0;
        Cycle nextFree = 0;
        std::deque<std::pair<NetPacket *, Cycle>> inFlight; ///< (pkt, due)
    };

    void handoff(NetPacket *pkt, InputPort *port, int vcIdx);
    void sendOnLink(NetPacket *pkt, int srcChip, int dstChip);
    /// Serial, top of phase 5: pop due link packets in fixed link order
    /// and enqueue them into their destination-block entrance queues
    /// (ring transits re-enter the next link instead).
    void processLinkArrivals();
    /// Entrance enqueue shared by local handoffs and link arrivals.
    void enterColumn(NetPacket *pkt);

    FabricTrafficSource *src_ = nullptr; ///< owned by NetSim::source_
    /// Point-to-point: links_[src * chips + dst] (diagonal unused).
    /// Ring: links_[c] is chip c's channel to (c + 1) % chips.
    std::vector<ChipLink> links_;
    std::uint64_t handoffs_ = 0;
    std::uint64_t linkHops_ = 0;
};

} // namespace taqos
