#include "sim/shard_pool.h"

#include "common/assert.h"

namespace taqos {

namespace {

constexpr std::uint64_t
packTicket(std::uint64_t epoch, int limit)
{
    return (epoch << 32) | (static_cast<std::uint64_t>(limit) << 16);
}

} // namespace

ShardPool::ShardPool(int extraWorkers)
{
    TAQOS_ASSERT(extraWorkers >= 0, "negative worker count");
    threads_.reserve(static_cast<std::size_t>(extraWorkers));
    for (int i = 0; i < extraWorkers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ShardPool::~ShardPool()
{
    quit_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ShardPool::dispatch(int numTasks, const std::function<void(int)> &fn)
{
    if (numTasks <= 0)
        return;
    TAQOS_ASSERT(numTasks <= kMaxTasks, "task count overflows the ticket");
    if (threads_.empty() || numTasks == 1) {
        for (int t = 0; t < numTasks; ++t)
            fn(t);
        return;
    }

    // Publish the work before the ticket: a claim from the new ticket
    // value (acquire) sees fn_ and the reset completion counter.
    fn_ = &fn;
    completed_.store(0, std::memory_order_relaxed);
    const std::uint64_t epoch =
        epoch_.load(std::memory_order_relaxed) + 1;
    ticket_.store(packTicket(epoch, numTasks), std::memory_order_release);
    epoch_.store(epoch, std::memory_order_release);
    epoch_.notify_all();

    drainTasks();

    int done = completed_.load(std::memory_order_acquire);
    while (done != numTasks) {
        completed_.wait(done, std::memory_order_acquire);
        done = completed_.load(std::memory_order_acquire);
    }
}

void
ShardPool::drainTasks()
{
    while (true) {
        const std::uint64_t claim =
            ticket_.fetch_add(1, std::memory_order_acquire);
        const int index = static_cast<int>(claim & 0xffff);
        const int limit = static_cast<int>((claim >> 16) & 0xffff);
        if (index >= limit)
            return; // dry (or a stale ticket from a finished dispatch)
        (*fn_)(index);
        if (completed_.fetch_add(1, std::memory_order_release) + 1 ==
            limit) {
            completed_.notify_all();
        }
    }
}

void
ShardPool::workerLoop()
{
    std::uint64_t seen = 0;
    while (true) {
        std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
        for (int spin = 0;
             spin < kSpinBudget && epoch == seen &&
             !quit_.load(std::memory_order_relaxed);
             ++spin) {
            epoch = epoch_.load(std::memory_order_acquire);
        }
        if (epoch == seen && !quit_.load(std::memory_order_acquire)) {
            epoch_.wait(seen, std::memory_order_acquire);
            epoch = epoch_.load(std::memory_order_acquire);
        }
        if (quit_.load(std::memory_order_acquire))
            return;
        if (epoch == seen)
            continue; // spurious wake
        seen = epoch;
        drainTasks();
    }
}

} // namespace taqos
