#include "sim/fabric_sim.h"

#include "common/assert.h"
#include "noc/trace_sink.h"
#include "sim/checkpoint.h"

namespace taqos {

FabricTrafficSource::FabricTrafficSource(FabricNetwork &net,
                                         const TrafficConfig &traffic)
    : FabricTrafficSource(net, traffic, WorkloadSpec{})
{
}

FabricTrafficSource::FabricTrafficSource(FabricNetwork &net,
                                         const TrafficConfig &traffic,
                                         const WorkloadSpec &workload)
    : net_(net), traffic_(traffic),
      scratch_(static_cast<std::size_t>(net.flowsPerBlock()))
{
    TAQOS_ASSERT(workload.isSteady() || workload.modulated(),
                 "fabric traffic supports steady/bursty/ramp workloads, "
                 "got %s",
                 workloadKindName(workload.kind));
    const int fpb = net_.flowsPerBlock();
    const int slots = net_.slotsPerNode();
    gens_.reserve(static_cast<std::size_t>(net_.blocks()));
    for (int g = 0; g < net_.blocks(); ++g) {
        const int j = g % net_.blocksPerChip();
        TrafficConfig bt = traffic_;
        // Decorrelate the blocks' Bernoulli streams; block 0 keeps the
        // seed unchanged so a one-block fabric reproduces
        // ChipTrafficSource's stream byte for byte. A modulated workload
        // derives each block's modulator streams from the same
        // per-block seed, so burst phases decorrelate too.
        bt.seed = traffic_.seed +
                  0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(g);
        bt.activeFlows.assign(static_cast<std::size_t>(fpb), false);
        for (int f = 0; f < fpb; ++f) {
            const FlowId F = g * fpb + f;
            bt.activeFlows[static_cast<std::size_t>(f)] =
                net_.slotUsable(j, f % slots) && traffic_.flowActive(F);
        }
        if (!traffic_.flowRates.empty()) {
            bt.flowRates.assign(
                traffic_.flowRates.begin() + g * fpb,
                traffic_.flowRates.begin() + (g + 1) * fpb);
        }
        gens_.push_back(std::make_unique<TrafficGenerator>(
            net_.blockCfg(g), bt, workload));
    }
}

std::uint64_t
FabricTrafficSource::suppressed() const
{
    std::uint64_t n = suppressed_;
    for (const auto &gen : gens_)
        n += gen->suppressed();
    return n;
}

void
FabricTrafficSource::tick(Cycle now, PacketPool &pool,
                          std::vector<InjectorQueue> &injectors,
                          SimMetrics &metrics)
{
    const int B = net_.blocksPerChip();
    const int H = net_.gridHeight();
    const int slots = net_.slotsPerNode();
    const int fpb = net_.flowsPerBlock();

    for (int g = 0; g < net_.blocks(); ++g) {
        gens_[static_cast<std::size_t>(g)]->tick(now, pool, scratch_,
                                                 metrics);
        const int c = g / B;
        const int j = g % B;
        const NodeId base = net_.blockBase(g);
        for (int f = 0; f < fpb; ++f) {
            InjectorQueue &staged =
                scratch_[static_cast<std::size_t>(f)];
            while (!staged.queue().empty()) {
                NetPacket *pkt = staged.dequeue();
                const int k = f % slots;
                const int y = f / slots;
                const FlowId F = g * fpb + f;
                const NodeId localDst = pkt->dst; // generator picks 0..H-1
                TAQOS_ASSERT(localDst >= 0 && localDst < H,
                             "generated destination out of the block");

                InjectorQueue *origin = nullptr;
                if (k == 0) {
                    // Terminal flows originate at the block node itself.
                    origin = &injectors[static_cast<std::size_t>(F)];
                    pkt->src = base + y;
                    pkt->dst = base + localDst;
                } else {
                    // Row flows ride the origin chip's row mesh to its
                    // block-entry node first; the wiring decides which
                    // compute-node port pulls this flow's row queue.
                    // `src` stays the column entry so ACK/NACK distances
                    // remain column-local, exactly like ChipSim.
                    int originChip = c;
                    if (k > static_cast<int>(net_.catchment(j).size()))
                        originChip = net_.remoteSourceChip(c, k);
                    origin =
                        &net_.rowQueues()[static_cast<std::size_t>(F)];
                    pkt->src = base + y;
                    pkt->finalDst = base + localDst;
                    pkt->dst = net_.blockNodeId(originChip, j, y);
                }
                pkt->flow = F;

                if (origin->queue().size() >= traffic_.maxQueueDepth) {
                    // Bounded memory far past saturation: undo the
                    // generator's accounting, as its own suppression
                    // would.
                    ++suppressed_;
                    --metrics.generatedPackets;
                    metrics.generatedFlits -=
                        static_cast<std::uint64_t>(pkt->sizeFlits);
                    if (pkt->measured)
                        --metrics.measuredGenerated;
                    pool.release(pkt);
                    continue;
                }
                origin->enqueue(pkt);
            }
        }
    }
}

std::vector<std::uint64_t>
FabricTrafficSource::packState() const
{
    std::vector<std::uint64_t> w;
    w.push_back(gens_.size());
    for (const auto &gen : gens_) {
        const std::vector<std::uint64_t> g = gen->packState();
        w.push_back(g.size());
        w.insert(w.end(), g.begin(), g.end());
    }
    w.push_back(suppressed_);
    return w;
}

void
FabricTrafficSource::unpackState(const std::vector<std::uint64_t> &words)
{
    TAQOS_ASSERT(!words.empty(), "fabric traffic-source state empty");
    TAQOS_ASSERT(words[0] == gens_.size(),
                 "fabric traffic-source generator count mismatch");
    std::size_t pos = 1;
    for (const auto &gen : gens_) {
        TAQOS_ASSERT(pos < words.size(),
                     "fabric traffic-source state truncated");
        const std::size_t len = static_cast<std::size_t>(words[pos++]);
        TAQOS_ASSERT(pos + len < words.size() + 1,
                     "fabric traffic-source state truncated");
        gen->unpackState(std::vector<std::uint64_t>(
            words.begin() + static_cast<std::ptrdiff_t>(pos),
            words.begin() + static_cast<std::ptrdiff_t>(pos + len)));
        pos += len;
    }
    TAQOS_ASSERT(pos + 1 == words.size(),
                 "fabric traffic-source state size mismatch");
    suppressed_ = words[pos];
}

FabricSim::FabricSim(const FabricSpec &spec, const TrafficConfig &traffic)
    : FabricSim(spec, traffic, WorkloadSpec{})
{
}

FabricSim::FabricSim(const FabricSpec &spec, const TrafficConfig &traffic,
                     const WorkloadSpec &workload)
    : NetSim(FabricNetwork::build(spec))
{
    auto src = std::make_unique<FabricTrafficSource>(network(), traffic,
                                                     workload);
    src_ = src.get();
    setTrafficSource(std::move(src));

    const FabricSpec &sp = network().spec();
    if (sp.chips > 1) {
        if (sp.links == LinkTopology::PointToPoint) {
            links_.resize(
                static_cast<std::size_t>(sp.chips) *
                static_cast<std::size_t>(sp.chips));
            for (int s = 0; s < sp.chips; ++s) {
                for (int d = 0; d < sp.chips; ++d)
                    links_[static_cast<std::size_t>(s * sp.chips + d)]
                        .dstChip = d;
            }
        } else {
            links_.resize(static_cast<std::size_t>(sp.chips));
            for (int s = 0; s < sp.chips; ++s)
                links_[static_cast<std::size_t>(s)].dstChip =
                    (s + 1) % sp.chips;
        }
    }
}

FabricSim::~FabricSim() = default;

void
FabricSim::sendOnLink(NetPacket *pkt, int srcChip, int dstChip)
{
    const FabricSpec &sp = spec();
    ChipLink &link = sp.links == LinkTopology::PointToPoint
        ? links_[static_cast<std::size_t>(srcChip * sp.chips + dstChip)]
        : links_[static_cast<std::size_t>(srcChip)];
    const Cycle due = std::max(
        now_ + static_cast<Cycle>(sp.linkDelay), link.nextFree);
    link.nextFree =
        due + static_cast<Cycle>((pkt->sizeFlits + sp.linkWidthFlits - 1) /
                                 sp.linkWidthFlits);
    link.inFlight.emplace_back(pkt, due);
    ++linkHops_;
}

void
FabricSim::enterColumn(NetPacket *pkt)
{
    pkt->state = PacketState::Queued;
    pkt->queuedCycle = now_;
    pkt->dst = pkt->finalDst;
    net().injector(pkt->flow).enqueue(pkt);
}

void
FabricSim::processLinkArrivals()
{
    for (ChipLink &link : links_) {
        while (!link.inFlight.empty() &&
               link.inFlight.front().second <= now_) {
            NetPacket *pkt = link.inFlight.front().first;
            link.inFlight.pop_front();
            const int want = network().chipOfNode(pkt->finalDst);
            if (want != link.dstChip) {
                // Ring transit: pay another hop toward the destination
                // (due > now, so the next link won't re-pop it this
                // cycle).
                sendOnLink(pkt, link.dstChip, want);
                continue;
            }
            enterColumn(pkt);
        }
    }
}

void
FabricSim::tickTerminals()
{
    processLinkArrivals();
    NetSim::tickTerminals();
    for (InputPort *port : network().auxPorts()) {
        if (activityDriven() && port->occupied() == 0)
            continue;
        for (int v = 0; v < static_cast<int>(port->vcs.size()); ++v) {
            VirtualChannel &vc = port->vcs[static_cast<std::size_t>(v)];
            if (vc.state() != VirtualChannel::State::Reserved)
                continue;
            if (now_ >= vc.tailArrival())
                handoff(vc.packet(), port, v);
        }
    }
}

void
FabricSim::handoff(NetPacket *pkt, InputPort *port, int vcIdx)
{
    TAQOS_ASSERT(pkt->state == PacketState::InFlight,
                 "handoff for packet in state %d",
                 static_cast<int>(pkt->state));
    TAQOS_ASSERT(pkt->finalDst != kInvalidNode,
                 "handoff for packet without a final destination");

    pkt->removeLoc(port, vcIdx);
    port->vcs[static_cast<std::size_t>(vcIdx)].free(
        now_ + static_cast<Cycle>(port->creditDelay));
    if (trace_ != nullptr)
        trace_->segment(now_, *port, vcIdx, *pkt, pkt->finalDst);

    // The row traversal is completed service, not replayable work: a
    // later column preemption replays only the column segment.
    metrics_.usefulHops += pkt->hopsThisAttempt;

    // Release the row-segment window slot; the retransmission window is
    // claimed afresh at the column entrance.
    InjectorQueue &origin = network().sourceQueue(pkt->flow);
    TAQOS_ASSERT(pkt->inWindow, "handoff for packet outside row window");
    pkt->inWindow = false;
    --origin.outstanding;
    TAQOS_ASSERT(origin.outstanding >= 0, "row window underflow");
    // The freed row-window slot may unblock the origin node's queue.
    origin.noteWindowChange();
    ++handoffs_;

    const int destBlock = network().blockOfFlow(pkt->flow);
    if (network().blockOfNode(port->node) == destBlock) {
        enterColumn(pkt);
        return;
    }
    // Remote flow: cross the link fabric; the arrival performs the
    // entrance enqueue at the destination chip.
    const int here = network().chipOfNode(port->node);
    const int want =
        network().chipOfNode(network().blockBase(destBlock));
    TAQOS_ASSERT(here != want,
                 "cross-block handoff within one chip (flow %d)",
                 pkt->flow);
    sendOnLink(pkt, here, want);
}

void
FabricSim::saveExtra(CheckpointWriter &w) const
{
    w.u64(handoffs_);
    w.u64(linkHops_);
    saveInjectorQueues(w,
                       const_cast<FabricSim *>(this)->network().rowQueues());
    w.u32(static_cast<std::uint32_t>(links_.size()));
    for (const ChipLink &link : links_) {
        w.u64(link.nextFree);
        w.u32(static_cast<std::uint32_t>(link.inFlight.size()));
        for (const auto &[pkt, due] : link.inFlight) {
            w.pkt(pkt);
            w.u64(due);
        }
    }
}

void
FabricSim::restoreExtra(CheckpointReader &r)
{
    handoffs_ = r.u64();
    linkHops_ = r.u64();
    restoreInjectorQueues(r, network().rowQueues());
    if (r.u32() != links_.size())
        r.fail("inter-chip link count mismatch");
    for (ChipLink &link : links_) {
        link.nextFree = r.u64();
        const std::uint32_t len = r.u32();
        if (len > (1u << 24))
            r.fail("implausible link FIFO length");
        link.inFlight.clear();
        for (std::uint32_t i = 0; i < len; ++i) {
            NetPacket *pkt = r.pkt();
            const Cycle due = r.u64();
            if (pkt == nullptr)
                r.fail("null packet on an inter-chip link");
            link.inFlight.emplace_back(pkt, due);
        }
    }
}

void
FabricSim::checkInvariants() const
{
    NetSim::checkInvariants();
    auto &net = const_cast<FabricSim *>(this)->network();
    for (const auto &q : net.rowQueues()) {
        if (q.flow == kInvalidFlow)
            continue; // terminal or inactive slot, unused
        TAQOS_ASSERT(q.outstanding >= 0 && q.outstanding <= q.windowLimit,
                     "row window counter out of bounds for flow %d",
                     q.flow);
    }
    for (const ChipLink &link : links_) {
        Cycle prev = 0;
        for (const auto &[pkt, due] : link.inFlight) {
            TAQOS_ASSERT(pkt->state == PacketState::InFlight,
                         "link-resident packet in state %d",
                         static_cast<int>(pkt->state));
            TAQOS_ASSERT(due >= prev, "link FIFO order violated");
            prev = due;
        }
    }
}

} // namespace taqos
