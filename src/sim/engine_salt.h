/// \file engine_salt.h
/// The engine-version salt stamped into every checkpoint and every
/// content-addressed sweep-cache key.
///
/// Contract: bump kEngineSalt whenever a change can alter the observable
/// dynamics of a simulation for an unchanged spec — arbitration order,
/// policy arithmetic, RNG consumption, packet sizing, metric definitions,
/// the checkpoint wire format itself. Cached sweep cells and saved
/// checkpoints from the previous salt then miss / fail validation instead
/// of silently serving stale results. Pure refactors, new features that
/// leave existing specs byte-identical, and build-system changes do NOT
/// bump it (the golden-digest tests are the arbiter: if they still pass
/// unchanged, the salt stays).
///
/// This constant lives alone in this header so CI can key cache artifacts
/// on a hash of the one file.
#pragma once

#include <cstdint>

namespace taqos {

inline constexpr std::uint64_t kEngineSalt = 0x7a51'0001'0000'0001ull;

} // namespace taqos
