#include "sim/chip_sim.h"

#include "common/assert.h"
#include "noc/trace_sink.h"
#include "sim/checkpoint.h"

namespace taqos {

ChipTrafficSource::ChipTrafficSource(ChipNetwork &net,
                                     const TrafficConfig &traffic)
    : net_(net), traffic_(traffic), gen_(net.cfg(), traffic),
      scratch_(static_cast<std::size_t>(net.cfg().numFlows()))
{
}

ChipTrafficSource::ChipTrafficSource(ChipNetwork &net,
                                     const TrafficConfig &traffic,
                                     const WorkloadSpec &workload)
    : net_(net), traffic_(traffic), gen_(net.cfg(), traffic, workload),
      scratch_(static_cast<std::size_t>(net.cfg().numFlows()))
{
    TAQOS_ASSERT(workload.kind != WorkloadKind::Trace,
                 "trace replay is a column workload; the chip has no "
                 "embedding for it");
}

void
ChipTrafficSource::tick(Cycle now, PacketPool &pool,
                        std::vector<InjectorQueue> &injectors,
                        SimMetrics &metrics)
{
    if (!net_.injectAtSources()) {
        gen_.tick(now, pool, injectors, metrics);
        return;
    }

    gen_.tick(now, pool, scratch_, metrics);
    const int perNode = net_.cfg().injectorsPerNode;
    for (std::size_t f = 0; f < scratch_.size(); ++f) {
        InjectorQueue &staged = scratch_[f];
        while (!staged.queue().empty()) {
            NetPacket *pkt = staged.dequeue();
            // Terminal flows originate at the column node itself; row
            // flows at their compute node.
            const bool terminal = static_cast<int>(f) % perNode == 0;
            InjectorQueue &origin =
                terminal ? injectors[f] : net_.sourceQueue(pkt->flow);
            if (origin.queue().size() >= traffic_.maxQueueDepth) {
                // Bounded memory far past saturation: undo the
                // generator's accounting, as its own suppression would.
                ++suppressed_;
                --metrics.generatedPackets;
                metrics.generatedFlits -=
                    static_cast<std::uint64_t>(pkt->sizeFlits);
                if (pkt->measured)
                    --metrics.measuredGenerated;
                pool.release(pkt);
                continue;
            }
            if (!terminal) {
                // Row segment first: route to the column-entry node.
                pkt->finalDst = pkt->dst;
                pkt->dst =
                    net_.columnNodeId(net_.cfg().nodeOfFlow(pkt->flow));
            }
            origin.enqueue(pkt);
        }
    }
}

std::vector<std::uint64_t>
ChipTrafficSource::packState() const
{
    const std::vector<std::uint64_t> g = gen_.packState();
    std::vector<std::uint64_t> w;
    w.reserve(g.size() + 2);
    w.push_back(g.size());
    w.insert(w.end(), g.begin(), g.end());
    w.push_back(suppressed_);
    return w;
}

void
ChipTrafficSource::unpackState(const std::vector<std::uint64_t> &words)
{
    TAQOS_ASSERT(!words.empty(), "chip traffic-source state empty");
    const std::size_t genLen = static_cast<std::size_t>(words[0]);
    TAQOS_ASSERT(words.size() == genLen + 2,
                 "chip traffic-source state size mismatch");
    gen_.unpackState(
        std::vector<std::uint64_t>(words.begin() + 1,
                                   words.begin() + 1 +
                                       static_cast<std::ptrdiff_t>(genLen)));
    suppressed_ = words.back();
}

ChipSim::ChipSim(const ChipNetConfig &cfg, const TrafficConfig &traffic)
    : NetSim(ChipNetwork::build(cfg))
{
    auto src = std::make_unique<ChipTrafficSource>(network(), traffic);
    src_ = src.get();
    setTrafficSource(std::move(src));
}

ChipSim::ChipSim(const ChipNetConfig &cfg, const TrafficConfig &traffic,
                 const WorkloadSpec &workload)
    : NetSim(ChipNetwork::build(cfg))
{
    auto src = std::make_unique<ChipTrafficSource>(network(), traffic,
                                                   workload);
    src_ = src.get();
    setTrafficSource(std::move(src));
}

ChipSim::~ChipSim() = default;

void
ChipSim::tickTerminals()
{
    NetSim::tickTerminals();
    for (InputPort *port : network().auxPorts()) {
        if (activityDriven() && port->occupied() == 0)
            continue;
        for (int v = 0; v < static_cast<int>(port->vcs.size()); ++v) {
            VirtualChannel &vc = port->vcs[static_cast<std::size_t>(v)];
            if (vc.state() != VirtualChannel::State::Reserved)
                continue;
            if (now_ >= vc.tailArrival())
                handoff(vc.packet(), port, v);
        }
    }
}

void
ChipSim::handoff(NetPacket *pkt, InputPort *port, int vcIdx)
{
    TAQOS_ASSERT(pkt->state == PacketState::InFlight,
                 "handoff for packet in state %d",
                 static_cast<int>(pkt->state));
    TAQOS_ASSERT(pkt->finalDst != kInvalidNode,
                 "handoff for packet without a final destination");

    pkt->removeLoc(port, vcIdx);
    port->vcs[static_cast<std::size_t>(vcIdx)].free(
        now_ + static_cast<Cycle>(port->creditDelay));
    if (trace_ != nullptr)
        trace_->segment(now_, *port, vcIdx, *pkt, pkt->finalDst);

    // The row traversal is completed service, not replayable work: a
    // later column preemption replays only the column segment.
    metrics_.usefulHops += pkt->hopsThisAttempt;

    // Release the row-segment window slot; the PVC retransmission window
    // is claimed afresh at the column entrance.
    InjectorQueue &origin = network().sourceQueue(pkt->flow);
    TAQOS_ASSERT(pkt->inWindow, "handoff for packet outside row window");
    pkt->inWindow = false;
    --origin.outstanding;
    TAQOS_ASSERT(origin.outstanding >= 0, "row window underflow");
    // The freed row-window slot may unblock the compute node's queue.
    origin.noteWindowChange();

    pkt->state = PacketState::Queued;
    pkt->queuedCycle = now_;
    pkt->dst = pkt->finalDst;
    net().injector(pkt->flow).enqueue(pkt);
    ++handoffs_;
}

void
ChipSim::saveExtra(CheckpointWriter &w) const
{
    w.u64(handoffs_);
    saveInjectorQueues(w, const_cast<ChipSim *>(this)->network().rowQueues());
}

void
ChipSim::restoreExtra(CheckpointReader &r)
{
    handoffs_ = r.u64();
    restoreInjectorQueues(r, network().rowQueues());
}

void
ChipSim::checkInvariants() const
{
    NetSim::checkInvariants();
    auto &net = const_cast<ChipSim *>(this)->network();
    for (const auto &q : net.rowQueues()) {
        if (q.flow == kInvalidFlow)
            continue; // terminal-flow slot, unused
        TAQOS_ASSERT(q.outstanding >= 0 && q.outstanding <= q.windowLimit,
                     "row window counter out of bounds for flow %d",
                     q.flow);
    }
}

} // namespace taqos
