#include "sim/net_sim.h"

#include <algorithm>

#include "common/assert.h"
#include "noc/trace_sink.h"
#include "router/router.h"
#include "sim/shard_plan.h"
#include "sim/shard_pool.h"

namespace taqos {

NetSim::NetSim(std::unique_ptr<Network> net)
    : net_(std::move(net)), metrics_(net_->numFlows())
{
    if (net_->policyTraits().usesSourceQuota())
        quota_ = std::make_unique<QuotaTracker>(net_->pvcParams());
    gate_ = makeSourceGate(net_->mode(), net_->pvcParams());
}

NetSim::~NetSim() = default;

void
NetSim::setTrafficSource(std::unique_ptr<TrafficSource> source)
{
    source_ = std::move(source);
}

void
NetSim::setMeasureWindow(Cycle start, Cycle end)
{
    metrics_.measureStart = start;
    metrics_.measureEnd = end;
}

void
NetSim::configure(const EngineConfig &cfg)
{
    // The dispatch threshold only gates the pool-vs-inline heuristic
    // (never results), so it stays tunable mid-run; everything else must
    // precede the first step.
    if (now_ != 0) {
        TAQOS_ASSERT(cfg.activityDriven == engineCfg_.activityDriven &&
                         cfg.shards == engineCfg_.shards,
                     "engine selection must precede the first step");
        engineCfg_.shardMinActive = cfg.shardMinActive;
        return;
    }
    TAQOS_ASSERT(cfg.shards >= 1, "need at least one shard");
    engineCfg_ = cfg;
    engineCfg_.shards =
        std::min(cfg.shards, std::max(1, net_->numNodes()));
    regions_.clear();
    shardPool_.reset();
    net_->worklist().pending.clear();

    if (engineCfg_.shards <= 1) {
        // Back to the shared worklist (tests flip this both ways). Armed
        // routers re-enter pending; their flags are authoritative.
        for (NodeId n = 0; n < net_->numNodes(); ++n) {
            Router *r = net_->router(n);
            r->rebindWorklist(&net_->worklist());
            if (r->inWorklist())
                net_->worklist().pending.push_back(n);
        }
        return;
    }

    const auto ranges =
        planShardRanges(shardWeights(*net_), engineCfg_.shards);
    regions_.resize(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        Region &reg = regions_[i];
        reg.begin = ranges[i].first;
        reg.end = ranges[i].second;
        for (NodeId n = reg.begin; n < reg.end; ++n) {
            Router *r = net_->router(n);
            r->rebindWorklist(&reg.wl);
            if (r->inWorklist())
                reg.wl.pending.push_back(n);
        }
    }
    shardPool_ =
        std::make_unique<ShardPool>(static_cast<int>(regions_.size()) - 1);
}

void
NetSim::attachTraceSink(TraceSink *sink)
{
    trace_ = sink;
    net_->setTraceSink(sink);
}

void
NetSim::mergeWorklist()
{
    auto &pending = net_->worklist().pending;
    if (pending.empty())
        return;
    // Restore node order: the always-tick engine visits routers by
    // ascending node id, and same-cycle mutations (a grant at router A
    // dirtying router B) must stay ordered identically.
    std::sort(pending.begin(), pending.end());
    const auto mid = static_cast<std::ptrdiff_t>(active_.size());
    active_.insert(active_.end(), pending.begin(), pending.end());
    std::inplace_merge(active_.begin(), active_.begin() + mid,
                       active_.end());
    pending.clear();
}

void
NetSim::sweepWorklist()
{
    std::erase_if(active_, [this](NodeId n) {
        Router *r = net_->router(n);
        if (r->hasWork())
            return false;
        r->leaveWorklist();
        return true;
    });
}

void
NetSim::processFrameBoundary()
{
    // Source-gated policies (GSF) advance their global frame window on
    // their own schedule (drain-driven early reclamation). A window
    // advance resets injection budgets — gated source packets may become
    // admissible — so cached arbitration state network-wide is stale.
    if (gate_ != nullptr) {
        const std::uint64_t epoch = gate_->epoch();
        gate_->rollover(now_);
        if (gate_->epoch() != epoch &&
            net_->policyTraits().invalidatesOnFrameBoundary()) {
            net_->invalidateArbitration();
        }
    }

    const Cycle frame = net_->policyTraits().frameLen();
    if (frame == 0 || now_ == 0 || now_ % frame != 0)
        return;
    for (NodeId n = 0; n < net_->numNodes(); ++n)
        net_->router(n)->frameFlush();
    if (quota_ != nullptr)
        quota_->flush();

    // The flush clears bandwidth history everywhere — including the
    // priority copies carried by in-flight packets (priority reuse).
    // Stale pre-flush priorities would otherwise starve DPS pass-through
    // traffic against freshly-zeroed local counters for much of a frame.
    const auto clearPort = [](InputPort *port) {
        for (auto &vc : port->vcs) {
            if (NetPacket *pkt = vc.packet())
                pkt->carriedPrio = 0;
        }
    };
    for (NodeId n = 0; n < net_->numNodes(); ++n) {
        for (const auto &in : net_->router(n)->inputs())
            clearPort(in.get());
        clearPort(net_->termPort(n));
    }
    for (InputPort *port : net_->auxPorts())
        clearPort(port);

    // The flush rewrote the state cached winner rankings were computed
    // from (flow tables, quota counters, carried priorities).
    if (net_->policyTraits().invalidatesOnFrameBoundary())
        net_->invalidateArbitration();
}

void
NetSim::processAcks()
{
    AckEvent ev;
    while (ack_.popDue(now_, ev)) {
        NetPacket *pkt = ev.pkt;
        InjectorQueue &inj = net_->injector(pkt->flow);
        if (ev.isNack) {
            // Retransmit: back to the head of the source queue; the packet
            // keeps its window slot and its original generation time.
            TAQOS_ASSERT(pkt->state == PacketState::Dropped,
                         "NACK for packet not dropped");
            pkt->state = PacketState::Queued;
            pkt->queuedCycle = now_;
            if (trace_ != nullptr)
                trace_->requeue(now_, *pkt);
            inj.enqueueFront(pkt);
        } else {
            TAQOS_ASSERT(pkt->state == PacketState::Delivered,
                         "ACK for undelivered packet");
            TAQOS_ASSERT(pkt->inWindow, "ACK for packet outside window");
            pkt->inWindow = false;
            --inj.outstanding;
            TAQOS_ASSERT(inj.outstanding >= 0, "window underflow");
            // The retired slot may unblock a head packet stalled on the
            // retransmission window.
            inj.noteWindowChange();
            if (trace_ != nullptr)
                trace_->retire(now_, *pkt);
            pool_.release(pkt);
        }
    }
}

void
NetSim::deliver(NetPacket *pkt, InputPort *port, int vcIdx)
{
    pkt->state = PacketState::Delivered;
    pkt->deliverCycle = now_;
    if (trace_ != nullptr)
        trace_->deliver(now_, *port, vcIdx, *pkt);
    pkt->removeLoc(port, vcIdx);
    port->vcs[static_cast<std::size_t>(vcIdx)].free(
        now_ + static_cast<Cycle>(port->creditDelay));

    ++metrics_.deliveredPackets;
    metrics_.deliveredFlits += static_cast<std::uint64_t>(pkt->sizeFlits);
    metrics_.usefulHops += pkt->hopsThisAttempt;
    if (pkt->measured) {
        const double lat = static_cast<double>(now_ - pkt->genCycle);
        metrics_.latency.push(lat);
        metrics_.latencyHist.add(lat);
    }
    if (metrics_.inWindow(now_)) {
        metrics_.flowFlits[static_cast<std::size_t>(pkt->flow)] +=
            static_cast<std::uint64_t>(pkt->sizeFlits);
    }

    ack_.send(now_, net_->ackDistance(pkt->src, pkt->dst), pkt,
              /*isNack=*/false);
    if (gate_ != nullptr)
        gate_->onDeliver(*pkt, now_);
}

void
NetSim::tickTerminals()
{
    for (NodeId n = 0; n < net_->numNodes(); ++n) {
        InputPort *port = net_->termPort(n);
        // Incremental-occupancy shortcut: an empty ejection buffer has
        // nothing to deliver (exact — occupied()==0 means every VC Free).
        if (engineCfg_.activityDriven && port->occupied() == 0)
            continue;
        for (int v = 0; v < static_cast<int>(port->vcs.size()); ++v) {
            VirtualChannel &vc = port->vcs[static_cast<std::size_t>(v)];
            if (vc.state() != VirtualChannel::State::Reserved)
                continue;
            if (now_ >= vc.tailArrival())
                deliver(vc.packet(), port, v);
        }
    }
}

void
NetSim::sweepRegion(Region &reg)
{
    std::erase_if(reg.active, [this](NodeId n) {
        Router *r = net_->router(n);
        if (r->hasWork())
            return false;
        r->leaveWorklist();
        return true;
    });
}

void
NetSim::mergeRegion(Region &reg)
{
    auto &pending = reg.wl.pending;
    if (pending.empty())
        return;
    std::sort(pending.begin(), pending.end());
    const auto mid = static_cast<std::ptrdiff_t>(reg.active.size());
    reg.active.insert(reg.active.end(), pending.begin(), pending.end());
    std::inplace_merge(reg.active.begin(), reg.active.begin() + mid,
                       reg.active.end());
    pending.clear();
}

void
NetSim::regionPhase(Region &reg, TickContext &scanCtx)
{
    // The sweep is the serial engine's end-of-cycle sweep, delayed to the
    // start of the next: a router that drained last cycle but was armed
    // again by this cycle's prelude simply stays (the prelude's arm was a
    // no-op on its still-set flag), which is exactly the set the serial
    // order produces.
    sweepRegion(reg);
    mergeRegion(reg);
    for (NodeId n : reg.active)
        net_->router(n)->tickCompletions(scanCtx.now);
    for (NodeId n : reg.active)
        net_->router(n)->tickScan(scanCtx);
}

void
NetSim::stepSharded()
{
    if (trace_ != nullptr)
        trace_->noteCycle(now_);
    processFrameBoundary();
    processAcks();
    if (source_ != nullptr)
        source_->tick(now_, pool_, net_->injectors(), metrics_);

    TickContext ctx;
    ctx.now = now_;
    ctx.quota = quota_.get();
    ctx.ack = &ack_;
    ctx.metrics = &metrics_;
    ctx.gate = gate_.get();
    ctx.forceScan = !engineCfg_.activityDriven;

    if (engineCfg_.activityDriven) {
        TickContext scanCtx = ctx;
        scanCtx.speculative = true;

        // Dispatch only when there is enough live work to amortize the
        // fork-join; the threshold reads pre-sweep state, so the choice
        // is a pure function of simulation state (deterministic).
        std::size_t live = 0;
        for (const Region &reg : regions_)
            live += reg.active.size() + reg.wl.pending.size();
        const bool par =
            live >= regions_.size() *
                        static_cast<std::size_t>(engineCfg_.shardMinActive);

        if (trace_ != nullptr) {
            // Completions emit trace events; keep every mutating walk
            // serial in node order so the recorded stream is
            // byte-identical to the serial engines'. The scans are pure
            // and may still fan out.
            for (Region &reg : regions_) {
                sweepRegion(reg);
                mergeRegion(reg);
                for (NodeId n : reg.active)
                    net_->router(n)->tickCompletions(now_);
            }
            if (par) {
                shardPool_->dispatch(
                    static_cast<int>(regions_.size()), [&](int i) {
                        Region &reg =
                            regions_[static_cast<std::size_t>(i)];
                        for (NodeId n : reg.active)
                            net_->router(n)->tickScan(scanCtx);
                    });
            } else {
                for (Region &reg : regions_)
                    for (NodeId n : reg.active)
                        net_->router(n)->tickScan(scanCtx);
            }
        } else if (par) {
            shardPool_->dispatch(
                static_cast<int>(regions_.size()), [&](int i) {
                    regionPhase(regions_[static_cast<std::size_t>(i)],
                                scanCtx);
                });
        } else {
            for (Region &reg : regions_)
                regionPhase(reg, scanCtx);
        }

        // Serial grant phase: regions are contiguous and ascending, so
        // this is the serial engine's global node order. All cross-router
        // mutation (VC reservation, preemption kills, gate charges, arms)
        // happens here; a grant that invalidates a later router's
        // speculative scan re-dirties it through the usual hooks, and
        // tickArbitrate rescans exactly those outputs.
        for (Region &reg : regions_)
            for (NodeId n : reg.active)
                net_->router(n)->tickArbitrate(ctx);
    } else {
        // Always-tick reference, sharded: completions are router-local
        // and run over the full node ranges in parallel; the arbitration
        // sweep stays serial (it is where all ordering lives).
        shardPool_->dispatch(
            static_cast<int>(regions_.size()), [&](int i) {
                const Region &reg =
                    regions_[static_cast<std::size_t>(i)];
                for (NodeId n = reg.begin; n < reg.end; ++n)
                    net_->router(n)->tickCompletions(now_);
            });
        for (NodeId n = 0; n < net_->numNodes(); ++n)
            net_->router(n)->tickArbitrate(ctx);
    }

    tickTerminals();
    ++now_;
}

void
NetSim::step()
{
    if (!regions_.empty()) {
        stepSharded();
        return;
    }
    if (trace_ != nullptr)
        trace_->noteCycle(now_);
    processFrameBoundary();
    processAcks();
    if (source_ != nullptr)
        source_->tick(now_, pool_, net_->injectors(), metrics_);

    TickContext ctx;
    ctx.now = now_;
    ctx.quota = quota_.get();
    ctx.ack = &ack_;
    ctx.metrics = &metrics_;
    ctx.gate = gate_.get();
    ctx.forceScan = !engineCfg_.activityDriven;

    if (engineCfg_.activityDriven) {
        // Tick only routers with work. Arms raised by the phases above
        // (NACK requeues, fresh traffic) are folded in first; arms raised
        // *during* the router phases (a grant reserving a downstream VC,
        // a handoff enqueue in the terminal phase) target state that is
        // not actionable until next cycle — a previously-idle router's
        // tick this cycle would be a no-op — so they join then, exactly
        // matching the always-tick schedule.
        mergeWorklist();
        for (NodeId n : active_)
            net_->router(n)->tickCompletions(now_);
        for (NodeId n : active_)
            net_->router(n)->tickArbitrate(ctx);
    } else {
        for (NodeId n = 0; n < net_->numNodes(); ++n)
            net_->router(n)->tickCompletions(now_);
        for (NodeId n = 0; n < net_->numNodes(); ++n)
            net_->router(n)->tickArbitrate(ctx);
    }

    tickTerminals();
    if (engineCfg_.activityDriven)
        sweepWorklist();
    ++now_;
}

void
NetSim::run(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c)
        step();
}

Cycle
NetSim::runUntilDrained(Cycle maxCycles, Cycle earliestDone)
{
    const Cycle limit = now_ + maxCycles;
    while (now_ < limit) {
        if (now_ >= earliestDone && drained() && ack_.pending() == 0)
            return now_;
        step();
    }
    return drained() && ack_.pending() == 0 ? now_ : kNoCycle;
}

namespace {

void
checkPortInvariants(const InputPort &port)
{
    for (int v = 0; v < static_cast<int>(port.vcs.size()); ++v) {
        const VirtualChannel &vc = port.vcs[static_cast<std::size_t>(v)];
        if (vc.state() == VirtualChannel::State::Free)
            continue;
        const NetPacket *pkt = vc.packet();
        TAQOS_ASSERT(pkt != nullptr, "occupied VC without packet");
        TAQOS_ASSERT(pkt->state == PacketState::InFlight,
                     "VC %s/%d holds packet in state %d", port.name.c_str(),
                     v, static_cast<int>(pkt->state));
        bool found = false;
        for (int i = 0; i < pkt->numLocs; ++i) {
            const VcRef &loc = pkt->locs[static_cast<std::size_t>(i)];
            if (loc.port == &port && loc.vc == v)
                found = true;
        }
        TAQOS_ASSERT(found, "VC %s/%d not in its packet's locations",
                     port.name.c_str(), v);
    }
}

} // namespace

void
NetSim::checkInvariants() const
{
    auto *net = const_cast<Network *>(net_.get());
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        for (const auto &in : net->router(n)->inputs())
            checkPortInvariants(*in);
        checkPortInvariants(*net->termPort(n));
    }
    for (const InputPort *port : net->auxPorts())
        checkPortInvariants(*port);
    for (const auto &inj : net->injectors()) {
        TAQOS_ASSERT(inj.outstanding >= 0 &&
                         inj.outstanding <= inj.windowLimit,
                     "window counter out of bounds for flow %d", inj.flow);
    }

    // Activity-tracking consistency: the incremental counts must agree
    // with a full rescan, and every router with work must be armed (a
    // live router missing from the worklist would silently freeze).
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        const Router *r = net->router(n);
        int occupied = 0;
        int queued = 0;
        for (const auto &in : r->inputs()) {
            TAQOS_ASSERT(in->occupied() == in->occupiedVcs(),
                         "port %s occupancy count drifted (%d vs %d)",
                         in->name.c_str(), in->occupied(),
                         in->occupiedVcs());
            occupied += in->occupied();
            for (const InjectorQueue *inj : in->injectors)
                queued += static_cast<int>(inj->queue().size());
        }
        TAQOS_ASSERT(r->occupiedVcCount() == occupied,
                     "router %d VC-occupancy count drifted (%d vs %d)", n,
                     r->occupiedVcCount(), occupied);
        TAQOS_ASSERT(r->queuedPacketCount() == queued,
                     "router %d queued-packet count drifted (%d vs %d)", n,
                     r->queuedPacketCount(), queued);
        TAQOS_ASSERT(!engineCfg_.activityDriven || !r->hasWork() || r->inWorklist(),
                     "router %d has work but is not armed", n);
    }
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        const InputPort *term = net->termPort(n);
        TAQOS_ASSERT(term->occupied() == term->occupiedVcs(),
                     "terminal %d occupancy count drifted", n);
    }
    for (const InputPort *port : net->auxPorts()) {
        TAQOS_ASSERT(port->occupied() == port->occupiedVcs(),
                     "aux port %s occupancy count drifted",
                     port->name.c_str());
    }
}

} // namespace taqos
