/// \file experiments.h
/// Runners for every table and figure in the paper's evaluation (Sec. 5).
/// Each returns a structured result; the bench binaries format them into
/// the same rows/series the paper reports.
///
/// Every simulation-backed runner is a thin wrapper around the parallel
/// sweep engine (exp/sweep.h): a `*Spec()` builder names the grid, a
/// `*FromSweep()` mapper turns the engine's generic cell records back
/// into the figure's row type, and `run*()` composes the two through a
/// SweepRunner. Drivers that want the JSON result pipeline (or a custom
/// thread count) call the spec builder and the runner themselves.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "exp/sweep.h"
#include "power/router_power.h"
#include "sim/sim_config.h"
#include "topo/fabric.h"
#include "topo/topology.h"
#include "traffic/pattern.h"

namespace taqos {

/// Default column configuration of the paper (Table 1 + Sec. 4): 8 nodes,
/// 64 injectors, PVC with a 50K-cycle frame.
ColumnConfig paperColumn(TopologyKind kind, QosMode mode = QosMode::Pvc);

// ---------------------------------------------------------------- Fig. 3

struct AreaRow {
    TopologyKind topology;
    AreaBreakdown area;
};

/// Router area overhead per topology (input buffers, crossbar, flow state;
/// row-input buffering is the topology-independent dotted line).
std::vector<AreaRow> runFig3Area();

// ---------------------------------------------------------------- Fig. 4

struct LatencyPoint {
    double injectionRate = 0.0; ///< flits/cycle/injector
    double avgLatency = 0.0;    ///< cycles (generation to tail ejection)
    double throughput = 0.0;    ///< delivered flits/cycle/injector
    double p95Latency = 0.0;
    bool saturated = false; ///< latency diverged / deliveries incomplete
};

struct LatencySeries {
    TopologyKind topology;
    std::vector<LatencyPoint> points;
};

/// Latency/throughput vs offered load for all five topologies, under any
/// arbitration policy (the paper's Fig. 4 uses PVC).
std::vector<LatencySeries> runFig4Latency(TrafficPattern pattern,
                                          const std::vector<double> &rates,
                                          const RunPhases &phases = {},
                                          QosMode mode = QosMode::Pvc);

/// The sweep grid behind runFig4Latency (topologies x rates, one pattern).
SweepSpec fig4Spec(TrafficPattern pattern, const std::vector<double> &rates,
                   const RunPhases &phases = {}, QosMode mode = QosMode::Pvc);
std::vector<LatencySeries> latencySeriesFromSweep(const SweepResult &result);

// ------------------------------------------------- Sec. 5.2 (text): E4

struct SaturationPreemption {
    TopologyKind topology;
    double packetRate = 0.0; ///< preemption events / delivered packets
    double hopRate = 0.0;    ///< wasted hop traversals / total traversals
};

/// Preemption (replay) rates in saturation for a pattern.
std::vector<SaturationPreemption>
runSaturationPreemption(TrafficPattern pattern, double rate = 0.15,
                        const RunPhases &phases = {});

SweepSpec saturationSpec(TrafficPattern pattern, double rate = 0.15,
                         const RunPhases &phases = {},
                         QosMode mode = QosMode::Pvc);

// --------------------------------------------------------------- Table 2

struct FairnessRow {
    TopologyKind topology;
    double meanFlits = 0.0;
    double minFlits = 0.0;
    double maxFlits = 0.0;
    double stddevFlits = 0.0;
    std::uint64_t preemptions = 0;

    double minPct() const { return 100.0 * minFlits / meanFlits; }
    double maxPct() const { return 100.0 * maxFlits / meanFlits; }
    double stddevPct() const { return 100.0 * stddevFlits / meanFlits; }
};

/// Hotspot fairness: every injector streams to the node-0 terminal;
/// reports per-flow delivered flits (mean/min/max/stddev), as Table 2.
/// `mode` selects the arbitration policy under test (the paper's table
/// evaluates PVC; the starvation premise is no-qos).
std::vector<FairnessRow> runTable2Fairness(Cycle measureCycles = 280000,
                                           Cycle warmup = 20000,
                                           QosMode mode = QosMode::Pvc);

SweepSpec table2Spec(Cycle measureCycles = 280000, Cycle warmup = 20000,
                     QosMode mode = QosMode::Pvc);
std::vector<FairnessRow> fairnessFromSweep(const SweepResult &result);

// --------------------------------------------------------- Figs. 5 and 6

struct AdversarialResult {
    TopologyKind topology;
    int workload = 0; ///< 1 or 2 (grids may carry both)
    double preemptedPacketsPct = 0.0; ///< Fig. 5 "Packets"
    double replayedHopsPct = 0.0;     ///< Fig. 5 "Hops"
    double slowdownPct = 0.0;         ///< Fig. 6 vs per-flow queueing
    double avgDeviationPct = 0.0;     ///< Fig. 6 vs max-min expectation
    double minDeviationPct = 0.0;
    double maxDeviationPct = 0.0;
    Cycle completionCycle = 0;
};

/// Workload 1 or 2 (Sec. 5.3): runs PVC and the preemption-free per-flow
/// queueing reference on identical traffic; measures preemption incidence,
/// completion-time slowdown, and deviation from max-min throughput.
std::vector<AdversarialResult> runAdversarial(int workload,
                                              Cycle genCycles = 100000);

/// `workload` 1 or 2 selects one workload; 0 puts both on the grid (the
/// fig5/fig6 drivers run them as one sweep for full parallelism).
SweepSpec adversarialSpec(int workload, Cycle genCycles = 100000);
std::vector<AdversarialResult> adversarialFromSweep(const SweepResult &result);

// ---------------------------------------------------------------- Fig. 7

enum class HopKind { Source, Intermediate, Destination };

struct EnergyRow {
    TopologyKind topology;
    /// Energy (pJ/flit) split by component, per hop kind, plus the 3-hop
    /// route total (four router traversals for mesh/DPS; source +
    /// express channel + destination for MECS).
    double srcPj[3] = {};  ///< [buffers, xbar, flow table]
    double intPj[3] = {};
    double dstPj[3] = {};
    double threeHopPj[3] = {};

    static double total(const double c[3]) { return c[0] + c[1] + c[2]; }
};

std::vector<EnergyRow> runFig7Energy();

// ------------------------------------- consolidated server (Secs. 1, 2)

struct ChipVmShare {
    int vmId = -1;
    std::uint32_t weight = 1;
    std::size_t domainNodes = 0;
    std::uint64_t flits = 0;       ///< delivered in the measure window
    double flitsPerNode = 0.0;     ///< service normalized by domain size
};

struct ChipConsolidationResult {
    Cycle drainCycle = kNoCycle;   ///< kNoCycle when the budget ran out
    std::uint64_t deliveredPackets = 0;
    std::uint64_t handoffs = 0;    ///< row-to-column boundary crossings
    std::uint64_t preemptions = 0;
    double avgLatency = 0.0;       ///< end-to-end, row segment included
    std::vector<ChipVmShare> vms;
};

/// The paper's consolidated-server scenario cycle-accurate end to end on
/// the full 8x8 chip: the hypervisor admits three VMs with different SLA
/// weights, programs the shared column's flow registers from the
/// placements, and every VM's memory traffic rides its row mesh into the
/// PVC-protected column. Runs to drain and verifies the chip invariants.
ChipConsolidationResult
runChipConsolidation(TopologyKind kind = TopologyKind::Dps,
                     double ratePerNode = 0.05,
                     const RunPhases &phases = {});

SweepSpec chipConsolidationSpec(TopologyKind kind = TopologyKind::Dps,
                                double ratePerNode = 0.05,
                                const RunPhases &phases = {});
/// Maps the first cell of a ChipConsolidation sweep back into the
/// structured result (one cell == one scenario run).
ChipConsolidationResult chipConsolidationFromCell(const CellResult &cell);

// ------------------------------------- fabric-scale consolidation (PR 8)

/// The consolidated-server scenario scaled to a multi-chip fabric.
struct FabricConsolidationConfig {
    int chips = 4;
    ChipConfig chip;
    TopologyKind topology = TopologyKind::Dps;
    QosMode mode = QosMode::Pvc;
    LinkTopology links = LinkTopology::PointToPoint;
    double ratePerNode = 0.05; ///< flits/cycle per owned compute node
    /// Each owned compute node also streams this fraction of its rate
    /// into every remote chip's nearest protected column.
    double remoteShare = 0.25;
    int shards = 1; ///< EngineConfig::shards (bit-identical by contract)
    std::uint64_t seed = 1;
    RunPhases phases;
    /// Dynamic-workload shape (steady/bursty/ramp; trace and churn have
    /// no fabric embedding). Bursty/ramp modulate every block generator
    /// with per-block decorrelated modulator streams.
    WorkloadSpec workload;
    /// Record the flit trace and run the independent checker's audit on
    /// it (result.auditOk / auditEvents / auditDiagnostic).
    bool audit = false;
};

struct FabricVmShare {
    int chip = 0;
    int vmId = -1;
    std::uint32_t weight = 1;
    std::size_t domainNodes = 0;
    std::uint64_t flits = 0;   ///< delivered for this VM's flows (local
                               ///< and remote), in the measure window
    double flitsPerNode = 0.0;
};

struct FabricConsolidationResult {
    int nodes = 0;                 ///< routers in the fabric
    Cycle drainCycle = kNoCycle;   ///< kNoCycle when the budget ran out
    std::uint64_t deliveredPackets = 0;
    std::uint64_t handoffs = 0;    ///< row-to-column boundary crossings
    std::uint64_t linkHops = 0;    ///< inter-chip link traversals
    std::uint64_t preemptions = 0;
    double avgLatency = 0.0;       ///< end-to-end, rows and links included
    std::uint64_t digest = 0;      ///< metricsDigest (sharding identity)
    std::vector<FabricVmShare> vms;
    /// Checker audit of the recorded trace (cfg.audit only).
    bool auditOk = true;
    std::uint64_t auditEvents = 0;
    std::string auditDiagnostic;
};

/// The consolidated-server scenario at fabric scale: every chip runs its
/// own hypervisor admitting the paper's three-VM mix, every shared column
/// of every chip is an active QOS block with flow registers programmed
/// from the VM placements, and each VM's memory traffic targets its local
/// protected columns plus (at `remoteShare` of its rate) the remote
/// chips' columns across the inter-chip links. Runs to drain and checks
/// the fabric invariants.
FabricConsolidationResult
runFabricConsolidation(const FabricConsolidationConfig &cfg = {});

} // namespace taqos
