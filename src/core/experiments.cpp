#include "core/experiments.h"

#include "common/assert.h"
#include "common/strings.h"
#include "chip/os.h"
#include "noc/metrics.h"
#include "power/tech.h"
#include "sim/fabric_sim.h"
#include "sim/trace_record.h"
#include "topo/geometry.h"
#include "verify/checker.h"

#include <optional>

namespace taqos {
namespace {

/// Shared scaffolding of the figure specs: the paper's five topologies,
/// PVC, replicate-free, and — crucially — mixSeeds off, so every cell
/// runs with the historical default traffic seed and the ported runners
/// stay bit-identical to the pre-engine serial loops.
SweepSpec
figureSpec(Scenario scenario, const std::string &name)
{
    SweepSpec spec;
    spec.scenario = scenario;
    spec.name = name;
    spec.replicates = 1;
    spec.mixSeeds = false;
    spec.baseSeed = TrafficConfig{}.seed;
    return spec;
}

} // namespace

ColumnConfig
paperColumn(TopologyKind kind, QosMode mode)
{
    ColumnConfig col;
    col.topology = kind;
    col.mode = mode;
    return col;
}

std::vector<AreaRow>
runFig3Area()
{
    const TechParams tech = tech32nm();
    std::vector<AreaRow> rows;
    for (auto kind : kAllTopologies) {
        const ColumnConfig col = paperColumn(kind);
        const RouterGeometry geom = representativeGeometry(kind, col);
        rows.push_back(AreaRow{kind, computeRouterArea(geom, tech)});
    }
    return rows;
}

// ---------------------------------------------------------------- Fig. 4

SweepSpec
fig4Spec(TrafficPattern pattern, const std::vector<double> &rates,
         const RunPhases &phases, QosMode mode)
{
    SweepSpec spec = figureSpec(Scenario::LatencyLoad, "fig4_latency");
    spec.patterns = {pattern};
    spec.modes = {mode};
    spec.rates = rates;
    spec.phases = phases;
    return spec;
}

std::vector<LatencySeries>
latencySeriesFromSweep(const SweepResult &result)
{
    // One curve per topology over the rate axis: a faithful mapping
    // needs every other axis collapsed. Multi-pattern or replicated
    // grids must be consumed through SweepResult directly.
    TAQOS_ASSERT(result.spec.patterns.size() == 1 &&
                     result.spec.modes.size() == 1 &&
                     result.spec.replicates == 1,
                 "latencySeriesFromSweep needs a single-pattern, "
                 "single-mode, replicate-free sweep");
    std::vector<LatencySeries> series;
    for (const auto &cell : result.cells) {
        if (series.empty() ||
            series.back().topology != cell.spec.topology) {
            LatencySeries s;
            s.topology = cell.spec.topology;
            series.push_back(std::move(s));
        }
        LatencyPoint p;
        p.injectionRate = cell.spec.rate;
        p.avgLatency = cell.get("avg_latency");
        p.p95Latency = cell.get("p95_latency");
        p.throughput = cell.get("throughput");
        p.saturated = cell.get("saturated") > 0.5;
        series.back().points.push_back(p);
    }
    return series;
}

std::vector<LatencySeries>
runFig4Latency(TrafficPattern pattern, const std::vector<double> &rates,
               const RunPhases &phases, QosMode mode)
{
    return latencySeriesFromSweep(
        SweepRunner().run(fig4Spec(pattern, rates, phases, mode)));
}

// ------------------------------------------------- Sec. 5.2 (text): E4

SweepSpec
saturationSpec(TrafficPattern pattern, double rate, const RunPhases &phases,
               QosMode mode)
{
    SweepSpec spec = figureSpec(Scenario::LatencyLoad, "sat_preemption");
    spec.patterns = {pattern};
    spec.modes = {mode};
    spec.rates = {rate};
    spec.phases = phases;
    return spec;
}

std::vector<SaturationPreemption>
runSaturationPreemption(TrafficPattern pattern, double rate,
                        const RunPhases &phases)
{
    const SweepResult result =
        SweepRunner().run(saturationSpec(pattern, rate, phases));
    std::vector<SaturationPreemption> rows;
    for (const auto &cell : result.cells) {
        rows.push_back(SaturationPreemption{
            cell.spec.topology, cell.get("preemption_packet_rate"),
            cell.get("preemption_hop_rate")});
    }
    return rows;
}

// --------------------------------------------------------------- Table 2

SweepSpec
table2Spec(Cycle measureCycles, Cycle warmup, QosMode mode)
{
    SweepSpec spec = figureSpec(Scenario::Hotspot, "table2_hotspot");
    // Every injector (terminal and row inputs, node 0 included) streams
    // to the node-0 terminal well above the 1/64 fair share.
    spec.modes = {mode};
    spec.rates = {0.05};
    spec.phases = RunPhases{warmup, measureCycles, 0};
    return spec;
}

std::vector<FairnessRow>
fairnessFromSweep(const SweepResult &result)
{
    std::vector<FairnessRow> rows;
    for (const auto &cell : result.cells) {
        FairnessRow row;
        row.topology = cell.spec.topology;
        row.meanFlits = cell.get("mean_flits");
        row.minFlits = cell.get("min_flits");
        row.maxFlits = cell.get("max_flits");
        row.stddevFlits = cell.get("stddev_flits");
        row.preemptions =
            static_cast<std::uint64_t>(cell.get("preemptions"));
        rows.push_back(row);
    }
    return rows;
}

std::vector<FairnessRow>
runTable2Fairness(Cycle measureCycles, Cycle warmup, QosMode mode)
{
    return fairnessFromSweep(
        SweepRunner().run(table2Spec(measureCycles, warmup, mode)));
}

// --------------------------------------------------------- Figs. 5 and 6

SweepSpec
adversarialSpec(int workload, Cycle genCycles)
{
    TAQOS_ASSERT(workload >= 0 && workload <= 2,
                 "workload must be 1 or 2 (0 = both)");
    SweepSpec spec = figureSpec(Scenario::Adversarial, "adversarial");
    spec.workloads = workload == 0 ? std::vector<int>{1, 2}
                                   : std::vector<int>{workload};
    spec.genCycles = genCycles;
    return spec;
}

std::vector<AdversarialResult>
adversarialFromSweep(const SweepResult &result)
{
    std::vector<AdversarialResult> rows;
    for (const auto &cell : result.cells) {
        AdversarialResult row;
        row.topology = cell.spec.topology;
        row.workload = cell.spec.workload;
        row.preemptedPacketsPct = cell.get("preempted_packets_pct");
        row.replayedHopsPct = cell.get("replayed_hops_pct");
        row.slowdownPct = cell.get("slowdown_pct");
        row.avgDeviationPct = cell.get("avg_deviation_pct");
        row.minDeviationPct = cell.get("min_deviation_pct");
        row.maxDeviationPct = cell.get("max_deviation_pct");
        row.completionCycle =
            static_cast<Cycle>(cell.get("completion_cycle"));
        rows.push_back(row);
    }
    return rows;
}

std::vector<AdversarialResult>
runAdversarial(int workload, Cycle genCycles)
{
    return adversarialFromSweep(
        SweepRunner().run(adversarialSpec(workload, genCycles)));
}

// ---------------------------------------------------------------- Fig. 7

std::vector<EnergyRow>
runFig7Energy()
{
    const TechParams tech = tech32nm();
    std::vector<EnergyRow> rows;
    for (auto kind : kAllTopologies) {
        const ColumnConfig col = paperColumn(kind);
        const RouterGeometry geom = representativeGeometry(kind, col);
        const RouterEnergyProfile e = computeRouterEnergy(geom, tech);

        const double buf = e.bufferWritePj + e.bufferReadPj;
        const double flow = e.flowQueryPj + e.flowUpdatePj;

        EnergyRow row;
        row.topology = kind;
        // Source and destination traversals are full router hops in every
        // topology: buffer write+read, crossbar, flow-state query+update.
        row.srcPj[0] = buf;
        row.srcPj[1] = e.xbarPj;
        row.srcPj[2] = flow;
        row.dstPj[0] = buf;
        row.dstPj[1] = e.xbarPj;
        row.dstPj[2] = flow;

        int intermediates = 2; // on a 3-hop route
        switch (kind) {
          case TopologyKind::MeshX1:
          case TopologyKind::MeshX2:
          case TopologyKind::MeshX4:
            // Full router traversal at every intermediate hop.
            row.intPj[0] = buf;
            row.intPj[1] = e.xbarPj;
            row.intPj[2] = flow;
            break;
          case TopologyKind::Mecs:
          case TopologyKind::FlatButterfly:
            // Single-network-hop topologies pass intermediate nodes on
            // wires; no router traversal at all.
            row.intPj[0] = row.intPj[1] = row.intPj[2] = 0.0;
            break;
          case TopologyKind::Dps:
            // 2:1 mux hop: buffer write+read only — no crossbar, no
            // flow-state access (priority reuse).
            row.intPj[0] = buf;
            row.intPj[1] = e.muxPj;
            row.intPj[2] = 0.0;
            break;
        }
        for (int c = 0; c < 3; ++c) {
            row.threeHopPj[c] =
                row.srcPj[c] + intermediates * row.intPj[c] + row.dstPj[c];
        }
        rows.push_back(row);
    }
    return rows;
}

// ------------------------------------- consolidated server (Secs. 1, 2)

SweepSpec
chipConsolidationSpec(TopologyKind kind, double ratePerNode,
                      const RunPhases &phases)
{
    SweepSpec spec =
        figureSpec(Scenario::ChipConsolidation, "chip_consolidation");
    spec.topologies = {kind};
    spec.rates = {ratePerNode};
    spec.placements = {0}; // the paper's three-VM consolidated-server mix
    spec.phases = phases;
    return spec;
}

ChipConsolidationResult
chipConsolidationFromCell(const CellResult &cell)
{
    TAQOS_ASSERT(cell.spec.scenario == Scenario::ChipConsolidation,
                 "cell is not a consolidation run");
    ChipConsolidationResult res;
    const double drain = cell.get("drain_cycle");
    res.drainCycle = drain < 0.0 ? kNoCycle : static_cast<Cycle>(drain);
    res.deliveredPackets =
        static_cast<std::uint64_t>(cell.get("delivered_packets"));
    res.handoffs = static_cast<std::uint64_t>(cell.get("handoffs"));
    res.preemptions = static_cast<std::uint64_t>(cell.get("preemptions"));
    res.avgLatency = cell.get("avg_latency");

    const auto &placement =
        vmPlacements()[static_cast<std::size_t>(cell.spec.placement)];
    for (const auto &s : placement.servers) {
        const std::string p = strFormat("vm%d_", s.id);
        ChipVmShare share;
        share.vmId = s.id;
        share.weight = s.weight;
        share.domainNodes =
            static_cast<std::size_t>(cell.get(p + "nodes"));
        share.flits = static_cast<std::uint64_t>(cell.get(p + "flits"));
        share.flitsPerNode = cell.get(p + "flits_per_node");
        res.vms.push_back(share);
    }
    return res;
}

ChipConsolidationResult
runChipConsolidation(TopologyKind kind, double ratePerNode,
                     const RunPhases &phases)
{
    const SweepResult result =
        SweepRunner().run(chipConsolidationSpec(kind, ratePerNode, phases));
    TAQOS_ASSERT(result.cells.size() == 1, "consolidation spec is one cell");
    return chipConsolidationFromCell(result.cells[0]);
}

FabricConsolidationResult
runFabricConsolidation(const FabricConsolidationConfig &cfg)
{
    FabricSpec spec;
    spec.chips = cfg.chips;
    spec.chip = cfg.chip;
    spec.column = paperColumn(cfg.topology, cfg.mode);
    spec.links = cfg.links;

    // Flow-register programming needs the flow-id geometry before the
    // network exists; fabricCatchments gives the same partition build()
    // will compute.
    const auto cats = fabricCatchments(spec.chip);
    const int B = static_cast<int>(cats.size());
    const int H = spec.chip.nodesY();
    int maxCat = 0;
    for (const auto &cat : cats)
        maxCat = std::max(maxCat, static_cast<int>(cat.size()));
    const int slots = 1 + maxCat + (cfg.chips > 1 ? cfg.chips - 1 : 0);
    const int fpb = H * slots;
    const int totalFlows = cfg.chips * B * fpb;

    // One hypervisor per chip, each admitting the paper's three-VM mix.
    const VmPlacement &pl = vmPlacements()[0];
    std::vector<OsScheduler> os;
    os.reserve(static_cast<std::size_t>(cfg.chips));
    for (int c = 0; c < cfg.chips; ++c) {
        os.emplace_back(spec.chip);
        for (const auto &s : pl.servers) {
            const auto vm = os.back().createVm(s.id, s.threads, s.weight);
            TAQOS_ASSERT(vm.has_value(), "chip %d: VM %d admission failed",
                         c, s.id);
        }
        TAQOS_ASSERT(os.back().coScheduleInvariant(),
                     "chip %d: co-scheduling violated", c);
    }

    // Program every column's flow registers from the placements: each
    // owned compute node streams at the cell rate into its local block,
    // and at remoteShare of it into each remote chip's matching block;
    // terminal flows (the columns' own resources) stay quiet.
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = cfg.ratePerNode;
    traffic.seed = cfg.seed;
    traffic.genUntil = cfg.phases.measureEnd();
    traffic.activeFlows.assign(static_cast<std::size_t>(totalFlows), false);
    traffic.flowRates.assign(static_cast<std::size_t>(totalFlows), 0.0);
    std::vector<std::uint32_t> weights(
        static_cast<std::size_t>(totalFlows), 1);
    std::vector<int> ownerChip(static_cast<std::size_t>(totalFlows), -1);
    std::vector<int> ownerVm(static_cast<std::size_t>(totalFlows), -1);
    const auto programFlow = [&](int f, int srcChip, int x, int y,
                                 double rate) {
        const int owner = os[static_cast<std::size_t>(srcChip)].ownerOf(
            NodeCoord{x, y});
        if (owner < 0)
            return;
        const auto fi = static_cast<std::size_t>(f);
        traffic.activeFlows[fi] = true;
        traffic.flowRates[fi] = rate;
        weights[fi] =
            os[static_cast<std::size_t>(srcChip)].vm(owner)->weight;
        ownerChip[fi] = srcChip;
        ownerVm[fi] = owner;
    };
    for (int c = 0; c < cfg.chips; ++c) {
        for (int j = 0; j < B; ++j) {
            const auto &cat = cats[static_cast<std::size_t>(j)];
            const int g = c * B + j;
            for (int y = 0; y < H; ++y) {
                for (std::size_t i = 0; i < cat.size(); ++i) {
                    programFlow(g * fpb + y * slots + 1 +
                                    static_cast<int>(i),
                                c, cat[i], y, cfg.ratePerNode);
                }
                for (int r = 0; r + 1 < cfg.chips; ++r) {
                    programFlow(g * fpb + y * slots + 1 + maxCat + r,
                                (c + 1 + r) % cfg.chips, cat.front(), y,
                                cfg.remoteShare * cfg.ratePerNode);
                }
            }
        }
    }
    spec.column.pvc.weights = weights;

    FabricSim sim(spec, traffic, cfg.workload);
    sim.configure({.shards = cfg.shards});
    sim.setMeasureWindow(cfg.phases.warmup, cfg.phases.measureEnd());

    std::optional<TraceRecorder> rec;
    if (cfg.audit) {
        rec.emplace(describeFabric(sim.network()));
        rec->setMeasureWindow(cfg.phases.warmup, cfg.phases.measureEnd());
        sim.attachTraceSink(&*rec);
    }

    const Cycle drain =
        sim.runUntilDrained(cfg.phases.total() * 4, traffic.genUntil);
    sim.checkInvariants();

    const SimMetrics &m = sim.metrics();
    FabricConsolidationResult res;
    if (rec.has_value()) {
        rec->finish(sim.now(), drain != kNoCycle && sim.drained());
        const CheckReport report = verifyTrace(rec->trace());
        res.auditOk = report.ok();
        res.auditEvents = report.eventsChecked;
        if (!report.ok())
            res.auditDiagnostic = report.firstDiagnostic();
    }
    res.nodes = sim.net().numNodes();
    res.drainCycle = drain;
    res.deliveredPackets = m.deliveredPackets;
    res.handoffs = sim.handoffs();
    res.linkHops = sim.linkHops();
    res.preemptions = m.preemptionEvents;
    res.avgLatency = m.latency.mean();
    res.digest = metricsDigest(m);

    for (int c = 0; c < cfg.chips; ++c) {
        for (const auto &s : pl.servers) {
            FabricVmShare share;
            share.chip = c;
            share.vmId = s.id;
            share.weight = s.weight;
            share.domainNodes =
                os[static_cast<std::size_t>(c)].vm(s.id)->domain.size();
            for (int f = 0; f < totalFlows; ++f) {
                const auto fi = static_cast<std::size_t>(f);
                if (ownerChip[fi] == c && ownerVm[fi] == s.id)
                    share.flits += m.flowFlits[fi];
            }
            share.flitsPerNode = static_cast<double>(share.flits) /
                                 static_cast<double>(share.domainNodes);
            res.vms.push_back(share);
        }
    }
    return res;
}

} // namespace taqos
