#include "core/experiments.h"

#include <algorithm>

#include "chip/os.h"
#include "common/assert.h"
#include "common/stats.h"
#include "core/maxmin.h"
#include "power/tech.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "topo/geometry.h"
#include "traffic/workloads.h"

namespace taqos {

ColumnConfig
paperColumn(TopologyKind kind, QosMode mode)
{
    ColumnConfig col;
    col.topology = kind;
    col.mode = mode;
    return col;
}

std::vector<AreaRow>
runFig3Area()
{
    const TechParams tech = tech32nm();
    std::vector<AreaRow> rows;
    for (auto kind : kAllTopologies) {
        const ColumnConfig col = paperColumn(kind);
        const RouterGeometry geom = representativeGeometry(kind, col);
        rows.push_back(AreaRow{kind, computeRouterArea(geom, tech)});
    }
    return rows;
}

std::vector<LatencySeries>
runFig4Latency(TrafficPattern pattern, const std::vector<double> &rates,
               const RunPhases &phases)
{
    std::vector<LatencySeries> series;
    for (auto kind : kAllTopologies) {
        LatencySeries s;
        s.topology = kind;
        for (double rate : rates) {
            const ColumnConfig col = paperColumn(kind);
            TrafficConfig traffic;
            traffic.pattern = pattern;
            traffic.injectionRate = rate;
            ColumnSim sim(col, traffic);
            sim.setMeasureWindow(phases.warmup, phases.measureEnd());
            sim.run(phases.total());

            const SimMetrics &m = sim.metrics();
            LatencyPoint p;
            p.injectionRate = rate;
            p.avgLatency = m.latency.mean();
            p.p95Latency = m.latencyHist.percentile(0.95);
            p.throughput = m.throughputFlitsPerCycle(phases.measure) /
                           col.numFlows();
            const double delivered =
                static_cast<double>(m.latency.count());
            const double offered =
                static_cast<double>(m.measuredGenerated);
            p.saturated = offered > 0.0 && delivered < 0.95 * offered;
            s.points.push_back(p);
        }
        series.push_back(std::move(s));
    }
    return series;
}

std::vector<SaturationPreemption>
runSaturationPreemption(TrafficPattern pattern, double rate,
                        const RunPhases &phases)
{
    std::vector<SaturationPreemption> rows;
    for (auto kind : kAllTopologies) {
        const ColumnConfig col = paperColumn(kind);
        TrafficConfig traffic;
        traffic.pattern = pattern;
        traffic.injectionRate = rate;
        ColumnSim sim(col, traffic);
        sim.setMeasureWindow(phases.warmup, phases.measureEnd());
        sim.run(phases.total());
        const SimMetrics &m = sim.metrics();
        rows.push_back(SaturationPreemption{
            kind, m.preemptionPacketRate(), m.preemptionHopRate()});
    }
    return rows;
}

std::vector<FairnessRow>
runTable2Fairness(Cycle measureCycles, Cycle warmup)
{
    std::vector<FairnessRow> rows;
    for (auto kind : kAllTopologies) {
        const ColumnConfig col = paperColumn(kind);
        // Every injector (terminal and row inputs, node 0 included)
        // streams to the node-0 terminal well above the 1/64 fair share.
        const TrafficConfig traffic = makeHotspotAll(col, 0.05);
        ColumnSim sim(col, traffic);
        sim.setMeasureWindow(warmup, warmup + measureCycles);
        sim.run(warmup + measureCycles);

        RunningStat rs;
        for (auto flits : sim.metrics().flowFlits)
            rs.push(static_cast<double>(flits));
        FairnessRow row;
        row.topology = kind;
        row.meanFlits = rs.mean();
        row.minFlits = rs.min();
        row.maxFlits = rs.max();
        row.stddevFlits = rs.stddev();
        row.preemptions = sim.metrics().preemptionEvents;
        rows.push_back(row);
    }
    return rows;
}

std::vector<AdversarialResult>
runAdversarial(int workload, Cycle genCycles)
{
    TAQOS_ASSERT(workload == 1 || workload == 2, "workload must be 1 or 2");
    std::vector<AdversarialResult> rows;
    const Cycle budget = genCycles * 10;

    for (auto kind : kAllTopologies) {
        const ColumnConfig colPvc = paperColumn(kind, QosMode::Pvc);
        const TrafficConfig traffic = workload == 1
            ? makeWorkload1(colPvc)
            : makeWorkload2(colPvc);
        TrafficConfig finite = traffic;
        finite.genUntil = genCycles;

        ColumnSim pvc(colPvc, finite);
        pvc.setMeasureWindow(0, genCycles);
        const Cycle donePvc = pvc.runUntilDrained(budget, genCycles);
        TAQOS_ASSERT(donePvc != kNoCycle, "%s: PVC run did not drain",
                     topologyName(kind));

        // Preemption-free reference: identical traffic (same seed), same
        // topology, per-flow queueing.
        const ColumnConfig colRef = paperColumn(kind, QosMode::PerFlowQueue);
        ColumnSim ref(colRef, finite);
        ref.setMeasureWindow(0, genCycles);
        const Cycle doneRef = ref.runUntilDrained(budget, genCycles);
        TAQOS_ASSERT(doneRef != kNoCycle, "%s: reference run did not drain",
                     topologyName(kind));

        AdversarialResult row;
        row.topology = kind;
        const SimMetrics &m = pvc.metrics();

        // Expected throughput under max-min fairness: demands are the
        // injection rates; the capacity being shared is what the network
        // actually delivered in the generation window (replay overhead
        // shows up as slowdown, not as an unfairness artefact).
        std::vector<double> demands(
            static_cast<std::size_t>(colPvc.numFlows()), 0.0);
        for (FlowId f = 0; f < colPvc.numFlows(); ++f) {
            if (traffic.flowActive(f) && !traffic.activeFlows.empty())
                demands[static_cast<std::size_t>(f)] = traffic.rateOf(f);
        }
        const double capacity = std::min(
            1.0, static_cast<double>(m.windowFlits()) /
                     static_cast<double>(genCycles));
        const std::vector<double> alloc =
            maxMinAllocation(demands, capacity);
        row.preemptedPacketsPct = 100.0 * m.preemptionPacketRate();
        row.replayedHopsPct = 100.0 * m.preemptionHopRate();
        row.completionCycle = donePvc;
        row.slowdownPct = 100.0 * (static_cast<double>(donePvc) /
                                       static_cast<double>(doneRef) -
                                   1.0);

        RunningStat dev;
        for (FlowId f = 0; f < colPvc.numFlows(); ++f) {
            const double expect =
                alloc[static_cast<std::size_t>(f)] *
                static_cast<double>(genCycles);
            if (expect <= 0.0)
                continue;
            const double got = static_cast<double>(
                m.flowFlits[static_cast<std::size_t>(f)]);
            dev.push(100.0 * (got - expect) / expect);
        }
        row.avgDeviationPct = dev.mean();
        row.minDeviationPct = dev.min();
        row.maxDeviationPct = dev.max();
        rows.push_back(row);
    }
    return rows;
}

std::vector<EnergyRow>
runFig7Energy()
{
    const TechParams tech = tech32nm();
    std::vector<EnergyRow> rows;
    for (auto kind : kAllTopologies) {
        const ColumnConfig col = paperColumn(kind);
        const RouterGeometry geom = representativeGeometry(kind, col);
        const RouterEnergyProfile e = computeRouterEnergy(geom, tech);

        const double buf = e.bufferWritePj + e.bufferReadPj;
        const double flow = e.flowQueryPj + e.flowUpdatePj;

        EnergyRow row;
        row.topology = kind;
        // Source and destination traversals are full router hops in every
        // topology: buffer write+read, crossbar, flow-state query+update.
        row.srcPj[0] = buf;
        row.srcPj[1] = e.xbarPj;
        row.srcPj[2] = flow;
        row.dstPj[0] = buf;
        row.dstPj[1] = e.xbarPj;
        row.dstPj[2] = flow;

        int intermediates = 2; // on a 3-hop route
        switch (kind) {
          case TopologyKind::MeshX1:
          case TopologyKind::MeshX2:
          case TopologyKind::MeshX4:
            // Full router traversal at every intermediate hop.
            row.intPj[0] = buf;
            row.intPj[1] = e.xbarPj;
            row.intPj[2] = flow;
            break;
          case TopologyKind::Mecs:
          case TopologyKind::FlatButterfly:
            // Single-network-hop topologies pass intermediate nodes on
            // wires; no router traversal at all.
            row.intPj[0] = row.intPj[1] = row.intPj[2] = 0.0;
            break;
          case TopologyKind::Dps:
            // 2:1 mux hop: buffer write+read only — no crossbar, no
            // flow-state access (priority reuse).
            row.intPj[0] = buf;
            row.intPj[1] = e.muxPj;
            row.intPj[2] = 0.0;
            break;
        }
        for (int c = 0; c < 3; ++c) {
            row.threeHopPj[c] =
                row.srcPj[c] + intermediates * row.intPj[c] + row.dstPj[c];
        }
        rows.push_back(row);
    }
    return rows;
}

ChipConsolidationResult
runChipConsolidation(TopologyKind kind, double ratePerNode,
                     const RunPhases &phases)
{
    // The paper's Sec. 1 motivation: three consolidated servers with
    // different service classes on one CMP.
    struct Server {
        int id;
        int threads;
        std::uint32_t weight;
    };
    const Server servers[] = {{1, 64, 4}, {2, 48, 2}, {3, 32, 1}};

    ChipNetConfig cfg;
    cfg.column.topology = kind;
    cfg.column.mode = QosMode::Pvc;
    cfg.column.numNodes = cfg.chip.nodesY();

    OsScheduler os(cfg.chip);
    for (const auto &s : servers) {
        const auto vm = os.createVm(s.id, s.threads, s.weight);
        TAQOS_ASSERT(vm.has_value(), "VM %d admission failed", s.id);
    }
    TAQOS_ASSERT(os.coScheduleInvariant(), "co-scheduling violated");
    cfg.column.pvc = os.columnFlowRegisters(cfg.columnX(), cfg.column);

    // Every VM-owned compute node streams memory requests at
    // `ratePerNode` to uniformly spread memory-controller rows; terminal
    // flows (the column's own resources) stay quiet.
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = ratePerNode;
    traffic.genUntil = phases.measureEnd();
    traffic.activeFlows.assign(
        static_cast<std::size_t>(cfg.column.numFlows()), false);
    for (int row = 0; row < cfg.chip.nodesY(); ++row) {
        for (int k = 1; k < cfg.column.injectorsPerNode; ++k) {
            if (os.ownerOf(NodeCoord{cfg.computeXOf(k), row}) >= 0) {
                traffic.activeFlows[static_cast<std::size_t>(
                    cfg.column.flowOf(row, k))] = true;
            }
        }
    }

    ChipSim sim(cfg, traffic);
    sim.setMeasureWindow(phases.warmup, phases.measureEnd());

    ChipConsolidationResult res;
    res.drainCycle =
        sim.runUntilDrained(phases.total() * 4, traffic.genUntil);
    sim.checkInvariants();

    const SimMetrics &m = sim.metrics();
    res.deliveredPackets = m.deliveredPackets;
    res.handoffs = sim.handoffs();
    res.preemptions = m.preemptionEvents;
    res.avgLatency = m.latency.mean();

    for (const auto &s : servers) {
        const VmInfo *vm = os.vm(s.id);
        ChipVmShare share;
        share.vmId = s.id;
        share.weight = s.weight;
        share.domainNodes = vm->domain.size();
        for (int row = 0; row < cfg.chip.nodesY(); ++row) {
            for (int k = 1; k < cfg.column.injectorsPerNode; ++k) {
                if (os.ownerOf(NodeCoord{cfg.computeXOf(k), row}) != s.id)
                    continue;
                share.flits += m.flowFlits[static_cast<std::size_t>(
                    cfg.column.flowOf(row, k))];
            }
        }
        share.flitsPerNode = static_cast<double>(share.flits) /
                             static_cast<double>(share.domainNodes);
        res.vms.push_back(share);
    }
    return res;
}

} // namespace taqos
