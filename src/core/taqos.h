/// \file taqos.h
/// Umbrella header: the public API of the taqos library.
///
/// Quick tour:
///  - topo/topology.h      — topology kinds + ColumnConfig (Table 1)
///  - topo/network.h       — topology-agnostic network substrate
///  - sim/net_sim.h        — the cycle-level simulation engine
///  - sim/column_sim.h     — the shared-column specialization
///  - sim/chip_sim.h       — whole-chip simulation (rows + QOS column)
///  - traffic/pattern.h    — synthetic traffic configuration
///  - traffic/workloads.h  — Table-2 hotspot, adversarial Workloads 1 & 2
///  - qos/pvc.h            — Preemptive Virtual Clock parameters
///  - core/experiments.h   — one runner per paper table/figure
///  - power/router_power.h — analytic area/energy models (32 nm)
///  - chip/*               — full-chip substrate: MECS routing, convex
///                           domains, OS scheduler, isolation audit
#pragma once

#include "chip/allocator.h"
#include "chip/chip_cost.h"
#include "chip/domain.h"
#include "chip/geometry.h"
#include "chip/isolation.h"
#include "chip/os.h"
#include "chip/routing.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiments.h"
#include "core/maxmin.h"
#include "power/router_power.h"
#include "power/tech.h"
#include "qos/pvc.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "sim/net_sim.h"
#include "topo/chip_network.h"
#include "topo/column_network.h"
#include "topo/geometry.h"
#include "topo/network.h"
#include "topo/topology.h"
#include "traffic/generator.h"
#include "traffic/pattern.h"
#include "traffic/workloads.h"
