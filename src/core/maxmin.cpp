#include "core/maxmin.h"

#include <algorithm>

#include "common/assert.h"

namespace taqos {

std::vector<double>
maxMinAllocation(const std::vector<double> &demands, double capacity)
{
    TAQOS_ASSERT(capacity >= 0.0, "negative capacity");
    std::vector<double> alloc(demands.size(), 0.0);
    std::vector<std::size_t> unsatisfied;
    for (std::size_t i = 0; i < demands.size(); ++i) {
        if (demands[i] > 0.0)
            unsatisfied.push_back(i);
    }

    double remaining = capacity;
    while (!unsatisfied.empty() && remaining > 1e-12) {
        const double share = remaining / static_cast<double>(unsatisfied.size());
        // Grant every flow whose demand fits within the current share its
        // full demand; if none fits, split the remainder equally and stop.
        std::vector<std::size_t> still;
        bool granted = false;
        for (auto i : unsatisfied) {
            if (demands[i] - alloc[i] <= share + 1e-12) {
                remaining -= demands[i] - alloc[i];
                alloc[i] = demands[i];
                granted = true;
            } else {
                still.push_back(i);
            }
        }
        if (!granted) {
            for (auto i : still)
                alloc[i] += share;
            remaining = 0.0;
            break;
        }
        unsatisfied = std::move(still);
    }
    return alloc;
}

} // namespace taqos
