/// \file maxmin.h
/// Max-min fair allocation (Dally & Towles's standard fairness definition,
/// used by the paper for Fig. 6's expected throughputs): demands below the
/// equal share are granted fully; the residue is iteratively split among
/// the unsatisfied flows.
#pragma once

#include <vector>

namespace taqos {

/// Allocate `capacity` among `demands` max-min fairly. Returns the
/// per-flow allocation (same units as demands). Zero-demand entries get
/// zero. If total demand fits, everyone gets their demand.
std::vector<double> maxMinAllocation(const std::vector<double> &demands,
                                     double capacity);

} // namespace taqos
