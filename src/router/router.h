/// \file router.h
/// A shared-region router with pluggable quality-of-service arbitration.
///
/// One Router class covers all five evaluated configurations; the topology
/// builder (src/topo) instantiates the port structure that makes it a mesh
/// xN, MECS, or DPS router. DPS intermediate "repeaters" are modelled as
/// extra pass-through input ports with a 1-cycle pipeline and no crossbar
/// group — the 2:1 mux of Figure 2(c).
///
/// The router owns the *mechanism* — VC allocation, cut-through transfer
/// management, preemption teardown — and delegates every *policy* question
/// (candidate priority, comparator, preemption decision) to the QosPolicy
/// its mode selects (qos/policy.h).
///
/// Per-cycle operation:
///   1. tickCompletion on every output (tail departures free source VCs).
///   2. Virtual-channel allocation per output port: the highest-priority
///      eligible packet gets a downstream VC and starts streaming
///      (virtual cut-through: the whole packet follows, crossbar
///      arbitration is subsumed by the allocation).
///   3. On allocation failure, the policy may preempt (PVC): if a
///      buffered lower-priority non-rate-compliant packet is blocking the
///      requester (priority inversion), it is discarded, NACKed to its
///      source, and replayed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "noc/metrics.h"
#include "noc/packet.h"
#include "noc/ports.h"
#include "qos/ack_network.h"
#include "qos/flow_table.h"
#include "qos/policy.h"
#include "qos/pvc.h"

namespace taqos {

/// Per-destination routing decision at this router.
struct RouteEntry {
    int outPort = -1;     ///< first of `numParallel` equivalent outputs
    int numParallel = 1;  ///< replicated mesh channels to spread across
    int dropIdx = 0;      ///< drop on the chosen output (MECS express span)
};

/// Shared services handed to routers each cycle.
struct TickContext {
    Cycle now = 0;
    QuotaTracker *quota = nullptr;
    AckNetwork *ack = nullptr;
    SimMetrics *metrics = nullptr;
    /// Source-side policy gate (GSF frame budgets); null for policies
    /// without an injection gate.
    SourceGate *gate = nullptr;
};

class Router {
  public:
    Router(NodeId node, QosMode mode, const PvcParams &params);

    NodeId node() const { return node_; }
    QosMode mode() const { return policy_->mode(); }
    const QosPolicy &policy() const { return *policy_; }

    // --- construction (used by the topology builders) ---
    InputPort *addInputPort(std::unique_ptr<InputPort> port);
    OutputPort *addOutputPort(std::unique_ptr<OutputPort> port);
    XbarGroup *addXbarGroup();
    void setRoute(NodeId dest, RouteEntry entry);
    /// Must be called once all output ports exist (sizes the flow table).
    void finalize();

    const std::vector<std::unique_ptr<InputPort>> &inputs() const
    {
        return inputs_;
    }
    const std::vector<std::unique_ptr<OutputPort>> &outputs() const
    {
        return outputs_;
    }
    OutputPort *output(int idx) { return outputs_[static_cast<std::size_t>(idx)].get(); }
    const FlowTable &flowTable() const { return flowTable_; }

    /// Routing decision for a packet sitting at this router.
    RouteEntry routeFor(const NetPacket &pkt) const;

    /// One simulation cycle, phase 1: retire transfers whose tail has
    /// departed. Must run on ALL routers before any arbitration so that a
    /// packet's completion is visible regardless of router tick order.
    void tickCompletions(Cycle now);

    /// One simulation cycle, phase 2: VC allocation / preemption.
    void tickArbitrate(TickContext &ctx);

    /// Both phases (single-router unit tests only).
    void tick(TickContext &ctx);

    /// PVC frame boundary: flush bandwidth counters.
    void frameFlush();

    /// Discard a packet (preemption): tears down its VC chain and
    /// in-flight transfers, NACKs the source. Public so tests can inject
    /// failures directly.
    void killPacket(NetPacket *victim, TickContext &ctx);

  private:
    struct Candidate {
        NetPacket *pkt = nullptr;
        InputPort *port = nullptr;
        int vc = -1;               ///< -1 when from an injector queue
        InjectorQueue *inj = nullptr;
        std::uint64_t prio = 0;
        Cycle age = 0;
        std::uint32_t rrKey = 0; ///< round-robin position for NoQos
        int outPort = -1;
        int dropIdx = 0;
    };

    void collectCandidates(TickContext &ctx);
    bool betterThan(const Candidate &a, const Candidate &b, int outPort) const;
    void tryGrant(Candidate &cand, TickContext &ctx);
    bool tryPreempt(const Candidate &cand, InputPort *down, TickContext &ctx);
    /// Is `pkt` shielded from preemption by the reserved per-frame quota?
    bool quotaProtected(const NetPacket &pkt, bool localState,
                        int tableIdx) const;
    std::uint64_t priorityFor(const NetPacket &pkt, const InputPort &in,
                              int outPort) const;
    bool validate(const Candidate &cand) const;

    NodeId node_;
    const PvcParams *params_;
    /// Every priority / preemption / quota decision (owns the per-router
    /// arbitration state, e.g. the NoQos rotating pointers).
    std::unique_ptr<QosPolicy> policy_;

    std::vector<std::unique_ptr<InputPort>> inputs_;
    std::vector<std::unique_ptr<OutputPort>> outputs_;
    std::vector<std::unique_ptr<XbarGroup>> groups_;
    std::vector<RouteEntry> routes_;
    FlowTable flowTable_;

    /// Best candidate per output for the current cycle.
    std::vector<Candidate> best_;
};

} // namespace taqos
