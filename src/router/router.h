/// \file router.h
/// A shared-region router with pluggable quality-of-service arbitration.
///
/// One Router class covers all five evaluated configurations; the topology
/// builder (src/topo) instantiates the port structure that makes it a mesh
/// xN, MECS, or DPS router. DPS intermediate "repeaters" are modelled as
/// extra pass-through input ports with a 1-cycle pipeline and no crossbar
/// group — the 2:1 mux of Figure 2(c).
///
/// The router owns the *mechanism* — VC allocation, cut-through transfer
/// management, preemption teardown — and delegates every *policy* question
/// (candidate priority, comparator, preemption decision) to the QosPolicy
/// its mode selects (qos/policy.h).
///
/// Per-cycle operation:
///   1. tickCompletion on every output (tail departures free source VCs).
///   2. Virtual-channel allocation per output port: the highest-priority
///      eligible packet gets a downstream VC and starts streaming
///      (virtual cut-through: the whole packet follows, crossbar
///      arbitration is subsumed by the allocation).
///   3. On allocation failure, the policy may preempt (PVC): if a
///      buffered lower-priority non-rate-compliant packet is blocking the
///      requester (priority inversion), it is discarded, NACKed to its
///      source, and replayed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "noc/activity.h"
#include "noc/metrics.h"
#include "noc/packet.h"
#include "noc/ports.h"
#include "qos/ack_network.h"
#include "qos/flow_table.h"
#include "qos/policy.h"
#include "qos/pvc.h"

namespace taqos {

/// Per-destination routing decision at this router.
struct RouteEntry {
    int outPort = -1;     ///< first of `numParallel` equivalent outputs
    int numParallel = 1;  ///< replicated mesh channels to spread across
    int dropIdx = 0;      ///< drop on the chosen output (MECS express span)
};

/// Shared services handed to routers each cycle.
struct TickContext {
    Cycle now = 0;
    QuotaTracker *quota = nullptr;
    AckNetwork *ack = nullptr;
    SimMetrics *metrics = nullptr;
    /// Source-side policy gate (GSF frame budgets); null for policies
    /// without an injection gate.
    SourceGate *gate = nullptr;
    /// Legacy always-tick engine: rescan candidates every cycle and take
    /// no activity shortcuts (the bit-identity reference the activity-
    /// driven engine is checked against).
    bool forceScan = false;
    /// Sharded engine's parallel scan phase: recompute cached winners
    /// without any side effect outside this router. A scan that would
    /// have to consult impure gate state (SourceGate::admit can charge a
    /// GSF budget) aborts instead, leaving the output dirty for the
    /// serial grant phase to rescan.
    bool speculative = false;
};

/// The per-router counters and schedule bounds the engine consults every
/// cycle before deciding whether the router can be skipped. One inline
/// copy per router (standalone fixtures); Network::packHotState re-binds
/// a fabric's routers onto one contiguous node-ordered array so the
/// engine's sweep/merge walk stays on a few cache lines.
struct alignas(64) RouterHot {
    int occupiedVcs = 0;
    int queuedPkts = 0;
    int activeXfers = 0;
    /// Lower bound on the earliest in-flight transfer completion
    /// (kNoCycle when none): completion ticks before it are exact no-ops.
    Cycle nextCompletion = kNoCycle;
};

class Router {
  public:
    Router(NodeId node, QosMode mode, const PvcParams &params);

    NodeId node() const { return node_; }
    QosMode mode() const { return policy_->mode(); }
    const QosPolicy &policy() const { return *policy_; }

    // --- construction (used by the topology builders) ---
    InputPort *addInputPort(std::unique_ptr<InputPort> port);
    OutputPort *addOutputPort(std::unique_ptr<OutputPort> port);
    XbarGroup *addXbarGroup();
    void setRoute(NodeId dest, RouteEntry entry);
    /// Must be called once all output ports exist (sizes the flow table).
    void finalize();

    const std::vector<std::unique_ptr<InputPort>> &inputs() const
    {
        return inputs_;
    }
    const std::vector<std::unique_ptr<OutputPort>> &outputs() const
    {
        return outputs_;
    }
    OutputPort *output(int idx) { return outputs_[static_cast<std::size_t>(idx)].get(); }
    const FlowTable &flowTable() const { return flowTable_; }
    /// Mutable access for checkpoint restore (counter overwrite).
    FlowTable &flowTable() { return flowTable_; }
    const std::vector<std::unique_ptr<XbarGroup>> &groups() const
    {
        return groups_;
    }
    std::vector<std::unique_ptr<XbarGroup>> &groups() { return groups_; }
    /// Mutable policy access for checkpoint pack/unpack.
    QosPolicy &policyState() { return *policy_; }

    /// Routing decision for a packet sitting at this router.
    RouteEntry routeFor(const NetPacket &pkt) const;

    /// One simulation cycle, phase 1: retire transfers whose tail has
    /// departed. Must run on ALL routers before any arbitration so that a
    /// packet's completion is visible regardless of router tick order.
    void tickCompletions(Cycle now);

    /// One simulation cycle, phase 2: VC allocation / preemption.
    void tickArbitrate(TickContext &ctx);

    /// Sharded engine, parallel phase: refresh this router's cached
    /// winner sets (the scan half of tickArbitrate) touching nothing
    /// outside the router. ctx.speculative must be set. Outputs whose
    /// scan would need an impure gate admission stay dirty; everything
    /// else ends up exactly as a serial tickArbitrate would leave it
    /// before its grant loop, so the subsequent serial grant phase takes
    /// the cached-winner fast path.
    void tickScan(TickContext &ctx);

    /// Both phases (single-router unit tests only).
    void tick(TickContext &ctx);

    /// PVC frame boundary: flush bandwidth counters.
    void frameFlush();

    /// Discard a packet (preemption): tears down its VC chain and
    /// in-flight transfers, NACKs the source. Public so tests can inject
    /// failures directly.
    void killPacket(NetPacket *victim, TickContext &ctx);

    /// Attach (or detach, with nullptr) a flit-trace recorder: registers
    /// every input port with the sink and points the router's and ports'
    /// hooks at it. Wired fabric-wide by Network::setTraceSink.
    void setTraceSink(TraceSink *sink);

    // --- activity tracking (the activity-driven engine) ---------------
    //
    // Two layers. (1) Engine worklist: the engine ticks only routers on
    // the shared worklist; a router re-arms itself when an event gives it
    // work. (2) Per-output candidate cache: each output keeps the list of
    // arbitration slots currently routed to it — a Reserved VC, or an
    // injector queue's head packet — maintained incrementally by the port
    // hooks, plus a dirty flag and a time-driven wake. An output's
    // candidate scan reruns only when an event dirtied its inputs or a
    // scheduled eligibility (head arrival + pipeline, injection
    // readiness) has come due; everything else re-attempts the cached
    // winner, which is exactly what the always-tick engine would
    // recompute. All scans of a cycle run before any grant, mirroring the
    // legacy collect-then-grant phases. See README "Performance".

    /// Register with the engine worklist (arms the router immediately).
    void setWorklist(ActivityWorklist *wl);
    /// Sharded engine: point future arms at a per-region worklist without
    /// touching the membership flag (the caller moves pending entries).
    void rebindWorklist(ActivityWorklist *wl) { worklist_ = wl; }
    bool inWorklist() const { return inWorklist_; }
    /// Engine sweep: drop an idle router from the worklist.
    void leaveWorklist() { inWorklist_ = false; }

    /// Any work at all: an occupied VC (even one still arriving), a
    /// queued source packet (even a gated one), or an in-flight transfer.
    /// A router with none is a provable no-op and is skipped entirely.
    bool hasWork() const
    {
        return hot_->occupiedVcs + hot_->queuedPkts + hot_->activeXfers > 0;
    }

    /// Re-home the hot counters onto `hot` (the network's contiguous
    /// per-router array), carrying the current values over.
    void bindHot(RouterHot *hot) { hot_ = new (hot) RouterHot(*hot_); }
    /// Allocate all future arbitration-slot storage from `arena` and move
    /// the current lists there.
    void bindSlotArena(BumpArena *arena)
    {
        for (auto &list : slots_)
            list.rebind(arena);
    }

    /// Policy state changed behind every output's back (frame flush, GSF
    /// window advance): invalidate all cached winner sets.
    void markArbDirty();

    /// Checkpoint restore: the raw overwrites (VC states, injector
    /// queues, transfers) bypassed every incremental hook, so recompute
    /// all derived activity state from the restored structural state —
    /// hot counters, arbitration slot lists, cached winners, dirty
    /// flags, wakes, preemption memos. Leaves every output dirty with
    /// wake 0 and the router off the worklist (the engine re-arms it);
    /// the first tick then does the same full rescan a frame-boundary
    /// invalidation would, which is proven bit-identical.
    void rebuildFromRestore();

    // Hooks from the port layer (see ports.h). Work-creating events arm
    // the router onto the worklist; work-neutral events only dirty the
    // affected outputs (the `hasWork() implies inWorklist()` invariant
    // makes that sound).
    void noteVcReserved(InputPort *in, int vcIdx);
    void noteVcFreed(InputPort *in, VirtualChannel &vc);
    void noteVcDrained(InputPort *in, VirtualChannel &vc);
    void noteInjectorEnqueue(InjectorQueue &inj, bool headChanged);
    void noteInjectorDequeue(InjectorQueue &inj);
    void noteInjectorWindowChange(InjectorQueue &inj);
    /// An output began streaming; its tail departs at `tailDepart`.
    void noteXferStarted(Cycle tailDepart);
    void noteXferEnded(); ///< transfer completed or cancelled
    /// Flow-table mutation at table `tableIdx` (-1 = all tables): the
    /// virtual-clock priorities of every output charging that table are
    /// stale. Replicated mesh channels share one table, so one charge can
    /// dirty several outputs.
    void noteTableMutated(int tableIdx);

    int occupiedVcCount() const { return hot_->occupiedVcs; }
    int queuedPacketCount() const { return hot_->queuedPkts; }
    int activeXferCount() const { return hot_->activeXfers; }

  private:
    struct Candidate {
        NetPacket *pkt = nullptr;
        InputPort *port = nullptr;
        int vc = -1;               ///< -1 when from an injector queue
        InjectorQueue *inj = nullptr;
        std::uint64_t prio = 0;
        Cycle age = 0;
        std::uint32_t rrKey = 0; ///< round-robin position for NoQos
        int outPort = -1;
        int dropIdx = 0;
    };

    /// One cached arbitration slot: a Reserved VC (vc >= 0) or an
    /// injector queue's head packet (inj != nullptr), routed to the
    /// output whose list holds it.
    struct ArbSlot {
        InputPort *port = nullptr;
        int vc = -1;
        InjectorQueue *inj = nullptr;
        std::uint32_t key = 0; ///< static enumeration position (rrKey)
        int dropIdx = 0;
    };

    /// Legacy full scan: every input, every VC, every injector, all
    /// outputs at once (the always-tick reference path).
    void collectCandidates(TickContext &ctx);
    /// Activity path: re-derive one output's winner from its slot list.
    /// Returns false when a speculative scan had to abort on an impure
    /// gate admission (the output must stay dirty; best is cleared).
    bool collectOutput(int outPort, TickContext &ctx);

    void addVcSlot(InputPort *in, int vcIdx);
    void updateInjectorSlot(InjectorQueue &inj);
    void insertSlot(int outPort, const ArbSlot &slot);
    void removeVcSlot(int outPort, const InputPort *in, int vcIdx);
    void removeInjectorSlot(int outPort, const InjectorQueue *inj);
    void dirtyOutput(int outPort)
    {
        outDirty_[static_cast<std::size_t>(outPort)] = 1;
        anyOutDirty_ = true;
        ++mutEpoch_;
    }

    bool betterThan(const Candidate &a, const Candidate &b, int outPort) const;
    void tryGrant(Candidate &cand, TickContext &ctx);
    bool tryPreempt(const Candidate &cand, InputPort *down, TickContext &ctx);
    /// Is `pkt` shielded from preemption by the reserved per-frame quota?
    bool quotaProtected(const NetPacket &pkt, bool localState,
                        int tableIdx) const;
    std::uint64_t priorityFor(const NetPacket &pkt, const InputPort &in,
                              int outPort) const;
    bool validate(const Candidate &cand) const;

    NodeId node_;
    const PvcParams *params_;
    /// Flit-trace recorder (null = not recording): injection grants,
    /// hop starts and preemption kills are emitted from this router.
    TraceSink *trace_ = nullptr;
    /// Every priority / preemption / quota decision (owns the per-router
    /// arbitration state, e.g. the NoQos rotating pointers).
    std::unique_ptr<QosPolicy> policy_;

    std::vector<std::unique_ptr<InputPort>> inputs_;
    std::vector<std::unique_ptr<OutputPort>> outputs_;
    std::vector<std::unique_ptr<XbarGroup>> groups_;
    std::vector<RouteEntry> routes_;
    FlowTable flowTable_;

    /// Best candidate per output; cached between cycles and re-derived
    /// only when the output is dirty or its wake has come due.
    std::vector<Candidate> best_;

    /// Per-output cached candidate state. `slots_[o]` is kept sorted by
    /// enumeration key, so a scan visits candidates in exactly the order
    /// the legacy input-major scan would. `outWake_[o]` is the earliest
    /// cycle a currently-ineligible slot matures by time alone (kNoCycle
    /// = none pending); it starts at 0 so the first tick scans.
    std::vector<ArenaVec<ArbSlot>> slots_;
    std::vector<std::uint8_t> outDirty_;
    std::vector<Cycle> outWake_;
    /// tableIdx -> outputs charging it (replicated channels share).
    std::vector<std::vector<int>> tableOuts_;

    /// Router-level summaries for the per-cycle fast path: OR of
    /// outDirty_, min of outWake_, and the number of outputs holding a
    /// cached winner — when all three say "nothing to do", tickArbitrate
    /// is a provable no-op and returns immediately.
    bool anyOutDirty_ = true;
    Cycle minWake_ = 0;
    int winners_ = 0;

    /// Mutation epoch: bumped by every state change the preemption victim
    /// search can observe on this router's side (slot changes, table
    /// charges, frame flushes). A victimless search whose inputs —
    /// requester, its priority, this epoch, and the contested downstream
    /// port's epoch — are unchanged must fail again, so it is skipped.
    std::uint64_t mutEpoch_ = 0;

    /// Last victimless preemption search per output (activity mode).
    struct PreemptMemo {
        const NetPacket *pkt = nullptr;
        std::uint64_t prio = 0;
        const InputPort *down = nullptr;
        std::uint64_t selfEpoch = 0;
        std::uint64_t downEpoch = 0;
    };
    std::vector<PreemptMemo> preemptMemo_;

    ActivityWorklist *worklist_ = nullptr;
    bool inWorklist_ = false;
    RouterHot localHot_;
    RouterHot *hot_ = &localHot_;

    void arm();
};

} // namespace taqos
