#include "router/router.h"

#include <cstdlib>

#include "common/log.h"
#include "noc/trace_sink.h"

namespace taqos {

Router::Router(NodeId node, QosMode mode, const PvcParams &params)
    : node_(node), params_(&params), policy_(makeQosPolicy(mode, params))
{
}

InputPort *
Router::addInputPort(std::unique_ptr<InputPort> port)
{
    port->owner = this;
    inputs_.push_back(std::move(port));
    return inputs_.back().get();
}

OutputPort *
Router::addOutputPort(std::unique_ptr<OutputPort> port)
{
    port->owner = this;
    outputs_.push_back(std::move(port));
    return outputs_.back().get();
}

void
Router::setWorklist(ActivityWorklist *wl)
{
    worklist_ = wl;
    arm();
}

void
Router::arm()
{
    if (worklist_ != nullptr && !inWorklist_) {
        inWorklist_ = true;
        worklist_->pending.push_back(node_);
    }
}

void
Router::markArbDirty()
{
    for (auto &d : outDirty_)
        d = 1;
    anyOutDirty_ = true;
    // Frame flushes rewrite state the preemption victim search reads
    // (flow tables, carried priorities): spoil its memo too.
    ++mutEpoch_;
}

void
Router::insertSlot(int outPort, const ArbSlot &slot)
{
    auto &list = slots_[static_cast<std::size_t>(outPort)];
    // Keep enumeration order so a per-output scan compares candidates in
    // exactly the sequence the legacy input-major scan would.
    auto it = list.begin();
    while (it != list.end() && it->key < slot.key)
        ++it;
    list.insert(it, slot);
    dirtyOutput(outPort);
}

void
Router::removeVcSlot(int outPort, const InputPort *in, int vcIdx)
{
    auto &list = slots_[static_cast<std::size_t>(outPort)];
    for (auto it = list.begin(); it != list.end(); ++it) {
        if (it->port == in && it->vc == vcIdx) {
            list.erase(it);
            dirtyOutput(outPort);
            return;
        }
    }
    TAQOS_ASSERT(false, "router %d: missing VC slot %s/%d on output %d",
                 node_, in->name.c_str(), vcIdx, outPort);
}

void
Router::removeInjectorSlot(int outPort, const InjectorQueue *inj)
{
    auto &list = slots_[static_cast<std::size_t>(outPort)];
    for (auto it = list.begin(); it != list.end(); ++it) {
        if (it->inj == inj) {
            list.erase(it);
            dirtyOutput(outPort);
            return;
        }
    }
    TAQOS_ASSERT(false, "router %d: missing injector slot on output %d",
                 node_, outPort);
}

void
Router::addVcSlot(InputPort *in, int vcIdx)
{
    VirtualChannel &vc = in->vcs[static_cast<std::size_t>(vcIdx)];
    TAQOS_ASSERT(vc.arbOutput() < 0, "VC %s/%d already has a slot",
                 in->name.c_str(), vcIdx);
    const RouteEntry route = routeFor(*vc.packet());
    ArbSlot slot;
    slot.port = in;
    slot.vc = vcIdx;
    slot.key = in->enumBase + static_cast<std::uint32_t>(vcIdx) + 1;
    slot.dropIdx = route.dropIdx;
    insertSlot(route.outPort, slot);
    vc.setArbOutput(route.outPort);
}

void
Router::updateInjectorSlot(InjectorQueue &inj)
{
    if (inj.headOut >= 0) {
        removeInjectorSlot(inj.headOut, &inj);
        inj.headOut = -1;
    }
    if (inj.queue().empty())
        return;
    const RouteEntry route = routeFor(*inj.queue().front());
    ArbSlot slot;
    slot.port = inj.port;
    slot.inj = &inj;
    slot.key =
        inj.port->enumBase + static_cast<std::uint32_t>(inj.slotIdx) + 1;
    slot.dropIdx = route.dropIdx;
    insertSlot(route.outPort, slot);
    inj.headOut = route.outPort;
}

void
Router::noteVcReserved(InputPort *in, int vcIdx)
{
    ++hot_->occupiedVcs;
    addVcSlot(in, vcIdx);
    arm();
}

void
Router::noteVcFreed(InputPort *in, VirtualChannel &vc)
{
    --hot_->occupiedVcs;
    TAQOS_ASSERT(hot_->occupiedVcs >= 0, "router %d VC-occupancy underflow",
                 node_);
    // A Draining VC already surrendered its slot; a Reserved one (kill,
    // terminal ejection at a router-owned port) still holds it.
    if (vc.arbOutput() >= 0) {
        removeVcSlot(vc.arbOutput(), in, in->vcIndex(vc));
        vc.setArbOutput(-1);
    }
}

void
Router::noteVcDrained(InputPort *in, VirtualChannel &vc)
{
    TAQOS_ASSERT(vc.arbOutput() >= 0, "draining VC without a slot");
    removeVcSlot(vc.arbOutput(), in, in->vcIndex(vc));
    vc.setArbOutput(-1);
}

void
Router::noteInjectorEnqueue(InjectorQueue &inj, bool headChanged)
{
    ++hot_->queuedPkts;
    if (headChanged)
        updateInjectorSlot(inj);
    arm();
}

void
Router::noteInjectorDequeue(InjectorQueue &inj)
{
    --hot_->queuedPkts;
    TAQOS_ASSERT(hot_->queuedPkts >= 0, "router %d queued-packet underflow",
                 node_);
    updateInjectorSlot(inj);
}

void
Router::noteInjectorWindowChange(InjectorQueue &inj)
{
    // The head may have been stalled on the retransmission window.
    if (inj.headOut >= 0)
        dirtyOutput(inj.headOut);
}

void
Router::noteXferStarted(Cycle tailDepart)
{
    ++hot_->activeXfers;
    if (tailDepart < hot_->nextCompletion)
        hot_->nextCompletion = tailDepart;
    arm();
}

void
Router::noteXferEnded()
{
    --hot_->activeXfers;
    TAQOS_ASSERT(hot_->activeXfers >= 0, "router %d transfer-count underflow",
                 node_);
}

void
Router::noteTableMutated(int tableIdx)
{
    if (tableIdx < 0) {
        markArbDirty();
        return;
    }
    for (int o : tableOuts_[static_cast<std::size_t>(tableIdx)])
        dirtyOutput(o);
}

XbarGroup *
Router::addXbarGroup()
{
    groups_.push_back(std::make_unique<XbarGroup>());
    return groups_.back().get();
}

void
Router::setRoute(NodeId dest, RouteEntry entry)
{
    if (static_cast<std::size_t>(dest) >= routes_.size())
        routes_.resize(static_cast<std::size_t>(dest) + 1);
    routes_[static_cast<std::size_t>(dest)] = entry;
}

void
Router::finalize()
{
    int numTables = 0;
    for (const auto &out : outputs_) {
        TAQOS_ASSERT(out->tableIdx >= 0, "output %s has no flow table id",
                     out->name.c_str());
        numTables = std::max(numTables, out->tableIdx + 1);
    }
    // Per-flow bandwidth state exists only for the policies that schedule
    // by it: PVC, the per-flow queueing reference (same virtual clock),
    // and WRR (round-count meter).
    if (policy_->usesFlowTable()) {
        flowTable_ = FlowTable(*params_, numTables);
        flowTable_.setOwner(this);
    }
    best_.resize(outputs_.size());
    policy_->init(static_cast<int>(outputs_.size()));

    // Activity-tracking structure. Enumeration bases reproduce the
    // legacy input-major candidate numbering (the round-robin keys);
    // under unbounded per-flow VCs later ports' live numbering can
    // drift from these static bases, but the rrKey is only decisive for
    // the rotating no-qos arbiter, whose VC structure is static.
    std::uint32_t base = 0;
    for (const auto &in : inputs_) {
        in->enumBase = base;
        if (in->kind == InputPort::Kind::Injection) {
            for (std::size_t k = 0; k < in->injectors.size(); ++k)
                in->injectors[k]->slotIdx = static_cast<int>(k);
            base += static_cast<std::uint32_t>(in->injectors.size());
        } else {
            base += static_cast<std::uint32_t>(in->vcs.size());
        }
    }
    slots_.assign(outputs_.size(), {});
    outDirty_.assign(outputs_.size(), 1);
    outWake_.assign(outputs_.size(), 0);
    preemptMemo_.assign(outputs_.size(), {});
    tableOuts_.assign(static_cast<std::size_t>(numTables), {});
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        tableOuts_[static_cast<std::size_t>(outputs_[o]->tableIdx)]
            .push_back(static_cast<int>(o));
    }
}

RouteEntry
Router::routeFor(const NetPacket &pkt) const
{
    TAQOS_ASSERT(static_cast<std::size_t>(pkt.dst) < routes_.size(),
                 "router %d has no route to %d", node_, pkt.dst);
    RouteEntry entry = routes_[static_cast<std::size_t>(pkt.dst)];
    TAQOS_ASSERT(entry.outPort >= 0, "router %d: unroutable dest %d", node_,
                 pkt.dst);
    if (entry.numParallel > 1) {
        // Replicated mesh: spread packets across the parallel channels.
        entry.outPort +=
            static_cast<int>(pkt.id % static_cast<PacketId>(entry.numParallel));
        entry.numParallel = 1;
    }
    return entry;
}

std::uint64_t
Router::priorityFor(const NetPacket &pkt, const InputPort &in,
                    int outPort) const
{
    return policy_->priority(
        pkt, in.usesCarriedPrio, flowTable_,
        outputs_[static_cast<std::size_t>(outPort)]->tableIdx);
}

bool
Router::betterThan(const Candidate &a, const Candidate &b, int outPort) const
{
    return policy_->betterThan(ArbKey{a.prio, a.age, a.pkt->flow, a.rrKey},
                               ArbKey{b.prio, b.age, b.pkt->flow, b.rrKey},
                               outPort);
}

void
Router::collectCandidates(TickContext &ctx)
{
    for (auto &b : best_)
        b.pkt = nullptr;

    std::uint32_t enumIdx = 0;
    for (const auto &inPtr : inputs_) {
        InputPort *in = inPtr.get();
        const Cycle ready = static_cast<Cycle>(in->pipelineDelay - 1);

        if (in->kind == InputPort::Kind::Injection) {
            for (InjectorQueue *inj : in->injectors) {
                ++enumIdx;
                if (inj->queue().empty())
                    continue;
                NetPacket *pkt = inj->queue().front();
                // The retransmission window gates new injections; a NACKed
                // packet already owns its slot.
                if (!pkt->inWindow && !inj->windowOpen())
                    continue;
                if (ctx.now < pkt->queuedCycle + ready)
                    continue;
                // Source-side policy gate (GSF frame budgets): an
                // unadmitted packet stalls its queue.
                if (ctx.gate != nullptr && !ctx.gate->admit(*pkt, ctx.now))
                    continue;
                Candidate cand;
                cand.pkt = pkt;
                cand.port = in;
                cand.vc = -1;
                cand.inj = inj;
                cand.age = pkt->genCycle;
                cand.rrKey = enumIdx;
                const RouteEntry route = routeFor(*pkt);
                cand.outPort = route.outPort;
                cand.dropIdx = route.dropIdx;
                cand.prio = priorityFor(*pkt, *in, cand.outPort);
                auto &best = best_[static_cast<std::size_t>(cand.outPort)];
                if (best.pkt == nullptr ||
                    betterThan(cand, best, cand.outPort)) {
                    best = cand;
                }
            }
            continue;
        }

        for (int v = 0; v < static_cast<int>(in->vcs.size()); ++v) {
            ++enumIdx;
            const VirtualChannel &vc = in->vcs[static_cast<std::size_t>(v)];
            if (vc.state() != VirtualChannel::State::Reserved)
                continue; // Free, or already draining towards the next hop
            if (!vc.arrived(ctx.now) || ctx.now < vc.headArrival() + ready)
                continue;
            NetPacket *pkt = vc.packet();
            Candidate cand;
            cand.pkt = pkt;
            cand.port = in;
            cand.vc = v;
            cand.age = pkt->genCycle;
            cand.rrKey = enumIdx;
            const RouteEntry route = routeFor(*pkt);
            cand.outPort = route.outPort;
            cand.dropIdx = route.dropIdx;
            cand.prio = priorityFor(*pkt, *in, cand.outPort);
            auto &best = best_[static_cast<std::size_t>(cand.outPort)];
            if (best.pkt == nullptr || betterThan(cand, best, cand.outPort))
                best = cand;
        }
    }
}

bool
Router::collectOutput(int outPort, TickContext &ctx)
{
    Candidate &best = best_[static_cast<std::size_t>(outPort)];
    best.pkt = nullptr;

    // Earliest purely time-driven change to this output's candidate set.
    // Event-driven changes (frees, enqueues, table charges, window/gate
    // state) dirty the output through the hooks instead.
    Cycle wake = kNoCycle;

    for (const ArbSlot &slot : slots_[static_cast<std::size_t>(outPort)]) {
        const Cycle ready =
            static_cast<Cycle>(slot.port->pipelineDelay - 1);
        NetPacket *pkt = nullptr;
        if (slot.inj != nullptr) {
            pkt = slot.inj->queue().front();
            if (!pkt->inWindow && !slot.inj->windowOpen())
                continue;
            if (ctx.now < pkt->queuedCycle + ready) {
                const Cycle at = pkt->queuedCycle + ready;
                if (at < wake)
                    wake = at;
                continue;
            }
            if (ctx.gate != nullptr) {
                // A gate admission may mutate engine-global state (GSF
                // charges a frame budget and stamps the packet). The
                // sharded parallel scan must not do that — both for
                // determinism (admissions are ordered by node) and
                // because the gate is shared across regions — so it only
                // proceeds when the gate vouches the call is pure;
                // otherwise the whole output is left for the serial
                // grant phase.
                if (ctx.speculative) {
                    if (!ctx.gate->admitIsPure(*pkt)) {
                        best.pkt = nullptr;
                        return false;
                    }
                } else if (!ctx.gate->admit(*pkt, ctx.now)) {
                    continue;
                }
            }
        } else {
            const VirtualChannel &vc =
                slot.port->vcs[static_cast<std::size_t>(slot.vc)];
            TAQOS_ASSERT(vc.state() == VirtualChannel::State::Reserved,
                         "stale arbitration slot on %s/%d",
                         slot.port->name.c_str(), slot.vc);
            if (!vc.arrived(ctx.now) ||
                ctx.now < vc.headArrival() + ready) {
                const Cycle at = vc.headArrival() + ready;
                if (at < wake)
                    wake = at;
                continue;
            }
            pkt = vc.packet();
        }

        Candidate cand;
        cand.pkt = pkt;
        cand.port = slot.port;
        cand.vc = slot.vc;
        cand.inj = slot.inj;
        cand.age = pkt->genCycle;
        cand.rrKey = slot.key;
        cand.outPort = outPort;
        cand.dropIdx = slot.dropIdx;
        cand.prio = priorityFor(*pkt, *slot.port, outPort);
        if (best.pkt == nullptr || betterThan(cand, best, outPort))
            best = cand;
    }

    outWake_[static_cast<std::size_t>(outPort)] = wake;
    return true;
}

bool
Router::validate(const Candidate &cand) const
{
    if (cand.vc >= 0) {
        const VirtualChannel &vc =
            cand.port->vcs[static_cast<std::size_t>(cand.vc)];
        return vc.state() == VirtualChannel::State::Reserved &&
               vc.packet() == cand.pkt &&
               cand.pkt->state == PacketState::InFlight;
    }
    return !cand.inj->queue().empty() &&
           cand.inj->queue().front() == cand.pkt &&
           cand.pkt->state == PacketState::Queued;
}

void
Router::tryGrant(Candidate &cand, TickContext &ctx)
{
    if (!validate(cand))
        return;
    OutputPort *out = outputs_[static_cast<std::size_t>(cand.outPort)].get();
    NetPacket *pkt = cand.pkt;

    if (!out->linkFree(ctx.now) || out->transfer().active) {
        // Blocked by an ongoing transfer on the output channel. A
        // higher-priority arrival does not interrupt the transfer — but a
        // preemption does (Sec. 4): if the policy judges the inversion to
        // have persisted past its wait threshold, the streaming packet is
        // discarded.
        if (pkt->blockedSince == kNoCycle)
            pkt->blockedSince = ctx.now;
        if (out->transfer().active &&
            policy_->onAllocFail(ctx.now - pkt->blockedSince,
                                 /*xferBlocked=*/true)) {
            tryPreempt(cand,
                       out->drops[static_cast<std::size_t>(cand.dropIdx)]
                           .down,
                       ctx);
        }
        return;
    }
    if (cand.port->group != nullptr && !cand.port->group->freeAt(ctx.now))
        return;

    const bool fromInjection = cand.vc < 0;
    const bool compliant = fromInjection
        ? (ctx.quota != nullptr &&
           ctx.quota->compliant(pkt->flow, pkt->sizeFlits))
        : pkt->rateCompliant;

    OutputPort::Drop &drop =
        out->drops[static_cast<std::size_t>(cand.dropIdx)];
    InputPort *down = drop.down;
    const int vcIdx = down->findFreeVc(ctx.now, compliant);
    if (vcIdx < 0) {
        if (pkt->blockedSince == kNoCycle)
            pkt->blockedSince = ctx.now;
        if (policy_->onAllocFail(ctx.now - pkt->blockedSince,
                                 /*xferBlocked=*/false)) {
            tryPreempt(cand, down, ctx);
        }
        return;
    }
    pkt->blockedSince = kNoCycle;

    if (fromInjection) {
        cand.inj->dequeue();
        pkt->beginAttempt(ctx.now);
        // The compliance mark protects this packet at hops that reuse the
        // source-computed priority (DPS pass-through). Stamp it from the
        // source router's per-output counter — the same basis those hops'
        // upstream arbitration charged — not the source-global meter,
        // which conflates traffic to unrelated destinations.
        pkt->rateCompliant = flowTable_.enabled()
            ? quotaProtected(*pkt, true, out->tableIdx)
            : compliant;
        // The reserved quota meters the source's own demand; a replay is
        // the network's fault and does not burn reserved share.
        if (ctx.quota != nullptr && pkt->attempt == 1)
            ctx.quota->charge(pkt->flow, pkt->sizeFlits);
        if (!pkt->inWindow) {
            pkt->inWindow = true;
            ++cand.inj->outstanding;
        }
        if (ctx.metrics != nullptr)
            ++ctx.metrics->injectedAttempts;
        if (trace_ != nullptr)
            trace_->inject(ctx.now, node_, *pkt);
    }

    // Priority reuse: the next hop (a DPS repeater, or any router without
    // local state for this flow) arbitrates with the value computed here.
    pkt->carriedPrio = cand.prio;
    if (flowTable_.enabled() && !cand.port->usesCarriedPrio) {
        flowTable_.charge(out->tableIdx, pkt->flow, pkt->sizeFlits);
        pkt->logCharge(&flowTable_, out->tableIdx);
    }

    const Cycle headArrival = ctx.now + 1 + static_cast<Cycle>(drop.wireDelay);
    const Cycle tailArrival =
        headArrival + static_cast<Cycle>(pkt->sizeFlits) - 1;
    down->vcs[static_cast<std::size_t>(vcIdx)].reserve(pkt, headArrival,
                                                       tailArrival);
    pkt->addLoc(down, vcIdx);

    const VcRef srcVc = fromInjection ? VcRef{nullptr, -1}
                                      : VcRef{cand.port, cand.vc};
    out->startTransfer(pkt, cand.dropIdx, vcIdx, srcVc, ctx.now);
    if (trace_ != nullptr)
        trace_->hop(ctx.now, node_, *down, vcIdx, *pkt);

    if (cand.port->group != nullptr)
        cand.port->group->occupy(ctx.now, pkt->sizeFlits);

    policy_->onGrant(cand.outPort,
                     ArbKey{cand.prio, cand.age, pkt->flow, cand.rrKey});
    // The grant rotated policy state and consumed a candidate: rescan
    // this output next cycle. (The slot hooks above already imply it;
    // kept explicit because onGrant state is invisible to them.)
    dirtyOutput(cand.outPort);
}

bool
Router::quotaProtected(const NetPacket &pkt, bool localState,
                       int tableIdx) const
{
    if (!params_->quotaEnabled)
        return false;
    // "The first N flits from each source [per frame] are non-preemptable":
    // judged against the local bandwidth counter where the router keeps
    // one, or the compliance mark stamped at injection on DPS pass-through
    // paths (priority reuse).
    if (localState) {
        const double cap = params_->quotaProtectFactor *
                           static_cast<double>(params_->quotaFlits(pkt.flow));
        return static_cast<double>(flowTable_.countOf(tableIdx, pkt.flow)) <=
               cap;
    }
    return pkt.rateCompliant;
}

bool
Router::tryPreempt(const Candidate &cand, InputPort *down, TickContext &ctx)
{
    // Priority inversion: the requester is blocked on its output by
    // buffered lower-priority packets (no downstream VC, or the channel is
    // streaming someone else's packet). Discard the lowest-priority
    // blocker, subject to:
    //  - reserved-quota protection ("the first N flits from each source
    //    in a frame are non-preemptable"): a flow whose local bandwidth
    //    counter is still within its provisioned per-frame share cannot be
    //    a victim — with every source transmitting at its fair share all
    //    traffic stays under the cap, throttling preemptions (Sec. 5.3);
    //  - a minimum priority gap (counter noise is not an inversion).
    // Victims are taken from packets *waiting* for this output: the
    // occupants of the downstream VCs and the rival packets buffered at
    // this router's inputs. On equal priority a victim that is not
    // mid-transfer is preferred — discarding work already on a wire costs
    // throughput (Sec. 5.3 notes most victims fall at or near the source).
    const bool localState =
        flowTable_.enabled() && !cand.port->usesCarriedPrio;
    const int tbl =
        outputs_[static_cast<std::size_t>(cand.outPort)]->tableIdx;

    // A victimless search is pure, and its outcome depends only on the
    // requester, its priority, and the buffered-packet/table state on
    // both sides of the contested channel — all tracked by the mutation
    // epochs. A blocked requester retries every cycle past the wait
    // threshold; without the memo those retries rescan identical state.
    PreemptMemo &memo =
        preemptMemo_[static_cast<std::size_t>(cand.outPort)];
    if (!ctx.forceScan && memo.pkt == cand.pkt && memo.prio == cand.prio &&
        memo.down == down && memo.selfEpoch == mutEpoch_ &&
        memo.downEpoch == down->mutEpoch()) {
        return false;
    }

    NetPacket *victim = nullptr;
    std::uint64_t victimPrio = 0;

    auto consider = [&](NetPacket *pkt) {
        if (pkt == nullptr || pkt == cand.pkt || pkt == victim)
            return;
        if (quotaProtected(*pkt, localState, tbl))
            return;
        const std::uint64_t prio = localState
            ? flowTable_.priorityOf(tbl, pkt->flow)
            : pkt->carriedPrio;
        if (prio <= cand.prio ||
            prio - cand.prio <= params_->preemptGapScaled()) {
            return;
        }
        if (victim == nullptr || prio > victimPrio ||
            (prio == victimPrio && victim->numXfers > 0 &&
             pkt->numXfers == 0)) {
            victim = pkt;
            victimPrio = prio;
        }
    };

    // Downstream VC occupants (waiting or still arriving — not the ones
    // already draining onwards).
    for (const auto &vc : down->vcs) {
        if (vc.state() == VirtualChannel::State::Draining)
            continue;
        consider(vc.packet());
    }
    // Rival packets buffered at this router and routed to the same
    // output. The cached slot list of the contested output holds exactly
    // that set, in the enumeration order the full scan would visit (the
    // equal-priority tie favours the first-seen victim, so the order is
    // semantically load-bearing); the legacy reference engine takes the
    // full scan instead.
    if (ctx.forceScan) {
        for (const auto &inPtr : inputs_) {
            for (const auto &vc : inPtr->vcs) {
                if (vc.state() != VirtualChannel::State::Reserved)
                    continue;
                NetPacket *pkt = vc.packet();
                if (pkt == nullptr ||
                    routeFor(*pkt).outPort != cand.outPort) {
                    continue;
                }
                consider(pkt);
            }
        }
    } else {
        for (const ArbSlot &slot :
             slots_[static_cast<std::size_t>(cand.outPort)]) {
            if (slot.inj != nullptr)
                continue; // source-queued packets hold no buffer here
            consider(slot.port->vcs[static_cast<std::size_t>(slot.vc)]
                         .packet());
        }
    }

    if (victim == nullptr) {
        memo.pkt = cand.pkt;
        memo.prio = cand.prio;
        memo.down = down;
        memo.selfEpoch = mutEpoch_;
        memo.downEpoch = down->mutEpoch();
        return false;
    }
    killPacket(victim, ctx);
    return true;
}

void
Router::killPacket(NetPacket *victim, TickContext &ctx)
{
    TAQOS_ASSERT(victim->state == PacketState::InFlight,
                 "preempting packet in state %d",
                 static_cast<int>(victim->state));

    // Record the kill before the teardown below frees the victim's VCs,
    // so the trace shows K and then the chain's F events.
    if (trace_ != nullptr)
        trace_->kill(ctx.now, node_, *victim);

    double wasted = victim->hopsThisAttempt;
    while (victim->numXfers > 0)
        wasted += victim->xfers[0]->cancelTransfer(ctx.now);

    for (int i = 0; i < victim->numLocs; ++i) {
        const VcRef &loc = victim->locs[static_cast<std::size_t>(i)];
        loc.port->vcs[static_cast<std::size_t>(loc.vc)].free(
            ctx.now + static_cast<Cycle>(loc.port->creditDelay));
    }
    victim->clearLocs();
    victim->state = PacketState::Dropped;
    ++victim->preemptions;

    // Refund the attempt's bandwidth charges: the discarded service must
    // not count against the victim's virtual clock.
    for (int i = 0; i < victim->numCharges; ++i) {
        auto *table = static_cast<FlowTable *>(
            victim->charges[static_cast<std::size_t>(i)].table);
        table->uncharge(victim->charges[static_cast<std::size_t>(i)].tableIdx,
                        victim->flow, victim->sizeFlits);
    }
    victim->numCharges = 0;

    if (ctx.metrics != nullptr) {
        ++ctx.metrics->preemptionEvents;
        ctx.metrics->wastedHops += wasted;
    }
    TAQOS_ASSERT(ctx.ack != nullptr, "PVC preemption requires an ACK network");
    ctx.ack->send(ctx.now, std::abs(node_ - victim->src), victim,
                  /*isNack=*/true);
    TAQOS_LOG_DEBUG("cycle %llu: node %d preempted packet %llu "
                    "(flow %d, %.1f hops wasted)",
                    static_cast<unsigned long long>(ctx.now), node_,
                    static_cast<unsigned long long>(victim->id),
                    victim->flow, wasted);
}

void
Router::setTraceSink(TraceSink *sink)
{
    trace_ = sink;
    for (const auto &in : inputs_) {
        if (sink != nullptr)
            sink->registerPort(*in, /*terminal=*/false);
        in->trace = sink;
    }
}

void
Router::tickCompletions(Cycle now)
{
    // nextCompletion is a lower bound on the earliest active transfer's
    // tail departure (a cancellation can only raise the true minimum), so
    // ticks before it are exact no-ops for every output.
    if (hot_->activeXfers == 0 || now < hot_->nextCompletion)
        return;
    Cycle next = kNoCycle;
    for (const auto &out : outputs_) {
        out->tickCompletion(now);
        const OutputPort::Transfer &xfer = out->transfer();
        if (xfer.active && xfer.tailDepart < next)
            next = xfer.tailDepart;
    }
    hot_->nextCompletion = next;
}

void
Router::tickArbitrate(TickContext &ctx)
{
    if (ctx.forceScan) {
        collectCandidates(ctx);
        for (std::size_t o = 0; o < outputs_.size(); ++o) {
            if (best_[o].pkt != nullptr)
                tryGrant(best_[o], ctx);
        }
        return;
    }

    // A cached winner set stays valid until an event dirties its output
    // or a scheduled eligibility comes due. All scans run before any
    // grant (the legacy collect-then-grant split), so a grant's side
    // effects never feed a same-cycle rescan the always-tick engine
    // would not have done; grant attempts on cached winners re-run every
    // cycle regardless, so time-driven grant conditions (link free,
    // credit visibility, crossbar slots, preemption wait thresholds) are
    // evaluated on exactly the cycles the always-tick engine would.
    if (anyOutDirty_ || ctx.now >= minWake_) {
        Cycle minWake = kNoCycle;
        int winners = 0;
        for (std::size_t o = 0; o < outputs_.size(); ++o) {
            if (outDirty_[o] != 0 || ctx.now >= outWake_[o]) {
                collectOutput(static_cast<int>(o), ctx);
                outDirty_[o] = 0;
            }
            if (outWake_[o] < minWake)
                minWake = outWake_[o];
            if (best_[o].pkt != nullptr)
                ++winners;
        }
        anyOutDirty_ = false;
        minWake_ = minWake;
        winners_ = winners;
    }
    if (winners_ == 0)
        return;
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        if (best_[o].pkt != nullptr)
            tryGrant(best_[o], ctx);
    }
}

void
Router::tickScan(TickContext &ctx)
{
    TAQOS_ASSERT(ctx.speculative, "tickScan is the speculative scan phase");
    if (!(anyOutDirty_ || ctx.now >= minWake_))
        return;
    // Same per-output rescan condition and summary recomputation as
    // tickArbitrate's scan block. The scan's inputs are all router-local
    // (own slot lists, own input VCs and injector queues, packet fields
    // no concurrent phase writes), so regions can run it concurrently; a
    // grant-phase event at another router that could change a result
    // re-dirties the affected output through the hooks, re-scanning it
    // serially at this router's turn — exactly when the serial engine
    // would have scanned it.
    Cycle minWake = kNoCycle;
    int winners = 0;
    bool aborted = false;
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        if (outDirty_[o] != 0 || ctx.now >= outWake_[o]) {
            if (collectOutput(static_cast<int>(o), ctx)) {
                outDirty_[o] = 0;
            } else {
                // Impure gate admission: the serial grant phase must
                // redo this output with the real admit call. Force its
                // rescan by keeping the dirty flag; the cleared best
                // keeps the stale winner from being granted if the
                // rescan finds the packet inadmissible.
                outDirty_[o] = 1;
                outWake_[o] = kNoCycle;
                aborted = true;
            }
        }
        if (outWake_[o] < minWake)
            minWake = outWake_[o];
        if (best_[o].pkt != nullptr)
            ++winners;
    }
    anyOutDirty_ = aborted;
    minWake_ = minWake;
    winners_ = winners;
}

void
Router::tick(TickContext &ctx)
{
    tickCompletions(ctx.now);
    tickArbitrate(ctx);
}

void
Router::rebuildFromRestore()
{
    for (const auto &in : inputs_)
        in->recountHot();
    hot_->occupiedVcs = 0;
    hot_->queuedPkts = 0;
    hot_->activeXfers = 0;
    hot_->nextCompletion = kNoCycle;
    for (const auto &in : inputs_) {
        hot_->occupiedVcs += in->occupied();
        hot_->queuedPkts += in->queuedPackets();
    }
    for (const auto &out : outputs_) {
        const OutputPort::Transfer &xfer = out->transfer();
        if (xfer.active) {
            ++hot_->activeXfers;
            if (xfer.tailDepart < hot_->nextCompletion)
                hot_->nextCompletion = xfer.tailDepart;
        }
    }

    // Rebuild the per-output slot lists from scratch: exactly the slots
    // the incremental hooks would be maintaining — every Reserved VC
    // (Draining VCs surrendered theirs on drain start) and every
    // non-empty injector queue's head.
    for (auto &list : slots_)
        list.clear();
    for (const auto &in : inputs_) {
        for (std::size_t v = 0; v < in->vcs.size(); ++v) {
            VirtualChannel &vc = in->vcs[v];
            vc.setArbOutput(-1);
            if (vc.state() == VirtualChannel::State::Reserved)
                addVcSlot(in.get(), static_cast<int>(v));
        }
        for (InjectorQueue *inj : in->injectors) {
            inj->headOut = -1;
            if (!inj->queue().empty())
                updateInjectorSlot(*inj);
        }
    }

    // Drop every cached arbitration result. The first tick rescans all
    // outputs — the same full invalidation a frame flush performs, which
    // the always-tick cross-check proves bit-identical.
    for (auto &b : best_)
        b = Candidate{};
    std::fill(outDirty_.begin(), outDirty_.end(), 1);
    std::fill(outWake_.begin(), outWake_.end(), 0);
    preemptMemo_.assign(outputs_.size(), {});
    anyOutDirty_ = true;
    minWake_ = 0;
    winners_ = 0;
    mutEpoch_ = 0;
    inWorklist_ = false; // the engine repopulates its pending lists
}

void
Router::frameFlush()
{
    if (flowTable_.enabled())
        flowTable_.flush();
    policy_->rollover();
}

} // namespace taqos
