#include "router/router.h"

#include <cstdlib>

#include "common/log.h"

namespace taqos {

Router::Router(NodeId node, QosMode mode, const PvcParams &params)
    : node_(node), params_(&params), policy_(makeQosPolicy(mode, params))
{
}

InputPort *
Router::addInputPort(std::unique_ptr<InputPort> port)
{
    inputs_.push_back(std::move(port));
    return inputs_.back().get();
}

OutputPort *
Router::addOutputPort(std::unique_ptr<OutputPort> port)
{
    outputs_.push_back(std::move(port));
    return outputs_.back().get();
}

XbarGroup *
Router::addXbarGroup()
{
    groups_.push_back(std::make_unique<XbarGroup>());
    return groups_.back().get();
}

void
Router::setRoute(NodeId dest, RouteEntry entry)
{
    if (static_cast<std::size_t>(dest) >= routes_.size())
        routes_.resize(static_cast<std::size_t>(dest) + 1);
    routes_[static_cast<std::size_t>(dest)] = entry;
}

void
Router::finalize()
{
    int numTables = 0;
    for (const auto &out : outputs_) {
        TAQOS_ASSERT(out->tableIdx >= 0, "output %s has no flow table id",
                     out->name.c_str());
        numTables = std::max(numTables, out->tableIdx + 1);
    }
    // Per-flow bandwidth state exists only for the policies that schedule
    // by it: PVC, the per-flow queueing reference (same virtual clock),
    // and WRR (round-count meter).
    if (policy_->usesFlowTable())
        flowTable_ = FlowTable(*params_, numTables);
    best_.resize(outputs_.size());
    policy_->init(static_cast<int>(outputs_.size()));
}

RouteEntry
Router::routeFor(const NetPacket &pkt) const
{
    TAQOS_ASSERT(static_cast<std::size_t>(pkt.dst) < routes_.size(),
                 "router %d has no route to %d", node_, pkt.dst);
    RouteEntry entry = routes_[static_cast<std::size_t>(pkt.dst)];
    TAQOS_ASSERT(entry.outPort >= 0, "router %d: unroutable dest %d", node_,
                 pkt.dst);
    if (entry.numParallel > 1) {
        // Replicated mesh: spread packets across the parallel channels.
        entry.outPort +=
            static_cast<int>(pkt.id % static_cast<PacketId>(entry.numParallel));
        entry.numParallel = 1;
    }
    return entry;
}

std::uint64_t
Router::priorityFor(const NetPacket &pkt, const InputPort &in,
                    int outPort) const
{
    return policy_->priority(
        pkt, in.usesCarriedPrio, flowTable_,
        outputs_[static_cast<std::size_t>(outPort)]->tableIdx);
}

bool
Router::betterThan(const Candidate &a, const Candidate &b, int outPort) const
{
    return policy_->betterThan(ArbKey{a.prio, a.age, a.pkt->flow, a.rrKey},
                               ArbKey{b.prio, b.age, b.pkt->flow, b.rrKey},
                               outPort);
}

void
Router::collectCandidates(TickContext &ctx)
{
    for (auto &b : best_)
        b.pkt = nullptr;

    std::uint32_t enumIdx = 0;
    for (const auto &inPtr : inputs_) {
        InputPort *in = inPtr.get();
        const Cycle ready = static_cast<Cycle>(in->pipelineDelay - 1);

        if (in->kind == InputPort::Kind::Injection) {
            for (InjectorQueue *inj : in->injectors) {
                ++enumIdx;
                if (inj->queue.empty())
                    continue;
                NetPacket *pkt = inj->queue.front();
                // The retransmission window gates new injections; a NACKed
                // packet already owns its slot.
                if (!pkt->inWindow && !inj->windowOpen())
                    continue;
                if (ctx.now < pkt->queuedCycle + ready)
                    continue;
                // Source-side policy gate (GSF frame budgets): an
                // unadmitted packet stalls its queue.
                if (ctx.gate != nullptr && !ctx.gate->admit(*pkt, ctx.now))
                    continue;
                Candidate cand;
                cand.pkt = pkt;
                cand.port = in;
                cand.vc = -1;
                cand.inj = inj;
                cand.age = pkt->genCycle;
                cand.rrKey = enumIdx;
                const RouteEntry route = routeFor(*pkt);
                cand.outPort = route.outPort;
                cand.dropIdx = route.dropIdx;
                cand.prio = priorityFor(*pkt, *in, cand.outPort);
                auto &best = best_[static_cast<std::size_t>(cand.outPort)];
                if (best.pkt == nullptr ||
                    betterThan(cand, best, cand.outPort)) {
                    best = cand;
                }
            }
            continue;
        }

        for (int v = 0; v < static_cast<int>(in->vcs.size()); ++v) {
            ++enumIdx;
            const VirtualChannel &vc = in->vcs[static_cast<std::size_t>(v)];
            if (vc.state() != VirtualChannel::State::Reserved)
                continue; // Free, or already draining towards the next hop
            if (!vc.arrived(ctx.now) || ctx.now < vc.headArrival() + ready)
                continue;
            NetPacket *pkt = vc.packet();
            Candidate cand;
            cand.pkt = pkt;
            cand.port = in;
            cand.vc = v;
            cand.age = pkt->genCycle;
            cand.rrKey = enumIdx;
            const RouteEntry route = routeFor(*pkt);
            cand.outPort = route.outPort;
            cand.dropIdx = route.dropIdx;
            cand.prio = priorityFor(*pkt, *in, cand.outPort);
            auto &best = best_[static_cast<std::size_t>(cand.outPort)];
            if (best.pkt == nullptr || betterThan(cand, best, cand.outPort))
                best = cand;
        }
    }
}

bool
Router::validate(const Candidate &cand) const
{
    if (cand.vc >= 0) {
        const VirtualChannel &vc =
            cand.port->vcs[static_cast<std::size_t>(cand.vc)];
        return vc.state() == VirtualChannel::State::Reserved &&
               vc.packet() == cand.pkt &&
               cand.pkt->state == PacketState::InFlight;
    }
    return !cand.inj->queue.empty() && cand.inj->queue.front() == cand.pkt &&
           cand.pkt->state == PacketState::Queued;
}

void
Router::tryGrant(Candidate &cand, TickContext &ctx)
{
    if (!validate(cand))
        return;
    OutputPort *out = outputs_[static_cast<std::size_t>(cand.outPort)].get();
    NetPacket *pkt = cand.pkt;

    if (!out->linkFree(ctx.now) || out->transfer().active) {
        // Blocked by an ongoing transfer on the output channel. A
        // higher-priority arrival does not interrupt the transfer — but a
        // preemption does (Sec. 4): if the policy judges the inversion to
        // have persisted past its wait threshold, the streaming packet is
        // discarded.
        if (pkt->blockedSince == kNoCycle)
            pkt->blockedSince = ctx.now;
        if (out->transfer().active &&
            policy_->onAllocFail(ctx.now - pkt->blockedSince,
                                 /*xferBlocked=*/true)) {
            tryPreempt(cand,
                       out->drops[static_cast<std::size_t>(cand.dropIdx)]
                           .down,
                       ctx);
        }
        return;
    }
    if (cand.port->group != nullptr && !cand.port->group->freeAt(ctx.now))
        return;

    const bool fromInjection = cand.vc < 0;
    const bool compliant = fromInjection
        ? (ctx.quota != nullptr &&
           ctx.quota->compliant(pkt->flow, pkt->sizeFlits))
        : pkt->rateCompliant;

    OutputPort::Drop &drop =
        out->drops[static_cast<std::size_t>(cand.dropIdx)];
    InputPort *down = drop.down;
    const int vcIdx = down->findFreeVc(ctx.now, compliant);
    if (vcIdx < 0) {
        if (pkt->blockedSince == kNoCycle)
            pkt->blockedSince = ctx.now;
        if (policy_->onAllocFail(ctx.now - pkt->blockedSince,
                                 /*xferBlocked=*/false)) {
            tryPreempt(cand, down, ctx);
        }
        return;
    }
    pkt->blockedSince = kNoCycle;

    if (fromInjection) {
        cand.inj->queue.pop_front();
        pkt->beginAttempt(ctx.now);
        // The compliance mark protects this packet at hops that reuse the
        // source-computed priority (DPS pass-through). Stamp it from the
        // source router's per-output counter — the same basis those hops'
        // upstream arbitration charged — not the source-global meter,
        // which conflates traffic to unrelated destinations.
        pkt->rateCompliant = flowTable_.enabled()
            ? quotaProtected(*pkt, true, out->tableIdx)
            : compliant;
        // The reserved quota meters the source's own demand; a replay is
        // the network's fault and does not burn reserved share.
        if (ctx.quota != nullptr && pkt->attempt == 1)
            ctx.quota->charge(pkt->flow, pkt->sizeFlits);
        if (!pkt->inWindow) {
            pkt->inWindow = true;
            ++cand.inj->outstanding;
        }
        if (ctx.metrics != nullptr)
            ++ctx.metrics->injectedAttempts;
    }

    // Priority reuse: the next hop (a DPS repeater, or any router without
    // local state for this flow) arbitrates with the value computed here.
    pkt->carriedPrio = cand.prio;
    if (flowTable_.enabled() && !cand.port->usesCarriedPrio) {
        flowTable_.charge(out->tableIdx, pkt->flow, pkt->sizeFlits);
        pkt->logCharge(&flowTable_, out->tableIdx);
    }

    const Cycle headArrival = ctx.now + 1 + static_cast<Cycle>(drop.wireDelay);
    const Cycle tailArrival =
        headArrival + static_cast<Cycle>(pkt->sizeFlits) - 1;
    down->vcs[static_cast<std::size_t>(vcIdx)].reserve(pkt, headArrival,
                                                       tailArrival);
    pkt->addLoc(down, vcIdx);

    const VcRef srcVc = fromInjection ? VcRef{nullptr, -1}
                                      : VcRef{cand.port, cand.vc};
    out->startTransfer(pkt, cand.dropIdx, vcIdx, srcVc, ctx.now);

    if (cand.port->group != nullptr)
        cand.port->group->occupy(ctx.now, pkt->sizeFlits);

    policy_->onGrant(cand.outPort,
                     ArbKey{cand.prio, cand.age, pkt->flow, cand.rrKey});
}

bool
Router::quotaProtected(const NetPacket &pkt, bool localState,
                       int tableIdx) const
{
    if (!params_->quotaEnabled)
        return false;
    // "The first N flits from each source [per frame] are non-preemptable":
    // judged against the local bandwidth counter where the router keeps
    // one, or the compliance mark stamped at injection on DPS pass-through
    // paths (priority reuse).
    if (localState) {
        const double cap = params_->quotaProtectFactor *
                           static_cast<double>(params_->quotaFlits(pkt.flow));
        return static_cast<double>(flowTable_.countOf(tableIdx, pkt.flow)) <=
               cap;
    }
    return pkt.rateCompliant;
}

bool
Router::tryPreempt(const Candidate &cand, InputPort *down, TickContext &ctx)
{
    // Priority inversion: the requester is blocked on its output by
    // buffered lower-priority packets (no downstream VC, or the channel is
    // streaming someone else's packet). Discard the lowest-priority
    // blocker, subject to:
    //  - reserved-quota protection ("the first N flits from each source
    //    in a frame are non-preemptable"): a flow whose local bandwidth
    //    counter is still within its provisioned per-frame share cannot be
    //    a victim — with every source transmitting at its fair share all
    //    traffic stays under the cap, throttling preemptions (Sec. 5.3);
    //  - a minimum priority gap (counter noise is not an inversion).
    // Victims are taken from packets *waiting* for this output: the
    // occupants of the downstream VCs and the rival packets buffered at
    // this router's inputs. On equal priority a victim that is not
    // mid-transfer is preferred — discarding work already on a wire costs
    // throughput (Sec. 5.3 notes most victims fall at or near the source).
    const bool localState =
        flowTable_.enabled() && !cand.port->usesCarriedPrio;
    const int tbl =
        outputs_[static_cast<std::size_t>(cand.outPort)]->tableIdx;

    NetPacket *victim = nullptr;
    std::uint64_t victimPrio = 0;

    auto consider = [&](NetPacket *pkt) {
        if (pkt == nullptr || pkt == cand.pkt || pkt == victim)
            return;
        if (quotaProtected(*pkt, localState, tbl))
            return;
        const std::uint64_t prio = localState
            ? flowTable_.priorityOf(tbl, pkt->flow)
            : pkt->carriedPrio;
        if (prio <= cand.prio ||
            prio - cand.prio <= params_->preemptGapScaled()) {
            return;
        }
        if (victim == nullptr || prio > victimPrio ||
            (prio == victimPrio && victim->numXfers > 0 &&
             pkt->numXfers == 0)) {
            victim = pkt;
            victimPrio = prio;
        }
    };

    // Downstream VC occupants (waiting or still arriving — not the ones
    // already draining onwards).
    for (const auto &vc : down->vcs) {
        if (vc.state() == VirtualChannel::State::Draining)
            continue;
        consider(vc.packet());
    }
    // Rival packets buffered at this router and routed to the same output.
    for (const auto &inPtr : inputs_) {
        for (const auto &vc : inPtr->vcs) {
            if (vc.state() != VirtualChannel::State::Reserved)
                continue;
            NetPacket *pkt = vc.packet();
            if (pkt == nullptr || routeFor(*pkt).outPort != cand.outPort)
                continue;
            consider(pkt);
        }
    }

    if (victim == nullptr)
        return false;
    killPacket(victim, ctx);
    return true;
}

void
Router::killPacket(NetPacket *victim, TickContext &ctx)
{
    TAQOS_ASSERT(victim->state == PacketState::InFlight,
                 "preempting packet in state %d",
                 static_cast<int>(victim->state));

    double wasted = victim->hopsThisAttempt;
    while (victim->numXfers > 0)
        wasted += victim->xfers[0]->cancelTransfer(ctx.now);

    for (int i = 0; i < victim->numLocs; ++i) {
        const VcRef &loc = victim->locs[static_cast<std::size_t>(i)];
        loc.port->vcs[static_cast<std::size_t>(loc.vc)].free(
            ctx.now + static_cast<Cycle>(loc.port->creditDelay));
    }
    victim->clearLocs();
    victim->state = PacketState::Dropped;
    ++victim->preemptions;

    // Refund the attempt's bandwidth charges: the discarded service must
    // not count against the victim's virtual clock.
    for (int i = 0; i < victim->numCharges; ++i) {
        auto *table = static_cast<FlowTable *>(
            victim->charges[static_cast<std::size_t>(i)].table);
        table->uncharge(victim->charges[static_cast<std::size_t>(i)].tableIdx,
                        victim->flow, victim->sizeFlits);
    }
    victim->numCharges = 0;

    if (ctx.metrics != nullptr) {
        ++ctx.metrics->preemptionEvents;
        ctx.metrics->wastedHops += wasted;
    }
    TAQOS_ASSERT(ctx.ack != nullptr, "PVC preemption requires an ACK network");
    ctx.ack->send(ctx.now, std::abs(node_ - victim->src), victim,
                  /*isNack=*/true);
    TAQOS_LOG_DEBUG("cycle %llu: node %d preempted packet %llu "
                    "(flow %d, %.1f hops wasted)",
                    static_cast<unsigned long long>(ctx.now), node_,
                    static_cast<unsigned long long>(victim->id),
                    victim->flow, wasted);
}

void
Router::tickCompletions(Cycle now)
{
    for (const auto &out : outputs_)
        out->tickCompletion(now);
}

void
Router::tickArbitrate(TickContext &ctx)
{
    collectCandidates(ctx);
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        if (best_[o].pkt != nullptr)
            tryGrant(best_[o], ctx);
    }
}

void
Router::tick(TickContext &ctx)
{
    tickCompletions(ctx.now);
    tickArbitrate(ctx);
}

void
Router::frameFlush()
{
    if (flowTable_.enabled())
        flowTable_.flush();
    policy_->rollover();
}

} // namespace taqos
