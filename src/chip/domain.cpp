#include "chip/domain.h"

#include <algorithm>

#include "common/assert.h"

namespace taqos {

Domain::Domain(int id, std::vector<NodeCoord> nodes)
    : id_(id), nodes_(std::move(nodes))
{
}

bool
Domain::contains(NodeCoord c) const
{
    return std::find(nodes_.begin(), nodes_.end(), c) != nodes_.end();
}

void
Domain::addNode(NodeCoord c)
{
    if (!contains(c))
        nodes_.push_back(c);
}

bool
Domain::isConvex() const
{
    if (nodes_.empty())
        return true;

    // Turn-node closure: for any two members, the XY turn (b.x, a.y) must
    // be a member. (This also forces row/column interval contiguity when
    // combined with itself: if (x1,y) and (x2,y) are members then for any
    // member (xm, y2), closure pulls in the needed intermediates — but
    // gaps inside a row would still pass closure, so check contiguity
    // explicitly too.)
    for (const auto &a : nodes_) {
        for (const auto &b : nodes_) {
            if (!contains(NodeCoord{b.x, a.y}))
                return false;
        }
    }

    // Row and column contiguity (no holes along any axis).
    for (const auto &a : nodes_) {
        for (const auto &b : nodes_) {
            if (a.y == b.y) {
                const int lo = std::min(a.x, b.x);
                const int hi = std::max(a.x, b.x);
                for (int x = lo; x <= hi; ++x) {
                    if (!contains(NodeCoord{x, a.y}))
                        return false;
                }
            }
            if (a.x == b.x) {
                const int lo = std::min(a.y, b.y);
                const int hi = std::max(a.y, b.y);
                for (int y = lo; y <= hi; ++y) {
                    if (!contains(NodeCoord{a.x, y}))
                        return false;
                }
            }
        }
    }
    return true;
}

bool
Domain::xyRouteInside(NodeCoord a, NodeCoord b) const
{
    TAQOS_ASSERT(contains(a) && contains(b),
                 "route endpoints must be domain members");
    // XY dimension order: along the row of `a` to b.x, then along the
    // column of b.x to b.y.
    const int stepX = b.x >= a.x ? 1 : -1;
    for (int x = a.x; x != b.x + stepX; x += stepX) {
        if (!contains(NodeCoord{x, a.y}))
            return false;
    }
    const int stepY = b.y >= a.y ? 1 : -1;
    for (int y = a.y; y != b.y + stepY; y += stepY) {
        if (!contains(NodeCoord{b.x, y}))
            return false;
    }
    return true;
}

Domain
makeRectDomain(int id, NodeCoord origin, int width, int height)
{
    TAQOS_ASSERT(width > 0 && height > 0, "degenerate rectangle");
    std::vector<NodeCoord> nodes;
    nodes.reserve(static_cast<std::size_t>(width) *
                  static_cast<std::size_t>(height));
    for (int y = origin.y; y < origin.y + height; ++y)
        for (int x = origin.x; x < origin.x + width; ++x)
            nodes.push_back(NodeCoord{x, y});
    return Domain(id, std::move(nodes));
}

} // namespace taqos
