#include "chip/geometry.h"

#include <cmath>
#include <cstdlib>

#include "common/assert.h"
#include "common/strings.h"

namespace taqos {

int
ChipConfig::nodesX() const
{
    const int side = static_cast<int>(std::lround(std::sqrt(concentration)));
    TAQOS_ASSERT(side * side == concentration,
                 "concentration %d is not a square", concentration);
    TAQOS_ASSERT(tilesX % side == 0 && tilesY % side == 0,
                 "tile grid not divisible by concentration side");
    return tilesX / side;
}

int
ChipConfig::nodesY() const
{
    const int side = static_cast<int>(std::lround(std::sqrt(concentration)));
    return tilesY / side;
}

bool
ChipConfig::inGrid(NodeCoord c) const
{
    return c.x >= 0 && c.x < nodesX() && c.y >= 0 && c.y < nodesY();
}

bool
ChipConfig::isSharedColumn(int x) const
{
    for (int col : sharedColumns)
        if (col == x)
            return true;
    return false;
}

int
ChipConfig::computeNodes() const
{
    return numNodes() -
           static_cast<int>(sharedColumns.size()) * nodesY();
}

int
ChipConfig::nearestSharedColumn(int x) const
{
    TAQOS_ASSERT(!sharedColumns.empty(), "chip has no shared column");
    int best = sharedColumns.front();
    for (int col : sharedColumns) {
        if (std::abs(col - x) < std::abs(best - x))
            best = col;
    }
    return best;
}

std::string
coordName(NodeCoord c)
{
    return strFormat("(%d,%d)", c.x, c.y);
}

} // namespace taqos
