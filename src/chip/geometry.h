/// \file geometry.h
/// Full-chip geometry of the target system (Sec. 2.1): a 256-tile CMP with
/// 4-way concentration — an 8x8 grid of network nodes, each integrating
/// four terminals — interconnected by MECS, with one or more columns
/// dedicated to shared resources (memory controllers, accelerators).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace taqos {

/// A network node position in the 8x8 grid.
struct NodeCoord {
    int x = 0;
    int y = 0;

    bool operator==(const NodeCoord &o) const = default;
};

struct ChipConfig {
    int tilesX = 16;
    int tilesY = 16;
    int concentration = 4; ///< terminals per network node (Balfour & Dally)

    /// Grid columns dedicated to shared resources (QOS-protected).
    std::vector<int> sharedColumns = {4};

    /// Physical pitch of one concentrated node (mm) — for wire energy.
    double nodePitchMm = 2.5;

    int nodesX() const;
    int nodesY() const;
    int numNodes() const { return nodesX() * nodesY(); }
    int terminalsPerNode() const { return concentration; }
    int numTiles() const { return tilesX * tilesY; }

    bool inGrid(NodeCoord c) const;
    bool isSharedColumn(int x) const;
    bool isSharedNode(NodeCoord c) const { return isSharedColumn(c.x); }

    /// Compute nodes (non-shared) available to domains.
    int computeNodes() const;

    int nodeIndex(NodeCoord c) const { return c.y * nodesX() + c.x; }
    NodeCoord coordOf(int index) const
    {
        return NodeCoord{index % nodesX(), index / nodesX()};
    }

    /// Nearest shared column to grid column `x` (ties broken toward lower
    /// x). Asserts at least one shared column exists.
    int nearestSharedColumn(int x) const;
};

std::string coordName(NodeCoord c);

} // namespace taqos
