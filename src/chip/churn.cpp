#include "chip/churn.h"

#include <algorithm>

#include "common/assert.h"
#include "sim/chip_sim.h"

namespace taqos {
namespace {

constexpr std::uint64_t kChurnSalt = 0x7a05'c4c4'0000'0001ull;

std::uint64_t
splitmix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Arriving tenants draw their shape from small fixed tables — enough
/// variety to exercise every placement size the allocator handles.
constexpr int kArrivalThreads[4] = {16, 32, 48, 64};
constexpr std::uint32_t kArrivalWeights[3] = {1, 2, 4};

} // namespace

ChurnDriver::ChurnDriver(const ChipNetConfig &cfg,
                         const std::vector<ChurnTenant> &initial,
                         const WorkloadSpec &spec, std::uint64_t seed)
    : cfg_(cfg), spec_(spec), seed_(seed), os_(cfg.chip)
{
    TAQOS_ASSERT(spec_.kind == WorkloadKind::Churn,
                 "churn driver needs a churn workload, got %s",
                 workloadKindName(spec_.kind));
    for (const auto &t : initial) {
        const auto vm = os_.createVm(t.id, t.threads, t.weight);
        TAQOS_ASSERT(vm.has_value(), "initial VM %d admission failed",
                     t.id);
        nextVmId_ = std::max(nextVmId_, t.id + 1);
    }
    TAQOS_ASSERT(os_.coScheduleInvariant(),
                 "co-scheduling violated at admission");
}

Cycle
ChurnDriver::epochLen() const
{
    return static_cast<Cycle>(spec_.churnFrames) * cfg_.column.pvc.frameLen;
}

void
ChurnDriver::step()
{
    const int epoch = epoch_ + 1;
    const std::uint64_t h =
        splitmix(splitmix(seed_ ^ kChurnSalt) ^
                 static_cast<std::uint64_t>(epoch));
    const int live = liveVms();

    bool arrive = (h & 1) != 0;
    if (live >= spec_.churnMaxVms)
        arrive = false;
    if (live <= 1)
        arrive = true; // never churn the chip down to zero tenants

    if (arrive) {
        const int threads = kArrivalThreads[(h >> 1) & 3];
        const std::uint32_t weight = kArrivalWeights[(h >> 3) % 3];
        const auto vm = os_.createVm(nextVmId_++, threads, weight);
        if (vm.has_value()) {
            ++arrivals_;
        } else if (live > 1) {
            // Chip full: the arrival becomes a departure (the schedule
            // stays a pure function of (seed, epoch) either way).
            arrive = false;
        }
    }
    if (!arrive && live > 1) {
        const auto &vms = os_.vms();
        const std::size_t victim = (h >> 5) % vms.size();
        const int id = vms[victim].id;
        const bool ok = os_.destroyVm(id);
        TAQOS_ASSERT(ok, "churn departure of VM %d failed", id);
        ++departures_;
    }

    TAQOS_ASSERT(os_.coScheduleInvariant(),
                 "co-scheduling violated after churn epoch %d", epoch);
    epoch_ = epoch;
}

void
ChurnDriver::advanceTo(int epoch)
{
    TAQOS_ASSERT(epoch >= epoch_,
                 "churn schedule only advances (at %d, asked for %d)",
                 epoch_, epoch);
    while (epoch_ < epoch)
        step();
}

PvcParams
ChurnDriver::flowRegisters() const
{
    return os_.columnFlowRegisters(cfg_.columnX(), cfg_.column);
}

std::vector<bool>
ChurnDriver::activeComputeFlows() const
{
    std::vector<bool> active(
        static_cast<std::size_t>(cfg_.column.numFlows()), false);
    for (int row = 0; row < cfg_.chip.nodesY(); ++row) {
        for (int k = 1; k < cfg_.column.injectorsPerNode; ++k) {
            if (os_.ownerOf(NodeCoord{cfg_.computeXOf(k), row}) >= 0) {
                active[static_cast<std::size_t>(
                    cfg_.column.flowOf(row, k))] = true;
            }
        }
    }
    return active;
}

void
ChurnDriver::applyTo(ChipSim &sim) const
{
    sim.network().reprogramFlowWeights(flowRegisters().weights);
    TrafficGenerator &gen = sim.traffic().generator();
    const auto active = activeComputeFlows();
    for (int row = 0; row < cfg_.chip.nodesY(); ++row) {
        for (int k = 1; k < cfg_.column.injectorsPerNode; ++k) {
            const FlowId f = cfg_.column.flowOf(row, k);
            gen.setFlowActive(f, active[static_cast<std::size_t>(f)]);
        }
    }
}

} // namespace taqos
