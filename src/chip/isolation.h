/// \file isolation.h
/// The scheme's central security/performance-isolation property: outside
/// the QOS-protected shared columns, no MECS channel may carry traffic of
/// two different domains. A MECS channel is driven by exactly one node;
/// two domains share it only when both route traffic that *originates a
/// hop* at that node — e.g. an inter-VM transfer turning dimensions inside
/// another VM's domain (the VM#1 -> VM#3 via VM#2 example of Sec. 2.2).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "chip/geometry.h"
#include "chip/routing.h"

namespace taqos {

class IsolationAuditor {
  public:
    explicit IsolationAuditor(const ChipConfig &chip) : chip_(chip) {}

    /// Register that `domainId`'s traffic uses `route`.
    void addRoute(int domainId, const Route &route);

    struct Violation {
        NodeCoord channelOwner; ///< node driving the shared channel
        bool horizontal = false;
        std::vector<int> domains; ///< distinct domains on the channel
    };

    /// Channels outside shared columns carrying >= 2 domains.
    std::vector<Violation> audit() const;

    /// Convenience: does the registered traffic satisfy isolation?
    bool isolated() const { return audit().empty(); }

    void clear() { use_.clear(); }

  private:
    struct ChannelKey {
        int ownerIndex;
        int direction; ///< 0..3: E,W,S,N

        bool operator<(const ChannelKey &o) const
        {
            return ownerIndex != o.ownerIndex ? ownerIndex < o.ownerIndex
                                              : direction < o.direction;
        }
    };

    ChannelKey keyOf(const ChannelHop &hop) const;

    ChipConfig chip_;
    std::map<ChannelKey, std::set<int>> use_;
};

} // namespace taqos
