#include "chip/chip_cost.h"

#include "power/tech.h"
#include "topo/geometry.h"

namespace taqos {

RouterGeometry
mainNetworkRouterGeometry(const ChipConfig &chip, bool qosEnabled)
{
    RouterGeometry geom;
    geom.name = qosEnabled ? "main_qos" : "main";
    geom.flitBits = 128;

    // A 2-D MECS router: up to nodesX-1 row inputs and nodesY-1 column
    // inputs, each buffered; 4 VCs per port in the main network (shorter
    // round trips than the shared column's express provisioning), plus
    // one reserved VC when PVC rides along.
    const int rowPorts = chip.nodesX() - 1;
    const int colPorts = chip.nodesY() - 1;
    const int vcs = qosEnabled ? 5 : 4;
    geom.columnBuffers.push_back(BufferGroup{rowPorts + colPorts, vcs, 4});
    // Terminal injection staging for the concentrated terminals.
    geom.rowBuffers.push_back(BufferGroup{chip.terminalsPerNode(), 1, 4});

    // Asymmetric MECS switch: 4 direction groups + concentrated terminals.
    geom.xbarInputs = 4 + chip.terminalsPerNode();
    geom.xbarOutputs = 4 + chip.terminalsPerNode();

    if (qosEnabled) {
        // PVC state scales with the number of nodes on the chip.
        geom.flowTableFlows = chip.numNodes();
        geom.flowTableOutputs = geom.xbarOutputs;
        geom.flowCounterBits = 24;
    }
    return geom;
}

ChipCostReport
chipCostComparison(const ChipConfig &chip, TopologyKind sharedTopology)
{
    const TechParams tech = tech32nm();

    const RouterGeometry mainQos = mainNetworkRouterGeometry(chip, true);
    const RouterGeometry mainPlain = mainNetworkRouterGeometry(chip, false);
    const AreaBreakdown areaQos = computeRouterArea(mainQos, tech);
    const AreaBreakdown areaPlain = computeRouterArea(mainPlain, tech);

    ColumnConfig col;
    col.topology = sharedTopology;
    col.numNodes = chip.nodesY();
    GeometryOptions qosOn;
    const AreaBreakdown sharedArea = computeRouterArea(
        representativeGeometry(sharedTopology, col, qosOn), tech);

    const int sharedNodes =
        static_cast<int>(chip.sharedColumns.size()) * chip.nodesY();
    const int computeNodes = chip.numNodes() - sharedNodes;

    ChipCostReport report;
    // Baseline: every router carries QOS hardware; shared columns as
    // configured.
    report.qosEverywhereMm2 =
        computeNodes * areaQos.totalMm2() + sharedNodes * sharedArea.totalMm2();
    // Topology-aware: compute routers shed flow state and reserved VCs.
    report.topologyAwareMm2 = computeNodes * areaPlain.totalMm2() +
                              sharedNodes * sharedArea.totalMm2();
    report.flowStateSavedMm2 =
        computeNodes * (areaQos.flowStateMm2 - areaPlain.flowStateMm2);
    report.buffersSavedMm2 =
        computeNodes * (areaQos.buffersMm2() - areaPlain.buffersMm2());
    return report;
}

} // namespace taqos
