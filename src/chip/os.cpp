#include "chip/os.h"

#include "common/assert.h"

namespace taqos {

OsScheduler::OsScheduler(const ChipConfig &chip) : chip_(chip), alloc_(chip)
{
}

std::optional<VmInfo>
OsScheduler::createVm(int vmId, int numThreads, std::uint32_t weight)
{
    TAQOS_ASSERT(numThreads > 0, "VM with no threads");
    TAQOS_ASSERT(vm(vmId) == nullptr, "VM %d already exists", vmId);
    TAQOS_ASSERT(weight > 0, "zero weight");

    const int perNode = chip_.terminalsPerNode();
    const int nodes = (numThreads + perNode - 1) / perNode;
    auto domain = alloc_.allocate(vmId, nodes);
    if (!domain.has_value())
        return std::nullopt;

    VmInfo info;
    info.id = vmId;
    info.domain = *domain;
    info.numThreads = numThreads;
    info.weight = weight;

    // Co-schedule: fill one node's terminals completely before the next,
    // so no node ever hosts two VMs.
    int thread = 0;
    for (const auto &node : domain->nodes()) {
        for (int t = 0; t < perNode && thread < numThreads; ++t, ++thread)
            info.threads.push_back(ThreadPlacement{vmId, thread, node, t});
        if (thread >= numThreads)
            break;
    }
    vms_.push_back(info);
    return info;
}

bool
OsScheduler::destroyVm(int vmId)
{
    for (std::size_t i = 0; i < vms_.size(); ++i) {
        if (vms_[i].id == vmId) {
            alloc_.release(vmId);
            vms_.erase(vms_.begin() + static_cast<long>(i));
            return true;
        }
    }
    return false;
}

const VmInfo *
OsScheduler::vm(int vmId) const
{
    for (const auto &v : vms_)
        if (v.id == vmId)
            return &v;
    return nullptr;
}

bool
OsScheduler::coScheduleInvariant() const
{
    std::vector<int> owner(static_cast<std::size_t>(chip_.numNodes()), -1);
    for (const auto &v : vms_) {
        for (const auto &t : v.threads) {
            auto &o = owner[static_cast<std::size_t>(chip_.nodeIndex(t.node))];
            if (o != -1 && o != v.id)
                return false;
            o = v.id;
        }
    }
    return true;
}

int
OsScheduler::ownerOf(NodeCoord c) const
{
    for (const auto &v : vms_)
        if (v.domain.contains(c))
            return v.id;
    return -1;
}

PvcParams
OsScheduler::columnFlowRegisters(int column, const ColumnConfig &col) const
{
    TAQOS_ASSERT(chip_.isSharedColumn(column), "column %d is not shared",
                 column);
    TAQOS_ASSERT(col.numNodes == chip_.nodesY(),
                 "column height mismatch: %d vs %d", col.numNodes,
                 chip_.nodesY());

    PvcParams params = col.pvc;
    params.numFlows = col.numFlows();
    params.weights.assign(static_cast<std::size_t>(col.numFlows()), 1);

    for (int row = 0; row < chip_.nodesY(); ++row) {
        // Row injectors 1.. map to the row's compute nodes ordered by x.
        int injector = 1;
        for (int x = 0; x < chip_.nodesX(); ++x) {
            if (x == column)
                continue;
            if (injector >= col.injectorsPerNode)
                break;
            const int owner = ownerOf(NodeCoord{x, row});
            if (owner >= 0) {
                const VmInfo *v = vm(owner);
                params.weights[static_cast<std::size_t>(
                    col.flowOf(row, injector))] = v->weight;
            }
            ++injector;
        }
    }
    return params;
}

} // namespace taqos
