/// \file os.h
/// The three OS/hypervisor services the scheme relies on (Sec. 2.2):
///   1. co-schedule only same-VM threads onto a node's terminals,
///   2. allocate convex domains of compute/storage nodes per VM,
///   3. program per-flow rates/priorities into the memory-mapped flow
///      registers of the QOS-enabled shared-region routers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "chip/allocator.h"
#include "chip/geometry.h"
#include "qos/pvc.h"
#include "topo/topology.h"

namespace taqos {

struct ThreadPlacement {
    int vmId = -1;
    int threadId = -1;
    NodeCoord node;
    int terminal = 0; ///< slot within the node (0..concentration-1)
};

struct VmInfo {
    int id = -1;
    Domain domain;
    int numThreads = 0;
    std::uint32_t weight = 1; ///< provisioned service weight (SLA class)
    std::vector<ThreadPlacement> threads;
};

class OsScheduler {
  public:
    explicit OsScheduler(const ChipConfig &chip);

    /// Admit a VM: allocates a convex domain sized for its thread count
    /// (ceil(threads / concentration) nodes) and co-schedules the threads
    /// onto the domain's terminals. Returns nullopt if the chip is full.
    std::optional<VmInfo> createVm(int vmId, int numThreads,
                                   std::uint32_t weight = 1);

    bool destroyVm(int vmId);

    const VmInfo *vm(int vmId) const;
    const std::vector<VmInfo> &vms() const { return vms_; }
    DomainAllocator &allocator() { return alloc_; }
    const ChipConfig &chip() const { return chip_; }

    /// Co-scheduling invariant: every node hosts threads of at most one
    /// VM (so row links are only shared by "friendly" threads and need no
    /// QOS).
    bool coScheduleInvariant() const;

    /// Which VM owns a node (-1 if unallocated / shared).
    int ownerOf(NodeCoord c) const;

    /// Program the flow registers of one shared column: produces the PVC
    /// weight vector for the column's 64 flows (8 nodes x [terminal + 7
    /// row inputs]) from the owning VMs' weights. Row injector k of
    /// column-node row r corresponds to the k-th compute node of row r
    /// (by x); unallocated nodes get weight 1.
    PvcParams columnFlowRegisters(int column,
                                  const ColumnConfig &col) const;

  private:
    ChipConfig chip_;
    DomainAllocator alloc_;
    std::vector<VmInfo> vms_;
};

} // namespace taqos
