/// \file chip_cost.h
/// Chip-level cost comparison: hardware QOS at every router (the Fig. 1(a)
/// baseline) versus the topology-aware scheme (QOS only inside the shared
/// columns, Fig. 1(b)). Quantifies the paper's "significant savings in
/// router cost and complexity" claim.
#pragma once

#include "chip/geometry.h"
#include "power/router_power.h"
#include "topo/topology.h"

namespace taqos {

struct ChipCostReport {
    /// Total router area with PVC hardware at all 64 nodes (mm^2).
    double qosEverywhereMm2 = 0.0;
    /// Total router area with QOS only in the shared columns.
    double topologyAwareMm2 = 0.0;
    /// Flow-state area removed from the compute region.
    double flowStateSavedMm2 = 0.0;
    /// Buffer area removed (reserved VCs dropped outside shared regions).
    double buffersSavedMm2 = 0.0;

    double savingsPct() const
    {
        return qosEverywhereMm2 <= 0.0
            ? 0.0
            : 100.0 * (qosEverywhereMm2 - topologyAwareMm2) /
                  qosEverywhereMm2;
    }
};

/// Geometry of a main-network (2-D MECS) router, with or without QOS
/// hardware.
RouterGeometry mainNetworkRouterGeometry(const ChipConfig &chip,
                                         bool qosEnabled);

/// Compare total router cost of the two provisioning strategies, with the
/// shared columns built in `sharedTopology`.
ChipCostReport chipCostComparison(const ChipConfig &chip,
                                  TopologyKind sharedTopology);

} // namespace taqos
