#include "chip/isolation.h"

#include "common/assert.h"

namespace taqos {

IsolationAuditor::ChannelKey
IsolationAuditor::keyOf(const ChannelHop &hop) const
{
    TAQOS_ASSERT(hop.from.x == hop.to.x || hop.from.y == hop.to.y,
                 "diagonal channel hop");
    int direction;
    if (hop.horizontal())
        direction = hop.to.x > hop.from.x ? 0 : 1; // E / W
    else
        direction = hop.to.y > hop.from.y ? 2 : 3; // S / N
    return ChannelKey{chip_.nodeIndex(hop.from), direction};
}

void
IsolationAuditor::addRoute(int domainId, const Route &route)
{
    for (const auto &hop : route.hops)
        use_[keyOf(hop)].insert(domainId);
}

std::vector<IsolationAuditor::Violation>
IsolationAuditor::audit() const
{
    std::vector<Violation> violations;
    for (const auto &[key, domains] : use_) {
        if (domains.size() < 2)
            continue;
        const NodeCoord owner = chip_.coordOf(key.ownerIndex);
        if (chip_.isSharedNode(owner))
            continue; // QOS hardware arbitrates fairly here
        Violation v;
        v.channelOwner = owner;
        v.horizontal = key.direction <= 1;
        v.domains.assign(domains.begin(), domains.end());
        violations.push_back(std::move(v));
    }
    return violations;
}

} // namespace taqos
