/// \file allocator.h
/// OS-level placement: carve convex (rectangular) domains out of the
/// compute-node grid, never overlapping a shared column. Rectangles are
/// trivially convex, so every intra-domain XY route stays inside the
/// domain (Sec. 2.2's requirement).
#pragma once

#include <optional>
#include <vector>

#include "chip/domain.h"
#include "chip/geometry.h"

namespace taqos {

class DomainAllocator {
  public:
    explicit DomainAllocator(const ChipConfig &chip);

    /// Allocate a convex domain of at least `numNodes` compute nodes.
    /// Picks the rectangle shape with the least waste that fits in the
    /// current free map (first-fit scan). Returns nullopt when no
    /// placement exists.
    std::optional<Domain> allocate(int domainId, int numNodes);

    /// Release a domain's nodes. Returns false if the id is unknown.
    bool release(int domainId);

    const std::vector<Domain> &domains() const { return domains_; }
    const Domain *find(int domainId) const;

    int freeNodes() const;
    bool isFree(NodeCoord c) const;
    const ChipConfig &chip() const { return chip_; }

  private:
    bool rectUsable(NodeCoord origin, int w, int h) const;
    void markRect(const Domain &d, bool free);

    ChipConfig chip_;
    std::vector<bool> free_; ///< by node index; shared columns never free
    std::vector<Domain> domains_;
};

} // namespace taqos
