/// \file domain.h
/// Domains (Sec. 2.2): the OS/hypervisor places all threads of an
/// application or VM into a *convex* region of compute nodes, so that
/// XY-routed intra-domain cache traffic provably stays inside the domain
/// and needs no QOS hardware.
#pragma once

#include <string>
#include <vector>

#include "chip/geometry.h"

namespace taqos {

class Domain {
  public:
    Domain() = default;
    Domain(int id, std::vector<NodeCoord> nodes);

    int id() const { return id_; }
    const std::vector<NodeCoord> &nodes() const { return nodes_; }
    bool contains(NodeCoord c) const;
    std::size_t size() const { return nodes_.size(); }

    void addNode(NodeCoord c);

    /// The paper's placement requirement: the domain must be convex on the
    /// grid so dimension-order routes between members never leave it.
    /// For XY routing the needed property is exactly: every row segment is
    /// contiguous, every column segment is contiguous, the region is
    /// connected, and for any two members the XY turn node is a member.
    /// We check the direct characterization: for all (a, b) in the domain,
    /// (b.x, a.y) is in the domain, plus row/column contiguity.
    bool isConvex() const;

    /// Does the XY route between two members stay inside the domain?
    /// (Implied by isConvex(); exposed for property tests.)
    bool xyRouteInside(NodeCoord a, NodeCoord b) const;

  private:
    int id_ = -1;
    std::vector<NodeCoord> nodes_;
};

/// A rectangle of nodes — always convex; what the allocator hands out.
Domain makeRectDomain(int id, NodeCoord origin, int width, int height);

} // namespace taqos
