/// \file routing.h
/// MECS route computation on the full chip. A MECS channel is driven by
/// exactly one node and multi-drops at every node it passes in one
/// direction, so a route is a sequence of channel traversals (at most one
/// per dimension under XY dimension-order routing). Inter-domain traffic
/// is forced through a QOS-protected shared column (Sec. 2.2), which may
/// make its route non-minimal.
#pragma once

#include <vector>

#include "chip/geometry.h"

namespace taqos {

/// One traversal of a MECS channel: from `from` to `to` along a single
/// dimension, on the channel owned (driven) by `from`.
struct ChannelHop {
    NodeCoord from;
    NodeCoord to;

    bool horizontal() const { return from.y == to.y; }
    int span() const;
};

struct Route {
    std::vector<ChannelHop> hops;

    int totalSpan() const;               ///< wire distance in node pitches
    int routerTraversals() const;        ///< routers entered (hops + 1)
    bool passesThrough(NodeCoord c) const;
};

class MecsRouter {
  public:
    explicit MecsRouter(const ChipConfig &chip) : chip_(chip) {}

    /// Plain XY dimension-order route (intra-domain traffic, memory
    /// traffic to a shared column in the same row).
    Route routeXY(NodeCoord src, NodeCoord dst) const;

    /// Memory access: single row hop into the nearest shared column, then
    /// the QOS-protected column to the memory controller's row.
    Route routeToSharedColumn(NodeCoord src, int mcRow) const;

    /// Inter-domain (inter-VM) route: must transit a shared column so all
    /// cross-domain contention happens under QOS protection. The route is
    /// row hop into the column, column hop to the destination row, row hop
    /// to the destination — possibly non-minimal.
    Route routeInterDomain(NodeCoord src, NodeCoord dst) const;

    /// Latency estimate in cycles for a route: per-channel serialization +
    /// wire + router pipelines (MECS: 3-stage routers, 1 cycle per node
    /// pitch of wire).
    double latencyCycles(const Route &route, int packetFlits) const;

    /// Wire energy of moving a packet over the route (pJ), using the
    /// chip's node pitch and the 32 nm repeated-wire model. Router-level
    /// energies come from power/router_power.h.
    double wireEnergyPj(const Route &route, int packetFlits,
                        int flitBits = 128) const;

  private:
    ChipConfig chip_;
};

} // namespace taqos
