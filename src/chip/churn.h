/// \file churn.h
/// Tenant churn: VMs arriving at and departing from the consolidated
/// server mid-run. The driver owns an OsScheduler and a deterministic
/// event schedule — one arrival or departure per epoch (a configurable
/// number of QOS frames), derived purely from the seed and the epoch
/// index, never from execution order — and reprograms a live ChipSim at
/// each epoch boundary: column flow registers rewritten through
/// Network::reprogramFlowWeights, departed tenants' compute flows
/// silenced and arriving tenants' flows enabled through
/// TrafficGenerator::setFlowActive.
///
/// Because the schedule is a pure function of (seed, epoch), a run can be
/// checkpointed mid-epoch and resumed bit-identically: rebuild the sim
/// and a fresh driver, advanceTo() the saved epoch, applyTo() the sim,
/// restore, continue. The co-scheduling invariant is asserted after every
/// event.
#pragma once

#include <cstdint>
#include <vector>

#include "chip/os.h"
#include "topo/chip_network.h"
#include "traffic/workload_spec.h"

namespace taqos {

class ChipSim;

/// One initially admitted VM (mirrors the sweep layer's placement
/// presets without depending on them).
struct ChurnTenant {
    int id = 0;
    int threads = 0;
    std::uint32_t weight = 1;
};

class ChurnDriver {
  public:
    /// Admits the initial tenants (epoch 0 state). `spec` must be a
    /// Churn-kind workload; `seed` drives the event schedule.
    ChurnDriver(const ChipNetConfig &cfg,
                const std::vector<ChurnTenant> &initial,
                const WorkloadSpec &spec, std::uint64_t seed);

    /// Epoch length in cycles: churnFrames x the column's QOS frame, so
    /// every tenant change lands exactly on a frame boundary.
    Cycle epochLen() const;

    int currentEpoch() const { return epoch_; }

    /// Replay the event schedule up to `epoch` (monotonic; asserts the
    /// co-scheduling invariant after every event).
    void advanceTo(int epoch);

    /// Flow registers for the current tenant mix (what the hypervisor
    /// programs into the shared column).
    PvcParams flowRegisters() const;

    /// Per-flow activity of the current mix for the chip's compute flows
    /// (injector slots k >= 1). Terminal flows (k == 0) are reported
    /// false and never touched by applyTo — the cell runner owns them
    /// (they carry the adversarial rates under churnAttack).
    std::vector<bool> activeComputeFlows() const;

    /// Push the current epoch's state into a live sim: rewrite the flow
    /// registers and reprogram the compute flows' activity. Call at the
    /// frame-aligned epoch boundary (or right after a checkpoint
    /// restore, to re-establish the epoch the snapshot was taken in).
    void applyTo(ChipSim &sim) const;

    const OsScheduler &os() const { return os_; }
    int arrivals() const { return arrivals_; }
    int departures() const { return departures_; }
    int liveVms() const { return static_cast<int>(os_.vms().size()); }

  private:
    void step(); ///< apply epoch_ + 1's event

    ChipNetConfig cfg_;
    WorkloadSpec spec_;
    std::uint64_t seed_;
    OsScheduler os_;
    int epoch_ = 0;
    int nextVmId_ = 0;
    int arrivals_ = 0;
    int departures_ = 0;
};

} // namespace taqos
