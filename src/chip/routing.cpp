#include "chip/routing.h"

#include <cmath>
#include <cstdlib>

#include "common/assert.h"
#include "power/tech.h"
#include "power/wire_model.h"

namespace taqos {

int
ChannelHop::span() const
{
    return std::abs(to.x - from.x) + std::abs(to.y - from.y);
}

int
Route::totalSpan() const
{
    int span = 0;
    for (const auto &hop : hops)
        span += hop.span();
    return span;
}

int
Route::routerTraversals() const
{
    // Source router plus one router entered per channel traversal
    // (express channels skip everything in between).
    return static_cast<int>(hops.size()) + 1;
}

bool
Route::passesThrough(NodeCoord c) const
{
    for (const auto &hop : hops) {
        if (hop.horizontal()) {
            if (c.y != hop.from.y)
                continue;
            const int lo = std::min(hop.from.x, hop.to.x);
            const int hi = std::max(hop.from.x, hop.to.x);
            if (c.x >= lo && c.x <= hi)
                return true;
        } else {
            if (c.x != hop.from.x)
                continue;
            const int lo = std::min(hop.from.y, hop.to.y);
            const int hi = std::max(hop.from.y, hop.to.y);
            if (c.y >= lo && c.y <= hi)
                return true;
        }
    }
    return false;
}

Route
MecsRouter::routeXY(NodeCoord src, NodeCoord dst) const
{
    TAQOS_ASSERT(chip_.inGrid(src) && chip_.inGrid(dst),
                 "route endpoints off-grid");
    Route route;
    NodeCoord cur = src;
    if (dst.x != cur.x) {
        const NodeCoord turn{dst.x, cur.y};
        route.hops.push_back(ChannelHop{cur, turn});
        cur = turn;
    }
    if (dst.y != cur.y)
        route.hops.push_back(ChannelHop{cur, dst});
    return route;
}

Route
MecsRouter::routeToSharedColumn(NodeCoord src, int mcRow) const
{
    const int col = chip_.nearestSharedColumn(src.x);
    return routeXY(src, NodeCoord{col, mcRow});
}

Route
MecsRouter::routeInterDomain(NodeCoord src, NodeCoord dst) const
{
    const int col = chip_.nearestSharedColumn(src.x);
    Route route;
    NodeCoord cur = src;
    // Row hop into the shared column (skipped if already there).
    if (cur.x != col) {
        const NodeCoord entry{col, cur.y};
        route.hops.push_back(ChannelHop{cur, entry});
        cur = entry;
    }
    // QOS-protected column hop to the destination row.
    if (cur.y != dst.y) {
        const NodeCoord exit{col, dst.y};
        route.hops.push_back(ChannelHop{cur, exit});
        cur = exit;
    }
    // Row hop out to the destination (possibly doubling back — the
    // non-minimal case Sec. 2.2 accepts for inter-VM transfers).
    if (cur.x != dst.x)
        route.hops.push_back(ChannelHop{cur, dst});
    return route;
}

double
MecsRouter::latencyCycles(const Route &route, int packetFlits) const
{
    TAQOS_ASSERT(packetFlits > 0, "empty packet");
    // MECS router pipeline: 3 stages; wire: 1 cycle per node pitch;
    // serialization paid once at the final hop (virtual cut-through).
    const double routerCycles = 3.0 * route.routerTraversals();
    const double wireCycles = static_cast<double>(route.totalSpan());
    return routerCycles + wireCycles + (packetFlits - 1);
}

double
MecsRouter::wireEnergyPj(const Route &route, int packetFlits,
                         int flitBits) const
{
    TAQOS_ASSERT(packetFlits > 0 && flitBits > 0, "empty packet");
    const WireModel wire(tech32nm());
    const double mm = route.totalSpan() * chip_.nodePitchMm;
    return wire.energyPj(flitBits, mm) * packetFlits;
}

} // namespace taqos
