#include "chip/allocator.h"

#include <algorithm>

#include "common/assert.h"

namespace taqos {

DomainAllocator::DomainAllocator(const ChipConfig &chip)
    : chip_(chip),
      free_(static_cast<std::size_t>(chip.numNodes()), true)
{
    for (int i = 0; i < chip_.numNodes(); ++i) {
        if (chip_.isSharedNode(chip_.coordOf(i)))
            free_[static_cast<std::size_t>(i)] = false;
    }
}

bool
DomainAllocator::isFree(NodeCoord c) const
{
    return chip_.inGrid(c) && free_[static_cast<std::size_t>(chip_.nodeIndex(c))];
}

int
DomainAllocator::freeNodes() const
{
    int n = 0;
    for (bool f : free_)
        n += f;
    return n;
}

bool
DomainAllocator::rectUsable(NodeCoord origin, int w, int h) const
{
    for (int y = origin.y; y < origin.y + h; ++y) {
        for (int x = origin.x; x < origin.x + w; ++x) {
            if (!isFree(NodeCoord{x, y}))
                return false;
        }
    }
    return true;
}

void
DomainAllocator::markRect(const Domain &d, bool free)
{
    for (const auto &c : d.nodes()) {
        const auto idx = static_cast<std::size_t>(chip_.nodeIndex(c));
        TAQOS_ASSERT(free_[idx] != free, "double alloc/free at %s",
                     coordName(c).c_str());
        free_[idx] = free;
    }
}

std::optional<Domain>
DomainAllocator::allocate(int domainId, int numNodes)
{
    TAQOS_ASSERT(numNodes > 0, "empty domain requested");
    TAQOS_ASSERT(find(domainId) == nullptr, "domain %d already exists",
                 domainId);

    // Candidate shapes ordered by waste, then by squareness (compact
    // domains keep communication local).
    struct Shape {
        int w, h, waste, elong;
    };
    std::vector<Shape> shapes;
    for (int w = 1; w <= chip_.nodesX(); ++w) {
        const int h = (numNodes + w - 1) / w;
        if (h > chip_.nodesY())
            continue;
        shapes.push_back(Shape{w, h, w * h - numNodes, std::abs(w - h)});
        if (h != w && w * h - numNodes < h) // transposed variant
            shapes.push_back(Shape{h, w, w * h - numNodes, std::abs(w - h)});
    }
    std::sort(shapes.begin(), shapes.end(), [](const Shape &a, const Shape &b) {
        if (a.waste != b.waste)
            return a.waste < b.waste;
        if (a.elong != b.elong)
            return a.elong < b.elong;
        return a.w < b.w;
    });

    for (const auto &s : shapes) {
        if (s.h > chip_.nodesY() || s.w > chip_.nodesX())
            continue;
        for (int y = 0; y + s.h <= chip_.nodesY(); ++y) {
            for (int x = 0; x + s.w <= chip_.nodesX(); ++x) {
                const NodeCoord origin{x, y};
                if (!rectUsable(origin, s.w, s.h))
                    continue;
                Domain d = makeRectDomain(domainId, origin, s.w, s.h);
                markRect(d, false);
                domains_.push_back(d);
                return d;
            }
        }
    }
    return std::nullopt;
}

const Domain *
DomainAllocator::find(int domainId) const
{
    for (const auto &d : domains_)
        if (d.id() == domainId)
            return &d;
    return nullptr;
}

bool
DomainAllocator::release(int domainId)
{
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        if (domains_[i].id() == domainId) {
            markRect(domains_[i], true);
            domains_.erase(domains_.begin() + static_cast<long>(i));
            return true;
        }
    }
    return false;
}

} // namespace taqos
