/// \file activity.h
/// Activity-tracking worklist shared by the routers and the simulation
/// engine. Routers arm themselves onto `pending` when an event gives them
/// work (a flit arrival, an injector enqueue, a transfer start); the
/// engine merges `pending` into its sorted active list once per cycle and
/// ticks only the listed routers. A router with no armed work is skipped
/// entirely — the cornerstone of the activity-driven hot path.
#pragma once

#include <vector>

#include "common/types.h"

namespace taqos {

struct ActivityWorklist {
    /// Node ids armed since the engine last merged (unsorted, no
    /// duplicates — each router tracks its own membership flag).
    std::vector<NodeId> pending;
};

} // namespace taqos
