#include "noc/metrics.h"

#include "common/strings.h"

namespace taqos {

std::string
SimMetrics::summary() const
{
    std::string out;
    out += strFormat("generated : %llu packets (%llu flits)\n",
                     static_cast<unsigned long long>(generatedPackets),
                     static_cast<unsigned long long>(generatedFlits));
    out += strFormat("delivered : %llu packets (%llu flits)\n",
                     static_cast<unsigned long long>(deliveredPackets),
                     static_cast<unsigned long long>(deliveredFlits));
    out += strFormat("latency   : avg %.1f, min %.0f, max %.0f cycles "
                     "(%llu measured)\n",
                     latency.mean(), latency.min(), latency.max(),
                     static_cast<unsigned long long>(latency.count()));
    out += strFormat("preemption: %llu events, %.2f%% packets, "
                     "%.2f%% hops replayed\n",
                     static_cast<unsigned long long>(preemptionEvents),
                     100.0 * preemptionPacketRate(),
                     100.0 * preemptionHopRate());
    return out;
}

namespace {

std::uint64_t
mixDigest(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
metricsDigest(const SimMetrics &m, bool extended)
{
    std::uint64_t h = 0x5eedu;
    if (extended) {
        h = mixDigest(h, m.generatedPackets);
        h = mixDigest(h, m.injectedAttempts);
    }
    h = mixDigest(h, m.deliveredPackets);
    h = mixDigest(h, m.deliveredFlits);
    h = mixDigest(h, m.preemptionEvents);
    h = mixDigest(h, static_cast<std::uint64_t>(m.latency.count()));
    h = mixDigest(h, static_cast<std::uint64_t>(m.latency.mean() * 1e6));
    if (extended) {
        h = mixDigest(h, static_cast<std::uint64_t>(m.usefulHops * 1e3));
        h = mixDigest(h, static_cast<std::uint64_t>(m.wastedHops * 1e3));
    }
    for (auto f : m.flowFlits)
        h = mixDigest(h, f);
    return h;
}

} // namespace taqos
