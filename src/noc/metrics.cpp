#include "noc/metrics.h"

#include "common/strings.h"

namespace taqos {

std::string
SimMetrics::summary() const
{
    std::string out;
    out += strFormat("generated : %llu packets (%llu flits)\n",
                     static_cast<unsigned long long>(generatedPackets),
                     static_cast<unsigned long long>(generatedFlits));
    out += strFormat("delivered : %llu packets (%llu flits)\n",
                     static_cast<unsigned long long>(deliveredPackets),
                     static_cast<unsigned long long>(deliveredFlits));
    out += strFormat("latency   : avg %.1f, min %.0f, max %.0f cycles "
                     "(%llu measured)\n",
                     latency.mean(), latency.min(), latency.max(),
                     static_cast<unsigned long long>(latency.count()));
    out += strFormat("preemption: %llu events, %.2f%% packets, "
                     "%.2f%% hops replayed\n",
                     static_cast<unsigned long long>(preemptionEvents),
                     100.0 * preemptionPacketRate(),
                     100.0 * preemptionHopRate());
    return out;
}

} // namespace taqos
