/// \file packet.h
/// Network packet representation and pooling.
///
/// The simulator moves whole packets with virtual cut-through timing: a
/// packet occupies an output link for `sizeFlits` cycles and may begin
/// downstream arbitration as soon as its head flit arrives. A packet can
/// therefore hold buffer space in up to three routers at once (cutting
/// through); `locs` tracks every VC it currently occupies so that a PVC
/// preemption can kill the whole chain eagerly.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace taqos {

class InputPort;
class OutputPort;

/// "Not admitted into any GSF frame" (see NetPacket::frameTag).
inline constexpr std::uint64_t kNoFrameTag =
    std::numeric_limits<std::uint64_t>::max();

/// Where a packet currently holds a virtual channel.
struct VcRef {
    InputPort *port = nullptr;
    int vc = -1;
};

/// Lifecycle of one packet attempt.
enum class PacketState : std::uint8_t {
    Queued,    ///< waiting in a source queue (initial or after NACK)
    InFlight,  ///< owns at least one VC or link transfer
    Delivered, ///< tail ejected at the destination terminal
    Dropped,   ///< preempted; will be retransmitted
};

/// A packet instance. Retransmissions reuse the same object (same id);
/// `attempt` counts transmissions.
struct NetPacket {
    PacketId id = kInvalidPacket;
    FlowId flow = kInvalidFlow;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    /// Final destination of a multi-segment journey (whole-chip sim: the
    /// row segment routes on `dst` = the column-entry node, then the
    /// handoff rewrites `dst` to `finalDst`). kInvalidNode otherwise.
    NodeId finalDst = kInvalidNode;
    int sizeFlits = 1;

    Cycle genCycle = kNoCycle;     ///< first generation time
    Cycle queuedCycle = kNoCycle;  ///< entered a source queue (gen or NACK)
    Cycle injectCycle = kNoCycle;  ///< start of the current attempt
    Cycle deliverCycle = kNoCycle; ///< tail ejection time

    PacketState state = PacketState::Queued;
    bool measured = false;      ///< generated inside the measurement window
    bool rateCompliant = false; ///< within the PVC reserved quota
    int attempt = 0;

    /// Priority carried with the packet (PVC priority reuse). Lower value
    /// means higher priority.
    std::uint64_t carriedPrio = 0;

    /// GSF frame this packet was admitted into (QosMode::Gsf only;
    /// stamped by the SourceGate, kNoFrameTag otherwise). Earlier frames
    /// have absolute priority at every router.
    std::uint64_t frameTag = kNoFrameTag;

    /// First cycle this packet failed VC allocation at its current hop
    /// (kNoCycle = not blocked); gates preemption-inversion detection.
    Cycle blockedSince = kNoCycle;

    /// Mesh-equivalent hop traversals completed in the current attempt;
    /// wasted (and re-counted) if the packet is preempted.
    double hopsThisAttempt = 0.0;

    int preemptions = 0; ///< total preemption events over all attempts

    /// VC occupancy chain (source VC + up to two downstream reservations).
    std::array<VcRef, 4> locs{};
    int numLocs = 0;

    /// Output ports with an in-progress transfer of this packet (a packet
    /// cutting through can be arriving into one router while draining
    /// towards the next).
    std::array<OutputPort *, 4> xfers{};
    int numXfers = 0;

    /// Has this packet claimed a slot in its source's outstanding window?
    bool inWindow = false;

    /// Flow-table charges of the current attempt (one per hop won), so a
    /// preemption can refund them: the victim must not be billed for
    /// service that was discarded.
    struct ChargeRef {
        void *table = nullptr; ///< FlowTable*, opaque to this layer
        int tableIdx = -1;
    };
    std::array<ChargeRef, 12> charges{};
    int numCharges = 0;

    void addLoc(InputPort *port, int vc);
    void removeLoc(InputPort *port, int vc);
    void clearLocs() { numLocs = 0; }

    void addXfer(OutputPort *out);
    void removeXfer(OutputPort *out);

    void logCharge(void *table, int tableIdx);

    /// Reset per-attempt state before (re)injection.
    void beginAttempt(Cycle now);
};

/// Recycling allocator for packets. Terminal-state packets are returned to
/// a free list; long saturation runs would otherwise allocate millions of
/// short-lived objects.
class PacketPool {
  public:
    NetPacket *alloc();
    void release(NetPacket *pkt);

    std::size_t liveCount() const { return live_; }
    std::size_t allocatedCount() const { return all_.size(); }

    /// Checkpoint access: the i-th packet ever allocated. Pool indices
    /// are the canonical packet encoding in a snapshot — stable across
    /// the save/restore boundary because alloc order is deterministic.
    NetPacket *at(std::size_t i) { return all_[i].get(); }
    const NetPacket *at(std::size_t i) const { return all_[i].get(); }

    const std::vector<NetPacket *> &freeList() const { return free_; }

    PacketId nextId() const { return nextId_; }

    /// Restore: size the pool to `count` default-constructed packets
    /// (the caller then overwrites each record and rebuilds the free
    /// list). Only valid on a fresh pool.
    void restoreShape(std::size_t count);

    /// Restore the free list as pool indices in LIFO order (back = next
    /// to be handed out), plus the id counter.
    void restoreFreeList(const std::vector<std::size_t> &freeIdx,
                         PacketId nextId);

  private:
    std::vector<std::unique_ptr<NetPacket>> all_;
    std::vector<NetPacket *> free_;
    std::size_t live_ = 0;
    PacketId nextId_ = 0;
};

} // namespace taqos
