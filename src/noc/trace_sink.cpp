#include "noc/trace_sink.h"

namespace taqos {

TraceSink::~TraceSink() = default;

} // namespace taqos
