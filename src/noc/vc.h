/// \file vc.h
/// A virtual channel under virtual cut-through flow control.
///
/// Each VC is sized to hold the largest packet (4 flits), so "a free VC"
/// is exactly "buffer space for a whole packet" — the VCT allocation
/// condition. A VC is Reserved the moment an upstream router wins
/// allocation for it; the head flit arrives `wireDelay` later and the
/// packet becomes arbitrable downstream (cut-through).
#pragma once

#include "common/types.h"
#include "noc/packet.h"

namespace taqos {

class InputPort;

class VirtualChannel {
  public:
    enum class State : std::uint8_t {
        Free,     ///< no packet; allocatable once the credit is visible
        Reserved, ///< allocated; flits arriving (or queued to arrive)
        Draining, ///< packet is being transmitted out of this VC
    };

    State state() const { return state_; }
    NetPacket *packet() const { return pkt_; }
    Cycle headArrival() const { return headArrival_; }
    Cycle tailArrival() const { return tailArrival_; }

    /// Has the head flit physically arrived (packet arbitrable)?
    bool arrived(Cycle now) const
    {
        return state_ != State::Free && now >= headArrival_;
    }

    /// May an upstream allocator take this VC at `now`? Models the credit
    /// round trip: a freed VC becomes visible after the credit delay.
    bool allocatable(Cycle now) const
    {
        return state_ == State::Free && now >= freeVisibleAt_;
    }

    /// Reserve for an incoming packet.
    void reserve(NetPacket *pkt, Cycle headArrival, Cycle tailArrival);

    /// Mark the packet as being transmitted out (virtual cut-through keeps
    /// it resident until the tail departs).
    void startDrain();

    /// Release; the upstream allocator sees the credit at `visibleAt`.
    void free(Cycle visibleAt);

    /// Flits of this packet physically present in the buffer at `now`
    /// (for preemption waste accounting).
    int flitsPresent(Cycle now) const;

    /// Attach the port whose occupancy this VC feeds. State transitions
    /// then notify the port (incremental occupancy counts + router
    /// activity arming); a detached VC (unit tests, scratch buffers) is
    /// tracked by nobody. Wired by Network::finalizeRouters.
    void setPort(InputPort *port) { port_ = port; }
    InputPort *port() const { return port_; }

    /// Restore: overwrite the full VC state without firing the port
    /// hooks (the restoring router recomputes occupancy counts and
    /// re-adds arbitration slots afterwards, so the usual notify-on-
    /// transition path must stay silent). freeVisibleAt matters even
    /// for Free VCs — an in-flight credit is part of the state.
    void restoreRaw(State state, NetPacket *pkt, Cycle headArrival,
                    Cycle tailArrival, Cycle freeVisibleAt)
    {
        state_ = state;
        pkt_ = pkt;
        arbOutput_ = -1;
        headArrival_ = headArrival;
        tailArrival_ = tailArrival;
        freeVisibleAt_ = freeVisibleAt;
    }

    Cycle freeVisibleAt() const { return freeVisibleAt_; }

    /// Output whose candidate list holds this VC's arbitration slot
    /// (-1 = none: Free, Draining, or owned by a slot-less port). Managed
    /// by the owning Router.
    int arbOutput() const { return arbOutput_; }
    void setArbOutput(int out) { arbOutput_ = out; }

  private:
    State state_ = State::Free;
    NetPacket *pkt_ = nullptr;
    InputPort *port_ = nullptr;
    int arbOutput_ = -1;
    Cycle headArrival_ = kNoCycle;
    Cycle tailArrival_ = kNoCycle;
    Cycle freeVisibleAt_ = 0;
};

} // namespace taqos
