/// \file metrics.h
/// Simulation-wide measurement state shared by injectors, routers and
/// terminals. Latency statistics cover packets *generated* inside the
/// measurement window; per-flow throughput covers flits *delivered* inside
/// it; preemption/hop accounting covers the whole run (the adversarial
/// workloads measure complete executions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace taqos {

struct SimMetrics {
    explicit SimMetrics(int numFlows)
        : flowFlits(static_cast<std::size_t>(numFlows), 0)
    {
    }

    Cycle measureStart = 0;
    Cycle measureEnd = kNoCycle;

    bool inWindow(Cycle c) const { return c >= measureStart && c < measureEnd; }

    // --- offered / accepted traffic ---
    std::uint64_t generatedPackets = 0;
    std::uint64_t generatedFlits = 0;
    std::uint64_t measuredGenerated = 0; ///< packets generated in-window
    std::uint64_t injectedAttempts = 0; ///< injection-port wins (incl. replays)
    std::uint64_t deliveredPackets = 0;
    std::uint64_t deliveredFlits = 0;

    // --- latency (measured packets only) ---
    RunningStat latency;
    Histogram latencyHist{4.0, 128};

    // --- per-flow throughput in the measurement window (flits) ---
    std::vector<std::uint64_t> flowFlits;

    // --- preemption accounting (whole run) ---
    std::uint64_t preemptionEvents = 0;
    double usefulHops = 0.0;
    double wastedHops = 0.0;

    /// Fraction of packets experiencing a preemption (each event counted
    /// separately, as in the paper).
    double preemptionPacketRate() const
    {
        return deliveredPackets == 0
            ? 0.0
            : static_cast<double>(preemptionEvents) /
                  static_cast<double>(deliveredPackets);
    }

    /// Fraction of hop traversals wasted and replayed.
    double preemptionHopRate() const
    {
        const double total = usefulHops + wastedHops;
        return total <= 0.0 ? 0.0 : wastedHops / total;
    }

    /// Delivered flits per cycle over the measurement window.
    double throughputFlitsPerCycle(Cycle windowLen) const
    {
        return windowLen == 0
            ? 0.0
            : static_cast<double>(windowFlits()) /
                  static_cast<double>(windowLen);
    }

    std::uint64_t windowFlits() const
    {
        std::uint64_t sum = 0;
        for (auto f : flowFlits)
            sum += f;
        return sum;
    }

    /// Multi-line human-readable summary (examples, debugging dumps).
    std::string summary() const;
};

/// Order-sensitive digest of a run's observable outcome; any behavioural
/// drift in arbitration perturbs it. The shared definition behind every
/// equivalence check: the golden-digest policy tests pin the base form
/// (delivery/preemption/latency/per-flow throughput — its recorded
/// values predate the extended fields and must stay stable), while the
/// engine-equivalence tests and bench/ablation_hotpath use the extended
/// form, which also folds in generation, injection attempts and hop
/// accounting.
std::uint64_t metricsDigest(const SimMetrics &m, bool extended = true);

} // namespace taqos
