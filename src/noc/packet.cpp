#include "noc/packet.h"

namespace taqos {

void
NetPacket::addLoc(InputPort *port, int vc)
{
    TAQOS_ASSERT(numLocs < static_cast<int>(locs.size()),
                 "packet %llu occupies too many VCs",
                 static_cast<unsigned long long>(id));
    locs[static_cast<std::size_t>(numLocs++)] = VcRef{port, vc};
}

void
NetPacket::removeLoc(InputPort *port, int vc)
{
    for (int i = 0; i < numLocs; ++i) {
        if (locs[static_cast<std::size_t>(i)].port == port &&
            locs[static_cast<std::size_t>(i)].vc == vc) {
            locs[static_cast<std::size_t>(i)] =
                locs[static_cast<std::size_t>(numLocs - 1)];
            --numLocs;
            return;
        }
    }
    TAQOS_UNREACHABLE("removeLoc: location not found");
}

void
NetPacket::addXfer(OutputPort *out)
{
    TAQOS_ASSERT(numXfers < static_cast<int>(xfers.size()),
                 "packet %llu has too many active transfers",
                 static_cast<unsigned long long>(id));
    xfers[static_cast<std::size_t>(numXfers++)] = out;
}

void
NetPacket::removeXfer(OutputPort *out)
{
    for (int i = 0; i < numXfers; ++i) {
        if (xfers[static_cast<std::size_t>(i)] == out) {
            xfers[static_cast<std::size_t>(i)] =
                xfers[static_cast<std::size_t>(numXfers - 1)];
            --numXfers;
            return;
        }
    }
    TAQOS_UNREACHABLE("removeXfer: transfer not found");
}

void
NetPacket::logCharge(void *table, int tableIdx)
{
    // A packet traverses at most a handful of charging hops per attempt;
    // silently dropping beyond the cap would skew fairness accounting.
    TAQOS_ASSERT(numCharges < static_cast<int>(charges.size()),
                 "charge log overflow for packet %llu",
                 static_cast<unsigned long long>(id));
    charges[static_cast<std::size_t>(numCharges++)] =
        ChargeRef{table, tableIdx};
}

void
NetPacket::beginAttempt(Cycle now)
{
    injectCycle = now;
    state = PacketState::InFlight;
    hopsThisAttempt = 0.0;
    blockedSince = kNoCycle;
    ++attempt;
    clearLocs();
    numXfers = 0;
    numCharges = 0;
}

NetPacket *
PacketPool::alloc()
{
    NetPacket *pkt;
    if (!free_.empty()) {
        pkt = free_.back();
        free_.pop_back();
        const PacketId keep = nextId_++;
        *pkt = NetPacket{};
        pkt->id = keep;
    } else {
        all_.push_back(std::make_unique<NetPacket>());
        pkt = all_.back().get();
        pkt->id = nextId_++;
    }
    ++live_;
    return pkt;
}

void
PacketPool::restoreShape(std::size_t count)
{
    TAQOS_ASSERT(all_.empty() && live_ == 0,
                 "restoreShape on a non-fresh pool");
    all_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        all_.push_back(std::make_unique<NetPacket>());
    live_ = count;
}

void
PacketPool::restoreFreeList(const std::vector<std::size_t> &freeIdx,
                            PacketId nextId)
{
    free_.clear();
    free_.reserve(freeIdx.size());
    for (const std::size_t i : freeIdx) {
        TAQOS_ASSERT(i < all_.size(), "free-list index out of range");
        free_.push_back(all_[i].get());
    }
    TAQOS_ASSERT(live_ >= free_.size(), "free list larger than pool");
    live_ = all_.size() - free_.size();
    nextId_ = nextId;
}

void
PacketPool::release(NetPacket *pkt)
{
    TAQOS_ASSERT(pkt->state == PacketState::Delivered ||
                     pkt->state == PacketState::Queued,
                 "releasing packet in non-terminal state");
    TAQOS_ASSERT(pkt->numLocs == 0, "releasing packet that still owns VCs");
    TAQOS_ASSERT(live_ > 0, "pool underflow");
    --live_;
    free_.push_back(pkt);
}

} // namespace taqos
