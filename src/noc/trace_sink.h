/// \file trace_sink.h
/// Observer interface for the flit-trace recording layer.
///
/// The engine, routers and ports already funnel every semantically
/// meaningful state change through the activity hooks (ports.h); a
/// TraceSink taps the same sites to emit an event stream an *independent*
/// checker (src/verify) can replay. The interface lives at the noc layer
/// so the router and port code can call it without depending on the sim
/// or verify layers; the concrete recorder is sim/trace_record.h.
///
/// Hooks that run inside a router tick carry the cycle explicitly (the
/// TickContext clock); port-level hooks fire synchronously inside those
/// and use the sink's notion of "now" (noteCycle, advanced once per
/// engine step and bumped by any explicit-cycle event, so out-of-band
/// calls — e.g. a test killing a packet between steps — stay ordered).
#pragma once

#include "common/types.h"

namespace taqos {

class InputPort;
struct NetPacket;

class TraceSink {
  public:
    virtual ~TraceSink();

    /// Announce a port before any event references it (identity, node,
    /// whether it is a terminal ejection buffer). Called once per port by
    /// Network::setTraceSink.
    virtual void registerPort(const InputPort &port, bool terminal) = 0;

    /// The engine entered cycle `now` (called at the top of every step).
    virtual void noteCycle(Cycle now) = 0;

    /// A source-queued packet won injection arbitration at `node`
    /// (attempt state — injectCycle, rateCompliant, frameTag — is final).
    virtual void inject(Cycle now, NodeId node, const NetPacket &pkt) = 0;

    /// VC `vc` of `port` was reserved for `pkt` (head/tail arrival known).
    virtual void vcReserved(const InputPort &port, int vc,
                            const NetPacket &pkt, Cycle headArrival,
                            Cycle tailArrival) = 0;

    /// The packet resident in (`port`, `vc`) started draining onward.
    virtual void vcDrained(const InputPort &port, int vc,
                           const NetPacket &pkt) = 0;

    /// (`port`, `vc`) released the packet it held (tail departed,
    /// delivery, or preemption teardown).
    virtual void vcFreed(const InputPort &port, int vc,
                         const NetPacket &pkt) = 0;

    /// `pkt` started a link transfer from the router at `from` into
    /// (`down`, `vc`) — the matching vcReserved precedes this event.
    virtual void hop(Cycle now, NodeId from, const InputPort &down, int vc,
                     const NetPacket &pkt) = 0;

    /// `pkt` was preempted (discarded) by the router at `node`.
    virtual void kill(Cycle now, NodeId node, const NetPacket &pkt) = 0;

    /// A NACK returned `pkt` to its source queue for retransmission.
    virtual void requeue(Cycle now, const NetPacket &pkt) = 0;

    /// `pkt`'s tail was ejected at (`port`, `vc`) — its destination
    /// terminal.
    virtual void deliver(Cycle now, const InputPort &port, int vc,
                         const NetPacket &pkt) = 0;

    /// The delivery ACK retired `pkt`'s window slot (end of life).
    virtual void retire(Cycle now, const NetPacket &pkt) = 0;

    /// `pkt` completed one journey segment at (`port`, `vc`) — a chip row
    /// reaching its column boundary, or an inter-chip gateway — and will
    /// be re-injected toward `newDst` with the attempt counter bumped.
    virtual void segment(Cycle now, const InputPort &port, int vc,
                         const NetPacket &pkt, NodeId newDst) = 0;
};

} // namespace taqos
