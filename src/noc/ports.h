/// \file ports.h
/// Router ports and link transfer machinery.
///
/// An OutputPort owns a physical channel. For mesh and DPS this is a
/// point-to-point segment (one drop); for MECS it is a point-to-multipoint
/// express channel with one drop per downstream node. Virtual cut-through
/// holds the channel for the whole packet, so at most one transfer is in
/// progress per output at a time.
///
/// An InputPort owns the VC storage at the receiving end. Several input
/// ports may share one crossbar input (MECS input arbiters, 4:1/3:1 row
/// sharing); the shared switch port is modelled by XbarGroup occupancy.
///
/// Activity tracking: every state change that can alter an arbitration
/// outcome flows through this layer — a VC reservation/release, an
/// injector enqueue/dequeue, a transfer start/completion, a window-slot
/// retire. Each hook maintains incremental occupancy counts on the port
/// and notifies the owning Router so the activity-driven engine re-arms
/// it (see router.h). Ports without an owner (terminal/handoff buffers,
/// standalone unit-test fixtures) still keep their occupancy counts,
/// which the engine uses to skip idle ejection scans.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "noc/packet.h"
#include "noc/vc.h"

namespace taqos {

class InputPort;
class Router;
class TraceSink;

/// The per-input-port counters the tick loop reads every cycle. Each port
/// carries one inline (standalone fixtures), and Network::packHotState
/// re-binds all ports of a fabric onto one contiguous node-ordered array.
struct PortHot {
    int occupied = 0;   ///< VCs currently not Free
    int queuedPkts = 0; ///< packets across the port's injector queues
    /// Bumped on every VC state transition (preemption-memo key).
    std::uint64_t mutEpoch = 0;
};

/// One traffic source (terminal or row input). The queue head is the only
/// injectable packet; `outstanding` enforces the PVC retransmission window.
/// All queue mutations go through the hook-aware methods so the owning
/// router's activity state stays consistent (the deque itself is exposed
/// read-only).
struct InjectorQueue {
    FlowId flow = kInvalidFlow;
    NodeId node = kInvalidNode;
    int outstanding = 0;  ///< packets in network / awaiting ACK
    int windowLimit = 16; ///< per-source outstanding-packet window

    /// Injection port this queue feeds (wired by Network::finalizeRouters;
    /// null for staging queues outside the fabric — hooks are no-ops).
    InputPort *port = nullptr;

    /// Position among the port's injectors (static enumeration identity
    /// for round-robin keys; set by Router::finalize).
    int slotIdx = -1;

    /// Output whose candidate list holds this queue's head-packet slot
    /// (-1 = queue empty). Managed by the owning Router.
    int headOut = -1;

    bool windowOpen() const { return outstanding < windowLimit; }

    const std::deque<NetPacket *> &queue() const { return q_; }

    /// Append a freshly generated (or handed-off) packet.
    void enqueue(NetPacket *pkt);
    /// Return a NACKed packet to the head of the queue (retransmission).
    void enqueueFront(NetPacket *pkt);
    /// Pop the head (it won injection arbitration, or is being restaged).
    NetPacket *dequeue();

    /// The retransmission window changed in the queue's favour (an ACK
    /// retired a slot): a head packet stalled on `windowOpen()` may now be
    /// injectable, so the owning router must re-arbitrate.
    void noteWindowChange();

    /// Restore: overwrite the queue contents without firing the port
    /// hooks (the restoring router recomputes queued-packet counts and
    /// re-adds the head slot afterwards). headOut stays -1.
    void restoreRaw(std::deque<NetPacket *> q, int outstandingCount)
    {
        q_ = std::move(q);
        outstanding = outstandingCount;
        headOut = -1;
    }

  private:
    std::deque<NetPacket *> q_;
};

/// A (possibly shared) crossbar input port: only one packet may stream
/// through it at a time.
class XbarGroup {
  public:
    bool freeAt(Cycle now) const { return now >= busyUntil_; }
    void occupy(Cycle now, int sizeFlits)
    {
        busyUntil_ = now + static_cast<Cycle>(sizeFlits);
    }

    /// Checkpoint access: a group busy into the future is live state.
    Cycle busyUntil() const { return busyUntil_; }
    void restoreBusyUntil(Cycle c) { busyUntil_ = c; }

  private:
    Cycle busyUntil_ = 0;
};

class InputPort {
  public:
    enum class Kind : std::uint8_t {
        Network,   ///< column/subnet channel input with VC buffers
        Injection, ///< terminal or shared row input (injector queues)
    };

    std::string name;
    NodeId node = kInvalidNode;
    Kind kind = Kind::Network;

    /// Router pipeline depth seen by packets entering through this port
    /// (cycles from head arrival/readiness to earliest first-flit-out).
    /// DPS intermediate (pass-through) inputs use 1; mesh/DPS source and
    /// destination ports use 2; MECS uses 3.
    int pipelineDelay = 2;

    /// Cycles before an upstream allocator sees a freed VC (credit return
    /// = wire span of the feeding channel).
    int creditDelay = 1;

    /// Index of the VC reserved for rate-compliant packets (-1 = none).
    int reservedVc = -1;

    /// Per-flow-queueing baseline: VCs grow on demand, so allocation never
    /// fails and preemption never triggers.
    bool unboundedVcs = false;

    /// DPS intermediate (pass-through) ports: no flow-state query — packets
    /// arbitrate with the priority computed at their source (PVC priority
    /// reuse).
    bool usesCarriedPrio = false;

    /// Shared crossbar input this port streams through (null = dedicated
    /// path, e.g. a DPS intermediate mux).
    XbarGroup *group = nullptr;

    /// Router whose arbitration this port feeds (set by addInputPort;
    /// null for terminal/handoff buffers owned by the engine).
    Router *owner = nullptr;

    /// Flit-trace recorder observing this port's VC transitions (null =
    /// not recording; wired by Network::setTraceSink).
    TraceSink *trace = nullptr;

    /// VC storage. Arena-backed once the network packs its hot state
    /// (growth under unbounded VCs then also draws from the arena); all
    /// cross-references into it are index-based, so relocation is safe.
    ArenaVec<VirtualChannel> vcs;

    /// Only for Kind::Injection: the sources multiplexed onto this port.
    std::vector<InjectorQueue *> injectors;

    /// Find an allocatable VC honouring the reserved-VC policy. Returns
    /// the VC index or -1. Non-compliant packets may not take the reserved
    /// VC; compliant packets try regular VCs first to keep the escape VC
    /// available.
    int findFreeVc(Cycle now, bool rateCompliant);

    /// Any VC allocatable for this compliance class? (used before paying
    /// the preemption cost)
    bool anyFreeVc(Cycle now, bool rateCompliant);

    int occupiedVcs() const;

    // --- incremental activity state -----------------------------------

    /// VCs currently not Free — maintained by the VirtualChannel hooks
    /// once attachVcs() has run, so the engine and the candidate scan can
    /// skip empty ports without touching the VC array.
    int occupied() const { return hot_->occupied; }

    /// Packets queued across this injection port's injector queues.
    int queuedPackets() const { return hot_->queuedPkts; }

    /// Re-home the hot counters onto `hot` (the network's contiguous
    /// per-port array), carrying the current values over.
    void bindHot(PortHot *hot) { hot_ = new (hot) PortHot(*hot_); }

    /// Point every VC of this port back at it (idempotent; called from
    /// Network::finalizeRouters; unbounded-VC growth self-attaches).
    void attachVcs();

    /// Recompute the hot counters from the VC and injector state
    /// (checkpoint restore rebuilds them after the raw overwrites that
    /// bypass the incremental hooks). mutEpoch restarts at zero: it only
    /// keys pure preemption-search memos, which restore also clears.
    void recountHot();

    /// Global enumeration base of this port's slots within its router's
    /// input-major candidate order (the round-robin key of VC/injector
    /// `k` is `enumBase + k + 1`; set by Router::finalize).
    std::uint32_t enumBase = 0;

    /// State-transition hooks (called by VirtualChannel / InjectorQueue).
    /// `headChanged` reports whether the queue's front packet — the only
    /// arbitration candidate — is a different packet afterwards. `freed`
    /// is the packet the VC held (its own pointer is already cleared).
    void onVcReserved(VirtualChannel &vc);
    void onVcFreed(VirtualChannel &vc, NetPacket *freed);
    void onVcDrained(VirtualChannel &vc);
    void onInjectorEnqueue(InjectorQueue &inj, bool headChanged);
    void onInjectorDequeue(InjectorQueue &inj);
    void onInjectorWindowChange(InjectorQueue &inj);

    /// Index of `vc` within this port's VC array.
    int vcIndex(const VirtualChannel &vc) const
    {
        return static_cast<int>(&vc - vcs.data());
    }

    /// Bumped on every VC state transition. The preemption victim search
    /// keys its "no victim here last time" memo on it (ports without an
    /// owning router — terminals, handoffs — included).
    std::uint64_t mutEpoch() const { return hot_->mutEpoch; }

  private:
    PortHot localHot_;
    PortHot *hot_ = &localHot_;
};

class OutputPort {
  public:
    /// One reachable downstream attach point of this channel.
    struct Drop {
        InputPort *down = nullptr;
        int wireDelay = 1;
        /// Mesh-equivalent hop count of this traversal (Sec. 5.3
        /// normalization: a MECS express span of d counts as d hops).
        double meshHops = 1.0;
    };

    /// The packet currently streaming through this output.
    struct Transfer {
        bool active = false;
        NetPacket *pkt = nullptr;
        int dropIdx = -1;
        int dstVc = -1;
        Cycle firstFlit = 0;  ///< cycle the head flit is on the wire
        Cycle tailDepart = 0; ///< cycle the tail flit is on the wire
        /// VC being drained at the sending router (port == nullptr when
        /// the packet entered from an injector queue).
        VcRef srcVc{};

        int flitsDeparted(Cycle now, int sizeFlits) const;
    };

    std::string name;
    NodeId node = kInvalidNode;
    std::vector<Drop> drops;

    /// Router this channel belongs to (set by addOutputPort; transfer
    /// start/completion keeps its active-transfer count in step).
    Router *owner = nullptr;

    /// Flow-state table this output charges/queries. Replicated mesh
    /// channels in the same direction form one logical output and share a
    /// table; every other output has its own (-1 until the builder
    /// assigns it).
    int tableIdx = -1;

    bool linkFree(Cycle now) const { return now >= nextStart_; }
    const Transfer &transfer() const { return xfer_; }

    /// Begin streaming `pkt` towards drop `dropIdx`, into VC `dstVc`.
    /// `srcVc` identifies the draining VC ({nullptr,-1} for injection).
    /// Caller has already reserved the downstream VC.
    void startTransfer(NetPacket *pkt, int dropIdx, int dstVc, VcRef srcVc,
                       Cycle now);

    /// Complete the transfer if its tail has departed: frees the source VC
    /// (credit visible after the source port's credit delay) and credits
    /// the packet with the hop traversal. Call once per cycle before
    /// arbitration.
    void tickCompletion(Cycle now);

    /// Abort the in-progress transfer because its packet was preempted.
    /// Returns the fraction of the hop that was wasted (flits already
    /// departed / packet size, in mesh-equivalent hops). The channel stays
    /// busy through its committed window.
    double cancelTransfer(Cycle now);

    /// Checkpoint access: channel-hold horizon plus the verbatim
    /// in-progress transfer. Restore bypasses the owner hooks — the
    /// restoring router recounts active transfers itself.
    Cycle nextStart() const { return nextStart_; }
    void restoreRaw(Cycle nextStart, const Transfer &xfer)
    {
        nextStart_ = nextStart;
        xfer_ = xfer;
    }

  private:
    Cycle nextStart_ = 0;
    Transfer xfer_{};
};

} // namespace taqos
