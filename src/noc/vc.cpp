#include "noc/vc.h"

#include "noc/ports.h"

namespace taqos {

void
VirtualChannel::reserve(NetPacket *pkt, Cycle headArrival, Cycle tailArrival)
{
    TAQOS_ASSERT(state_ == State::Free, "reserving a non-free VC");
    TAQOS_ASSERT(pkt != nullptr, "reserving VC for null packet");
    state_ = State::Reserved;
    pkt_ = pkt;
    headArrival_ = headArrival;
    tailArrival_ = tailArrival;
    if (port_ != nullptr)
        port_->onVcReserved(*this);
}

void
VirtualChannel::startDrain()
{
    TAQOS_ASSERT(state_ == State::Reserved, "draining a VC that is not held");
    state_ = State::Draining;
    if (port_ != nullptr)
        port_->onVcDrained(*this);
}

void
VirtualChannel::free(Cycle visibleAt)
{
    TAQOS_ASSERT(state_ != State::Free, "double free of VC");
    NetPacket *const freed = pkt_;
    state_ = State::Free;
    pkt_ = nullptr;
    headArrival_ = kNoCycle;
    tailArrival_ = kNoCycle;
    freeVisibleAt_ = visibleAt;
    if (port_ != nullptr)
        port_->onVcFreed(*this, freed);
}

int
VirtualChannel::flitsPresent(Cycle now) const
{
    if (state_ == State::Free || pkt_ == nullptr || now < headArrival_)
        return 0;
    const Cycle last = now < tailArrival_ ? now : tailArrival_;
    return static_cast<int>(last - headArrival_ + 1);
}

} // namespace taqos
