#include "noc/ports.h"

#include "noc/trace_sink.h"
#include "router/router.h"

namespace taqos {

void
InjectorQueue::enqueue(NetPacket *pkt)
{
    const bool headChanged = q_.empty();
    q_.push_back(pkt);
    if (port != nullptr)
        port->onInjectorEnqueue(*this, headChanged);
}

void
InjectorQueue::enqueueFront(NetPacket *pkt)
{
    q_.push_front(pkt);
    if (port != nullptr)
        port->onInjectorEnqueue(*this, /*headChanged=*/true);
}

NetPacket *
InjectorQueue::dequeue()
{
    TAQOS_ASSERT(!q_.empty(), "dequeue from empty injector queue");
    NetPacket *pkt = q_.front();
    q_.pop_front();
    if (port != nullptr)
        port->onInjectorDequeue(*this);
    return pkt;
}

void
InjectorQueue::noteWindowChange()
{
    if (port != nullptr)
        port->onInjectorWindowChange(*this);
}

void
InputPort::attachVcs()
{
    for (auto &vc : vcs)
        vc.setPort(this);
}

void
InputPort::recountHot()
{
    int occupied = 0;
    for (const auto &vc : vcs) {
        if (vc.state() != VirtualChannel::State::Free)
            ++occupied;
    }
    int queued = 0;
    for (const InjectorQueue *inj : injectors)
        queued += static_cast<int>(inj->queue().size());
    hot_->occupied = occupied;
    hot_->queuedPkts = queued;
    hot_->mutEpoch = 0;
}

void
InputPort::onVcReserved(VirtualChannel &vc)
{
    ++hot_->occupied;
    ++hot_->mutEpoch;
    if (trace != nullptr) {
        trace->vcReserved(*this, vcIndex(vc), *vc.packet(),
                          vc.headArrival(), vc.tailArrival());
    }
    if (owner != nullptr)
        owner->noteVcReserved(this, vcIndex(vc));
}

void
InputPort::onVcFreed(VirtualChannel &vc, NetPacket *freed)
{
    --hot_->occupied;
    ++hot_->mutEpoch;
    TAQOS_ASSERT(hot_->occupied >= 0, "occupancy underflow on %s",
                 name.c_str());
    if (trace != nullptr && freed != nullptr)
        trace->vcFreed(*this, vcIndex(vc), *freed);
    if (owner != nullptr)
        owner->noteVcFreed(this, vc);
}

void
InputPort::onVcDrained(VirtualChannel &vc)
{
    ++hot_->mutEpoch;
    if (trace != nullptr)
        trace->vcDrained(*this, vcIndex(vc), *vc.packet());
    // Still occupied (the packet stays resident until its tail departs),
    // but no longer an arbitration candidate here.
    if (owner != nullptr)
        owner->noteVcDrained(this, vc);
}

void
InputPort::onInjectorEnqueue(InjectorQueue &inj, bool headChanged)
{
    ++hot_->queuedPkts;
    if (owner != nullptr)
        owner->noteInjectorEnqueue(inj, headChanged);
}

void
InputPort::onInjectorDequeue(InjectorQueue &inj)
{
    --hot_->queuedPkts;
    TAQOS_ASSERT(hot_->queuedPkts >= 0, "queued-packet underflow on %s",
                 name.c_str());
    if (owner != nullptr)
        owner->noteInjectorDequeue(inj);
}

void
InputPort::onInjectorWindowChange(InjectorQueue &inj)
{
    if (owner != nullptr)
        owner->noteInjectorWindowChange(inj);
}

int
InputPort::findFreeVc(Cycle now, bool rateCompliant)
{
    // Regular VCs first; the reserved VC is the compliant traffic's escape
    // path and is spent last.
    for (int i = 0; i < static_cast<int>(vcs.size()); ++i) {
        if (i == reservedVc)
            continue;
        if (vcs[static_cast<std::size_t>(i)].allocatable(now))
            return i;
    }
    if (rateCompliant && reservedVc >= 0 &&
        vcs[static_cast<std::size_t>(reservedVc)].allocatable(now)) {
        return reservedVc;
    }
    if (unboundedVcs) {
        // Per-flow queueing baseline: conjure a fresh VC. The credit is
        // immediately visible; the baseline models per-flow buffers deep
        // enough to never block.
        vcs.emplace_back();
        vcs.back().setPort(this);
        return static_cast<int>(vcs.size()) - 1;
    }
    return -1;
}

bool
InputPort::anyFreeVc(Cycle now, bool rateCompliant)
{
    return findFreeVc(now, rateCompliant) >= 0 || unboundedVcs;
}

int
InputPort::occupiedVcs() const
{
    int n = 0;
    for (const auto &vc : vcs)
        n += vc.state() != VirtualChannel::State::Free;
    return n;
}

int
OutputPort::Transfer::flitsDeparted(Cycle now, int sizeFlits) const
{
    if (!active || now < firstFlit)
        return 0;
    const Cycle last = now < tailDepart ? now : tailDepart;
    const int flits = static_cast<int>(last - firstFlit + 1);
    return flits > sizeFlits ? sizeFlits : flits;
}

void
OutputPort::startTransfer(NetPacket *pkt, int dropIdx, int dstVc, VcRef srcVc,
                          Cycle now)
{
    TAQOS_ASSERT(!xfer_.active, "output %s already streaming", name.c_str());
    TAQOS_ASSERT(linkFree(now), "output %s link busy", name.c_str());
    TAQOS_ASSERT(dropIdx >= 0 && dropIdx < static_cast<int>(drops.size()),
                 "bad drop index %d on %s", dropIdx, name.c_str());

    xfer_.active = true;
    xfer_.pkt = pkt;
    xfer_.dropIdx = dropIdx;
    xfer_.dstVc = dstVc;
    xfer_.firstFlit = now + 1;
    xfer_.tailDepart = now + static_cast<Cycle>(pkt->sizeFlits);
    xfer_.srcVc = srcVc;
    nextStart_ = now + static_cast<Cycle>(pkt->sizeFlits);
    pkt->addXfer(this);
    if (owner != nullptr)
        owner->noteXferStarted(xfer_.tailDepart);

    if (srcVc.port != nullptr)
        srcVc.port->vcs[static_cast<std::size_t>(srcVc.vc)].startDrain();
}

void
OutputPort::tickCompletion(Cycle now)
{
    if (!xfer_.active || now < xfer_.tailDepart)
        return;

    NetPacket *pkt = xfer_.pkt;
    pkt->removeXfer(this);
    pkt->hopsThisAttempt +=
        drops[static_cast<std::size_t>(xfer_.dropIdx)].meshHops;

    if (xfer_.srcVc.port != nullptr) {
        InputPort *sp = xfer_.srcVc.port;
        sp->vcs[static_cast<std::size_t>(xfer_.srcVc.vc)].free(
            now + static_cast<Cycle>(sp->creditDelay));
        pkt->removeLoc(sp, xfer_.srcVc.vc);
    }
    xfer_.active = false;
    xfer_.pkt = nullptr;
    if (owner != nullptr)
        owner->noteXferEnded();
}

double
OutputPort::cancelTransfer(Cycle now)
{
    if (!xfer_.active)
        return 0.0;

    NetPacket *pkt = xfer_.pkt;
    pkt->removeXfer(this);
    const double frac =
        static_cast<double>(xfer_.flitsDeparted(now, pkt->sizeFlits)) /
        static_cast<double>(pkt->sizeFlits);
    const double wasted =
        frac * drops[static_cast<std::size_t>(xfer_.dropIdx)].meshHops;

    // The source VC (if any) is freed by the preemption chain kill, which
    // owns the packet's location list; here we only tear down the channel
    // state. Unsent flit slots are released so the preempting packet can
    // take the link next cycle.
    xfer_.active = false;
    xfer_.pkt = nullptr;
    if (nextStart_ > now + 1)
        nextStart_ = now + 1;
    if (owner != nullptr)
        owner->noteXferEnded();
    return wasted;
}

} // namespace taqos
