#include "verify/checker.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_map>

namespace taqos {

namespace {

/// Adjacency family of a topology, derived from its recorded name only
/// (the checker re-implements the routing contract instead of calling
/// the builders).
enum class TopoFamily {
    Neighbor, ///< mesh xN / DPS: hops move one node, strictly toward dst
    Direct,   ///< MECS / flattened butterfly: one network hop to dst
    Unknown,  ///< adjacency unknown: only chain continuity is checked
};

TopoFamily
familyOf(const std::string &topology)
{
    if (topology.rfind("mesh", 0) == 0 || topology == "dps")
        return TopoFamily::Neighbor;
    if (topology == "mecs" || topology == "fbfly")
        return TopoFamily::Direct;
    return TopoFamily::Unknown;
}

/// Reconstructed per-packet state.
enum class PktPhase {
    InFlight,
    Dropped,   ///< preempted, awaiting retransmission
    Staged,    ///< completed a segment, awaiting re-injection (handoff)
    Delivered,
    Retired,
};

struct PktState {
    FlowId flow = kInvalidFlow;
    std::int32_t src = -1;
    std::int32_t dst = -1;
    std::int32_t size = 0;
    std::int32_t attempt = 0;
    Cycle gen = 0;
    std::uint64_t frameTag = kTraceNoTag;
    PktPhase phase = PktPhase::InFlight;
    std::int32_t curNode = -1;
    Cycle lastInject = 0;
    Cycle lastTerm = 0; ///< kill/deliver cycle of the previous attempt
};

/// One transmission attempt of a flow (PVC service reconstruction).
struct Attempt {
    Cycle inject = 0;
    Cycle term = kNoCycle; ///< kill or delivery cycle; kNoCycle = live
    std::int32_t size = 0;
};

struct VcHold {
    PacketId pkt = kInvalidPacket;
    bool draining = false;
};

class Checker {
  public:
    Checker(const FlitTrace &trace, const CheckOptions &opts)
        : trace_(trace), meta_(trace.meta), opts_(opts),
          family_(familyOf(trace.meta.topology))
    {
    }

    CheckReport run();

  private:
    void add(const std::string &cls, const TraceEvent &e,
             const std::string &message)
    {
        if (report_.violations.size() >= opts_.maxViolations)
            return;
        Violation v;
        v.cls = cls;
        v.cycle = e.cycle;
        v.pkt = e.pkt;
        v.node = e.node;
        v.port = e.port;
        v.vc = e.vc;
        v.message = message;
        report_.violations.push_back(std::move(v));
    }

    void addEnd(const std::string &cls, PacketId pkt,
                const std::string &message)
    {
        if (report_.violations.size() >= opts_.maxViolations)
            return;
        Violation v;
        v.cls = cls;
        v.cycle = meta_.endCycle;
        v.pkt = pkt;
        v.message = message;
        report_.violations.push_back(std::move(v));
    }

    bool portValid(std::int32_t id) const
    {
        return id >= 0 && static_cast<std::size_t>(id) < trace_.ports.size();
    }
    const TracePortInfo &port(std::int32_t id) const
    {
        return trace_.ports[static_cast<std::size_t>(id)];
    }

    void onInject(const TraceEvent &e);
    void onVcReserve(const TraceEvent &e);
    void onVcDrain(const TraceEvent &e);
    void onVcFree(const TraceEvent &e);
    void onHop(const TraceEvent &e);
    void onKill(const TraceEvent &e);
    void onRequeue(const TraceEvent &e);
    void onDeliver(const TraceEvent &e);
    void onRetire(const TraceEvent &e);
    void onSegment(const TraceEvent &e);
    void finishChecks();

    // --- QoS audits ---
    void auditGsfInject(const TraceEvent &e, PktState &p);
    void auditPvcKill(const TraceEvent &e, const PktState &p);
    void auditWrr();

    /// Conservative upper bound on any router's per-flow in-frame
    /// bandwidth counter for `flow` at time `t`: the flits of every
    /// attempt injected by `t` that was still live at (or after) the
    /// frame boundary preceding `t`. Charges earlier than the boundary
    /// were flushed; refunded (killed-before-boundary) attempts are out.
    std::uint64_t aliveFlits(FlowId flow, Cycle t) const;

    std::uint64_t quotaCap(FlowId flow) const
    {
        const std::uint64_t sum = meta_.sumWeights();
        if (sum == 0)
            return 0;
        const std::uint64_t quota =
            meta_.frameLen * meta_.weightOf(flow) / sum;
        return static_cast<std::uint64_t>(
            meta_.quotaProtect * static_cast<double>(quota));
    }

    std::uint64_t gsfBudget(FlowId flow) const
    {
        const std::uint64_t sum = meta_.sumWeights();
        if (sum == 0)
            return 1;
        return std::max<std::uint64_t>(
            1, meta_.gsfFrameLen * meta_.weightOf(flow) / sum);
    }

    const FlitTrace &trace_;
    const TraceMeta &meta_;
    CheckOptions opts_;
    TopoFamily family_;
    CheckReport report_;

    std::unordered_map<PacketId, PktState> pkts_;
    /// (port, vc) -> current holder. Keyed per port; VC indices are
    /// sparse-safe (per-flow queueing grows VCs on demand).
    std::vector<std::map<std::int32_t, VcHold>> vcs_;

    // PVC service reconstruction.
    std::vector<std::vector<Attempt>> attempts_; ///< per flow
    std::unordered_map<PacketId, std::size_t> liveAttempt_;

    // GSF reconstruction.
    std::unordered_map<std::uint64_t, std::uint64_t> gsfCum_;
    std::vector<std::uint64_t> gsfLastTag_;
    std::map<std::uint64_t, std::uint64_t> gsfInFlight_; ///< tag -> count
    bool gsfOn_ = false;
    bool pvcOn_ = false;
    bool wrrOn_ = false;

    // WRR reconstruction.
    std::vector<std::vector<std::pair<Cycle, Cycle>>> backlog_;
    std::vector<std::uint64_t> wrrFlits_;

    std::uint64_t gsfKey(FlowId flow, std::uint64_t tag) const
    {
        return (static_cast<std::uint64_t>(flow) << 40) ^ tag;
    }
};

void
Checker::onInject(const TraceEvent &e)
{
    if (e.flow < 0 || (meta_.flows > 0 && e.flow >= meta_.flows)) {
        add("conservation", e, "injection with out-of-range flow id");
        return;
    }
    auto it = pkts_.find(e.pkt);
    if (it == pkts_.end()) {
        if (e.attempt != 1)
            add("conservation", e, "first injection is not attempt 1");
        PktState p;
        p.flow = e.flow;
        p.src = e.src;
        p.dst = e.dst;
        p.size = e.size;
        p.attempt = e.attempt;
        p.gen = e.gen;
        p.frameTag = e.frameTag;
        p.phase = PktPhase::InFlight;
        p.curNode = e.node;
        p.lastInject = e.cycle;
        if (wrrOn_)
            backlog_[static_cast<std::size_t>(e.flow)].emplace_back(
                e.gen, e.cycle);
        it = pkts_.emplace(e.pkt, std::move(p)).first;
    } else {
        PktState &p = it->second;
        if (p.phase == PktPhase::InFlight) {
            add("conservation", e, "re-injected while still in flight");
        } else if (p.phase == PktPhase::Delivered ||
                   p.phase == PktPhase::Retired) {
            add("conservation", e,
                "re-injected after delivery (duplication)");
        }
        if (p.flow != e.flow || p.src != e.src || p.dst != e.dst ||
            p.size != e.size) {
            add("conservation", e,
                "retransmission changed the packet's identity");
        }
        if (e.attempt != p.attempt + 1)
            add("conservation", e, "attempt number did not increment");
        if (wrrOn_ && (p.phase == PktPhase::Dropped ||
                       p.phase == PktPhase::Staged)) {
            backlog_[static_cast<std::size_t>(p.flow)].emplace_back(
                p.lastTerm, e.cycle);
        }
        p.attempt = e.attempt;
        p.frameTag = e.frameTag;
        p.phase = PktPhase::InFlight;
        p.curNode = e.node;
        p.lastInject = e.cycle;
    }
    PktState &p = it->second;

    if (pvcOn_) {
        auto &list = attempts_[static_cast<std::size_t>(p.flow)];
        liveAttempt_[e.pkt] = list.size();
        list.push_back(Attempt{e.cycle, kNoCycle, e.size});
    }
    if (gsfOn_ && opts_.qosAudit && e.attempt == 1)
        auditGsfInject(e, p);
}

void
Checker::auditGsfInject(const TraceEvent &e, PktState &p)
{
    if (e.frameTag == kTraceNoTag)
        return; // never admitted by the gate — not a frame-budget subject
    const std::uint64_t budget = gsfBudget(p.flow);
    std::uint64_t &cum = gsfCum_[gsfKey(p.flow, e.frameTag)];
    if (cum >= budget) {
        std::ostringstream os;
        os << "flow " << p.flow << " admitted into frame " << e.frameTag
           << " with " << cum << " flits already charged (budget "
           << budget << ")";
        add("gsf-frame", e, os.str());
    }
    cum += static_cast<std::uint64_t>(e.size);

    std::uint64_t &last = gsfLastTag_[static_cast<std::size_t>(p.flow)];
    if (last != kTraceNoTag && e.frameTag < last)
        add("gsf-frame", e, "frame tag regressed for this flow");
    if (last == kTraceNoTag || e.frameTag > last)
        last = e.frameTag;

    if (!gsfInFlight_.empty() && meta_.gsfFrames > 0) {
        const std::uint64_t oldest = gsfInFlight_.begin()->first;
        if (e.frameTag > oldest &&
            e.frameTag - oldest >=
                static_cast<std::uint64_t>(meta_.gsfFrames)) {
            std::ostringstream os;
            os << "frame " << e.frameTag
               << " admitted while frame " << oldest
               << " is still in flight (window " << meta_.gsfFrames << ")";
            add("gsf-frame", e, os.str());
        }
    }
    ++gsfInFlight_[e.frameTag];
}

void
Checker::onVcReserve(const TraceEvent &e)
{
    if (!portValid(e.port)) {
        add("route", e, "reservation on unknown port");
        return;
    }
    auto &hold = vcs_[static_cast<std::size_t>(e.port)];
    auto it = hold.find(e.vc);
    if (it != hold.end()) {
        std::ostringstream os;
        os << "VC reserved while holding packet " << it->second.pkt;
        add("vc-exclusivity", e, os.str());
    }
    hold[e.vc] = VcHold{e.pkt, false};

    auto pit = pkts_.find(e.pkt);
    if (pit == pkts_.end()) {
        add("conservation", e, "VC reserved for a never-injected packet");
        return;
    }
    if (pit->second.phase != PktPhase::InFlight)
        add("conservation", e, "VC reserved for a packet not in flight");
    if (e.tail < e.head ||
        e.tail - e.head + 1 != static_cast<Cycle>(pit->second.size)) {
        add("conservation", e,
            "reservation span does not match the packet's flit count");
    }
}

void
Checker::onVcDrain(const TraceEvent &e)
{
    if (!portValid(e.port)) {
        add("route", e, "drain on unknown port");
        return;
    }
    auto &hold = vcs_[static_cast<std::size_t>(e.port)];
    auto it = hold.find(e.vc);
    if (it == hold.end() || it->second.pkt != e.pkt) {
        add("vc-exclusivity", e, "drain of a VC not held by this packet");
        return;
    }
    if (it->second.draining)
        add("vc-exclusivity", e, "VC drained twice");
    it->second.draining = true;
}

void
Checker::onVcFree(const TraceEvent &e)
{
    if (!portValid(e.port)) {
        add("route", e, "free of unknown port");
        return;
    }
    auto &hold = vcs_[static_cast<std::size_t>(e.port)];
    auto it = hold.find(e.vc);
    if (it == hold.end() || it->second.pkt != e.pkt) {
        add("vc-exclusivity", e, "free of a VC not held by this packet");
        return;
    }
    hold.erase(it);
}

void
Checker::onHop(const TraceEvent &e)
{
    if (!portValid(e.port)) {
        add("route", e, "hop into unknown port");
        return;
    }
    const TracePortInfo &down = port(e.port);
    auto pit = pkts_.find(e.pkt);
    if (pit == pkts_.end()) {
        add("conservation", e, "hop by a never-injected packet");
        return;
    }
    PktState &p = pit->second;
    if (p.phase != PktPhase::InFlight)
        add("conservation", e, "hop by a packet not in flight");

    auto &hold = vcs_[static_cast<std::size_t>(e.port)];
    auto hit = hold.find(e.vc);
    if (hit == hold.end() || hit->second.pkt != e.pkt)
        add("vc-exclusivity", e, "hop into a VC not reserved for it");

    if (p.curNode != e.node) {
        std::ostringstream os;
        os << "hop departs node " << e.node << " but the packet is at node "
           << p.curNode;
        add("route", e, os.str());
    }

    if (down.terminal) {
        if (down.node != p.dst) {
            std::ostringstream os;
            os << "ejected at terminal of node " << down.node
               << " but destination is " << p.dst;
            add("route", e, os.str());
        }
    } else {
        switch (family_) {
          case TopoFamily::Neighbor: {
            const std::int32_t step = std::abs(down.node - e.node);
            const std::int32_t before = std::abs(p.dst - e.node);
            const std::int32_t after = std::abs(p.dst - down.node);
            if (step != 1 || after >= before) {
                std::ostringstream os;
                os << "illegal hop " << e.node << " -> " << down.node
                   << " toward destination " << p.dst;
                add("route", e, os.str());
            }
            break;
          }
          case TopoFamily::Direct:
            if (down.node != p.dst) {
                std::ostringstream os;
                os << "express hop lands at node " << down.node
                   << " instead of destination " << p.dst;
                add("route", e, os.str());
            }
            break;
          case TopoFamily::Unknown:
            break;
        }
    }
    p.curNode = down.node;
}

void
Checker::onKill(const TraceEvent &e)
{
    auto pit = pkts_.find(e.pkt);
    if (pit == pkts_.end()) {
        add("conservation", e, "kill of a never-injected packet");
        return;
    }
    PktState &p = pit->second;
    if (p.phase != PktPhase::InFlight) {
        add("conservation", e, "kill of a packet not in flight");
        return;
    }
    if (pvcOn_ && opts_.qosAudit)
        auditPvcKill(e, p);
    p.phase = PktPhase::Dropped;
    p.lastTerm = e.cycle;
    if (pvcOn_) {
        auto ait = liveAttempt_.find(e.pkt);
        if (ait != liveAttempt_.end()) {
            attempts_[static_cast<std::size_t>(p.flow)][ait->second].term =
                e.cycle;
            liveAttempt_.erase(ait);
        }
    }
}

std::uint64_t
Checker::aliveFlits(FlowId flow, Cycle t) const
{
    const Cycle frameStart =
        meta_.frameLen == 0 ? 0 : t - t % meta_.frameLen;
    std::uint64_t flits = 0;
    for (const Attempt &a : attempts_[static_cast<std::size_t>(flow)]) {
        if (a.inject > t)
            break; // attempts are in injection order
        if (a.term != kNoCycle && a.term < frameStart)
            continue;
        flits += static_cast<std::uint64_t>(a.size);
    }
    return flits;
}

void
Checker::auditPvcKill(const TraceEvent &e, const PktState &p)
{
    if (!meta_.quotaEnabled || meta_.frameLen == 0)
        return;
    const std::uint64_t cap = quotaCap(p.flow);
    // Sound two-sided bound: the engine may judge protection from a local
    // bandwidth counter at the killing router (state at the kill cycle)
    // or from the compliance stamp computed at the victim's injection.
    // Both counters are bounded above by aliveFlits at their respective
    // instants, so if BOTH bounds are inside the cap, every legal path
    // saw a protected flow and the kill violated the reserved quota.
    const std::uint64_t atKill = aliveFlits(p.flow, e.cycle);
    const std::uint64_t atInject = aliveFlits(p.flow, p.lastInject);
    if (atKill <= cap && atInject <= cap) {
        std::ostringstream os;
        os << "flow " << p.flow << " preempted inside its reserved quota ("
           << atKill << " flits alive this frame, protected cap " << cap
           << ")";
        add("pvc-quota", e, os.str());
    }
}

void
Checker::onRequeue(const TraceEvent &e)
{
    auto pit = pkts_.find(e.pkt);
    if (pit == pkts_.end()) {
        add("conservation", e, "requeue of a never-injected packet");
        return;
    }
    if (pit->second.phase != PktPhase::Dropped)
        add("conservation", e, "requeue of a packet that was not preempted");
}

void
Checker::onDeliver(const TraceEvent &e)
{
    if (!portValid(e.port)) {
        add("route", e, "delivery at unknown port");
        return;
    }
    const TracePortInfo &at = port(e.port);
    auto pit = pkts_.find(e.pkt);
    if (pit == pkts_.end()) {
        add("conservation", e, "delivery of a never-injected packet");
        return;
    }
    PktState &p = pit->second;
    if (p.phase == PktPhase::Delivered || p.phase == PktPhase::Retired) {
        add("conservation", e, "packet delivered twice (duplication)");
        return;
    }
    if (p.phase != PktPhase::InFlight)
        add("conservation", e, "delivery of a packet not in flight");
    if (!at.terminal)
        add("route", e, "delivery at a non-terminal port");
    else if (at.node != p.dst) {
        std::ostringstream os;
        os << "delivered at node " << at.node << " but destination is "
           << p.dst;
        add("route", e, os.str());
    }
    auto &hold = vcs_[static_cast<std::size_t>(e.port)];
    auto hit = hold.find(e.vc);
    if (hit == hold.end() || hit->second.pkt != e.pkt)
        add("vc-exclusivity", e, "delivery from a VC it does not hold");

    p.phase = PktPhase::Delivered;
    p.lastTerm = e.cycle;
    if (pvcOn_) {
        auto ait = liveAttempt_.find(e.pkt);
        if (ait != liveAttempt_.end()) {
            attempts_[static_cast<std::size_t>(p.flow)][ait->second].term =
                e.cycle;
            liveAttempt_.erase(ait);
        }
    }
    if (gsfOn_ && p.frameTag != kTraceNoTag) {
        auto git = gsfInFlight_.find(p.frameTag);
        if (git != gsfInFlight_.end() && --git->second == 0)
            gsfInFlight_.erase(git);
    }
    if (opts_.qosAudit && meta_.maxAge > 0 && e.cycle > p.gen &&
        e.cycle - p.gen > meta_.maxAge) {
        std::ostringstream os;
        os << "delivered " << e.cycle - p.gen
           << " cycles after generation (bound " << meta_.maxAge << ")";
        add("age-bound", e, os.str());
    }
    if (wrrOn_ && e.cycle >= meta_.measureStart &&
        e.cycle < meta_.measureEnd) {
        wrrFlits_[static_cast<std::size_t>(p.flow)] +=
            static_cast<std::uint64_t>(p.size);
    }
}

void
Checker::onRetire(const TraceEvent &e)
{
    auto pit = pkts_.find(e.pkt);
    if (pit == pkts_.end()) {
        add("conservation", e, "retirement of a never-injected packet");
        return;
    }
    if (pit->second.phase != PktPhase::Delivered)
        add("conservation", e, "retirement of an undelivered packet");
    pit->second.phase = PktPhase::Retired;
}

void
Checker::onSegment(const TraceEvent &e)
{
    if (!portValid(e.port)) {
        add("route", e, "segment handoff at unknown port");
        return;
    }
    const TracePortInfo &at = port(e.port);
    auto pit = pkts_.find(e.pkt);
    if (pit == pkts_.end()) {
        add("conservation", e, "segment handoff of a never-injected packet");
        return;
    }
    PktState &p = pit->second;
    if (p.phase != PktPhase::InFlight) {
        add("conservation", e, "segment handoff of a packet not in flight");
        return;
    }
    if (at.terminal)
        add("route", e, "segment handoff at a terminal ejection port");
    if (e.dst == p.dst) {
        add("route", e,
            "segment handoff without a destination change (no-op segment)");
    }
    // The segment boundary ends this attempt's service; the packet sits
    // in a source queue until it is re-injected toward the new
    // destination (attempt + 1).
    p.phase = PktPhase::Staged;
    p.lastTerm = e.cycle;
    p.dst = e.dst;
    p.curNode = at.node;
    if (pvcOn_) {
        auto ait = liveAttempt_.find(e.pkt);
        if (ait != liveAttempt_.end()) {
            attempts_[static_cast<std::size_t>(p.flow)][ait->second].term =
                e.cycle;
            liveAttempt_.erase(ait);
        }
    }
    if (gsfOn_ && p.frameTag != kTraceNoTag) {
        auto git = gsfInFlight_.find(p.frameTag);
        if (git != gsfInFlight_.end() && --git->second == 0)
            gsfInFlight_.erase(git);
    }
}

void
Checker::auditWrr()
{
    if (meta_.measureEnd <= meta_.measureStart)
        return;

    // Flows whose source queues were provably non-empty across the whole
    // measurement window (their queued intervals, reconstructed from
    // generation/injection/requeue times, cover it).
    std::vector<FlowId> backlogged;
    for (FlowId f = 0; f < meta_.flows; ++f) {
        auto ivals = backlog_[static_cast<std::size_t>(f)];
        std::sort(ivals.begin(), ivals.end());
        Cycle covered = meta_.measureStart;
        for (const auto &[b, e] : ivals) {
            if (b > covered)
                break;
            covered = std::max(covered, e);
            if (covered >= meta_.measureEnd)
                break;
        }
        if (covered >= meta_.measureEnd)
            backlogged.push_back(f);
    }
    if (backlogged.size() < 2)
        return; // shares are only meaningful under contention

    std::uint64_t total = 0;
    std::uint64_t sumW = 0;
    for (FlowId f : backlogged) {
        total += wrrFlits_[static_cast<std::size_t>(f)];
        sumW += meta_.weightOf(f);
    }
    if (total == 0 || sumW == 0)
        return;
    for (FlowId f : backlogged) {
        const double expect = static_cast<double>(total) *
                              static_cast<double>(meta_.weightOf(f)) /
                              static_cast<double>(sumW);
        if (expect < 16.0)
            continue; // below statistical significance
        const double got =
            static_cast<double>(wrrFlits_[static_cast<std::size_t>(f)]);
        if (got < (1.0 - meta_.wrrTol) * expect) {
            std::ostringstream os;
            os << "backlogged flow " << f << " delivered " << got
               << " flits in the measurement window, expected at least "
               << (1.0 - meta_.wrrTol) * expect << " (weight share "
               << expect << ")";
            Violation v;
            v.cls = "wrr-weight";
            v.cycle = meta_.measureEnd;
            v.message = os.str();
            if (report_.violations.size() < opts_.maxViolations)
                report_.violations.push_back(std::move(v));
        }
    }
}

void
Checker::finishChecks()
{
    if (meta_.drained) {
        for (const auto &[id, p] : pkts_) {
            if (p.phase == PktPhase::InFlight ||
                p.phase == PktPhase::Dropped ||
                p.phase == PktPhase::Staged) {
                addEnd("conservation", id,
                       "run claims to have drained but this packet was "
                       "injected and never delivered (lost)");
            }
        }
        for (std::size_t port = 0; port < vcs_.size(); ++port) {
            if (!vcs_[port].empty()) {
                addEnd("conservation", vcs_[port].begin()->second.pkt,
                       "VC still occupied at the end of a drained run");
            }
        }
    }
    if (opts_.qosAudit && meta_.maxAge > 0) {
        for (const auto &[id, p] : pkts_) {
            if (p.phase == PktPhase::Delivered ||
                p.phase == PktPhase::Retired) {
                continue;
            }
            if (meta_.endCycle > p.gen &&
                meta_.endCycle - p.gen > meta_.maxAge) {
                addEnd("age-bound", id,
                       "packet still undelivered past the worst-case age "
                       "bound (starvation)");
            }
        }
    }
    if (opts_.qosAudit && wrrOn_)
        auditWrr();
}

CheckReport
Checker::run()
{
    vcs_.resize(trace_.ports.size());
    const std::size_t flows =
        meta_.flows > 0 ? static_cast<std::size_t>(meta_.flows) : 0;
    pvcOn_ = meta_.mode == "pvc" && flows > 0;
    gsfOn_ = meta_.mode == "gsf" && flows > 0 && meta_.gsfFrameLen > 0;
    wrrOn_ = opts_.qosAudit && meta_.mode == "wrr" && flows > 0;
    if (pvcOn_)
        attempts_.resize(flows);
    if (gsfOn_)
        gsfLastTag_.assign(flows, kTraceNoTag);
    if (wrrOn_) {
        backlog_.resize(flows);
        wrrFlits_.assign(flows, 0);
    }

    // Port-table sanity: ids must match their position (the recorder
    // assigns them densely; a corrupt header must not crash the replay).
    for (std::size_t i = 0; i < trace_.ports.size(); ++i) {
        if (trace_.ports[i].id != static_cast<std::int32_t>(i)) {
            Violation v;
            v.cls = "route";
            v.port = trace_.ports[i].id;
            v.message = "port table ids are not dense/ordered";
            report_.violations.push_back(std::move(v));
            return report_;
        }
    }

    Cycle last = 0;
    for (const TraceEvent &e : trace_.events) {
        ++report_.eventsChecked;
        if (e.cycle < last) {
            std::ostringstream os;
            os << "event cycle went backwards (" << last << " -> "
               << e.cycle << ")";
            add("timestamp", e, os.str());
        } else {
            last = e.cycle;
        }
        switch (e.kind) {
          case TraceEventKind::Inject: onInject(e); break;
          case TraceEventKind::VcReserve: onVcReserve(e); break;
          case TraceEventKind::VcDrain: onVcDrain(e); break;
          case TraceEventKind::VcFree: onVcFree(e); break;
          case TraceEventKind::Hop: onHop(e); break;
          case TraceEventKind::Kill: onKill(e); break;
          case TraceEventKind::Requeue: onRequeue(e); break;
          case TraceEventKind::Deliver: onDeliver(e); break;
          case TraceEventKind::Retire: onRetire(e); break;
          case TraceEventKind::Segment: onSegment(e); break;
        }
        if (report_.violations.size() >= opts_.maxViolations)
            break;
    }
    finishChecks();
    return report_;
}

} // namespace

std::string
formatViolation(const Violation &v)
{
    std::ostringstream os;
    os << "cycle " << v.cycle << " [" << v.cls << "]";
    if (v.pkt != kInvalidPacket)
        os << " pkt " << v.pkt;
    if (v.node >= 0)
        os << " node " << v.node;
    if (v.port >= 0)
        os << " port " << v.port;
    if (v.vc >= 0)
        os << " vc " << v.vc;
    os << ": " << v.message;
    return os.str();
}

bool
CheckReport::has(const std::string &cls) const
{
    for (const Violation &v : violations) {
        if (v.cls == cls)
            return true;
    }
    return false;
}

std::string
CheckReport::firstDiagnostic() const
{
    return violations.empty() ? std::string()
                              : formatViolation(violations.front());
}

CheckReport
verifyTrace(const FlitTrace &trace, const CheckOptions &opts)
{
    return Checker(trace, opts).run();
}

FileCheckResult
verifyTraceFile(const std::string &path, const CheckOptions &opts)
{
    FileCheckResult res;
    FlitTrace trace;
    res.parseOk = loadFlitTrace(path, trace, res.parseError);
    if (!res.parseOk)
        return res;
    res.report = verifyTrace(trace, opts);
    return res;
}

} // namespace taqos
