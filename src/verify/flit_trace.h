/// \file flit_trace.h
/// The recorded flit-trace format: a compact, versioned, line-oriented
/// event stream describing everything a packet did in a run, plus the
/// configuration the independent checker (verify/checker.h) needs to
/// re-derive legality from first principles.
///
/// This header is deliberately self-contained (common/types.h only): the
/// checker side must not depend on router/engine internals, and the
/// engine side only needs the container to fill it.
///
/// Text layout (version 2; version-1 traces parse unchanged):
///
///   taqos-flit-trace 2
///   <key> <value...>          # meta, one per line, order-free
///   port <id> <node> <term> <name>
///   events <count>
///   <kind> <cycle> <fields...>
///
/// Event kinds (first token; fields are unsigned decimal integers):
///   J cycle node pkt flow src dst size attempt gen frameTag compliant
///   R cycle port vc pkt head tail       VC reserved
///   N cycle port vc pkt                 VC started draining
///   F cycle port vc pkt                 VC freed
///   H cycle from port vc pkt            hop (link transfer started)
///   K cycle node pkt                    preemption kill
///   Q cycle pkt                         NACK requeued at source
///   D cycle port vc pkt                 delivered at destination terminal
///   A cycle pkt                         ACKed / retired
///   S cycle port vc pkt dst             segment handoff (v2): the packet
///                                       completed one journey segment at
///                                       (port, vc) — a chip row arriving
///                                       at its column boundary, or an
///                                       inter-chip gateway — and will be
///                                       re-injected toward the new
///                                       destination `dst` with the
///                                       attempt counter incremented
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace taqos {

inline constexpr int kFlitTraceVersion = 2;
/// Oldest version the parser still accepts (version 1 lacks only the
/// segment-handoff event, so replay is unchanged).
inline constexpr int kMinFlitTraceVersion = 1;

/// "No GSF frame tag" sentinel (mirrors noc kNoFrameTag without the
/// dependency).
inline constexpr std::uint64_t kTraceNoTag =
    static_cast<std::uint64_t>(-1);

enum class TraceEventKind : char {
    Inject = 'J',
    VcReserve = 'R',
    VcDrain = 'N',
    VcFree = 'F',
    Hop = 'H',
    Kill = 'K',
    Requeue = 'Q',
    Deliver = 'D',
    Retire = 'A',
    Segment = 'S',
};

struct TraceEvent {
    TraceEventKind kind = TraceEventKind::Inject;
    Cycle cycle = 0;
    PacketId pkt = 0;
    std::int32_t node = -1; ///< J: injecting router; K: killer; H: from
    std::int32_t port = -1; ///< R/N/F/H/D: input-port id
    std::int32_t vc = -1;

    // Inject payload (the packet's identity and attempt state); `dst` is
    // also the Segment event's next-segment destination.
    FlowId flow = kInvalidFlow;
    std::int32_t src = -1;
    std::int32_t dst = -1;
    std::int32_t size = 0;
    std::int32_t attempt = 0;
    Cycle gen = 0;
    std::uint64_t frameTag = kTraceNoTag;
    bool compliant = false;

    // VcReserve-only payload.
    Cycle head = 0;
    Cycle tail = 0;

    bool operator==(const TraceEvent &) const = default;
};

/// One announced input port (identity table at the head of the trace).
struct TracePortInfo {
    std::int32_t id = -1;
    NodeId node = kInvalidNode;
    bool terminal = false;
    std::string name;

    bool operator==(const TracePortInfo &) const = default;
};

/// Run configuration the checker audits against. Every field is parsed
/// from the trace header — the checker never reads engine state.
struct TraceMeta {
    std::string topology; ///< topologyName() string ("dps", "mesh_x1", ...)
    std::string mode;     ///< qosModeName() string ("pvc", "gsf", ...)
    int nodes = 0;
    int injectorsPerNode = 0;
    int flows = 0;

    // PVC bounds.
    Cycle frameLen = 0;
    bool quotaEnabled = false;
    double quotaProtect = 1.5;
    int windowLimit = 0;

    // GSF bounds.
    Cycle gsfFrameLen = 0;
    int gsfFrames = 0;

    /// Per-flow provisioned weights; empty = all equal.
    std::vector<std::uint32_t> weights;

    // Audit bounds (qos/audit.h defaults, frozen into the trace).
    Cycle maxAge = 0;     ///< 0 = skip the age audit
    double wrrTol = 0.5;  ///< WRR share tolerance (fraction of expected)

    // Run framing.
    Cycle measureStart = 0;
    Cycle measureEnd = 0;
    Cycle endCycle = 0;
    bool drained = false;

    std::uint64_t weightOf(FlowId flow) const
    {
        if (weights.empty())
            return 1;
        if (flow < 0 || static_cast<std::size_t>(flow) >= weights.size())
            return 1;
        return weights[static_cast<std::size_t>(flow)];
    }

    std::uint64_t sumWeights() const
    {
        if (weights.empty())
            return static_cast<std::uint64_t>(flows);
        std::uint64_t sum = 0;
        for (auto w : weights)
            sum += w;
        return sum;
    }

    bool operator==(const TraceMeta &) const = default;
};

struct FlitTrace {
    TraceMeta meta;
    std::vector<TracePortInfo> ports;
    std::vector<TraceEvent> events;

    bool operator==(const FlitTrace &) const = default;
};

/// Serialize to the versioned text format.
void writeFlitTrace(std::ostream &os, const FlitTrace &trace);
std::string serializeFlitTrace(const FlitTrace &trace);

/// Parse a trace. Returns false (with a line-numbered `error`) on any
/// malformed, unknown-version, or truncated input — never throws or
/// crashes on corrupt data.
bool parseFlitTrace(std::istream &is, FlitTrace &out, std::string &error);
bool parseFlitTrace(const std::string &text, FlitTrace &out,
                    std::string &error);

/// File convenience wrappers.
bool saveFlitTrace(const std::string &path, const FlitTrace &trace,
                   std::string &error);
bool loadFlitTrace(const std::string &path, FlitTrace &out,
                   std::string &error);

} // namespace taqos
