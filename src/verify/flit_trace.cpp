#include "verify/flit_trace.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace taqos {

namespace {

const char kMagic[] = "taqos-flit-trace";

void
writeEvent(std::ostream &os, const TraceEvent &e)
{
    os << static_cast<char>(e.kind) << ' ' << e.cycle;
    switch (e.kind) {
      case TraceEventKind::Inject:
        os << ' ' << e.node << ' ' << e.pkt << ' ' << e.flow << ' ' << e.src
           << ' ' << e.dst << ' ' << e.size << ' ' << e.attempt << ' '
           << e.gen << ' ' << e.frameTag << ' ' << (e.compliant ? 1 : 0);
        break;
      case TraceEventKind::VcReserve:
        os << ' ' << e.port << ' ' << e.vc << ' ' << e.pkt << ' ' << e.head
           << ' ' << e.tail;
        break;
      case TraceEventKind::VcDrain:
      case TraceEventKind::VcFree:
      case TraceEventKind::Deliver:
        os << ' ' << e.port << ' ' << e.vc << ' ' << e.pkt;
        break;
      case TraceEventKind::Hop:
        os << ' ' << e.node << ' ' << e.port << ' ' << e.vc << ' ' << e.pkt;
        break;
      case TraceEventKind::Kill:
        os << ' ' << e.node << ' ' << e.pkt;
        break;
      case TraceEventKind::Requeue:
      case TraceEventKind::Retire:
        os << ' ' << e.pkt;
        break;
      case TraceEventKind::Segment:
        os << ' ' << e.port << ' ' << e.vc << ' ' << e.pkt << ' ' << e.dst;
        break;
    }
    os << '\n';
}

/// Tokenizing parser state for one line; every numeric read is checked.
class LineReader {
  public:
    explicit LineReader(const std::string &line) : is_(line) {}

    bool next(std::string &tok) { return static_cast<bool>(is_ >> tok); }

    bool nextU64(std::uint64_t &out)
    {
        std::string tok;
        if (!next(tok))
            return false;
        errno = 0;
        char *end = nullptr;
        out = std::strtoull(tok.c_str(), &end, 10);
        return errno == 0 && end != nullptr && *end == '\0' &&
               end != tok.c_str();
    }

    bool nextI32(std::int32_t &out)
    {
        std::string tok;
        if (!next(tok))
            return false;
        errno = 0;
        char *end = nullptr;
        const long long v = std::strtoll(tok.c_str(), &end, 10);
        if (errno != 0 || end == nullptr || *end != '\0' ||
            end == tok.c_str()) {
            return false;
        }
        if (v < INT32_MIN || v > INT32_MAX)
            return false;
        out = static_cast<std::int32_t>(v);
        return true;
    }

    bool nextDouble(double &out)
    {
        std::string tok;
        if (!next(tok))
            return false;
        errno = 0;
        char *end = nullptr;
        out = std::strtod(tok.c_str(), &end);
        return errno == 0 && end != nullptr && *end == '\0' &&
               end != tok.c_str();
    }

    bool atEnd()
    {
        std::string tok;
        return !(is_ >> tok);
    }

  private:
    std::istringstream is_;
};

bool
parseEvent(const std::string &line, TraceEvent &e)
{
    LineReader r(line);
    std::string kind;
    if (!r.next(kind) || kind.size() != 1)
        return false;
    std::uint64_t u = 0;
    std::int32_t i = 0;
    e = TraceEvent{};
    switch (kind[0]) {
      case 'J': e.kind = TraceEventKind::Inject; break;
      case 'R': e.kind = TraceEventKind::VcReserve; break;
      case 'N': e.kind = TraceEventKind::VcDrain; break;
      case 'F': e.kind = TraceEventKind::VcFree; break;
      case 'H': e.kind = TraceEventKind::Hop; break;
      case 'K': e.kind = TraceEventKind::Kill; break;
      case 'Q': e.kind = TraceEventKind::Requeue; break;
      case 'D': e.kind = TraceEventKind::Deliver; break;
      case 'A': e.kind = TraceEventKind::Retire; break;
      case 'S': e.kind = TraceEventKind::Segment; break;
      default: return false;
    }
    if (!r.nextU64(u))
        return false;
    e.cycle = u;
    switch (e.kind) {
      case TraceEventKind::Inject:
        if (!r.nextI32(e.node) || !r.nextU64(e.pkt) || !r.nextI32(e.flow) ||
            !r.nextI32(e.src) || !r.nextI32(e.dst) || !r.nextI32(e.size) ||
            !r.nextI32(e.attempt) || !r.nextU64(e.gen) ||
            !r.nextU64(e.frameTag) || !r.nextI32(i)) {
            return false;
        }
        e.compliant = i != 0;
        break;
      case TraceEventKind::VcReserve:
        if (!r.nextI32(e.port) || !r.nextI32(e.vc) || !r.nextU64(e.pkt) ||
            !r.nextU64(e.head) || !r.nextU64(e.tail)) {
            return false;
        }
        break;
      case TraceEventKind::VcDrain:
      case TraceEventKind::VcFree:
      case TraceEventKind::Deliver:
        if (!r.nextI32(e.port) || !r.nextI32(e.vc) || !r.nextU64(e.pkt))
            return false;
        break;
      case TraceEventKind::Hop:
        if (!r.nextI32(e.node) || !r.nextI32(e.port) || !r.nextI32(e.vc) ||
            !r.nextU64(e.pkt)) {
            return false;
        }
        break;
      case TraceEventKind::Kill:
        if (!r.nextI32(e.node) || !r.nextU64(e.pkt))
            return false;
        break;
      case TraceEventKind::Requeue:
      case TraceEventKind::Retire:
        if (!r.nextU64(e.pkt))
            return false;
        break;
      case TraceEventKind::Segment:
        if (!r.nextI32(e.port) || !r.nextI32(e.vc) || !r.nextU64(e.pkt) ||
            !r.nextI32(e.dst)) {
            return false;
        }
        break;
    }
    return r.atEnd();
}

bool
fail(std::string &error, std::size_t lineNo, const std::string &what)
{
    error = "line " + std::to_string(lineNo) + ": " + what;
    return false;
}

} // namespace

void
writeFlitTrace(std::ostream &os, const FlitTrace &trace)
{
    const TraceMeta &m = trace.meta;
    os << kMagic << ' ' << kFlitTraceVersion << '\n';
    os << "topology " << m.topology << '\n';
    os << "mode " << m.mode << '\n';
    os << "nodes " << m.nodes << '\n';
    os << "injectors_per_node " << m.injectorsPerNode << '\n';
    os << "flows " << m.flows << '\n';
    os << "frame_len " << m.frameLen << '\n';
    os << "quota_enabled " << (m.quotaEnabled ? 1 : 0) << '\n';
    os << "quota_protect " << m.quotaProtect << '\n';
    os << "window_limit " << m.windowLimit << '\n';
    os << "gsf_frame_len " << m.gsfFrameLen << '\n';
    os << "gsf_frames " << m.gsfFrames << '\n';
    if (!m.weights.empty()) {
        os << "weights";
        for (auto w : m.weights)
            os << ' ' << w;
        os << '\n';
    }
    os << "max_age " << m.maxAge << '\n';
    os << "wrr_tol " << m.wrrTol << '\n';
    os << "measure_start " << m.measureStart << '\n';
    os << "measure_end " << m.measureEnd << '\n';
    os << "end_cycle " << m.endCycle << '\n';
    os << "drained " << (m.drained ? 1 : 0) << '\n';
    for (const TracePortInfo &p : trace.ports) {
        os << "port " << p.id << ' ' << p.node << ' ' << (p.terminal ? 1 : 0)
           << ' ' << p.name << '\n';
    }
    os << "events " << trace.events.size() << '\n';
    for (const TraceEvent &e : trace.events)
        writeEvent(os, e);
}

std::string
serializeFlitTrace(const FlitTrace &trace)
{
    std::ostringstream os;
    writeFlitTrace(os, trace);
    return os.str();
}

bool
parseFlitTrace(std::istream &is, FlitTrace &out, std::string &error)
{
    out = FlitTrace{};
    error.clear();
    std::string line;
    std::size_t lineNo = 0;

    if (!std::getline(is, line))
        return fail(error, 1, "empty trace (missing header)");
    ++lineNo;
    {
        LineReader r(line);
        std::string magic;
        std::int32_t version = 0;
        if (!r.next(magic) || magic != kMagic || !r.nextI32(version))
            return fail(error, lineNo, "not a taqos flit trace");
        if (version < kMinFlitTraceVersion || version > kFlitTraceVersion) {
            return fail(error, lineNo,
                        "unsupported trace version " +
                            std::to_string(version));
        }
    }

    TraceMeta &m = out.meta;
    std::uint64_t declaredEvents = 0;
    bool sawEvents = false;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        LineReader r(line);
        std::string key;
        if (!r.next(key))
            continue;
        bool ok = true;
        std::uint64_t u = 0;
        std::int32_t i = 0;
        if (key == "topology") {
            ok = r.next(m.topology);
        } else if (key == "mode") {
            ok = r.next(m.mode);
        } else if (key == "nodes") {
            ok = r.nextI32(m.nodes);
        } else if (key == "injectors_per_node") {
            ok = r.nextI32(m.injectorsPerNode);
        } else if (key == "flows") {
            ok = r.nextI32(m.flows);
        } else if (key == "frame_len") {
            ok = r.nextU64(m.frameLen);
        } else if (key == "quota_enabled") {
            ok = r.nextI32(i);
            m.quotaEnabled = i != 0;
        } else if (key == "quota_protect") {
            ok = r.nextDouble(m.quotaProtect);
        } else if (key == "window_limit") {
            ok = r.nextI32(m.windowLimit);
        } else if (key == "gsf_frame_len") {
            ok = r.nextU64(m.gsfFrameLen);
        } else if (key == "gsf_frames") {
            ok = r.nextI32(m.gsfFrames);
        } else if (key == "weights") {
            m.weights.clear();
            while (r.nextU64(u))
                m.weights.push_back(static_cast<std::uint32_t>(u));
            ok = r.atEnd() && !m.weights.empty();
        } else if (key == "max_age") {
            ok = r.nextU64(m.maxAge);
        } else if (key == "wrr_tol") {
            ok = r.nextDouble(m.wrrTol);
        } else if (key == "measure_start") {
            ok = r.nextU64(m.measureStart);
        } else if (key == "measure_end") {
            ok = r.nextU64(m.measureEnd);
        } else if (key == "end_cycle") {
            ok = r.nextU64(m.endCycle);
        } else if (key == "drained") {
            ok = r.nextI32(i);
            m.drained = i != 0;
        } else if (key == "port") {
            TracePortInfo p;
            ok = r.nextI32(p.id) && r.nextI32(p.node) && r.nextI32(i) &&
                 r.next(p.name);
            p.terminal = i != 0;
            if (ok)
                out.ports.push_back(std::move(p));
        } else if (key == "events") {
            ok = r.nextU64(declaredEvents);
            sawEvents = ok;
            if (ok)
                break; // event lines follow
        } else {
            return fail(error, lineNo, "unknown meta key '" + key + "'");
        }
        if (!ok)
            return fail(error, lineNo, "malformed '" + key + "' line");
    }

    if (!sawEvents)
        return fail(error, lineNo, "truncated trace: no 'events' record");

    out.events.reserve(static_cast<std::size_t>(declaredEvents));
    while (out.events.size() < declaredEvents) {
        if (!std::getline(is, line)) {
            return fail(error, lineNo + 1,
                        "truncated trace: expected " +
                            std::to_string(declaredEvents) +
                            " events, got " +
                            std::to_string(out.events.size()));
        }
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        TraceEvent e;
        if (!parseEvent(line, e))
            return fail(error, lineNo, "malformed event '" + line + "'");
        out.events.push_back(e);
    }
    return true;
}

bool
parseFlitTrace(const std::string &text, FlitTrace &out, std::string &error)
{
    std::istringstream is(text);
    return parseFlitTrace(is, out, error);
}

bool
saveFlitTrace(const std::string &path, const FlitTrace &trace,
              std::string &error)
{
    std::ofstream os(path);
    if (!os) {
        error = "cannot open '" + path + "' for writing";
        return false;
    }
    writeFlitTrace(os, trace);
    os.flush();
    if (!os) {
        error = "write error on '" + path + "'";
        return false;
    }
    return true;
}

bool
loadFlitTrace(const std::string &path, FlitTrace &out, std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    return parseFlitTrace(is, out, error);
}

} // namespace taqos
