/// \file checker.h
/// Independent flit-trace verifier and QoS-guarantee auditor.
///
/// Replays a recorded trace (flit_trace.h) and re-derives, from first
/// principles, that what the engine did was *valid* — the VTR
/// check_route.cpp pattern. This module deliberately depends on nothing
/// but the trace format: no router, engine, policy or topology headers,
/// so a bug in engine state cannot silently agree with the check.
///
/// Structural invariants (always checked):
///  - monotonic timestamps: the event stream's cycles never decrease;
///  - VC exclusivity: a VC holds at most one packet; reserve/drain/free
///    transitions are well-formed and name the resident packet;
///  - route legality: every hop leaves the packet's current node, obeys
///    the topology's adjacency (mesh/DPS: neighbouring node with strict
///    progress toward the destination; MECS/flattened butterfly: a
///    single network hop straight to the destination), and only the
///    destination's terminal port ejects it;
///  - flit conservation: every injected packet is delivered exactly once
///    or explicitly preempted — never duplicated, never lost; a run that
///    claims to have drained has no undelivered injected packet.
///
/// QoS audits (per the policy recorded in the trace header):
///  - PVC: a preemption may never discard a packet whose flow is inside
///    its protected reserved quota (quotaProtect x frameLen*w/sumW). The
///    audit is sound against both the local-flow-table and the carried
///    compliance-stamp protection paths: a kill is flagged only when the
///    flow's conservatively-reconstructed in-frame service is inside the
///    cap both at the kill and at the victim's injection.
///  - GSF: no flow exceeds its per-frame injection budget
///    (charge-then-overshoot admission), frame tags never regress, and
///    the in-flight frame span stays inside the gsfFrames window.
///  - Age: every delivery (and every packet still live at the end of the
///    run) is within the policy's worst-case age bound.
///  - WRR: flows backlogged across the whole measurement window receive
///    delivered-flit shares proportional to their weights, within the
///    recorded tolerance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "verify/flit_trace.h"

namespace taqos {

struct Violation {
    std::string cls; ///< "timestamp", "vc-exclusivity", "route",
                     ///< "conservation", "pvc-quota", "gsf-frame",
                     ///< "age-bound", "wrr-weight"
    Cycle cycle = 0;
    PacketId pkt = kInvalidPacket;
    std::int32_t node = -1;
    std::int32_t port = -1;
    std::int32_t vc = -1;
    std::string message;
};

/// "cycle C [cls] pkt P node N port p vc v: message" (fields present
/// only when meaningful) — the first-violation diagnostic line.
std::string formatViolation(const Violation &v);

struct CheckReport {
    std::vector<Violation> violations; ///< in stream order, capped
    std::uint64_t eventsChecked = 0;

    bool ok() const { return violations.empty(); }
    bool has(const std::string &cls) const;
    /// The first violation's diagnostic (empty when ok).
    std::string firstDiagnostic() const;
};

struct CheckOptions {
    /// Run the per-policy QoS audits (PVC/GSF/age/WRR). Structural
    /// invariants are always checked. Disable when the trace contains
    /// deliberately hostile failure injection (the fuzz kill harness).
    bool qosAudit = true;
    /// Stop collecting after this many violations (the stream is still
    /// scanned so structural state stays consistent).
    std::size_t maxViolations = 32;
};

CheckReport verifyTrace(const FlitTrace &trace,
                        const CheckOptions &opts = {});

/// Load + parse + verify. `parseOk == false` means the file was
/// malformed or truncated (diagnostic in `parseError`); the report is
/// only meaningful when parsing succeeded.
struct FileCheckResult {
    bool parseOk = false;
    std::string parseError;
    CheckReport report;
};

FileCheckResult verifyTraceFile(const std::string &path,
                                const CheckOptions &opts = {});

} // namespace taqos
