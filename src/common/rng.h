/// \file rng.h
/// Deterministic pseudo-random number generation (xoshiro256**).
///
/// Every stochastic component of the simulator (traffic generators, packet
/// sizing, arbitration tie-breaks) draws from an explicitly seeded Rng so
/// that experiments are exactly reproducible run-to-run.
///
/// Thread safety: there is deliberately no global generator. Each Rng
/// instance is owned by exactly one simulation, so concurrent sims (the
/// exp/ sweep workers) never share a stream — keep it that way.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace taqos {

/// xoshiro256** by Blackman & Vigna, seeded through splitmix64.
/// Small, fast, and statistically strong enough for traffic generation.
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /// Re-initialize the state from a 64-bit seed.
    void reseed(std::uint64_t seed);

    /// Uniform 64-bit value. Inline: the traffic generators draw once
    /// per flow per cycle, which makes this the single hottest function
    /// of a low-rate simulation.
    std::uint64_t nextU64()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// The canonical u64-to-[0,1) conversion behind nextDouble. Exposed
    /// so batched draw passes (the traffic generator) can convert
    /// pre-fetched raw draws through the exact same expression.
    static double doubleFromBits(std::uint64_t bits)
    {
        return static_cast<double>(bits >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [0, 1).
    double nextDouble() { return doubleFromBits(nextU64()); }

    /// Uniform integer in [0, bound).
    std::uint64_t nextBelow(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /// True with probability p.
    bool bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /// Pick a uniformly random element of a non-empty vector.
    template <typename T>
    const T &pick(const std::vector<T> &v)
    {
        TAQOS_ASSERT(!v.empty(), "pick() from empty vector");
        return v[nextBelow(v.size())];
    }

    /// Derive an independent stream (for per-injector generators).
    Rng split();

    /// Raw generator state, for checkpointing. Restoring the four words
    /// reproduces the stream exactly from where it left off.
    std::array<std::uint64_t, 4> state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    void setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = s[static_cast<std::size_t>(i)];
    }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace taqos
