/// \file types.h
/// Fundamental scalar types shared by every taqos module.
#pragma once

#include <cstdint>
#include <limits>

namespace taqos {

/// Simulation time, in router clock cycles.
using Cycle = std::uint64_t;

/// Index of a network node inside the shared region (0..numNodes-1).
using NodeId = std::int32_t;

/// Identity of a traffic flow. A flow corresponds to one injector
/// (terminal or row input); flow ids are globally unique in a column.
using FlowId = std::int32_t;

/// Unique id for a packet instance (stable across retransmissions).
using PacketId = std::uint64_t;

/// Sentinel for "no cycle" / "not yet happened".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// Sentinel for invalid ids.
inline constexpr NodeId kInvalidNode = -1;
inline constexpr FlowId kInvalidFlow = -1;
inline constexpr PacketId kInvalidPacket = std::numeric_limits<PacketId>::max();

} // namespace taqos
