#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.h"

namespace taqos {

void
RunningStat::push(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::clear()
{
    *this = RunningStat{};
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double bucketWidth, std::size_t numBuckets)
    : bucketWidth_(bucketWidth), buckets_(numBuckets, 0)
{
    TAQOS_ASSERT(bucketWidth > 0.0 && numBuckets > 0,
                 "histogram needs positive geometry");
}

void
Histogram::add(double x)
{
    ++count_;
    if (x < 0)
        x = 0;
    const auto idx = static_cast<std::size_t>(x / bucketWidth_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

void
Histogram::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
}

void
Histogram::setCounts(const std::vector<std::uint64_t> &buckets,
                     std::uint64_t overflow, std::uint64_t count)
{
    TAQOS_ASSERT(buckets.size() == buckets_.size(),
                 "histogram restore geometry mismatch");
    buckets_ = buckets;
    overflow_ = overflow;
    count_ = count;
}

double
Histogram::percentile(double q) const
{
    TAQOS_ASSERT(q >= 0.0 && q <= 1.0, "percentile out of range");
    if (count_ == 0)
        return 0.0;
    const double target = q * static_cast<double>(count_);
    double cum = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double next = cum + static_cast<double>(buckets_[i]);
        if (next >= target && buckets_[i] > 0) {
            const double frac = (target - cum) / static_cast<double>(buckets_[i]);
            return (static_cast<double>(i) + frac) * bucketWidth_;
        }
        cum = next;
    }
    return bucketWidth_ * static_cast<double>(buckets_.size());
}

std::string
Histogram::render(std::size_t maxRows) const
{
    std::string out;
    std::uint64_t peak = overflow_;
    for (auto b : buckets_)
        peak = std::max(peak, b);
    if (peak == 0)
        return "(empty)\n";
    const std::size_t rows = std::min(maxRows, buckets_.size());
    char line[160];
    for (std::size_t i = 0; i < rows; ++i) {
        const int bar =
            static_cast<int>(40.0 * static_cast<double>(buckets_[i]) /
                             static_cast<double>(peak));
        std::snprintf(line, sizeof line, "[%7.1f,%7.1f) %10llu %s\n",
                      bucketWidth_ * static_cast<double>(i),
                      bucketWidth_ * static_cast<double>(i + 1),
                      static_cast<unsigned long long>(buckets_[i]),
                      std::string(static_cast<std::size_t>(bar), '#').c_str());
        out += line;
    }
    if (overflow_ > 0) {
        std::snprintf(line, sizeof line, "[overflow)        %10llu\n",
                      static_cast<unsigned long long>(overflow_));
        out += line;
    }
    return out;
}

} // namespace taqos
