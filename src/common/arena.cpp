#include "common/arena.h"

namespace taqos {

namespace {
HotLayout gHotLayout = HotLayout::Arena;
} // namespace

HotLayout
hotLayout()
{
    return gHotLayout;
}

void
setHotLayout(HotLayout layout)
{
    gHotLayout = layout;
}

} // namespace taqos
