/// \file arena.h
/// Bump-pointer arena and the arena-backed flat vector used to pack the
/// simulation's hot state (VC buffers, arbitration slot lists, per-router
/// and per-port counters) into contiguous memory owned by the Network.
///
/// The tick loop's working set is dominated by small per-router arrays
/// that the builders historically left wherever the heap put them; the
/// arena pass relocates them once, at Network::finalizeRouters time, into
/// a handful of large chunks laid out in node order — the order both the
/// serial engine and the sharded engine's region tasks walk. Behaviour is
/// bit-identical either way: relocation copies state verbatim and every
/// cross-reference into these arrays is index-based (VcRef, slot keys).
///
/// The process-global HotLayout toggle exists for the layout ablation in
/// bench/ablation_hotpath: ObjectGraph skips the packing pass so the two
/// layouts can be timed against each other on identical simulations. It
/// is read once per network, at finalizeRouters time.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace taqos {

enum class HotLayout {
    Arena,       ///< pack hot state into the network's arena (default)
    ObjectGraph, ///< leave it where the builders allocated it (ablation)
};

HotLayout hotLayout();
void setHotLayout(HotLayout layout);

/// Chunked bump allocator. Never frees individual allocations — storage
/// lives until the arena dies with its Network — so it only hands out
/// trivially-destructible types.
class BumpArena {
  public:
    BumpArena() = default;
    BumpArena(const BumpArena &) = delete;
    BumpArena &operator=(const BumpArena &) = delete;

    void *allocateBytes(std::size_t bytes, std::size_t align)
    {
        if (chunks_.empty() || !fits(chunks_.back(), bytes, align))
            addChunk(bytes + align);
        Chunk &c = chunks_.back();
        const std::size_t at = alignUp(c.used, align);
        c.used = at + bytes;
        total_ += bytes;
        return c.mem.get() + at;
    }

    template <typename T>
    T *allocate(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is never destroyed element-wise");
        if (n == 0)
            return nullptr;
        return static_cast<T *>(allocateBytes(n * sizeof(T), alignof(T)));
    }

    /// Total payload bytes handed out (diagnostics).
    std::size_t bytesAllocated() const { return total_; }

  private:
    struct Chunk {
        std::unique_ptr<std::byte[]> mem;
        std::size_t used = 0;
        std::size_t cap = 0;
    };

    static std::size_t alignUp(std::size_t n, std::size_t align)
    {
        return (n + align - 1) & ~(align - 1);
    }

    static bool fits(const Chunk &c, std::size_t bytes, std::size_t align)
    {
        return alignUp(c.used, align) + bytes <= c.cap;
    }

    void addChunk(std::size_t atLeast)
    {
        const std::size_t cap = atLeast > kChunkBytes ? atLeast : kChunkBytes;
        Chunk c;
        c.mem = std::make_unique<std::byte[]>(cap);
        c.cap = cap;
        chunks_.push_back(std::move(c));
    }

    static constexpr std::size_t kChunkBytes = std::size_t{1} << 20;

    std::vector<Chunk> chunks_;
    std::size_t total_ = 0;
};

/// Minimal vector of trivially-copyable elements whose storage can be
/// re-homed into a BumpArena (rebind()). Starts heap-backed so standalone
/// fixtures (unit-test ports, routers built outside a Network) need no
/// arena; after rebind, growth allocates fresh arena spans (the doubled
/// old span is abandoned in place, bounding waste at ~2x the final size).
/// The API is the subset of std::vector the port/router code uses;
/// iterators are raw pointers.
template <typename T>
class ArenaVec {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ArenaVec relocates with memcpy and never destroys");

  public:
    using iterator = T *;
    using const_iterator = const T *;

    ArenaVec() = default;
    ArenaVec(const ArenaVec &other) { *this = other; }
    ArenaVec &operator=(const ArenaVec &other)
    {
        if (this == &other)
            return *this;
        size_ = 0;
        reserve(other.size_);
        if (other.size_ > 0)
            std::memcpy(data_, other.data_, other.size_ * sizeof(T));
        size_ = other.size_;
        return *this;
    }
    ArenaVec(ArenaVec &&other) noexcept { steal(other); }
    ArenaVec &operator=(ArenaVec &&other) noexcept
    {
        if (this != &other) {
            releaseHeap();
            steal(other);
        }
        return *this;
    }
    ~ArenaVec() { releaseHeap(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    T *data() { return data_; }
    const T *data() const { return data_; }
    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void clear() { size_ = 0; }

    void reserve(std::size_t cap)
    {
        if (cap > cap_)
            grow(cap);
    }

    /// Grow with value-initialized elements / shrink by dropping the tail.
    void resize(std::size_t n)
    {
        reserve(n);
        for (std::size_t i = size_; i < n; ++i)
            new (data_ + i) T();
        size_ = n;
    }

    void push_back(const T &v)
    {
        if (size_ == cap_)
            grow(cap_ < 4 ? 4 : cap_ * 2);
        new (data_ + size_) T(v);
        ++size_;
    }

    T &emplace_back()
    {
        if (size_ == cap_)
            grow(cap_ < 4 ? 4 : cap_ * 2);
        new (data_ + size_) T();
        return data_[size_++];
    }

    void insert(iterator pos, const T &v)
    {
        const std::size_t at = static_cast<std::size_t>(pos - data_);
        if (size_ == cap_)
            grow(cap_ < 4 ? 4 : cap_ * 2);
        if (at < size_) {
            std::memmove(data_ + at + 1, data_ + at,
                         (size_ - at) * sizeof(T));
        }
        new (data_ + at) T(v);
        ++size_;
    }

    void erase(iterator pos)
    {
        const std::size_t at = static_cast<std::size_t>(pos - data_);
        if (at + 1 < size_) {
            std::memmove(data_ + at, data_ + at + 1,
                         (size_ - at - 1) * sizeof(T));
        }
        --size_;
    }

    /// Re-home the current contents into `arena` and allocate all future
    /// growth from it. Indices, and therefore every index-based reference
    /// into this vector, are preserved.
    void rebind(BumpArena *arena)
    {
        arena_ = arena;
        T *p = arena_->allocate<T>(size_);
        if (size_ > 0)
            std::memcpy(p, data_, size_ * sizeof(T));
        releaseHeap();
        data_ = p;
        cap_ = size_;
    }

  private:
    void grow(std::size_t cap)
    {
        T *p;
        if (arena_ != nullptr) {
            p = arena_->allocate<T>(cap);
        } else {
            p = static_cast<T *>(::operator new(cap * sizeof(T)));
        }
        if (size_ > 0)
            std::memcpy(p, data_, size_ * sizeof(T));
        releaseHeap();
        data_ = p;
        cap_ = cap;
        ownsHeap_ = arena_ == nullptr;
    }

    void releaseHeap()
    {
        if (ownsHeap_ && data_ != nullptr)
            ::operator delete(data_);
        ownsHeap_ = false;
    }

    void steal(ArenaVec &other)
    {
        data_ = other.data_;
        size_ = other.size_;
        cap_ = other.cap_;
        arena_ = other.arena_;
        ownsHeap_ = other.ownsHeap_;
        other.data_ = nullptr;
        other.size_ = other.cap_ = 0;
        other.ownsHeap_ = false;
    }

    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
    BumpArena *arena_ = nullptr;
    bool ownsHeap_ = false;
};

} // namespace taqos
