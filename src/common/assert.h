/// \file assert.h
/// Always-on invariant checks. Simulator correctness depends on flow-control
/// invariants (credits, VC occupancy); violating one silently would corrupt
/// every downstream statistic, so these stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

#define TAQOS_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::fprintf(stderr, "TAQOS_ASSERT failed at %s:%d: %s\n",       \
                         __FILE__, __LINE__, #cond);                         \
            std::fprintf(stderr, "  " __VA_ARGS__);                          \
            std::fprintf(stderr, "\n");                                      \
            std::abort();                                                    \
        }                                                                    \
    } while (0)

#define TAQOS_UNREACHABLE(msg)                                               \
    do {                                                                     \
        std::fprintf(stderr, "TAQOS_UNREACHABLE at %s:%d: %s\n", __FILE__,   \
                     __LINE__, msg);                                         \
        std::abort();                                                        \
    } while (0)
