/// \file stats.h
/// Streaming statistics used by the measurement layer: Welford running
/// moments, bucketed latency histograms, and simple rate counters.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace taqos {

/// Single-pass mean / min / max / variance accumulator (Welford).
class RunningStat {
  public:
    void push(double x);
    void clear();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /// Population variance (paper reports std dev over the 64 flows, a
    /// complete population, not a sample).
    double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
    double stddev() const;
    double sum() const { return sum_; }

    /// Merge another accumulator into this one (parallel sweeps).
    void merge(const RunningStat &other);

    /// Raw Welford state, for checkpointing. min/max stay at their
    /// +/-infinity sentinels while n == 0, so the round-trip must carry
    /// them verbatim rather than via the clamped accessors above.
    struct Raw {
        std::uint64_t n = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = 0.0;
        double max = 0.0;
        double sum = 0.0;
    };

    Raw raw() const { return {n_, mean_, m2_, min_, max_, sum_}; }

    void setRaw(const Raw &r)
    {
        n_ = r.n;
        mean_ = r.mean;
        m2_ = r.m2;
        min_ = r.min;
        max_ = r.max;
        sum_ = r.sum;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double sum_ = 0.0;
};

/// Fixed-width bucket histogram with an overflow bucket; used for packet
/// latency distributions.
class Histogram {
  public:
    Histogram(double bucketWidth, std::size_t numBuckets);

    void add(double x);
    void clear();

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t overflow() const { return overflow_; }
    double bucketWidth() const { return bucketWidth_; }

    /// Value below which fraction q of samples fall (linear interpolation
    /// within the containing bucket). q in [0, 1].
    double percentile(double q) const;

    /// Multi-line textual rendering for reports.
    std::string render(std::size_t maxRows = 20) const;

    /// Overwrite the counters, for checkpointing. Bucket geometry is
    /// configuration (rebuilt by the restoring sim), so only the counts
    /// travel; the bucket count must match this histogram's.
    void setCounts(const std::vector<std::uint64_t> &buckets,
                   std::uint64_t overflow, std::uint64_t count);

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

} // namespace taqos
