/// \file options.h
/// Typed command-line option parsing shared by the example and bench
/// binaries. Every CLI validates its options up front through these
/// helpers and fails with one canonical message per error shape:
///
///   bad rates '<s>': want a,b,c or lo:hi:step (step > 0)
///   bad integer list '<s>': want a,b,c
///   unknown <what> '<token>'[; valid: <names>]
///
/// The enum helpers take the canonical `parseX` round-trip functions
/// (parseTopology, parseQosMode, parsePattern, parseLinkTopology, ...)
/// so a CLI never re-implements name matching.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"

namespace taqos {

/// Report a malformed option and exit(1) — the CLI contract is that
/// options are validated before any work starts, never silently
/// defaulted.
[[noreturn]] inline void
optionError(const std::string &msg)
{
    std::fprintf(stderr, "%s\n", msg.c_str());
    std::exit(1);
}

[[noreturn]] inline void
unknownValue(const char *what, const std::string &token,
             const std::string &valid = "")
{
    if (valid.empty())
        optionError(strFormat("unknown %s '%s'", what, token.c_str()));
    optionError(strFormat("unknown %s '%s'; valid: %s", what, token.c_str(),
                          valid.c_str()));
}

/// Space-joined names of an enum range, for unknownValue's `valid` hint:
/// joinNames(kAllQosModes, qosModeName).
template <typename Range, typename Name>
std::string
joinNames(const Range &range, Name name)
{
    std::string out;
    for (const auto &v : range) {
        if (!out.empty())
            out += ' ';
        out += name(v);
    }
    return out;
}

namespace detail {

[[noreturn]] inline void
badRates(const std::string &s)
{
    optionError(strFormat(
        "bad rates '%s': want a,b,c or lo:hi:step (step > 0)", s.c_str()));
}

inline double
parseRateToken(const std::string &token, const std::string &whole)
{
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0')
        badRates(whole);
    return v;
}

} // namespace detail

/// `a,b,c` or `lo:hi:step` -> the list of rates, inclusive of `hi` up to
/// rounding slack. Exits on malformed or empty input.
inline std::vector<double>
parseRateList(const std::string &s)
{
    std::vector<double> rates;
    if (s.find(':') != std::string::npos) {
        const auto parts = strSplit(s, ':');
        if (parts.size() != 3)
            detail::badRates(s);
        const double lo = detail::parseRateToken(strTrim(parts[0]), s);
        const double hi = detail::parseRateToken(strTrim(parts[1]), s);
        const double step = detail::parseRateToken(strTrim(parts[2]), s);
        if (step <= 0.0)
            detail::badRates(s);
        for (double r = lo; r <= hi + 1e-9; r += step)
            rates.push_back(r);
    } else {
        for (const auto &part : strSplit(s, ',')) {
            const std::string token = strTrim(part);
            if (!token.empty())
                rates.push_back(detail::parseRateToken(token, s));
        }
    }
    if (rates.empty())
        detail::badRates(s);
    return rates;
}

/// Comma-separated integers; rejects non-numeric tokens (unlike atoi).
inline std::vector<int>
parseIntList(const std::string &s)
{
    std::vector<int> out;
    for (const auto &part : strSplit(s, ',')) {
        const std::string token = strTrim(part);
        if (token.empty())
            continue;
        char *end = nullptr;
        const long v = std::strtol(token.c_str(), &end, 10);
        if (end == token.c_str() || *end != '\0')
            optionError(
                strFormat("bad integer list '%s': want a,b,c", s.c_str()));
        out.push_back(static_cast<int>(v));
    }
    return out;
}

/// Comma-separated enum names through a canonical `parseX` round-trip.
template <typename Parse>
auto
parseEnumList(const std::string &s, Parse parse, const char *what,
              const std::string &valid = "")
    -> std::vector<typename decltype(parse(std::string{}))::value_type>
{
    std::vector<typename decltype(parse(std::string{}))::value_type> out;
    for (const auto &part : strSplit(s, ',')) {
        const std::string token = strTrim(part);
        if (token.empty())
            continue;
        const auto v = parse(token);
        if (!v.has_value())
            unknownValue(what, token, valid);
        out.push_back(*v);
    }
    return out;
}

/// Single enum-valued option (`key=<name>`); absent -> `dflt`.
template <typename T, typename Parse>
T
enumOption(const OptionMap &opts, const char *key, T dflt, Parse parse,
           const char *what, const std::string &valid = "")
{
    const std::string s = opts.get(key, "");
    if (s.empty())
        return dflt;
    const auto v = parse(s);
    if (!v.has_value())
        unknownValue(what, s, valid);
    return *v;
}

} // namespace taqos
