#include "common/table.h"

#include <algorithm>

#include "common/assert.h"

namespace taqos {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!header_.empty()) {
        TAQOS_ASSERT(row.size() == header_.size(),
                     "row width %zu != header width %zu", row.size(),
                     header_.size());
    }
    rows_.push_back(Row{std::move(row), false});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{{}, true});
}

std::size_t
TextTable::numRows() const
{
    std::size_t n = 0;
    for (const auto &row : rows_)
        n += !row.rule;
    return n;
}

std::string
TextTable::render() const
{
    // Compute column widths over header + all rows.
    std::vector<std::size_t> width;
    const auto grow = [&width](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row.cells);

    std::size_t total = width.empty() ? 0 : 3 * (width.size() - 1);
    for (auto w : width)
        total += w;

    const auto renderCells = [&width](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < width.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            line += cell;
            line.append(width[i] - cell.size(), ' ');
            if (i + 1 < width.size())
                line += " | ";
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";
    if (!header_.empty()) {
        out += renderCells(header_);
        out += std::string(total, '-') + "\n";
    }
    for (const auto &row : rows_) {
        if (row.rule)
            out += std::string(total, '-') + "\n";
        else
            out += renderCells(row.cells);
    }
    return out;
}

std::string
TextTable::renderCsv() const
{
    const auto renderCells = [](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::string cell = cells[i];
            if (cell.find(',') != std::string::npos) {
                cell.insert(cell.begin(), '"');
                cell.push_back('"');
            }
            line += cell;
            if (i + 1 < cells.size())
                line += ",";
        }
        return line + "\n";
    };

    std::string out;
    if (!header_.empty())
        out += renderCells(header_);
    for (const auto &row : rows_)
        if (!row.rule)
            out += renderCells(row.cells);
    return out;
}

} // namespace taqos
