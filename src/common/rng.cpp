#include "common/rng.h"

namespace taqos {
namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // A zero state would be absorbing; splitmix64 output of four words is
    // never all-zero in practice, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    TAQOS_ASSERT(bound > 0, "nextBelow(0)");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % bound) - 1;
    std::uint64_t v = nextU64();
    while (v > limit)
        v = nextU64();
    return v % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    TAQOS_ASSERT(lo <= hi, "nextRange: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

} // namespace taqos
