#include "common/rng.h"

namespace taqos {
namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // A zero state would be absorbing; splitmix64 output of four words is
    // never all-zero in practice, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    TAQOS_ASSERT(bound > 0, "nextBelow(0)");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % bound) - 1;
    std::uint64_t v = nextU64();
    while (v > limit)
        v = nextU64();
    return v % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    TAQOS_ASSERT(lo <= hi, "nextRange: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

} // namespace taqos
