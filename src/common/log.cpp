#include "common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace taqos {
namespace {

/// Relaxed atomicity is enough: the level is a configuration knob, not a
/// synchronization point, but concurrent sweep workers must be able to
/// read it while a test or example sets it (data-race-free under TSan).
std::atomic<LogLevel> gLevel{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::None: return "none";
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
      case LogLevel::Trace: return "trace";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

void
logAt(LogLevel level, const char *fmt, ...)
{
    if (level > logLevel() || level == LogLevel::None)
        return;
    // Format the whole line first and emit it with one stdio call:
    // stdio locks the stream per call, so concurrent sweep workers never
    // interleave fragments of each other's messages. Messages longer
    // than the stack buffer take a second, sized pass — never truncated.
    char buf[512];
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int need = std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    if (need >= 0 && static_cast<std::size_t>(need) < sizeof buf) {
        std::fprintf(stderr, "[taqos:%s] %s\n", levelName(level), buf);
    } else if (need > 0) {
        std::string msg(static_cast<std::size_t>(need), '\0');
        std::vsnprintf(msg.data(), msg.size() + 1, fmt, copy);
        std::fprintf(stderr, "[taqos:%s] %s\n", levelName(level),
                     msg.c_str());
    }
    va_end(copy);
}

} // namespace taqos
