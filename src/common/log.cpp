#include "common/log.h"

#include <cstdarg>
#include <cstdio>

namespace taqos {
namespace {

LogLevel gLevel = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::None: return "none";
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
      case LogLevel::Trace: return "trace";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
logAt(LogLevel level, const char *fmt, ...)
{
    if (level > gLevel || level == LogLevel::None)
        return;
    std::fprintf(stderr, "[taqos:%s] ", levelName(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace taqos
