/// \file strings.h
/// Small string utilities: printf-style formatting, splitting, trimming,
/// and a `key=value` command-line option parser used by examples/benches.
#pragma once

#include <cstdarg>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace taqos {

/// printf-style formatting into a std::string.
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Split on a single character; empty fields preserved.
std::vector<std::string> strSplit(const std::string &s, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string strTrim(const std::string &s);

/// Lower-case ASCII copy.
std::string strLower(const std::string &s);

/// Parses argv of the form `key=value ...` (plus bare flags, stored with
/// value "1"). Unknown keys are kept; callers validate what they consume.
class OptionMap {
  public:
    OptionMap() = default;
    OptionMap(int argc, char **argv);

    bool has(const std::string &key) const;
    std::string get(const std::string &key, const std::string &dflt) const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;

    const std::map<std::string, std::string> &raw() const { return kv_; }

  private:
    std::map<std::string, std::string> kv_;
};

} // namespace taqos
