#include "common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace taqos {

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int need = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (need > 0) {
        out.resize(static_cast<std::size_t>(need));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

std::vector<std::string>
strSplit(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
strTrim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
strLower(const std::string &s)
{
    std::string out = s;
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

OptionMap::OptionMap(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos)
            kv_[strTrim(arg)] = "1";
        else
            kv_[strTrim(arg.substr(0, eq))] = strTrim(arg.substr(eq + 1));
    }
}

bool
OptionMap::has(const std::string &key) const
{
    return kv_.count(key) > 0;
}

std::string
OptionMap::get(const std::string &key, const std::string &dflt) const
{
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
}

std::int64_t
OptionMap::getInt(const std::string &key, std::int64_t dflt) const
{
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 0);
}

double
OptionMap::getDouble(const std::string &key, double dflt) const
{
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
}

bool
OptionMap::getBool(const std::string &key, bool dflt) const
{
    const auto it = kv_.find(key);
    if (it == kv_.end())
        return dflt;
    const std::string v = strLower(it->second);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

} // namespace taqos
