/// \file table.h
/// ASCII table and CSV rendering for benchmark reports. Every bench binary
/// prints the same rows/series the paper's table or figure reports, using
/// this formatter.
#pragma once

#include <string>
#include <vector>

namespace taqos {

/// Column-aligned text table with an optional title; also exports CSV so
/// figure series can be re-plotted.
class TextTable {
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /// Set the header row (defines the column count).
    void setHeader(std::vector<std::string> header);

    /// Append a data row; must match the header width if one was set.
    void addRow(std::vector<std::string> row);

    /// Convenience: separator line between row groups.
    void addRule();

    std::string render() const;
    std::string renderCsv() const;

    /// Number of data rows (rules excluded).
    std::size_t numRows() const;

  private:
    struct Row {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace taqos
