/// \file log.h
/// Minimal leveled logging. The simulator is silent by default; examples
/// and debugging sessions raise the level.
///
/// Thread safety: the level is atomic and each message is emitted with a
/// single stdio call, so concurrent simulations (the exp/ sweep workers)
/// may log freely without races or interleaved lines.
#pragma once

#include <string>

namespace taqos {

enum class LogLevel { None = 0, Error, Warn, Info, Debug, Trace };

/// Global log threshold (messages above the threshold are dropped).
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit a message at the given level (printf-style).
void logAt(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace taqos

#define TAQOS_LOG_ERROR(...) ::taqos::logAt(::taqos::LogLevel::Error, __VA_ARGS__)
#define TAQOS_LOG_WARN(...) ::taqos::logAt(::taqos::LogLevel::Warn, __VA_ARGS__)
#define TAQOS_LOG_INFO(...) ::taqos::logAt(::taqos::LogLevel::Info, __VA_ARGS__)
#define TAQOS_LOG_DEBUG(...) ::taqos::logAt(::taqos::LogLevel::Debug, __VA_ARGS__)
