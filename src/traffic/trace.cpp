#include "traffic/trace.h"

#include "common/assert.h"
#include "common/strings.h"

namespace taqos {

TrafficTrace::TrafficTrace(std::vector<TraceEntry> entries)
    : entries_(std::move(entries))
{
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        TAQOS_ASSERT(entries_[i - 1].cycle <= entries_[i].cycle,
                     "trace entries out of order at %zu", i);
    }
}

void
TrafficTrace::append(TraceEntry entry)
{
    TAQOS_ASSERT(entries_.empty() || entries_.back().cycle <= entry.cycle,
                 "trace entries must be appended in cycle order");
    entries_.push_back(entry);
}

Cycle
TrafficTrace::lastCycle() const
{
    return entries_.empty() ? 0 : entries_.back().cycle;
}

std::uint64_t
TrafficTrace::totalFlits() const
{
    std::uint64_t flits = 0;
    for (const auto &e : entries_)
        flits += static_cast<std::uint64_t>(e.sizeFlits);
    return flits;
}

TrafficTrace
TrafficTrace::record(const ColumnConfig &col, const TrafficConfig &traffic,
                     Cycle cycles)
{
    ColumnConfig canon = col;
    canon.canonicalize();
    TrafficGenerator gen(canon, traffic);

    PacketPool pool;
    SimMetrics metrics(canon.numFlows());
    std::vector<InjectorQueue> injectors(
        static_cast<std::size_t>(canon.numFlows()));
    for (FlowId f = 0; f < canon.numFlows(); ++f)
        injectors[static_cast<std::size_t>(f)].flow = f;

    TrafficTrace trace;
    for (Cycle c = 0; c < cycles; ++c) {
        gen.tick(c, pool, injectors, metrics);
        // Drain what this cycle produced, in flow order (stable).
        for (auto &inj : injectors) {
            while (!inj.queue().empty()) {
                NetPacket *pkt = inj.dequeue();
                trace.append(TraceEntry{c, pkt->flow, pkt->dst,
                                        pkt->sizeFlits});
                pkt->state = PacketState::Queued;
                pool.release(pkt);
            }
        }
    }
    return trace;
}

std::string
TrafficTrace::toCsv() const
{
    std::string out = "cycle,flow,dst,size\n";
    for (const auto &e : entries_) {
        out += strFormat("%llu,%d,%d,%d\n",
                         static_cast<unsigned long long>(e.cycle), e.flow,
                         e.dst, e.sizeFlits);
    }
    return out;
}

TrafficTrace
TrafficTrace::fromCsv(const std::string &csv)
{
    TrafficTrace trace;
    bool first = true;
    for (const auto &line : strSplit(csv, '\n')) {
        const std::string trimmed = strTrim(line);
        if (trimmed.empty())
            continue;
        if (first) {
            first = false;
            if (trimmed.rfind("cycle", 0) == 0)
                continue; // header
        }
        const auto fields = strSplit(trimmed, ',');
        TAQOS_ASSERT(fields.size() == 4, "bad trace line: %s",
                     trimmed.c_str());
        TraceEntry e;
        e.cycle = std::strtoull(fields[0].c_str(), nullptr, 10);
        e.flow = static_cast<FlowId>(std::atoi(fields[1].c_str()));
        e.dst = static_cast<NodeId>(std::atoi(fields[2].c_str()));
        e.sizeFlits = std::atoi(fields[3].c_str());
        trace.append(e);
    }
    return trace;
}

TraceReplayer::TraceReplayer(const ColumnConfig &col, TrafficTrace trace)
    : col_(col), trace_(std::move(trace))
{
    col_.canonicalize();
}

void
TraceReplayer::tick(Cycle now, PacketPool &pool,
                    std::vector<InjectorQueue> &injectors,
                    SimMetrics &metrics)
{
    const auto &entries = trace_.entries();
    while (next_ < entries.size() && entries[next_].cycle == now) {
        const TraceEntry &e = entries[next_++];
        TAQOS_ASSERT(e.flow >= 0 && e.flow < col_.numFlows(),
                     "trace flow %d out of range", e.flow);
        TAQOS_ASSERT(e.dst >= 0 && e.dst < col_.numNodes,
                     "trace dst %d out of range", e.dst);

        NetPacket *pkt = pool.alloc();
        pkt->flow = e.flow;
        pkt->src = col_.nodeOfFlow(e.flow);
        pkt->dst = e.dst;
        pkt->sizeFlits = e.sizeFlits;
        pkt->genCycle = now;
        pkt->queuedCycle = now;
        pkt->state = PacketState::Queued;
        pkt->measured = metrics.inWindow(now);
        injectors[static_cast<std::size_t>(e.flow)].enqueue(pkt);

        ++metrics.generatedPackets;
        metrics.generatedFlits += static_cast<std::uint64_t>(e.sizeFlits);
        if (pkt->measured)
            ++metrics.measuredGenerated;
    }
    // Skip any stale earlier-cycle entries (replay started mid-trace).
    while (next_ < entries.size() && entries[next_].cycle < now)
        ++next_;
}

} // namespace taqos
