#include "traffic/trace.h"

#include "common/assert.h"
#include "common/strings.h"
#include "traffic/dynamic.h"

namespace taqos {

TrafficTrace::TrafficTrace(std::vector<TraceEntry> entries)
    : entries_(std::move(entries))
{
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        TAQOS_ASSERT(entries_[i - 1].cycle <= entries_[i].cycle,
                     "trace entries out of order at %zu", i);
    }
}

void
TrafficTrace::append(TraceEntry entry)
{
    TAQOS_ASSERT(entries_.empty() || entries_.back().cycle <= entry.cycle,
                 "trace entries must be appended in cycle order");
    entries_.push_back(entry);
}

Cycle
TrafficTrace::lastCycle() const
{
    return entries_.empty() ? 0 : entries_.back().cycle;
}

std::uint64_t
TrafficTrace::totalFlits() const
{
    std::uint64_t flits = 0;
    for (const auto &e : entries_)
        flits += static_cast<std::uint64_t>(e.sizeFlits);
    return flits;
}

TrafficTrace
TrafficTrace::record(const ColumnConfig &col, const TrafficConfig &traffic,
                     Cycle cycles)
{
    ColumnConfig canon = col;
    canon.canonicalize();
    TrafficGenerator gen(canon, traffic);

    PacketPool pool;
    SimMetrics metrics(canon.numFlows());
    std::vector<InjectorQueue> injectors(
        static_cast<std::size_t>(canon.numFlows()));
    for (FlowId f = 0; f < canon.numFlows(); ++f)
        injectors[static_cast<std::size_t>(f)].flow = f;

    TrafficTrace trace;
    for (Cycle c = 0; c < cycles; ++c) {
        gen.tick(c, pool, injectors, metrics);
        // Drain what this cycle produced, in flow order (stable).
        for (auto &inj : injectors) {
            while (!inj.queue().empty()) {
                NetPacket *pkt = inj.dequeue();
                trace.append(TraceEntry{c, pkt->flow, pkt->dst,
                                        pkt->sizeFlits});
                pkt->state = PacketState::Queued;
                pool.release(pkt);
            }
        }
    }
    return trace;
}

std::string
TrafficTrace::toCsv() const
{
    std::string out = "cycle,flow,dst,size\n";
    for (const auto &e : entries_) {
        out += strFormat("%llu,%d,%d,%d\n",
                         static_cast<unsigned long long>(e.cycle), e.flow,
                         e.dst, e.sizeFlits);
    }
    return out;
}

namespace {

/// Strict non-negative integer field (the CSV carries nothing signed);
/// rejects empty tokens and trailing garbage, unlike atoi.
bool
parseCsvField(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end != tok.c_str() && *end == '\0' && tok[0] != '-';
}

} // namespace

std::optional<TrafficTrace>
TrafficTrace::fromCsv(const std::string &csv, std::string *err)
{
    const auto fail = [err](std::string msg) -> std::optional<TrafficTrace> {
        if (err != nullptr)
            *err = std::move(msg);
        return std::nullopt;
    };

    std::vector<TraceEntry> entries;
    bool first = true;
    std::size_t lineNo = 0;
    for (const auto &line : strSplit(csv, '\n')) {
        ++lineNo;
        const std::string trimmed = strTrim(line);
        if (trimmed.empty())
            continue;
        if (first) {
            first = false;
            if (trimmed.rfind("cycle", 0) == 0)
                continue; // header
        }
        const auto fields = strSplit(trimmed, ',');
        if (fields.size() != 4) {
            return fail(strFormat(
                "trace csv line %zu: want 'cycle,flow,dst,size', got '%s'",
                lineNo, trimmed.c_str()));
        }
        static const char *kFieldNames[4] = {"cycle", "flow", "dst", "size"};
        std::uint64_t v[4];
        for (std::size_t i = 0; i < 4; ++i) {
            const std::string tok = strTrim(fields[i]);
            if (!parseCsvField(tok, v[i])) {
                return fail(strFormat("trace csv line %zu: bad %s '%s'",
                                      lineNo, kFieldNames[i], tok.c_str()));
            }
        }
        TraceEntry e;
        e.cycle = v[0];
        e.flow = static_cast<FlowId>(v[1]);
        e.dst = static_cast<NodeId>(v[2]);
        e.sizeFlits = static_cast<int>(v[3]);
        if (e.sizeFlits < 1) {
            return fail(strFormat("trace csv line %zu: bad size '%d'",
                                  lineNo, e.sizeFlits));
        }
        if (!entries.empty() && entries.back().cycle > e.cycle) {
            return fail(strFormat(
                "trace csv line %zu: cycle %llu out of order (after %llu)",
                lineNo, static_cast<unsigned long long>(e.cycle),
                static_cast<unsigned long long>(entries.back().cycle)));
        }
        entries.push_back(e);
    }
    return TrafficTrace(std::move(entries));
}

TraceReplayer::TraceReplayer(const ColumnConfig &col, TrafficTrace trace)
    : col_(col), trace_(std::move(trace))
{
    col_.canonicalize();
}

TraceReplayer::TraceReplayer(const ColumnConfig &col, TrafficTrace trace,
                             const WorkloadSpec &spec)
    : TraceReplayer(col, applyReplayWindow(trace, spec))
{
    TAQOS_ASSERT(spec.kind == WorkloadKind::Trace,
                 "trace replayer needs a trace workload, got %s",
                 workloadKindName(spec.kind));
    loop_ = spec.traceLoop;
    loopLen_ = spec.windowEnd != kNoCycle
        ? spec.windowEnd - spec.windowBegin
        : trace_.lastCycle() + 1;
}

void
TraceReplayer::tick(Cycle now, PacketPool &pool,
                    std::vector<InjectorQueue> &injectors,
                    SimMetrics &metrics)
{
    const auto &entries = trace_.entries();
    if (entries.empty())
        return;
    // Entries replay at their recorded cycle, offset by a full window
    // length per completed lap when looping. Stale earlier-cycle entries
    // (replay started mid-trace) are skipped by the same walk.
    while (next_ < entries.size()) {
        const Cycle at = entries[next_].cycle + lap_ * loopLen_;
        if (at > now)
            break;
        if (at == now) {
            const TraceEntry &e = entries[next_];
            TAQOS_ASSERT(e.flow >= 0 && e.flow < col_.numFlows(),
                         "trace flow %d out of range", e.flow);
            TAQOS_ASSERT(e.dst >= 0 && e.dst < col_.numNodes,
                         "trace dst %d out of range", e.dst);

            NetPacket *pkt = pool.alloc();
            pkt->flow = e.flow;
            pkt->src = col_.nodeOfFlow(e.flow);
            pkt->dst = e.dst;
            pkt->sizeFlits = e.sizeFlits;
            pkt->genCycle = now;
            pkt->queuedCycle = now;
            pkt->state = PacketState::Queued;
            pkt->measured = metrics.inWindow(now);
            injectors[static_cast<std::size_t>(e.flow)].enqueue(pkt);

            ++metrics.generatedPackets;
            metrics.generatedFlits += static_cast<std::uint64_t>(e.sizeFlits);
            if (pkt->measured)
                ++metrics.measuredGenerated;
        }
        ++next_;
        if (next_ == entries.size() && loop_) {
            next_ = 0;
            ++lap_;
        }
    }
}

} // namespace taqos
