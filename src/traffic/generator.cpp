#include "traffic/generator.h"

#include <algorithm>

#include "common/assert.h"
#include "traffic/dynamic.h"

namespace taqos {

TrafficGenerator::TrafficGenerator(const ColumnConfig &col,
                                   const TrafficConfig &traffic)
    : col_(col), traffic_(traffic)
{
    Rng master(traffic_.seed);
    const int flows = col_.numFlows();
    rng_.reserve(static_cast<std::size_t>(flows));
    genProb_.reserve(static_cast<std::size_t>(flows));
    for (FlowId f = 0; f < flows; ++f) {
        rng_.push_back(master.split());
        const double rate =
            traffic_.flowActive(f) ? traffic_.rateOf(f) : 0.0;
        genProb_.push_back(rate / traffic_.meanPacketFlits());
    }
}

TrafficGenerator::TrafficGenerator(const ColumnConfig &col,
                                   const TrafficConfig &traffic,
                                   const WorkloadSpec &workload)
    : TrafficGenerator(col, traffic)
{
    mod_ = makeRateModulator(workload, col_.numFlows(), traffic_.seed);
}

TrafficGenerator::~TrafficGenerator() = default;

void
TrafficGenerator::recomputeProb(FlowId flow)
{
    const double rate = traffic_.flowActive(flow) ? traffic_.rateOf(flow)
                                                  : 0.0;
    genProb_[static_cast<std::size_t>(flow)] =
        rate / traffic_.meanPacketFlits();
}

void
TrafficGenerator::setFlowActive(FlowId flow, bool active)
{
    if (traffic_.activeFlows.empty())
        traffic_.activeFlows.assign(rng_.size(), true);
    traffic_.activeFlows[static_cast<std::size_t>(flow)] = active;
    recomputeProb(flow);
}

void
TrafficGenerator::setFlowRate(FlowId flow, double rate)
{
    if (traffic_.flowRates.empty()) {
        traffic_.flowRates.assign(
            rng_.size(), -1.0); // negative = fall back to injectionRate
    }
    traffic_.flowRates[static_cast<std::size_t>(flow)] = rate;
    recomputeProb(flow);
}

NodeId
TrafficGenerator::pickDest(FlowId flow)
{
    const NodeId src = col_.nodeOfFlow(flow);
    Rng &rng = rng_[static_cast<std::size_t>(flow)];
    switch (traffic_.pattern) {
      case TrafficPattern::UniformRandom: {
        // Uniform over the other nodes; local terminal accesses do not
        // exercise the column network.
        NodeId d = static_cast<NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(col_.numNodes - 1)));
        if (d >= src)
            ++d;
        return d;
      }
      case TrafficPattern::Tornado:
        return static_cast<NodeId>((src + col_.numNodes / 2) %
                                   col_.numNodes);
      case TrafficPattern::Hotspot:
        return traffic_.hotspotNode;
    }
    TAQOS_UNREACHABLE("bad pattern");
}

void
TrafficGenerator::tick(Cycle now, PacketPool &pool,
                       std::vector<InjectorQueue> &injectors,
                       SimMetrics &metrics)
{
    if (now >= traffic_.genUntil)
        return;

    // A modulator reshapes this cycle's probabilities; the steady path
    // reads genProb_ directly and is untouched (bit-identical to the
    // modulator-free build). A zero scale freezes the flow's stream —
    // no draw — keeping the sequences deterministic through bursts.
    const auto flows = static_cast<std::size_t>(col_.numFlows());
    const double *prob = genProb_.data();
    if (mod_ != nullptr) {
        mod_->advance(now);
        effProb_.resize(flows);
        for (std::size_t f = 0; f < flows; ++f) {
            effProb_[f] = std::min(
                1.0, genProb_[f] * mod_->scaleOf(static_cast<FlowId>(f)));
        }
        prob = effProb_.data();
    }

    // Batched Bernoulli pass. Each flow's stream consumes exactly the
    // draws the per-flow bernoulli() calls would (one per cycle while
    // 0 < p < 1; none at the degenerate probabilities), so the sequences
    // stay bit-identical — only the loop structure changes.
    draws_.resize(flows);
    for (std::size_t f = 0; f < flows; ++f) {
        const double p = prob[f];
        if (p > 0.0 && p < 1.0)
            draws_[f] = rng_[f].nextU64();
    }

    for (FlowId f = 0; f < col_.numFlows(); ++f) {
        const double p = prob[static_cast<std::size_t>(f)];
        if (p <= 0.0)
            continue;
        Rng &rng = rng_[static_cast<std::size_t>(f)];
        if (p < 1.0 &&
            Rng::doubleFromBits(draws_[static_cast<std::size_t>(f)]) >= p) {
            continue;
        }

        InjectorQueue &inj = injectors[static_cast<std::size_t>(f)];
        // Size and destination are drawn even when suppressed so that the
        // downstream random sequence is unperturbed.
        const int size = rng.bernoulli(traffic_.shortPacketProb)
            ? traffic_.shortFlits
            : traffic_.longFlits;
        const NodeId dest = pickDest(f);

        if (inj.queue().size() >= traffic_.maxQueueDepth) {
            ++suppressed_;
            continue;
        }

        NetPacket *pkt = pool.alloc();
        pkt->flow = f;
        pkt->src = col_.nodeOfFlow(f);
        pkt->dst = dest;
        pkt->sizeFlits = size;
        pkt->genCycle = now;
        pkt->queuedCycle = now;
        pkt->state = PacketState::Queued;
        pkt->measured = metrics.inWindow(now);
        inj.enqueue(pkt);

        ++metrics.generatedPackets;
        metrics.generatedFlits += static_cast<std::uint64_t>(size);
        if (pkt->measured)
            ++metrics.measuredGenerated;
    }
}

std::vector<std::uint64_t>
TrafficGenerator::packState() const
{
    std::vector<std::uint64_t> w;
    w.reserve(rng_.size() * 4 + 1);
    for (const Rng &rng : rng_) {
        const auto s = rng.state();
        w.insert(w.end(), s.begin(), s.end());
    }
    w.push_back(suppressed_);
    if (mod_ != nullptr) {
        const auto mw = mod_->packState();
        w.insert(w.end(), mw.begin(), mw.end());
    }
    return w;
}

void
TrafficGenerator::unpackState(const std::vector<std::uint64_t> &words)
{
    const std::size_t base = rng_.size() * 4 + 1;
    TAQOS_ASSERT(mod_ != nullptr ? words.size() >= base
                                 : words.size() == base,
                 "traffic-generator restore geometry mismatch");
    std::size_t i = 0;
    for (Rng &rng : rng_) {
        rng.setState({words[i], words[i + 1], words[i + 2], words[i + 3]});
        i += 4;
    }
    suppressed_ = words[i++];
    if (mod_ != nullptr)
        mod_->unpackState({words.begin() +
                               static_cast<std::ptrdiff_t>(i),
                           words.end()});
}

} // namespace taqos
