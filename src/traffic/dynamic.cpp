#include "traffic/dynamic.h"

#include <fstream>
#include <sstream>

#include "common/assert.h"
#include "common/strings.h"
#include "traffic/generator.h"
#include "traffic/trace.h"

namespace taqos {
namespace {

/// splitmix64 finalizer: the same avalanche construction the sweep seed
/// chain and the cell cache use.
std::uint64_t
splitmix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Salt separating the modulator master stream from the per-flow packet
/// streams (both derive from the same traffic seed).
constexpr std::uint64_t kModulatorSalt = 0x7a05'0b57'0000'0001ull;

/// Salt behind the deterministic trace-thinning hash. A fixed constant —
/// not a user seed — so a (trace, window, inflate) triple selects the
/// same entry subset on every machine and in every run.
constexpr std::uint64_t kThinningSalt = 0x7a05'1f1a'7e00'0001ull;

} // namespace

OnOffModulator::OnOffModulator(const WorkloadSpec &spec, int numFlows,
                               std::uint64_t seed)
    : spec_(spec)
{
    TAQOS_ASSERT(spec_.kind == WorkloadKind::Bursty,
                 "ON/OFF modulator needs a bursty workload, got %s",
                 workloadKindName(spec_.kind));
    Rng master(splitmix(seed ^ kModulatorSalt));
    rng_.reserve(static_cast<std::size_t>(numFlows));
    on_.reserve(static_cast<std::size_t>(numFlows));
    for (FlowId f = 0; f < numFlows; ++f) {
        rng_.push_back(master.split());
        // Start each chain in its stationary distribution so the burst
        // phases are decorrelated from cycle 0 (no synchronized onset).
        const double pOn = spec_.burstOn / (spec_.burstOn + spec_.burstOff);
        on_.push_back(rng_.back().nextDouble() < pOn);
    }
}

void
OnOffModulator::advance(Cycle now)
{
    (void)now;
    // One transition draw per flow per cycle, always — the chain's draw
    // count is a pure function of elapsed cycles, which keeps restore
    // and sharding bit-identical.
    for (std::size_t f = 0; f < rng_.size(); ++f) {
        const double flip = on_[f] ? spec_.burstOff : spec_.burstOn;
        if (rng_[f].bernoulli(flip))
            on_[f] = !on_[f];
    }
}

double
OnOffModulator::scaleOf(FlowId flow) const
{
    return on_[static_cast<std::size_t>(flow)] ? spec_.burstGain : 0.0;
}

std::vector<std::uint64_t>
OnOffModulator::packState() const
{
    std::vector<std::uint64_t> w;
    const std::size_t flows = rng_.size();
    const std::size_t stateWords = (flows + 63) / 64;
    w.reserve(flows * 4 + stateWords);
    for (const Rng &rng : rng_) {
        const auto s = rng.state();
        w.insert(w.end(), s.begin(), s.end());
    }
    for (std::size_t word = 0; word < stateWords; ++word) {
        std::uint64_t bits = 0;
        for (std::size_t b = 0; b < 64 && word * 64 + b < flows; ++b) {
            if (on_[word * 64 + b])
                bits |= 1ull << b;
        }
        w.push_back(bits);
    }
    return w;
}

void
OnOffModulator::unpackState(const std::vector<std::uint64_t> &words)
{
    const std::size_t flows = rng_.size();
    const std::size_t stateWords = (flows + 63) / 64;
    TAQOS_ASSERT(words.size() == flows * 4 + stateWords,
                 "ON/OFF modulator restore geometry mismatch");
    std::size_t i = 0;
    for (Rng &rng : rng_) {
        rng.setState({words[i], words[i + 1], words[i + 2], words[i + 3]});
        i += 4;
    }
    for (std::size_t f = 0; f < flows; ++f)
        on_[f] = (words[i + f / 64] >> (f % 64)) & 1;
}

RampModulator::RampModulator(const WorkloadSpec &spec)
    : spec_(spec), scale_(spec.rampLow)
{
    TAQOS_ASSERT(spec_.kind == WorkloadKind::Ramp,
                 "ramp modulator needs a ramp workload, got %s",
                 workloadKindName(spec_.kind));
}

double
RampModulator::scaleAt(const WorkloadSpec &spec, Cycle now)
{
    const Cycle period = spec.rampPeriod;
    const Cycle phase = now % period;
    const Cycle half = period / 2;
    const double frac = phase <= half
        ? static_cast<double>(phase) / static_cast<double>(half)
        : static_cast<double>(period - phase) /
              static_cast<double>(period - half);
    return spec.rampLow + (spec.rampHigh - spec.rampLow) * frac;
}

void
RampModulator::advance(Cycle now)
{
    scale_ = scaleAt(spec_, now);
}

double
RampModulator::scaleOf(FlowId flow) const
{
    (void)flow;
    return scale_;
}

std::unique_ptr<RateModulator>
makeRateModulator(const WorkloadSpec &spec, int numFlows, std::uint64_t seed)
{
    switch (spec.kind) {
      case WorkloadKind::Bursty:
        return std::make_unique<OnOffModulator>(spec, numFlows, seed);
      case WorkloadKind::Ramp:
        return std::make_unique<RampModulator>(spec);
      case WorkloadKind::Steady:
      case WorkloadKind::Trace:
      case WorkloadKind::Churn:
        return nullptr;
    }
    TAQOS_UNREACHABLE("bad workload kind");
}

TrafficTrace
applyReplayWindow(const TrafficTrace &trace, const WorkloadSpec &spec)
{
    TAQOS_ASSERT(spec.kind == WorkloadKind::Trace,
                 "replay window needs a trace workload, got %s",
                 workloadKindName(spec.kind));
    std::vector<TraceEntry> kept;
    std::uint64_t idx = 0; ///< index within the windowed sequence
    for (const TraceEntry &e : trace.entries()) {
        if (e.cycle < spec.windowBegin)
            continue;
        if (e.cycle >= spec.windowEnd)
            break;
        const std::uint64_t i = idx++;
        if (spec.inflate < 1.0 &&
            Rng::doubleFromBits(splitmix(kThinningSalt ^ i)) >=
                spec.inflate) {
            continue;
        }
        TraceEntry w = e;
        w.cycle -= spec.windowBegin;
        kept.push_back(w);
    }
    return TrafficTrace(std::move(kept));
}

std::unique_ptr<TrafficTrace>
loadTraceFile(const std::string &path, std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err != nullptr)
            *err = path + ": cannot open trace file";
        return nullptr;
    }
    std::ostringstream os;
    os << is.rdbuf();
    std::string parseErr;
    auto trace = TrafficTrace::fromCsv(os.str(), &parseErr);
    if (!trace.has_value()) {
        if (err != nullptr)
            *err = path + ": " + parseErr;
        return nullptr;
    }
    return std::make_unique<TrafficTrace>(std::move(*trace));
}

std::unique_ptr<TrafficSource>
makeTrafficSource(const WorkloadSpec &spec, const ColumnConfig &col,
                  const TrafficConfig &traffic, std::string *err)
{
    switch (spec.kind) {
      case WorkloadKind::Steady:
      case WorkloadKind::Churn:
        // Churn reshapes a steady generator from outside (ChurnDriver
        // reprograms flows at frame boundaries); the source is plain.
        return std::make_unique<TrafficGenerator>(col, traffic);
      case WorkloadKind::Bursty:
      case WorkloadKind::Ramp:
        return std::make_unique<TrafficGenerator>(col, traffic, spec);
      case WorkloadKind::Trace: {
        auto trace = loadTraceFile(spec.tracePath, err);
        if (trace == nullptr)
            return nullptr;
        return std::make_unique<TraceReplayer>(col, std::move(*trace),
                                               spec);
      }
    }
    TAQOS_UNREACHABLE("bad workload kind");
}

} // namespace taqos
