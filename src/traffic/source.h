/// \file source.h
/// The traffic-source interface the NetSim engine drives once per cycle.
/// Implementations push newly generated packets into the network's
/// per-flow injector queues: TrafficGenerator (stochastic),
/// TraceReplayer (deterministic replay), and ChipTrafficSource
/// (compute-node injection on the whole-chip fabric).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "noc/metrics.h"
#include "noc/packet.h"
#include "noc/ports.h"

namespace taqos {

class TrafficSource {
  public:
    virtual ~TrafficSource() = default;

    /// Generate this cycle's packets. `injectors` is the network's
    /// canonical per-flow queue vector (Network::injectors()).
    virtual void tick(Cycle now, PacketPool &pool,
                      std::vector<InjectorQueue> &injectors,
                      SimMetrics &metrics) = 0;

    /// Checkpointing: the source's mutable state (RNG streams, replay
    /// cursors, suppression counters) as an opaque word vector. A
    /// stateful source MUST override both or restored runs diverge;
    /// unpackState runs on a freshly built source of the same
    /// configuration.
    virtual std::vector<std::uint64_t> packState() const { return {}; }
    virtual void unpackState(const std::vector<std::uint64_t> &words)
    {
        (void)words;
    }
};

} // namespace taqos
