/// \file workloads.h
/// The two adversarial preemption workloads of Sec. 5.3, plus the
/// full-hotspot fairness workload of Table 2. Both adversarial workloads
/// direct a subset of sources at the node-0 terminal with injection rates
/// well above the 1/64 provisioned share, so the PVC reserved quota is
/// exhausted early in each frame and preemptions ensue.
#pragma once

#include "topo/topology.h"
#include "traffic/pattern.h"

namespace taqos {

/// Table 2: all 64 injectors stream to the node-0 terminal.
/// `ratePerInjector` deep-saturates the single ejection link.
TrafficConfig makeHotspotAll(const ColumnConfig &col,
                             double ratePerInjector = 0.05,
                             NodeId hotspot = 0);

/// Workload 1: only the terminal injector of each node sends to the
/// hotspot; equal priorities but widely different injection rates
/// (5%..20%, average ~14% — above the 12.5% saturation share).
TrafficConfig makeWorkload1(const ColumnConfig &col, NodeId hotspot = 0);

/// Workload 2: all eight injectors of node 7 (pressuring one downstream
/// MECS port) plus one injector at node 6 (contending at the destination).
TrafficConfig makeWorkload2(const ColumnConfig &col, NodeId hotspot = 0);

/// The per-source rates used by Workload 1/2 (exposed for the max-min
/// expected-throughput computation and for tests).
const std::vector<double> &workload1Rates();
const std::vector<double> &workload2Rates();

} // namespace taqos
