/// \file workload_spec.h
/// Declarative datacenter-style workload selection. A WorkloadSpec names
/// how offered load evolves over a run — steady Bernoulli injection, a
/// two-state ON/OFF Markov burst process, a diurnal triangle ramp, trace
/// replay with load inflation and a cycle window, or tenant churn (VMs
/// arriving and departing mid-run through the hypervisor) — as one value
/// with a canonical string form:
///
///   steady
///   bursty:on=0.002,off=0.01,gain=4
///   ramp:low=0.25,high=1.75,period=20000
///   trace:path=w.csv,inflate=0.5,begin=0,end=50000,loop=1
///   churn:frames=1,maxvms=5,attack=0
///
/// parse(name()) round-trips, so the same grammar serves the CLIs, the
/// taqos-sweep/v1 JSON record, and the cell-cache spec echo. The spec is
/// an experiment *axis*: SweepSpec carries a list of them, each cell one,
/// and the seed-mixing chain and cell-cache key fold in appendKeyWords()
/// so distinct workloads never collide.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/types.h"

namespace taqos {

class OptionMap;

enum class WorkloadKind {
    Steady, ///< plain fixed-rate Bernoulli injection (the default)
    Bursty, ///< per-flow ON/OFF Markov modulation of the Bernoulli rates
    Ramp,   ///< global triangle-wave (diurnal) rate modulation
    Trace,  ///< trace replay with inflation / window / loop
    Churn,  ///< tenant arrival/departure through OsScheduler (chip only)
};

const char *workloadKindName(WorkloadKind kind);
std::optional<WorkloadKind> parseWorkloadKind(const std::string &name);

struct WorkloadSpec {
    WorkloadKind kind = WorkloadKind::Steady;

    // --- Bursty: two-state Markov chain per flow, stepped once per
    // cycle. While ON a flow injects at gain x its configured rate;
    // while OFF it is silent (its Bernoulli stream is frozen).
    double burstOn = 0.002; ///< P(OFF -> ON) per cycle
    double burstOff = 0.01; ///< P(ON -> OFF) per cycle
    double burstGain = 4.0; ///< rate multiplier while ON

    // --- Ramp: deterministic triangle wave over `rampPeriod` cycles,
    // scaling every flow's rate between `rampLow` and `rampHigh`
    // (stateless: a pure function of the cycle counter).
    double rampLow = 0.25;
    double rampHigh = 1.75;
    Cycle rampPeriod = 20000;

    // --- Trace: replay `tracePath` thinned to `inflate` of its entries
    // (deterministic per-entry hash, so x0.5 is a strict subset of x1),
    // clipped to [windowBegin, windowEnd) and rebased to cycle 0,
    // optionally looping the window forever.
    std::string tracePath;
    double inflate = 1.0;
    Cycle windowBegin = 0;
    Cycle windowEnd = kNoCycle; ///< kNoCycle = to the end of the trace
    bool traceLoop = false;

    // --- Churn: every `churnFrames` QOS frames the tenant mix changes
    // (one VM arrives or departs, capped at `churnMaxVms` live VMs) and
    // the column flow registers are reprogrammed at the frame boundary.
    // `churnAttack` layers the fig5/fig6 adversarial terminal rates on
    // top of the tenant traffic.
    int churnFrames = 1;
    int churnMaxVms = 5;
    bool churnAttack = false;

    /// Kinds implemented as rate modulation inside TrafficGenerator
    /// (and therefore available on columns, chips and fabrics alike).
    bool modulated() const
    {
        return kind == WorkloadKind::Bursty || kind == WorkloadKind::Ramp;
    }

    bool isSteady() const { return kind == WorkloadKind::Steady; }

    /// Canonical single-token string form (grammar in the file comment).
    /// parse(name()) round-trips exactly for every reachable value.
    std::string name() const;

    /// Parse the canonical grammar. Returns nullopt and sets `*err` (when
    /// non-null) to a one-line diagnosis on malformed input; never exits.
    static std::optional<WorkloadSpec> parse(const std::string &s,
                                            std::string *err = nullptr);

    /// Append the canonical content words of this spec (kind tag plus the
    /// parameters of that kind only) for the sweep seed-mix chain and the
    /// cell-cache key. Steady appends a single tag word.
    void appendKeyWords(std::vector<std::uint64_t> &words) const;
};

inline bool
operator==(const WorkloadSpec &a, const WorkloadSpec &b)
{
    return a.name() == b.name();
}

/// Unified CLI workload axis: resolves `workload=` (';'-separated spec
/// strings) plus the shorthand options `trace=PATH` (with `inflate=`,
/// `window=begin:end`, `loop=1`), `burst=on,off,gain` (or `burst=1` for
/// defaults) and `churn=frames[,maxvms[,attack]]` (or `churn=1`) into the
/// list of workload specs a CLI should sweep. Empty when none of the
/// options are present (callers keep their steady default). Exits with
/// the canonical option-error message on malformed input.
std::vector<WorkloadSpec> workloadAxisFromOpts(const OptionMap &opts);

/// The `workload=`-family usage lines shared by the CLIs' help text.
const char *workloadOptionsHelp();

} // namespace taqos
