#include "traffic/workloads.h"

#include "common/assert.h"

namespace taqos {
namespace {

/// The paper specifies only the range (5%..20%) and mean (~14%) of the
/// Workload 1 rates; these concrete values reproduce both. The lowest
/// rates sit at the nodes farthest from the hotspot, so each rare
/// (high-priority) packet travels the whole chain of backlogged sources —
/// "the arrival of a new packet at a source with a low injection rate will
/// often trigger a sequence of preemptions as the packet travels toward
/// the destination" (Sec. 5.3).
const std::vector<double> kW1Rates = {0.20, 0.19, 0.18, 0.16,
                                      0.14, 0.12, 0.09, 0.05};

/// Workload 2: eight injectors at node 7 (indices 0..7) then the one
/// extra injector at node 6. Same 5%..20% spread.
const std::vector<double> kW2Rates = {0.05, 0.08, 0.10, 0.12, 0.14,
                                      0.16, 0.18, 0.20, 0.20};

} // namespace

const std::vector<double> &
workload1Rates()
{
    return kW1Rates;
}

const std::vector<double> &
workload2Rates()
{
    return kW2Rates;
}

TrafficConfig
makeHotspotAll(const ColumnConfig &col, double ratePerInjector,
               NodeId hotspot)
{
    (void)col; // all flows active at a common rate; nothing node-specific

    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.hotspotNode = hotspot;
    t.injectionRate = ratePerInjector;
    return t;
}

TrafficConfig
makeWorkload1(const ColumnConfig &col, NodeId hotspot)
{
    TAQOS_ASSERT(col.numNodes == static_cast<int>(kW1Rates.size()),
                 "Workload 1 is defined for an 8-node column");
    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.hotspotNode = hotspot;
    t.activeFlows.assign(static_cast<std::size_t>(col.numFlows()), false);
    t.flowRates.assign(static_cast<std::size_t>(col.numFlows()), -1.0);
    for (NodeId node = 0; node < col.numNodes; ++node) {
        const FlowId f = col.flowOf(node, 0); // terminal injector only
        t.activeFlows[static_cast<std::size_t>(f)] = true;
        t.flowRates[static_cast<std::size_t>(f)] =
            kW1Rates[static_cast<std::size_t>(node)];
    }
    return t;
}

TrafficConfig
makeWorkload2(const ColumnConfig &col, NodeId hotspot)
{
    TAQOS_ASSERT(col.numNodes >= 8, "Workload 2 needs nodes 6 and 7");
    TrafficConfig t;
    t.pattern = TrafficPattern::Hotspot;
    t.hotspotNode = hotspot;
    t.activeFlows.assign(static_cast<std::size_t>(col.numFlows()), false);
    t.flowRates.assign(static_cast<std::size_t>(col.numFlows()), -1.0);
    for (int k = 0; k < col.injectorsPerNode; ++k) {
        const FlowId f = col.flowOf(7, k);
        t.activeFlows[static_cast<std::size_t>(f)] = true;
        t.flowRates[static_cast<std::size_t>(f)] =
            kW2Rates[static_cast<std::size_t>(k)];
    }
    const FlowId f6 = col.flowOf(6, 0);
    t.activeFlows[static_cast<std::size_t>(f6)] = true;
    t.flowRates[static_cast<std::size_t>(f6)] = kW2Rates.back();
    return t;
}

} // namespace taqos
