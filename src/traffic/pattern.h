/// \file pattern.h
/// Synthetic traffic patterns of the evaluation (Sec. 4): uniform random,
/// tornado, and hotspot, with stochastic 1- and 4-flit packets.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace taqos {

enum class TrafficPattern {
    UniformRandom, ///< each packet to a uniformly random other node
    Tornado,       ///< node i -> (i + N/2) mod N: worst case for rings/meshes
    Hotspot,       ///< everything to one terminal (fairness stressor)
};

const char *patternName(TrafficPattern pattern);
std::optional<TrafficPattern> parsePattern(const std::string &name);

struct TrafficConfig {
    TrafficPattern pattern = TrafficPattern::UniformRandom;

    /// Injection rate per injector, flits/cycle, applied to every active
    /// flow unless `flowRates` overrides it.
    double injectionRate = 0.05;

    /// Per-flow injection-rate overrides (flits/cycle); NaN/absent entries
    /// fall back to `injectionRate`. Sized numFlows when used.
    std::vector<double> flowRates;

    /// Flows allowed to inject; empty = all flows active.
    std::vector<bool> activeFlows;

    NodeId hotspotNode = 0;

    /// Probability a packet is short (1 flit); the rest are 4-flit
    /// (request/reply mix).
    double shortPacketProb = 0.5;
    int shortFlits = 1;
    int longFlits = 4;

    /// Stop generating at this cycle (completion-time workloads);
    /// kNoCycle = open-ended.
    Cycle genUntil = kNoCycle;

    /// Source-queue cap: generation pauses while a flow's queue is this
    /// deep (bounds memory far past saturation).
    std::size_t maxQueueDepth = 5000;

    std::uint64_t seed = 0x7a05c0de;

    double meanPacketFlits() const
    {
        return shortPacketProb * shortFlits +
               (1.0 - shortPacketProb) * longFlits;
    }

    bool flowActive(FlowId flow) const
    {
        return activeFlows.empty() ||
               activeFlows[static_cast<std::size_t>(flow)];
    }

    double rateOf(FlowId flow) const
    {
        if (static_cast<std::size_t>(flow) < flowRates.size() &&
            flowRates[static_cast<std::size_t>(flow)] >= 0.0) {
            return flowRates[static_cast<std::size_t>(flow)];
        }
        return injectionRate;
    }
};

} // namespace taqos
