#include "traffic/pattern.h"

#include "common/strings.h"

namespace taqos {

const char *
patternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformRandom: return "uniform";
      case TrafficPattern::Tornado: return "tornado";
      case TrafficPattern::Hotspot: return "hotspot";
    }
    return "?";
}

std::optional<TrafficPattern>
parsePattern(const std::string &name)
{
    const std::string n = strLower(strTrim(name));
    if (n == "uniform" || n == "uniform_random" || n == "ur")
        return TrafficPattern::UniformRandom;
    if (n == "tornado")
        return TrafficPattern::Tornado;
    if (n == "hotspot")
        return TrafficPattern::Hotspot;
    return std::nullopt;
}

} // namespace taqos
