/// \file trace.h
/// Deterministic workload capture and replay. A trace is the exact packet
/// stream a generator (or an external tool) produced — cycle, flow,
/// destination, size — so experiments can be repeated bit-identically
/// across machines, diffed between QOS modes, or driven from externally
/// produced workloads (e.g. memory-access traces of real applications,
/// which the paper's evaluation substitutes with synthetic traffic).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "noc/metrics.h"
#include "noc/packet.h"
#include "noc/ports.h"
#include "topo/topology.h"
#include "traffic/generator.h"
#include "traffic/pattern.h"

namespace taqos {

struct TraceEntry {
    Cycle cycle = 0;
    FlowId flow = kInvalidFlow;
    NodeId dst = kInvalidNode;
    int sizeFlits = 1;
};

class TrafficTrace {
  public:
    TrafficTrace() = default;
    explicit TrafficTrace(std::vector<TraceEntry> entries);

    /// Record the stream a generator would produce over `cycles`.
    static TrafficTrace record(const ColumnConfig &col,
                               const TrafficConfig &traffic, Cycle cycles);

    const std::vector<TraceEntry> &entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }
    Cycle lastCycle() const;
    std::uint64_t totalFlits() const;

    /// Append one entry; entries must be in non-decreasing cycle order.
    void append(TraceEntry entry);

    /// CSV round trip: "cycle,flow,dst,size" per line (with header).
    std::string toCsv() const;
    static TrafficTrace fromCsv(const std::string &csv);

  private:
    std::vector<TraceEntry> entries_;
};

/// Drives injector queues from a trace; interface-compatible with
/// TrafficGenerator's tick. Packets beyond `genUntil`-style horizons are
/// simply absent from the trace.
class TraceReplayer : public TrafficSource {
  public:
    TraceReplayer(const ColumnConfig &col, TrafficTrace trace);

    void tick(Cycle now, PacketPool &pool,
              std::vector<InjectorQueue> &injectors,
              SimMetrics &metrics) override;

    bool exhausted() const { return next_ >= trace_.size(); }

    /// Checkpointing: the replay cursor is the only mutable state.
    std::vector<std::uint64_t> packState() const override
    {
        return {static_cast<std::uint64_t>(next_)};
    }
    void unpackState(const std::vector<std::uint64_t> &words) override
    {
        TAQOS_ASSERT(words.size() == 1, "trace-replayer restore mismatch");
        next_ = static_cast<std::size_t>(words[0]);
    }

  private:
    ColumnConfig col_;
    TrafficTrace trace_;
    std::size_t next_ = 0;
};

} // namespace taqos
