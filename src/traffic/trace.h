/// \file trace.h
/// Deterministic workload capture and replay. A trace is the exact packet
/// stream a generator (or an external tool) produced — cycle, flow,
/// destination, size — so experiments can be repeated bit-identically
/// across machines, diffed between QOS modes, or driven from externally
/// produced workloads (e.g. memory-access traces of real applications,
/// which the paper's evaluation substitutes with synthetic traffic).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "noc/metrics.h"
#include "noc/packet.h"
#include "noc/ports.h"
#include "topo/topology.h"
#include "traffic/generator.h"
#include "traffic/pattern.h"
#include "traffic/workload_spec.h"

namespace taqos {

struct TraceEntry {
    Cycle cycle = 0;
    FlowId flow = kInvalidFlow;
    NodeId dst = kInvalidNode;
    int sizeFlits = 1;
};

class TrafficTrace {
  public:
    TrafficTrace() = default;
    explicit TrafficTrace(std::vector<TraceEntry> entries);

    /// Record the stream a generator would produce over `cycles`.
    static TrafficTrace record(const ColumnConfig &col,
                               const TrafficConfig &traffic, Cycle cycles);

    const std::vector<TraceEntry> &entries() const { return entries_; }
    std::size_t size() const { return entries_.size(); }
    Cycle lastCycle() const;
    std::uint64_t totalFlits() const;

    /// Append one entry; entries must be in non-decreasing cycle order.
    void append(TraceEntry entry);

    /// CSV round trip: "cycle,flow,dst,size" per line (with header).
    /// fromCsv diagnoses malformed input — wrong field count, non-numeric
    /// fields, out-of-order cycles — as nullopt plus a one-line message
    /// naming the offending line, instead of silently truncating.
    std::string toCsv() const;
    static std::optional<TrafficTrace> fromCsv(const std::string &csv,
                                               std::string *err = nullptr);

  private:
    std::vector<TraceEntry> entries_;
};

/// Drives injector queues from a trace; interface-compatible with
/// TrafficGenerator's tick. Packets beyond `genUntil`-style horizons are
/// simply absent from the trace.
class TraceReplayer : public TrafficSource {
  public:
    TraceReplayer(const ColumnConfig &col, TrafficTrace trace);

    /// Replay under a Trace-kind WorkloadSpec: the trace is clipped to
    /// the spec's cycle window, rebased to cycle 0 and thinned to the
    /// inflation fraction (see applyReplayWindow in traffic/dynamic.h);
    /// with loop=1 the window repeats forever, each lap offset by the
    /// window length.
    TraceReplayer(const ColumnConfig &col, TrafficTrace trace,
                  const WorkloadSpec &spec);

    void tick(Cycle now, PacketPool &pool,
              std::vector<InjectorQueue> &injectors,
              SimMetrics &metrics) override;

    bool exhausted() const { return !loop_ && next_ >= trace_.size(); }
    const TrafficTrace &trace() const { return trace_; }

    /// Checkpointing: the replay cursor plus the loop lap counter.
    std::vector<std::uint64_t> packState() const override
    {
        return {static_cast<std::uint64_t>(next_), lap_};
    }
    void unpackState(const std::vector<std::uint64_t> &words) override
    {
        TAQOS_ASSERT(words.size() == 2, "trace-replayer restore mismatch");
        next_ = static_cast<std::size_t>(words[0]);
        lap_ = words[1];
    }

  private:
    ColumnConfig col_;
    TrafficTrace trace_;
    std::size_t next_ = 0;
    bool loop_ = false;
    Cycle loopLen_ = 0; ///< lap offset (window length) when looping
    std::uint64_t lap_ = 0;
};

} // namespace taqos
