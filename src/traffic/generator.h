/// \file generator.h
/// Stochastic packet generation: one independent Bernoulli process per
/// injector, seeded deterministically so a run is exactly reproducible
/// (and identical across QOS modes, enabling the Fig. 6 slowdown
/// comparison against the preemption-free reference).
#pragma once

#include <vector>

#include "common/rng.h"
#include "noc/metrics.h"
#include "noc/packet.h"
#include "noc/ports.h"
#include "topo/topology.h"
#include "traffic/pattern.h"
#include "traffic/source.h"

namespace taqos {

class TrafficGenerator : public TrafficSource {
  public:
    TrafficGenerator(const ColumnConfig &col, const TrafficConfig &traffic);

    /// Generate this cycle's packets into the injector queues.
    void tick(Cycle now, PacketPool &pool,
              std::vector<InjectorQueue> &injectors,
              SimMetrics &metrics) override;

    /// Packets whose generation was skipped due to a full source queue.
    std::uint64_t suppressed() const { return suppressed_; }

    /// Destination for one packet of `flow` (exposed for tests).
    NodeId pickDest(FlowId flow);

    /// Checkpointing: the per-flow RNG streams plus the suppression
    /// counter (the rest of the generator is configuration).
    std::vector<std::uint64_t> packState() const override;
    void unpackState(const std::vector<std::uint64_t> &words) override;

  private:
    ColumnConfig col_;
    TrafficConfig traffic_;
    std::vector<Rng> rng_;        ///< one stream per flow
    std::vector<double> genProb_; ///< per-cycle packet probability per flow
    /// Scratch for the batched per-cycle Bernoulli pass (see tick):
    /// advancing all streams in one tight loop lets the independent
    /// xoshiro chains pipeline, which halves the draw cost that dominates
    /// low-rate simulations.
    std::vector<std::uint64_t> draws_;
    std::uint64_t suppressed_ = 0;
};

} // namespace taqos
