/// \file generator.h
/// Stochastic packet generation: one independent Bernoulli process per
/// injector, seeded deterministically so a run is exactly reproducible
/// (and identical across QOS modes, enabling the Fig. 6 slowdown
/// comparison against the preemption-free reference).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "noc/metrics.h"
#include "noc/packet.h"
#include "noc/ports.h"
#include "topo/topology.h"
#include "traffic/pattern.h"
#include "traffic/source.h"
#include "traffic/workload_spec.h"

namespace taqos {

class RateModulator;

class TrafficGenerator : public TrafficSource {
  public:
    TrafficGenerator(const ColumnConfig &col, const TrafficConfig &traffic);
    /// Generate under a dynamic workload: bursty/ramp specs install the
    /// matching RateModulator (traffic/dynamic.h), which scales each
    /// flow's per-cycle probability; every other kind is plain steady
    /// generation. The modulator's streams are split from the traffic
    /// seed, so its draws never perturb the packet streams.
    TrafficGenerator(const ColumnConfig &col, const TrafficConfig &traffic,
                     const WorkloadSpec &workload);
    ~TrafficGenerator() override;

    /// Generate this cycle's packets into the injector queues.
    void tick(Cycle now, PacketPool &pool,
              std::vector<InjectorQueue> &injectors,
              SimMetrics &metrics) override;

    /// Packets whose generation was skipped due to a full source queue.
    std::uint64_t suppressed() const { return suppressed_; }

    /// Destination for one packet of `flow` (exposed for tests).
    NodeId pickDest(FlowId flow);

    /// Reprogram one flow mid-run (the tenant-churn driver's hook; apply
    /// at frame boundaries). An inactive flow's stream freezes — it
    /// consumes no draws — so the change is exactly reproducible at any
    /// shard count and across checkpoint restore.
    void setFlowActive(FlowId flow, bool active);
    void setFlowRate(FlowId flow, double rate);

    /// The installed modulator (null for steady workloads).
    const RateModulator *modulator() const { return mod_.get(); }

    /// Checkpointing: the per-flow RNG streams plus the suppression
    /// counter (the rest of the generator is configuration), followed by
    /// the modulator's words when a modulator is installed.
    std::vector<std::uint64_t> packState() const override;
    void unpackState(const std::vector<std::uint64_t> &words) override;

  private:
    void recomputeProb(FlowId flow);

    ColumnConfig col_;
    TrafficConfig traffic_;
    std::vector<Rng> rng_;        ///< one stream per flow
    std::vector<double> genProb_; ///< per-cycle packet probability per flow
    /// Scratch for the batched per-cycle Bernoulli pass (see tick):
    /// advancing all streams in one tight loop lets the independent
    /// xoshiro chains pipeline, which halves the draw cost that dominates
    /// low-rate simulations.
    std::vector<std::uint64_t> draws_;
    std::uint64_t suppressed_ = 0;
    std::unique_ptr<RateModulator> mod_; ///< null = steady
    std::vector<double> effProb_;        ///< scratch: modulated probabilities
};

} // namespace taqos
