#include "traffic/workload_spec.h"

#include <cstdlib>
#include <cstring>

#include "common/options.h"

namespace taqos {
namespace {

/// Canonical double formatting for name(): shortest form that still
/// round-trips every value the CLIs and specs produce (12 significant
/// digits; the cache key uses the raw bits, so nothing hinges on this).
std::string
fmtDouble(double v)
{
    return strFormat("%.12g", v);
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

bool
parseDoubleTok(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end != tok.c_str() && *end == '\0';
}

bool
parseU64Tok(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end != tok.c_str() && *end == '\0';
}

bool
parseBoolTok(const std::string &tok, bool &out)
{
    if (tok == "1" || tok == "true") {
        out = true;
        return true;
    }
    if (tok == "0" || tok == "false") {
        out = false;
        return true;
    }
    return false;
}

void
setErr(std::string *err, std::string msg)
{
    if (err != nullptr)
        *err = std::move(msg);
}

std::string
validKinds()
{
    return "steady bursty ramp trace churn";
}

} // namespace

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Steady: return "steady";
      case WorkloadKind::Bursty: return "bursty";
      case WorkloadKind::Ramp: return "ramp";
      case WorkloadKind::Trace: return "trace";
      case WorkloadKind::Churn: return "churn";
    }
    return "?";
}

std::optional<WorkloadKind>
parseWorkloadKind(const std::string &name)
{
    const std::string n = strLower(strTrim(name));
    if (n == "steady")
        return WorkloadKind::Steady;
    if (n == "bursty" || n == "burst" || n == "onoff")
        return WorkloadKind::Bursty;
    if (n == "ramp" || n == "diurnal")
        return WorkloadKind::Ramp;
    if (n == "trace" || n == "replay")
        return WorkloadKind::Trace;
    if (n == "churn")
        return WorkloadKind::Churn;
    return std::nullopt;
}

std::string
WorkloadSpec::name() const
{
    switch (kind) {
      case WorkloadKind::Steady:
        return "steady";
      case WorkloadKind::Bursty:
        return strFormat("bursty:on=%s,off=%s,gain=%s",
                         fmtDouble(burstOn).c_str(),
                         fmtDouble(burstOff).c_str(),
                         fmtDouble(burstGain).c_str());
      case WorkloadKind::Ramp:
        return strFormat("ramp:low=%s,high=%s,period=%llu",
                         fmtDouble(rampLow).c_str(),
                         fmtDouble(rampHigh).c_str(),
                         static_cast<unsigned long long>(rampPeriod));
      case WorkloadKind::Trace: {
        std::string s = "trace:path=" + tracePath;
        s += ",inflate=" + fmtDouble(inflate);
        if (windowBegin != 0)
            s += strFormat(",begin=%llu",
                           static_cast<unsigned long long>(windowBegin));
        if (windowEnd != kNoCycle)
            s += strFormat(",end=%llu",
                           static_cast<unsigned long long>(windowEnd));
        if (traceLoop)
            s += ",loop=1";
        return s;
      }
      case WorkloadKind::Churn:
        return strFormat("churn:frames=%d,maxvms=%d,attack=%d", churnFrames,
                         churnMaxVms, churnAttack ? 1 : 0);
    }
    return "?";
}

std::optional<WorkloadSpec>
WorkloadSpec::parse(const std::string &s, std::string *err)
{
    const std::string whole = strTrim(s);
    if (whole.empty()) {
        setErr(err, strFormat(
                        "bad workload '%s': want kind or kind:k=v[,k=v...]",
                        s.c_str()));
        return std::nullopt;
    }

    const std::size_t colon = whole.find(':');
    const std::string kindTok =
        colon == std::string::npos ? whole : whole.substr(0, colon);
    const auto kind = parseWorkloadKind(kindTok);
    if (!kind.has_value()) {
        setErr(err, strFormat("unknown workload kind '%s'; valid: %s",
                              kindTok.c_str(), validKinds().c_str()));
        return std::nullopt;
    }

    WorkloadSpec spec;
    spec.kind = *kind;

    const std::string rest =
        colon == std::string::npos ? "" : whole.substr(colon + 1);
    for (const auto &part : strSplit(rest, ',')) {
        const std::string kv = strTrim(part);
        if (kv.empty())
            continue;
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
            setErr(err,
                   strFormat("bad workload '%s': want kind or "
                             "kind:k=v[,k=v...]",
                             s.c_str()));
            return std::nullopt;
        }
        const std::string key = strLower(strTrim(kv.substr(0, eq)));
        const std::string val = strTrim(kv.substr(eq + 1));
        bool known = true;
        bool ok = true;
        switch (spec.kind) {
          case WorkloadKind::Bursty:
            if (key == "on")
                ok = parseDoubleTok(val, spec.burstOn);
            else if (key == "off")
                ok = parseDoubleTok(val, spec.burstOff);
            else if (key == "gain")
                ok = parseDoubleTok(val, spec.burstGain);
            else
                known = false;
            break;
          case WorkloadKind::Ramp:
            if (key == "low")
                ok = parseDoubleTok(val, spec.rampLow);
            else if (key == "high")
                ok = parseDoubleTok(val, spec.rampHigh);
            else if (key == "period")
                ok = parseU64Tok(val, spec.rampPeriod);
            else
                known = false;
            break;
          case WorkloadKind::Trace:
            if (key == "path")
                spec.tracePath = val;
            else if (key == "inflate")
                ok = parseDoubleTok(val, spec.inflate);
            else if (key == "begin")
                ok = parseU64Tok(val, spec.windowBegin);
            else if (key == "end")
                ok = parseU64Tok(val, spec.windowEnd);
            else if (key == "loop")
                ok = parseBoolTok(val, spec.traceLoop);
            else
                known = false;
            break;
          case WorkloadKind::Churn: {
            std::uint64_t v = 0;
            if (key == "frames") {
                ok = parseU64Tok(val, v) && v >= 1;
                spec.churnFrames = static_cast<int>(v);
            } else if (key == "maxvms") {
                ok = parseU64Tok(val, v) && v >= 1;
                spec.churnMaxVms = static_cast<int>(v);
            } else if (key == "attack") {
                ok = parseBoolTok(val, spec.churnAttack);
            } else {
                known = false;
            }
            break;
          }
          case WorkloadKind::Steady:
            known = false;
            break;
        }
        if (!known) {
            setErr(err,
                   strFormat("unknown workload parameter '%s' for kind '%s'",
                             key.c_str(), workloadKindName(spec.kind)));
            return std::nullopt;
        }
        if (!ok) {
            setErr(err, strFormat("bad workload parameter '%s=%s'",
                                  key.c_str(), val.c_str()));
            return std::nullopt;
        }
    }

    // Semantic bounds, so every reachable WorkloadSpec is runnable.
    std::string bad;
    switch (spec.kind) {
      case WorkloadKind::Bursty:
        if (spec.burstOn <= 0.0 || spec.burstOn > 1.0)
            bad = "on must be in (0, 1]";
        else if (spec.burstOff <= 0.0 || spec.burstOff > 1.0)
            bad = "off must be in (0, 1]";
        else if (spec.burstGain <= 0.0)
            bad = "gain must be > 0";
        break;
      case WorkloadKind::Ramp:
        if (spec.rampLow < 0.0)
            bad = "low must be >= 0";
        else if (spec.rampHigh < spec.rampLow)
            bad = "high must be >= low";
        else if (spec.rampPeriod < 2)
            bad = "period must be >= 2";
        break;
      case WorkloadKind::Trace:
        if (spec.tracePath.empty())
            bad = "path is required";
        else if (!(spec.inflate > 0.0) || spec.inflate > 1.0)
            bad = "inflate must be in (0, 1]";
        else if (spec.windowEnd <= spec.windowBegin)
            bad = "end must be > begin";
        else if (spec.traceLoop && spec.windowEnd == kNoCycle)
            bad = "loop=1 needs a finite end=";
        break;
      case WorkloadKind::Churn:
      case WorkloadKind::Steady:
        break;
    }
    if (!bad.empty()) {
        setErr(err, strFormat("bad workload '%s': %s", s.c_str(),
                              bad.c_str()));
        return std::nullopt;
    }
    return spec;
}

void
WorkloadSpec::appendKeyWords(std::vector<std::uint64_t> &words) const
{
    words.push_back(static_cast<std::uint64_t>(kind));
    switch (kind) {
      case WorkloadKind::Steady:
        break;
      case WorkloadKind::Bursty:
        words.push_back(doubleBits(burstOn));
        words.push_back(doubleBits(burstOff));
        words.push_back(doubleBits(burstGain));
        break;
      case WorkloadKind::Ramp:
        words.push_back(doubleBits(rampLow));
        words.push_back(doubleBits(rampHigh));
        words.push_back(rampPeriod);
        break;
      case WorkloadKind::Trace: {
        // The path contributes content, not identity: hash its bytes so
        // two specs replaying different files never share a key.
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (unsigned char ch : tracePath)
            h = (h ^ ch) * 0x100000001b3ull;
        words.push_back(h);
        words.push_back(doubleBits(inflate));
        words.push_back(windowBegin);
        words.push_back(windowEnd);
        words.push_back(traceLoop ? 1 : 0);
        break;
      }
      case WorkloadKind::Churn:
        words.push_back(static_cast<std::uint64_t>(churnFrames));
        words.push_back(static_cast<std::uint64_t>(churnMaxVms));
        words.push_back(churnAttack ? 1 : 0);
        break;
    }
}

namespace {

/// Shorthand validation shares parse()'s semantic checks: round the spec
/// through its canonical name and surface any diagnosis as the one
/// canonical option error.
WorkloadSpec
validatedOrDie(const WorkloadSpec &spec)
{
    std::string err;
    const auto parsed = WorkloadSpec::parse(spec.name(), &err);
    if (!parsed.has_value())
        optionError(err);
    return *parsed;
}

} // namespace

std::vector<WorkloadSpec>
workloadAxisFromOpts(const OptionMap &opts)
{
    std::vector<WorkloadSpec> out;

    const std::string w = opts.get("workload", "");
    for (const auto &part : strSplit(w, ';')) {
        const std::string tok = strTrim(part);
        if (tok.empty())
            continue;
        std::string err;
        const auto spec = WorkloadSpec::parse(tok, &err);
        if (!spec.has_value())
            optionError(err);
        out.push_back(*spec);
    }

    if (opts.has("trace")) {
        WorkloadSpec t;
        t.kind = WorkloadKind::Trace;
        t.tracePath = opts.get("trace", "");
        if (t.tracePath.empty())
            optionError("bad trace '': want trace=FILE");
        const std::string inflate = opts.get("inflate", "");
        if (!inflate.empty() && !parseDoubleTok(inflate, t.inflate))
            optionError(strFormat(
                "bad inflate '%s': want a fraction in (0, 1]",
                inflate.c_str()));
        const std::string window = opts.get("window", "");
        if (!window.empty()) {
            const auto parts = strSplit(window, ':');
            std::uint64_t b = 0;
            std::uint64_t e = 0;
            if (parts.size() != 2 || !parseU64Tok(strTrim(parts[0]), b) ||
                !parseU64Tok(strTrim(parts[1]), e)) {
                optionError(strFormat(
                    "bad window '%s': want begin:end (cycles)",
                    window.c_str()));
            }
            t.windowBegin = b;
            t.windowEnd = e;
        }
        t.traceLoop = opts.getBool("loop", false);
        out.push_back(validatedOrDie(t));
    } else if (opts.has("inflate") || opts.has("window") ||
               opts.has("loop")) {
        optionError("inflate=/window=/loop= need trace=FILE");
    }

    if (opts.has("burst")) {
        WorkloadSpec b;
        b.kind = WorkloadKind::Bursty;
        const std::string v = opts.get("burst", "");
        if (v != "1") {
            const auto parts = strSplit(v, ',');
            if (parts.size() != 3 ||
                !parseDoubleTok(strTrim(parts[0]), b.burstOn) ||
                !parseDoubleTok(strTrim(parts[1]), b.burstOff) ||
                !parseDoubleTok(strTrim(parts[2]), b.burstGain)) {
                optionError(strFormat(
                    "bad burst '%s': want on,off,gain or burst=1",
                    v.c_str()));
            }
        }
        out.push_back(validatedOrDie(b));
    }

    if (opts.has("churn")) {
        WorkloadSpec c;
        c.kind = WorkloadKind::Churn;
        const std::string v = opts.get("churn", "");
        if (v != "1") {
            const auto parts = strSplit(v, ',');
            std::uint64_t frames = 0;
            bool ok = !parts.empty() && parts.size() <= 3 &&
                      parseU64Tok(strTrim(parts[0]), frames) && frames >= 1;
            if (ok)
                c.churnFrames = static_cast<int>(frames);
            if (ok && parts.size() >= 2) {
                std::uint64_t maxVms = 0;
                ok = parseU64Tok(strTrim(parts[1]), maxVms) && maxVms >= 1;
                c.churnMaxVms = static_cast<int>(maxVms);
            }
            if (ok && parts.size() == 3)
                ok = parseBoolTok(strTrim(parts[2]), c.churnAttack);
            if (!ok) {
                optionError(strFormat(
                    "bad churn '%s': want frames[,maxvms[,attack]] or "
                    "churn=1",
                    v.c_str()));
            }
        }
        out.push_back(validatedOrDie(c));
    }

    return out;
}

const char *
workloadOptionsHelp()
{
    return "  workload=SPEC[;SPEC]  workload specs "
           "(steady | bursty:on=,off=,gain= | ramp:low=,high=,period= |\n"
           "                        trace:path=,... | "
           "churn:frames=,maxvms=,attack=)\n"
           "  trace=FILE            replay a recorded trace "
           "(inflate=F window=b:e loop=1 refine it)\n"
           "  burst=on,off,gain     ON/OFF Markov bursty shorthand "
           "(burst=1 for defaults)\n"
           "  churn=frames[,vms[,a]] tenant-churn shorthand "
           "(churn=1 for defaults)\n";
}

} // namespace taqos
