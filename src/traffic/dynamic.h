/// \file dynamic.h
/// Dynamic-load machinery behind WorkloadSpec: per-cycle rate modulators
/// that wrap the Bernoulli generator (ON/OFF Markov bursts, diurnal
/// triangle ramps), the deterministic trace-inflation transform, and the
/// makeTrafficSource factory that turns a (WorkloadSpec, TrafficConfig)
/// pair into a ready TrafficSource.
///
/// Modulators plug *into* TrafficGenerator (see its workload constructor)
/// rather than wrapping it from outside, so every embedding of the
/// generator — plain columns, ChipTrafficSource, FabricTrafficSource —
/// inherits bursty/ramp workloads unchanged, and the generator's
/// packState/unpackState covers the modulator words so checkpoint/restore
/// stays bit-identical.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "traffic/source.h"
#include "traffic/workload_spec.h"

namespace taqos {

struct ColumnConfig;
struct TrafficConfig;
class TrafficTrace;

/// Per-cycle injection-rate scaling. advance() is called exactly once per
/// generated cycle, in cycle order; scaleOf() reads the scale the current
/// cycle applies to one flow (0 silences the flow and freezes its
/// Bernoulli stream, keeping the draw sequence deterministic).
class RateModulator {
  public:
    virtual ~RateModulator() = default;

    virtual void advance(Cycle now) = 0;
    virtual double scaleOf(FlowId flow) const = 0;

    /// Checkpointing, same contract as TrafficSource::packState: the
    /// modulator's mutable words, restored onto a freshly built modulator
    /// of the same configuration.
    virtual std::vector<std::uint64_t> packState() const { return {}; }
    virtual void unpackState(const std::vector<std::uint64_t> &words)
    {
        TAQOS_ASSERT(words.empty(), "stateless modulator got state words");
    }
};

/// Two-state Markov chain per flow: OFF -> ON with probability `on` per
/// cycle, ON -> OFF with `off`; a flow injects at gain x its configured
/// rate while ON and is silent while OFF. Streams are split from the
/// traffic seed, independent of the per-flow packet streams.
class OnOffModulator : public RateModulator {
  public:
    OnOffModulator(const WorkloadSpec &spec, int numFlows,
                   std::uint64_t seed);

    void advance(Cycle now) override;
    double scaleOf(FlowId flow) const override;

    std::vector<std::uint64_t> packState() const override;
    void unpackState(const std::vector<std::uint64_t> &words) override;

    bool onState(FlowId flow) const
    {
        return on_[static_cast<std::size_t>(flow)];
    }

  private:
    WorkloadSpec spec_;
    std::vector<Rng> rng_;  ///< one chain stream per flow
    std::vector<bool> on_;  ///< current Markov state per flow
};

/// Deterministic triangle wave: every flow's rate scales between `low`
/// (at phase 0) and `high` (at phase period/2), a pure function of the
/// cycle counter — no mutable state, nothing to checkpoint.
class RampModulator : public RateModulator {
  public:
    explicit RampModulator(const WorkloadSpec &spec);

    void advance(Cycle now) override;
    double scaleOf(FlowId flow) const override;

    /// The wave itself, exposed for tests.
    static double scaleAt(const WorkloadSpec &spec, Cycle now);

  private:
    WorkloadSpec spec_;
    double scale_;
};

/// Modulator for a spec's kind (nullptr for non-modulated kinds). `seed`
/// should be the traffic seed; the modulator derives its own independent
/// streams from it.
std::unique_ptr<RateModulator> makeRateModulator(const WorkloadSpec &spec,
                                                 int numFlows,
                                                 std::uint64_t seed);

/// The ximulator-style load-inflation + window transform for trace
/// replay: clip entries to [windowBegin, windowEnd), rebase them to
/// cycle 0, then keep each entry independently with probability
/// `inflate` using a deterministic per-entry hash — so the kept set at
/// x0.5 is a strict subset of the kept set at x1 of the same window,
/// and the result is identical on every machine.
TrafficTrace applyReplayWindow(const TrafficTrace &trace,
                               const WorkloadSpec &spec);

/// Build the TrafficSource a workload calls for on one column:
/// steady/churn -> TrafficGenerator (churn dynamics live in the driver),
/// bursty/ramp -> TrafficGenerator with the matching modulator,
/// trace -> TraceReplayer over the inflated window (loading `tracePath`).
/// Returns nullptr and sets `*err` when the trace cannot be loaded.
std::unique_ptr<TrafficSource>
makeTrafficSource(const WorkloadSpec &spec, const ColumnConfig &col,
                  const TrafficConfig &traffic, std::string *err = nullptr);

/// Load + parse a CSV trace file with a diagnosed error ("<path>: <why>").
std::unique_ptr<TrafficTrace> loadTraceFile(const std::string &path,
                                            std::string *err = nullptr);

} // namespace taqos
