#include "exp/cell_cache.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "exp/json_writer.h"
#include "sim/engine_salt.h"

namespace taqos {
namespace {

/// splitmix64-strength combine (same construction as the sweep's seed
/// derivation: order-sensitive, avalanche on every word).
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

/// Exact double round-trip: C hexfloat in, strtod out.
std::string
hexFloat(double v)
{
    return strFormat("%a", v);
}

bool
parseHexFloat(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end != nullptr && *end == '\0';
}

} // namespace

CellCache::CellCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
}

std::uint64_t
CellCache::cellKey(const CellSpec &cell)
{
    std::uint64_t h = kEngineSalt;
    h = mix(h, static_cast<std::uint64_t>(cell.scenario));
    h = mix(h, static_cast<std::uint64_t>(cell.topology));
    h = mix(h, static_cast<std::uint64_t>(cell.pattern));
    h = mix(h, static_cast<std::uint64_t>(cell.mode));
    h = mix(h, doubleBits(cell.rate));
    h = mix(h, static_cast<std::uint64_t>(cell.workload));
    h = mix(h, static_cast<std::uint64_t>(cell.placement));
    // Mirror of the sweep's seed policy: only a non-steady workload spec
    // joins the key, so every fragment stored before the dynamic-workload
    // axis existed keeps its key (and stays a hit).
    if (!cell.workloadSpec.isSteady()) {
        std::vector<std::uint64_t> words;
        cell.workloadSpec.appendKeyWords(words);
        for (std::uint64_t w : words)
            h = mix(h, w);
    }
    h = mix(h, static_cast<std::uint64_t>(cell.replicate));
    h = mix(h, cell.seed);
    h = mix(h, cell.phases.warmup);
    h = mix(h, cell.phases.measure);
    h = mix(h, cell.phases.drain);
    h = mix(h, cell.genCycles);
    return h;
}

std::string
CellCache::fragmentName(std::uint64_t key)
{
    return strFormat("%016llx.cell", static_cast<unsigned long long>(key));
}

std::string
CellCache::path(std::uint64_t key) const
{
    return dir_ + "/" + fragmentName(key);
}

/// The spec echo line: a human-auditable (and collision-proof) record
/// of the coordinates the key was derived from.
static std::string
specLine(const CellSpec &c)
{
    std::string line = strFormat(
        "spec %s %s %s %s %s %d %d %d %llu %llu %llu %llu %llu",
        scenarioName(c.scenario), topologyName(c.topology),
        patternName(c.pattern), qosModeName(c.mode), hexFloat(c.rate).c_str(),
        c.workload, c.placement, c.replicate,
        static_cast<unsigned long long>(c.seed),
        static_cast<unsigned long long>(c.phases.warmup),
        static_cast<unsigned long long>(c.phases.measure),
        static_cast<unsigned long long>(c.phases.drain),
        static_cast<unsigned long long>(c.genCycles));
    // Appended only for non-steady cells, so pre-existing steady
    // fragments still match their echo line byte for byte.
    if (!c.workloadSpec.isSteady())
        line += " w=" + c.workloadSpec.name();
    return line;
}

bool
CellCache::load(const CellSpec &cell, CellResult &out) const
{
    const std::uint64_t key = cellKey(cell);
    std::ifstream is(path(key));
    if (!is)
        return false;

    std::string line;
    if (!std::getline(is, line) || line != kCellCacheSchema)
        return false;
    if (!std::getline(is, line) ||
        line != "key " + strFormat("%016llx",
                                   static_cast<unsigned long long>(key)))
        return false;
    if (!std::getline(is, line) || line != specLine(cell))
        return false;

    std::size_t count = 0;
    {
        if (!std::getline(is, line))
            return false;
        std::istringstream hs(line);
        std::string word;
        if (!(hs >> word >> count) || word != "metrics")
            return false;
    }

    CellResult res;
    res.spec = cell;
    for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(is, line))
            return false;
        std::istringstream ls(line);
        std::string name, tok;
        if (!(ls >> name >> tok))
            return false;
        double v = 0.0;
        if (!parseHexFloat(tok, v))
            return false;
        res.put(std::move(name), v);
    }
    if (!std::getline(is, line) || line != "end")
        return false;

    out = std::move(res);
    return true;
}

bool
CellCache::store(const CellSpec &cell, const CellResult &res) const
{
    const std::uint64_t key = cellKey(cell);
    std::string body = std::string(kCellCacheSchema) + "\n";
    body += "key " +
            strFormat("%016llx", static_cast<unsigned long long>(key)) + "\n";
    body += specLine(cell) + "\n";
    body += strFormat("metrics %zu", res.metrics.size()) + "\n";
    for (const auto &[name, v] : res.metrics)
        body += name + " " + hexFloat(v) + "\n";
    body += "end\n";

    // Write-then-rename: a concurrent reader sees either the old
    // fragment or the complete new one, never a torn write.
    const std::string final = path(key);
    const std::string tmp = final + ".tmp";
    if (!writeTextFile(tmp, body))
        return false;
    std::error_code ec;
    std::filesystem::rename(tmp, final, ec);
    return !ec;
}

} // namespace taqos
