/// \file json_writer.h
/// Minimal streaming JSON emitter shared by the experiment-sweep engine
/// (src/exp/sweep.*) and the benchmark binaries' BENCH_*.json snapshots.
/// Output is pretty-printed with stable number formatting so identical
/// results serialize to identical bytes — the property the sweep engine's
/// parallel-vs-serial determinism test asserts on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace taqos {

/// Escape a string for inclusion inside JSON double quotes.
std::string jsonEscape(std::string_view s);

/// Format a double the way the writer does: integers without a decimal
/// point, everything else with up to 12 significant digits; non-finite
/// values become null.
std::string jsonNumber(double v);

class JsonWriter {
  public:
    JsonWriter() = default;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /// Emit a key inside an object; must be followed by a value or a
    /// begin*() call.
    JsonWriter &key(std::string_view k);

    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }

    /// key + value in one call.
    template <typename T>
    JsonWriter &field(std::string_view k, const T &v)
    {
        key(k);
        return value(v);
    }
    JsonWriter &beginObject(std::string_view k)
    {
        key(k);
        return beginObject();
    }
    JsonWriter &beginArray(std::string_view k)
    {
        key(k);
        return beginArray();
    }

    /// Finished document (all containers must be closed).
    const std::string &str() const { return out_; }

  private:
    void separate(); ///< comma/newline/indent before the next element
    void raw(std::string_view s) { out_.append(s); }

    std::string out_;
    /// One entry per open container: number of elements emitted so far.
    std::vector<int> counts_;
    bool pendingKey_ = false;
};

/// Write `content` to `path`; returns false (and logs) on failure.
bool writeTextFile(const std::string &path, const std::string &content);

} // namespace taqos
