#include "exp/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/assert.h"
#include "common/log.h"
#include "common/strings.h"

namespace taqos {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integers (the common case for counters and cycle values) print
    // exactly; everything else keeps 12 significant digits, enough to
    // round-trip every metric the simulator produces while staying free
    // of float noise like 0.060000000000000005.
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return strFormat("%.0f", v);
    return strFormat("%.12g", v);
}

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (counts_.empty())
        return;
    if (counts_.back() > 0)
        raw(",");
    raw("\n");
    out_.append(2 * counts_.size(), ' ');
    ++counts_.back();
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    raw("{");
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    TAQOS_ASSERT(!counts_.empty(), "endObject with no open container");
    const int n = counts_.back();
    counts_.pop_back();
    if (n > 0) {
        raw("\n");
        out_.append(2 * counts_.size(), ' ');
    }
    raw("}");
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    raw("[");
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    TAQOS_ASSERT(!counts_.empty(), "endArray with no open container");
    const int n = counts_.back();
    counts_.pop_back();
    if (n > 0) {
        raw("\n");
        out_.append(2 * counts_.size(), ' ');
    }
    raw("]");
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    TAQOS_ASSERT(!pendingKey_, "key() twice without a value");
    separate();
    raw("\"");
    raw(jsonEscape(k));
    raw("\": ");
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    raw(jsonNumber(v));
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    raw(strFormat("%lld", static_cast<long long>(v)));
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    raw(strFormat("%llu", static_cast<unsigned long long>(v)));
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    raw(v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    raw("\"");
    raw(jsonEscape(v));
    raw("\"");
    return *this;
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        TAQOS_LOG_ERROR("cannot write %s", path.c_str());
        return false;
    }
    const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (n != content.size()) {
        TAQOS_LOG_ERROR("short write to %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace taqos
