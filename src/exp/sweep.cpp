#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "chip/churn.h"
#include "chip/os.h"
#include "common/assert.h"
#include "common/strings.h"
#include "core/experiments.h"
#include "core/maxmin.h"
#include "exp/cell_cache.h"
#include "exp/json_writer.h"
#include "sim/chip_sim.h"
#include "sim/column_sim.h"
#include "sim/shard_plan.h"
#include "traffic/workloads.h"

namespace taqos {
namespace {

/// splitmix64-strength hash combine for per-cell seed derivation: the
/// seed depends only on the spec and the cell coordinates, never on
/// execution order — the root of the parallel == serial guarantee.
std::uint64_t
mixSeed(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
rateBits(double rate)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof rate);
    std::memcpy(&bits, &rate, sizeof bits);
    return bits;
}

std::uint64_t
cellSeed(const SweepSpec &spec, const CellSpec &cell)
{
    if (!spec.mixSeeds)
        return spec.baseSeed;
    std::uint64_t h = spec.baseSeed;
    h = mixSeed(h, static_cast<std::uint64_t>(cell.scenario));
    h = mixSeed(h, static_cast<std::uint64_t>(cell.topology));
    h = mixSeed(h, static_cast<std::uint64_t>(cell.pattern));
    h = mixSeed(h, static_cast<std::uint64_t>(cell.mode));
    h = mixSeed(h, rateBits(cell.rate));
    h = mixSeed(h, static_cast<std::uint64_t>(cell.workload));
    h = mixSeed(h, static_cast<std::uint64_t>(cell.placement));
    // A non-steady workload spec changes the cell's dynamics, so its
    // canonical words join the mix; steady cells skip it entirely and
    // keep the seeds every pre-existing sweep derived.
    if (!cell.workloadSpec.isSteady()) {
        std::vector<std::uint64_t> words;
        cell.workloadSpec.appendKeyWords(words);
        for (std::uint64_t w : words)
            h = mixSeed(h, w);
    }
    h = mixSeed(h, static_cast<std::uint64_t>(cell.replicate));
    return h;
}

ColumnConfig
cellColumn(const CellSpec &cell)
{
    return paperColumn(cell.topology, cell.mode);
}

void
putCommonColumnMetrics(CellResult &res, const ColumnSim &sim)
{
    const SimMetrics &m = sim.metrics();
    res.put("avg_latency", m.latency.mean());
    res.put("p95_latency", m.latencyHist.percentile(0.95));
    res.put("preemption_packet_rate", m.preemptionPacketRate());
    res.put("preemption_hop_rate", m.preemptionHopRate());
    res.put("window_flits", static_cast<double>(m.windowFlits()));
    res.put("offered_packets", static_cast<double>(m.measuredGenerated));
    res.put("delivered_packets", static_cast<double>(m.latency.count()));
}

/// The two plain-column scenarios are split into build / collect so a
/// replicate group sharing its traffic seed can warm one sim, snapshot
/// it, and fork the remaining replicates from the checkpoint — the
/// continuation is bit-identical to each replicate's own cold run.
std::unique_ptr<ColumnSim>
buildColumnCellSim(const CellSpec &cell)
{
    const ColumnConfig col = cellColumn(cell);
    TrafficConfig traffic;
    if (cell.scenario == Scenario::Hotspot) {
        traffic = makeHotspotAll(col, cell.rate);
    } else {
        traffic.pattern = cell.pattern;
        traffic.injectionRate = cell.rate;
    }
    traffic.seed = cell.seed;
    auto sim =
        std::make_unique<ColumnSim>(col, traffic, cell.workloadSpec);
    sim->configure({.shards = cell.shards});
    sim->setMeasureWindow(cell.phases.warmup, cell.phases.measureEnd());
    return sim;
}

CellResult
collectColumnCellMetrics(const CellSpec &cell, const ColumnSim &sim)
{
    const SimMetrics &m = sim.metrics();
    CellResult res;
    res.spec = cell;
    putCommonColumnMetrics(res, sim);
    if (cell.scenario == Scenario::Hotspot) {
        RunningStat rs;
        for (auto flits : m.flowFlits)
            rs.push(static_cast<double>(flits));
        res.put("mean_flits", rs.mean());
        res.put("min_flits", rs.min());
        res.put("max_flits", rs.max());
        res.put("stddev_flits", rs.stddev());
        res.put("preemptions", static_cast<double>(m.preemptionEvents));
    } else {
        res.put("throughput", m.throughputFlitsPerCycle(cell.phases.measure) /
                                  sim.cfg().numFlows());
        const double delivered = static_cast<double>(m.latency.count());
        const double offered = static_cast<double>(m.measuredGenerated);
        res.put("saturated",
                offered > 0.0 && delivered < 0.95 * offered ? 1.0 : 0.0);
    }
    return res;
}

CellResult
runColumnCell(const CellSpec &cell)
{
    auto sim = buildColumnCellSim(cell);
    sim->run(cell.phases.total());
    return collectColumnCellMetrics(cell, *sim);
}

/// Can cells of this shape share a warm checkpoint across replicates?
/// Only the plain fixed-horizon column scenarios qualify (the
/// adversarial and chip scenarios run to drain from cycle zero).
bool
warmShareable(const CellSpec &cell)
{
    return (cell.scenario == Scenario::LatencyLoad ||
            cell.scenario == Scenario::Hotspot) &&
           cell.phases.warmup > 0;
}

/// Dynamics key ignoring the replicate index: cells agreeing on it run
/// the same simulation through the warmup. With mixed seeds each
/// replicate's seed differs, so groups collapse to singletons and the
/// cold path runs as before.
std::uint64_t
warmGroupKey(const CellSpec &cell)
{
    CellSpec k = cell;
    k.replicate = 0;
    return CellCache::cellKey(k);
}

/// Run one shared-warmup group: the first replicate's sim carries the
/// warmup and is snapshotted at the warmup boundary; every later
/// replicate restores the snapshot and runs only measure + drain.
void
runColumnGroup(const std::vector<CellSpec> &cells,
               const std::vector<std::size_t> &unit,
               std::vector<CellResult> &out)
{
    const CellSpec &first = cells[unit[0]];
    auto warm = buildColumnCellSim(first);
    warm->run(first.phases.warmup);
    std::string snapshot;
    {
        std::ostringstream os;
        warm->saveCheckpoint(os);
        snapshot = os.str();
    }
    warm->run(first.phases.total() - first.phases.warmup);
    out[unit[0]] = collectColumnCellMetrics(first, *warm);

    for (std::size_t j = 1; j < unit.size(); ++j) {
        const CellSpec &cell = cells[unit[j]];
        auto sim = buildColumnCellSim(cell);
        std::istringstream is(snapshot);
        std::string err;
        const bool ok = sim->restoreCheckpoint(is, &err);
        TAQOS_ASSERT(ok, "warm-group restore failed: %s", err.c_str());
        sim->run(cell.phases.total() - cell.phases.warmup);
        out[unit[j]] = collectColumnCellMetrics(cell, *sim);
    }
}

CellResult
runAdversarialCell(const CellSpec &cell)
{
    TAQOS_ASSERT(cell.workload == 1 || cell.workload == 2,
                 "adversarial workload must be 1 or 2");
    TAQOS_ASSERT(cell.workloadSpec.isSteady() ||
                     cell.workloadSpec.modulated(),
                 "adversarial cells take steady/bursty/ramp workloads, "
                 "got %s",
                 workloadKindName(cell.workloadSpec.kind));
    const Cycle gen = cell.genCycles;
    const Cycle budget = gen * 10;

    const ColumnConfig col = cellColumn(cell);
    const TrafficConfig traffic =
        cell.workload == 1 ? makeWorkload1(col) : makeWorkload2(col);
    TrafficConfig finite = traffic;
    finite.genUntil = gen;
    finite.seed = cell.seed;

    ColumnSim sim(col, finite, cell.workloadSpec);
    sim.configure({.shards = cell.shards});
    sim.setMeasureWindow(0, gen);
    const Cycle done = sim.runUntilDrained(budget, gen);
    TAQOS_ASSERT(done != kNoCycle, "%s: run did not drain",
                 topologyName(cell.topology));

    // Preemption-free reference: identical traffic (same seed), same
    // topology, per-flow queueing.
    ColumnConfig colRef = col;
    colRef.mode = QosMode::PerFlowQueue;
    ColumnSim ref(colRef, finite, cell.workloadSpec);
    ref.configure({.shards = cell.shards});
    ref.setMeasureWindow(0, gen);
    const Cycle doneRef = ref.runUntilDrained(budget, gen);
    TAQOS_ASSERT(doneRef != kNoCycle, "%s: reference run did not drain",
                 topologyName(cell.topology));

    const SimMetrics &m = sim.metrics();

    // Expected throughput under max-min fairness: demands are the
    // injection rates; the capacity being shared is what the network
    // actually delivered in the generation window.
    std::vector<double> demands(static_cast<std::size_t>(col.numFlows()),
                                0.0);
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        if (traffic.flowActive(f) && !traffic.activeFlows.empty())
            demands[static_cast<std::size_t>(f)] = traffic.rateOf(f);
    }
    const double capacity =
        std::min(1.0, static_cast<double>(m.windowFlits()) /
                          static_cast<double>(gen));
    const std::vector<double> alloc = maxMinAllocation(demands, capacity);

    RunningStat dev;
    for (FlowId f = 0; f < col.numFlows(); ++f) {
        const double expect = alloc[static_cast<std::size_t>(f)] *
                              static_cast<double>(gen);
        if (expect <= 0.0)
            continue;
        const double got =
            static_cast<double>(m.flowFlits[static_cast<std::size_t>(f)]);
        dev.push(100.0 * (got - expect) / expect);
    }

    CellResult res;
    res.spec = cell;
    res.put("preempted_packets_pct", 100.0 * m.preemptionPacketRate());
    res.put("replayed_hops_pct", 100.0 * m.preemptionHopRate());
    res.put("completion_cycle", static_cast<double>(done));
    res.put("ref_completion_cycle", static_cast<double>(doneRef));
    res.put("slowdown_pct", 100.0 * (static_cast<double>(done) /
                                         static_cast<double>(doneRef) -
                                     1.0));
    res.put("avg_deviation_pct", dev.mean());
    res.put("min_deviation_pct", dev.min());
    res.put("max_deviation_pct", dev.max());
    return res;
}

/// Tenant-churn consolidation cell: the placement preset seeds the
/// initial tenant mix, then a ChurnDriver arrives/departs one VM per
/// epoch (churnFrames QOS frames), reprogramming the live sim's flow
/// registers and compute-flow activity at each frame-aligned epoch
/// boundary. Under churnAttack the column's own terminal flows run the
/// fig. 5 adversarial rates throughout, so preemption is exercised
/// against a shifting tenant mix.
CellResult
runChipChurnCell(const CellSpec &cell)
{
    const auto &placements = vmPlacements();
    TAQOS_ASSERT(cell.placement >= 0 &&
                     static_cast<std::size_t>(cell.placement) <
                         placements.size(),
                 "placement index out of range");
    const VmPlacement &pl =
        placements[static_cast<std::size_t>(cell.placement)];

    ChipNetConfig cfg;
    cfg.column.topology = cell.topology;
    cfg.column.mode = cell.mode;
    cfg.column.numNodes = cfg.chip.nodesY();

    std::vector<ChurnTenant> initial;
    for (const auto &s : pl.servers)
        initial.push_back({s.id, s.threads, s.weight});
    ChurnDriver churn(cfg, initial, cell.workloadSpec, cell.seed);
    cfg.column.pvc = churn.flowRegisters();

    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = cell.rate;
    traffic.genUntil = cell.phases.measureEnd();
    traffic.seed = cell.seed;
    const std::vector<bool> active = churn.activeComputeFlows();
    traffic.activeFlows.assign(active.begin(), active.end());
    if (cell.workloadSpec.churnAttack) {
        // The driver never touches terminal flows, so the attacker's
        // activity and rates survive every reprogramming epoch.
        const auto &rates = workload1Rates();
        traffic.flowRates.assign(
            static_cast<std::size_t>(cfg.column.numFlows()), -1.0);
        for (int row = 0; row < cfg.chip.nodesY(); ++row) {
            const FlowId f = cfg.column.flowOf(row, 0);
            traffic.activeFlows[static_cast<std::size_t>(f)] = true;
            traffic.flowRates[static_cast<std::size_t>(f)] =
                rates[static_cast<std::size_t>(row) % rates.size()];
        }
    }

    ChipSim sim(cfg, traffic);
    sim.configure({.shards = cell.shards});
    sim.setMeasureWindow(cell.phases.warmup, cell.phases.measureEnd());

    // Segment loop: run to each frame-aligned epoch boundary inside the
    // generation horizon, apply that epoch's tenant change, continue.
    const Cycle epochLen = churn.epochLen();
    const Cycle genEnd = traffic.genUntil;
    Cycle now = 0;
    for (int e = 1; static_cast<Cycle>(e) * epochLen < genEnd; ++e) {
        const Cycle boundary = static_cast<Cycle>(e) * epochLen;
        sim.run(boundary - now);
        now = boundary;
        churn.advanceTo(e);
        churn.applyTo(sim);
    }
    const Cycle budget = cell.phases.total() * 4;
    const Cycle drain = sim.runUntilDrained(
        budget > now ? budget - now : 0, genEnd);
    sim.checkInvariants();

    const SimMetrics &m = sim.metrics();
    CellResult res;
    res.spec = cell;
    res.put("drain_cycle",
            drain == kNoCycle ? -1.0 : static_cast<double>(drain));
    res.put("delivered_packets", static_cast<double>(m.deliveredPackets));
    res.put("handoffs", static_cast<double>(sim.handoffs()));
    res.put("preemptions", static_cast<double>(m.preemptionEvents));
    res.put("avg_latency", m.latency.mean());
    res.put("churn_epochs", static_cast<double>(churn.currentEpoch()));
    res.put("churn_arrivals", static_cast<double>(churn.arrivals()));
    res.put("churn_departures", static_cast<double>(churn.departures()));
    res.put("churn_live_vms", static_cast<double>(churn.liveVms()));
    return res;
}

CellResult
runChipConsolidationCell(const CellSpec &cell)
{
    TAQOS_ASSERT(cell.workloadSpec.kind != WorkloadKind::Trace,
                 "trace replay is a column workload; the chip "
                 "consolidation scenario has no embedding for it");
    if (cell.workloadSpec.kind == WorkloadKind::Churn)
        return runChipChurnCell(cell);

    const auto &placements = vmPlacements();
    TAQOS_ASSERT(cell.placement >= 0 &&
                     static_cast<std::size_t>(cell.placement) <
                         placements.size(),
                 "placement index out of range");
    const VmPlacement &pl = placements[static_cast<std::size_t>(cell.placement)];

    ChipNetConfig cfg;
    cfg.column.topology = cell.topology;
    cfg.column.mode = cell.mode;
    cfg.column.numNodes = cfg.chip.nodesY();

    OsScheduler os(cfg.chip);
    for (const auto &s : pl.servers) {
        const auto vm = os.createVm(s.id, s.threads, s.weight);
        TAQOS_ASSERT(vm.has_value(), "VM %d admission failed", s.id);
    }
    TAQOS_ASSERT(os.coScheduleInvariant(), "co-scheduling violated");
    cfg.column.pvc = os.columnFlowRegisters(cfg.columnX(), cfg.column);

    // Every VM-owned compute node streams memory requests at the cell
    // rate to uniformly spread memory-controller rows; terminal flows
    // (the column's own resources) stay quiet.
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.injectionRate = cell.rate;
    traffic.genUntil = cell.phases.measureEnd();
    traffic.seed = cell.seed;
    traffic.activeFlows.assign(
        static_cast<std::size_t>(cfg.column.numFlows()), false);
    for (int row = 0; row < cfg.chip.nodesY(); ++row) {
        for (int k = 1; k < cfg.column.injectorsPerNode; ++k) {
            if (os.ownerOf(NodeCoord{cfg.computeXOf(k), row}) >= 0) {
                traffic.activeFlows[static_cast<std::size_t>(
                    cfg.column.flowOf(row, k))] = true;
            }
        }
    }

    ChipSim sim(cfg, traffic, cell.workloadSpec);
    sim.configure({.shards = cell.shards});
    sim.setMeasureWindow(cell.phases.warmup, cell.phases.measureEnd());
    const Cycle drain =
        sim.runUntilDrained(cell.phases.total() * 4, traffic.genUntil);
    sim.checkInvariants();

    const SimMetrics &m = sim.metrics();
    CellResult res;
    res.spec = cell;
    res.put("drain_cycle",
            drain == kNoCycle ? -1.0 : static_cast<double>(drain));
    res.put("delivered_packets", static_cast<double>(m.deliveredPackets));
    res.put("handoffs", static_cast<double>(sim.handoffs()));
    res.put("preemptions", static_cast<double>(m.preemptionEvents));
    res.put("avg_latency", m.latency.mean());

    for (const auto &s : pl.servers) {
        const VmInfo *vm = os.vm(s.id);
        std::uint64_t flits = 0;
        for (int row = 0; row < cfg.chip.nodesY(); ++row) {
            for (int k = 1; k < cfg.column.injectorsPerNode; ++k) {
                if (os.ownerOf(NodeCoord{cfg.computeXOf(k), row}) != s.id)
                    continue;
                flits += m.flowFlits[static_cast<std::size_t>(
                    cfg.column.flowOf(row, k))];
            }
        }
        const std::string p = strFormat("vm%d_", s.id);
        res.put(p + "weight", static_cast<double>(s.weight));
        res.put(p + "nodes", static_cast<double>(vm->domain.size()));
        res.put(p + "flits", static_cast<double>(flits));
        res.put(p + "flits_per_node",
                static_cast<double>(flits) /
                    static_cast<double>(vm->domain.size()));
    }
    return res;
}

void
emitCellKey(JsonWriter &w, const CellSpec &c)
{
    w.field("topology", topologyName(c.topology));
    w.field("pattern", patternName(c.pattern));
    w.field("mode", qosModeName(c.mode));
    w.field("rate", c.rate);
    w.field("workload", c.workload);
    w.field("placement", c.placement);
    w.field("workload_spec", c.workloadSpec.name());
}

} // namespace

const char *
scenarioName(Scenario s)
{
    switch (s) {
      case Scenario::LatencyLoad: return "latency_load";
      case Scenario::Hotspot: return "hotspot";
      case Scenario::Adversarial: return "adversarial";
      case Scenario::ChipConsolidation: return "chip_consolidation";
    }
    return "?";
}

std::optional<Scenario>
parseScenario(const std::string &name)
{
    const std::string n = strLower(strTrim(name));
    if (n == "latency_load" || n == "latency" || n == "load")
        return Scenario::LatencyLoad;
    if (n == "hotspot")
        return Scenario::Hotspot;
    if (n == "adversarial" || n == "preemption")
        return Scenario::Adversarial;
    if (n == "chip_consolidation" || n == "chip" || n == "consolidation")
        return Scenario::ChipConsolidation;
    return std::nullopt;
}

const std::vector<VmPlacement> &
vmPlacements()
{
    // Preset 0 must stay the paper's consolidated-server mix —
    // runChipConsolidation() and its tests are anchored to it.
    static const std::vector<VmPlacement> kPlacements = {
        {"paper_3vm", {{1, 64, 4}, {2, 48, 2}, {3, 32, 1}}},
        {"equal_3vm", {{1, 48, 1}, {2, 48, 1}, {3, 48, 1}}},
        {"skewed_2vm", {{1, 96, 3}, {2, 64, 1}}},
    };
    return kPlacements;
}

double
CellResult::get(const std::string &name) const
{
    for (const auto &[k, v] : metrics) {
        if (k == name)
            return v;
    }
    TAQOS_ASSERT(false, "cell has no metric '%s'", name.c_str());
    return 0.0;
}

bool
CellResult::has(const std::string &name) const
{
    for (const auto &[k, v] : metrics) {
        (void)v;
        if (k == name)
            return true;
    }
    return false;
}

SweepSpec
SweepSpec::canonical() const
{
    SweepSpec c = *this;
    if (c.topologies.empty())
        c.topologies.assign(std::begin(kAllTopologies),
                            std::end(kAllTopologies));
    if (c.modes.empty())
        c.modes = {QosMode::Pvc};
    if (c.rates.empty())
        c.rates = {0.05};
    if (c.replicates < 1)
        c.replicates = 1;
    if (c.shards < 1)
        c.shards = 1;

    // Axes a scenario does not consume are collapsed to a single
    // canonical value so they never multiply the grid.
    switch (c.scenario) {
      case Scenario::LatencyLoad:
        if (c.patterns.empty())
            c.patterns = {TrafficPattern::UniformRandom};
        c.workloads = {0};
        c.placements = {0};
        break;
      case Scenario::Hotspot:
        c.patterns = {TrafficPattern::Hotspot};
        c.workloads = {0};
        c.placements = {0};
        break;
      case Scenario::Adversarial:
        c.patterns = {TrafficPattern::Hotspot};
        c.rates = {0.0}; // rates come from the workload definition
        if (c.workloads.empty())
            c.workloads = {1, 2};
        c.placements = {0};
        break;
      case Scenario::ChipConsolidation:
        c.patterns = {TrafficPattern::UniformRandom};
        c.workloads = {0};
        if (c.placements.empty())
            c.placements = {0};
        break;
    }

    if (c.workloadSpecs.empty())
        c.workloadSpecs = {WorkloadSpec{}};
    for (const auto &w : c.workloadSpecs) {
        switch (c.scenario) {
          case Scenario::LatencyLoad:
            TAQOS_ASSERT(w.kind != WorkloadKind::Churn,
                         "tenant churn needs the chip_consolidation "
                         "scenario, not %s",
                         scenarioName(c.scenario));
            break;
          case Scenario::Hotspot:
          case Scenario::Adversarial:
            TAQOS_ASSERT(w.isSteady() || w.modulated(),
                         "%s cells take steady/bursty/ramp workloads, "
                         "got %s",
                         scenarioName(c.scenario),
                         workloadKindName(w.kind));
            break;
          case Scenario::ChipConsolidation:
            TAQOS_ASSERT(w.kind != WorkloadKind::Trace,
                         "trace replay is a column workload; the chip "
                         "consolidation scenario has no embedding for it");
            break;
        }
    }
    return c;
}

std::vector<CellSpec>
SweepSpec::expand() const
{
    const SweepSpec c = canonical();
    std::vector<CellSpec> cells;
    for (auto kind : c.topologies) {
        for (auto pattern : c.patterns) {
            for (auto mode : c.modes) {
                for (double rate : c.rates) {
                    for (int workload : c.workloads) {
                        for (int placement : c.placements) {
                            for (const auto &ws : c.workloadSpecs) {
                                for (int rep = 0; rep < c.replicates;
                                     ++rep) {
                                    CellSpec cell;
                                    cell.scenario = c.scenario;
                                    cell.topology = kind;
                                    cell.pattern = pattern;
                                    cell.mode = mode;
                                    cell.rate = rate;
                                    cell.workload = workload;
                                    cell.placement = placement;
                                    cell.workloadSpec = ws;
                                    cell.replicate = rep;
                                    cell.phases = c.phases;
                                    cell.genCycles = c.genCycles;
                                    cell.shards = c.shards;
                                    cell.seed = cellSeed(c, cell);
                                    cells.push_back(cell);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return cells;
}

const RunningStat &
AggregateCell::get(const std::string &name) const
{
    for (const auto &[k, v] : stats) {
        if (k == name)
            return v;
    }
    TAQOS_ASSERT(false, "aggregate has no metric '%s'", name.c_str());
    static const RunningStat kEmpty;
    return kEmpty;
}

std::vector<AggregateCell>
aggregateCells(const SweepSpec &spec, const std::vector<CellResult> &cells)
{
    const int reps = std::max(1, spec.replicates);
    TAQOS_ASSERT(cells.size() % static_cast<std::size_t>(reps) == 0,
                 "cell count %zu not a multiple of replicates %d",
                 cells.size(), reps);
    std::vector<AggregateCell> aggs;
    for (std::size_t base = 0; base < cells.size();
         base += static_cast<std::size_t>(reps)) {
        AggregateCell agg;
        agg.key = cells[base].spec;
        for (const auto &[name, v] : cells[base].metrics) {
            (void)v;
            RunningStat rs;
            for (int r = 0; r < reps; ++r)
                rs.push(cells[base + static_cast<std::size_t>(r)].get(name));
            agg.stats.emplace_back(name, rs);
        }
        aggs.push_back(std::move(agg));
    }
    return aggs;
}

std::string
SweepResult::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "taqos-sweep/v1");
    w.field("name", spec.name);
    w.field("scenario", scenarioName(spec.scenario));

    w.beginObject("spec");
    w.beginArray("topologies");
    for (auto k : spec.topologies)
        w.value(topologyName(k));
    w.endArray();
    w.beginArray("patterns");
    for (auto p : spec.patterns)
        w.value(patternName(p));
    w.endArray();
    w.beginArray("modes");
    for (auto m : spec.modes)
        w.value(qosModeName(m));
    w.endArray();
    w.beginArray("rates");
    for (double r : spec.rates)
        w.value(r);
    w.endArray();
    w.beginArray("workloads");
    for (int x : spec.workloads)
        w.value(x);
    w.endArray();
    w.beginArray("placements");
    for (int x : spec.placements)
        w.value(x);
    w.endArray();
    w.beginArray("workload_specs");
    for (const auto &ws : spec.workloadSpecs)
        w.value(ws.name());
    w.endArray();
    w.field("replicates", spec.replicates);
    w.field("baseSeed", spec.baseSeed);
    w.field("mixSeeds", spec.mixSeeds);
    w.beginObject("phases");
    w.field("warmup", spec.phases.warmup);
    w.field("measure", spec.phases.measure);
    w.field("drain", spec.phases.drain);
    w.endObject();
    w.field("genCycles", spec.genCycles);
    w.endObject();

    w.beginArray("cells");
    for (const auto &cell : cells) {
        w.beginObject();
        emitCellKey(w, cell.spec);
        w.field("replicate", cell.spec.replicate);
        w.field("seed", cell.spec.seed);
        w.beginObject("metrics");
        for (const auto &[name, v] : cell.metrics)
            w.field(name, v);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.beginArray("aggregates");
    for (const auto &agg : aggregates) {
        w.beginObject();
        emitCellKey(w, agg.key);
        w.field("replicates",
                agg.stats.empty()
                    ? 0
                    : static_cast<std::int64_t>(agg.stats[0].second.count()));
        w.beginObject("metrics");
        for (const auto &[name, rs] : agg.stats) {
            w.beginObject(name);
            w.field("mean", rs.mean());
            w.field("stddev", rs.stddev());
            w.field("min", rs.min());
            w.field("max", rs.max());
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str() + "\n";
}

bool
SweepResult::writeJson(const std::string &path) const
{
    return writeTextFile(path, toJson());
}

SweepRunner::SweepRunner(int numThreads)
{
    if (numThreads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        numThreads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    threads_ = numThreads;
}

CellResult
SweepRunner::runCell(const CellSpec &cell)
{
    switch (cell.scenario) {
      case Scenario::LatencyLoad: return runColumnCell(cell);
      case Scenario::Hotspot: return runColumnCell(cell);
      case Scenario::Adversarial: return runAdversarialCell(cell);
      case Scenario::ChipConsolidation:
        return runChipConsolidationCell(cell);
    }
    TAQOS_ASSERT(false, "unknown scenario");
    return CellResult{};
}

namespace {

/// Sidecar magic for runCellCheckpointed (followed by the u64 cell key,
/// then the NetSim checkpoint stream).
constexpr char kSidecarMagic[8] = {'T', 'Q', 'S', 'W', 'C', 'K', 'P', 'T'};

} // namespace

CellResult
SweepRunner::runCellCheckpointed(const CellSpec &cell,
                                 const std::string &ckptFile, bool *restored)
{
    if (restored != nullptr)
        *restored = false;
    if (!warmShareable(cell))
        return runCell(cell);

    const std::uint64_t key = CellCache::cellKey(cell);

    // Warm path: a sidecar keyed to this very cell restores in place of
    // the warmup run.
    {
        std::ifstream is(ckptFile, std::ios::binary);
        char magic[8];
        std::uint64_t fileKey = 0;
        if (is.read(magic, sizeof(magic)) &&
            std::memcmp(magic, kSidecarMagic, sizeof(magic)) == 0 &&
            is.read(reinterpret_cast<char *>(&fileKey), sizeof(fileKey)) &&
            fileKey == key) {
            auto sim = buildColumnCellSim(cell);
            std::string err;
            if (sim->restoreCheckpoint(is, &err)) {
                sim->run(cell.phases.total() - cell.phases.warmup);
                if (restored != nullptr)
                    *restored = true;
                return collectColumnCellMetrics(cell, *sim);
            }
        }
    }

    // Cold path: run the warmup, drop the sidecar, finish the cell.
    auto sim = buildColumnCellSim(cell);
    sim->run(cell.phases.warmup);
    {
        std::ofstream os(ckptFile, std::ios::binary | std::ios::trunc);
        if (os) {
            os.write(kSidecarMagic, sizeof(kSidecarMagic));
            os.write(reinterpret_cast<const char *>(&key), sizeof(key));
            sim->saveCheckpoint(os);
        }
    }
    sim->run(cell.phases.total() - cell.phases.warmup);
    return collectColumnCellMetrics(cell, *sim);
}

SweepResult
SweepRunner::run(const SweepSpec &spec, CellCache *cache) const
{
    const auto t0 = std::chrono::steady_clock::now();

    SweepResult result;
    result.spec = spec.canonical();
    const std::vector<CellSpec> cells = result.spec.expand();
    result.cells.resize(cells.size());

    // Cache probe: hits land directly in their expansion slot; only the
    // misses are executed (and stored back afterwards).
    std::vector<std::size_t> todo;
    todo.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cache != nullptr && cache->load(cells[i], result.cells[i]))
            ++result.cacheHits;
        else
            todo.push_back(i);
    }
    result.cacheMisses = todo.size();

    // Work units: replicate groups that share a warm checkpoint, every
    // other cell a singleton. Grouping is deterministic
    // (first-appearance order over the expansion order).
    std::vector<std::vector<std::size_t>> units;
    {
        std::unordered_map<std::uint64_t, std::size_t> groupOf;
        for (std::size_t i : todo) {
            if (!warmShareable(cells[i])) {
                units.push_back({i});
                continue;
            }
            const auto [it, fresh] =
                groupOf.try_emplace(warmGroupKey(cells[i]), units.size());
            if (fresh)
                units.push_back({i});
            else
                units[it->second].push_back(i);
        }
    }

    const auto runUnit = [&cells, &result](const std::vector<std::size_t> &u) {
        if (u.size() == 1)
            result.cells[u[0]] = runCell(cells[u[0]]);
        else
            runColumnGroup(cells, u, result.cells);
    };

    // Cell workers x intra-run shards must fit the machine (see the
    // class comment for the precedence rules).
    const int workers =
        sweepWorkerBudget(threads_, units.size(), result.spec.shards,
                          std::thread::hardware_concurrency());
    if (workers <= 1) {
        for (const auto &u : units)
            runUnit(u);
    } else {
        // Work-stealing by atomic index: units land in their expansion
        // slots regardless of which worker ran them, so the result is
        // independent of scheduling.
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int t = 0; t < workers; ++t) {
            pool.emplace_back([&units, &next, &runUnit] {
                while (true) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= units.size())
                        return;
                    runUnit(units[i]);
                }
            });
        }
        for (auto &th : pool)
            th.join();
    }

    if (cache != nullptr) {
        for (std::size_t i : todo)
            cache->store(cells[i], result.cells[i]);
    }

    result.aggregates = aggregateCells(result.spec, result.cells);
    result.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    return result;
}

} // namespace taqos
