/// \file cell_cache.h
/// Content-addressed result cache for sweep cells.
///
/// Every cell of an expanded SweepSpec is keyed by a canonical hash of
/// the coordinates that determine its dynamics — scenario, topology,
/// pattern, mode, rate, workload, placement, dynamic-workload spec
/// (when non-steady), replicate, seed, phases and generation horizon —
/// mixed with the build's kEngineSalt. Execution
/// knobs (shard count, runner threads) are deliberately excluded: they
/// are bit-identical by contract, so a cached result is valid under any
/// of them. Bumping kEngineSalt (the contract in sim/engine_salt.h)
/// therefore invalidates every cached cell at once.
///
/// The cache is a flat directory of one small text fragment per cell,
/// named by the 16-hex-digit key. Fragments carry the metric values as
/// C hexfloats (%a), which round-trip doubles exactly, so a sweep that
/// merges cached and fresh cells emits byte-identical JSON to a cold
/// run. A fragment that fails any validation (header, key echo, spec
/// echo, truncation) is treated as a miss, never an error.
#pragma once

#include <cstdint>
#include <string>

#include "exp/sweep.h"

namespace taqos {

/// Fragment schema identifier (first line of every fragment).
inline constexpr const char *kCellCacheSchema = "taqos-cell/v1";

class CellCache {
  public:
    /// Opens (and creates, if needed) the cache directory.
    explicit CellCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /// Canonical content hash of a cell (see file comment for what is
    /// and is not part of the key).
    static std::uint64_t cellKey(const CellSpec &cell);

    /// The fragment filename for a key: 16 lowercase hex digits + ".cell".
    static std::string fragmentName(std::uint64_t key);

    /// Load the cached result for `cell`. On a hit, `out` carries
    /// `cell` as its spec and the cached metrics in their original
    /// emission order. Any malformed or mismatching fragment is a miss.
    bool load(const CellSpec &cell, CellResult &out) const;

    /// Store one finished cell (atomic write-then-rename). Returns
    /// false when the fragment could not be written.
    bool store(const CellSpec &cell, const CellResult &res) const;

  private:
    std::string path(std::uint64_t key) const;

    std::string dir_;
};

} // namespace taqos
