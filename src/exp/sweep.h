/// \file sweep.h
/// Declarative parallel experiment sweeps — the engine behind every paper
/// figure and ablation.
///
/// A SweepSpec names a scenario (latency/load curve, hotspot fairness,
/// adversarial preemption, whole-chip consolidation) and the axes of a
/// grid over it: topology x traffic pattern x QOS mode x injection load x
/// VM placement x replicate seed. SweepSpec::expand() flattens the grid
/// into fully-determined CellSpecs; SweepRunner executes the cells on a
/// std::thread pool and collects per-cell metric records plus per-grid-
/// point aggregates (mean/stddev across the replicate seeds).
///
/// Determinism contract: each cell's RNG seed is derived from the spec
/// alone (never from execution order or wall time) and a cell touches no
/// shared mutable state, so a parallel run is bit-identical to a serial
/// run of the same spec — asserted by tests/exp/test_sweep.cpp and by the
/// CI smoke sweep.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "qos/pvc.h"
#include "sim/sim_config.h"
#include "topo/topology.h"
#include "traffic/pattern.h"
#include "traffic/workload_spec.h"

namespace taqos {

class CellCache;

/// What a cell simulates.
enum class Scenario {
    LatencyLoad,       ///< Fig. 4 family: one column, pattern x rate
    Hotspot,           ///< Table 2: all injectors to one terminal
    Adversarial,       ///< Figs. 5/6: workload 1/2 vs preemption-free ref
    ChipConsolidation, ///< Secs. 1-2: VMs on the full chip
};

const char *scenarioName(Scenario s);
std::optional<Scenario> parseScenario(const std::string &name);

/// One VM the consolidation scenario admits.
struct VmSpec {
    int id = 0;
    int threads = 0;
    std::uint32_t weight = 1;
};

/// Named VM placement presets for the ChipConsolidation scenario (the
/// spec's `placements` axis indexes this table). Preset 0 is the paper's
/// consolidated-server mix.
struct VmPlacement {
    const char *name;
    std::vector<VmSpec> servers;
};

const std::vector<VmPlacement> &vmPlacements();

/// One fully-determined cell of the expanded grid.
struct CellSpec {
    Scenario scenario = Scenario::LatencyLoad;
    TopologyKind topology = TopologyKind::Dps;
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    QosMode mode = QosMode::Pvc;
    double rate = 0.05;  ///< per injector (column) / per node (chip)
    int workload = 0;    ///< Adversarial: 1 or 2
    int placement = 0;   ///< ChipConsolidation: index into vmPlacements()
    /// Dynamic-workload shape driving this cell (steady by default).
    /// A non-steady spec changes the cell's dynamics, so it joins the
    /// seed mix and the cache key; a steady spec leaves both untouched —
    /// pre-existing sweeps keep their seeds and cache fragments.
    WorkloadSpec workloadSpec;
    int replicate = 0;   ///< 0..replicates-1
    std::uint64_t seed = 0; ///< traffic seed for this cell
    RunPhases phases;
    Cycle genCycles = 100000; ///< Adversarial generation horizon
    /// Intra-run shard threads (EngineConfig::shards). An execution knob
    /// like the runner's thread count: bit-identical results by the
    /// sharding contract, so it is neither serialized nor seed-mixed.
    int shards = 1;
};

/// Scalar metrics one cell produced, in a stable emission order.
struct CellResult {
    CellSpec spec;
    std::vector<std::pair<std::string, double>> metrics;

    void put(std::string name, double v)
    {
        metrics.emplace_back(std::move(name), v);
    }
    /// Value of a named metric (asserts when absent).
    double get(const std::string &name) const;
    bool has(const std::string &name) const;
};

/// The grid. Empty axis vectors select the scenario defaults; axes a
/// scenario does not consume are collapsed to one element so they never
/// multiply the grid silently.
struct SweepSpec {
    std::string name = "sweep";
    Scenario scenario = Scenario::LatencyLoad;

    std::vector<TopologyKind> topologies; ///< default: the paper's five
    std::vector<TrafficPattern> patterns; ///< LatencyLoad axis
    std::vector<QosMode> modes;           ///< default: {Pvc}
    std::vector<double> rates;            ///< default: {0.05}
    std::vector<int> workloads;           ///< Adversarial; default: {1, 2}
    std::vector<int> placements;          ///< Chip; default: {0}
    /// Dynamic-workload axis; default: {steady}. Per-scenario legality
    /// (asserted by canonical()): trace replay only drives the column
    /// scenarios (LatencyLoad), churn only ChipConsolidation;
    /// bursty/ramp compose with every scenario.
    std::vector<WorkloadSpec> workloadSpecs;

    /// Replicate seeds per grid point (mean/stddev across them).
    int replicates = 1;
    std::uint64_t baseSeed = 0x7a05c0de;
    /// When true (default) every cell gets an independent seed mixed from
    /// the base seed and the cell coordinates. When false every cell uses
    /// `baseSeed` verbatim — the figure runners use this to stay
    /// bit-identical to the pre-engine serial loops.
    bool mixSeeds = true;

    RunPhases phases;
    Cycle genCycles = 100000;
    /// Intra-run shard threads, copied to every cell (see CellSpec).
    int shards = 1;

    /// Copy with defaults filled in and unused axes collapsed.
    SweepSpec canonical() const;

    /// Flatten the (canonical) grid; cell order is deterministic:
    /// topology-major, then pattern, mode, rate, workload, placement,
    /// workload spec, replicate.
    std::vector<CellSpec> expand() const;
};

/// Mean/stddev/min/max of every metric of one grid point across its
/// replicate seeds.
struct AggregateCell {
    CellSpec key; ///< first replicate's spec
    std::vector<std::pair<std::string, RunningStat>> stats;

    const RunningStat &get(const std::string &name) const;
};

/// Group per-cell results (in expansion order, replicates adjacent) into
/// per-grid-point aggregates.
std::vector<AggregateCell> aggregateCells(const SweepSpec &spec,
                                          const std::vector<CellResult> &cells);

struct SweepResult {
    SweepSpec spec;                      ///< canonical form actually run
    std::vector<CellResult> cells;       ///< expansion order
    std::vector<AggregateCell> aggregates;
    double wallMs = 0.0; ///< not serialized (kept out of the JSON so
                         ///< parallel and serial runs emit identical bytes)
    /// Cache accounting for the run (zero when no cache was passed);
    /// not serialized for the same byte-identity reason as wallMs.
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;

    /// Serialize spec + cells + aggregates (schema taqos-sweep/v1; see
    /// README "The exp/ layer"). Deterministic: depends only on the
    /// metric values, never on thread count or timing.
    std::string toJson() const;
    bool writeJson(const std::string &path) const;
};

/// Executes the cells of a spec on a thread pool. Stateless between runs;
/// safe to reuse.
///
/// Thread budgeting: cell-level workers multiply with the spec's
/// intra-run `shards`, so run() caps the worker count at
/// hardware_concurrency / shards (sweepWorkerBudget in
/// sim/shard_plan.h). An explicit `numThreads` takes precedence up to
/// that cap; shards take the remainder of the machine.
class SweepRunner {
  public:
    /// `numThreads` <= 0 selects std::thread::hardware_concurrency().
    explicit SweepRunner(int numThreads = 0);

    /// Run the spec's cells. With a cache (exp/cell_cache.h), cells
    /// whose content key is already stored are loaded instead of run
    /// and fresh cells are stored back, with the merged output
    /// byte-identical to a cold run. Replicate groups that share their
    /// traffic seed (mixSeeds = false) warm up once and fork the
    /// remaining replicates from a checkpoint of that warm state.
    SweepResult run(const SweepSpec &spec, CellCache *cache = nullptr) const;

    /// Execute one cell (pure: owns every sim it constructs; no shared
    /// mutable state). Exposed for tests and custom drivers.
    static CellResult runCell(const CellSpec &cell);

    /// Execute one cell warm-starting from a checkpoint sidecar file.
    /// The sidecar is an 8-byte magic ("TQSWCKPT") plus the cell's
    /// content key, then a NetSim checkpoint of the warmed sim. When
    /// the file exists and its key matches, the warmup is skipped by
    /// restoring it (bit-identical continuation); otherwise the cell
    /// runs cold and writes the sidecar at the warmup boundary.
    /// `restored`, when non-null, reports which path was taken. Cells
    /// that cannot share warm state (adversarial/chip scenarios, zero
    /// warmup) always run cold and write no sidecar.
    static CellResult runCellCheckpointed(const CellSpec &cell,
                                          const std::string &ckptFile,
                                          bool *restored = nullptr);

    int threads() const { return threads_; }

  private:
    int threads_;
};

} // namespace taqos
