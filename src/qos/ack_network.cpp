#include "qos/ack_network.h"

namespace taqos {

void
AckNetwork::send(Cycle now, int distanceHops, NetPacket *pkt, bool isNack)
{
    AckEvent ev;
    ev.deliverAt = now + static_cast<Cycle>(distanceHops + kBaseDelay);
    ev.pkt = pkt;
    ev.isNack = isNack;
    events_.push(ev);
}

bool
AckNetwork::popDue(Cycle now, AckEvent &event)
{
    if (events_.empty() || events_.top().deliverAt > now)
        return false;
    event = events_.top();
    events_.pop();
    return true;
}

} // namespace taqos
