#include "qos/ack_network.h"

#include <algorithm>
#include <functional>

namespace taqos {

void
AckNetwork::send(Cycle now, int distanceHops, NetPacket *pkt, bool isNack)
{
    AckEvent ev;
    ev.deliverAt = now + static_cast<Cycle>(distanceHops + kBaseDelay);
    ev.pkt = pkt;
    ev.isNack = isNack;
    events_.push_back(ev);
    std::push_heap(events_.begin(), events_.end(), std::greater<>{});
}

bool
AckNetwork::popDue(Cycle now, AckEvent &event)
{
    if (events_.empty() || events_.front().deliverAt > now)
        return false;
    event = events_.front();
    std::pop_heap(events_.begin(), events_.end(), std::greater<>{});
    events_.pop_back();
    return true;
}

} // namespace taqos
