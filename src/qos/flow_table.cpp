#include "qos/flow_table.h"

#include "common/assert.h"

namespace taqos {

FlowTable::FlowTable(const PvcParams &params, int numOutputs)
    : params_(&params), numOutputs_(numOutputs),
      counts_(static_cast<std::size_t>(numOutputs) *
                  static_cast<std::size_t>(params.numFlows),
              0)
{
}

std::size_t
FlowTable::index(int out, FlowId flow) const
{
    TAQOS_ASSERT(out >= 0 && out < numOutputs_, "output %d out of range", out);
    TAQOS_ASSERT(flow >= 0 && flow < params_->numFlows,
                 "flow %d out of range", flow);
    return static_cast<std::size_t>(out) *
               static_cast<std::size_t>(params_->numFlows) +
           static_cast<std::size_t>(flow);
}

std::uint64_t
FlowTable::priorityOf(int out, FlowId flow) const
{
    // counter / rate == counter * sumWeights / weight; integer-scaled so
    // equal-weight flows compare by raw counters.
    const std::uint64_t count = counts_[index(out, flow)];
    return count * params_->sumWeights() / params_->weightOf(flow);
}

void
FlowTable::charge(int out, FlowId flow, int flits)
{
    counts_[index(out, flow)] += static_cast<std::uint64_t>(flits);
}

void
FlowTable::uncharge(int out, FlowId flow, int flits)
{
    std::uint64_t &count = counts_[index(out, flow)];
    const auto amount = static_cast<std::uint64_t>(flits);
    count = count > amount ? count - amount : 0;
}

void
FlowTable::flush()
{
    for (auto &c : counts_)
        c = 0;
}

std::uint64_t
FlowTable::countOf(int out, FlowId flow) const
{
    return counts_[index(out, flow)];
}

} // namespace taqos
