#include "qos/flow_table.h"

#include "common/assert.h"
#include "router/router.h"

namespace taqos {

FlowTable::FlowTable(const PvcParams &params, int numOutputs)
    : params_(&params), numOutputs_(numOutputs),
      counts_(static_cast<std::size_t>(numOutputs) *
                  static_cast<std::size_t>(params.numFlows),
              0)
{
}

void
FlowTable::charge(int out, FlowId flow, int flits)
{
    counts_[index(out, flow)] += static_cast<std::uint64_t>(flits);
    if (owner_ != nullptr)
        owner_->noteTableMutated(out);
}

void
FlowTable::uncharge(int out, FlowId flow, int flits)
{
    std::uint64_t &count = counts_[index(out, flow)];
    const auto amount = static_cast<std::uint64_t>(flits);
    count = count > amount ? count - amount : 0;
    if (owner_ != nullptr)
        owner_->noteTableMutated(out);
}

void
FlowTable::flush()
{
    for (auto &c : counts_)
        c = 0;
    if (owner_ != nullptr)
        owner_->noteTableMutated(-1);
}

} // namespace taqos
