#include "qos/pvc.h"

#include "common/assert.h"
#include "common/strings.h"

namespace taqos {

const char *
qosModeName(QosMode mode)
{
    switch (mode) {
      case QosMode::Pvc: return "pvc";
      case QosMode::PerFlowQueue: return "per-flow";
      case QosMode::NoQos: return "no-qos";
      case QosMode::Gsf: return "gsf";
      case QosMode::AgeArb: return "age";
      case QosMode::Wrr: return "wrr";
    }
    return "?";
}

std::optional<QosMode>
parseQosMode(const std::string &name)
{
    const std::string n = strLower(strTrim(name));
    if (n == "pvc")
        return QosMode::Pvc;
    if (n == "per-flow" || n == "pfq" || n == "perflow" ||
        n == "per_flow_queue") {
        return QosMode::PerFlowQueue;
    }
    if (n == "no-qos" || n == "noqos" || n == "none")
        return QosMode::NoQos;
    if (n == "gsf" || n == "frames")
        return QosMode::Gsf;
    if (n == "age" || n == "oldest-first" || n == "age-based")
        return QosMode::AgeArb;
    if (n == "wrr" || n == "weighted-rr")
        return QosMode::Wrr;
    return std::nullopt;
}

std::uint64_t
PvcParams::quotaFlits(FlowId flow) const
{
    if (!quotaEnabled)
        return 0;
    const std::uint64_t sum = sumWeights();
    TAQOS_ASSERT(sum > 0, "zero total weight");
    return frameLen * weightOf(flow) / sum;
}

QuotaTracker::QuotaTracker(const PvcParams &params)
    : params_(&params),
      injected_(static_cast<std::size_t>(params.numFlows), 0)
{
}

bool
QuotaTracker::compliant(FlowId flow, int flits) const
{
    if (!params_->quotaEnabled)
        return false;
    const auto idx = static_cast<std::size_t>(flow);
    TAQOS_ASSERT(idx < injected_.size(), "flow %d out of range", flow);
    return injected_[idx] + static_cast<std::uint64_t>(flits) <=
           params_->quotaFlits(flow);
}

void
QuotaTracker::charge(FlowId flow, int flits)
{
    const auto idx = static_cast<std::size_t>(flow);
    TAQOS_ASSERT(idx < injected_.size(), "flow %d out of range", flow);
    injected_[idx] += static_cast<std::uint64_t>(flits);
}

void
QuotaTracker::flush()
{
    for (auto &v : injected_)
        v = 0;
}

std::uint64_t
QuotaTracker::injectedThisFrame(FlowId flow) const
{
    return injected_[static_cast<std::size_t>(flow)];
}

} // namespace taqos
