#include "qos/policy.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "noc/packet.h"

namespace taqos {

QosPolicy::~QosPolicy() = default;
SourceGate::~SourceGate() = default;

std::uint64_t
QosPolicy::priority(const NetPacket &pkt, bool carried,
                    const FlowTable &table, int tableIdx) const
{
    // Virtual-clock default (PVC and the per-flow queueing reference):
    // a flow's consumed bandwidth scaled by its provisioned rate; ports
    // without local flow state reuse the source-computed value.
    if (carried || !table.enabled())
        return pkt.carriedPrio;
    return table.priorityOf(tableIdx, pkt.flow);
}

bool
QosPolicy::betterThan(const ArbKey &a, const ArbKey &b, int outPort) const
{
    (void)outPort;
    if (a.prio != b.prio)
        return a.prio < b.prio;
    if (a.age != b.age)
        return a.age < b.age;
    if (a.flow != b.flow)
        return a.flow < b.flow;
    return a.rrKey < b.rrKey;
}

namespace {

/// Preemptive Virtual Clock — the paper's scheme. Priority and comparator
/// are the virtual-clock defaults; what makes PVC preemptive is the
/// onAllocFail decision (inversion detection thresholds), and what makes
/// it safe is the source quota + reserved escape VC the structural
/// properties enable.
class PvcPolicy final : public QosPolicy {
  public:
    using QosPolicy::QosPolicy;
    QosMode mode() const override { return QosMode::Pvc; }
    bool usesFlowTable() const override { return true; }
    bool usesReservedVc() const override
    {
        return params_->reservedVcEnabled;
    }
    bool usesSourceQuota() const override { return true; }
    Cycle frameLen() const override { return params_->frameLen; }

    bool onAllocFail(Cycle waited, bool xferBlocked) const override
    {
        // Transient buffer-full is not an inversion; the requester must
        // have been stuck past the wait threshold before PVC pays the
        // preemption cost. Ongoing transfers are interrupted on a
        // separate (shorter) threshold.
        const int wait = xferBlocked ? params_->preemptXferWaitCycles
                                     : params_->preemptWaitCycles;
        return waited >= static_cast<Cycle>(wait);
    }
};

/// Per-flow queueing (Fig. 6 reference): same virtual-clock schedule as
/// PVC but with unbounded per-flow buffers, so allocation never fails and
/// preemption never triggers.
class PerFlowQueuePolicy final : public QosPolicy {
  public:
    using QosPolicy::QosPolicy;
    QosMode mode() const override { return QosMode::PerFlowQueue; }
    bool usesFlowTable() const override { return true; }
    bool unboundedVcs() const override { return true; }
};

/// Locally-fair rotating arbitration, no flow state (the starvation
/// baseline of Sec. 5.3).
class NoQosPolicy final : public QosPolicy {
  public:
    using QosPolicy::QosPolicy;
    QosMode mode() const override { return QosMode::NoQos; }

    void init(int numOutputs) override
    {
        rrPtr_.assign(static_cast<std::size_t>(numOutputs), 0);
    }

    std::uint64_t priority(const NetPacket &, bool, const FlowTable &,
                           int) const override
    {
        return 0;
    }

    bool betterThan(const ArbKey &a, const ArbKey &b,
                    int outPort) const override
    {
        const std::uint32_t ptr = rrPtr_[static_cast<std::size_t>(outPort)];
        return cyclicRank(a.rrKey, ptr) < cyclicRank(b.rrKey, ptr);
    }

    void onGrant(int outPort, const ArbKey &winner) override
    {
        rrPtr_[static_cast<std::size_t>(outPort)] = winner.rrKey + 1;
    }

    std::vector<std::uint64_t> packState() const override
    {
        return {rrPtr_.begin(), rrPtr_.end()};
    }

    void unpackState(const std::vector<std::uint64_t> &words) override
    {
        TAQOS_ASSERT(words.size() == rrPtr_.size(),
                     "rotating-arbiter restore geometry mismatch");
        for (std::size_t i = 0; i < words.size(); ++i)
            rrPtr_[i] = static_cast<std::uint32_t>(words[i]);
    }

  private:
    /// Modulus for the rotating arbiter's cyclic ranking.
    static constexpr std::uint32_t kRrModulus = 4096;

    static std::uint32_t cyclicRank(std::uint32_t key, std::uint32_t ptr)
    {
        return (key + kRrModulus - (ptr % kRrModulus)) % kRrModulus;
    }

    /// Rotating-arbiter pointers, one per output.
    std::vector<std::uint32_t> rrPtr_;
};

/// Globally Synchronized Frames (Lee et al., ISCA 2008), the frame-based
/// reservation scheme the paper compares against. Packets are stamped
/// with a frame number at the source (see GsfGate); routers give strict
/// priority to earlier frames and break ties oldest-first, so a frame's
/// traffic cannot be delayed by later frames — per-flow bandwidth is
/// guaranteed at frame granularity without preemption or per-router flow
/// state.
class GsfPolicy final : public QosPolicy {
  public:
    using QosPolicy::QosPolicy;
    QosMode mode() const override { return QosMode::Gsf; }

    std::uint64_t priority(const NetPacket &pkt, bool, const FlowTable &,
                           int) const override
    {
        return pkt.frameTag;
    }

    /// The gate's head-frame advance (drain-driven or timed) resets the
    /// per-flow injection budgets: stalled sources become admittable.
    bool invalidatesOnFrameBoundary() const override { return true; }
};

/// Age-based arbitration: oldest packet first, network-wide. No flow
/// state at all, yet starvation-free — the locally-fair baseline's
/// pathological hotspot tree (Table 2) cannot starve a distant node
/// because a waiting packet's rank only improves with time.
class AgePolicy final : public QosPolicy {
  public:
    using QosPolicy::QosPolicy;
    QosMode mode() const override { return QosMode::AgeArb; }

    std::uint64_t priority(const NetPacket &pkt, bool, const FlowTable &,
                           int) const override
    {
        return pkt.genCycle;
    }
};

/// Weighted round-robin over flows at each output port. Reuses the
/// per-output flow table as the service meter but ranks by *completed
/// rounds* (served flits / weight, integer division), so a flow bursts up
/// to `weight` flits per round — classic WRR, as opposed to the
/// flit-interleaved virtual clock.
class WrrPolicy final : public QosPolicy {
  public:
    using QosPolicy::QosPolicy;
    QosMode mode() const override { return QosMode::Wrr; }
    bool usesFlowTable() const override { return true; }

    std::uint64_t priority(const NetPacket &pkt, bool carried,
                           const FlowTable &table,
                           int tableIdx) const override
    {
        if (carried || !table.enabled())
            return pkt.carriedPrio;
        // A zero provisioned weight (deprovisioned VM slot) rounds up to
        // 1 rather than dividing by zero — best-effort, never starved.
        const std::uint64_t weight =
            std::max<std::uint64_t>(1, params_->weightOf(pkt.flow));
        return table.countOf(tableIdx, pkt.flow) / weight;
    }
};

/// GSF source gate: the frame-windowed injection budgets plus the global
/// frame window. Each flow may inject up to its provisioned share of a
/// frame (weight/sumW x gsfFrameLen flits) into each of the next
/// `gsfFrames` frames; a flow that exhausts the whole window stalls at
/// the source. The window advances when the oldest frame has fully
/// drained — signalled by the delivery notifications the ACK network
/// already carries for every packet (early reclamation) — or, for idle
/// frames, when `gsfFrameLen` cycles elapse.
class GsfGate final : public SourceGate {
  public:
    explicit GsfGate(const PvcParams &params) : params_(&params)
    {
        TAQOS_ASSERT(params.gsfFrames > 0, "GSF needs a positive window");
        TAQOS_ASSERT(params.gsfFrameLen > 0, "GSF needs a frame length");
        windows_.resize(static_cast<std::size_t>(params.gsfFrames));
        for (auto &w : windows_)
            w.injected.assign(static_cast<std::size_t>(params.numFlows), 0);
    }

    bool admit(NetPacket &pkt, Cycle now) override
    {
        (void)now;
        if (pkt.frameTag != kNoFrameTag)
            return true; // already admitted (re-candidacy, column re-entry)
        const auto flow = static_cast<std::size_t>(pkt.flow);
        const std::uint64_t budget = budgetOf(pkt.flow);
        for (std::size_t w = 0; w < windows_.size(); ++w) {
            Window &win = windows_[slot(w)];
            if (win.injected[flow] >= budget)
                continue;
            // Charge-then-overshoot (rather than fit-then-charge) so a
            // budget smaller than one packet still guarantees progress.
            win.injected[flow] += static_cast<std::uint64_t>(pkt.sizeFlits);
            ++win.outstanding;
            ++win.stamped;
            pkt.frameTag = head_ + static_cast<std::uint64_t>(w);
            return true;
        }
        return false; // window exhausted: stall the source
    }

    /// A stamped packet is re-admitted unconditionally with no state
    /// change (the early return above); an unstamped one would charge a
    /// window budget.
    bool admitIsPure(const NetPacket &pkt) const override
    {
        return pkt.frameTag != kNoFrameTag;
    }

    void onDeliver(const NetPacket &pkt, Cycle now) override
    {
        (void)now;
        if (pkt.frameTag == kNoFrameTag)
            return;
        TAQOS_ASSERT(pkt.frameTag >= head_,
                     "delivery for an already-reclaimed GSF frame");
        const auto w = static_cast<std::size_t>(pkt.frameTag - head_);
        TAQOS_ASSERT(w < windows_.size(), "GSF frame tag out of window");
        Window &win = windows_[slot(w)];
        TAQOS_ASSERT(win.outstanding > 0, "GSF frame accounting underflow");
        --win.outstanding;
    }

    void rollover(Cycle now) override
    {
        // Early reclamation: a frame that saw traffic and fully drained
        // advances immediately; an idle frame advances on the timer.
        while (true) {
            Window &win = windows_[headSlot_];
            const bool timedOut = now >= headStart_ + params_->gsfFrameLen;
            if (win.outstanding != 0 || (win.stamped == 0 && !timedOut))
                return;
            std::fill(win.injected.begin(), win.injected.end(), 0);
            win.stamped = 0;
            headSlot_ = (headSlot_ + 1) % windows_.size();
            ++head_;
            headStart_ = now;
        }
    }

    std::uint64_t headFrame() const { return head_; }

    /// Admission decisions can only flip from "stall" to "admit" when the
    /// head frame advances (budgets reset); charging within a window only
    /// ever consumes budget.
    std::uint64_t epoch() const override { return head_; }

    std::vector<std::uint64_t> packState() const override
    {
        std::vector<std::uint64_t> w;
        w.push_back(static_cast<std::uint64_t>(headSlot_));
        w.push_back(head_);
        w.push_back(headStart_);
        for (const Window &win : windows_) {
            w.push_back(win.outstanding);
            w.push_back(win.stamped);
            w.insert(w.end(), win.injected.begin(), win.injected.end());
        }
        return w;
    }

    void unpackState(const std::vector<std::uint64_t> &words) override
    {
        const std::size_t perWin =
            2 + static_cast<std::size_t>(params_->numFlows);
        TAQOS_ASSERT(words.size() == 3 + windows_.size() * perWin,
                     "GSF gate restore geometry mismatch");
        std::size_t i = 0;
        headSlot_ = static_cast<std::size_t>(words[i++]);
        head_ = words[i++];
        headStart_ = words[i++];
        for (Window &win : windows_) {
            win.outstanding = words[i++];
            win.stamped = words[i++];
            for (auto &flits : win.injected)
                flits = words[i++];
        }
    }

  private:
    struct Window {
        std::vector<std::uint64_t> injected; ///< flits stamped, per flow
        std::uint64_t outstanding = 0;       ///< stamped, not yet delivered
        std::uint64_t stamped = 0;           ///< packets ever stamped
    };

    std::uint64_t budgetOf(FlowId flow) const
    {
        const std::uint64_t sum = params_->sumWeights();
        TAQOS_ASSERT(sum > 0, "zero total weight");
        return std::max<std::uint64_t>(
            1, params_->gsfFrameLen * params_->weightOf(flow) / sum);
    }

    std::size_t slot(std::size_t offset) const
    {
        return (headSlot_ + offset) % windows_.size();
    }

    const PvcParams *params_;
    std::vector<Window> windows_; ///< circular, windows_[slot(0)] == head
    std::size_t headSlot_ = 0;
    std::uint64_t head_ = 0;   ///< oldest active frame number
    Cycle headStart_ = 0;      ///< cycle the head frame opened
};

} // namespace

std::unique_ptr<QosPolicy>
makeQosPolicy(QosMode mode, const PvcParams &params)
{
    switch (mode) {
      case QosMode::Pvc: return std::make_unique<PvcPolicy>(params);
      case QosMode::PerFlowQueue:
        return std::make_unique<PerFlowQueuePolicy>(params);
      case QosMode::NoQos: return std::make_unique<NoQosPolicy>(params);
      case QosMode::Gsf: return std::make_unique<GsfPolicy>(params);
      case QosMode::AgeArb: return std::make_unique<AgePolicy>(params);
      case QosMode::Wrr: return std::make_unique<WrrPolicy>(params);
    }
    TAQOS_ASSERT(false, "unknown QOS mode %d", static_cast<int>(mode));
    return nullptr;
}

std::unique_ptr<SourceGate>
makeSourceGate(QosMode mode, const PvcParams &params)
{
    if (mode == QosMode::Gsf)
        return std::make_unique<GsfGate>(params);
    return nullptr;
}

} // namespace taqos
