/// \file policy.h
/// The pluggable arbitration-policy layer of the shared-region routers.
///
/// A QosPolicy owns every priority / preemption / quota decision a Router
/// makes; the Router keeps the mechanism (VC allocation, cut-through
/// transfers, preemption teardown) and delegates the policy questions:
///
///   - priority(...)    what is this packet's arbitration rank?
///   - betterThan(...)  which of two candidates wins an output?
///   - onAllocFail(...) a blocked candidate: pay the preemption cost?
///   - onGrant(...)     a candidate won its output (rotate state)
///   - rollover()       frame boundary: flush per-router policy state
///
/// plus structural properties the topology builders and the engine query
/// (flow-state tables, reserved escape VCs, unbounded per-flow queues,
/// source quotas, frame length).
///
/// Source-side policy state that is global to a simulation — GSF's
/// frame-windowed injection budgets — lives in a SourceGate the engine
/// owns and threads to every router through the TickContext: admit() gates
/// (and frame-stamps) packets at the injection boundary, onDeliver()
/// retires them, rollover() advances the global frame window.
///
/// Policies are per-router instances (arbitration state such as the
/// round-robin pointers is router-local); makeQosPolicy is the factory
/// the Router constructor uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "qos/flow_table.h"
#include "qos/pvc.h"

namespace taqos {

struct NetPacket;

/// The policy-relevant identity of one arbitration candidate.
struct ArbKey {
    std::uint64_t prio = 0; ///< policy priority (lower wins)
    Cycle age = 0;          ///< generation cycle (lower = older)
    FlowId flow = kInvalidFlow;
    std::uint32_t rrKey = 0; ///< stable enumeration position at this router
};

class QosPolicy {
  public:
    explicit QosPolicy(const PvcParams &params) : params_(&params) {}
    virtual ~QosPolicy();
    QosPolicy(const QosPolicy &) = delete;
    QosPolicy &operator=(const QosPolicy &) = delete;

    virtual QosMode mode() const = 0;

    // --- structural properties (builders and engine) ---

    /// Keeps per-flow bandwidth state at each tracked output port.
    virtual bool usesFlowTable() const { return false; }
    /// Reserves one VC per network port for rate-compliant traffic.
    virtual bool usesReservedVc() const { return false; }
    /// Per-flow-queueing reference: VCs grow on demand.
    virtual bool unboundedVcs() const { return false; }
    /// Engine keeps a source-side QuotaTracker (PVC compliance marking).
    virtual bool usesSourceQuota() const { return false; }
    /// Router-state flush interval (0 = frameless). The engine flushes
    /// flow tables, quotas and carried priorities on this boundary.
    virtual Cycle frameLen() const { return 0; }

    /// Activity-driven engine: frame (or gate-window) boundaries rewrite
    /// policy state that cached arbitration decisions were derived from,
    /// so every router's cached winner set must be invalidated there.
    /// True for PVC (the frame flush zeroes flow tables, quota counters
    /// and carried priorities) and for GSF (a window advance can newly
    /// admit gated source packets); policies whose priorities never
    /// change behind the routers' backs keep the default. New QosPolicy
    /// implementations with engine-global or time-flushed state MUST
    /// override this (see README "Performance").
    virtual bool invalidatesOnFrameBoundary() const
    {
        return frameLen() != 0;
    }

    // --- per-router lifecycle ---

    /// Called from Router::finalize once the port structure exists.
    virtual void init(int numOutputs) { (void)numOutputs; }

    /// Frame boundary: flush per-router policy state (the Router flushes
    /// the flow table itself; this hook covers policy-private state).
    virtual void rollover() {}

    /// Checkpointing: the policy's mutable per-router state as an opaque
    /// word vector (empty = stateless). A policy that adds mutable state
    /// MUST override both or restored runs diverge. unpackState runs on
    /// a freshly init()-ed instance of the same mode and geometry.
    virtual std::vector<std::uint64_t> packState() const { return {}; }
    virtual void unpackState(const std::vector<std::uint64_t> &words)
    {
        (void)words;
    }

    // --- arbitration ---

    /// Arbitration rank of `pkt` at an output (lower = higher priority).
    /// `carried` is true at pass-through inputs that reuse the priority
    /// computed at the packet's source (DPS repeaters).
    virtual std::uint64_t priority(const NetPacket &pkt, bool carried,
                                   const FlowTable &table,
                                   int tableIdx) const;

    /// Does candidate `a` beat candidate `b` for output `outPort`? The
    /// default is the virtual-clock order: priority, then age, then flow,
    /// then enumeration position.
    virtual bool betterThan(const ArbKey &a, const ArbKey &b,
                            int outPort) const;

    /// A candidate won output `outPort` and started streaming.
    virtual void onGrant(int outPort, const ArbKey &winner)
    {
        (void)outPort;
        (void)winner;
    }

    /// The winning candidate failed to allocate downstream resources and
    /// has been blocked for `waited` cycles (`xferBlocked`: behind an
    /// in-progress transfer rather than VC exhaustion). Return true to
    /// attempt a preemption.
    virtual bool onAllocFail(Cycle waited, bool xferBlocked) const
    {
        (void)waited;
        (void)xferBlocked;
        return false;
    }

  protected:
    const PvcParams *params_;
};

/// Factory: the policy implementation for `mode`, configured by `params`
/// (which must outlive the policy).
std::unique_ptr<QosPolicy> makeQosPolicy(QosMode mode,
                                         const PvcParams &params);

/// Simulation-global source-side policy state (see file comment). Null
/// for policies without an injection gate.
class SourceGate {
  public:
    virtual ~SourceGate();

    /// May `pkt` (the head of its source queue) enter the network this
    /// cycle? May stamp per-packet policy state (GSF frame tags) on first
    /// admission; must stay true for an already-admitted packet.
    virtual bool admit(NetPacket &pkt, Cycle now) = 0;

    /// Would admit(pkt, ...) return true without mutating any state?
    /// The sharded engine's parallel scan phase may only evaluate pure
    /// admissions (the gate is engine-global and admission order must
    /// match serial node order); an impure one defers the whole output
    /// to the serial grant phase. Conservative default: nothing is pure.
    virtual bool admitIsPure(const NetPacket &pkt) const
    {
        (void)pkt;
        return false;
    }

    /// `pkt` reached its final destination terminal.
    virtual void onDeliver(const NetPacket &pkt, Cycle now) = 0;

    /// Per-cycle bookkeeping (frame advance / reclamation).
    virtual void rollover(Cycle now) = 0;

    /// Monotonic counter that advances whenever gate state changes in a
    /// way that can newly admit a previously-stalled packet (GSF: the
    /// head-frame advance, which resets injection budgets). The engine
    /// compares it around rollover() and invalidates every router's
    /// cached arbitration state on a change, so source queues stalled on
    /// admit() are re-examined exactly when the always-tick engine would
    /// re-admit them.
    virtual std::uint64_t epoch() const { return 0; }

    /// Checkpointing: the gate's full mutable state as an opaque word
    /// vector (same contract as QosPolicy::packState).
    virtual std::vector<std::uint64_t> packState() const { return {}; }
    virtual void unpackState(const std::vector<std::uint64_t> &words)
    {
        (void)words;
    }
};

std::unique_ptr<SourceGate> makeSourceGate(QosMode mode,
                                           const PvcParams &params);

} // namespace taqos
