#include "qos/audit.h"

namespace taqos {

QosAuditBounds
defaultAuditBounds(QosMode mode)
{
    QosAuditBounds b;
    switch (mode) {
      case QosMode::AgeArb:
        // Oldest-first arbitration is starvation-free; a packet older
        // than this has been bypassed pathologically. Far above the
        // drain horizon of every finite workload in the suite.
        b.maxPacketAge = 2000000;
        break;
      case QosMode::Wrr:
        b.wrrTolerance = 0.5;
        break;
      case QosMode::Pvc:
      case QosMode::PerFlowQueue:
      case QosMode::NoQos:
      case QosMode::Gsf:
        break;
    }
    return b;
}

} // namespace taqos
