/// \file pvc.h
/// Preemptive Virtual Clock (PVC) configuration and quota tracking.
///
/// PVC (Grot, Keckler, Mutlu — MICRO 2009) is the QOS mechanism the paper
/// deploys in the shared region. Routers keep per-flow bandwidth counters
/// that are flushed every frame; a packet's priority is its flow's counter
/// scaled by the flow's provisioned rate (lower = higher priority).
/// Priority inversion — a high-priority packet blocked by buffered
/// lower-priority packets — is resolved by preempting (discarding) a
/// victim, which is NACKed over a dedicated ACK network and retransmitted
/// from a per-source window.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace taqos {

/// Arbitration / QOS discipline of the shared-region routers. Each mode
/// selects a QosPolicy implementation (qos/policy.h).
enum class QosMode {
    Pvc,          ///< Preemptive Virtual Clock (the paper's scheme)
    PerFlowQueue, ///< per-flow queueing: preemption-free reference (Fig. 6)
    NoQos,        ///< round-robin, no flow state (starvation baseline)
    Gsf,          ///< Globally Synchronized Frames (Lee et al., ISCA 2008)
    AgeArb,       ///< oldest-packet-first (starvation-free baseline)
    Wrr,          ///< weighted round-robin over flows per output port
};

/// Every supported arbitration policy (sweeps, parameterized tests).
inline constexpr QosMode kAllQosModes[] = {
    QosMode::Pvc, QosMode::PerFlowQueue, QosMode::NoQos,
    QosMode::Gsf, QosMode::AgeArb,       QosMode::Wrr,
};

const char *qosModeName(QosMode mode);

/// Inverse of qosModeName (plus common aliases); nullopt when unknown.
/// Round-trip: parseQosMode(qosModeName(m)) == m for every mode.
std::optional<QosMode> parseQosMode(const std::string &name);

struct PvcParams {
    /// Counter flush interval. The paper uses a 50K-cycle frame.
    Cycle frameLen = 50000;

    /// Number of provisioned flows (64: 8 nodes x 8 injectors).
    int numFlows = 64;

    /// Per-flow provisioned service weights. Empty = all equal. The OS
    /// programs these through the chip's flow registers.
    std::vector<std::uint32_t> weights;

    /// Per-source outstanding-packet retransmission window.
    int windowLimit = 16;

    /// Reserve one VC per network port for rate-compliant traffic.
    bool reservedVcEnabled = true;

    /// Non-preemptable reserved quota: the first `weight/sumW * frameLen`
    /// flits a source injects in a frame cannot be discarded.
    bool quotaEnabled = true;

    /// Priority-inversion detection thresholds. A blocked packet preempts
    /// only after waiting `preemptWaitCycles` with no VC, and only victims
    /// whose scaled bandwidth counter exceeds the requester's by more than
    /// `preemptGapFlits` flits of service are discarded. Transient
    /// buffer-full conditions (a packet mid-ejection, a link busy for a
    /// few cycles) are not inversions.
    int preemptWaitCycles = 3;
    /// Victim protection margin: a flow is preemptable only once its local
    /// bandwidth counter exceeds `quotaProtectFactor x quota` — stochastic
    /// overshoot just past the reserved share is not hostile traffic.
    double quotaProtectFactor = 1.5;
    /// Separate (shorter) threshold before an ongoing lower-priority
    /// transfer is interrupted: transfers complete within a few cycles, so
    /// inversion against a streaming packet must be detected faster.
    int preemptXferWaitCycles = 2;
    std::uint64_t preemptGapFlits = 48;

    /// GSF (QosMode::Gsf): frame length in cycles and the number of
    /// frames a source may inject ahead into. Each flow's budget per
    /// frame is `weight/sumW * gsfFrameLen` flits; the window advances
    /// when the oldest frame drains (early reclamation) or times out.
    Cycle gsfFrameLen = 2000;
    int gsfFrames = 4;

    /// `preemptGapFlits` in scaled priority units.
    std::uint64_t preemptGapScaled() const
    {
        return preemptGapFlits * sumWeights();
    }

    /// Inline: the virtual-clock priority of every candidate at every
    /// scan reads these, so they sit on the arbitration hot path.
    std::uint32_t weightOf(FlowId flow) const
    {
        if (weights.empty())
            return 1;
        TAQOS_ASSERT(flow >= 0 &&
                         flow < static_cast<FlowId>(weights.size()),
                     "flow %d out of range", flow);
        return weights[static_cast<std::size_t>(flow)];
    }

    std::uint64_t sumWeights() const
    {
        if (weights.empty())
            return static_cast<std::uint64_t>(numFlows);
        std::uint64_t sum = 0;
        for (auto w : weights)
            sum += w;
        return sum;
    }

    /// Reserved (non-preemptable) flits per frame for `flow`.
    std::uint64_t quotaFlits(FlowId flow) const;
};

/// Source-side per-frame injection accounting, used to mark packets
/// rate-compliant at injection time.
class QuotaTracker {
  public:
    explicit QuotaTracker(const PvcParams &params);

    /// Would a packet of `flits` still fall under the reserved quota?
    bool compliant(FlowId flow, int flits) const;

    /// Charge an injection (called per transmission attempt — replays
    /// consume bandwidth too).
    void charge(FlowId flow, int flits);

    /// Frame boundary: clear all counters.
    void flush();

    std::uint64_t injectedThisFrame(FlowId flow) const;

    /// Checkpoint access: the per-flow intra-frame injection counters.
    const std::vector<std::uint64_t> &injected() const { return injected_; }
    void restoreInjected(const std::vector<std::uint64_t> &injected)
    {
        TAQOS_ASSERT(injected.size() == injected_.size(),
                     "quota restore geometry mismatch");
        injected_ = injected;
    }

  private:
    const PvcParams *params_;
    std::vector<std::uint64_t> injected_;
};

} // namespace taqos
