/// \file audit.h
/// Per-policy QoS guarantee bounds for the independent trace auditor.
///
/// Each QosMode makes a different enforceable promise (the PVC reserved
/// quota, the GSF frame budget, age-bounded delivery, WRR proportional
/// shares). The checker (verify/checker.h) re-derives PVC and GSF bounds
/// from the parameters frozen into the trace header; the two bounds that
/// are *tunable audit thresholds* rather than mechanism parameters — the
/// worst-case packet age and the WRR share tolerance — are specified
/// here, per policy, and stamped into the trace by the recorder so checker
/// and recorder agree on what was promised.
#pragma once

#include "common/types.h"
#include "qos/pvc.h"

namespace taqos {

struct QosAuditBounds {
    /// Age-based starvation freedom: every packet must be delivered (or
    /// the run must end) within this many cycles of its generation.
    /// 0 disables the age audit.
    Cycle maxPacketAge = 0;

    /// WRR weight tracking: a continuously backlogged flow's delivered
    /// share may fall below `weightShare * (1 - wrrTolerance)` only as a
    /// violation. Shares are only audited across flows backlogged for the
    /// whole measurement window with a statistically meaningful delivery
    /// count, so the tolerance absorbs discretization, not starvation.
    double wrrTolerance = 0.5;
};

/// The bounds audited for `mode`. Age-arbitrated runs promise bounded
/// age (the default is generous: far above any drained run's span, so a
/// clean finite run can never false-positive while a starved packet —
/// which would hold its VC forever — is still caught); other modes make
/// no age promise and skip the audit.
QosAuditBounds defaultAuditBounds(QosMode mode);

} // namespace taqos
