/// \file ack_network.h
/// The dedicated low-bandwidth ACK network PVC uses to acknowledge every
/// delivered packet and NACK every discarded one. It is contention-free
/// and narrow (acks are a few bits), so we model it as a fixed
/// distance-proportional delay pipe.
#pragma once

#include <vector>

#include "common/types.h"
#include "noc/packet.h"

namespace taqos {

struct AckEvent {
    Cycle deliverAt = 0;
    NetPacket *pkt = nullptr;
    bool isNack = false;

    bool operator>(const AckEvent &o) const { return deliverAt > o.deliverAt; }
};

class AckNetwork {
  public:
    /// Fixed per-message overhead on top of the hop distance.
    static constexpr int kBaseDelay = 2;

    /// Queue an ACK (delivered) or NACK (preempted) for `pkt`, sent from a
    /// router `distanceHops` away from the packet's source.
    void send(Cycle now, int distanceHops, NetPacket *pkt, bool isNack);

    /// Pop the next event due at or before `now`; returns false when none.
    bool popDue(Cycle now, AckEvent &event);

    std::size_t pending() const { return events_.size(); }

    /// The raw heap array in heap-internal order, for checkpointing.
    /// Pop order between equal-deliverAt events depends on the heap's
    /// internal layout, so a bit-identical restore must carry the array
    /// verbatim — not a sorted or re-pushed copy.
    const std::vector<AckEvent> &rawEvents() const { return events_; }

    /// Overwrite the heap with an array captured by rawEvents() (the
    /// caller has already re-mapped the packet pointers).
    void restoreRaw(std::vector<AckEvent> events)
    {
        events_ = std::move(events);
    }

  private:
    /// Manual binary heap (push_heap/pop_heap, min on deliverAt). A
    /// std::priority_queue would behave identically but hides the
    /// container, and checkpointing needs the verbatim array.
    std::vector<AckEvent> events_;
};

} // namespace taqos
