/// \file ack_network.h
/// The dedicated low-bandwidth ACK network PVC uses to acknowledge every
/// delivered packet and NACK every discarded one. It is contention-free
/// and narrow (acks are a few bits), so we model it as a fixed
/// distance-proportional delay pipe.
#pragma once

#include <queue>
#include <vector>

#include "common/types.h"
#include "noc/packet.h"

namespace taqos {

struct AckEvent {
    Cycle deliverAt = 0;
    NetPacket *pkt = nullptr;
    bool isNack = false;

    bool operator>(const AckEvent &o) const { return deliverAt > o.deliverAt; }
};

class AckNetwork {
  public:
    /// Fixed per-message overhead on top of the hop distance.
    static constexpr int kBaseDelay = 2;

    /// Queue an ACK (delivered) or NACK (preempted) for `pkt`, sent from a
    /// router `distanceHops` away from the packet's source.
    void send(Cycle now, int distanceHops, NetPacket *pkt, bool isNack);

    /// Pop the next event due at or before `now`; returns false when none.
    bool popDue(Cycle now, AckEvent &event);

    std::size_t pending() const { return events_.size(); }

  private:
    std::priority_queue<AckEvent, std::vector<AckEvent>, std::greater<>>
        events_;
};

} // namespace taqos
