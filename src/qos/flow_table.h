/// \file flow_table.h
/// Per-router PVC flow state: one bandwidth-counter table per tracked
/// output port. The Virtual Clock priority of a packet is its flow's
/// consumed bandwidth scaled by the flow's provisioned rate; lower values
/// win arbitration.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "qos/pvc.h"

namespace taqos {

class FlowTable {
  public:
    FlowTable() = default;
    FlowTable(const PvcParams &params, int numOutputs);

    bool enabled() const { return params_ != nullptr; }

    /// Virtual-clock priority value of `flow` at output `out`
    /// (lower = higher priority).
    std::uint64_t priorityOf(int out, FlowId flow) const;

    /// Charge `flits` of bandwidth to `flow` at output `out` (called when
    /// a transfer wins the output).
    void charge(int out, FlowId flow, int flits);

    /// Refund a charge whose packet was preempted: the virtual clock
    /// tracks *delivered* service, so discarded forwarding must not count
    /// against the victim (it would look like a hog and be victimized
    /// again — a starvation spiral). Clamps at zero across frame flushes.
    void uncharge(int out, FlowId flow, int flits);

    /// Frame boundary: flush all counters.
    void flush();

    std::uint64_t countOf(int out, FlowId flow) const;

  private:
    std::size_t index(int out, FlowId flow) const;

    const PvcParams *params_ = nullptr;
    int numOutputs_ = 0;
    std::vector<std::uint64_t> counts_; ///< [out * numFlows + flow]
};

} // namespace taqos
