/// \file flow_table.h
/// Per-router PVC flow state: one bandwidth-counter table per tracked
/// output port. The Virtual Clock priority of a packet is its flow's
/// consumed bandwidth scaled by the flow's provisioned rate; lower values
/// win arbitration.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "qos/pvc.h"

namespace taqos {

class Router;

class FlowTable {
  public:
    FlowTable() = default;
    FlowTable(const PvcParams &params, int numOutputs);

    bool enabled() const { return params_ != nullptr; }

    /// Attach the router whose arbitration reads this table. Every
    /// mutation (charge/uncharge/flush) then invalidates its cached
    /// candidate rankings — including refunds issued by a *remote*
    /// router's preemption teardown, which reach the table through the
    /// victim packet's charge log. Null (unit-test tables) disables the
    /// notification.
    void setOwner(Router *owner) { owner_ = owner; }

    /// Virtual-clock priority value of `flow` at output `out`
    /// (lower = higher priority). Inline: read for every candidate of
    /// every arbitration scan.
    std::uint64_t priorityOf(int out, FlowId flow) const
    {
        // counter / rate == counter * sumWeights / weight; integer-scaled
        // so equal-weight flows compare by raw counters.
        const std::uint64_t count = counts_[index(out, flow)];
        return count * params_->sumWeights() / params_->weightOf(flow);
    }

    /// Charge `flits` of bandwidth to `flow` at output `out` (called when
    /// a transfer wins the output).
    void charge(int out, FlowId flow, int flits);

    /// Refund a charge whose packet was preempted: the virtual clock
    /// tracks *delivered* service, so discarded forwarding must not count
    /// against the victim (it would look like a hog and be victimized
    /// again — a starvation spiral). Clamps at zero across frame flushes.
    void uncharge(int out, FlowId flow, int flits);

    /// Frame boundary: flush all counters.
    void flush();

    std::uint64_t countOf(int out, FlowId flow) const
    {
        return counts_[index(out, flow)];
    }

    /// Checkpoint access: the flat counter array (configuration —
    /// params, owner, geometry — is rebuilt by the restoring sim).
    const std::vector<std::uint64_t> &counts() const { return counts_; }
    void restoreCounts(const std::vector<std::uint64_t> &counts)
    {
        TAQOS_ASSERT(counts.size() == counts_.size(),
                     "flow-table restore geometry mismatch");
        counts_ = counts;
    }

  private:
    std::size_t index(int out, FlowId flow) const
    {
        TAQOS_ASSERT(out >= 0 && out < numOutputs_,
                     "output %d out of range", out);
        TAQOS_ASSERT(flow >= 0 && flow < params_->numFlows,
                     "flow %d out of range", flow);
        return static_cast<std::size_t>(out) *
                   static_cast<std::size_t>(params_->numFlows) +
               static_cast<std::size_t>(flow);
    }

    const PvcParams *params_ = nullptr;
    Router *owner_ = nullptr;
    int numOutputs_ = 0;
    std::vector<std::uint64_t> counts_; ///< [out * numFlows + flow]
};

} // namespace taqos
