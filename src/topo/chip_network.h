/// \file chip_network.h
/// Whole-chip fabric (Sec. 2.1): the QOS-protected shared column — built
/// exactly as ColumnNetwork builds it, so a chip restricted to its column
/// is cycle-identical to the standalone column simulator — surrounded by
/// the chip's unprotected rows.
///
/// Node-id space: ids 0..H-1 are the column nodes (id == grid row), so
/// every column-relative id, route, flow id and flow-register index of
/// ColumnNetwork carries over unchanged; compute-node ids follow.
///
/// Each row is a 1-D NoQos mesh that carries memory/shared-resource
/// requests from the row's compute nodes into the column node (the XY
/// dimension-order step of the paper's routing: row first, then the
/// protected column). At the column boundary the packet is dropped into a
/// handoff buffer and re-enters through the column node's row-injector
/// queue — the same per-flow injection interface the paper's OS programs
/// flow registers for (row injector k of column-node row r is the k-th
/// compute node of row r, by x). Each compute node concentrates its
/// `ChipConfig::concentration` terminals onto one aggregate injector, so
/// per-flow rates are per-node aggregates.
#pragma once

#include <memory>
#include <vector>

#include "chip/geometry.h"
#include "common/assert.h"
#include "topo/column_network.h"

namespace taqos {

/// Configuration of the whole-chip fabric.
struct ChipNetConfig {
    ChipConfig chip;

    /// The shared column's interconnect/QOS configuration. `numNodes` is
    /// forced to the chip's node-grid height.
    ColumnConfig column;

    /// Grid x of the simulated shared column; -1 selects the chip's first
    /// shared column.
    int sharedColumn = -1;

    /// VC buffers per row-mesh input and per handoff buffer.
    int rowVcs = 4;

    /// Full-chip mode: traffic originates at the compute nodes and rides
    /// the row mesh into the column. When false (column-equivalence mode)
    /// traffic enters the column injector queues directly, making the
    /// chip cycle-identical to ColumnSim — the refactor's regression
    /// anchor.
    bool injectAtSources = true;

    int columnX() const
    {
        if (sharedColumn >= 0)
            return sharedColumn;
        TAQOS_ASSERT(!chip.sharedColumns.empty(),
                     "chip has no shared column to simulate");
        return chip.sharedColumns.front();
    }

    /// Column row-injector index (1..injectorsPerNode-1) fed by the
    /// compute node at grid column `x` (os.cpp flow-register mapping:
    /// injectors 1.. map to the row's compute nodes ordered by x).
    int injectorIndexOf(int x) const
    {
        return x < columnX() ? x + 1 : x;
    }
    /// Inverse: grid x of the compute node feeding row-injector `k`.
    int computeXOf(int k) const { return k <= columnX() ? k - 1 : k; }
};

class ChipNetwork : public ColumnNetwork {
  public:
    static std::unique_ptr<ChipNetwork> build(ChipNetConfig cfg);

    const ChipNetConfig &chipCfg() const { return chipCfg_; }
    bool injectAtSources() const { return chipCfg_.injectAtSources; }

    /// Grid position -> node id (column nodes are 0..H-1, id == row).
    NodeId nodeIdAt(int x, int y) const;
    NodeId columnNodeId(int y) const { return y; }

    /// Config mapping helpers, re-exported with range checks.
    int injectorIndexOf(int x) const;
    int computeXOf(int k) const;

    /// Origin queue of flow `f` in full-chip mode: the owning compute
    /// node's aggregate source queue for row injectors, the column
    /// entrance queue itself for terminal flows (injector 0).
    InjectorQueue &sourceQueue(FlowId f);

    /// All compute-node origin queues (invariant checks).
    std::vector<InjectorQueue> &rowQueues() { return rowQueues_; }

  private:
    explicit ChipNetwork(ChipNetConfig cfg);

    friend void buildChipRows(ChipNetwork &net);

    ChipNetConfig chipCfg_;
    /// Compute-node source queues, indexed by flow id (terminal-flow
    /// entries unused).
    std::vector<InjectorQueue> rowQueues_;
    /// Handoff buffers at the column boundary (up to two per row; also
    /// registered as the network's auxPorts).
    std::vector<std::unique_ptr<InputPort>> handoff_;
};

/// Wire the unprotected row meshes around the already-built column
/// (implemented in build_chip.cpp).
void buildChipRows(ChipNetwork &net);

} // namespace taqos
