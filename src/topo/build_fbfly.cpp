/// \file build_fbfly.cpp
/// Wiring for the flattened-butterfly extension (Kim, Balfour & Dally,
/// cited in Sec. 2.2 as an alternative richly connected topology): a
/// dedicated point-to-point channel between every pair of nodes. Like
/// MECS it reaches any destination in one network hop, but each receiver
/// keeps a private crossbar port per upstream node instead of sharing one
/// per direction — lower arbitration conflict, much higher switch radix.
#include <string>
#include <vector>

#include "topo/column_network.h"

namespace taqos {

void
buildFlatButterflyColumn(const ColumnWiring &w)
{
    const ColumnConfig &cfg = w.cfg;
    const int n = cfg.numNodes;
    const int vcs = cfg.effectiveVcs();
    const int depth = pipelineDepth(cfg.topology);

    // inFrom[j][s]: input at node j fed by node s's dedicated channel.
    std::vector<std::vector<InputPort *>> inFrom(
        static_cast<std::size_t>(n),
        std::vector<InputPort *>(static_cast<std::size_t>(n), nullptr));

    for (int j = 0; j < n; ++j) {
        Router *r = w.router(j);
        for (int s = 0; s < n; ++s) {
            if (s == j)
                continue;
            const int span = s < j ? j - s : s - j;
            inFrom[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
                w.makeNetInput(r,
                               "fb_in_" + std::to_string(j) + "_from_" +
                                   std::to_string(s),
                               j, vcs, /*creditDelay=*/span, depth,
                               /*passThrough=*/false, r->addXbarGroup());
        }
    }

    for (int i = 0; i < n; ++i) {
        Router *r = w.router(i);
        for (int d = 0; d < n; ++d) {
            if (d == i)
                continue;
            auto out = std::make_unique<OutputPort>();
            out->name = w.name("fb_out_" + std::to_string(i) + "_to_" +
                               std::to_string(d));
            out->node = w.node(i);
            out->tableIdx = Network::nextTableIdx(r);
            const int span = d < i ? i - d : d - i;
            out->drops.push_back(OutputPort::Drop{
                inFrom[static_cast<std::size_t>(d)]
                      [static_cast<std::size_t>(i)],
                /*wireDelay=*/span,
                /*meshHops=*/static_cast<double>(span)});
            const int idx = static_cast<int>(r->outputs().size());
            r->addOutputPort(std::move(out));
            w.setRoute(r, d, RouteEntry{idx, 1, 0});
        }
        w.addTerminalOutput(i);
    }
}

} // namespace taqos
