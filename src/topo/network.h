/// \file network.h
/// Topology-agnostic network substrate: the routers, injector queues and
/// terminal (ejection) buffers a simulated fabric is made of, plus the
/// builder helpers the topology wiring code shares.
///
/// A Network owns no cycle semantics — that is the NetSim engine
/// (sim/net_sim.h). Concrete fabrics subclass it: ColumnNetwork wires the
/// paper's QOS-protected shared column (topo/column_network.h), and
/// ChipNetwork wraps that column with the whole chip's unprotected row
/// meshes (topo/chip_network.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "noc/activity.h"
#include "noc/ports.h"
#include "qos/policy.h"
#include "qos/pvc.h"
#include "router/router.h"

namespace taqos {

class Network {
  public:
    virtual ~Network();
    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /// QOS discipline of this network's protected routers.
    QosMode mode() const { return mode_; }
    const PvcParams &pvcParams() const { return pvc_; }

    /// Structural properties of the mode's policy (flow tables, reserved
    /// VCs, frames, source quotas) — a stateless prototype instance; the
    /// stateful per-router policies live inside the routers.
    const QosPolicy &policyTraits() const { return *traits_; }

    int numNodes() const { return static_cast<int>(routers_.size()); }
    int numFlows() const { return static_cast<int>(injectors_.size()); }

    Router *router(NodeId n)
    {
        return routers_[static_cast<std::size_t>(n)].get();
    }
    const Router *router(NodeId n) const
    {
        return routers_[static_cast<std::size_t>(n)].get();
    }

    /// Ejection buffer at node `n`'s terminal.
    InputPort *termPort(NodeId n)
    {
        return termPorts_[static_cast<std::size_t>(n)].get();
    }

    /// Output-port index of node `n`'s terminal (ejection) port, or -1
    /// when the node has no terminal output (e.g. a pure transit router).
    int termOutIdx(NodeId n) const
    {
        return termOutIdx_[static_cast<std::size_t>(n)];
    }

    /// Canonical per-flow source queue at the network's injection
    /// boundary: traffic enters here, NACKed packets return here, and the
    /// retransmission window is accounted here.
    InjectorQueue &injector(FlowId flow)
    {
        return injectors_[static_cast<std::size_t>(flow)];
    }

    std::vector<InjectorQueue> &injectors() { return injectors_; }

    /// ACK-network hop distance between two node ids (the modelled
    /// ACK/NACK return delay is proportional to it).
    virtual int ackDistance(NodeId src, NodeId dst) const;

    /// Buffers not owned by any router beyond the per-node terminals
    /// (e.g. the chip's row-to-column handoff buffers, registered by the
    /// topology builder). The engine includes them in frame flushes and
    /// invariant checks.
    const std::vector<InputPort *> &auxPorts() const { return auxPorts_; }

    /// Routers armed by activity events since the engine's last merge
    /// (see noc/activity.h); the activity-driven NetSim consumes it once
    /// per cycle.
    ActivityWorklist &worklist() { return worklist_; }

    /// Invalidate every router's cached arbitration state (frame flushes,
    /// GSF window advances: policy state changed behind the routers'
    /// backs). Does not arm idle routers — a router with no work has
    /// nothing to rescan, and whatever gives it work later re-arms it.
    void invalidateArbitration();

    /// Rewrite the per-flow QOS weights in place — the memory-mapped
    /// flow-register reprogramming the hypervisor performs when tenants
    /// arrive or depart (Sec. 2.2). Every router references pvc_, so the
    /// new weights take effect immediately; cached arbitration state is
    /// invalidated. Callers should apply this at frame boundaries (the
    /// tenant-churn driver does), where in-flight priority state resets
    /// anyway. `weights` must be empty (all-ones) or sized numFlows.
    void reprogramFlowWeights(std::vector<std::uint32_t> weights);

    /// Attach (or detach, with nullptr) a flit-trace recorder to every
    /// router, terminal and aux port: registers each port with the sink
    /// and points the state-transition hooks at it. Usually reached via
    /// NetSim::attachTraceSink, which also feeds the engine-side events.
    void setTraceSink(TraceSink *sink);

    // --- builder interface (used by the topology wiring code and tests) --

    /// VC index reserved for rate-compliant packets (-1 when disabled).
    int reservedIdx() const;
    /// Per-flow-queueing reference: VCs grow on demand.
    bool unbounded() const;

    /// Create a router operating under this network's QOS mode.
    Router *addRouter(NodeId node) { return addRouter(node, mode_); }
    /// Create a router with an explicit mode (unprotected row routers).
    Router *addRouter(NodeId node, QosMode mode);

    /// Create the ejection buffer for node `node`. Routers and terminal
    /// ports must be created in the same node order so the per-node
    /// indexing stays aligned.
    InputPort *addTermPort(NodeId node, int vcs);

    /// Create a network input port on `r` (column channel or DPS subnet).
    InputPort *makeNetInput(Router *r, std::string name, NodeId node,
                            int vcs, int creditDelay, int pipeDelay,
                            bool passThrough, XbarGroup *group);

    /// Create the terminal output port on node `n` (drop into the ejection
    /// buffer) and record its index; also sets the self-route.
    void addTerminalOutput(NodeId n);

    /// Call Router::finalize on every router, then wire the activity
    /// tracking: VC-to-port back-pointers (incremental occupancy),
    /// injector-to-port back-pointers (enqueue arming), and the shared
    /// worklist every router initially arms onto. Builders must call this
    /// once, after the full port structure exists. Under the default
    /// HotLayout::Arena it then packs the per-router hot state (see
    /// packHotState).
    void finalizeRouters();

    /// Bytes of hot state packed into the network-owned arena (0 under
    /// HotLayout::ObjectGraph, or before finalizeRouters).
    std::size_t hotArenaBytes() const { return arena_.bytesAllocated(); }

    /// Next unused flow-table id on `r` (builders group replicated
    /// channels under one id; everything else gets its own).
    static int nextTableIdx(Router *r);

  protected:
    Network(QosMode mode, PvcParams pvc);

    QosMode mode_;
    /// Stable storage for the QOS parameters every router references.
    PvcParams pvc_;
    /// Prototype policy instance backing policyTraits().
    std::unique_ptr<QosPolicy> traits_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<InputPort>> termPorts_;
    std::vector<InjectorQueue> injectors_;
    std::vector<int> termOutIdx_;
    std::vector<InputPort *> auxPorts_;
    ActivityWorklist worklist_;

  private:
    /// Move the cycle-hot state out of the object graph into contiguous
    /// network-owned storage, in node order: one RouterHot cache line per
    /// router, then one PortHot record per buffer (router inputs, then
    /// terminals, then aux), then every port's VC array and every
    /// router's cached candidate-slot lists. Indices are preserved —
    /// only storage moves — so VcRef/slot bookkeeping is untouched.
    /// No-op under HotLayout::ObjectGraph (the layout-ablation baseline).
    void packHotState();

    /// Backing store for the packed hot state; owned here so its lifetime
    /// matches the routers that point into it.
    BumpArena arena_;
    bool hotPacked_ = false;
};

} // namespace taqos
