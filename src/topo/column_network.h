/// \file column_network.h
/// The QOS-protected shared-region column: 8 routers, their terminals
/// (memory controllers / accelerators), and 64 injectors, wired in one of
/// the five Table-1 topologies. A thin specialization of the
/// topology-agnostic Network substrate (topo/network.h).
///
/// The wiring itself is expressed against a ColumnWiring context so the
/// same topology builders serve two callers: ColumnNetwork (the identity
/// wiring — base 0, no prefix, the network's own mode) and FabricNetwork
/// (topo/fabric.h), which instantiates one block per shared column with
/// offset node/flow id bases and per-block QoS modes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/ports.h"
#include "router/router.h"
#include "topo/network.h"
#include "topo/topology.h"

namespace taqos {

/// Context for wiring one column block into a (possibly larger) network.
/// Local node ids 0..cfg.numNodes-1 and local flow ids map into the
/// network's global id spaces through `base`/`flowBase`; port names get
/// `prefix` so multi-block traces stay readable. The identity instance
/// (base 0, empty prefix, the network's own mode/VC policy) produces a
/// network byte-identical to the classic single-column wiring.
struct ColumnWiring {
    Network &net;
    const ColumnConfig &cfg;
    NodeId base = 0;     ///< global id of this block's local node 0
    FlowId flowBase = 0; ///< global id of this block's local flow 0
    std::string prefix;  ///< port-name prefix ("" for the identity wiring)
    QosMode mode = QosMode::NoQos; ///< router mode of this block
    int reservedVc = -1;           ///< reserved-VC index for net inputs
    bool unboundedVcs = false;     ///< per-flow-queueing VC growth

    NodeId node(int i) const { return base + i; }
    FlowId flow(int i, int slot) const
    {
        return flowBase + cfg.flowOf(i, slot);
    }
    std::string name(const std::string &s) const { return prefix + s; }

    Router *router(int i) const { return net.router(node(i)); }
    Router *addRouter(int i) const { return net.addRouter(node(i), mode); }

    InputPort *addTermPort(int i, int vcs) const
    {
        InputPort *term = net.addTermPort(node(i), vcs);
        term->unboundedVcs = unboundedVcs;
        return term;
    }

    InputPort *makeNetInput(Router *r, const std::string &portName, int i,
                            int vcs, int creditDelay, int pipeDelay,
                            bool passThrough, XbarGroup *group) const
    {
        InputPort *port =
            net.makeNetInput(r, name(portName), node(i), vcs, creditDelay,
                             pipeDelay, passThrough, group);
        port->reservedVc = reservedVc;
        port->unboundedVcs = unboundedVcs;
        return port;
    }

    void addTerminalOutput(int i) const { net.addTerminalOutput(node(i)); }

    void setRoute(Router *r, int d, RouteEntry e) const
    {
        r->setRoute(node(d), e);
    }
};

/// Create the block's injector queues, routers, terminal ejection buffers
/// and (topology-independent) injection ports. Grows the network's
/// injector vector if needed — multi-block callers must pre-size it to
/// the total flow count before wiring any block, or stored queue
/// pointers would dangle.
void wireColumnInjection(const ColumnWiring &w);

/// The topology-specific channel/route wiring of one block.
void wireColumnTopology(const ColumnWiring &w);

/// wireColumnInjection + wireColumnTopology: one fully wired block.
void wireColumnBlock(const ColumnWiring &w);

class ColumnNetwork : public Network {
  public:
    /// Build a column in the configured topology. The returned network is
    /// ready to simulate (routes set, flow tables sized).
    static std::unique_ptr<ColumnNetwork> build(ColumnConfig cfg);

    const ColumnConfig &cfg() const { return cfg_; }

    // --- builder interface (used by build_{mesh,mecs,dps}.cpp and tests) --

    /// The identity wiring context: this network as one classic column.
    ColumnWiring identityWiring() const;

    /// Create routers, injector queues, terminal ejection buffers, and the
    /// (topology-independent) injection ports of every node.
    void initCommon();

  protected:
    explicit ColumnNetwork(ColumnConfig cfg);

    /// initCommon + the topology-specific wiring (everything except
    /// finalizeRouters, so subclasses can keep extending the fabric).
    void wireColumn();

    ColumnConfig cfg_;
};

/// Topology-specific wiring (implemented in build_*.cpp).
void buildMeshColumn(const ColumnWiring &w);
void buildMecsColumn(const ColumnWiring &w);
void buildDpsColumn(const ColumnWiring &w);
void buildFlatButterflyColumn(const ColumnWiring &w);

} // namespace taqos
