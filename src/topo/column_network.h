/// \file column_network.h
/// The QOS-protected shared-region column: 8 routers, their terminals
/// (memory controllers / accelerators), and 64 injectors, wired in one of
/// the five Table-1 topologies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/ports.h"
#include "router/router.h"
#include "topo/topology.h"

namespace taqos {

class ColumnNetwork {
  public:
    /// Build a column in the configured topology. The returned network is
    /// ready to simulate (routes set, flow tables sized).
    static std::unique_ptr<ColumnNetwork> build(ColumnConfig cfg);

    const ColumnConfig &cfg() const { return cfg_; }

    Router *router(NodeId n) { return routers_[static_cast<std::size_t>(n)].get(); }
    const Router *router(NodeId n) const
    {
        return routers_[static_cast<std::size_t>(n)].get();
    }
    int numNodes() const { return cfg_.numNodes; }
    int numFlows() const { return cfg_.numFlows(); }

    /// Ejection buffer (2 VCs) at node `n`'s terminal.
    InputPort *termPort(NodeId n)
    {
        return termPorts_[static_cast<std::size_t>(n)].get();
    }

    /// Output-port index of node `n`'s terminal (ejection) port.
    int termOutIdx(NodeId n) const
    {
        return termOutIdx_[static_cast<std::size_t>(n)];
    }

    InjectorQueue &injector(FlowId flow)
    {
        return injectors_[static_cast<std::size_t>(flow)];
    }

    std::vector<InjectorQueue> &injectors() { return injectors_; }

    // --- builder interface (used by build_{mesh,mecs,dps}.cpp and tests) --

    /// VC index reserved for rate-compliant packets (-1 when disabled).
    int reservedIdx() const;
    /// Per-flow-queueing reference: VCs grow on demand.
    bool unbounded() const;

    /// Create routers, injector queues, terminal ejection buffers, and the
    /// (topology-independent) injection ports of every node.
    void initCommon();

    /// Create a network input port on `r` (column channel or DPS subnet).
    InputPort *makeNetInput(Router *r, std::string name, NodeId node,
                            int vcs, int creditDelay, int pipeDelay,
                            bool passThrough, XbarGroup *group);

    /// Create the terminal output port on node `n` (drop into the ejection
    /// buffer) and record its index; also sets the self-route.
    void addTerminalOutput(NodeId n);

    /// Call Router::finalize on every router.
    void finalizeRouters();

    /// Next unused flow-table id on `r` (builders group replicated
    /// channels under one id; everything else gets its own).
    static int nextTableIdx(Router *r);

  private:
    explicit ColumnNetwork(ColumnConfig cfg);

    ColumnConfig cfg_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<InputPort>> termPorts_;
    std::vector<InjectorQueue> injectors_;
    std::vector<int> termOutIdx_;
};

/// Topology-specific wiring (implemented in build_*.cpp).
void buildMeshColumn(ColumnNetwork &net);
void buildMecsColumn(ColumnNetwork &net);
void buildDpsColumn(ColumnNetwork &net);
void buildFlatButterflyColumn(ColumnNetwork &net);

} // namespace taqos
