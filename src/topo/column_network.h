/// \file column_network.h
/// The QOS-protected shared-region column: 8 routers, their terminals
/// (memory controllers / accelerators), and 64 injectors, wired in one of
/// the five Table-1 topologies. A thin specialization of the
/// topology-agnostic Network substrate (topo/network.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/ports.h"
#include "router/router.h"
#include "topo/network.h"
#include "topo/topology.h"

namespace taqos {

class ColumnNetwork : public Network {
  public:
    /// Build a column in the configured topology. The returned network is
    /// ready to simulate (routes set, flow tables sized).
    static std::unique_ptr<ColumnNetwork> build(ColumnConfig cfg);

    const ColumnConfig &cfg() const { return cfg_; }

    // --- builder interface (used by build_{mesh,mecs,dps}.cpp and tests) --

    /// Create routers, injector queues, terminal ejection buffers, and the
    /// (topology-independent) injection ports of every node.
    void initCommon();

  protected:
    explicit ColumnNetwork(ColumnConfig cfg);

    /// initCommon + the topology-specific wiring (everything except
    /// finalizeRouters, so subclasses can keep extending the fabric).
    void wireColumn();

    ColumnConfig cfg_;
};

/// Topology-specific wiring (implemented in build_*.cpp).
void buildMeshColumn(ColumnNetwork &net);
void buildMecsColumn(ColumnNetwork &net);
void buildDpsColumn(ColumnNetwork &net);
void buildFlatButterflyColumn(ColumnNetwork &net);

} // namespace taqos
