/// \file fabric.h
/// Kilo-node whole-chip and multi-chip fabrics, declared by a FabricSpec
/// and finalized into a Network by FabricNetwork::build.
///
/// A fabric generalizes ChipNetwork from "one shared column + its rows"
/// to the full consolidated-server machine:
///   - every shared column of every chip is an active QOS block, built by
///     the same ColumnWiring machinery as the standalone column;
///   - each compute node belongs to the catchment of its nearest shared
///     column and reaches it over a 1-D NoQos row mesh ending in a
///     handoff buffer (the ChipNetwork pattern, replicated per block);
///   - chips are joined by inter-chip links (point-to-point or a ring of
///     chip-to-chip channels). A packet for a remote column rides its
///     local row mesh to the boundary handoff, crosses the link fabric,
///     and re-enters through the destination block's per-flow entrance
///     queue — the row-to-column handoff pattern applied at chip scale.
///
/// Node-id space (ascending, chip-major): chip c occupies
/// [c*nodesPerChip, (c+1)*nodesPerChip); within a chip the block (column)
/// nodes come first — block j's node for grid row y is
/// chipBase + j*H + y — followed by the compute nodes in row-major order.
/// A one-chip, one-column fabric therefore reproduces ChipNetwork's id
/// space exactly, and FabricSim pins cycle-identity against ChipSim.
///
/// Flow-id space (chip-major, block-major): block g's flows are
/// [g*flowsPerBlock, (g+1)*flowsPerBlock), laid out per column row as
///   slot 0                       the block's own terminal flow,
///   slots 1..catchment           one per catchment compute node
///                                (ascending grid x; trailing slots of
///                                smaller catchments stay inactive),
///   slots after the catchment    one per *remote* chip: slot r maps to
///                                source chip (c + 1 + r) % chips.
/// Remote flows keep their destination-block flow id for the whole
/// journey, so the destination column's flow registers (weights, quotas,
/// windows) govern them exactly like local sources.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chip/geometry.h"
#include "topo/column_network.h"

namespace taqos {

/// How chips are linked (Sec. 1's consolidated server spans boards).
enum class LinkTopology {
    PointToPoint, ///< dedicated channel per ordered chip pair
    Ring,         ///< unidirectional ring; packets hop chip to chip
};

const char *linkTopologyName(LinkTopology kind);
std::optional<LinkTopology> parseLinkTopology(const std::string &name);

/// Catchments of one chip's local blocks: for each shared column, the
/// ascending grid xs of the compute nodes whose nearest shared column it
/// is. Pure geometry — usable before a FabricNetwork exists (e.g. to
/// program flow registers for a spec under construction).
std::vector<std::vector<int>> fabricCatchments(const ChipConfig &chip);

/// Declarative description of a multi-chip fabric: chips x geometry x
/// inter-chip links x per-column QoS policy. Finalized by
/// FabricNetwork::build into a ready-to-simulate Network.
struct FabricSpec {
    int chips = 1;
    ChipConfig chip;

    /// Template for every QOS block: topology, VC provisioning, QoS
    /// parameters. `numNodes` is forced to the grid height and
    /// `injectorsPerNode` to the fabric's slot count; when
    /// `pvc.weights` is non-empty it must be sized to the TOTAL flow
    /// count (FabricNetwork::totalFlows).
    ColumnConfig column;

    /// Per-column QoS policy override, cycled over the global block
    /// index; empty = every block runs `column.mode`. Entries must be
    /// `column.mode` itself or a router-local policy (no-qos, per-flow,
    /// age, wrr) — Pvc/Gsf blocks need the engine-global quota/gate
    /// machinery and so must match the global mode.
    std::vector<QosMode> columnModes;

    /// VC buffers per row-mesh input and per handoff buffer.
    int rowVcs = 4;

    LinkTopology links = LinkTopology::PointToPoint;
    /// Inter-chip wire delay, cycles per link traversal.
    int linkDelay = 8;
    /// Link serialization width, flits accepted per cycle.
    int linkWidthFlits = 4;

    /// Scale the QoS frame length by the number of blocks so per-flow
    /// frame quotas stay comparable to the single-column configuration
    /// as the fabric grows.
    bool scaleFrameLen = true;

    int blocksPerChip() const
    {
        return static_cast<int>(chip.sharedColumns.size());
    }
    int blocks() const { return chips * blocksPerChip(); }
};

class FabricNetwork : public Network {
  public:
    static std::unique_ptr<FabricNetwork> build(FabricSpec spec);

    const FabricSpec &spec() const { return spec_; }

    // --- geometry ---
    int chips() const { return spec_.chips; }
    int blocksPerChip() const { return spec_.blocksPerChip(); }
    int blocks() const { return spec_.blocks(); }
    int gridHeight() const { return spec_.chip.nodesY(); }
    int nodesPerChip() const { return spec_.chip.numNodes(); }
    int computePerRow() const
    {
        return spec_.chip.nodesX() - blocksPerChip();
    }
    /// Injector slots per block node: terminal + catchment + remote.
    int slotsPerNode() const { return slotsPerNode_; }
    int remoteSlots() const { return spec_.chips > 1 ? spec_.chips - 1 : 0; }
    int flowsPerBlock() const { return gridHeight() * slotsPerNode_; }
    int totalFlows() const { return blocks() * flowsPerBlock(); }

    /// Catchment of local block `j`: the grid xs of the compute nodes
    /// whose nearest shared column is column `j` (ascending; identical
    /// on every chip).
    const std::vector<int> &catchment(int j) const
    {
        return catchments_[static_cast<std::size_t>(j)];
    }
    /// Local block index whose catchment contains compute column `x`.
    int blockOfX(int x) const;

    /// QoS mode of global block `g` (columnModes cycled).
    QosMode blockMode(int g) const;
    /// The per-block column configuration global block `g` was wired
    /// with (mode and crossbar grouping differ per block).
    const ColumnConfig &blockCfg(int g) const
    {
        return blockCfgs_[static_cast<std::size_t>(g)];
    }

    // --- id mapping ---
    int chipOfNode(NodeId n) const { return n / nodesPerChip(); }
    bool isBlockNode(NodeId n) const
    {
        return n % nodesPerChip() < blocksPerChip() * gridHeight();
    }
    NodeId blockBase(int g) const
    {
        const int B = blocksPerChip();
        return (g / B) * nodesPerChip() + (g % B) * gridHeight();
    }
    NodeId blockNodeId(int chip, int j, int y) const
    {
        return blockBase(chip * blocksPerChip() + j) + y;
    }
    /// Global block index of a block node (asserts `n` is one).
    int blockOfNode(NodeId n) const;
    NodeId computeNodeId(int chip, int x, int y) const;
    /// Grid x of the compute node with row rank `r` (inverse of the
    /// row-major compute layout).
    int xOfRank(int r) const { return computeXs_[static_cast<std::size_t>(r)]; }

    int blockOfFlow(FlowId f) const { return f / flowsPerBlock(); }
    /// (row, slot) of flow `f` within its block.
    int rowOfFlow(FlowId f) const
    {
        return f % flowsPerBlock() / slotsPerNode_;
    }
    int slotOfFlow(FlowId f) const { return f % slotsPerNode_; }
    /// Source chip of remote slot `k` (> catchment slots) at a block on
    /// chip `c`.
    int remoteSourceChip(int c, int k) const
    {
        return (c + 1 + (k - 1 - maxCatchment_)) % spec_.chips;
    }
    /// True when slot `k` of local block `j` carries traffic (terminal,
    /// a real catchment entry, or a remote slot).
    bool slotUsable(int j, int k) const;

    /// Origin queue of flow `f`: the owning compute node's aggregate
    /// source queue for catchment/remote flows, the block entrance queue
    /// itself for terminal flows.
    InjectorQueue &sourceQueue(FlowId f);

    /// All compute-node origin queues, indexed by flow (terminal and
    /// inactive-slot entries unused).
    std::vector<InjectorQueue> &rowQueues() { return rowQueues_; }

  private:
    explicit FabricNetwork(FabricSpec spec);

    friend void buildFabric(FabricNetwork &net);

    FabricSpec spec_;
    int slotsPerNode_ = 0;
    int maxCatchment_ = 0;
    std::vector<std::vector<int>> catchments_; ///< per local block
    std::vector<int> computeXs_;               ///< non-shared xs, ascending
    std::vector<int> blockOfX_;                ///< local block per rank
    std::vector<ColumnConfig> blockCfgs_;      ///< per global block
    std::vector<InjectorQueue> rowQueues_;     ///< indexed by global flow
    /// Handoff buffers at every block boundary (also registered as the
    /// network's auxPorts, in creation order).
    std::vector<std::unique_ptr<InputPort>> handoff_;
};

} // namespace taqos
