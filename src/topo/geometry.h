/// \file geometry.h
/// Structural router descriptions feeding the area/energy models
/// (Figures 3 and 7). These mirror the simulated port structure plus the
/// parts the column simulation abstracts away (east/west row outputs).
#pragma once

#include "power/router_power.h"
#include "topo/topology.h"

namespace taqos {

struct GeometryOptions {
    /// Include PVC hardware (flow-state tables, the reserved VC). Turned
    /// off to cost the QOS-free routers outside the shared region.
    bool qosEnabled = true;

    /// Row-input buffering, identical across topologies (Fig. 3's dotted
    /// line): 7 row ports x 4 VCs, plus the 1-VC terminal injection port.
    int rowPorts = 7;
    int rowVcsPerPort = 4;
};

/// Geometry of the shared-column router at `node` for `kind`. Mesh and
/// MECS routers are uniform; DPS routers vary with position (pass-through
/// port count), so `node` matters.
RouterGeometry columnRouterGeometry(TopologyKind kind,
                                    const ColumnConfig &cfg, NodeId node,
                                    const GeometryOptions &opt = {});

/// Representative router for a topology (interior node), used for the
/// single per-topology bars of Figures 3 and 7.
RouterGeometry representativeGeometry(TopologyKind kind,
                                      const ColumnConfig &cfg,
                                      const GeometryOptions &opt = {});

} // namespace taqos
