#include "topo/topology.h"

#include "common/assert.h"
#include "common/strings.h"

namespace taqos {

const char *
topologyName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::MeshX1: return "mesh_x1";
      case TopologyKind::MeshX2: return "mesh_x2";
      case TopologyKind::MeshX4: return "mesh_x4";
      case TopologyKind::Mecs: return "mecs";
      case TopologyKind::Dps: return "dps";
      case TopologyKind::FlatButterfly: return "fbfly";
    }
    return "?";
}

std::optional<TopologyKind>
parseTopology(const std::string &name)
{
    const std::string n = strLower(strTrim(name));
    for (auto kind : kAllTopologies) {
        if (n == topologyName(kind))
            return kind;
    }
    if (n == "mesh")
        return TopologyKind::MeshX1;
    if (n == "fbfly" || n == "flattened_butterfly" || n == "fbf")
        return TopologyKind::FlatButterfly;
    return std::nullopt;
}

int
replicationOf(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::MeshX1: return 1;
      case TopologyKind::MeshX2: return 2;
      case TopologyKind::MeshX4: return 4;
      case TopologyKind::Mecs:
      case TopologyKind::Dps:
      case TopologyKind::FlatButterfly: return 1;
    }
    return 1;
}

int
defaultVcsPerPort(TopologyKind kind)
{
    // Table 1: provisioned to cover each topology's round-trip credit
    // latency under worst-case single-flit traffic.
    switch (kind) {
      case TopologyKind::MeshX1:
      case TopologyKind::MeshX2:
      case TopologyKind::MeshX4: return 6;
      case TopologyKind::Mecs: return 14;
      case TopologyKind::Dps: return 5;
      // Dedicated channels: credits return over the span; provision for
      // the longest (7-cycle) round trip plus pipeline slack.
      case TopologyKind::FlatButterfly: return 10;
    }
    return 6;
}

int
pipelineDepth(TopologyKind kind)
{
    // Table 1: mesh/DPS arbitrate in one cycle (VA, XT); MECS needs two
    // arbitration cycles (VA-local, VA-global, XT) due to its port count.
    switch (kind) {
      case TopologyKind::MeshX1:
      case TopologyKind::MeshX2:
      case TopologyKind::MeshX4:
      case TopologyKind::Dps: return 2;
      // High-radix switches need the extra arbitration stage, like MECS.
      case TopologyKind::Mecs:
      case TopologyKind::FlatButterfly: return 3;
    }
    return 2;
}

} // namespace taqos
