#include "topo/network.h"

#include <cstdlib>

#include "common/assert.h"
#include "noc/trace_sink.h"

namespace taqos {

Network::Network(QosMode mode, PvcParams pvc)
    : mode_(mode), pvc_(std::move(pvc)), traits_(makeQosPolicy(mode, pvc_))
{
}

Network::~Network() = default;

int
Network::ackDistance(NodeId src, NodeId dst) const
{
    return std::abs(dst - src);
}

int
Network::reservedIdx() const
{
    return traits_->usesReservedVc() ? 0 : -1;
}

bool
Network::unbounded() const
{
    return traits_->unboundedVcs();
}

Router *
Network::addRouter(NodeId node, QosMode mode)
{
    routers_.push_back(std::make_unique<Router>(node, mode, pvc_));
    return routers_.back().get();
}

InputPort *
Network::addTermPort(NodeId node, int vcs)
{
    auto term = std::make_unique<InputPort>();
    term->name = "term_in_" + std::to_string(node);
    term->node = node;
    term->kind = InputPort::Kind::Network;
    term->creditDelay = 1;
    term->reservedVc = -1;
    term->unboundedVcs = unbounded();
    term->vcs.resize(static_cast<std::size_t>(vcs));
    termPorts_.push_back(std::move(term));
    termOutIdx_.push_back(-1);
    return termPorts_.back().get();
}

InputPort *
Network::makeNetInput(Router *r, std::string name, NodeId node, int vcs,
                      int creditDelay, int pipeDelay, bool passThrough,
                      XbarGroup *group)
{
    auto port = std::make_unique<InputPort>();
    port->name = std::move(name);
    port->node = node;
    port->kind = InputPort::Kind::Network;
    port->pipelineDelay = pipeDelay;
    port->creditDelay = creditDelay;
    port->reservedVc = reservedIdx();
    port->unboundedVcs = unbounded();
    port->usesCarriedPrio = passThrough;
    port->group = group;
    port->vcs.resize(static_cast<std::size_t>(vcs));
    return r->addInputPort(std::move(port));
}

int
Network::nextTableIdx(Router *r)
{
    int next = 0;
    for (const auto &out : r->outputs())
        next = std::max(next, out->tableIdx + 1);
    return next;
}

void
Network::addTerminalOutput(NodeId n)
{
    Router *r = router(n);
    auto out = std::make_unique<OutputPort>();
    out->name = "term_out_" + std::to_string(n);
    out->node = n;
    out->tableIdx = nextTableIdx(r);
    out->drops.push_back(OutputPort::Drop{termPort(n), /*wireDelay=*/0,
                                          /*meshHops=*/1.0});
    const int idx = static_cast<int>(r->outputs().size());
    r->addOutputPort(std::move(out));
    termOutIdx_[static_cast<std::size_t>(n)] = idx;
    r->setRoute(n, RouteEntry{idx, 1, 0});
}

void
Network::finalizeRouters()
{
    for (auto &r : routers_)
        r->finalize();

    // Wire the activity tracking. Port owners were set at addInput/
    // OutputPort time; here every VC learns its port (occupancy counts),
    // every injector queue learns its injection port (enqueue arming),
    // and every router joins the worklist — conservatively armed, so the
    // engine's first sweep observes real state before skipping anything.
    for (auto &r : routers_) {
        for (const auto &in : r->inputs()) {
            in->attachVcs();
            for (InjectorQueue *inj : in->injectors)
                inj->port = in.get();
        }
        r->setWorklist(&worklist_);
    }
    for (auto &term : termPorts_)
        term->attachVcs();
    for (InputPort *port : auxPorts_)
        port->attachVcs();

    packHotState();
}

void
Network::packHotState()
{
    if (hotLayout() != HotLayout::Arena || hotPacked_)
        return;
    hotPacked_ = true;

    // Router records first: node id indexes straight into the array.
    auto *rhot = arena_.allocate<RouterHot>(routers_.size());
    for (std::size_t i = 0; i < routers_.size(); ++i)
        routers_[i]->bindHot(&rhot[i]);

    // Buffers in the engine's traversal order: router inputs in node
    // order, then terminals, then aux handoff buffers.
    std::vector<InputPort *> ports;
    for (auto &r : routers_)
        for (const auto &in : r->inputs())
            ports.push_back(in.get());
    for (auto &term : termPorts_)
        ports.push_back(term.get());
    for (InputPort *port : auxPorts_)
        ports.push_back(port);

    auto *phot = arena_.allocate<PortHot>(ports.size());
    for (std::size_t i = 0; i < ports.size(); ++i)
        ports[i]->bindHot(&phot[i]);
    for (InputPort *port : ports)
        port->vcs.rebind(&arena_);
    for (auto &r : routers_)
        r->bindSlotArena(&arena_);
}

void
Network::invalidateArbitration()
{
    for (auto &r : routers_)
        r->markArbDirty();
}

void
Network::reprogramFlowWeights(std::vector<std::uint32_t> weights)
{
    TAQOS_ASSERT(weights.empty() ||
                     static_cast<int>(weights.size()) == pvc_.numFlows,
                 "flow-register reprogram wants %d weights, got %zu",
                 pvc_.numFlows, weights.size());
    pvc_.weights = std::move(weights);
    // Flow tables compute priorities from counts x weights on the fly,
    // so the rewrite is visible immediately; only the routers' cached
    // candidate orderings need rescanning.
    invalidateArbitration();
}

void
Network::setTraceSink(TraceSink *sink)
{
    for (auto &r : routers_)
        r->setTraceSink(sink);
    for (auto &term : termPorts_) {
        if (sink != nullptr)
            sink->registerPort(*term, /*terminal=*/true);
        term->trace = sink;
    }
    for (InputPort *port : auxPorts_) {
        if (sink != nullptr)
            sink->registerPort(*port, /*terminal=*/false);
        port->trace = sink;
    }
}

} // namespace taqos
