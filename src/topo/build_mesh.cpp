/// \file build_mesh.cpp
/// Wiring for the mesh x1 / x2 / x4 columns: R parallel channels between
/// adjacent nodes in each direction, all feeding a single monolithic
/// crossbar per node (the replication variant evaluated in Sec. 3.2).
#include <string>
#include <vector>

#include "topo/column_network.h"

namespace taqos {

void
buildMeshColumn(const ColumnWiring &w)
{
    const ColumnConfig &cfg = w.cfg;
    const int n = cfg.numNodes;
    const int rep = replicationOf(cfg.topology);
    const int vcs = cfg.effectiveVcs();
    const int depth = pipelineDepth(cfg.topology);

    // inNorth[i][k]: input at node i fed by node i-1 on channel k.
    // inSouth[i][k]: input at node i fed by node i+1 on channel k.
    std::vector<std::vector<InputPort *>> inNorth(
        static_cast<std::size_t>(n));
    std::vector<std::vector<InputPort *>> inSouth(
        static_cast<std::size_t>(n));

    for (int i = 0; i < n; ++i) {
        Router *r = w.router(i);
        for (int k = 0; k < rep; ++k) {
            if (i > 0) {
                inNorth[static_cast<std::size_t>(i)].push_back(
                    w.makeNetInput(r,
                                   "mesh_in_n" + std::to_string(k) + "_" +
                                       std::to_string(i),
                                   i, vcs, /*creditDelay=*/1, depth,
                                   /*passThrough=*/false,
                                   r->addXbarGroup()));
            }
            if (i < n - 1) {
                inSouth[static_cast<std::size_t>(i)].push_back(
                    w.makeNetInput(r,
                                   "mesh_in_s" + std::to_string(k) + "_" +
                                       std::to_string(i),
                                   i, vcs, /*creditDelay=*/1, depth,
                                   /*passThrough=*/false,
                                   r->addXbarGroup()));
            }
        }
    }

    for (int i = 0; i < n; ++i) {
        Router *r = w.router(i);

        if (i > 0) {
            const int base = static_cast<int>(r->outputs().size());
            // The rep parallel channels are one logical "north" output:
            // they share a single per-direction flow-state table.
            const int table = Network::nextTableIdx(r);
            for (int k = 0; k < rep; ++k) {
                auto out = std::make_unique<OutputPort>();
                out->name = w.name("mesh_out_n" + std::to_string(k) + "_" +
                                   std::to_string(i));
                out->node = w.node(i);
                out->tableIdx = table;
                out->drops.push_back(OutputPort::Drop{
                    inSouth[static_cast<std::size_t>(i - 1)]
                           [static_cast<std::size_t>(k)],
                    /*wireDelay=*/1, /*meshHops=*/1.0});
                r->addOutputPort(std::move(out));
            }
            for (int d = 0; d < i; ++d)
                w.setRoute(r, d, RouteEntry{base, rep, 0});
        }

        if (i < n - 1) {
            const int base = static_cast<int>(r->outputs().size());
            const int table = Network::nextTableIdx(r);
            for (int k = 0; k < rep; ++k) {
                auto out = std::make_unique<OutputPort>();
                out->name = w.name("mesh_out_s" + std::to_string(k) + "_" +
                                   std::to_string(i));
                out->node = w.node(i);
                out->tableIdx = table;
                out->drops.push_back(OutputPort::Drop{
                    inNorth[static_cast<std::size_t>(i + 1)]
                           [static_cast<std::size_t>(k)],
                    /*wireDelay=*/1, /*meshHops=*/1.0});
                r->addOutputPort(std::move(out));
            }
            for (int d = i + 1; d < n; ++d)
                w.setRoute(r, d, RouteEntry{base, rep, 0});
        }

        w.addTerminalOutput(i);
    }
}

} // namespace taqos
