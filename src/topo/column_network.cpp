#include "topo/column_network.h"

#include "common/assert.h"

namespace taqos {

ColumnNetwork::ColumnNetwork(ColumnConfig cfg)
    : Network(cfg.mode, cfg.pvc), cfg_(std::move(cfg))
{
}

void
ColumnNetwork::initCommon()
{
    const int n = cfg_.numNodes;
    const int depth = pipelineDepth(cfg_.topology);

    injectors_.resize(static_cast<std::size_t>(cfg_.numFlows()));

    for (NodeId i = 0; i < n; ++i) {
        Router *r = addRouter(i);

        // Ejection buffer at the terminal (memory controller).
        addTermPort(i, cfg_.ejectionVcs);

        // Injection: terminal port + shared east/west row ports. Up to
        // four row MECS inputs share a crossbar port (Sec. 4).
        struct Group {
            const char *name;
            int first;
            int count;
        };
        const int east = cfg_.eastRowInjectors;
        const int west = cfg_.injectorsPerNode - 1 - east;
        const Group groups[] = {
            {"inj_term_", 0, 1},
            {"inj_east_", 1, east},
            {"inj_west_", 1 + east, west},
        };
        for (const auto &g : groups) {
            if (g.count <= 0)
                continue;
            auto port = std::make_unique<InputPort>();
            port->name = g.name + std::to_string(i);
            port->node = i;
            port->kind = InputPort::Kind::Injection;
            port->pipelineDelay = depth;
            port->group = r->addXbarGroup();
            for (int k = 0; k < g.count; ++k) {
                const FlowId flow = cfg_.flowOf(i, g.first + k);
                InjectorQueue &inj =
                    injectors_[static_cast<std::size_t>(flow)];
                inj.flow = flow;
                inj.node = i;
                inj.windowLimit = cfg_.pvc.windowLimit;
                port->injectors.push_back(&inj);
            }
            r->addInputPort(std::move(port));
        }
    }
}

void
ColumnNetwork::wireColumn()
{
    initCommon();
    switch (cfg_.topology) {
      case TopologyKind::MeshX1:
      case TopologyKind::MeshX2:
      case TopologyKind::MeshX4:
        buildMeshColumn(*this);
        break;
      case TopologyKind::Mecs:
        buildMecsColumn(*this);
        break;
      case TopologyKind::Dps:
        buildDpsColumn(*this);
        break;
      case TopologyKind::FlatButterfly:
        buildFlatButterflyColumn(*this);
        break;
    }
}

std::unique_ptr<ColumnNetwork>
ColumnNetwork::build(ColumnConfig cfg)
{
    cfg.canonicalize();
    TAQOS_ASSERT(cfg.numNodes >= 2, "column needs at least two nodes");
    TAQOS_ASSERT(cfg.injectorsPerNode >= 1, "need at least one injector");

    std::unique_ptr<ColumnNetwork> net(new ColumnNetwork(std::move(cfg)));
    net->wireColumn();
    net->finalizeRouters();
    return net;
}

} // namespace taqos
