#include "topo/column_network.h"

#include "common/assert.h"

namespace taqos {

ColumnNetwork::ColumnNetwork(ColumnConfig cfg) : cfg_(std::move(cfg)) {}

int
ColumnNetwork::reservedIdx() const
{
    return cfg_.mode == QosMode::Pvc && cfg_.pvc.reservedVcEnabled ? 0 : -1;
}

bool
ColumnNetwork::unbounded() const
{
    return cfg_.mode == QosMode::PerFlowQueue;
}

void
ColumnNetwork::initCommon()
{
    const int n = cfg_.numNodes;
    const int depth = pipelineDepth(cfg_.topology);

    injectors_.resize(static_cast<std::size_t>(cfg_.numFlows()));
    termOutIdx_.assign(static_cast<std::size_t>(n), -1);

    for (NodeId i = 0; i < n; ++i) {
        routers_.push_back(
            std::make_unique<Router>(i, cfg_.mode, cfg_.pvc));
        Router *r = routers_.back().get();

        // Ejection buffer at the terminal (memory controller).
        auto term = std::make_unique<InputPort>();
        term->name = "term_in_" + std::to_string(i);
        term->node = i;
        term->kind = InputPort::Kind::Network;
        term->creditDelay = 1;
        term->reservedVc = -1;
        term->unboundedVcs = unbounded();
        term->vcs.resize(static_cast<std::size_t>(cfg_.ejectionVcs));
        termPorts_.push_back(std::move(term));

        // Injection: terminal port + shared east/west row ports. Up to
        // four row MECS inputs share a crossbar port (Sec. 4).
        struct Group {
            const char *name;
            int first;
            int count;
        };
        const int east = cfg_.eastRowInjectors;
        const int west = cfg_.injectorsPerNode - 1 - east;
        const Group groups[] = {
            {"inj_term_", 0, 1},
            {"inj_east_", 1, east},
            {"inj_west_", 1 + east, west},
        };
        for (const auto &g : groups) {
            if (g.count <= 0)
                continue;
            auto port = std::make_unique<InputPort>();
            port->name = g.name + std::to_string(i);
            port->node = i;
            port->kind = InputPort::Kind::Injection;
            port->pipelineDelay = depth;
            port->group = r->addXbarGroup();
            for (int k = 0; k < g.count; ++k) {
                const FlowId flow = cfg_.flowOf(i, g.first + k);
                InjectorQueue &inj =
                    injectors_[static_cast<std::size_t>(flow)];
                inj.flow = flow;
                inj.node = i;
                inj.windowLimit = cfg_.pvc.windowLimit;
                port->injectors.push_back(&inj);
            }
            r->addInputPort(std::move(port));
        }
    }
}

InputPort *
ColumnNetwork::makeNetInput(Router *r, std::string name, NodeId node,
                            int vcs, int creditDelay, int pipeDelay,
                            bool passThrough, XbarGroup *group)
{
    auto port = std::make_unique<InputPort>();
    port->name = std::move(name);
    port->node = node;
    port->kind = InputPort::Kind::Network;
    port->pipelineDelay = pipeDelay;
    port->creditDelay = creditDelay;
    port->reservedVc = reservedIdx();
    port->unboundedVcs = unbounded();
    port->usesCarriedPrio = passThrough;
    port->group = group;
    port->vcs.resize(static_cast<std::size_t>(vcs));
    return r->addInputPort(std::move(port));
}

int
ColumnNetwork::nextTableIdx(Router *r)
{
    int next = 0;
    for (const auto &out : r->outputs())
        next = std::max(next, out->tableIdx + 1);
    return next;
}

void
ColumnNetwork::addTerminalOutput(NodeId n)
{
    Router *r = router(n);
    auto out = std::make_unique<OutputPort>();
    out->name = "term_out_" + std::to_string(n);
    out->node = n;
    out->tableIdx = nextTableIdx(r);
    out->drops.push_back(OutputPort::Drop{termPort(n), /*wireDelay=*/0,
                                          /*meshHops=*/1.0});
    const int idx = static_cast<int>(r->outputs().size());
    r->addOutputPort(std::move(out));
    termOutIdx_[static_cast<std::size_t>(n)] = idx;
    r->setRoute(n, RouteEntry{idx, 1, 0});
}

void
ColumnNetwork::finalizeRouters()
{
    for (auto &r : routers_)
        r->finalize();
}

std::unique_ptr<ColumnNetwork>
ColumnNetwork::build(ColumnConfig cfg)
{
    cfg.canonicalize();
    TAQOS_ASSERT(cfg.numNodes >= 2, "column needs at least two nodes");
    TAQOS_ASSERT(cfg.injectorsPerNode >= 1, "need at least one injector");

    std::unique_ptr<ColumnNetwork> net(new ColumnNetwork(std::move(cfg)));
    net->initCommon();
    switch (net->cfg_.topology) {
      case TopologyKind::MeshX1:
      case TopologyKind::MeshX2:
      case TopologyKind::MeshX4:
        buildMeshColumn(*net);
        break;
      case TopologyKind::Mecs:
        buildMecsColumn(*net);
        break;
      case TopologyKind::Dps:
        buildDpsColumn(*net);
        break;
      case TopologyKind::FlatButterfly:
        buildFlatButterflyColumn(*net);
        break;
    }
    net->finalizeRouters();
    return net;
}

} // namespace taqos
