#include "topo/column_network.h"

#include "common/assert.h"

namespace taqos {

void
wireColumnInjection(const ColumnWiring &w)
{
    const ColumnConfig &cfg = w.cfg;
    const int n = cfg.numNodes;
    const int depth = pipelineDepth(cfg.topology);

    const std::size_t needed =
        static_cast<std::size_t>(w.flowBase + cfg.numFlows());
    if (w.net.injectors().size() < needed)
        w.net.injectors().resize(needed);

    for (int i = 0; i < n; ++i) {
        Router *r = w.addRouter(i);

        // Ejection buffer at the terminal (memory controller).
        w.addTermPort(i, cfg.ejectionVcs);

        // Injection: terminal port + shared east/west row ports. Up to
        // four row MECS inputs share a crossbar port (Sec. 4).
        struct Group {
            const char *name;
            int first;
            int count;
        };
        const int east = cfg.eastRowInjectors;
        const int west = cfg.injectorsPerNode - 1 - east;
        const Group groups[] = {
            {"inj_term_", 0, 1},
            {"inj_east_", 1, east},
            {"inj_west_", 1 + east, west},
        };
        for (const auto &g : groups) {
            if (g.count <= 0)
                continue;
            auto port = std::make_unique<InputPort>();
            port->name = w.name(g.name + std::to_string(i));
            port->node = w.node(i);
            port->kind = InputPort::Kind::Injection;
            port->pipelineDelay = depth;
            port->group = r->addXbarGroup();
            for (int k = 0; k < g.count; ++k) {
                const FlowId flow = w.flow(i, g.first + k);
                InjectorQueue &inj =
                    w.net.injectors()[static_cast<std::size_t>(flow)];
                inj.flow = flow;
                inj.node = w.node(i);
                inj.windowLimit = cfg.pvc.windowLimit;
                port->injectors.push_back(&inj);
            }
            r->addInputPort(std::move(port));
        }
    }
}

void
wireColumnTopology(const ColumnWiring &w)
{
    switch (w.cfg.topology) {
      case TopologyKind::MeshX1:
      case TopologyKind::MeshX2:
      case TopologyKind::MeshX4:
        buildMeshColumn(w);
        break;
      case TopologyKind::Mecs:
        buildMecsColumn(w);
        break;
      case TopologyKind::Dps:
        buildDpsColumn(w);
        break;
      case TopologyKind::FlatButterfly:
        buildFlatButterflyColumn(w);
        break;
    }
}

void
wireColumnBlock(const ColumnWiring &w)
{
    wireColumnInjection(w);
    wireColumnTopology(w);
}

ColumnNetwork::ColumnNetwork(ColumnConfig cfg)
    : Network(cfg.mode, cfg.pvc), cfg_(std::move(cfg))
{
}

ColumnWiring
ColumnNetwork::identityWiring() const
{
    auto &self = const_cast<ColumnNetwork &>(*this);
    return ColumnWiring{self,   cfg_,          0, 0, "",
                        mode(), reservedIdx(), unbounded()};
}

void
ColumnNetwork::initCommon()
{
    wireColumnInjection(identityWiring());
}

void
ColumnNetwork::wireColumn()
{
    wireColumnBlock(identityWiring());
}

std::unique_ptr<ColumnNetwork>
ColumnNetwork::build(ColumnConfig cfg)
{
    cfg.canonicalize();
    TAQOS_ASSERT(cfg.numNodes >= 2, "column needs at least two nodes");
    TAQOS_ASSERT(cfg.injectorsPerNode >= 1, "need at least one injector");

    std::unique_ptr<ColumnNetwork> net(new ColumnNetwork(std::move(cfg)));
    net->wireColumn();
    net->finalizeRouters();
    return net;
}

} // namespace taqos
